package stateflow_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"statefulentities.dev/stateflow"
	adversarial "statefulentities.dev/stateflow/internal/chaos/workload"
	"statefulentities.dev/stateflow/internal/lin"
)

// These tests point the history checker at the Live runtime — real
// goroutines, channels, and partition workers instead of the
// deterministic simulator — and are the intended target of `go test
// -race -run Live`. The Live contract (package live) is narrower than
// the transactional StateFlow backend's: each partition processes its
// mailbox serially, so single-entity operations are linearizable per
// key, while cross-entity transactions make no isolation promise under
// interleaving. The traffic below is shaped to that contract, the same
// way the adversarial oracle shapes its driving to the StateFun
// baseline's: whatever the runtime promises, the checker verifies.

// liveHistory accumulates a checker history from concurrent sessions.
type liveHistory struct {
	mu sync.Mutex
	h  *lin.History
}

func (lh *liveHistory) invoke(op adversarial.Op) {
	lh.mu.Lock()
	lh.h.Invokes = append(lh.h.Invokes, op.Invoke())
	lh.mu.Unlock()
}

// settle folds one completed call into the history and returns the
// decoded observations (nil when the op erred).
func (lh *liveHistory) settle(t *testing.T, op adversarial.Op, res stateflow.Result, err error) []lin.Observation {
	t.Helper()
	if err != nil {
		t.Errorf("op %s %s<%s>.%s: transport error: %v", op.ID, adversarial.Class, op.Key, op.Method, err)
		return nil
	}
	out := lin.Outcome{ID: op.ID, Err: res.Err}
	if res.Err == "" {
		obs, derr := adversarial.Decode(op, res.Value)
		if derr != nil {
			t.Errorf("op %s: %v", op.ID, derr)
			out.Err = derr.Error()
		} else {
			out.Obs = obs
		}
	}
	lh.mu.Lock()
	lh.h.Outcomes = append(lh.h.Outcomes, out)
	lh.mu.Unlock()
	return out.Obs
}

// harvest reads the settled cells into checker form.
func (lh *liveHistory) harvest(t *testing.T, admin stateflow.Admin, cells int) {
	t.Helper()
	lh.h.Final = make(map[lin.Entity]lin.State, cells)
	for i := 0; i < cells; i++ {
		key := adversarial.Key(i)
		st, ok := admin.Inspect(adversarial.Class, key)
		if !ok {
			t.Fatalf("preloaded cell %s missing from live state", key)
		}
		lh.h.Final[lin.Entity{Class: adversarial.Class, Key: key}] = lin.State{
			Version: st["version"].I, Value: st["value"].I, Last: st["last"].S,
		}
	}
}

// TestLiveConcurrentSessions hammers two hot cells from concurrent
// client goroutines — single-entity gets and bumps only, the shape the
// Live runtime promises to linearize per key — and checks the observed
// history. Each goroutine is a session: every op declares a dependency
// on its predecessor, so whenever consecutive ops land on the same cell
// the checker enforces read-your-writes across the concurrency, and the
// per-key version chains must still weave into one serial order.
func TestLiveConcurrentSessions(t *testing.T) {
	const sessions, perSession = 8, 25
	for _, seed := range []int64{1, 2} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := adversarial.FromSeed(adversarial.HotKey, seed)
			prog := stateflow.MustCompile(adversarial.Program())
			client := stateflow.NewLiveClient(prog, stateflow.LiveConfig{Workers: 8})
			defer client.Close()
			admin := client.Admin()
			if err := spec.Preload(admin); err != nil {
				t.Fatalf("preload: %v", err)
			}

			lh := &liveHistory{h: &lin.History{Initial: spec.Initial()}}
			var wg sync.WaitGroup
			for s := 0; s < sessions; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed*1000 + int64(s)))
					dep := ""
					for i := 0; i < perSession; i++ {
						op := adversarial.Op{ID: fmt.Sprintf("s%dn%02d", s, i), Dep: dep}
						if rng.Intn(100) < 60 {
							op.Key = adversarial.Key(rng.Intn(2)) // hot cells
						} else {
							op.Key = adversarial.Key(rng.Intn(spec.Cells))
						}
						if rng.Intn(100) < 30 {
							op.Method = "get"
						} else {
							op.Method = "bump"
							op.D = int64(1 + rng.Intn(9))
						}
						lh.invoke(op)
						res, err := client.Entity(adversarial.Class, op.Key).Call(op.Method, op.Args()...)
						lh.settle(t, op, res, err)
						dep = op.ID
					}
				}(s)
			}
			wg.Wait()

			lh.harvest(t, admin, spec.Cells)
			if err := lin.Check(lh.h, spec.Conservation()); err != nil {
				t.Fatalf("live concurrent history rejected: %v", err)
			}
		})
	}
}

// TestLiveChains drives the Chain profile's dependent chains on the
// Live runtime one chain at a time — the same discipline the
// adversarial oracle applies to the StateFun baseline, because chains
// contain cross-entity moves and the Live runtime makes no isolation
// promise for interleaved multi-entity transactions. Sequential driving
// still exercises real concurrency: every move fans events across
// partition workers, and the checker confirms each chain's
// read-your-writes edges and the final settled state.
func TestLiveChains(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := adversarial.FromSeed(adversarial.Chain, seed)
			prog := stateflow.MustCompile(adversarial.Program())
			client := stateflow.NewLiveClient(prog, stateflow.LiveConfig{Workers: 8})
			defer client.Close()
			admin := client.Admin()
			if err := spec.Preload(admin); err != nil {
				t.Fatalf("preload: %v", err)
			}

			lh := &liveHistory{h: &lin.History{Initial: spec.Initial()}}
			for _, start := range spec.Starts() {
				op, more := start, true
				for more {
					lh.invoke(op)
					res, err := client.Entity(adversarial.Class, op.Key).Call(op.Method, op.Args()...)
					obs := lh.settle(t, op, res, err)
					failed := err != nil || res.Err != "" || obs == nil
					op, more = spec.Next(op, obs, failed)
				}
			}

			lh.harvest(t, admin, spec.Cells)
			if err := lin.Check(lh.h, spec.Conservation()); err != nil {
				t.Fatalf("live chain history rejected: %v", err)
			}
		})
	}
}
