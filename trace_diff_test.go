// Differential tests for the observability substrate's core contract:
// instrumentation is deterministically inert. Attaching a Tracer to a
// run must not change what the cluster does — transcripts, committed
// state, and even the fault-sensitive trace (latencies, delivery
// counts, virtual clock) must be byte-identical with tracing on and off
// — and because spans are derived purely from virtual timestamps, two
// runs of the same seed must serialize byte-identical trace files.
package stateflow_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"statefulentities.dev/stateflow"
	"statefulentities.dev/stateflow/internal/chaos"
	"statefulentities.dev/stateflow/internal/chaos/oracle"
	"statefulentities.dev/stateflow/internal/workload/ycsb"
)

// TestTraceDifferentialOracleWorkloads drives the oracle workloads on
// StateFlow with tracing off and on — fault-free and under a
// seed-derived chaos plan — and requires byte-identical transcripts,
// committed state, and fault-sensitive traces. This is the inertness
// pin: a tracer that perturbed the RNG, charged virtual time, or sent a
// message would diverge here.
func TestTraceDifferentialOracleWorkloads(t *testing.T) {
	for _, w := range []oracle.Workload{oracle.Banking(), oracle.YCSB()} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				cfg := oracle.DefaultConfig()
				plan := chaos.FromSeed(seed, cfg.Horizon)
				for _, faulted := range []bool{false, true} {
					var p *chaos.Plan
					if faulted {
						p = &plan
					}
					cfg.Traced = false
					off, err := oracle.RunOnce(w, stateflow.BackendStateFlow, seed, p, cfg)
					if err != nil {
						t.Fatalf("seed %d faulted=%v untraced: %v", seed, faulted, err)
					}
					cfg.Traced = true
					on, err := oracle.RunOnce(w, stateflow.BackendStateFlow, seed, p, cfg)
					if err != nil {
						t.Fatalf("seed %d faulted=%v traced: %v", seed, faulted, err)
					}
					if on.Transcript != off.Transcript {
						t.Fatalf("seed %d faulted=%v: transcripts diverge:\n--- traced ---\n%s--- untraced ---\n%s",
							seed, faulted, on.Transcript, off.Transcript)
					}
					if on.StateDigest != off.StateDigest {
						t.Fatalf("seed %d faulted=%v: committed state diverges:\n--- traced ---\n%s--- untraced ---\n%s",
							seed, faulted, on.StateDigest, off.StateDigest)
					}
					if on.Trace != off.Trace {
						t.Fatalf("seed %d faulted=%v: fault-sensitive traces diverge (tracing is not inert):\n--- traced ---\n%s--- untraced ---\n%s",
							seed, faulted, on.Trace, off.Trace)
					}
				}
			}
		})
	}
}

// runTracedChain executes a k=24 transfer chain on a traced StateFlow
// deployment and returns the attached tracer. With shards > 1 the
// chain's neighbouring accounts land on different shards, so the run
// exercises the full cross-shard path: fence wait, global-batch
// execution, __apply__, unfence.
func runTracedChain(t *testing.T, shards int, seed int64) *stateflow.Tracer {
	t.Helper()
	const k = 24
	key := func(i int) string { return ycsb.Key(i) }
	tracer := stateflow.NewTracer()
	prog := stateflow.MustCompile(ycsb.Program())
	sim := stateflow.NewSimulation(prog, stateflow.SimConfig{
		Backend: stateflow.BackendStateFlow,
		Seed:    seed,
		Epoch:   10 * time.Millisecond,
		Shards:  shards,
		Tracer:  tracer,
	})
	admin := sim.Client().Admin()
	for i := 0; i <= k; i++ {
		if err := admin.Preload("Account",
			stateflow.Str(key(i)), stateflow.Int(1000), stateflow.Str("")); err != nil {
			t.Fatalf("preload: %v", err)
		}
	}
	futs := make([]*stateflow.Future, 0, k)
	for i := 0; i < k; i++ {
		e := sim.Client().Entity("Account", key(i)).
			With(stateflow.WithKind("transfer"), stateflow.WithTimeout(time.Minute))
		futs = append(futs, e.Submit("transfer",
			stateflow.Int(5), stateflow.Ref("Account", key(i+1))))
	}
	for i, f := range futs {
		res, err := f.Wait()
		if err != nil || res.Err != "" || !res.Value.B {
			t.Fatalf("shards=%d transfer %d: err=%v res=(%s,%q)",
				shards, i, err, res.Value.Repr(), res.Err)
		}
	}
	sim.Run(time.Second) // settle
	if sim.Tracer().Len() == 0 {
		t.Fatalf("shards=%d: traced run recorded no events", shards)
	}
	return sim.Tracer()
}

// traceJSON serializes a tracer and fails the test on error.
func traceJSON(t *testing.T, tr *stateflow.Tracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestTraceSameSeedByteIdentical pins trace determinism: two runs of the
// same seed must serialize byte-identical Chrome trace-event JSON, and
// the output must be valid JSON in the trace-event envelope.
func TestTraceSameSeedByteIdentical(t *testing.T) {
	for _, shards := range []int{1, 2} {
		a := traceJSON(t, runTracedChain(t, shards, 7))
		b := traceJSON(t, runTracedChain(t, shards, 7))
		if !bytes.Equal(a, b) {
			t.Fatalf("shards=%d: same-seed traces diverge:\n--- run 1 ---\n%s--- run 2 ---\n%s",
				shards, a, b)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(a, &doc); err != nil {
			t.Fatalf("shards=%d: trace is not valid JSON: %v", shards, err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Fatalf("shards=%d: trace-event envelope is empty", shards)
		}
	}
}

// TestCrossShardTraceCoverage asserts the span surface: a cross-shard
// run's trace must name every phase of a cross-shard transaction —
// fence wait, global-batch execution, __apply__, unfence — alongside
// the per-epoch phases every StateFlow run reports.
func TestCrossShardTraceCoverage(t *testing.T) {
	spans := runTracedChain(t, 2, 7).SpanNames()
	names := map[string]bool{}
	for _, n := range spans {
		names[n] = true
	}
	for _, want := range []string{
		"ingress.queue", "execute", "validate", "apply", "epoch.advance",
		"fence.wait", "global.execute", "__apply__", "unfence",
	} {
		if !names[want] {
			t.Errorf("cross-shard trace is missing the %q phase (got %v)", want, spans)
		}
	}
}
