// Differential tests for Aria's deterministic fallback phase: contended
// workloads run with the fallback on and off, and the two modes must
// produce identical responses and byte-identical committed state — the
// fallback's re-execution rounds replay exactly the serial order the
// legacy one-commit-per-batch retry drain would have produced. The
// chained-transfer workload is additionally checked across every
// simulated backend: its final balances are a pure function of the
// transfer list, so StateFlow (either commit strategy) and the
// StateFun-model baseline must all converge to the same state.
package stateflow_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"statefulentities.dev/stateflow"
	"statefulentities.dev/stateflow/internal/chaos/oracle"
	"statefulentities.dev/stateflow/internal/workload/ycsb"
)

// dumpClass canonically renders the committed state of one class.
func dumpClass(admin stateflow.Admin, class string) string {
	var b strings.Builder
	for _, key := range admin.Keys(class) {
		st, ok := admin.Inspect(class, key)
		if !ok {
			fmt.Fprintf(&b, "%s<%s> MISSING\n", class, key)
			continue
		}
		attrs := make([]string, 0, len(st))
		for a := range st {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		fmt.Fprintf(&b, "%s<%s>", class, key)
		for _, a := range attrs {
			fmt.Fprintf(&b, " %s=%s", a, st[a].Repr())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestFallbackDifferentialOracleWorkloads drives the oracle's contended
// workloads (banking: fully contended transfer pool; ycsb: mixed
// read/update/transfer) fault-free on StateFlow with the fallback phase
// on and off: transcripts and committed state must be byte-identical.
func TestFallbackDifferentialOracleWorkloads(t *testing.T) {
	for _, w := range []oracle.Workload{oracle.Banking(), oracle.YCSB()} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				cfg := oracle.DefaultConfig()
				on, err := oracle.RunOnce(w, stateflow.BackendStateFlow, seed, nil, cfg)
				if err != nil {
					t.Fatalf("seed %d fallback-on: %v", seed, err)
				}
				cfg.DisableFallback = true
				off, err := oracle.RunOnce(w, stateflow.BackendStateFlow, seed, nil, cfg)
				if err != nil {
					t.Fatalf("seed %d fallback-off: %v", seed, err)
				}
				if on.Transcript != off.Transcript {
					t.Fatalf("seed %d: transcripts diverge:\n--- fallback on ---\n%s--- fallback off ---\n%s",
						seed, on.Transcript, off.Transcript)
				}
				if on.StateDigest != off.StateDigest {
					t.Fatalf("seed %d: committed state diverges:\n--- fallback on ---\n%s--- fallback off ---\n%s",
						seed, on.StateDigest, off.StateDigest)
				}
			}
		})
	}
}

// TestFallbackDifferentialChainAcrossBackends commits a k=32 transfer
// chain on StateFlow with the fallback on, with it off, and on the
// StateFun-model baseline, and requires byte-identical final committed
// state from all three: the chain's outcome is independent of the commit
// strategy, so any divergence is a lost or duplicated effect.
func TestFallbackDifferentialChainAcrossBackends(t *testing.T) {
	const k = 32
	key := func(i int) string { return ycsb.Key(i) }

	runChain := func(backend stateflow.Backend, disableFallback bool) string {
		prog := stateflow.MustCompile(ycsb.Program())
		sim := stateflow.NewSimulation(prog, stateflow.SimConfig{
			Backend:         backend,
			Seed:            7,
			Epoch:           20 * time.Millisecond,
			DisableFallback: disableFallback,
		})
		admin := sim.Client().Admin()
		for i := 0; i <= k; i++ {
			if err := admin.Preload("Account",
				stateflow.Str(key(i)), stateflow.Int(1000), stateflow.Str("")); err != nil {
				t.Fatalf("preload: %v", err)
			}
		}
		futs := make([]*stateflow.Future, 0, k)
		for i := 0; i < k; i++ {
			e := sim.Client().Entity("Account", key(i)).
				With(stateflow.WithKind("transfer"), stateflow.WithTimeout(time.Minute))
			futs = append(futs, e.Submit("transfer",
				stateflow.Int(5), stateflow.Ref("Account", key(i+1))))
		}
		for i, f := range futs {
			res, err := f.Wait()
			if err != nil || res.Err != "" || !res.Value.B {
				t.Fatalf("%s disableFallback=%v: transfer %d: err=%v res=(%s,%q)",
					backend, disableFallback, i, err, res.Value.Repr(), res.Err)
			}
		}
		sim.Run(time.Second) // settle
		return dumpClass(admin, "Account")
	}

	on := runChain(stateflow.BackendStateFlow, false)
	off := runChain(stateflow.BackendStateFlow, true)
	base := runChain(stateflow.BackendStateFun, false)
	if on != off {
		t.Fatalf("StateFlow fallback on/off state diverges:\n--- on ---\n%s--- off ---\n%s", on, off)
	}
	if on != base {
		t.Fatalf("StateFlow/StateFun state diverges:\n--- stateflow ---\n%s--- statefun ---\n%s", on, base)
	}
}
