// Tests of the public API surface: compile + the three runtimes behind one
// program, exercised the way a downstream user would.
package stateflow_test

import (
	"strings"
	"testing"
	"time"

	"statefulentities.dev/stateflow"
)

func TestCompilePublicAPI(t *testing.T) {
	prog, err := stateflow.Compile(figure1)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Operator("User") == nil || prog.Operator("Item") == nil {
		t.Fatal("operators missing")
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Report(), "buy_item") {
		t.Fatal("report")
	}
	if !strings.Contains(prog.Dot(), "digraph") {
		t.Fatal("dot")
	}
}

func TestCompileErrorSurfaced(t *testing.T) {
	_, err := stateflow.Compile("class X:\n    pass\n")
	if err == nil {
		t.Fatal("expected compile error")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	stateflow.MustCompile("not a program")
}

func TestLocalRuntimePublicAPI(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	rt := stateflow.NewLocal(prog)
	if _, err := rt.Create("Item", stateflow.Str("apple"), stateflow.Int(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Create("User", stateflow.Str("u")); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke("Item", "apple", "update_stock", stateflow.Int(10)); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Invoke("User", "u", "buy_item", stateflow.Int(2), stateflow.Ref("Item", "apple"))
	if err != nil || res.Err != "" {
		t.Fatalf("%v %s", err, res.Err)
	}
	if !res.Value.B {
		t.Fatalf("buy: %v", res.Value)
	}
}

func TestSimulationStateFlowBackend(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{
		Backend: stateflow.BackendStateFlow, Epoch: 5 * time.Millisecond,
	})
	if err := simu.Preload("Item", stateflow.Str("apple"), stateflow.Int(3)); err != nil {
		t.Fatal(err)
	}
	if err := simu.Preload("User", stateflow.Str("u")); err != nil {
		t.Fatal(err)
	}
	if _, err := simu.Call("Item", "apple", "update_stock", stateflow.Int(10)); err != nil {
		t.Fatal(err)
	}
	res, err := simu.Call("User", "u", "buy_item", stateflow.Int(2), stateflow.Ref("Item", "apple"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" || !res.Value.B {
		t.Fatalf("buy: %+v", res)
	}
	if res.Latency <= 0 {
		t.Fatal("latency not measured")
	}
	st, ok := simu.EntityState("User", "u")
	if !ok || st["balance"].I != 94 {
		t.Fatalf("state: %v", st)
	}
}

func TestSimulationStateFunBackend(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{
		Backend: stateflow.BackendStateFun,
	})
	if err := simu.Preload("Item", stateflow.Str("apple"), stateflow.Int(3)); err != nil {
		t.Fatal(err)
	}
	res, err := simu.Call("Item", "apple", "get_price")
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" || res.Value.I != 3 {
		t.Fatalf("get_price: %+v", res)
	}
	if simu.StateFun() == nil || simu.StateFlow() != nil {
		t.Fatal("backend accessors")
	}
}

func TestSimulationCreateThroughDataflow(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{})
	res, err := simu.Create("User", stateflow.Str("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("create: %s", res.Err)
	}
	if res.Value.R.Key != "fresh" {
		t.Fatalf("ref: %v", res.Value)
	}
}

func TestSimulationSubmitRace(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{Epoch: 10 * time.Millisecond})
	if err := simu.Preload("Item", stateflow.Str("apple"), stateflow.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := simu.Preload("User", stateflow.Str("a")); err != nil {
		t.Fatal(err)
	}
	if err := simu.Preload("User", stateflow.Str("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := simu.Call("Item", "apple", "update_stock", stateflow.Int(3)); err != nil {
		t.Fatal(err)
	}
	// Two buyers race for 3 units, 2 each: transactional isolation admits
	// exactly one winner.
	ra := simu.Submit("User", "a", "buy_item", stateflow.Int(2), stateflow.Ref("Item", "apple"))
	rb := simu.Submit("User", "b", "buy_item", stateflow.Int(2), stateflow.Ref("Item", "apple"))
	simu.Run(5 * time.Second)
	wins := 0
	if ra().B {
		wins++
	}
	if rb().B {
		wins++
	}
	if wins != 1 {
		t.Fatalf("winners: %d", wins)
	}
	st, _ := simu.EntityState("Item", "apple")
	if st["stock"].I != 1 {
		t.Fatalf("stock: %v", st["stock"])
	}
}

func TestPreloadAfterStartRejected(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{})
	if err := simu.Preload("User", stateflow.Str("u")); err != nil {
		t.Fatal(err)
	}
	if _, err := simu.Call("User", "u", "buy_item", stateflow.Int(1), stateflow.Ref("Item", "x")); err != nil {
		t.Fatal(err)
	}
	if err := simu.Preload("User", stateflow.Str("late")); err == nil {
		t.Fatal("preload after start must fail")
	}
}

func TestValueConstructors(t *testing.T) {
	if stateflow.Int(3).I != 3 || stateflow.Str("s").S != "s" ||
		!stateflow.Bool(true).B || stateflow.Float(1.5).F != 1.5 {
		t.Fatal("scalar constructors")
	}
	l := stateflow.List(stateflow.Int(1), stateflow.Int(2))
	if len(l.L.Elems) != 2 {
		t.Fatal("list constructor")
	}
	r := stateflow.Ref("C", "k")
	if r.R.Class != "C" || r.R.Key != "k" {
		t.Fatal("ref constructor")
	}
	if stateflow.None.IsTruthy() {
		t.Fatal("None")
	}
}
