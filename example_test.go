package stateflow_test

import (
	"fmt"
	"time"

	"statefulentities.dev/stateflow"
)

const exampleSrc = `
@entity
class Account:
    def __init__(self, owner: str, balance: int):
        self.owner: str = owner
        self.balance: int = balance

    def __key__(self) -> str:
        return self.owner

    def read(self) -> int:
        return self.balance

    def deposit(self, amount: int) -> bool:
        self.balance += amount
        return True

    @transactional
    def transfer(self, amount: int, to: Account) -> bool:
        if self.balance < amount:
            return False
        self.balance -= amount
        to.deposit(amount)
        return True
`

// ExampleClient shows the portable caller surface: the same code runs on
// any runtime — swap NewLocalClient for NewSimulation(...).Client() or
// NewLiveClient and nothing else changes.
func ExampleClient() {
	prog := stateflow.MustCompile(exampleSrc)
	var c stateflow.Client = stateflow.NewLocalClient(prog)

	alice, _ := c.Create("Account", stateflow.Str("alice"), stateflow.Int(100))
	bob, _ := c.Create("Account", stateflow.Str("bob"), stateflow.Int(50))

	res, _ := alice.Call("transfer", stateflow.Int(30), bob.RefValue())
	fmt.Println("transfer ok:", res.Value.Repr())

	st, _ := c.Admin().Inspect("Account", "bob")
	fmt.Println("bob balance:", st["balance"].Repr())
	// Output:
	// transfer ok: True
	// bob balance: 80
}

// ExampleEntity_Submit races two concurrent transfers on a simulated
// distributed deployment; each Future carries the full outcome.
func ExampleEntity_Submit() {
	prog := stateflow.MustCompile(exampleSrc)
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{
		Backend: stateflow.BackendStateFlow, Epoch: 5 * time.Millisecond,
	})
	c := simu.Client()
	admin := c.Admin()
	for _, n := range []string{"alice", "bob"} {
		_ = admin.Preload("Account", stateflow.Str(n), stateflow.Int(100))
	}

	// Submit without waiting, then advance virtual time.
	f1 := c.Entity("Account", "alice").Submit("transfer", stateflow.Int(70), stateflow.Ref("Account", "bob"))
	f2 := c.Entity("Account", "alice").Submit("transfer", stateflow.Int(70), stateflow.Ref("Account", "bob"))
	simu.Run(5 * time.Second)

	r1, _ := f1.Wait()
	r2, _ := f2.Wait()
	// Transactional isolation admits exactly one of the conflicting
	// transfers (alice only has 100).
	fmt.Println("both succeeded:", r1.Value.B && r2.Value.B)
	fmt.Println("one succeeded:", r1.Value.B != r2.Value.B)
	// Output:
	// both succeeded: false
	// one succeeded: true
}

// ExampleEntity_With tunes delivery per handle: request tagging and the
// simulation's timeout/polling budget.
func ExampleEntity_With() {
	prog := stateflow.MustCompile(exampleSrc)
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{})
	c := simu.Client()
	_ = c.Admin().Preload("Account", stateflow.Str("alice"), stateflow.Int(100))

	alice := c.Entity("Account", "alice").With(
		stateflow.WithKind("read"),
		stateflow.WithTimeout(10*time.Second),
		stateflow.WithPatience(time.Millisecond),
	)
	res, err := alice.Call("read")
	fmt.Println(res.Value.Repr(), err)
	// Output:
	// 100 <nil>
}
