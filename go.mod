module statefulentities.dev/stateflow

go 1.24
