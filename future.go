package stateflow

import "sync"

// Future is the handle to a submitted invocation. Unlike a bare result
// getter it carries the full outcome — Value, Err, Retries, Latency — plus
// the completion state, uniformly across all runtimes:
//
//   - on Local, futures are born complete (the runtime is synchronous);
//   - on a Simulation, Wait drives virtual time until the response arrives
//     (or the handle's timeout budget runs out), while Done/Peek only
//     observe time already simulated (via Run or other calls);
//   - on Live, Wait blocks the calling goroutine; shutdown fails pending
//     futures instead of stranding their waiters.
//
// A Future resolves at most once: the first observed outcome is memoized
// and every accessor afterwards returns it. A transport error from Wait
// (a timeout, say) does NOT resolve the future — the request keeps
// running, and a later Wait (after more virtual time on a Simulation, or
// more wall clock on Live) can still observe the real outcome. Futures
// from the Live runtime are safe to share across goroutines; Simulation
// futures, like the Simulation itself, are single-threaded.
type Future struct {
	ref    EntityRef
	method string
	id     string

	mu   sync.Mutex
	done bool
	res  Result
	err  error

	// poll reports the outcome without blocking or advancing time.
	poll func() (Result, error, bool)
	// wait blocks (or drives virtual time) until the outcome is known.
	wait func() (Result, error)
}

// newFuture wires a backend's poll/wait hooks into a Future.
func newFuture(ref EntityRef, method string, poll func() (Result, error, bool), wait func() (Result, error)) *Future {
	return &Future{ref: ref, method: method, poll: poll, wait: wait}
}

// completedFuture is born resolved (the Local runtime answers
// synchronously at submit time).
func completedFuture(ref EntityRef, method string, res Result, err error) *Future {
	return &Future{ref: ref, method: method, done: true, res: res, err: err}
}

// Target returns the entity the call was addressed to.
func (f *Future) Target() EntityRef { return f.ref }

// Method returns the invoked method name.
func (f *Future) Method() string { return f.method }

// RequestID returns the wire-level request id the runtime minted for this
// submission, or "" when the runtime answers synchronously and mints none
// (Local). The id is what dedup journals and the coordinator's commit tap
// key on, so harnesses can join a Future's outcome against backend-side
// observations (e.g. Simulation.CommitSerials).
func (f *Future) RequestID() string { return f.id }

// Wait returns the outcome, blocking (Live), driving virtual time
// (Simulation) or returning immediately (Local) until it is known. The
// error is transport-level — timeout or runtime shutdown; application
// failures travel in Result.Err. A transport error leaves the future
// unresolved, so Wait can be retried.
//
// The lock is NOT held while the backend waits: concurrent Done/Peek
// calls stay non-blocking, and concurrent Waits each wait and agree on
// the first memoized outcome.
func (f *Future) Wait() (Result, error) {
	f.mu.Lock()
	if f.done {
		defer f.mu.Unlock()
		return f.res, f.err
	}
	f.mu.Unlock()
	res, err := f.wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return f.res, f.err
	}
	if err != nil {
		// Transport failure (e.g. timeout): the request may yet complete;
		// leave the future unresolved so a retry can observe it.
		return Result{}, err
	}
	f.res, f.done = res, true
	return f.res, nil
}

// Peek reports the outcome if the future has completed, without blocking
// or advancing time. When it returns true, Wait returns the same outcome
// immediately (including a permanent transport error such as runtime
// shutdown — poll only ever reports terminal states).
func (f *Future) Peek() (Result, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.done {
		res, err, ok := f.poll()
		if !ok {
			return Result{}, false
		}
		f.res, f.err, f.done = res, err, true
	}
	return f.res, true
}

// Done reports completion without blocking or advancing time.
func (f *Future) Done() bool {
	_, ok := f.Peek()
	return ok
}
