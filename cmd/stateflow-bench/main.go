// Command stateflow-bench regenerates the paper's evaluation (§4) on the
// deterministic cluster simulation:
//
//	-exp fig3         Figure 3: p99 latency, YCSB A/B/T x {zipfian, uniform} at 100 RPS
//	-exp fig4         Figure 4: p50/p99 latency vs input throughput, workload M
//	-exp overhead     §4 system overhead: per-component breakdown, state 50-200 KB
//	-exp consistency  lost updates on the baseline vs StateFlow transactions
//	-exp all          everything (default)
//
// Absolute numbers come from a calibrated simulation, not the authors'
// testbed; the shapes (who wins, by what factor, where the knee falls) are
// the reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"statefulentities.dev/stateflow/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig3 | fig4 | overhead | consistency | dlog | contention | sharding | scoped | all")
	duration := flag.Duration("duration", 30*time.Second, "measured virtual time per point")
	warmup := flag.Duration("warmup", 3*time.Second, "virtual warm-up discarded from stats")
	records := flag.Int("records", 1000, "YCSB dataset size")
	seed := flag.Int64("seed", 1, "simulation seed")
	epoch := flag.Duration("epoch", 10*time.Millisecond, "StateFlow batch (epoch) interval")
	benchJSON := flag.String("bench-json", "", "with -exp dlog or -exp contention: also write the rows as a JSON benchmark artifact to this path (contention bundles the dlog rows — the BENCH_pr6.json shape CI enforces)")
	noFallback := flag.Bool("no-fallback", false, "disable Aria's deterministic fallback phase on the StateFlow runtime (the contention experiment always measures both modes)")
	noPipelining := flag.Bool("no-pipelining", false, "force the serial epoch schedule on the StateFlow runtime (the dlog and contention experiments always measure both schedules)")
	flag.Parse()

	opt := bench.DefaultOptions()
	opt.Duration = *duration
	opt.WarmUp = *warmup
	opt.Records = *records
	opt.Seed = *seed
	opt.Epoch = *epoch
	opt.NoFallback = *noFallback
	opt.NoPipelining = *noPipelining

	run := func(name string) {
		start := time.Now()
		switch name {
		case "fig3":
			pts, err := bench.RunFig3(opt)
			check(err)
			fmt.Print(bench.PrintFig3(pts))
		case "fig4":
			pts, err := bench.RunFig4(opt, nil)
			check(err)
			fmt.Print(bench.PrintFig4(pts))
		case "overhead":
			rows, err := bench.RunOverhead(opt, nil)
			check(err)
			fmt.Print(bench.PrintOverhead(rows))
		case "consistency":
			rows, err := bench.RunConsistency(opt)
			check(err)
			fmt.Print(bench.PrintConsistency(rows))
		case "ablation-epoch":
			rows, err := bench.RunEpochAblation(opt, nil)
			check(err)
			fmt.Print(bench.PrintAblation("Ablation: Aria epoch interval (workload T, zipfian, 100 RPS)", rows))
		case "ablation-workers":
			rows, err := bench.RunWorkerAblation(opt, nil)
			check(err)
			fmt.Print(bench.PrintAblation("Ablation: worker count (workload M, 2000 RPS)", rows))
		case "ablation-contention":
			rows, err := bench.RunContentionAblation(opt, nil)
			check(err)
			fmt.Print(bench.PrintAblation("Ablation: contention via dataset size (workload T, zipfian, 200 RPS)", rows))
		case "dlog":
			rows, err := bench.RunDlog(opt)
			check(err)
			fmt.Print(bench.PrintDlog(rows))
			if *benchJSON != "" {
				check(bench.WriteDlogJSON(*benchJSON, opt, rows))
				fmt.Printf("wrote %s\n", *benchJSON)
			}
		case "sharding":
			rows, err := bench.RunSharding(opt)
			check(err)
			fmt.Print(bench.PrintSharding(rows))
		case "scoped":
			rows, err := bench.RunScopedFences(opt)
			check(err)
			fmt.Print(bench.PrintScopedFences(rows))
		case "contention":
			rows, err := bench.RunContention(opt)
			check(err)
			fmt.Print(bench.PrintContention(rows))
			if *benchJSON != "" {
				// The artifact carries the dlog, sharded-scaling and
				// scoped-fence experiments too: one BENCH_*.json per PR
				// accumulates the whole perf trajectory (see
				// cmd/bench-compare).
				dlogRows, err := bench.RunDlog(opt)
				check(err)
				fmt.Print(bench.PrintDlog(dlogRows))
				shardRows, err := bench.RunSharding(opt)
				check(err)
				fmt.Print(bench.PrintSharding(shardRows))
				scopedRows, err := bench.RunScopedFences(opt)
				check(err)
				fmt.Print(bench.PrintScopedFences(scopedRows))
				check(bench.WritePR5JSON(*benchJSON, opt, rows, dlogRows, shardRows, scopedRows))
				fmt.Printf("wrote %s\n", *benchJSON)
			}
		default:
			fmt.Fprintf(os.Stderr, "stateflow-bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("(%s completed in %s real time)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, name := range []string{"fig3", "fig4", "overhead", "consistency",
			"ablation-epoch", "ablation-workers", "ablation-contention"} {
			run(name)
		}
		return
	}
	run(*exp)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stateflow-bench:", err)
		os.Exit(1)
	}
}
