// Command bench-compare is the CI bench-regression gate: it compares a
// freshly re-run contention benchmark against the checked-in baseline
// (BENCH_pr10.json) and fails if the Aria fallback's wins, the epoch
// pipeline's fsync merge, the sharded topology's scaling, or the
// footprint-scoped fence schedule's untouched-shard win regress.
//
//	bench-compare -baseline BENCH_pr10.json -current /tmp/BENCH_now.json
//
// The gated metrics are deterministic functions of the simulation seed —
// commits-per-batch and the fallback-on/off virtual-latency ratio — so
// the comparison is stable on shared runners: an unchanged protocol
// reproduces the baseline exactly, and only a real behavioral regression
// (or an intentional, reviewed change to the protocol that warrants
// regenerating the baseline) moves them. Wall-clock fields (ns/commit,
// wall_ms) are reported for the trajectory but never gated.
//
// Checks:
//
//  1. commits-per-batch with the fallback on must not drop below the
//     baseline: the chain must keep draining in O(1) batches.
//  2. the fallback-on/off virtual-latency ratio (p50 and p99) must not
//     regress by more than 15% relative to the baseline ratio.
//  3. both modes must commit every transaction (equivalence: the
//     fallback changes when transactions commit, never whether).
//  4. the pipelined dlog-on hot path must keep its fsync merge: fsyncs
//     per commit at most 1/1.5 of the serial dlog-on baseline, virtual
//     p50 no worse than it, and the pipeline-on/off fsync ratio no worse
//     than the baseline's. The serial baseline row resolves from the
//     ".../pipeline=off" name, falling back to the PR 5-era
//     "coordinator-hotpath/dlog=on" so older artifacts still gate.
//  5. the sharded topology must keep scaling: 4-shard virtual throughput
//     on the sharded mix at least 2.5x the 1-shard row, and the realized
//     scaling ratio must not regress more than 15% against the baseline.
//     Skipped (with a note) when the baseline predates the sharding rows
//     (BENCH_pr6.json-era artifacts); the current artifact must carry
//     them once the baseline does.
//  6. footprint-scoped fences must keep untouched shards fast: on the
//     mixed workload (updates pinned to shards the transfers never touch)
//     the scoped schedule's untouched-shard throughput must be at least
//     1.5x the fence-everything reference, and the realized ratio must
//     not regress more than 15% against the baseline. The scoped row must
//     record ScopedFences > 0 and the reference row ScopedFences == 0 —
//     otherwise the comparison is vacuous (the workload stopped
//     exercising scoping, or the reference stopped fencing everything).
//     Skipped (with a note) when the baseline predates the scoped-fence
//     rows (pre-PR 10 artifacts).
package main

import (
	"flag"
	"fmt"
	"os"

	"statefulentities.dev/stateflow/internal/bench"
)

// tolerance is the allowed relative regression of the latency ratio.
const tolerance = 0.15

// syncMergeFactor is the minimum fsync reduction the pipelined schedule
// must hold over the serial dlog-on baseline: adjacent epochs share one
// group-commit sync, so fsyncs per commit must drop at least 1.5x.
const syncMergeFactor = 1.5

// shardScalingFloor is the minimum 4-shard/1-shard virtual-throughput
// ratio on the sharded scaling mix: four coordinator groups must buy at
// least 2.5x the single-coordinator drain rate.
const shardScalingFloor = 2.5

// scopedFenceFloor is the minimum untouched-shard throughput ratio of
// the footprint-scoped fence schedule over the fence-everything
// reference: traffic outside a global batch's footprint must run at
// least 1.5x faster than it would if every batch parked the cluster.
const scopedFenceFloor = 1.5

func main() {
	baselinePath := flag.String("baseline", "BENCH_pr10.json", "checked-in benchmark baseline")
	currentPath := flag.String("current", "", "freshly generated benchmark artifact to gate")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "bench-compare: -current is required")
		os.Exit(2)
	}

	baseline, err := bench.ReadPR5JSON(*baselinePath)
	check(err)
	current, err := bench.ReadPR5JSON(*currentPath)
	check(err)

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(os.Stderr, "bench-compare: FAIL: "+format+"\n", args...)
	}

	baseOn, err := baseline.FindContention("contention/fallback=on")
	check(err)
	baseOff, err := baseline.FindContention("contention/fallback=off")
	check(err)
	curOn, err := current.FindContention("contention/fallback=on")
	check(err)
	curOff, err := current.FindContention("contention/fallback=off")
	check(err)

	// 1. Commits-per-batch must not drop. Deterministic: a tiny epsilon
	// absorbs float formatting, not behavior.
	if curOn.CommitsPerBatch < baseOn.CommitsPerBatch*0.999 {
		fail("commits-per-batch dropped: %.2f (baseline %.2f) — the fallback no longer drains the chain in-batch",
			curOn.CommitsPerBatch, baseOn.CommitsPerBatch)
	}

	// 2. The on/off virtual-latency ratio must not regress > 15%.
	for _, m := range []struct {
		name          string
		baseOn, curOn float64
		baseOff       float64
		curOff        float64
	}{
		{"p50", baseOn.VirtualP50Ms, curOn.VirtualP50Ms, baseOff.VirtualP50Ms, curOff.VirtualP50Ms},
		{"p99", baseOn.VirtualP99Ms, curOn.VirtualP99Ms, baseOff.VirtualP99Ms, curOff.VirtualP99Ms},
	} {
		if m.baseOff <= 0 || m.curOff <= 0 {
			fail("%s: degenerate fallback-off latency (baseline %.3f, current %.3f)", m.name, m.baseOff, m.curOff)
			continue
		}
		baseRatio := m.baseOn / m.baseOff
		curRatio := m.curOn / m.curOff
		if curRatio > baseRatio*(1+tolerance) {
			fail("%s fallback-on/off latency ratio regressed: %.4f (baseline %.4f, tolerance %d%%)",
				m.name, curRatio, baseRatio, int(tolerance*100))
		}
		fmt.Printf("bench-compare: %s ratio on/off: %.4f (baseline %.4f)\n", m.name, curRatio, baseRatio)
	}

	// 3. Equivalence: both modes commit the full workload.
	if curOn.Commits != curOff.Commits {
		fail("fallback on/off commit counts diverge: %d vs %d", curOn.Commits, curOff.Commits)
	}
	if curOn.Commits != baseOn.Commits {
		fail("workload size changed: %d commits (baseline %d) — regenerate the baseline deliberately",
			curOn.Commits, baseOn.Commits)
	}

	fmt.Printf("bench-compare: commits/batch on=%.2f off=%.2f (baseline on=%.2f off=%.2f)\n",
		curOn.CommitsPerBatch, curOff.CommitsPerBatch, baseOn.CommitsPerBatch, baseOff.CommitsPerBatch)

	// 4. The pipelined epoch schedule's fsync merge. The serial baseline
	// is the pipeline=off row when the artifact has the dimension, or the
	// PR 5-era dlog=on row when it predates pipelining.
	syncsPerCommit := func(r bench.DlogRow) float64 {
		if r.Commits == 0 {
			return 0
		}
		return float64(r.LogSyncs) / float64(r.Commits)
	}
	baseSerial, err := baseline.FindDlog(
		"coordinator-hotpath/dlog=on/pipeline=off", "coordinator-hotpath/dlog=on")
	check(err)
	curPipe, err := current.FindDlog("coordinator-hotpath/dlog=on/pipeline=on")
	check(err)
	curSerial, err := current.FindDlog("coordinator-hotpath/dlog=on/pipeline=off")
	check(err)
	if syncsPerCommit(curPipe) <= 0 || syncsPerCommit(curSerial) <= 0 || syncsPerCommit(baseSerial) <= 0 {
		fail("degenerate dlog sync counts (pipelined %d/%d, serial %d/%d, baseline %d/%d)",
			curPipe.LogSyncs, curPipe.Commits, curSerial.LogSyncs, curSerial.Commits,
			baseSerial.LogSyncs, baseSerial.Commits)
	} else {
		merge := syncsPerCommit(baseSerial) / syncsPerCommit(curPipe)
		if merge < syncMergeFactor {
			fail("pipelined fsync merge regressed: %.2fx fewer syncs/commit than the serial baseline (need >= %.1fx)",
				merge, syncMergeFactor)
		}
		if curPipe.VirtualP50Ms > baseSerial.VirtualP50Ms*(1+tolerance) {
			fail("pipelined virtual p50 regressed vs serial baseline: %.3fms (baseline %.3fms, tolerance %d%%)",
				curPipe.VirtualP50Ms, baseSerial.VirtualP50Ms, int(tolerance*100))
		}
		curRatio := syncsPerCommit(curPipe) / syncsPerCommit(curSerial)
		if baseSerialOff, err := baseline.FindDlog("coordinator-hotpath/dlog=on/pipeline=off"); err == nil {
			if basePipe, err := baseline.FindDlog("coordinator-hotpath/dlog=on/pipeline=on"); err == nil {
				baseRatio := syncsPerCommit(basePipe) / syncsPerCommit(baseSerialOff)
				if curRatio > baseRatio*(1+tolerance) {
					fail("pipeline on/off syncs-per-commit ratio regressed: %.4f (baseline %.4f, tolerance %d%%)",
						curRatio, baseRatio, int(tolerance*100))
				}
			}
		}
		if curRatio >= 1 {
			fail("pipelining no longer merges fsyncs: on/off syncs-per-commit ratio %.4f (must be < 1)", curRatio)
		}
		fmt.Printf("bench-compare: fsync merge %.2fx vs serial baseline; pipelined p50 %.3fms (serial baseline %.3fms); on/off syncs ratio %.4f\n",
			merge, curPipe.VirtualP50Ms, baseSerial.VirtualP50Ms, curRatio)
	}

	// 5. Sharded scaling. Gated only once the baseline carries the rows:
	// a BENCH_pr6.json-era baseline predates the sharded topology, and
	// requiring rows it cannot have would block the artifact handover.
	if len(baseline.Sharding) == 0 {
		fmt.Println("bench-compare: baseline has no sharding rows (pre-PR 8 artifact); scaling gate skipped")
	} else {
		cur1, err := current.FindSharding(1)
		check(err)
		cur4, err := current.FindSharding(4)
		check(err)
		base1, err := baseline.FindSharding(1)
		check(err)
		base4, err := baseline.FindSharding(4)
		check(err)
		if cur1.TxnPerVirtualSec <= 0 || base1.TxnPerVirtualSec <= 0 {
			fail("degenerate 1-shard throughput (current %.0f, baseline %.0f)",
				cur1.TxnPerVirtualSec, base1.TxnPerVirtualSec)
		} else {
			scale := cur4.TxnPerVirtualSec / cur1.TxnPerVirtualSec
			baseScale := base4.TxnPerVirtualSec / base1.TxnPerVirtualSec
			if scale < shardScalingFloor {
				fail("4-shard scaling below floor: %.2fx the 1-shard throughput (need >= %.1fx)",
					scale, shardScalingFloor)
			}
			if scale < baseScale*(1-tolerance) {
				fail("4-shard scaling ratio regressed: %.2fx (baseline %.2fx, tolerance %d%%)",
					scale, baseScale, int(tolerance*100))
			}
			if cur4.GlobalTxns == 0 {
				fail("4-shard mix routed no global transactions — the cross-shard tail went unexercised")
			}
			fmt.Printf("bench-compare: sharded scaling 4/1: %.2fx (baseline %.2fx); 4-shard globals %d in %d batches\n",
				scale, baseScale, cur4.GlobalTxns, cur4.GlobalBatches)
		}
	}

	// 6. Footprint-scoped fences. Gated only once the baseline carries
	// the rows: a pre-PR 10 baseline predates the scoped schedule.
	if len(baseline.ScopedFence) == 0 {
		fmt.Println("bench-compare: baseline has no scoped-fence rows (pre-PR 10 artifact); scoped-fence gate skipped")
	} else {
		curScoped, err := current.FindScopedFence(false)
		check(err)
		curFull, err := current.FindScopedFence(true)
		check(err)
		baseScoped, err := baseline.FindScopedFence(false)
		check(err)
		baseFull, err := baseline.FindScopedFence(true)
		check(err)
		if curScoped.ScopedFences == 0 {
			fail("scoped-fence run recorded no scoped fences — every global batch fenced the whole cluster, the gate is vacuous")
		}
		if curFull.ScopedFences != 0 {
			fail("fence-everything reference recorded %d scoped fences — the reference schedule is no longer full-fence",
				curFull.ScopedFences)
		}
		if curFull.UntouchedTxnPerVirtualSec <= 0 || baseFull.UntouchedTxnPerVirtualSec <= 0 {
			fail("degenerate full-fence untouched throughput (current %.0f, baseline %.0f)",
				curFull.UntouchedTxnPerVirtualSec, baseFull.UntouchedTxnPerVirtualSec)
		} else {
			win := curScoped.UntouchedTxnPerVirtualSec / curFull.UntouchedTxnPerVirtualSec
			baseWin := baseScoped.UntouchedTxnPerVirtualSec / baseFull.UntouchedTxnPerVirtualSec
			if win < scopedFenceFloor {
				fail("scoped-fence untouched-shard win below floor: %.2fx the full-fence throughput (need >= %.1fx)",
					win, scopedFenceFloor)
			}
			if win < baseWin*(1-tolerance) {
				fail("scoped-fence untouched-shard win regressed: %.2fx (baseline %.2fx, tolerance %d%%)",
					win, baseWin, int(tolerance*100))
			}
			fmt.Printf("bench-compare: scoped-fence untouched win %.2fx (baseline %.2fx); %d scoped fences over %d global batches\n",
				win, baseWin, curScoped.ScopedFences, curScoped.GlobalBatches)
		}
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: %d check(s) failed against %s\n", failures, *baselinePath)
		os.Exit(1)
	}
	fmt.Println("bench-compare: PASS")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-compare:", err)
		os.Exit(1)
	}
}
