// Command bench-compare is the CI bench-regression gate: it compares a
// freshly re-run contention benchmark against the checked-in baseline
// (BENCH_pr5.json) and fails if the Aria fallback's wins regress.
//
//	bench-compare -baseline BENCH_pr5.json -current /tmp/BENCH_now.json
//
// The gated metrics are deterministic functions of the simulation seed —
// commits-per-batch and the fallback-on/off virtual-latency ratio — so
// the comparison is stable on shared runners: an unchanged protocol
// reproduces the baseline exactly, and only a real behavioral regression
// (or an intentional, reviewed change to the protocol that warrants
// regenerating the baseline) moves them. Wall-clock fields (ns/commit,
// wall_ms) are reported for the trajectory but never gated.
//
// Checks:
//
//  1. commits-per-batch with the fallback on must not drop below the
//     baseline: the chain must keep draining in O(1) batches.
//  2. the fallback-on/off virtual-latency ratio (p50 and p99) must not
//     regress by more than 15% relative to the baseline ratio.
//  3. both modes must commit every transaction (equivalence: the
//     fallback changes when transactions commit, never whether).
package main

import (
	"flag"
	"fmt"
	"os"

	"statefulentities.dev/stateflow/internal/bench"
)

// tolerance is the allowed relative regression of the latency ratio.
const tolerance = 0.15

func main() {
	baselinePath := flag.String("baseline", "BENCH_pr5.json", "checked-in benchmark baseline")
	currentPath := flag.String("current", "", "freshly generated benchmark artifact to gate")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "bench-compare: -current is required")
		os.Exit(2)
	}

	baseline, err := bench.ReadPR5JSON(*baselinePath)
	check(err)
	current, err := bench.ReadPR5JSON(*currentPath)
	check(err)

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(os.Stderr, "bench-compare: FAIL: "+format+"\n", args...)
	}

	baseOn, err := baseline.FindContention("contention/fallback=on")
	check(err)
	baseOff, err := baseline.FindContention("contention/fallback=off")
	check(err)
	curOn, err := current.FindContention("contention/fallback=on")
	check(err)
	curOff, err := current.FindContention("contention/fallback=off")
	check(err)

	// 1. Commits-per-batch must not drop. Deterministic: a tiny epsilon
	// absorbs float formatting, not behavior.
	if curOn.CommitsPerBatch < baseOn.CommitsPerBatch*0.999 {
		fail("commits-per-batch dropped: %.2f (baseline %.2f) — the fallback no longer drains the chain in-batch",
			curOn.CommitsPerBatch, baseOn.CommitsPerBatch)
	}

	// 2. The on/off virtual-latency ratio must not regress > 15%.
	for _, m := range []struct {
		name          string
		baseOn, curOn float64
		baseOff       float64
		curOff        float64
	}{
		{"p50", baseOn.VirtualP50Ms, curOn.VirtualP50Ms, baseOff.VirtualP50Ms, curOff.VirtualP50Ms},
		{"p99", baseOn.VirtualP99Ms, curOn.VirtualP99Ms, baseOff.VirtualP99Ms, curOff.VirtualP99Ms},
	} {
		if m.baseOff <= 0 || m.curOff <= 0 {
			fail("%s: degenerate fallback-off latency (baseline %.3f, current %.3f)", m.name, m.baseOff, m.curOff)
			continue
		}
		baseRatio := m.baseOn / m.baseOff
		curRatio := m.curOn / m.curOff
		if curRatio > baseRatio*(1+tolerance) {
			fail("%s fallback-on/off latency ratio regressed: %.4f (baseline %.4f, tolerance %d%%)",
				m.name, curRatio, baseRatio, int(tolerance*100))
		}
		fmt.Printf("bench-compare: %s ratio on/off: %.4f (baseline %.4f)\n", m.name, curRatio, baseRatio)
	}

	// 3. Equivalence: both modes commit the full workload.
	if curOn.Commits != curOff.Commits {
		fail("fallback on/off commit counts diverge: %d vs %d", curOn.Commits, curOff.Commits)
	}
	if curOn.Commits != baseOn.Commits {
		fail("workload size changed: %d commits (baseline %d) — regenerate the baseline deliberately",
			curOn.Commits, baseOn.Commits)
	}

	fmt.Printf("bench-compare: commits/batch on=%.2f off=%.2f (baseline on=%.2f off=%.2f)\n",
		curOn.CommitsPerBatch, curOff.CommitsPerBatch, baseOn.CommitsPerBatch, baseOff.CommitsPerBatch)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: %d check(s) failed against %s\n", failures, *baselinePath)
		os.Exit(1)
	}
	fmt.Println("bench-compare: PASS")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-compare:", err)
		os.Exit(1)
	}
}
