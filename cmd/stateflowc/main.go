// Command stateflowc is the StateFlow compiler CLI: it compiles a
// stateful-entity source file into the dataflow intermediate
// representation and renders it in several forms.
//
// Usage:
//
//	stateflowc [flags] program.sf
//
//	-emit report    whole-program report (default)
//	-emit listing   split-function listings (§2.4) for every method
//	-emit dot       logical dataflow graph in Graphviz DOT (Figure 2)
//	-emit json      IR metadata as JSON
//	-emit artifact  portable compiled artifact (load with compiler.LoadArtifact)
//	-method C.m     restrict listing output to one method
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"statefulentities.dev/stateflow/internal/compiler"
)

func main() {
	emit := flag.String("emit", "report", "output form: report | listing | dot | json | artifact")
	method := flag.String("method", "", "restrict listing to Class.method")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: stateflowc [-emit report|listing|dot|json] [-method C.m] program.sf")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := compiler.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	switch *emit {
	case "report":
		fmt.Print(prog.Report())
	case "dot":
		fmt.Print(prog.Dot())
	case "json":
		out, err := json.MarshalIndent(prog, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	case "artifact":
		out, err := compiler.SaveArtifact(prog)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	case "listing":
		for _, opName := range prog.OperatorOrder {
			op := prog.Operators[opName]
			for _, mn := range op.MethodOrder {
				qn := opName + "." + mn
				if *method != "" && qn != *method {
					continue
				}
				if strings.HasPrefix(mn, "__") && *method == "" {
					continue
				}
				fmt.Printf("# %s\n%s\n", qn, op.Methods[mn].Listing())
			}
		}
	default:
		fatal(fmt.Errorf("unknown -emit %q", *emit))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stateflowc:", err)
	os.Exit(1)
}
