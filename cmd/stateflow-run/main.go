// Command stateflow-run compiles the built-in YCSB entity program (or a
// user-supplied .sf file) and executes a YCSB-style workload against it on
// a chosen runtime, printing latency and outcome stats. It is the quickest
// way to see one program execute unchanged on all three runtimes (§3: "the
// choice of a runtime system is completely independent of the application
// layer").
//
// Usage:
//
//	stateflow-run -backend local|stateflow|statefun \
//	              -workload A|B|T|M -dist zipfian|uniform \
//	              -rate 100 -duration 30s [program.sf]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"statefulentities.dev/stateflow/internal/compiler"
	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/metrics"
	"statefulentities.dev/stateflow/internal/runtime/live"
	"statefulentities.dev/stateflow/internal/runtime/local"
	"statefulentities.dev/stateflow/internal/sim"
	sfsys "statefulentities.dev/stateflow/internal/systems/stateflow"
	"statefulentities.dev/stateflow/internal/systems/statefun"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
	"statefulentities.dev/stateflow/internal/workload/ycsb"
)

func main() {
	backend := flag.String("backend", "stateflow", "runtime: local | live | stateflow | statefun")
	workload := flag.String("workload", "A", "YCSB workload: A | B | T | M")
	dist := flag.String("dist", "zipfian", "key distribution: zipfian | uniform")
	rate := flag.Float64("rate", 100, "request rate (requests/second)")
	duration := flag.Duration("duration", 30*time.Second, "run length (virtual time)")
	records := flag.Int("records", 1000, "dataset size")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	src := ycsb.Program()
	if flag.NArg() == 1 {
		b, err := os.ReadFile(flag.Arg(0))
		check(err)
		src = string(b)
	}
	prog, err := compiler.Compile(src)
	check(err)

	mix, err := ycsb.ByName(*workload)
	check(err)
	chooser, err := ycsb.ChooserByName(*dist, *records)
	check(err)
	wgen := ycsb.NewGenerator(mix, chooser, *records, *seed+17, "q")

	switch *backend {
	case "local":
		runLocal(prog, wgen, *records, *rate, *duration)
	case "live":
		runLive(prog, wgen, *records, *rate, *duration)
	case "stateflow", "statefun":
		runSim(*backend, prog, wgen, *records, *rate, *duration, *seed)
	default:
		fmt.Fprintf(os.Stderr, "stateflow-run: unknown backend %q\n", *backend)
		os.Exit(2)
	}
}

// runLive executes the request stream on the concurrent goroutine runtime
// with parallel clients; latencies are real wall-clock times.
func runLive(prog *ir.Program, wgen *ycsb.Generator, records int, rate float64, duration time.Duration) {
	rt := live.New(prog, live.Config{Workers: 8})
	defer rt.Close()
	load := ycsb.Loader(records, 1000)
	for i := 0; i < records; i++ {
		class, args := load(i)
		if _, err := rt.Create(class, args...); err != nil {
			check(err)
		}
	}
	total := int(rate * duration.Seconds())
	reqs := make([]int, total)
	for i := range reqs {
		reqs[i] = i
	}
	const clients = 16
	var mu sync.Mutex
	lat := metrics.NewSeries()
	errs := 0
	var wg sync.WaitGroup
	start := time.Now()
	per := (total + clients - 1) / clients
	for c := 0; c < clients; c++ {
		lo, hi := c*per, min((c+1)*per, total)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				req := reqSafe(wgen, i, &mu)
				t0 := time.Now()
				_, errStr, err := rt.Invoke(req.Target.Class, req.Target.Key, req.Method, req.Args...)
				d := time.Since(t0)
				mu.Lock()
				lat.Add(d)
				if err != nil || errStr != "" {
					errs++
				}
				mu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	fmt.Printf("live runtime (8 workers, %d clients): %d requests in %s (errors: %d, events: %d)\n",
		clients, total, time.Since(start).Round(time.Millisecond), errs, rt.Processed())
	fmt.Printf("per-call latency: %s\n", lat.Summary())
}

// reqSafe serializes generator access across client goroutines.
func reqSafe(wgen *ycsb.Generator, i int, mu *sync.Mutex) sysapi.Request {
	mu.Lock()
	defer mu.Unlock()
	return wgen.Next(i)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runLocal executes the request stream synchronously on the Local runtime;
// latencies are real wall-clock execution times of the dataflow.
func runLocal(prog *ir.Program, wgen *ycsb.Generator, records int, rate float64, duration time.Duration) {
	rt := local.New(prog)
	load := ycsb.Loader(records, 1000)
	for i := 0; i < records; i++ {
		class, args := load(i)
		if _, err := rt.Create(class, args...); err != nil {
			check(err)
		}
	}
	total := int(rate * duration.Seconds())
	lat := metrics.NewSeries()
	errs := 0
	start := time.Now()
	for i := 0; i < total; i++ {
		req := wgen.Next(i)
		t0 := time.Now()
		res, err := rt.Invoke(req.Target.Class, req.Target.Key, req.Method, req.Args...)
		check(err)
		lat.Add(time.Since(t0))
		if res.Err != "" {
			errs++
		}
	}
	fmt.Printf("local runtime: %d requests in %s (errors: %d)\n", total, time.Since(start).Round(time.Millisecond), errs)
	fmt.Printf("per-call execution latency: %s\n", lat.Summary())
}

// runSim executes the workload on a simulated distributed deployment.
func runSim(backend string, prog *ir.Program, wgen *ycsb.Generator, records int, rate float64, duration time.Duration, seed int64) {
	cluster := sim.New(seed)
	var sys sysapi.System
	var sf *sfsys.System
	var sfu *statefun.System
	if backend == "stateflow" {
		sf = sfsys.New(cluster, prog, sfsys.DefaultConfig())
		sys = sf
	} else {
		sfu = statefun.New(cluster, prog, statefun.DefaultConfig())
		sys = sfu
	}
	load := ycsb.Loader(records, 1000)
	for i := 0; i < records; i++ {
		class, args := load(i)
		if sf != nil {
			check(sf.PreloadEntity(class, args...))
		} else {
			check(sfu.PreloadEntity(class, args...))
		}
	}
	gen := sysapi.NewGenerator("client", sys, rate, duration, duration/10, wgen.Next)
	cluster.Add("client", gen)
	cluster.Start()
	start := time.Now()
	cluster.RunUntil(duration + 10*time.Second)
	fmt.Printf("%s: %d submitted, %d completed, %d errors over %s virtual time (%s real)\n",
		backend, gen.Submitted, gen.Done, gen.Errors, duration, time.Since(start).Round(time.Millisecond))
	fmt.Printf("end-to-end latency: %s\n", gen.Latency.Summary())
	for kind, s := range gen.PerKind {
		fmt.Printf("  %-9s %s\n", kind+":", s.Summary())
	}
	if sf != nil {
		c := sf.Coordinator()
		fmt.Printf("transactions: %d committed, %d aborted (retried), %d failed, %d epochs\n",
			c.Commits, c.Aborts, c.Failures, c.EpochsClosed)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stateflow-run:", err)
		os.Exit(1)
	}
}
