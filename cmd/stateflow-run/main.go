// Command stateflow-run compiles the built-in YCSB entity program (or a
// user-supplied .sf file) and executes a YCSB-style workload against it on
// a chosen runtime, printing latency and outcome stats. It is the quickest
// way to see one program execute unchanged on every runtime (§3: "the
// choice of a runtime system is completely independent of the application
// layer"): the local and live paths share one workload driver written
// against the stateflow.Client interface, and the simulated paths share
// one open-loop generator.
//
// Usage:
//
//	stateflow-run -backend local|live|stateflow|statefun \
//	              -workload A|B|T|M -dist zipfian|uniform \
//	              -rate 100 -duration 30s [-chaos-seed N] [program.sf]
//
// With -chaos-seed, the simulated backends run under a deterministic
// fault plan derived from the seed (worker crash windows, message drops,
// duplicates and latency spikes); the plan and the fault activity are
// printed so any run reproduces from its two seeds.
//
// With -lin <hotkey|datadep|chain|xshard>, the YCSB driver is bypassed
// entirely: the named adversarial profile runs on the chosen simulated
// backend, fault-free and under the seed-derived chaos plan, and both
// histories go to the serializability checker (internal/lin) instead of
// the byte-equality oracle. This is the one-command reproduction for
// adversarial sweep failures:
//
//	stateflow-run -lin datadep -seed 33 [-backend statefun]
//	              [-no-fallback] [-no-pipelining] [-shards N]
//
// With -shards N (N > 1), the StateFlow backend deploys as N sharded
// coordinator groups behind a global sequencer; -shards 1 is the classic
// single-coordinator topology, byte-identical to omitting the flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"statefulentities.dev/stateflow"
	"statefulentities.dev/stateflow/internal/chaos"
	"statefulentities.dev/stateflow/internal/chaos/oracle"
	adversarial "statefulentities.dev/stateflow/internal/chaos/workload"
	"statefulentities.dev/stateflow/internal/metrics"
	"statefulentities.dev/stateflow/internal/obs"
	"statefulentities.dev/stateflow/internal/sim"
	sfsys "statefulentities.dev/stateflow/internal/systems/stateflow"
	"statefulentities.dev/stateflow/internal/systems/statefun"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
	"statefulentities.dev/stateflow/internal/workload/ycsb"
)

func main() {
	backend := flag.String("backend", "stateflow", "runtime: local | live | stateflow | statefun")
	workload := flag.String("workload", "A", "YCSB workload: A | B | T | M")
	dist := flag.String("dist", "zipfian", "key distribution: zipfian | uniform")
	rate := flag.Float64("rate", 100, "request rate (requests/second)")
	duration := flag.Duration("duration", 30*time.Second, "run length (virtual time)")
	records := flag.Int("records", 1000, "dataset size")
	seed := flag.Int64("seed", 1, "seed")
	chaosSeed := flag.Int64("chaos-seed", 0, "run the simulated backends under a seeded fault plan (0: off)")
	maxBatch := flag.Int("max-batch", sfsys.DefaultConfig().MaxBatch,
		"StateFlow batch-size cap: backlogs and post-recovery replays drain chunked over batches of at most this many transactions (0: unbounded)")
	noFallback := flag.Bool("no-fallback", false,
		"disable Aria's deterministic fallback phase: conflict-aborted transactions retry in the next batch instead of re-executing inside the current one (A/B benchmarking)")
	noPipelining := flag.Bool("no-pipelining", false,
		"force the serial epoch schedule: the coordinator fully commits each epoch before opening the next instead of overlapping execute and commit phases (A/B benchmarking)")
	linProfile := flag.String("lin", "",
		"run an adversarial order-sensitive workload under the linearizability checker instead of YCSB: hotkey | datadep | chain | xshard. The workload, the fault plan and the verdict all derive from -seed; honors -backend (stateflow or statefun), -no-fallback, -no-pipelining and -shards")
	shards := flag.Int("shards", 1,
		"deploy the StateFlow backend as this many sharded coordinator groups behind a global sequencer (1: the classic single-coordinator topology)")
	tracePath := flag.String("trace", "",
		"write the run's transaction phase spans to this file as Chrome trace-event JSON (open in Perfetto or chrome://tracing; simulated stateflow backend only)")
	flag.Parse()

	if *linProfile != "" {
		runLin(*linProfile, *backend, *seed, *noFallback, *noPipelining, *shards)
		return
	}

	src := ycsb.Program()
	if flag.NArg() == 1 {
		b, err := os.ReadFile(flag.Arg(0))
		check(err)
		src = string(b)
	}
	prog, err := stateflow.Compile(src)
	check(err)

	mix, err := ycsb.ByName(*workload)
	check(err)
	chooser, err := ycsb.ChooserByName(*dist, *records)
	check(err)
	wgen := ycsb.NewGenerator(mix, chooser, *records, *seed+17, "q")

	if *chaosSeed != 0 && *backend != "stateflow" && *backend != "statefun" {
		check(fmt.Errorf("-chaos-seed needs a simulated backend (stateflow or statefun)"))
	}
	switch *backend {
	case "local":
		// The Local runtime is synchronous and single-threaded: one client.
		runClient("local runtime", stateflow.NewLocalClient(prog), 1, wgen, *records, *rate, *duration)
	case "live":
		runClient("live runtime (8 workers)", stateflow.NewLiveClient(prog, stateflow.LiveConfig{Workers: 8}),
			16, wgen, *records, *rate, *duration)
	case "stateflow", "statefun":
		runSim(*backend, prog, wgen, *records, *rate, *duration, *seed, *chaosSeed, *maxBatch, *noFallback, *noPipelining, *shards, *tracePath)
	default:
		fmt.Fprintf(os.Stderr, "stateflow-run: unknown backend %q\n", *backend)
		os.Exit(2)
	}
}

// runClient executes the request stream through the portable Client
// interface — the same driver serves the synchronous Local runtime (one
// client goroutine) and the concurrent live runtime (many). Latencies are
// real wall-clock times.
func runClient(label string, c stateflow.Client, clients int, wgen *ycsb.Generator, records int, rate float64, duration time.Duration) {
	defer func() { check(c.Close()) }()
	admin := c.Admin()
	load := ycsb.Loader(records, 1000)
	for i := 0; i < records; i++ {
		class, args := load(i)
		check(admin.Preload(class, args...))
	}
	total := int(rate * duration.Seconds())
	var mu sync.Mutex
	lat := metrics.NewBoundedSeries(sysapi.LatencyReservoir)
	errs := 0
	var wg sync.WaitGroup
	start := time.Now()
	per := (total + clients - 1) / clients
	for cl := 0; cl < clients; cl++ {
		lo, hi := cl*per, min((cl+1)*per, total)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				req := reqSafe(wgen, i, &mu)
				t0 := time.Now()
				res, err := c.Entity(req.Target.Class, req.Target.Key).
					With(stateflow.WithKind(req.Kind)).
					Call(req.Method, req.Args...)
				d := time.Since(t0)
				mu.Lock()
				lat.Add(d)
				if err != nil || res.Err != "" {
					errs++
				}
				mu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	fmt.Printf("%s, %d clients: %d requests in %s (errors: %d)\n",
		label, clients, total, time.Since(start).Round(time.Millisecond), errs)
	fmt.Printf("per-call latency: %s\n", lat.Summary())
}

// reqSafe serializes generator access across client goroutines.
func reqSafe(wgen *ycsb.Generator, i int, mu *sync.Mutex) sysapi.Request {
	mu.Lock()
	defer mu.Unlock()
	return wgen.Next(i)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runSim executes the workload on a simulated distributed deployment with
// an open-loop generator (arrivals do not wait for responses), optionally
// under a seeded fault plan.
func runSim(backend string, prog *stateflow.Program, wgen *ycsb.Generator, records int, rate float64, duration time.Duration, seed, chaosSeed int64, maxBatch int, noFallback, noPipelining bool, shards int, tracePath string) {
	var tracer *obs.Tracer
	if tracePath != "" {
		if backend != "stateflow" {
			check(fmt.Errorf("-trace needs the stateflow backend (tracing instruments the transactional protocol), got %q", backend))
		}
		tracer = obs.NewTracer()
	}
	cluster := sim.New(seed)
	flight := obs.NewFlightRecorder(0)
	cluster.SetFlightRecorder(flight)
	var sys sysapi.Backend
	var sf *sfsys.System
	var sh *sfsys.ShardedSystem
	if backend == "stateflow" {
		cfg := sfsys.DefaultConfig()
		cfg.MaxBatch = maxBatch
		cfg.DisableFallback = noFallback
		cfg.DisablePipelining = noPipelining
		cfg.Tracer = tracer
		cfg.Flight = flight
		if chaosSeed != 0 {
			cfg.SnapshotEvery = 20 // give recovery real snapshots to roll back to
		}
		cfg.Shards = shards
		dep := sfsys.New(cluster, prog, cfg)
		if dep.Sequencer() != nil {
			sh = dep
			sys = sh
		} else {
			sf = dep.Single()
			sys = sf
		}
	} else {
		sys = statefun.New(cluster, prog, statefun.DefaultConfig())
	}
	load := ycsb.Loader(records, 1000)
	for i := 0; i < records; i++ {
		class, args := load(i)
		check(sys.PreloadEntity(class, args...))
	}
	var eng *chaos.Engine
	if chaosSeed != 0 {
		plan := chaos.FromSeed(chaosSeed, duration)
		fmt.Printf("chaos: %s\n", plan)
		eng = chaos.Install(cluster, sys.ChaosTopology(), plan)
	}
	gen := sysapi.NewGenerator("client", sys, rate, duration, duration/10, wgen.Next)
	if chaosSeed != 0 {
		// Under client-edge faults (drops, ingress downtime) the open-loop
		// clients must retransmit or lost requests stay lost.
		gen.RetryEvery = 50 * time.Millisecond
	}
	cluster.Add("client", gen)
	if sf != nil {
		sf.CheckpointPreloadedState()
	}
	if sh != nil {
		sh.CheckpointPreloadedState()
	}
	cluster.Start()
	start := time.Now()
	cluster.RunUntil(duration + 10*time.Second)
	fmt.Printf("%s: %d submitted, %d completed, %d errors over %s virtual time (%s real)\n",
		backend, gen.Submitted, gen.Done, gen.Errors, duration, time.Since(start).Round(time.Millisecond))
	fmt.Printf("end-to-end latency: %s\n", gen.Latency.Summary())
	for kind, s := range gen.PerKind {
		fmt.Printf("  %-9s %s\n", kind+":", s.Summary())
	}
	if sf != nil {
		c := sf.Coordinator()
		fmt.Printf("transactions: %d committed, %d aborted (retried), %d failed, %d epochs, %d recoveries (%d coordinator reboots, %d egress replays)\n",
			c.Commits, c.Aborts, c.Failures, c.EpochsClosed, c.Recoveries, c.Restarts, c.Replays)
		fmt.Printf("fallback phase: %d rounds, %d rescued commits\n", c.FallbackRounds, c.FallbackCommits)
		if sf.Dlog != nil {
			ls := sf.Dlog.Stats()
			fmt.Printf("durable log: %d appends (%d B), %d syncs, %d checkpoints (%d records compacted), %d torn tails discarded\n",
				ls.Appends, ls.AppendedBytes, ls.Syncs, ls.Checkpoints, ls.Compacted, ls.TornTails)
		}
	}
	if sh != nil {
		q := sh.Sequencer()
		fmt.Printf("sharded routing: %d single-shard forwards, %d global transactions in %d batches\n",
			q.SingleShard, q.GlobalTxns, q.GlobalBatches)
		for i, shard := range sh.Shards() {
			c := shard.Coordinator()
			fmt.Printf("  shard %d: %d committed, %d aborted, %d epochs, %d recoveries (%d reboots), %d fences, %d applies\n",
				i, c.Commits, c.Aborts, c.EpochsClosed, c.Recoveries, c.Restarts, c.GlobalFences, c.GlobalApplies)
		}
	}
	if tracer != nil {
		f, err := os.Create(tracePath)
		check(err)
		check(tracer.WriteJSON(f))
		check(f.Close())
		fmt.Printf("trace: %d events written to %s (open in Perfetto or chrome://tracing)\n", tracer.Len(), tracePath)
	}
	if eng != nil {
		st := eng.Stats()
		fmt.Printf("chaos activity: %d crash windows, %d dropped, %d duplicated, %d delayed (clamped: %d drops, %d dups); %d client retries\n",
			st.CrashWindows, st.Dropped, st.Duplicated, st.Delayed, st.ClampedDrops, st.ClampedDups, gen.Retried())
		for _, cl := range st.Clamped {
			fmt.Printf("  clamped: %s\n", cl)
		}
	}
}

// runLin executes one adversarial profile under the history checker:
// fault-free first, then under the seed's chaos plan, requiring both
// observed histories to be serializable and value-conserving (and, on
// StateFlow, at least one coordinator reboot survived). Everything —
// traffic, fault plan, verdict — reproduces from the profile name and
// the seed.
func runLin(profile, backend string, seed int64, noFallback, noPipelining bool, shards int) {
	var be stateflow.Backend
	switch backend {
	case "stateflow":
		be = stateflow.BackendStateFlow
	case "statefun":
		be = stateflow.BackendStateFun
	default:
		check(fmt.Errorf("-lin needs a simulated backend (stateflow or statefun), got %q", backend))
	}
	p := adversarial.Profile(profile)
	known := false
	for _, k := range adversarial.Profiles {
		known = known || k == p
	}
	if !known {
		check(fmt.Errorf("unknown -lin profile %q (want one of %v)", profile, adversarial.Profiles))
	}
	cfg := oracle.DefaultConfig()
	cfg.DisableFallback = noFallback
	cfg.DisablePipelining = noPipelining
	cfg.Shards = shards
	run, err := oracle.VerifyAdversarial(p, be, seed, cfg)
	check(err)
	fmt.Printf("profile %s on %s, seed %d: histories serializable and conserving, fault-free and under plan %s\n",
		p, be, seed, chaos.FromSeed(seed, cfg.Horizon))
	fmt.Printf("chaos activity: %d crash windows, %d dropped, %d duplicated, %d delayed\n",
		run.Stats.CrashWindows, run.Stats.Dropped, run.Stats.Duplicated, run.Stats.Delayed)
	if be == stateflow.BackendStateFlow {
		fmt.Printf("stateflow: %d recoveries (%d coordinator reboots, %d mid-pipeline), %d egress replays, %d fallback drift demotions\n",
			run.Recoveries, run.CoordRestarts, run.MidPipelineRestarts, run.Replays, run.FallbackDriftDemotions)
	}
	if shards > 1 {
		fmt.Printf("sharded (%d shards): %d transactions sequenced globally in %d batches (%d scoped / %d full fences); %d sequencer failovers (%d batches rolled forward, %d abandoned pre-apply)\n",
			shards, run.GlobalTxns, run.Sequencer.GlobalBatches,
			run.Sequencer.ScopedFences, run.Sequencer.FullFences,
			run.Sequencer.Failovers, run.Sequencer.RederivedBatches, run.Sequencer.AbortedBatches)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stateflow-run:", err)
		os.Exit(1)
	}
}
