// Differential tests for footprint-scoped global batches: the sequencer
// fences only the shards a cross-shard batch actually touches, and the
// shards outside the footprint keep executing and committing their own
// epochs concurrently with it. That overlap is a pure scheduling
// freedom, never a semantics change — which is exactly what these tests
// pin: the scoped schedule must produce byte-identical transcripts and
// committed state to the historical fence-everything schedule
// (SimConfig.FullFences), on the same seeds, while demonstrably fencing
// fewer shards.
package stateflow_test

import (
	"testing"

	"statefulentities.dev/stateflow"
	"statefulentities.dev/stateflow/internal/chaos/oracle"
)

// TestScopedFencesByteIdenticalToFullFences pins the scoped-fence
// schedule against the full-fence reference: same responses, same
// committed state. Trace is deliberately NOT compared — untouched shards
// committing during a global batch is the whole point, and it legally
// changes latencies and the virtual clock.
func TestScopedFencesByteIdenticalToFullFences(t *testing.T) {
	for _, w := range []oracle.Workload{oracle.Banking(), oracle.YCSB()} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, shards := range []int{2, 4} {
				for seed := int64(1); seed <= 2; seed++ {
					cfg := oracle.DefaultConfig()
					cfg.Shards = shards
					cfg.FullFences = true
					full, err := oracle.RunOnce(w, stateflow.BackendStateFlow, seed, nil, cfg)
					if err != nil {
						t.Fatalf("seed %d shards=%d full fences: %v", seed, shards, err)
					}
					cfg.FullFences = false
					scoped, err := oracle.RunOnce(w, stateflow.BackendStateFlow, seed, nil, cfg)
					if err != nil {
						t.Fatalf("seed %d shards=%d scoped: %v", seed, shards, err)
					}
					if scoped.Transcript != full.Transcript {
						t.Fatalf("seed %d shards=%d: transcripts diverge:\n--- full fences ---\n%s--- scoped ---\n%s",
							seed, shards, full.Transcript, scoped.Transcript)
					}
					if scoped.StateDigest != full.StateDigest {
						t.Fatalf("seed %d shards=%d: committed state diverges:\n--- full fences ---\n%s--- scoped ---\n%s",
							seed, shards, full.StateDigest, scoped.StateDigest)
					}
					// Vacuousness guards: both runs must sequence global
					// batches, the reference must fence everything, and the
					// scoped run must actually fence less at least once —
					// otherwise the equality above proves nothing.
					if full.Sequencer.GlobalBatches == 0 {
						t.Fatalf("seed %d shards=%d: no global batches; the schedules were never compared", seed, shards)
					}
					if full.Sequencer.ScopedFences != 0 {
						t.Fatalf("seed %d shards=%d: FullFences run recorded %d scoped fences",
							seed, shards, full.Sequencer.ScopedFences)
					}
					if shards > 2 {
						// On a 2-shard ring every cross-shard batch covers
						// the whole ring by definition; only wider rings can
						// demonstrate a strict-subset fence.
						if scoped.Sequencer.ScopedFences == 0 {
							t.Fatalf("seed %d shards=%d: scoped run never fenced a strict subset (batches=%d, full=%d); the diff is vacuous",
								seed, shards, scoped.Sequencer.GlobalBatches, scoped.Sequencer.FullFences)
						}
						if scoped.Sequencer.FenceWaits >= full.Sequencer.FenceWaits &&
							scoped.Sequencer.GlobalBatches == full.Sequencer.GlobalBatches {
							t.Fatalf("seed %d shards=%d: scoped schedule awaited %d fence acks vs %d full — scoping saved nothing",
								seed, shards, scoped.Sequencer.FenceWaits, full.Sequencer.FenceWaits)
						}
					}
				}
			}
		})
	}
}
