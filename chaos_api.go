package stateflow

import (
	"maps"
	"time"

	"statefulentities.dev/stateflow/internal/chaos"
)

// ChaosPlan is a declarative, seed-reproducible fault schedule for a
// Simulation: crash/restart windows per component role plus per-edge
// message drop / duplicate / reorder-delay probabilities and latency
// spikes. Build one by hand or derive one from a seed with
// ChaosPlanFromSeed, then pass it to NewSimulation via WithChaos.
type ChaosPlan = chaos.Plan

// ChaosCrash is one crash/restart window sequence of a ChaosPlan.
type ChaosCrash = chaos.Crash

// ChaosEdge selects deliveries by (sender role, receiver role).
type ChaosEdge = chaos.Edge

// ChaosPerturbation is one per-edge perturbation spec of a ChaosPlan.
type ChaosPerturbation = chaos.Perturbation

// ChaosStats summarizes what an installed fault plan actually did:
// scheduled crash windows, applied drops/duplicates/delays, and the
// faults clamped off because the backend's failure contract does not
// cover them (the StateFun-model baseline, faithfully to the paper, has
// no recovery: crash and drop faults are clamped there).
type ChaosStats = chaos.Stats

// ChaosPlanFromSeed derives a full-strength fault plan deterministically
// from a seed: randomized worker crash windows plus drop, duplicate and
// latency-spike probabilities on every edge, all active within horizon.
// The same seed always yields the same plan, so a failing run reproduces
// from (workload seed, chaos seed) alone.
func ChaosPlanFromSeed(seed int64, horizon time.Duration) ChaosPlan {
	return chaos.FromSeed(seed, horizon)
}

// SimOption tunes a Simulation beyond SimConfig.
type SimOption func(*simOptions)

type simOptions struct {
	chaos *ChaosPlan
}

// WithChaos installs a fault plan on the simulation's cluster before it
// starts: the plan's crash windows and message perturbations are applied
// deterministically from the cluster's single RNG, so a chaos run is as
// reproducible as a fault-free one. Faults the backend's failure
// contract does not cover are clamped off (see ChaosStats).
func WithChaos(plan ChaosPlan) SimOption {
	return func(o *simOptions) { o.chaos = &plan }
}

// ChaosStats reports the installed fault plan's activity; the zero value
// is returned when the simulation runs without chaos.
func (s *Simulation) ChaosStats() ChaosStats {
	if s.chaos == nil {
		return ChaosStats{}
	}
	return s.chaos.Stats()
}

// ResponseDeliveries returns, per request id, how many raw response
// deliveries reached the client edge — before deduplication. On a
// fault-free run every count is exactly 1. Under chaos the oracle checks
// the accounting identity instead: the system's own sends per id
// (deliveries − injected duplicates + injected drops) must be exactly
// one, plus at most one replay per solicitation (client retries and
// injected request duplicates) — any excess is a duplicate the system
// emitted unprompted.
func (s *Simulation) ResponseDeliveries() map[string]int {
	return maps.Clone(s.client.deliveries)
}

// ClientRetries returns, per request id, how many times the client edge
// re-sent the request because no response had arrived within the retry
// interval (see SimConfig.ClientRetry). The chaos oracle uses it to bound
// legitimate response replays.
func (s *Simulation) ClientRetries() map[string]int {
	return maps.Clone(s.client.rx.Retries)
}
