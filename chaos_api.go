package stateflow

import (
	"time"

	"statefulentities.dev/stateflow/internal/chaos"
)

// ChaosPlan is a declarative, seed-reproducible fault schedule for a
// Simulation: crash/restart windows per component role plus per-edge
// message drop / duplicate / reorder-delay probabilities and latency
// spikes. Build one by hand or derive one from a seed with
// ChaosPlanFromSeed, then pass it to NewSimulation via WithChaos.
type ChaosPlan = chaos.Plan

// ChaosCrash is one crash/restart window sequence of a ChaosPlan.
type ChaosCrash = chaos.Crash

// ChaosEdge selects deliveries by (sender role, receiver role).
type ChaosEdge = chaos.Edge

// ChaosPerturbation is one per-edge perturbation spec of a ChaosPlan.
type ChaosPerturbation = chaos.Perturbation

// ChaosStats summarizes what an installed fault plan actually did:
// scheduled crash windows, applied drops/duplicates/delays, and the
// faults clamped off because the backend's failure contract does not
// cover them (the StateFun-model baseline, faithfully to the paper, has
// no recovery: crash and drop faults are clamped there).
type ChaosStats = chaos.Stats

// ChaosPlanFromSeed derives a full-strength fault plan deterministically
// from a seed: randomized worker crash windows plus drop, duplicate and
// latency-spike probabilities on every edge, all active within horizon.
// The same seed always yields the same plan, so a failing run reproduces
// from (workload seed, chaos seed) alone.
func ChaosPlanFromSeed(seed int64, horizon time.Duration) ChaosPlan {
	return chaos.FromSeed(seed, horizon)
}

// SimOption tunes a Simulation beyond SimConfig.
type SimOption func(*simOptions)

type simOptions struct {
	chaos *ChaosPlan
}

// WithChaos installs a fault plan on the simulation's cluster before it
// starts: the plan's crash windows and message perturbations are applied
// deterministically from the cluster's single RNG, so a chaos run is as
// reproducible as a fault-free one. Faults the backend's failure
// contract does not cover are clamped off (see ChaosStats).
func WithChaos(plan ChaosPlan) SimOption {
	return func(o *simOptions) { o.chaos = &plan }
}

// ChaosStats reports the installed fault plan's activity; the zero value
// is returned when the simulation runs without chaos.
func (s *Simulation) ChaosStats() ChaosStats {
	if s.chaos == nil {
		return ChaosStats{}
	}
	return s.chaos.Stats()
}

// ResponseDeliveries returns, per request id, how many raw response
// deliveries reached the client edge — before deduplication. Every count
// must be exactly 1 on a correct run: 0 is a lost response, >1 is a
// duplicate the client had to suppress. The chaos oracle asserts this;
// it is exposed for tests and debugging.
func (s *Simulation) ResponseDeliveries() map[string]int {
	out := make(map[string]int, len(s.client.deliveries))
	for id, n := range s.client.deliveries {
		out[id] = n
	}
	return out
}
