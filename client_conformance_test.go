// Cross-backend conformance: one scenario suite, written once against the
// Client interface, runs on every execution target — Local, the simulated
// StateFlow runtime, the simulated StateFun-model baseline, and the
// concurrent Live runtime — and must produce byte-identical response
// transcripts on all of them. This is the paper's §3 claim ("the choice
// of a runtime system is completely independent of the application
// layer") enforced at the API level.
package stateflow_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"statefulentities.dev/stateflow"
)

// conformanceTargets builds one Client per execution target. The returned
// advance func drives background progress where a target needs it
// (virtual time on simulations); it is nil elsewhere.
func conformanceTargets(t *testing.T, prog *stateflow.Program) []struct {
	name    string
	client  stateflow.Client
	advance func(time.Duration)
} {
	t.Helper()
	simSF := stateflow.NewSimulation(prog, stateflow.SimConfig{
		Backend: stateflow.BackendStateFlow, Epoch: 5 * time.Millisecond,
	})
	simFUN := stateflow.NewSimulation(prog, stateflow.SimConfig{
		Backend: stateflow.BackendStateFun,
	})
	liveC := stateflow.NewLiveClient(prog, stateflow.LiveConfig{Workers: 4})
	t.Cleanup(func() { _ = liveC.Close() })
	return []struct {
		name    string
		client  stateflow.Client
		advance func(time.Duration)
	}{
		{"local", stateflow.NewLocalClient(prog), nil},
		{"sim-stateflow", simSF.Client(), simSF.Run},
		{"sim-statefun", simFUN.Client(), simFUN.Run},
		{"live", liveC, nil},
	}
}

// line formats one response for the transcript. Only backend-independent
// fields participate (latency, retries and hops legitimately differ).
func line(class, key, method string, res stateflow.Result, err error) string {
	if err != nil {
		return fmt.Sprintf("%s<%s>.%s -> transport error", class, key, method)
	}
	return fmt.Sprintf("%s<%s>.%s -> %s / err=%q", class, key, method, res.Value.Repr(), res.Err)
}

// runQuickstartScenario drives the Figure-1 buy_item scenarios through a
// Client and returns the transcript.
func runQuickstartScenario(t *testing.T, c stateflow.Client) []string {
	t.Helper()
	var tr []string
	apple, err := c.Create("Item", stateflow.Str("apple"), stateflow.Int(5))
	if err != nil {
		t.Fatalf("create Item: %v", err)
	}
	alice, err := c.Create("User", stateflow.Str("alice"))
	if err != nil {
		t.Fatalf("create User: %v", err)
	}
	call := func(e *stateflow.Entity, method string, args ...stateflow.Value) {
		res, err := e.Call(method, args...)
		tr = append(tr, line(e.Class(), e.Key(), method, res, err))
	}
	call(apple, "update_stock", stateflow.Int(10))
	call(alice, "buy_item", stateflow.Int(3), apple.RefValue())   // succeeds
	call(alice, "buy_item", stateflow.Int(100), apple.RefValue()) // insufficient funds
	call(alice, "buy_item", stateflow.Int(9), apple.RefValue())   // out of stock, compensated
	call(apple, "get_price")
	// An application error must surface identically everywhere.
	call(c.Entity("User", "nobody"), "buy_item", stateflow.Int(1), apple.RefValue())
	// Admin surface: committed state and key listing.
	tr = append(tr, inspectLine(c.Admin(), "User", "alice", "balance"))
	tr = append(tr, inspectLine(c.Admin(), "Item", "apple", "stock"))
	tr = append(tr, fmt.Sprintf("keys User=%v Item=%v", c.Admin().Keys("User"), c.Admin().Keys("Item")))
	return tr
}

// runBankingScenario drives transfers — sequential calls, then concurrent
// futures on disjoint account pairs — and returns the transcript.
func runBankingScenario(t *testing.T, c stateflow.Client, advance func(time.Duration)) []string {
	t.Helper()
	var tr []string
	names := []string{"alice", "bob", "carol", "dave"}
	admin := c.Admin()
	for _, n := range names {
		if err := admin.Preload("Account", stateflow.Str(n), stateflow.Int(100)); err != nil {
			t.Fatalf("preload %s: %v", n, err)
		}
	}
	for i := 0; i < 10; i++ {
		from, to := names[i%4], names[(i+1)%4]
		res, err := c.Entity("Account", from).Call("transfer",
			stateflow.Int(5), stateflow.Ref("Account", to))
		tr = append(tr, line("Account", from, "transfer", res, err))
	}
	// Concurrent futures on disjoint pairs: deterministic outcome on every
	// backend, including the non-transactional ones.
	futA := c.Entity("Account", "alice").Submit("transfer", stateflow.Int(10), stateflow.Ref("Account", "bob"))
	futB := c.Entity("Account", "carol").Submit("transfer", stateflow.Int(20), stateflow.Ref("Account", "dave"))
	if advance != nil {
		advance(5 * time.Second)
	}
	for _, f := range []*stateflow.Future{futA, futB} {
		res, err := f.Wait()
		tr = append(tr, line(f.Target().Class, f.Target().Key, f.Method(), res, err))
		if !f.Done() {
			t.Fatalf("future %s not done after Wait", f.Target())
		}
	}
	for _, n := range names {
		res, err := c.Entity("Account", n).Call("read")
		tr = append(tr, line("Account", n, "read", res, err))
	}
	tr = append(tr, fmt.Sprintf("keys Account=%v", admin.Keys("Account")))
	var total int64
	for _, n := range admin.Keys("Account") {
		st, ok := admin.Inspect("Account", n)
		if !ok {
			t.Fatalf("account %s missing", n)
		}
		total += st["balance"].I
	}
	tr = append(tr, fmt.Sprintf("total=%d", total))
	return tr
}

// assertIdentical requires every target's transcript to be byte-identical
// to the first one.
func assertIdentical(t *testing.T, transcripts map[string][]string) {
	t.Helper()
	names := make([]string, 0, len(transcripts))
	for n := range transcripts {
		names = append(names, n)
	}
	sort.Strings(names)
	ref := names[0]
	want := strings.Join(transcripts[ref], "\n")
	for _, n := range names[1:] {
		got := strings.Join(transcripts[n], "\n")
		if got != want {
			t.Fatalf("transcripts diverge between %s and %s:\n--- %s ---\n%s\n--- %s ---\n%s",
				ref, n, ref, want, n, got)
		}
	}
}

func TestConformanceQuickstart(t *testing.T) {
	transcripts := map[string][]string{}
	for _, tgt := range conformanceTargets(t, stateflow.MustCompile(figure1)) {
		// Each target gets a fresh program instance? Not needed: the
		// compiled Program is read-only at runtime and shared safely.
		transcripts[tgt.name] = runQuickstartScenario(t, tgt.client)
	}
	assertIdentical(t, transcripts)
}

func TestConformanceBanking(t *testing.T) {
	prog := stateflow.MustCompile(bankingSource)
	transcripts := map[string][]string{}
	for _, tgt := range conformanceTargets(t, prog) {
		transcripts[tgt.name] = runBankingScenario(t, tgt.client, tgt.advance)
	}
	assertIdentical(t, transcripts)
	// Money conservation is already part of the transcript (total=400);
	// the transcript equality above proves it held on every backend.
}

// inspectLine formats one attribute read through Admin.Inspect.
func inspectLine(a stateflow.Admin, class, key, attr string) string {
	st, ok := a.Inspect(class, key)
	if !ok {
		return fmt.Sprintf("inspect %s<%s> missing", class, key)
	}
	return fmt.Sprintf("inspect %s<%s>.%s=%s", class, key, attr, st[attr].Repr())
}

const bankingSource = `
@entity
class Account:
    def __init__(self, owner: str, balance: int):
        self.owner: str = owner
        self.balance: int = balance

    def __key__(self) -> str:
        return self.owner

    def read(self) -> int:
        return self.balance

    def deposit(self, amount: int) -> bool:
        self.balance += amount
        return True

    @transactional
    def transfer(self, amount: int, to: Account) -> bool:
        if self.balance < amount:
            return False
        self.balance -= amount
        to.deposit(amount)
        return True
`
