// Package stateflow is a Go reproduction of "Stateful Entities:
// Object-oriented Cloud Applications as Distributed Dataflows" (Psarakis,
// Zorgdrager, Fragkoulis, Salvaneschi, Katsifodimos — CIDR 2023 /
// arXiv:2112.00710).
//
// It provides the paper's full pipeline: a Python-like stateful-entity DSL,
// the static-analysis and function-splitting compiler that lowers
// imperative, transactional object-oriented code to a stateful dataflow
// intermediate representation, and three execution targets for that IR —
//
//   - a Local runtime (§3) executing synchronously against in-process
//     state, for development and tests;
//   - StateFlow (§3), a transactional dataflow runtime with Aria-style
//     deterministic transaction batches, aligned snapshots and a
//     replayable source, deployed on a deterministic cluster simulation
//     (alongside a StateFun-model baseline that routes every event
//     through a Kafka-model broker, with no transactions and no locking);
//   - a Live runtime: worker goroutines own hash partitions of entity
//     state, for genuinely concurrent in-process execution.
//
// All targets share one caller surface, the Client interface: Entity
// returns a typed handle whose Call delivers a full Result and whose
// Submit returns a Future; Admin unifies state introspection and dataset
// preloading. Code written against Client runs unchanged on any backend:
//
//	prog := stateflow.MustCompile(src)
//	var c stateflow.Client = stateflow.NewLocalClient(prog) // or
//	// stateflow.NewSimulation(prog, cfg).Client(), or
//	// stateflow.NewLiveClient(prog, stateflow.LiveConfig{})
//	acct, _ := c.Create("Account", stateflow.Str("alice"), stateflow.Int(100))
//	res, _ := acct.Call("deposit", stateflow.Int(10))
//	fut := acct.Submit("read") // async; fut.Wait() for the outcome
//
// The examples/ directory shows the API end to end, and cmd/stateflow-bench
// regenerates every figure of the paper's evaluation.
package stateflow

import (
	"statefulentities.dev/stateflow/internal/compiler"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/runtime/local"
)

// Program is a compiled stateful-entity application: the enriched stateful
// dataflow graph of §2.5, portable across runtimes.
type Program = ir.Program

// Value is a DSL runtime value.
type Value = interp.Value

// EntityRef identifies a stateful entity instance (class + key).
type EntityRef = interp.EntityRef

// Value constructors, re-exported for application code.
var (
	// None is the None value.
	None = interp.None
)

// Int builds an int value.
func Int(i int64) Value { return interp.IntV(i) }

// Float builds a float value.
func Float(f float64) Value { return interp.FloatV(f) }

// Str builds a str value.
func Str(s string) Value { return interp.StrV(s) }

// Bool builds a bool value.
func Bool(b bool) Value { return interp.BoolV(b) }

// List builds a list value.
func List(elems ...Value) Value { return interp.ListV(elems...) }

// Ref builds an entity reference value.
func Ref(class, key string) Value { return interp.RefV(class, key) }

// Compile runs the full compiler pipeline (§2.1) over DSL source: parse,
// static analysis, function splitting, state-machine derivation, IR
// emission.
func Compile(src string) (*Program, error) { return compiler.Compile(src) }

// MustCompile is Compile panicking on error.
func MustCompile(src string) *Program { return compiler.MustCompile(src) }

// ---------------------------------------------------------------------------
// Local runtime

// Local is the paper's Local runtime (§3): the dataflow executes in
// process against in-memory state, for debugging, unit testing and
// validation. NewLocalClient (or LocalClient around an existing runtime)
// exposes it through the portable Client interface.
type Local = local.Runtime

// LocalResult is the outcome of a direct Local invocation.
//
// Deprecated: call through LocalClient, which returns the portable
// Result.
type LocalResult = local.Result

// NewLocal builds a Local runtime for a compiled program.
func NewLocal(prog *Program) *Local { return local.New(prog) }
