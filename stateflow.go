// Package stateflow is a Go reproduction of "Stateful Entities:
// Object-oriented Cloud Applications as Distributed Dataflows" (Psarakis,
// Zorgdrager, Fragkoulis, Salvaneschi, Katsifodimos — CIDR 2023 /
// arXiv:2112.00710).
//
// It provides the paper's full pipeline: a Python-like stateful-entity DSL,
// the static-analysis and function-splitting compiler that lowers
// imperative, transactional object-oriented code to a stateful dataflow
// intermediate representation, and three execution targets for that IR —
//
//   - a Local runtime (§3) executing synchronously against HashMap state,
//     for development and tests;
//   - StateFlow (§3), a transactional dataflow runtime with Aria-style
//     deterministic transaction batches, aligned snapshots and a
//     replayable source, deployed on a deterministic cluster simulation;
//   - a StateFun-model baseline (§3) that routes every event through a
//     Kafka-model broker and executes functions in a remote stateless
//     runtime, with no transactions and no locking.
//
// The examples/ directory shows the API end to end, and cmd/stateflow-bench
// regenerates every figure of the paper's evaluation.
package stateflow

import (
	"fmt"
	"time"

	"statefulentities.dev/stateflow/internal/compiler"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/runtime/local"
	"statefulentities.dev/stateflow/internal/sim"
	sfsys "statefulentities.dev/stateflow/internal/systems/stateflow"
	"statefulentities.dev/stateflow/internal/systems/statefun"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
)

// Program is a compiled stateful-entity application: the enriched stateful
// dataflow graph of §2.5, portable across runtimes.
type Program = ir.Program

// Value is a DSL runtime value.
type Value = interp.Value

// EntityRef identifies a stateful entity instance (class + key).
type EntityRef = interp.EntityRef

// Value constructors, re-exported for application code.
var (
	// None is the None value.
	None = interp.None
)

// Int builds an int value.
func Int(i int64) Value { return interp.IntV(i) }

// Float builds a float value.
func Float(f float64) Value { return interp.FloatV(f) }

// Str builds a str value.
func Str(s string) Value { return interp.StrV(s) }

// Bool builds a bool value.
func Bool(b bool) Value { return interp.BoolV(b) }

// List builds a list value.
func List(elems ...Value) Value { return interp.ListV(elems...) }

// Ref builds an entity reference value.
func Ref(class, key string) Value { return interp.RefV(class, key) }

// Compile runs the full compiler pipeline (§2.1) over DSL source: parse,
// static analysis, function splitting, state-machine derivation, IR
// emission.
func Compile(src string) (*Program, error) { return compiler.Compile(src) }

// MustCompile is Compile panicking on error.
func MustCompile(src string) *Program { return compiler.MustCompile(src) }

// ---------------------------------------------------------------------------
// Local runtime

// Local is the paper's Local runtime (§3): the dataflow executes in
// process against HashMap state, for debugging, unit testing and
// validation.
type Local = local.Runtime

// LocalResult is the outcome of a Local invocation.
type LocalResult = local.Result

// NewLocal builds a Local runtime for a compiled program.
func NewLocal(prog *Program) *Local { return local.New(prog) }

// ---------------------------------------------------------------------------
// Simulated distributed runtimes

// Backend selects which distributed runtime a Simulation deploys.
type Backend string

// Available backends.
const (
	// BackendStateFlow deploys the transactional StateFlow runtime.
	BackendStateFlow Backend = "stateflow"
	// BackendStateFun deploys the Flink-StateFun-model baseline.
	BackendStateFun Backend = "statefun"
)

// SimConfig parameterizes a Simulation.
type SimConfig struct {
	Backend Backend
	// Workers is the StateFlow worker count (default 5) or, for the
	// baseline, the Flink worker count (default 3; the baseline also gets
	// an equal number of remote function runtimes).
	Workers int
	// Epoch is StateFlow's transaction batch interval (default 10ms).
	Epoch time.Duration
	// SnapshotEvery takes a StateFlow snapshot after every N batches
	// (default 0: only the preload checkpoint).
	SnapshotEvery int
	// Seed makes the simulation deterministic (default 1).
	Seed int64
	// MapFallback disables the slotted execution fast path, forcing
	// name-keyed variable and attribute resolution. Differential tests
	// run both modes and assert identical results and committed state.
	MapFallback bool
}

// Simulation is a deployed distributed runtime on the deterministic
// cluster simulator, with a synchronous convenience API: Call drives
// virtual time until the response returns.
type Simulation struct {
	Cluster *sim.Cluster
	backend Backend
	sf      *sfsys.System
	sfu     *statefun.System
	client  *simClient
	nextID  int
	started bool
}

type simClient struct {
	responses map[string]sysapi.Response
	latency   map[string]time.Duration
	sent      map[string]time.Duration
}

// OnMessage implements sim.Handler.
func (c *simClient) OnMessage(ctx *sim.Context, from string, msg sim.Message) {
	if m, ok := msg.(sysapi.MsgResponse); ok {
		if _, dup := c.responses[m.Response.Req]; dup {
			return
		}
		c.responses[m.Response.Req] = m.Response
		if at, ok := c.sent[m.Response.Req]; ok {
			c.latency[m.Response.Req] = ctx.Now() - at
		}
	}
}

// NewSimulation builds a simulated deployment of a compiled program.
func NewSimulation(prog *Program, cfg SimConfig) *Simulation {
	if cfg.Backend == "" {
		cfg.Backend = BackendStateFlow
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cluster := sim.New(cfg.Seed)
	s := &Simulation{
		Cluster: cluster,
		backend: cfg.Backend,
		client: &simClient{
			responses: map[string]sysapi.Response{},
			latency:   map[string]time.Duration{},
			sent:      map[string]time.Duration{},
		},
	}
	switch cfg.Backend {
	case BackendStateFlow:
		c := sfsys.DefaultConfig()
		if cfg.Workers > 0 {
			c.Workers = cfg.Workers
		}
		if cfg.Epoch > 0 {
			c.EpochInterval = cfg.Epoch
		}
		c.SnapshotEvery = cfg.SnapshotEvery
		c.MapFallback = cfg.MapFallback
		s.sf = sfsys.New(cluster, prog, c)
	case BackendStateFun:
		c := statefun.DefaultConfig()
		if cfg.Workers > 0 {
			c.FlinkWorkers = cfg.Workers
			c.FnRuntimes = cfg.Workers
		}
		c.MapFallback = cfg.MapFallback
		s.sfu = statefun.New(cluster, prog, c)
	default:
		panic(fmt.Sprintf("stateflow: unknown backend %q", cfg.Backend))
	}
	cluster.Add("api-client", s.client)
	return s
}

// StateFlow returns the underlying StateFlow system (nil for the baseline
// backend).
func (s *Simulation) StateFlow() *sfsys.System { return s.sf }

// StateFun returns the underlying baseline system (nil for StateFlow).
func (s *Simulation) StateFun() *statefun.System { return s.sfu }

// Preload installs an entity built by __init__ with the given args,
// bypassing the dataflow. Must be called before the first Call.
func (s *Simulation) Preload(class string, args ...Value) error {
	if s.started {
		return fmt.Errorf("stateflow: Preload after simulation start")
	}
	if s.sf != nil {
		return s.sf.PreloadEntity(class, args...)
	}
	return s.sfu.PreloadEntity(class, args...)
}

func (s *Simulation) ensureStarted() {
	if !s.started {
		if s.sf != nil {
			s.sf.CheckpointPreloadedState()
		}
		s.Cluster.Start()
		s.started = true
	}
}

func (s *Simulation) ingress() sysapi.System {
	if s.sf != nil {
		return s.sf
	}
	return s.sfu
}

// Result is the outcome of a simulated invocation.
type Result struct {
	Value   Value
	Err     string
	Retries int
	// Latency is the request's end-to-end virtual-time latency.
	Latency time.Duration
}

// inject assigns a request id and injects the invocation as if the client
// had sent it over its edge link, returning the id. Call and Submit share
// this path.
func (s *Simulation) inject(class, key, method string, args []Value) string {
	s.ensureStarted()
	s.nextID++
	id := fmt.Sprintf("api-%d", s.nextID)
	sysIf := s.ingress()
	req := sysapi.Request{
		Req:    id,
		Target: EntityRef{Class: class, Key: key},
		Method: method,
		Args:   args,
	}
	s.client.sent[id] = s.Cluster.Now()
	submitAt := s.Cluster.Now() + sysIf.ClientLink().Sample(s.Cluster.Rand())
	s.Cluster.Inject(submitAt, "api-client", sysIf.IngressID(),
		sysapi.MsgRequest{Request: req, ReplyTo: "api-client"})
	return id
}

// Call submits a method invocation and advances virtual time until its
// response arrives (or the patience budget runs out).
func (s *Simulation) Call(class, key, method string, args ...Value) (Result, error) {
	id := s.inject(class, key, method, args)
	deadline := s.Cluster.Now() + 30*time.Second
	for s.Cluster.Now() < deadline {
		s.Cluster.RunUntil(s.Cluster.Now() + 10*time.Millisecond)
		if resp, ok := s.client.responses[id]; ok {
			return Result{
				Value: resp.Value, Err: resp.Err, Retries: resp.Retries,
				Latency: s.client.latency[id],
			}, nil
		}
	}
	return Result{}, fmt.Errorf("stateflow: request %s timed out in simulation", id)
}

// Submit sends an invocation without waiting and returns a getter for the
// response value; the getter yields None until the simulation (advanced
// via Run or later Calls) has delivered the response. Use it to race
// concurrent requests against each other.
func (s *Simulation) Submit(class, key, method string, args ...Value) func() Value {
	id := s.inject(class, key, method, args)
	return func() Value {
		return s.client.responses[id].Value
	}
}

// Create instantiates an entity through the dataflow.
func (s *Simulation) Create(class string, args ...Value) (Result, error) {
	key, err := s.keyForCtor(class, args)
	if err != nil {
		return Result{}, err
	}
	return s.Call(class, key, "__init__", args...)
}

func (s *Simulation) keyForCtor(class string, args []Value) (string, error) {
	if s.sf != nil {
		return s.sf.KeyForCtor(class, args)
	}
	return s.sfu.KeyForCtor(class, args)
}

// EntityState reads an entity's committed state.
func (s *Simulation) EntityState(class, key string) (map[string]Value, bool) {
	var st interp.MapState
	var ok bool
	if s.sf != nil {
		st, ok = s.sf.EntityState(class, key)
	} else {
		st, ok = s.sfu.EntityState(class, key)
	}
	return st, ok
}

// Run advances virtual time unconditionally (e.g. to let background work
// such as snapshots complete).
func (s *Simulation) Run(d time.Duration) {
	s.ensureStarted()
	s.Cluster.RunUntil(s.Cluster.Now() + d)
}
