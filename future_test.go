// Tests of the Future and CallOption surface across runtimes.
package stateflow_test

import (
	"strings"
	"testing"
	"time"

	"statefulentities.dev/stateflow"
)

func TestLocalSubmitFutureIsBornComplete(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	c := stateflow.NewLocalClient(prog)
	if _, err := c.Create("Item", stateflow.Str("apple"), stateflow.Int(5)); err != nil {
		t.Fatal(err)
	}
	f := c.Entity("Item", "apple").Submit("update_stock", stateflow.Int(4))
	if !f.Done() {
		t.Fatal("local futures must be born complete")
	}
	res, ok := f.Peek()
	if !ok || res.Err != "" || !res.Value.B {
		t.Fatalf("peek: %+v %v", res, ok)
	}
	if res2, err := f.Wait(); err != nil || res2.Value.Repr() != res.Value.Repr() || res2.Err != res.Err {
		t.Fatalf("wait after peek: %+v %v", res2, err)
	}
	if f.Target().Key != "apple" || f.Method() != "update_stock" {
		t.Fatalf("future metadata: %s.%s", f.Target(), f.Method())
	}
}

// TestSimulationSubmitFutureFailure is the regression test for the lossy
// legacy getter: a failing submitted request must surface its application
// error, retry count and latency through the Future. (The deprecated
// Simulation.Submit getter returned a zero Value and silently dropped all
// of that.)
func TestSimulationSubmitFutureFailure(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	for _, backend := range []stateflow.Backend{stateflow.BackendStateFlow, stateflow.BackendStateFun} {
		t.Run(string(backend), func(t *testing.T) {
			simu := stateflow.NewSimulation(prog, stateflow.SimConfig{Backend: backend})
			c := simu.Client()
			// No preload: calling a method on a missing entity fails at the
			// application level.
			f := c.Entity("User", "ghost").Submit("buy_item",
				stateflow.Int(1), stateflow.Ref("Item", "nope"))
			if f.Done() {
				t.Fatal("future complete before any virtual time passed")
			}
			res, err := f.Wait()
			if err != nil {
				t.Fatalf("transport error: %v", err)
			}
			if res.Err == "" || !strings.Contains(res.Err, "ghost") {
				t.Fatalf("application error lost: %+v", res)
			}
			if res.Latency <= 0 {
				t.Fatalf("latency lost: %+v", res)
			}
			if res.Retries != 0 {
				t.Fatalf("unexpected retries: %+v", res)
			}
			// The legacy getter semantics (zero Value) remain available for
			// old callers, but the Future carried the truth.
			get := simu.Submit("User", "ghost2", "buy_item",
				stateflow.Int(1), stateflow.Ref("Item", "nope"))
			simu.Run(5 * time.Second)
			if v := get(); v.Kind != stateflow.None.Kind {
				t.Fatalf("legacy getter: %v", v)
			}
		})
	}
}

func TestSimulationFutureResolvesViaRun(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{Epoch: 5 * time.Millisecond})
	c := simu.Client()
	if err := c.Admin().Preload("Item", stateflow.Str("apple"), stateflow.Int(2)); err != nil {
		t.Fatal(err)
	}
	f := c.Entity("Item", "apple").Submit("get_price")
	if f.Done() {
		t.Fatal("not yet delivered")
	}
	simu.Run(5 * time.Second) // futures resolve as virtual time advances
	res, ok := f.Peek()
	if !ok {
		t.Fatal("future unresolved after Run")
	}
	if res.Err != "" || res.Value.I != 2 {
		t.Fatalf("peek: %+v", res)
	}
}

func TestCallTimeoutOption(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{})
	if err := simu.Preload("Item", stateflow.Str("apple"), stateflow.Int(2)); err != nil {
		t.Fatal(err)
	}
	// A 1µs budget cannot cover the client link latency: the call must
	// time out instead of looping to the default 30s.
	item := simu.Client().Entity("Item", "apple").
		With(stateflow.WithTimeout(time.Microsecond), stateflow.WithPatience(time.Microsecond))
	_, err := item.Call("get_price")
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout, got %v", err)
	}
	// The same handle with a sane budget succeeds — and a future from the
	// impatient handle can still be waited on with the patient one's
	// options unaffected.
	res, err := item.With(stateflow.WithTimeout(10 * time.Second)).Call("get_price")
	if err != nil || res.Value.I != 2 {
		t.Fatalf("recovered call: %+v %v", res, err)
	}
}

func TestWithPatienceControlsPolling(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{Epoch: 5 * time.Millisecond})
	if err := simu.Preload("Item", stateflow.Str("apple"), stateflow.Int(2)); err != nil {
		t.Fatal(err)
	}
	before := simu.Cluster.Now()
	coarse := simu.Client().Entity("Item", "apple").With(stateflow.WithPatience(200 * time.Millisecond))
	res, err := coarse.Call("get_price")
	if err != nil || res.Value.I != 2 {
		t.Fatalf("coarse call: %+v %v", res, err)
	}
	// With 200ms polling granularity the call consumed at least one full
	// patience step of virtual time.
	if advanced := simu.Cluster.Now() - before; advanced < 200*time.Millisecond {
		t.Fatalf("patience not honored: advanced %s", advanced)
	}
}

func TestLiveClientFutures(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	c := stateflow.NewLiveClient(prog, stateflow.LiveConfig{Workers: 4})
	defer func() { _ = c.Close() }()
	if _, err := c.Create("Item", stateflow.Str("gpu"), stateflow.Int(900)); err != nil {
		t.Fatal(err)
	}
	item := c.Entity("Item", "gpu")
	if _, err := item.Call("update_stock", stateflow.Int(10)); err != nil {
		t.Fatal(err)
	}
	futs := make([]*stateflow.Future, 8)
	for i := range futs {
		futs[i] = item.Submit("update_stock", stateflow.Int(-1))
	}
	for _, f := range futs {
		res, err := f.Wait()
		if err != nil || res.Err != "" {
			t.Fatalf("wait: %+v %v", res, err)
		}
	}
	st, ok := c.Admin().Inspect("Item", "gpu")
	if !ok || st["stock"].I != 2 {
		t.Fatalf("state after futures: %v %v", st, ok)
	}
	if keys := c.Admin().Keys("Item"); len(keys) != 1 || keys[0] != "gpu" {
		t.Fatalf("keys: %v", keys)
	}
}

func TestLiveClientCloseFailsPendingFutures(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	c := stateflow.NewLiveClient(prog, stateflow.LiveConfig{Workers: 2})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	f := c.Entity("Item", "x").Submit("get_price")
	if _, err := f.Wait(); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("want runtime-closed error, got %v", err)
	}
}

func TestAdminPreloadAfterStartRejectedOnSim(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{})
	admin := simu.Client().Admin()
	if err := admin.Preload("User", stateflow.Str("u")); err != nil {
		t.Fatal(err)
	}
	if _, err := simu.Client().Entity("User", "u").Call("buy_item",
		stateflow.Int(1), stateflow.Ref("Item", "x")); err != nil {
		t.Fatal(err)
	}
	if err := admin.Preload("User", stateflow.Str("late")); err == nil {
		t.Fatal("preload after start must fail")
	}
}

// TestFutureWaitTimeoutIsRetryable: a transport timeout must not resolve
// the future — after more virtual time the real outcome is observable.
func TestFutureWaitTimeoutIsRetryable(t *testing.T) {
	prog := stateflow.MustCompile(figure1)
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{})
	if err := simu.Preload("Item", stateflow.Str("apple"), stateflow.Int(2)); err != nil {
		t.Fatal(err)
	}
	f := simu.Client().Entity("Item", "apple").
		With(stateflow.WithTimeout(time.Microsecond), stateflow.WithPatience(time.Microsecond)).
		Submit("get_price")
	if _, err := f.Wait(); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout, got %v", err)
	}
	if f.Done() {
		t.Fatal("timeout must not resolve the future")
	}
	simu.Run(5 * time.Second)
	res, err := f.Wait()
	if err != nil || res.Err != "" || res.Value.I != 2 {
		t.Fatalf("retried wait: %+v %v", res, err)
	}
}
