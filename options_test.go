// White-box table tests of CallOption resolution.
package stateflow

import (
	"testing"
	"time"
)

func TestCallOptionsApply(t *testing.T) {
	cases := []struct {
		name string
		opts []CallOption
		want callOptions
	}{
		{
			name: "defaults",
			opts: nil,
			want: callOptions{timeout: DefaultTimeout, patience: DefaultPatience},
		},
		{
			name: "kind",
			opts: []CallOption{WithKind("transfer")},
			want: callOptions{kind: "transfer", timeout: DefaultTimeout, patience: DefaultPatience},
		},
		{
			name: "timeout and patience",
			opts: []CallOption{WithTimeout(time.Second), WithPatience(time.Millisecond)},
			want: callOptions{timeout: time.Second, patience: time.Millisecond},
		},
		{
			name: "non-positive restores defaults",
			opts: []CallOption{WithTimeout(-1), WithPatience(0)},
			want: callOptions{timeout: DefaultTimeout, patience: DefaultPatience},
		},
		{
			name: "last write wins",
			opts: []CallOption{WithKind("a"), WithKind("b"), WithTimeout(time.Second), WithTimeout(2 * time.Second)},
			want: callOptions{kind: "b", timeout: 2 * time.Second, patience: DefaultPatience},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := defaultCallOptions().apply(tc.opts); got != tc.want {
				t.Fatalf("got %+v want %+v", got, tc.want)
			}
		})
	}
}

func TestEntityWithDerivesWithoutMutating(t *testing.T) {
	c := NewLocalClient(MustCompile(`
@entity
class C:
    def __init__(self, k: str):
        self.k: str = k

    def __key__(self) -> str:
        return self.k

    def get(self) -> str:
        return self.k
`))
	base := c.Entity("C", "x")
	derived := base.With(WithKind("read"), WithTimeout(time.Second))
	if base.opts != defaultCallOptions() {
		t.Fatalf("With mutated the base handle: %+v", base.opts)
	}
	if derived.opts.kind != "read" || derived.opts.timeout != time.Second {
		t.Fatalf("derived options: %+v", derived.opts)
	}
	if derived.Ref() != base.Ref() || derived.Class() != "C" || derived.Key() != "x" {
		t.Fatal("derived handle must address the same entity")
	}
	if rv := base.RefValue(); rv.R.Class != "C" || rv.R.Key != "x" {
		t.Fatalf("RefValue: %v", rv)
	}
}
