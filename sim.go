package stateflow

import (
	"fmt"
	"time"

	"statefulentities.dev/stateflow/internal/chaos"
	"statefulentities.dev/stateflow/internal/sim"
	sfsys "statefulentities.dev/stateflow/internal/systems/stateflow"
	"statefulentities.dev/stateflow/internal/systems/statefun"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
)

// Backend selects which distributed runtime a Simulation deploys.
type Backend string

// Available backends.
const (
	// BackendStateFlow deploys the transactional StateFlow runtime.
	BackendStateFlow Backend = "stateflow"
	// BackendStateFun deploys the Flink-StateFun-model baseline.
	BackendStateFun Backend = "statefun"
)

// SimConfig parameterizes a Simulation.
type SimConfig struct {
	Backend Backend
	// Workers is the StateFlow worker count (default 5) or, for the
	// baseline, the Flink worker count (default 3; the baseline also gets
	// an equal number of remote function runtimes).
	Workers int
	// Epoch is StateFlow's transaction batch interval (default 10ms).
	Epoch time.Duration
	// SnapshotEvery takes a StateFlow snapshot after every N batches
	// (default 0: only the preload checkpoint).
	SnapshotEvery int
	// Seed makes the simulation deterministic (default 1).
	Seed int64
	// Shards partitions the entity space across this many independent
	// coordinator+worker groups, fronted by a thin global sequencing
	// layer: single-shard transactions go straight to their shard,
	// cross-shard transactions order through fenced global batches. 0 or
	// 1 deploys the classic single-coordinator topology — byte-identical
	// to a deployment without this field. StateFlow backend only.
	Shards int
	// FullFences forces the sequencer's historical schedule in which
	// every global batch fences every shard instead of just the batch's
	// footprint. Kept as the reference schedule for the scoped-fence
	// differential tests and the bench comparison; no effect unless
	// Shards > 1.
	FullFences bool
	// MapFallback disables the slotted execution fast path, forcing
	// name-keyed variable and attribute resolution. Differential tests
	// run both modes and assert identical results and committed state.
	MapFallback bool
	// DisableFallback turns off the StateFlow backend's Aria fallback
	// phase: conflict-aborted transactions then retry in the next batch
	// instead of re-executing deterministically inside the current one.
	// Kept for A/B benchmarking and differential tests; no effect on the
	// baseline backend. (MapFallback above concerns the interpreter, not
	// the transaction protocol.)
	DisableFallback bool
	// DisablePipelining forces the StateFlow backend's serial epoch
	// schedule: each epoch fully commits (and fsyncs) before the next one
	// opens. With pipelining on (the default), two epochs run in flight —
	// epoch N+1 opens and executes while N validates, applies and
	// group-commits, and N+1's epoch-advance record rides N's fsync. Kept
	// for A/B benchmarking and differential tests; no effect on the
	// baseline backend.
	DisablePipelining bool
	// TraceCommits turns on the StateFlow coordinator's commit-order tap
	// (see Simulation.CommitSerials): every committed request records its
	// position in the effective serial order. The linearizability checker
	// consumes it; the map grows with the run, so leave it off elsewhere.
	// No effect on the baseline backend.
	TraceCommits bool
	// UncheckedFallbackDrift disables the StateFlow fallback phase's
	// cross-round footprint-drift check (test hook — exists solely so the
	// drift regression test can reproduce the pre-fix bug and show the
	// linearizability checker catching it).
	UncheckedFallbackDrift bool
	// UncheckedReplayOrder disables the StateFlow recovery binding-prefix
	// replay, restoring the historical recovery that re-cut released work
	// into fresh batches in TID order (test hook — exists solely so the
	// replay-order regression tests can reproduce the pre-fix divergence
	// and show the linearizability checker catching it).
	UncheckedReplayOrder bool
	// ClientRetry is the client-edge retransmission interval: a submitted
	// request whose response has not arrived after this much virtual time
	// is re-sent (same request id — the ingress dedupes in-flight copies
	// and the StateFlow egress re-serves already-answered ones from its
	// durable buffer). This is what makes client-edge message drops
	// survivable. 0 selects the 50ms default; negative disables retries.
	ClientRetry time.Duration
	// Tracer, when non-nil, records per-transaction phase spans (ingress
	// queue, execute, validate, fallback rounds, group-commit fsync, and
	// the cross-shard fence/execute/apply/unfence cycle) on the StateFlow
	// backend, exportable as Chrome trace-event JSON via Tracer.WriteJSON.
	// Tracing is deterministically inert: it never touches the simulation
	// RNG or schedules work, so a traced run's transcripts and committed
	// state are byte-identical to an untraced one, and two traced runs of
	// the same seed emit byte-identical traces.
	Tracer *Tracer
}

// DefaultClientRetry is the client retransmission interval used when
// SimConfig.ClientRetry is zero. Retries are capped per request (see
// sysapi.Retransmitter) so an unresolvable request cannot keep a drained
// simulation alive forever.
const DefaultClientRetry = 50 * time.Millisecond

// Simulation is a deployed distributed runtime on the deterministic
// cluster simulator. Client() returns its portable caller surface; a
// Call drives virtual time until the response returns, a Submit returns
// a Future resolved as virtual time advances. The Simulation and
// everything derived from it are single-threaded.
type Simulation struct {
	Cluster *sim.Cluster
	kind    Backend
	sf      *sfsys.System
	sfSh    *sfsys.ShardedSystem
	sfu     *statefun.System
	// sys is the deployed runtime behind one facade: all dispatch that
	// used to branch on the backend goes through it.
	sys     sysapi.Backend
	client  *simClient
	reqs    *sysapi.Builder
	api     *simulationClient
	chaos   *chaos.Engine
	tracer  *Tracer
	flight  *FlightRecorder
	metrics *MetricsRegistry
	started bool
}

// simClient is the sim.Handler that records responses on the cluster's
// client edge and drives client-side retransmission (one shared
// sysapi.Retransmitter state machine): a request without a response
// after the retry interval is re-sent with the same id, so a dropped
// request (the ingress dedupes) or a dropped response (the egress
// replays) heals instead of hanging.
type simClient struct {
	rx        sysapi.Retransmitter
	responses map[string]sysapi.Response
	latency   map[string]time.Duration
	sent      map[string]time.Duration
	// deliveries counts raw response deliveries per request id, before
	// deduplication (the exactly-once-output evidence chaos tests check).
	deliveries map[string]int
}

// msgClientSubmit asks the client component to transmit a fresh request.
type msgClientSubmit struct{ req sysapi.Request }

// OnMessage implements sim.Handler.
func (c *simClient) OnMessage(ctx *sim.Context, from string, msg sim.Message) {
	if c.rx.Handle(ctx, msg) {
		return
	}
	switch m := msg.(type) {
	case msgClientSubmit:
		c.rx.Send(ctx, m.req)
	case sysapi.MsgResponse:
		c.deliveries[m.Response.Req]++
		if _, dup := c.responses[m.Response.Req]; dup {
			return
		}
		c.responses[m.Response.Req] = m.Response
		if at, ok := c.sent[m.Response.Req]; ok {
			c.latency[m.Response.Req] = ctx.Now() - at
		}
	}
}

// NewSimulation builds a simulated deployment of a compiled program.
// Options extend the plain SimConfig: WithChaos installs a deterministic
// fault plan on the cluster before anything runs.
func NewSimulation(prog *Program, cfg SimConfig, opts ...SimOption) *Simulation {
	if cfg.Backend == "" {
		cfg.Backend = BackendStateFlow
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	var o simOptions
	for _, opt := range opts {
		opt(&o)
	}
	retryEvery := cfg.ClientRetry
	if retryEvery == 0 {
		retryEvery = DefaultClientRetry
	}
	cluster := sim.New(cfg.Seed)
	// Every simulation carries a flight recorder: the ring is cheap, and a
	// chaos failure with no timeline attached is a debugging dead end.
	flight := NewFlightRecorder(0)
	cluster.SetFlightRecorder(flight)
	s := &Simulation{
		Cluster: cluster,
		kind:    cfg.Backend,
		tracer:  cfg.Tracer,
		flight:  flight,
		client: &simClient{
			rx:         sysapi.Retransmitter{ReplyTo: "api-client", Every: retryEvery},
			responses:  map[string]sysapi.Response{},
			latency:    map[string]time.Duration{},
			sent:       map[string]time.Duration{},
			deliveries: map[string]int{},
		},
		reqs: sysapi.NewBuilder("api-"),
	}
	s.api = &simulationClient{s: s}
	switch cfg.Backend {
	case BackendStateFlow:
		c := sfsys.DefaultConfig()
		if cfg.Workers > 0 {
			c.Workers = cfg.Workers
		}
		if cfg.Epoch > 0 {
			c.EpochInterval = cfg.Epoch
		}
		c.SnapshotEvery = cfg.SnapshotEvery
		c.MapFallback = cfg.MapFallback
		c.DisableFallback = cfg.DisableFallback
		c.DisablePipelining = cfg.DisablePipelining
		c.TraceCommits = cfg.TraceCommits
		c.UncheckedFallbackDrift = cfg.UncheckedFallbackDrift
		c.UncheckedReplayOrder = cfg.UncheckedReplayOrder
		c.Tracer = cfg.Tracer
		c.Flight = flight
		c.Shards = cfg.Shards
		c.FullFences = cfg.FullFences
		sh := sfsys.New(cluster, prog, c)
		if sh.Sequencer() != nil {
			s.sfSh = sh
			s.sys = s.sfSh
		} else {
			// Shards <= 1 takes the exact single-coordinator construction
			// path (New deploys one classic group and no sequencer), so an
			// unsharded config stays byte-identical to every pre-sharding
			// transcript.
			s.sf = sh.Single()
			s.sys = s.sf
		}
	case BackendStateFun:
		c := statefun.DefaultConfig()
		if cfg.Workers > 0 {
			c.FlinkWorkers = cfg.Workers
			c.FnRuntimes = cfg.Workers
		}
		c.MapFallback = cfg.MapFallback
		s.sfu = statefun.New(cluster, prog, c)
		s.sys = s.sfu
	default:
		panic(fmt.Sprintf("stateflow: unknown backend %q", cfg.Backend))
	}
	s.client.rx.Sys = s.sys
	cluster.Add("api-client", s.client)
	if o.chaos != nil {
		s.chaos = chaos.Install(cluster, s.sys.ChaosTopology(), *o.chaos)
	}
	return s
}

// Client returns the Simulation's portable caller surface.
func (s *Simulation) Client() Client { return s.api }

// Backend reports which runtime the Simulation deployed.
func (s *Simulation) Backend() Backend { return s.kind }

// StateFlow returns the underlying StateFlow system (nil for the baseline
// backend and for sharded deployments — see Sharded).
func (s *Simulation) StateFlow() *sfsys.System { return s.sf }

// Sharded returns the underlying sharded StateFlow deployment (nil unless
// SimConfig.Shards > 1 on the StateFlow backend).
func (s *Simulation) Sharded() *sfsys.ShardedSystem { return s.sfSh }

// StateFun returns the underlying baseline system (nil for StateFlow).
func (s *Simulation) StateFun() *statefun.System { return s.sfu }

// Tracer returns the trace buffer attached via SimConfig.Tracer (nil
// when tracing is off). Export it with Tracer.WriteJSON.
func (s *Simulation) Tracer() *Tracer { return s.tracer }

// FlightRecorder returns the simulation's cluster-event ring: crashes,
// reboots, epoch advances, fences and replay decisions, in virtual-time
// order. It is always recording; chaos and linearizability failures
// dump it alongside the seed and plan.
func (s *Simulation) FlightRecorder() *FlightRecorder { return s.flight }

// Metrics returns a registry exposing the deployed backend's counters
// (and the durable log's, when one is configured) under stable dotted
// names. Built on first use; reading the registry is side-effect-free.
func (s *Simulation) Metrics() *MetricsRegistry {
	if s.metrics == nil {
		s.metrics = NewMetricsRegistry()
		switch {
		case s.sf != nil:
			s.sf.RegisterMetrics(s.metrics)
		case s.sfSh != nil:
			s.sfSh.RegisterMetrics(s.metrics)
		case s.sfu != nil:
			s.sfu.RegisterMetrics(s.metrics)
		}
	}
	return s.metrics
}

// CommitSerials returns the StateFlow coordinator's commit-order tap
// (request id → position in the effective serial order the surviving
// state was built in). Empty unless SimConfig.TraceCommits is set; nil
// on the baseline backend, which has no coordinator — a checker driving
// the baseline falls back to graph mode.
func (s *Simulation) CommitSerials() map[string]int64 {
	if s.sf == nil {
		return nil
	}
	return s.sf.Coordinator().CommitSerials()
}

// Preload installs an entity built by __init__ with the given args,
// bypassing the dataflow. Must be called before the first Call.
func (s *Simulation) Preload(class string, args ...Value) error {
	if s.started {
		return fmt.Errorf("stateflow: Preload after simulation start")
	}
	return s.sys.PreloadEntity(class, args...)
}

func (s *Simulation) ensureStarted() {
	if !s.started {
		if s.sf != nil {
			s.sf.CheckpointPreloadedState()
		}
		if s.sfSh != nil {
			s.sfSh.CheckpointPreloadedState()
		}
		s.Cluster.Start()
		s.started = true
	}
}

// inject assembles a request and hands it to the client-edge component,
// which transmits it over the edge link and owns its retransmission
// timer. Calls and Futures share this path.
func (s *Simulation) inject(ref EntityRef, method string, args []Value, kind string) string {
	s.ensureStarted()
	req := s.reqs.Next(ref, method, args, kind)
	s.client.sent[req.Req] = s.Cluster.Now()
	s.Cluster.Inject(s.Cluster.Now(), "api-client", "api-client", msgClientSubmit{req: req})
	return req.Req
}

// await advances virtual time in patience-sized steps until the response
// to id arrives or the timeout budget runs out.
func (s *Simulation) await(id string, o callOptions) (Result, error) {
	deadline := s.Cluster.Now() + o.timeout
	for {
		if res, ok := s.lookup(id); ok {
			return res, nil
		}
		if s.Cluster.Now() >= deadline {
			return Result{}, fmt.Errorf("stateflow: request %s timed out after %s of virtual time", id, o.timeout)
		}
		step := o.patience
		if rem := deadline - s.Cluster.Now(); rem < step {
			step = rem
		}
		s.Cluster.RunUntil(s.Cluster.Now() + step)
	}
}

// lookup reads a recorded response without advancing time.
func (s *Simulation) lookup(id string) (Result, bool) {
	resp, ok := s.client.responses[id]
	if !ok {
		return Result{}, false
	}
	return Result{
		Value: resp.Value, Err: resp.Err, Retries: resp.Retries,
		Latency: s.client.latency[id],
	}, true
}

// Run advances virtual time unconditionally (e.g. to let submitted
// requests race each other, or background work such as snapshots
// complete).
func (s *Simulation) Run(d time.Duration) {
	s.ensureStarted()
	s.Cluster.RunUntil(s.Cluster.Now() + d)
}

// ---------------------------------------------------------------------------
// Client implementation

// simulationClient implements Client/Admin/caller over a Simulation.
type simulationClient struct{ s *Simulation }

// Entity implements Client.
func (c *simulationClient) Entity(class, key string) *Entity { return newEntity(c, class, key) }

// Create implements Client.
func (c *simulationClient) Create(class string, args ...Value) (*Entity, error) {
	return createVia(c, c.s.sys.KeyForCtor, class, args)
}

// Admin implements Client.
func (c *simulationClient) Admin() Admin { return c }

// Close implements Client (no-op: the simulation owns no real resources).
func (c *simulationClient) Close() error { return nil }

func (c *simulationClient) call(ref EntityRef, method string, args []Value, o callOptions) (Result, error) {
	id := c.s.inject(ref, method, args, o.kind)
	return c.s.await(id, o)
}

func (c *simulationClient) submit(ref EntityRef, method string, args []Value, o callOptions) *Future {
	id := c.s.inject(ref, method, args, o.kind)
	poll := func() (Result, error, bool) {
		res, ok := c.s.lookup(id)
		return res, nil, ok
	}
	wait := func() (Result, error) { return c.s.await(id, o) }
	f := newFuture(ref, method, poll, wait)
	f.id = id
	return f
}

// Inspect implements Admin.
func (c *simulationClient) Inspect(class, key string) (map[string]Value, bool) {
	st, ok := c.s.sys.EntityState(class, key)
	return st, ok
}

// Keys implements Admin.
func (c *simulationClient) Keys(class string) []string { return c.s.sys.Keys(class) }

// Preload implements Admin.
func (c *simulationClient) Preload(class string, args ...Value) error {
	return c.s.Preload(class, args...)
}

// ---------------------------------------------------------------------------
// Legacy entry points (thin wrappers over the Client surface)

// Call submits a method invocation and advances virtual time until its
// response arrives (or the default timeout budget runs out).
//
// Deprecated: use Client().Entity(class, key).Call(method, args...); the
// handle form carries CallOptions and is portable across runtimes.
func (s *Simulation) Call(class, key, method string, args ...Value) (Result, error) {
	return s.api.call(EntityRef{Class: class, Key: key}, method, args, defaultCallOptions())
}

// Submit sends an invocation without waiting and returns a getter for the
// response value; the getter yields None until the simulation (advanced
// via Run or later Calls) has delivered the response.
//
// Deprecated: the getter is lossy — it drops Err, Retries and Latency.
// Use Client().Entity(class, key).Submit(method, args...), whose Future
// carries the full outcome.
func (s *Simulation) Submit(class, key, method string, args ...Value) func() Value {
	f := s.api.submit(EntityRef{Class: class, Key: key}, method, args, defaultCallOptions())
	return func() Value {
		res, _ := f.Peek()
		return res.Value
	}
}

// Create instantiates an entity through the dataflow.
//
// Deprecated: use Client().Create, which returns a typed Entity handle.
func (s *Simulation) Create(class string, args ...Value) (Result, error) {
	key, err := s.sys.KeyForCtor(class, args)
	if err != nil {
		return Result{}, err
	}
	return s.Call(class, key, "__init__", args...)
}

// EntityState reads an entity's committed state.
//
// Deprecated: use Client().Admin().Inspect.
func (s *Simulation) EntityState(class, key string) (map[string]Value, bool) {
	return s.api.Inspect(class, key)
}
