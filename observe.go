package stateflow

import (
	"statefulentities.dev/stateflow/internal/obs"
	sfsys "statefulentities.dev/stateflow/internal/systems/stateflow"
)

// SequencerStats are the sharded topology's sequencing-layer counters
// (global batches, scoped vs full fences, failovers, re-derived
// batches), snapshotted via Sharded().Sequencer().Stats(). Zero-valued
// on unsharded deployments.
type SequencerStats = sfsys.SequencerStats

// Tracer records transaction spans for export as Chrome trace-event JSON
// (chrome://tracing, Perfetto). Attach one to a Simulation via
// SimConfig.Tracer; a nil Tracer disables tracing at zero cost. Tracing
// is deterministically inert: spans are derived purely from virtual
// timestamps the runtime already computes, so a traced run's transcripts
// and committed state are byte-identical to an untraced one.
type Tracer = obs.Tracer

// NewTracer returns an empty trace buffer ready to attach to a
// Simulation.
func NewTracer() *Tracer { return obs.NewTracer() }

// FlightRecorder is a bounded ring of structured cluster events (epoch
// advances, crashes, reboots, fences, replay decisions). Every
// Simulation carries one; its Dump is appended to chaos-oracle failure
// reports so a failing seed arrives with its cluster timeline attached.
type FlightRecorder = obs.FlightRecorder

// FlightEvent is one recorded cluster event.
type FlightEvent = obs.FlightEvent

// NewFlightRecorder returns a flight recorder keeping the last capacity
// events (0 selects the default).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewFlightRecorder(capacity) }

// MetricsRegistry is a named-metric registry (counters, gauges,
// histograms) with Prometheus text exposition. Simulation.Metrics
// returns one covering the deployed backend; the Live runtime serves
// its own on LiveConfig.MetricsAddr.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }
