// Differential tests for the sharded multi-coordinator topology: the
// same workload runs on the classic single-coordinator deployment and on
// sharded deployments, and the outcomes must agree where the deployment
// contract says they must.
//
// Two distinct claims are pinned here. First, Shards=1 is not a "small
// sharded cluster" — it is the classic topology, byte-for-byte: the
// config only changes the wiring when there is more than one shard, so a
// 1-shard run reproduces today's single-coordinator transcripts exactly,
// including the fault-sensitive trace (latencies, delivery counts,
// virtual clock). Second, sharding is a throughput topology, not a
// semantics change: with 2 or 4 shards the responses and the committed
// state must be byte-identical to the unsharded run — routing a
// transaction through the global sequencer or a shard-local epoch must
// never change what commits or what clients observe.
package stateflow_test

import (
	"testing"

	"statefulentities.dev/stateflow"
	"statefulentities.dev/stateflow/internal/chaos/oracle"
)

// TestShardedOneShardByteIdentical pins the deployment contract's strict
// half: a Shards=1 config is byte-identical to one that never mentions
// sharding — transcript, committed state, and the fault-sensitive trace.
func TestShardedOneShardByteIdentical(t *testing.T) {
	for _, w := range []oracle.Workload{oracle.Banking(), oracle.YCSB()} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				cfg := oracle.DefaultConfig()
				ref, err := oracle.RunOnce(w, stateflow.BackendStateFlow, seed, nil, cfg)
				if err != nil {
					t.Fatalf("seed %d unsharded: %v", seed, err)
				}
				cfg.Shards = 1
				one, err := oracle.RunOnce(w, stateflow.BackendStateFlow, seed, nil, cfg)
				if err != nil {
					t.Fatalf("seed %d shards=1: %v", seed, err)
				}
				if one.Transcript != ref.Transcript {
					t.Fatalf("seed %d: transcripts diverge:\n--- unsharded ---\n%s--- shards=1 ---\n%s",
						seed, ref.Transcript, one.Transcript)
				}
				if one.StateDigest != ref.StateDigest {
					t.Fatalf("seed %d: committed state diverges:\n--- unsharded ---\n%s--- shards=1 ---\n%s",
						seed, ref.StateDigest, one.StateDigest)
				}
				if one.Trace != ref.Trace {
					t.Fatalf("seed %d: traces diverge (shards=1 is not the classic wiring):\n--- unsharded ---\n%s--- shards=1 ---\n%s",
						seed, ref.Trace, one.Trace)
				}
			}
		})
	}
}

// TestShardedDifferentialOracleWorkloads pins the semantic half: 2- and
// 4-shard deployments must produce the same responses and byte-identical
// committed state as the unsharded run. The oracle workloads are
// order-insensitive under the concurrency the driver applies, so any
// divergence is a lost, duplicated, or misrouted effect in the sharded
// commit path.
func TestShardedDifferentialOracleWorkloads(t *testing.T) {
	for _, w := range []oracle.Workload{oracle.Banking(), oracle.YCSB()} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				cfg := oracle.DefaultConfig()
				ref, err := oracle.RunOnce(w, stateflow.BackendStateFlow, seed, nil, cfg)
				if err != nil {
					t.Fatalf("seed %d unsharded: %v", seed, err)
				}
				for _, shards := range []int{2, 4} {
					cfg.Shards = shards
					got, err := oracle.RunOnce(w, stateflow.BackendStateFlow, seed, nil, cfg)
					if err != nil {
						t.Fatalf("seed %d shards=%d: %v", seed, shards, err)
					}
					if got.Transcript != ref.Transcript {
						t.Fatalf("seed %d shards=%d: transcripts diverge:\n--- unsharded ---\n%s--- sharded ---\n%s",
							seed, shards, ref.Transcript, got.Transcript)
					}
					if got.StateDigest != ref.StateDigest {
						t.Fatalf("seed %d shards=%d: committed state diverges:\n--- unsharded ---\n%s--- sharded ---\n%s",
							seed, shards, ref.StateDigest, got.StateDigest)
					}
				}
			}
		})
	}
}
