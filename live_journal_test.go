package stateflow_test

import (
	"path/filepath"
	"testing"

	"statefulentities.dev/stateflow"
)

const journalCounterSrc = `
@entity
class Counter:
    def __init__(self, name: str):
        self.name: str = name
        self.n: int = 0

    def __key__(self) -> str:
        return self.name

    def bump(self, by: int) -> int:
        self.n += by
        return self.n
`

// TestLiveClientJournalReplay drives the durable response journal through
// the public Client surface: a client with a stable request id
// (WithRequestID) retries against a restarted process and receives the
// journaled outcome instead of a re-execution.
func TestLiveClientJournalReplay(t *testing.T) {
	prog := stateflow.MustCompile(journalCounterSrc)
	path := filepath.Join(t.TempDir(), "responses.dlog")

	c1, err := stateflow.OpenLiveClient(prog, stateflow.LiveConfig{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Create("Counter", stateflow.Str("c1")); err != nil {
		t.Fatal(err)
	}
	res, err := c1.Entity("Counter", "c1").
		With(stateflow.WithRequestID("order-41")).
		Call("bump", stateflow.Int(5))
	if err != nil || res.Err != "" || res.Value.I != 5 {
		t.Fatalf("bump: %+v err=%v", res, err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Process restart": a fresh runtime on the same journal. The retry
	// of order-41 is re-served; live entity state is gone, proving the
	// answer came from the journal, not a second execution.
	c2, err := stateflow.OpenLiveClient(prog, stateflow.LiveConfig{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res, err = c2.Entity("Counter", "c1").
		With(stateflow.WithRequestID("order-41")).
		Call("bump", stateflow.Int(5))
	if err != nil || res.Err != "" || res.Value.I != 5 {
		t.Fatalf("replayed bump: %+v err=%v", res, err)
	}
	if _, ok := c2.Admin().Inspect("Counter", "c1"); ok {
		t.Fatal("journal replay re-executed the request")
	}
}
