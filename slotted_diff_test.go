// Differential tests for the slotted execution engine: every example
// program runs twice under a seeded random workload — once on the slotted
// fast path (slot-stamped ASTs, slice-backed frames, dense state rows)
// and once on the legacy name-keyed path (MapFallback) — on each of the
// three runtimes (Local, StateFlow, StateFun-model). Both runs must
// produce identical responses for every call and byte-identical canonical
// encodings of every entity's committed state.
package stateflow_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"

	"statefulentities.dev/stateflow"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/runtime/local"
	sfsys "statefulentities.dev/stateflow/internal/systems/stateflow"
	"statefulentities.dev/stateflow/internal/workload/tpcc"
	"statefulentities.dev/stateflow/internal/workload/ycsb"
)

// exampleSource extracts the embedded DSL source from an example's
// main.go, so the differential tests exercise the exact programs the
// examples ship.
func exampleSource(t *testing.T, name string) string {
	t.Helper()
	buf, err := os.ReadFile("examples/" + name + "/main.go")
	if err != nil {
		t.Fatalf("read example %s: %v", name, err)
	}
	s := string(buf)
	const marker = "const source = `"
	i := strings.Index(s, marker)
	if i < 0 {
		t.Fatalf("example %s has no embedded source", name)
	}
	s = s[i+len(marker):]
	j := strings.Index(s, "`")
	if j < 0 {
		t.Fatalf("example %s source not terminated", name)
	}
	return s[:j]
}

// diffPrograms lists the programs under differential test.
func diffPrograms(t *testing.T) map[string]string {
	return map[string]string{
		"quickstart":   exampleSource(t, "quickstart"),
		"banking":      exampleSource(t, "banking"),
		"shoppingcart": exampleSource(t, "shoppingcart"),
		"tpcc":         tpcc.Program(),
		"ycsb":         ycsb.Program(),
	}
}

// argGen deterministically generates call arguments from method
// signatures. Two generators with the same seed over the same program
// produce identical argument streams, which is what makes the two
// execution modes comparable.
type argGen struct {
	r       *rand.Rand
	keys    map[string][]string // class -> keys of existing entities
	nextKey int
}

func newArgGen(seed int64) *argGen {
	return &argGen{r: rand.New(rand.NewSource(seed)), keys: map[string][]string{}}
}

func (g *argGen) freshKey() string {
	g.nextKey++
	return fmt.Sprintf("k%03d", g.nextKey)
}

func (g *argGen) pickKey(class string) (string, bool) {
	ks := g.keys[class]
	if len(ks) == 0 {
		return "", false
	}
	return ks[g.r.Intn(len(ks))], true
}

// value generates one argument for a type, or ok=false if the type is
// not generatable (e.g. no entity of the class exists yet).
func (g *argGen) value(tr ir.TypeRef) (stateflow.Value, bool) {
	if tr.Entity {
		k, ok := g.pickKey(tr.Name)
		if !ok {
			return stateflow.None, false
		}
		return stateflow.Ref(tr.Name, k), true
	}
	switch tr.Name {
	case "int":
		return stateflow.Int(int64(g.r.Intn(30))), true
	case "float":
		return stateflow.Float(float64(g.r.Intn(20))), true
	case "str":
		return stateflow.Str(fmt.Sprintf("s%d", g.r.Intn(8))), true
	case "bool":
		return stateflow.Bool(g.r.Intn(2) == 0), true
	case "list":
		elem := ir.TypeRef{Name: "int"}
		if len(tr.Args) > 0 {
			elem = tr.Args[0]
		}
		n := 1 + g.r.Intn(3)
		elems := make([]stateflow.Value, 0, n)
		for i := 0; i < n; i++ {
			v, ok := g.value(elem)
			if !ok {
				return stateflow.None, false
			}
			elems = append(elems, v)
		}
		return stateflow.List(elems...), true
	default:
		return stateflow.None, false
	}
}

// ctorArgs generates constructor arguments, substituting a fresh unique
// key for the operator's key parameter.
func (g *argGen) ctorArgs(op *ir.Operator) ([]stateflow.Value, string, bool) {
	init := op.Method("__init__")
	args := make([]stateflow.Value, 0, len(init.Params))
	key := ""
	for _, p := range init.Params {
		if p.Name == op.KeyParam {
			key = g.freshKey()
			args = append(args, stateflow.Str(key))
			continue
		}
		v, ok := g.value(p.Type)
		if !ok {
			return nil, "", false
		}
		args = append(args, v)
	}
	return args, key, key != ""
}

// step describes one generated call of the workload.
type step struct {
	class, key, method string
	args               []stateflow.Value
}

// workload generates a deterministic call sequence over a program: every
// class gets a few entities, then n random method calls land on random
// entities. The generated sequence depends only on (prog, seed).
func workload(prog *stateflow.Program, seed int64, entities, n int) ([]step, *argGen) {
	g := newArgGen(seed)
	var creates []step
	for _, class := range prog.OperatorOrder {
		op := prog.Operators[class]
		for i := 0; i < entities; i++ {
			args, key, ok := g.ctorArgs(op)
			if !ok {
				continue
			}
			creates = append(creates, step{class: class, key: key, method: "__init__", args: args})
			g.keys[class] = append(g.keys[class], key)
		}
	}
	var calls []step
	for len(calls) < n {
		class := prog.OperatorOrder[g.r.Intn(len(prog.OperatorOrder))]
		op := prog.Operators[class]
		var methods []string
		for _, mn := range op.MethodOrder {
			if !strings.HasPrefix(mn, "__") {
				methods = append(methods, mn)
			}
		}
		if len(methods) == 0 {
			continue
		}
		m := op.Methods[methods[g.r.Intn(len(methods))]]
		key, ok := g.pickKey(class)
		if !ok {
			continue
		}
		args := make([]stateflow.Value, 0, len(m.Params))
		argsOK := true
		for _, p := range m.Params {
			v, ok := g.value(p.Type)
			if !ok {
				argsOK = false
				break
			}
			args = append(args, v)
		}
		if !argsOK {
			continue
		}
		calls = append(calls, step{class: class, key: key, method: m.Name, args: args})
	}
	return append(creates, calls...), g
}

// localTranscript runs the workload on the Local runtime and returns the
// response transcript plus the canonical encoding of every entity.
func localTranscript(t *testing.T, prog *stateflow.Program, steps []step, mapFallback bool) ([]string, map[string][]byte) {
	t.Helper()
	rt := local.NewWithOptions(prog, local.Options{MapFallback: mapFallback})
	var transcript []string
	for _, s := range steps {
		var line string
		if s.method == "__init__" {
			_, err := rt.Create(s.class, s.args...)
			line = fmt.Sprintf("create %s<%s> err=%v", s.class, s.key, err != nil)
		} else {
			res, err := rt.Invoke(s.class, s.key, s.method, s.args...)
			if err != nil {
				t.Fatalf("invoke %s.%s: %v", s.class, s.method, err)
			}
			line = fmt.Sprintf("%s<%s>.%s -> %s / %s / hops=%d",
				s.class, s.key, s.method, res.Value.Repr(), res.Err, res.Hops)
		}
		transcript = append(transcript, line)
	}
	states := map[string][]byte{}
	for _, class := range prog.OperatorOrder {
		for _, key := range rt.Keys(class) {
			enc, ok := rt.EncodeState(class, key)
			if !ok {
				t.Fatalf("state of %s<%s> vanished", class, key)
			}
			states[class+"<"+key+">"] = enc
		}
	}
	return transcript, states
}

func compareRuns(t *testing.T, name string, tA, tB []string, sA, sB map[string][]byte) {
	t.Helper()
	if len(tA) != len(tB) {
		t.Fatalf("%s: transcript lengths differ: %d vs %d", name, len(tA), len(tB))
	}
	for i := range tA {
		if tA[i] != tB[i] {
			t.Fatalf("%s: call %d diverged:\n  slotted: %s\n  map:     %s", name, i, tA[i], tB[i])
		}
	}
	if len(sA) != len(sB) {
		t.Fatalf("%s: entity sets differ: %d vs %d", name, len(sA), len(sB))
	}
	keys := make([]string, 0, len(sA))
	for k := range sA {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b, ok := sB[k]
		if !ok {
			t.Fatalf("%s: entity %s missing from map-mode run", name, k)
		}
		if !bytes.Equal(sA[k], b) {
			t.Fatalf("%s: committed state of %s not byte-identical", name, k)
		}
	}
}

// TestDifferentialLocal proves slotted and map execution byte-identical
// on the Local runtime for every example program.
func TestDifferentialLocal(t *testing.T) {
	for name, src := range diffPrograms(t) {
		t.Run(name, func(t *testing.T) {
			prog := stateflow.MustCompile(src)
			steps, _ := workload(prog, 42, 3, 60)
			if len(steps) == 0 {
				t.Fatal("workload generated no steps")
			}
			tSlot, sSlot := localTranscript(t, prog, steps, false)
			tMap, sMap := localTranscript(t, prog, steps, true)
			compareRuns(t, name, tSlot, tMap, sSlot, sMap)
		})
	}
}

// simTranscript runs the workload on a simulated distributed runtime —
// through the portable Client interface — and returns the response
// transcript plus the canonical committed state of every tracked entity.
func simTranscript(t *testing.T, prog *stateflow.Program, backend stateflow.Backend, steps []step, mapFallback bool) ([]string, map[string][]byte) {
	t.Helper()
	sim := stateflow.NewSimulation(prog, stateflow.SimConfig{
		Backend: backend, Seed: 7, MapFallback: mapFallback,
	})
	client := sim.Client()
	// Constructors run through the dataflow, so the full execute path
	// (including entity creation) is under test.
	var transcript []string
	refs := map[string]stateflow.EntityRef{}
	for _, s := range steps {
		res, err := client.Entity(s.class, s.key).Call(s.method, s.args...)
		if err != nil {
			t.Fatalf("call %s.%s: %v", s.class, s.method, err)
		}
		refs[s.class+"<"+s.key+">"] = stateflow.EntityRef{Class: s.class, Key: s.key}
		transcript = append(transcript,
			fmt.Sprintf("%s<%s>.%s -> %s / %s / retries=%d",
				s.class, s.key, s.method, res.Value.Repr(), res.Err, res.Retries))
	}
	if sf := sim.StateFlow(); sf != nil {
		transcript = append(transcript, fmt.Sprintf("commits=%d aborts=%d",
			sf.Coordinator().Commits, sf.Coordinator().Aborts))
	}
	states := map[string][]byte{}
	names := make([]string, 0, len(refs))
	for n := range refs {
		names = append(names, n)
	}
	sort.Strings(names)
	admin := client.Admin()
	for _, n := range names {
		ref := refs[n]
		st, ok := admin.Inspect(ref.Class, ref.Key)
		if !ok {
			continue
		}
		e := interp.NewEncoder()
		e.State(interp.MapState(st))
		states[n] = e.Bytes()
	}
	return transcript, states
}

// TestDifferentialSimulated proves slotted and map execution identical on
// the StateFlow and StateFun-model runtimes for every example program.
func TestDifferentialSimulated(t *testing.T) {
	for name, src := range diffPrograms(t) {
		for _, backend := range []stateflow.Backend{stateflow.BackendStateFlow, stateflow.BackendStateFun} {
			t.Run(name+"/"+string(backend), func(t *testing.T) {
				prog := stateflow.MustCompile(src)
				steps, _ := workload(prog, 11, 2, 20)
				if len(steps) == 0 {
					t.Fatal("workload generated no steps")
				}
				tSlot, sSlot := simTranscript(t, prog, backend, steps, false)
				tMap, sMap := simTranscript(t, prog, backend, steps, true)
				compareRuns(t, name+"/"+string(backend), tSlot, tMap, sSlot, sMap)
			})
		}
	}
}

// TestQuerySeesSlottedState sanity-checks the query layer over rows: live
// aggregation over committed row state matches direct entity reads.
func TestQuerySeesSlottedState(t *testing.T) {
	prog := stateflow.MustCompile(exampleSource(t, "banking"))
	sim := stateflow.NewSimulation(prog, stateflow.SimConfig{Backend: stateflow.BackendStateFlow})
	for i := 0; i < 4; i++ {
		if err := sim.Preload("Account", stateflow.Str(fmt.Sprintf("acc%d", i)), stateflow.Int(100)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sim.Call("Account", "acc0", "transfer", stateflow.Int(30), stateflow.Ref("Account", "acc1")); err != nil {
		t.Fatal(err)
	}
	rows, err := sim.StateFlow().Query("Account", sfsys.QueryLive)
	if err != nil {
		t.Fatal(err)
	}
	if total := sfsys.AggregateInt(rows, "balance"); total != 400 {
		t.Fatalf("total balance %d, want 400 (money conservation)", total)
	}
}
