package stateflow

import "time"

// The former hardcoded client constants, now only defaults: every call
// made through an Entity handle can override them with CallOptions.
const (
	// DefaultTimeout bounds how long a call waits for its response
	// (virtual time on simulations, wall clock on the Live runtime).
	DefaultTimeout = 30 * time.Second
	// DefaultPatience is the virtual-time step a Simulation advances
	// between response checks.
	DefaultPatience = 10 * time.Millisecond
)

// CallOption tunes how a Client delivers calls. Options attach to Entity
// handles via Entity.With and apply to every Call/Submit made through the
// derived handle.
type CallOption func(*callOptions)

// callOptions is the resolved option set carried by an Entity handle.
type callOptions struct {
	kind      string
	timeout   time.Duration
	patience  time.Duration
	requestID string
}

func defaultCallOptions() callOptions {
	return callOptions{timeout: DefaultTimeout, patience: DefaultPatience}
}

// apply returns a copy of o with opts folded in.
func (o callOptions) apply(opts []CallOption) callOptions {
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithKind tags requests made through the handle for per-operation
// metrics (e.g. "read", "update", "transfer"); the runtimes ignore it.
func WithKind(kind string) CallOption {
	return func(o *callOptions) { o.kind = kind }
}

// WithTimeout bounds how long a Call or Future.Wait waits for the
// response: virtual time on simulations, wall clock on the Live runtime
// (the synchronous Local runtime always answers immediately). d <= 0
// restores DefaultTimeout.
func WithTimeout(d time.Duration) CallOption {
	return func(o *callOptions) {
		if d <= 0 {
			d = DefaultTimeout
		}
		o.timeout = d
	}
}

// WithRequestID pins the request id of the next Call or Submit made
// through the handle instead of letting the runtime mint one. On the
// Live runtime with a response journal (LiveConfig.JournalPath), stable
// ids are the client half of the exactly-once protocol: a retried id
// whose outcome is journaled — even by a previous process — is answered
// from the journal without re-execution, and an id currently in flight
// returns the same future. Use a fresh id per logical request; other
// runtimes currently mint ids internally and ignore this option.
func WithRequestID(id string) CallOption {
	return func(o *callOptions) { o.requestID = id }
}

// WithPatience sets the virtual-time step a Simulation advances between
// response checks: smaller values observe responses with finer latency
// resolution, larger values batch more simulated work per check. Local
// and Live ignore it. d <= 0 restores DefaultPatience.
func WithPatience(d time.Duration) CallOption {
	return func(o *callOptions) {
		if d <= 0 {
			d = DefaultPatience
		}
		o.patience = d
	}
}
