// TPC-C subset: the NewOrder and Payment transactions the paper reports
// StateFlow can "partly" execute (§3), running on the transactional
// StateFlow runtime and driven through the Client interface: submissions
// return Futures, preloading and the final audit go through Admin.
//
// NewOrder is the most demanding shape the compiler handles: a
// transactional method whose body loops over a list of entity references
// (a split for-loop of remote calls), reads warehouse tax, and charges the
// customer — all atomically under the Aria-style protocol. The example
// runs a mixed NewOrder/Payment stream and then audits the money
// invariants.
//
// Run with: go run ./examples/tpcc
package main

import (
	"fmt"
	"log"
	"time"

	"statefulentities.dev/stateflow"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/workload/tpcc"
)

func main() {
	prog, err := stateflow.Compile(tpcc.Program())
	if err != nil {
		log.Fatal(err)
	}
	no := prog.MethodOf("District", "new_order")
	fmt.Printf("District.new_order compiles to %d blocks / %d transitions (split loop over stock entities)\n\n",
		len(no.Blocks), len(no.SM.Transitions))

	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{
		Backend: stateflow.BackendStateFlow, Workers: 5, Epoch: 5 * time.Millisecond,
	})
	client := simu.Client()
	admin := client.Admin()
	scale := tpcc.Scale{Warehouses: 2, DistrictsPerWH: 2, CustomersPerDist: 10, Items: 50}
	err = scale.Load(func(class string, args []interp.Value) error {
		return admin.Preload(class, args...)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Drive a deterministic transaction mix; every submission returns a
	// Future that resolves as virtual time advances.
	gen := tpcc.NewGenerator(scale, 42, "txn-")
	const n = 80
	type pending struct {
		kind string
		fut  *stateflow.Future
		amt  int64
	}
	var txns []pending
	for i := 0; i < n; i++ {
		req := gen.Next(i)
		var amt int64
		if req.Method == "payment" {
			amt = req.Args[2].I
		}
		txns = append(txns, pending{
			kind: req.Kind,
			fut: client.Entity(req.Target.Class, req.Target.Key).
				With(stateflow.WithKind(req.Kind)).
				Submit(req.Method, req.Args...),
			amt: amt,
		})
		simu.Run(4 * time.Millisecond) // ~250 txn/s arrival rate
	}
	simu.Run(20 * time.Second)

	orders, payments := 0, 0
	var paid int64
	for _, t := range txns {
		res, err := t.fut.Wait()
		if err != nil {
			log.Fatal(err)
		}
		if res.Err != "" {
			log.Fatalf("%s %s: %s", t.kind, t.fut.Target(), res.Err)
		}
		if t.kind == "new_order" {
			if res.Value.I > 0 {
				orders++
			}
		} else {
			payments++
			paid += t.amt
		}
	}
	c := simu.StateFlow().Coordinator()
	fmt.Printf("ran %d transactions: %d new orders, %d payments (%d Aria aborts retried, %d epochs)\n",
		n, orders, payments, c.Aborts, c.EpochsClosed)

	// Audit: warehouse, district and customer YTD totals must all equal
	// the sum of committed payments (atomicity across three entities).
	var wytd, dytd, cytd int64
	for w := 0; w < scale.Warehouses; w++ {
		st, _ := admin.Inspect("Warehouse", tpcc.WarehouseKey(w))
		wytd += st["ytd"].I
		for d := 0; d < scale.DistrictsPerWH; d++ {
			ds, _ := admin.Inspect("District", tpcc.DistrictKey(w, d))
			dytd += ds["ytd"].I
			for cu := 0; cu < scale.CustomersPerDist; cu++ {
				cs, _ := admin.Inspect("Customer", tpcc.CustomerKey(w, d, cu))
				cytd += cs["ytd_payment"].I
			}
		}
	}
	fmt.Printf("payment audit: injected=%d warehouse_ytd=%d district_ytd=%d customer_ytd=%d\n",
		paid, wytd, dytd, cytd)
	if wytd != paid || dytd != paid || cytd != paid {
		log.Fatal("ATOMICITY VIOLATION: YTD totals diverge")
	}
	fmt.Println("invariant holds: every payment hit all three entities exactly once")
}
