// Shopping cart: a multi-entity e-commerce checkout — the class of cloud
// application the paper's introduction motivates — executed on BOTH
// simulated distributed runtimes from a single compiled program (§3: the
// runtime choice is independent of the application layer). The racing
// checkouts are fired through Entity.Submit, whose Futures carry the full
// outcome (value, error, retries, latency) of each request.
//
// A checkout walks the cart's items (a split for-loop of remote calls),
// reserves stock on every Product entity, charges the Wallet, and
// compensates reservations if anything fails. On StateFlow the whole
// checkout is one Aria transaction; on the StateFun-model baseline the
// same chain runs without isolation, so concurrent checkouts can oversell
// a product — which this example demonstrates.
//
// Run with: go run ./examples/shoppingcart
package main

import (
	"fmt"
	"log"
	"time"

	"statefulentities.dev/stateflow"
)

const source = `
@entity
class Product:
    def __init__(self, sku: str, price: int, stock: int):
        self.sku: str = sku
        self.price: int = price
        self.stock: int = stock

    def __key__(self) -> str:
        return self.sku

    def get_price(self) -> int:
        return self.price

    def reserve(self, qty: int) -> bool:
        if self.stock < qty:
            return False
        self.stock -= qty
        return True

    def release(self, qty: int) -> bool:
        self.stock += qty
        return True

    def remaining(self) -> int:
        return self.stock

@entity
class Wallet:
    def __init__(self, owner: str, funds: int):
        self.owner: str = owner
        self.funds: int = funds

    def __key__(self) -> str:
        return self.owner

    def charge(self, amount: int) -> bool:
        if self.funds < amount:
            return False
        self.funds -= amount
        return True

@entity
class Cart:
    def __init__(self, cart_id: str, owner: str):
        self.cart_id: str = cart_id
        self.owner: str = owner
        self.skus: list[str] = []
        self.qtys: list[int] = []
        self.checked_out: bool = False

    def __key__(self) -> str:
        return self.cart_id

    def add(self, sku: str, qty: int) -> int:
        self.skus.append(sku)
        self.qtys.append(qty)
        return len(self.skus)

    @transactional
    def checkout(self, products: list[Product], wallet: Wallet) -> bool:
        if self.checked_out:
            return False
        total: int = 0
        reserved: int = 0
        i: int = 0
        ok: bool = True
        for p in products:
            qty: int = self.qtys[i]
            got: bool = p.reserve(qty)
            if not got:
                ok = False
                break
            total += p.get_price() * qty
            reserved += 1
            i += 1
        if ok:
            paid: bool = wallet.charge(total)
            if not paid:
                ok = False
        if not ok:
            j: int = 0
            for p in products:
                if j >= reserved:
                    break
                p.release(self.qtys[j])
                j += 1
            return False
        self.checked_out = True
        return True
`

func main() {
	prog, err := stateflow.Compile(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- compiled checkout dataflow ---")
	fmt.Printf("Cart.checkout splits into %d blocks, %d state-machine transitions\n\n",
		len(prog.MethodOf("Cart", "checkout").Blocks),
		len(prog.MethodOf("Cart", "checkout").SM.Transitions))

	fmt.Println("--- racing two checkouts for the last GPUs, 10 trials per runtime ---")
	for _, backend := range []stateflow.Backend{stateflow.BackendStateFlow, stateflow.BackendStateFun} {
		oversold := 0
		for seed := int64(1); seed <= 10; seed++ {
			if runScenario(prog, backend, seed) {
				oversold++
			}
		}
		verdict := "every trial consistent (transactional isolation)"
		if oversold > 0 {
			verdict = fmt.Sprintf("OVERSOLD in %d/10 trials (no transactions, no locking — §3)", oversold)
		}
		fmt.Printf("%-10s %s\n", backend, verdict)
	}
}

// runScenario: two customers race to check out carts holding the last
// units of the same product. It reports whether the product oversold.
func runScenario(prog *stateflow.Program, backend stateflow.Backend, seed int64) bool {
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{
		Backend: backend, Epoch: 20 * time.Millisecond, Seed: seed,
	})
	client := simu.Client()
	admin := client.Admin()
	must(admin.Preload("Product", stateflow.Str("gpu"), stateflow.Int(900), stateflow.Int(3)))
	must(admin.Preload("Product", stateflow.Str("cable"), stateflow.Int(10), stateflow.Int(100)))
	must(admin.Preload("Wallet", stateflow.Str("alice"), stateflow.Int(5000)))
	must(admin.Preload("Wallet", stateflow.Str("bob"), stateflow.Int(5000)))
	must(admin.Preload("Cart", stateflow.Str("cart-a"), stateflow.Str("alice")))
	must(admin.Preload("Cart", stateflow.Str("cart-b"), stateflow.Str("bob")))

	// Both carts want 2 GPUs; only 3 exist — at most one checkout may win.
	for _, c := range []string{"cart-a", "cart-b"} {
		cart := client.Entity("Cart", c)
		mustCall(cart, "add", stateflow.Str("gpu"), stateflow.Int(2))
		mustCall(cart, "add", stateflow.Str("cable"), stateflow.Int(1))
	}

	products := stateflow.List(stateflow.Ref("Product", "gpu"), stateflow.Ref("Product", "cable"))
	// Fire both checkouts at the same instant so they genuinely race; the
	// Futures resolve as virtual time advances.
	futA := client.Entity("Cart", "cart-a").Submit("checkout", products, stateflow.Ref("Wallet", "alice"))
	futB := client.Entity("Cart", "cart-b").Submit("checkout", products, stateflow.Ref("Wallet", "bob"))
	simu.Run(10 * time.Second)

	st, _ := admin.Inspect("Product", "gpu")
	wins := 0
	for _, fut := range []*stateflow.Future{futA, futB} {
		res, err := fut.Wait()
		if err != nil {
			log.Fatal(err)
		}
		if res.Err != "" {
			log.Fatalf("checkout %s: %s", fut.Target(), res.Err)
		}
		if res.Value.B {
			wins++
		}
	}
	// Only 3 GPUs exist and each winner takes 2: two winners or negative
	// stock means the product oversold.
	return st["stock"].I < 0 || wins == 2
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustCall(e *stateflow.Entity, method string, args ...stateflow.Value) stateflow.Value {
	res, err := e.Call(method, args...)
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != "" {
		log.Fatalf("%s.%s: %s", e.Class(), method, res.Err)
	}
	return res.Value
}
