// Banking: YCSB+T-style atomic transfers on the simulated StateFlow
// runtime, with an injected worker crash — driven entirely through the
// portable Client interface.
//
// The example demonstrates the paper's §3 fault-tolerance story: the
// runtime takes aligned snapshots at epoch boundaries, keeps a replayable
// request log, and — when a worker dies mid-run — the failure detector
// rolls every worker back to the last snapshot and replays the source
// suffix. Afterwards the books balance exactly: every committed transfer
// is reflected exactly once, and no client response was duplicated.
//
// Run with: go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"time"

	"statefulentities.dev/stateflow"
)

const source = `
@entity
class Account:
    def __init__(self, owner: str, balance: int):
        self.owner: str = owner
        self.balance: int = balance

    def __key__(self) -> str:
        return self.owner

    def read(self) -> int:
        return self.balance

    def deposit(self, amount: int) -> bool:
        self.balance += amount
        return True

    @transactional
    def transfer(self, amount: int, to: Account) -> bool:
        if self.balance < amount:
            return False
        self.balance -= amount
        to.deposit(amount)
        return True
`

func main() {
	prog, err := stateflow.Compile(source)
	if err != nil {
		log.Fatal(err)
	}
	simu := stateflow.NewSimulation(prog, stateflow.SimConfig{
		Backend:       stateflow.BackendStateFlow,
		Workers:       5,
		Epoch:         5 * time.Millisecond,
		SnapshotEvery: 3,
	})
	// The Client surface is portable: everything below except the crash
	// injection would run unchanged on a Local or Live deployment.
	client := simu.Client()
	admin := client.Admin()
	names := []string{"alice", "bob", "carol", "dave"}
	for _, n := range names {
		if err := admin.Preload("Account", stateflow.Str(n), stateflow.Int(100)); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("--- phase 1: transfers before the crash ---")
	for i := 0; i < 10; i++ {
		from, to := names[i%4], names[(i+1)%4]
		res, err := client.Entity("Account", from).Call("transfer",
			stateflow.Int(5), stateflow.Ref("Account", to))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("transfer %s -> %s: %v (latency %s, retries %d)\n",
			from, to, res.Value, res.Latency.Round(time.Millisecond), res.Retries)
	}
	printBalances(admin, names)

	// Crash the worker that owns alice's partition (simulation-only
	// control: fault injection is not part of the Client surface).
	sf := simu.StateFlow()
	victim := sf.WorkerIDs()[sf.OwnerIndex(stateflow.EntityRef{Class: "Account", Key: "alice"})]
	fmt.Printf("\n--- phase 2: crashing %s mid-run ---\n", victim)
	simu.Cluster.Crash(victim)

	// This transfer's chain stalls on the dead worker; the failure
	// detector fires, the system rolls back to the last snapshot, replays
	// the request log, and the transfer completes after recovery.
	res, err := client.Entity("Account", "alice").Call("transfer",
		stateflow.Int(7), stateflow.Ref("Account", "carol"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transfer alice -> carol during crash: %v (latency %s)\n",
		res.Value, res.Latency.Round(time.Millisecond))
	fmt.Printf("recoveries: %d, snapshots: %d\n",
		sf.Coordinator().Recoveries, sf.Snapshots.Count())

	fmt.Println("\n--- phase 3: after recovery ---")
	printBalances(admin, names)
	var total int64
	for _, n := range admin.Keys("Account") {
		st, _ := admin.Inspect("Account", n)
		total += st["balance"].I
	}
	if total != int64(len(names))*100 {
		log.Fatalf("money not conserved: %d", total)
	}
	fmt.Printf("invariant holds: total balance = %d (exactly-once effects)\n", total)
}

func printBalances(admin stateflow.Admin, names []string) {
	for _, n := range names {
		st, ok := admin.Inspect("Account", n)
		if !ok {
			log.Fatalf("account %s missing", n)
		}
		fmt.Printf("  %s: %s\n", n, st["balance"])
	}
}
