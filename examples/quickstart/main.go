// Quickstart: the paper's Figure 1 end to end.
//
// It compiles the User/Item stateful-entity program, prints what the
// compiler produced (operators, split functions, state machine), and runs
// buy_item scenarios through the portable Client interface on the Local
// runtime (§3). Because the scenarios only touch stateflow.Client, the
// same code would run unchanged on a simulated distributed deployment
// (Simulation.Client()) or the concurrent Live runtime (NewLiveClient) —
// see the banking and shoppingcart examples.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"statefulentities.dev/stateflow"
)

// source is Figure 1 of the paper, in the DSL.
const source = `
@entity
class Item:
    def __init__(self, item_id: str, price: int):
        self.item_id: str = item_id
        self.stock: int = 0
        self.price: int = price

    def __key__(self) -> str:
        return self.item_id

    def get_price(self) -> int:
        return self.price

    def update_stock(self, amount: int) -> bool:
        self.stock += amount
        return self.stock >= 0

@entity
class User:
    def __init__(self, username: str):
        self.username: str = username
        self.balance: int = 100

    def __key__(self) -> str:
        return self.username

    @transactional
    def buy_item(self, amount: int, item: Item) -> bool:
        total_price: int = amount * item.get_price()
        if self.balance < total_price:
            return False
        available: bool = item.update_stock(0 - amount)
        if not available:
            item.update_stock(amount)
            return False
        self.balance -= total_price
        return True
`

func main() {
	// 1. Compile: static analysis + function splitting + state machines.
	prog, err := stateflow.Compile(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- compiled dataflow ---")
	fmt.Print(prog.Report())
	fmt.Println("--- split functions of User.buy_item (cf. §2.4) ---")
	fmt.Print(prog.MethodOf("User", "buy_item").Listing())

	// 2. Execute through the Client interface, here backed by the Local
	// runtime (in-process state, §3).
	client := stateflow.NewLocalClient(prog)
	apple := must(client.Create("Item", stateflow.Str("apple"), stateflow.Int(5)))
	alice := must(client.Create("User", stateflow.Str("alice")))
	mustCall(apple, "update_stock", stateflow.Int(10))

	fmt.Println("\n--- executing buy_item scenarios ---")
	// Success: 3 apples at 5 each.
	ok := mustCall(alice, "buy_item", stateflow.Int(3), apple.RefValue())
	fmt.Printf("alice buys 3 apples: %v\n", ok)

	// Failure on funds: 100 apples cost 500 > balance.
	ok = mustCall(alice, "buy_item", stateflow.Int(100), apple.RefValue())
	fmt.Printf("alice buys 100 apples: %v (insufficient balance)\n", ok)

	// Failure on stock: compensation puts the stock back (the paper's
	// refund path).
	ok = mustCall(alice, "buy_item", stateflow.Int(9), apple.RefValue())
	fmt.Printf("alice buys 9 apples: %v (out of stock, compensated)\n", ok)

	// 3. Inspect committed state through the Admin surface.
	admin := client.Admin()
	user, _ := admin.Inspect("User", "alice")
	item, _ := admin.Inspect("Item", "apple")
	fmt.Printf("\nfinal state: alice balance=%s, apple stock=%s\n",
		user["balance"], item["stock"])
}

func must(e *stateflow.Entity, err error) *stateflow.Entity {
	if err != nil {
		log.Fatal(err)
	}
	return e
}

func mustCall(e *stateflow.Entity, method string, args ...stateflow.Value) stateflow.Value {
	res, err := e.Call(method, args...)
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != "" {
		log.Fatalf("%s.%s: %s", e.Class(), method, res.Err)
	}
	return res.Value
}
