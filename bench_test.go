// Benchmarks regenerating the paper's evaluation (§4). Each figure/table
// has a bench family; latency results are attached as custom metrics
// (p50-ms, p99-ms, ...) so `go test -bench` output carries the same
// numbers cmd/stateflow-bench prints. Durations are shortened relative to
// the CLI harness to keep bench runs quick; shapes are unaffected.
//
//	Figure 3  -> BenchmarkFigure3/...
//	Figure 4  -> BenchmarkFigure4/...
//	§4 system-overhead table -> BenchmarkOverhead/...
//	§2.4 compile-time splitting -> BenchmarkCompile/...
package stateflow_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"statefulentities.dev/stateflow"
	"statefulentities.dev/stateflow/internal/bench"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/txn/aria"
	"statefulentities.dev/stateflow/internal/workload/tpcc"
	"statefulentities.dev/stateflow/internal/workload/ycsb"
)

const figure1 = `
@entity
class Item:
    def __init__(self, item_id: str, price: int):
        self.item_id: str = item_id
        self.stock: int = 0
        self.price: int = price

    def __key__(self) -> str:
        return self.item_id

    def get_price(self) -> int:
        return self.price

    def update_stock(self, amount: int) -> bool:
        self.stock += amount
        return self.stock >= 0

@entity
class User:
    def __init__(self, username: str):
        self.username: str = username
        self.balance: int = 100

    def __key__(self) -> str:
        return self.username

    @transactional
    def buy_item(self, amount: int, item: Item) -> bool:
        total_price: int = amount * item.get_price()
        if self.balance < total_price:
            return False
        available: bool = item.update_stock(0 - amount)
        if not available:
            item.update_stock(amount)
            return False
        self.balance -= total_price
        return True
`

func benchOptions() bench.Options {
	opt := bench.DefaultOptions()
	opt.Duration = 10 * time.Second // virtual
	opt.WarmUp = 1 * time.Second
	return opt
}

// BenchmarkFigure3 reproduces Figure 3: p99 latency per workload and key
// distribution at 100 RPS, per system.
func BenchmarkFigure3(b *testing.B) {
	for _, wl := range []string{"A", "B", "T"} {
		for _, dist := range []string{"zipfian", "uniform"} {
			for _, system := range []string{"statefun", "stateflow"} {
				if system == "statefun" && wl == "T" {
					continue // no transaction support (§4)
				}
				name := fmt.Sprintf("%s-%s/%s", wl, dist, system)
				b.Run(name, func(b *testing.B) {
					opt := benchOptions()
					var p99, mean time.Duration
					for i := 0; i < b.N; i++ {
						opt.Seed = int64(i + 1)
						pts, err := bench.RunPointFor(system, wl, dist, 100, opt)
						if err != nil {
							b.Fatal(err)
						}
						p99, mean = pts.P99, pts.Mean
					}
					b.ReportMetric(float64(p99)/1e6, "p99-ms")
					b.ReportMetric(float64(mean)/1e6, "mean-ms")
				})
			}
		}
	}
}

// BenchmarkFigure4 reproduces Figure 4: p50/p99 latency versus input
// throughput on workload M.
func BenchmarkFigure4(b *testing.B) {
	for _, system := range []string{"stateflow", "statefun"} {
		for _, rate := range []float64{1000, 2000, 3000, 4000} {
			b.Run(fmt.Sprintf("%s/%drps", system, int(rate)), func(b *testing.B) {
				opt := benchOptions()
				var p50, p99 time.Duration
				for i := 0; i < b.N; i++ {
					opt.Seed = int64(i + 1)
					pt, err := bench.RunPointFor(system, "M", "uniform", rate, opt)
					if err != nil {
						b.Fatal(err)
					}
					p50, p99 = pt.P50, pt.P99
				}
				b.ReportMetric(float64(p50)/1e6, "p50-ms")
				b.ReportMetric(float64(p99)/1e6, "p99-ms")
			})
		}
	}
}

// BenchmarkOverhead reproduces the §4 system-overhead experiment: the
// share of total runtime attributable to function-splitting
// instrumentation, per state size. The paper's claim: under 1%.
func BenchmarkOverhead(b *testing.B) {
	for _, kb := range []int{50, 100, 150, 200} {
		b.Run(fmt.Sprintf("state-%dKB", kb), func(b *testing.B) {
			opt := benchOptions()
			opt.Duration = 5 * time.Second
			var frac float64
			for i := 0; i < b.N; i++ {
				opt.Seed = int64(i + 1)
				rows, err := bench.RunOverhead(opt, []int{kb})
				if err != nil {
					b.Fatal(err)
				}
				frac = rows[0].SplitFraction
			}
			b.ReportMetric(frac*100, "split-%")
		})
	}
}

// BenchmarkAblationEpoch sweeps the Aria batch interval: small epochs cost
// coordination, large epochs batch conflicting transactions together (§5's
// epoch-interval discussion).
func BenchmarkAblationEpoch(b *testing.B) {
	for _, epoch := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		b.Run(epoch.String(), func(b *testing.B) {
			opt := benchOptions()
			var row bench.AblationRow
			for i := 0; i < b.N; i++ {
				opt.Seed = int64(i + 1)
				rows, err := bench.RunEpochAblation(opt, []time.Duration{epoch})
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(float64(row.P99)/1e6, "p99-ms")
			b.ReportMetric(float64(row.Aborts), "aborts")
		})
	}
}

// BenchmarkAblationWorkers sweeps the StateFlow worker count under load.
func BenchmarkAblationWorkers(b *testing.B) {
	for _, w := range []int{2, 5, 10} {
		b.Run(fmt.Sprintf("%dworkers", w), func(b *testing.B) {
			opt := benchOptions()
			var row bench.AblationRow
			for i := 0; i < b.N; i++ {
				opt.Seed = int64(i + 1)
				rows, err := bench.RunWorkerAblation(opt, []int{w})
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(float64(row.P99)/1e6, "p99-ms")
		})
	}
}

// BenchmarkCompile measures the compiler pipeline (§2.4 splitting is
// compile-time work; the runtime overhead is measured by
// BenchmarkOverhead).
func BenchmarkCompile(b *testing.B) {
	cases := map[string]string{
		"figure1": figure1,
		"ycsb":    ycsb.Program(),
		"tpcc":    tpcc.Program(),
	}
	for name, src := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stateflow.Compile(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLocalRuntime measures raw dataflow execution on the Local
// runtime: a simple single-entity call versus the split multi-entity
// buy_item chain.
func BenchmarkLocalRuntime(b *testing.B) {
	prog := stateflow.MustCompile(figure1)
	newRT := func(b *testing.B) *stateflow.Local {
		rt := stateflow.NewLocal(prog)
		if _, err := rt.Create("Item", stateflow.Str("apple"), stateflow.Int(1)); err != nil {
			b.Fatal(err)
		}
		if _, err := rt.Create("User", stateflow.Str("alice")); err != nil {
			b.Fatal(err)
		}
		if _, err := rt.Invoke("Item", "apple", "update_stock", stateflow.Int(1<<40)); err != nil {
			b.Fatal(err)
		}
		return rt
	}
	b.Run("simple-get_price", func(b *testing.B) {
		rt := newRT(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.Invoke("Item", "apple", "get_price"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("split-buy_item", func(b *testing.B) {
		rt := newRT(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := rt.Invoke("User", "alice", "buy_item",
				stateflow.Int(0), stateflow.Ref("Item", "apple"))
			if err != nil || res.Err != "" {
				b.Fatalf("%v %s", err, res.Err)
			}
		}
	})
}

// BenchmarkStateCodec measures the state serialization the runtimes charge
// their cost models for.
func BenchmarkStateCodec(b *testing.B) {
	for _, kb := range []int{1, 50, 200} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			st := interp.MapState{
				"owner":   interp.StrV("user000001"),
				"balance": interp.IntV(100),
				"payload": interp.StrV(ycsb.Payload(kb * 1024)),
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := interp.NewEncoder()
				e.State(st)
				if _, err := interp.NewDecoder(e.Bytes()).State(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkZipfian measures the YCSB key chooser.
func BenchmarkZipfian(b *testing.B) {
	z := ycsb.NewZipfian(1000, 0.99, true)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next(r)
	}
}

// BenchmarkAriaValidate measures batch validation at various batch sizes.
func BenchmarkAriaValidate(b *testing.B) {
	for _, size := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			order := make([]aria.TID, size)
			sets := map[aria.TID]*aria.RWSet{}
			for i := range order {
				tid := aria.TID(i + 1)
				order[i] = tid
				rw := aria.NewRWSet()
				rw.Read(aria.ResKey{Class: 0, Key: fmt.Sprint(i % 64)}, aria.SlotBit(i%4))
				rw.Write(aria.ResKey{Class: 0, Key: fmt.Sprint((i + 1) % 64)}, aria.SlotBit(i%4))
				sets[tid] = rw
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = aria.Validate(order, sets)
			}
		})
	}
}
