package stateflow

import (
	"context"
	"fmt"
	"time"

	"statefulentities.dev/stateflow/internal/runtime/live"
	"statefulentities.dev/stateflow/internal/runtime/local"
)

// Result is the full outcome of one invocation, portable across runtimes.
type Result struct {
	Value Value
	// Err is the application-level failure (empty on success).
	Err string
	// Retries is the abort/retry count on transactional runtimes.
	Retries int
	// Latency is the request's end-to-end latency: virtual time on
	// simulations, wall clock on Live, zero on the synchronous Local
	// runtime.
	Latency time.Duration
	// Hops counts operator-to-operator event transfers (Local runtime
	// only; zero elsewhere).
	Hops int
}

// Client is the one portable caller surface over every runtime: stateful
// entities look like ordinary objects to a caller outside the system
// (§2.3), regardless of whether the system is the synchronous Local
// runtime, a simulated distributed deployment, or the concurrent Live
// runtime. Workloads, examples and benchmarks written against Client run
// unchanged on any backend.
type Client interface {
	// Entity returns a typed handle on one stateful-entity instance.
	Entity(class, key string) *Entity
	// Create instantiates an entity through the dataflow (its __init__
	// runs as a root invocation) and returns its handle.
	Create(class string, args ...Value) (*Entity, error)
	// Admin exposes the out-of-band surface: state introspection and
	// dataset preloading.
	Admin() Admin
	// Close releases the runtime's resources. It is a no-op for Local and
	// Simulation; for Live it stops the workers and fails every pending
	// future with a "runtime closed" error.
	Close() error
}

// Admin is the out-of-band management surface shared by all runtimes.
type Admin interface {
	// Inspect reads a copy of an entity's committed attributes.
	Inspect(class, key string) (map[string]Value, bool)
	// Keys lists the keys of every entity of a class, sorted.
	Keys(class string) []string
	// Preload loads an entity with the state __init__ would produce for
	// the given args. On simulations it installs state directly on the
	// owning worker and must precede the first call; on Local and Live it
	// is always available.
	Preload(class string, args ...Value) error
}

// caller is the backend hook behind Entity handles.
type caller interface {
	call(ref EntityRef, method string, args []Value, o callOptions) (Result, error)
	submit(ref EntityRef, method string, args []Value, o callOptions) *Future
}

// Entity is a typed handle on one stateful-entity instance. Handles are
// cheap, stateless values: create them per call or keep them around.
type Entity struct {
	c    caller
	ref  EntityRef
	opts callOptions
}

// Ref returns the entity's (class, key) reference.
func (e *Entity) Ref() EntityRef { return e.ref }

// Class returns the entity's class name.
func (e *Entity) Class() string { return e.ref.Class }

// Key returns the entity's key.
func (e *Entity) Key() string { return e.ref.Key }

// RefValue returns the entity's reference as a DSL value, for passing the
// entity as a call argument.
func (e *Entity) RefValue() Value { return Ref(e.ref.Class, e.ref.Key) }

// With returns a derived handle whose calls use the given options.
func (e *Entity) With(opts ...CallOption) *Entity {
	d := *e
	d.opts = e.opts.apply(opts)
	return &d
}

// Call invokes a method and waits for its full outcome. The error is
// transport-level (timeout, shutdown, internal failure); application
// failures travel in Result.Err.
func (e *Entity) Call(method string, args ...Value) (Result, error) {
	return e.c.call(e.ref, method, args, e.opts)
}

// Submit invokes a method without waiting and returns its Future. Use it
// to race concurrent requests against each other.
func (e *Entity) Submit(method string, args ...Value) *Future {
	return e.c.submit(e.ref, method, args, e.opts)
}

// newEntity builds a handle with default options.
func newEntity(c caller, class, key string) *Entity {
	return &Entity{c: c, ref: EntityRef{Class: class, Key: key}, opts: defaultCallOptions()}
}

// createVia runs __init__ through any caller and converts an application
// failure into a transport error (a handle on a failed construction would
// be useless).
func createVia(c caller, keyFor func(class string, args []Value) (string, error), class string, args []Value) (*Entity, error) {
	key, err := keyFor(class, args)
	if err != nil {
		return nil, err
	}
	e := newEntity(c, class, key)
	res, err := e.Call("__init__", args...)
	if err != nil {
		return nil, err
	}
	if res.Err != "" {
		return nil, fmt.Errorf("%s", res.Err)
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Local client

// NewLocalClient builds a Local runtime for a compiled program and returns
// its Client surface.
func NewLocalClient(prog *Program) Client { return LocalClient(local.New(prog)) }

// LocalClient adapts an existing Local runtime to the Client interface.
func LocalClient(rt *Local) Client { return &localClient{rt: rt} }

type localClient struct{ rt *local.Runtime }

// Entity implements Client.
func (c *localClient) Entity(class, key string) *Entity { return newEntity(c, class, key) }

// Create implements Client.
func (c *localClient) Create(class string, args ...Value) (*Entity, error) {
	ref, err := c.rt.Create(class, args...)
	if err != nil {
		return nil, err
	}
	return newEntity(c, ref.Class, ref.Key), nil
}

// Admin implements Client.
func (c *localClient) Admin() Admin { return c }

// Close implements Client (no-op: the Local runtime holds no resources).
func (c *localClient) Close() error { return nil }

func (c *localClient) call(ref EntityRef, method string, args []Value, _ callOptions) (Result, error) {
	res, err := c.rt.Invoke(ref.Class, ref.Key, method, args...)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: res.Value, Err: res.Err, Hops: res.Hops}, nil
}

func (c *localClient) submit(ref EntityRef, method string, args []Value, o callOptions) *Future {
	res, err := c.call(ref, method, args, o)
	return completedFuture(ref, method, res, err)
}

// Inspect implements Admin.
func (c *localClient) Inspect(class, key string) (map[string]Value, bool) {
	st, ok := c.rt.State(class, key)
	return st, ok
}

// Keys implements Admin.
func (c *localClient) Keys(class string) []string { return c.rt.Keys(class) }

// Preload implements Admin.
func (c *localClient) Preload(class string, args ...Value) error {
	return c.rt.PreloadEntity(class, args...)
}

// ---------------------------------------------------------------------------
// Live client

// Live is the concurrent in-process runtime: worker goroutines own hash
// partitions of entity state and exchange dataflow events over channels.
type Live = live.Runtime

// LiveConfig parameterizes the Live runtime.
type LiveConfig struct {
	// Workers is the number of partition-owning goroutines (default 4).
	Workers int
	// MailboxDepth is the per-worker channel capacity (default 1024).
	MailboxDepth int
	// JournalPath enables the durable response journal: completed
	// outcomes are appended to this file (fsynced before the caller sees
	// them) and a runtime reopened on the same path re-serves them for
	// retried request ids (see WithRequestID) instead of re-executing.
	// Torn tails from a crash mid-append are detected and discarded.
	JournalPath string
	// JournalCheckpointEvery compacts the journal after this many
	// appended outcomes, bounding the file (default 1024; negative
	// disables compaction).
	JournalCheckpointEvery int
	// JournalRetention prunes journaled outcomes older than this at each
	// compaction: a retry arriving after the window re-executes instead
	// of replaying. Zero keeps every outcome forever.
	JournalRetention time.Duration
	// MetricsAddr, when non-empty, serves the runtime's metric registry
	// over HTTP on this address: Prometheus text exposition on /metrics,
	// expvar JSON on /debug/vars. ":0" picks a free port — read it back
	// with Live.MetricsAddr. The registry (Live.Metrics) is always live;
	// this only adds the HTTP listener.
	MetricsAddr string
}

// NewLive starts a Live runtime for a compiled program. Close it when
// done. It panics if the configured journal cannot be opened; use
// OpenLive to handle that error (without a JournalPath it cannot fail).
func NewLive(prog *Program, cfg LiveConfig) *Live {
	rt, err := OpenLive(prog, cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// OpenLive starts a Live runtime, recovering the response journal when
// one is configured.
func OpenLive(prog *Program, cfg LiveConfig) (*Live, error) {
	return live.Open(prog, live.Config{
		Workers: cfg.Workers, MailboxDepth: cfg.MailboxDepth, JournalPath: cfg.JournalPath,
		JournalCheckpointEvery: cfg.JournalCheckpointEvery, JournalRetention: cfg.JournalRetention,
		MetricsAddr: cfg.MetricsAddr,
	})
}

// NewLiveClient starts a Live runtime and returns its Client surface;
// Close stops the runtime. Like NewLive it panics on a journal open
// failure; use OpenLiveClient to handle it.
func NewLiveClient(prog *Program, cfg LiveConfig) Client { return LiveClient(NewLive(prog, cfg)) }

// OpenLiveClient starts a Live runtime with error handling for the
// journal and returns its Client surface.
func OpenLiveClient(prog *Program, cfg LiveConfig) (Client, error) {
	rt, err := OpenLive(prog, cfg)
	if err != nil {
		return nil, err
	}
	return LiveClient(rt), nil
}

// LiveClient adapts an existing Live runtime to the Client interface.
func LiveClient(rt *Live) Client { return &liveClient{rt: rt} }

type liveClient struct{ rt *live.Runtime }

// Entity implements Client.
func (c *liveClient) Entity(class, key string) *Entity { return newEntity(c, class, key) }

// Create implements Client.
func (c *liveClient) Create(class string, args ...Value) (*Entity, error) {
	ref, err := c.rt.Create(class, args...)
	if err != nil {
		return nil, err
	}
	return newEntity(c, ref.Class, ref.Key), nil
}

// Admin implements Client.
func (c *liveClient) Admin() Admin { return c }

// Close implements Client: stops the workers and fails pending futures.
func (c *liveClient) Close() error {
	c.rt.Close()
	return nil
}

func (c *liveClient) call(ref EntityRef, method string, args []Value, o callOptions) (Result, error) {
	return c.submit(ref, method, args, o).Wait()
}

func (c *liveClient) submit(ref EntityRef, method string, args []Value, o callOptions) *Future {
	start := time.Now()
	p := c.rt.SubmitWithID(o.requestID, ref.Class, ref.Key, method, args...)
	poll := func() (Result, error, bool) {
		if !p.Done() {
			return Result{}, nil, false
		}
		res, err := liveOutcome(p, start, nil)
		return res, err, true
	}
	wait := func() (Result, error) {
		ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
		defer cancel()
		return liveOutcome(p, start, ctx)
	}
	return newFuture(ref, method, poll, wait)
}

// liveOutcome folds a Pending's completion into a Result. With a nil
// context the Pending must already be done. Latency runs from submission
// to the request's completion stamp — not to whenever the caller got
// around to collecting the future.
func liveOutcome(p *live.Pending, start time.Time, ctx context.Context) (Result, error) {
	var v Value
	var errStr string
	var fail error
	if ctx == nil {
		v, errStr, fail = p.Wait()
	} else {
		v, errStr, fail = p.WaitContext(ctx)
	}
	if fail != nil {
		return Result{}, fmt.Errorf("stateflow: request %s: %w", p.Req(), fail)
	}
	return Result{Value: v, Err: errStr, Latency: p.DoneAt().Sub(start)}, nil
}

// Inspect implements Admin.
func (c *liveClient) Inspect(class, key string) (map[string]Value, bool) {
	st, ok := c.rt.EntityState(class, key)
	return st, ok
}

// Keys implements Admin.
func (c *liveClient) Keys(class string) []string { return c.rt.Keys(class) }

// Preload implements Admin.
func (c *liveClient) Preload(class string, args ...Value) error {
	return c.rt.PreloadEntity(class, args...)
}
