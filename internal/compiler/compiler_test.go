package compiler

import (
	"strings"
	"testing"

	"statefulentities.dev/stateflow/internal/ir"
)

// figure1 is the paper's running example (Figure 1).
const figure1 = `
@entity
class Item:
    def __init__(self, item_id: str, price: int):
        self.item_id: str = item_id
        self.stock: int = 0
        self.price: int = price

    def __key__(self) -> str:
        return self.item_id

    def get_price(self) -> int:
        return self.price

    def update_stock(self, amount: int) -> bool:
        self.stock += amount
        return self.stock >= 0

@entity
class User:
    def __init__(self, username: str):
        self.username: str = username
        self.balance: int = 100

    def __key__(self) -> str:
        return self.username

    @transactional
    def buy_item(self, amount: int, item: Item) -> bool:
        total_price: int = amount * item.get_price()
        if self.balance < total_price:
            return False
        available: bool = item.update_stock(0 - amount)
        if not available:
            item.update_stock(amount)
            return False
        self.balance -= total_price
        return True
`

func compileFig1(t *testing.T) *ir.Program {
	t.Helper()
	prog, err := Compile(figure1)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog
}

func TestFigure1Operators(t *testing.T) {
	prog := compileFig1(t)
	if len(prog.OperatorOrder) != 2 {
		t.Fatalf("operators: %d", len(prog.OperatorOrder))
	}
	item := prog.Operator("Item")
	if item.KeyAttr != "item_id" || item.KeyParam != "item_id" {
		t.Fatalf("Item key: attr=%s param=%s", item.KeyAttr, item.KeyParam)
	}
	user := prog.Operator("User")
	if user.KeyAttr != "username" {
		t.Fatalf("User key: %s", user.KeyAttr)
	}
}

func TestSimpleMethodsNotSplit(t *testing.T) {
	prog := compileFig1(t)
	for _, name := range []string{"get_price", "update_stock"} {
		m := prog.MethodOf("Item", name)
		if !m.Simple {
			t.Errorf("%s should be simple", name)
		}
		if len(m.Blocks) != 1 {
			t.Errorf("%s blocks: %d", name, len(m.Blocks))
		}
	}
}

func TestBuyItemSplit(t *testing.T) {
	prog := compileFig1(t)
	buy := prog.MethodOf("User", "buy_item")
	if buy.Simple {
		t.Fatal("buy_item must be split")
	}
	if !buy.Transactional {
		t.Fatal("buy_item should be transactional")
	}
	// Count invoke terminators: get_price, update_stock (buy), update_stock (refund).
	var invokes []ir.Invoke
	for _, b := range buy.Blocks {
		if inv, ok := b.Term.(ir.Invoke); ok {
			invokes = append(invokes, inv)
		}
	}
	if len(invokes) != 3 {
		t.Fatalf("invoke terminators: got %d, want 3", len(invokes))
	}
	if invokes[0].Method != "get_price" || invokes[0].Class != "Item" {
		t.Fatalf("first invoke: %s.%s", invokes[0].Class, invokes[0].Method)
	}
	if invokes[1].Method != "update_stock" || invokes[1].AssignTo != "available" {
		t.Fatalf("second invoke: %+v", invokes[1])
	}
	if invokes[2].Method != "update_stock" || invokes[2].AssignTo != "" {
		t.Fatalf("third invoke should discard its result: %+v", invokes[2])
	}
}

func TestBuyItemEntryBlock(t *testing.T) {
	prog := compileFig1(t)
	buy := prog.MethodOf("User", "buy_item")
	entry := buy.Blocks[0]
	// The entry block evaluates the arguments for the remote call and ends
	// with the invocation (§2.4's buy_item_0).
	inv, ok := entry.Term.(ir.Invoke)
	if !ok {
		t.Fatalf("entry terminator: %T", entry.Term)
	}
	if inv.Method != "get_price" {
		t.Fatalf("entry invoke: %s", inv.Method)
	}
	// amount and item are referenced by later blocks, so they must be
	// carried: the entry block's live-out must include them.
	liveOut := strings.Join(entry.LiveOut, ",")
	if !strings.Contains(liveOut, "amount") || !strings.Contains(liveOut, "item") {
		t.Fatalf("entry live-out: %v", entry.LiveOut)
	}
}

func TestBlockParamsAndDefines(t *testing.T) {
	prog := compileFig1(t)
	buy := prog.MethodOf("User", "buy_item")
	// The block after get_price defines total_price (§2.4: "since
	// buy_item_0 defines the variable total_price, its value is returned").
	b1 := buy.Blocks[1]
	var foundDef bool
	for _, d := range b1.Defines {
		if d == "total_price" {
			foundDef = true
		}
	}
	if !foundDef {
		t.Fatalf("block 1 defines: %v", b1.Defines)
	}
	// And it references amount plus the hoisted return temporary.
	var usesAmount bool
	for _, u := range b1.Params {
		if u == "amount" {
			usesAmount = true
		}
	}
	if !usesAmount {
		t.Fatalf("block 1 params: %v", b1.Params)
	}
}

func TestStateMachineShape(t *testing.T) {
	prog := compileFig1(t)
	buy := prog.MethodOf("User", "buy_item")
	sm := buy.SM
	if sm.Entry != 0 {
		t.Fatalf("entry: %d", sm.Entry)
	}
	var calls, resumes, returns int
	for _, tr := range sm.Transitions {
		switch tr.Kind {
		case ir.TransCall:
			calls++
			if tr.Callee == "" {
				t.Fatal("call transition missing callee")
			}
		case ir.TransResume:
			resumes++
		case ir.TransReturn:
			returns++
		}
	}
	if calls != 3 || resumes != 3 {
		t.Fatalf("call/resume transitions: %d/%d", calls, resumes)
	}
	if returns != 2 {
		// return False (refund path) and return True; the first
		// `return False` sits inside an inline if with no remote calls, so
		// it is executed by the interpreter, not the state machine.
		t.Fatalf("return transitions: %d", returns)
	}
}

func TestEdges(t *testing.T) {
	prog := compileFig1(t)
	var userToItem bool
	for _, e := range prog.Edges {
		if e.From == "User" && e.To == "Item" {
			userToItem = true
		}
	}
	if !userToItem {
		t.Fatal("missing User -> Item dataflow edge")
	}
	// Every operator connects to ingress and egress.
	for _, name := range prog.OperatorOrder {
		var in, out bool
		for _, e := range prog.Edges {
			if e.From == "ingress" && e.To == name {
				in = true
			}
			if e.From == name && e.To == "egress" {
				out = true
			}
		}
		if !in || !out {
			t.Fatalf("operator %s not wired to routers", name)
		}
	}
}

func TestValidate(t *testing.T) {
	prog := compileFig1(t)
	if err := prog.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDotOutput(t *testing.T) {
	prog := compileFig1(t)
	dot := prog.Dot()
	for _, want := range []string{"digraph", "ingress", "egress", "User", "Item", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestStats(t *testing.T) {
	prog := compileFig1(t)
	st := prog.Stats()
	if st.Operators != 2 {
		t.Fatalf("operators: %d", st.Operators)
	}
	if st.SplitMethods == 0 || st.SimpleMethods == 0 {
		t.Fatalf("split/simple: %d/%d", st.SplitMethods, st.SimpleMethods)
	}
}

const header = `
@entity
class D:
    def __init__(self, k: str):
        self.k: str = k
        self.v: int = 0
    def __key__(self) -> str:
        return self.k
    def bump(self, by: int) -> int:
        self.v += by
        return self.v
    def get(self) -> int:
        return self.v

@entity
class C:
    def __init__(self, k: str):
        self.k: str = k
        self.total: int = 0
    def __key__(self) -> str:
        return self.k
`

func compileWith(t *testing.T, methods string) *ir.Program {
	t.Helper()
	prog, err := Compile(header + methods)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog
}

func TestSplitForLoop(t *testing.T) {
	prog := compileWith(t, `
    def m(self, d: D, xs: list[int]) -> int:
        total: int = 0
        for x in xs:
            total += d.bump(x)
        return total
`)
	m := prog.MethodOf("C", "m")
	if m.Simple {
		t.Fatal("loop with remote call must be split")
	}
	// Expect a branch (loop head) and an invoke (body call).
	var hasBranch, hasInvoke, hasBackJump bool
	for _, b := range m.Blocks {
		switch term := b.Term.(type) {
		case ir.Branch:
			hasBranch = true
		case ir.Invoke:
			hasInvoke = true
			_ = term
		case ir.Jump:
			// The body's jump back to the loop head has a target with a
			// lower id than itself.
			if term.To < b.ID {
				hasBackJump = true
			}
		}
	}
	if !hasBranch || !hasInvoke || !hasBackJump {
		t.Fatalf("loop split shape: branch=%v invoke=%v backjump=%v", hasBranch, hasInvoke, hasBackJump)
	}
}

func TestSplitWhileWithRemoteCond(t *testing.T) {
	prog := compileWith(t, `
    def m(self, d: D) -> int:
        while d.get() < 3:
            d.bump(1)
        return d.get()
`)
	m := prog.MethodOf("C", "m")
	if m.Simple {
		t.Fatal("must be split")
	}
	// Remote calls in the condition are re-evaluated every iteration, so
	// there must be an invoke inside the loop that feeds the branch.
	var invokes int
	for _, b := range m.Blocks {
		if _, ok := b.Term.(ir.Invoke); ok {
			invokes++
		}
	}
	if invokes < 3 {
		t.Fatalf("invokes: %d", invokes)
	}
}

func TestBreakInSplitLoop(t *testing.T) {
	prog := compileWith(t, `
    def m(self, d: D, xs: list[int]) -> int:
        total: int = 0
        for x in xs:
            total += d.bump(x)
            if total > 10:
                break
        return total
`)
	m := prog.MethodOf("C", "m")
	if err := prog.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if m.Simple {
		t.Fatal("must be split")
	}
}

func TestNestedEntityCallHoist(t *testing.T) {
	// d.bump(d.get()) hoists the inner call first.
	prog := compileWith(t, `
    def m(self, d: D) -> int:
        return d.bump(d.get())
`)
	m := prog.MethodOf("C", "m")
	var order []string
	for _, b := range m.Blocks {
		if inv, ok := b.Term.(ir.Invoke); ok {
			order = append(order, inv.Method)
		}
	}
	if len(order) != 2 || order[0] != "get" || order[1] != "bump" {
		t.Fatalf("hoist order: %v", order)
	}
}

func TestCtorCallSplit(t *testing.T) {
	prog := compileWith(t, `
    def mk(self, name: str) -> int:
        d: D = D(name)
        return d.get()
`)
	m := prog.MethodOf("C", "mk")
	inv, ok := m.Blocks[0].Term.(ir.Invoke)
	if !ok {
		t.Fatalf("ctor should split: %T", m.Blocks[0].Term)
	}
	if inv.Method != "__init__" || inv.Class != "D" || inv.AssignTo != "d" {
		t.Fatalf("ctor invoke: %+v", inv)
	}
}

func TestSelfCallToSplitMethodIsSplit(t *testing.T) {
	prog := compileWith(t, `
    def outer(self, d: D) -> int:
        return self.inner(d)
    def inner(self, d: D) -> int:
        return d.get()
`)
	outer := prog.MethodOf("C", "outer")
	if outer.Simple {
		t.Fatal("outer transitively needs splitting")
	}
	inv, ok := outer.Blocks[0].Term.(ir.Invoke)
	if !ok || inv.Class != "C" || inv.Method != "inner" {
		t.Fatalf("self-call invoke: %+v", outer.Blocks[0].Term)
	}
}

func TestSelfCallToSimpleMethodInline(t *testing.T) {
	prog := compileWith(t, `
    def helper(self, x: int) -> int:
        return x * 2
    def m(self) -> int:
        return self.helper(21)
`)
	m := prog.MethodOf("C", "m")
	if !m.Simple {
		t.Fatal("self-call to simple method stays inline")
	}
}

func TestShortCircuitRemoteCallRejected(t *testing.T) {
	_, err := Compile(header + `
    def m(self, d: D) -> bool:
        return True and d.get() > 0
`)
	if err == nil || !strings.Contains(err.Error(), "eagerly") {
		t.Fatalf("want short-circuit error, got %v", err)
	}
}

func TestInitWithRemoteCallRejected(t *testing.T) {
	_, err := Compile(`
@entity
class D:
    def __init__(self, k: str):
        self.k: str = k
    def __key__(self) -> str:
        return self.k
    def get(self) -> int:
        return 1

@entity
class C:
    def __init__(self, k: str, d: D):
        self.k: str = k
        self.v: int = d.get()
    def __key__(self) -> str:
        return self.k
`)
	if err == nil || !strings.Contains(err.Error(), "__init__ must not perform remote calls") {
		t.Fatalf("got %v", err)
	}
}

func TestKeyParamRequired(t *testing.T) {
	_, err := Compile(`
@entity
class C:
    def __init__(self, k: str):
        self.k: str = k + "!"
    def __key__(self) -> str:
        return self.k
`)
	if err == nil || !strings.Contains(err.Error(), "routed") {
		t.Fatalf("got %v", err)
	}
}

func TestNonEntityRejected(t *testing.T) {
	_, err := Compile(`
class C:
    def __init__(self, k: str):
        self.k: str = k
`)
	if err == nil || !strings.Contains(err.Error(), "@entity") {
		t.Fatalf("got %v", err)
	}
}

func TestReadOnlyAnalysis(t *testing.T) {
	prog := compileWith(t, `
    def reader(self, d: D) -> int:
        return d.get()
    def writer(self, d: D) -> int:
        return d.bump(1)
`)
	if !prog.MethodOf("C", "reader").ReadOnly {
		t.Fatal("reader should be read-only")
	}
	if prog.MethodOf("C", "writer").ReadOnly {
		t.Fatal("writer is not read-only")
	}
	if !prog.MethodOf("D", "get").ReadOnly {
		t.Fatal("D.get should be read-only")
	}
	if prog.MethodOf("D", "bump").ReadOnly {
		t.Fatal("D.bump writes state")
	}
}

func TestUnreachableBlocksPruned(t *testing.T) {
	prog := compileWith(t, `
    def m(self, d: D) -> int:
        x: int = d.get()
        if x > 0:
            return 1
        return 2
`)
	m := prog.MethodOf("C", "m")
	for _, b := range m.Blocks {
		// Every block must be reachable: entry or a target of some edge.
		if b.ID == 0 {
			continue
		}
		reachable := false
		for _, other := range m.Blocks {
			for _, s := range other.Term.Successors() {
				if s == b.ID {
					reachable = true
				}
			}
		}
		if !reachable {
			t.Fatalf("block %d (%s) unreachable", b.ID, b.Name)
		}
	}
}

func TestElifSplit(t *testing.T) {
	prog := compileWith(t, `
    def m(self, d: D, n: int) -> int:
        if n == 1:
            return d.bump(1)
        elif n == 2:
            return d.bump(2)
        else:
            return d.bump(3)
`)
	m := prog.MethodOf("C", "m")
	var invokes int
	for _, b := range m.Blocks {
		if _, ok := b.Term.(ir.Invoke); ok {
			invokes++
		}
	}
	if invokes != 3 {
		t.Fatalf("invokes: %d", invokes)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleCallsSameStatement(t *testing.T) {
	prog := compileWith(t, `
    def m(self, a: D, b: D) -> int:
        return a.get() + b.get()
`)
	m := prog.MethodOf("C", "m")
	var invokes int
	for _, blk := range m.Blocks {
		if _, ok := blk.Term.(ir.Invoke); ok {
			invokes++
		}
	}
	if invokes != 2 {
		t.Fatalf("invokes: %d", invokes)
	}
}

func TestBlockNamesDense(t *testing.T) {
	prog := compileFig1(t)
	buy := prog.MethodOf("User", "buy_item")
	for i, b := range buy.Blocks {
		want := "buy_item_" + string(rune('0'+i))
		if b.Name != want {
			t.Fatalf("block %d name: %s want %s", i, b.Name, want)
		}
	}
}
