// Def/use and live-variable analysis over split blocks. The paper (§2.4)
// derives each split function's parameters from the variables it references
// and its returns from the variables it defines; we additionally compute
// live-out sets with a fixpoint over the block CFG so runtimes can prune
// the execution context carried inside events to exactly the variables
// later blocks still need.
package compiler

import (
	"sort"

	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/lang/ast"
)

// exprUses collects variable names read by an expression.
func exprUses(e ast.Expr, out map[string]bool) {
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if n, ok := x.(*ast.Name); ok {
			out[n.Ident] = true
		}
		return true
	})
}

// stmtDefUse computes, at statement granularity, the variables a statement
// reads before writing (use) and the variables it writes (def). Nested
// inline control flow is handled conservatively: all reads anywhere count
// as uses, all writes as defs.
func stmtDefUse(s ast.Stmt, use, def map[string]bool) {
	markUse := func(e ast.Expr) {
		tmp := map[string]bool{}
		exprUses(e, tmp)
		for v := range tmp {
			if !def[v] {
				use[v] = true
			}
		}
	}
	switch x := s.(type) {
	case *ast.AssignStmt:
		markUse(x.Value)
		switch t := x.Target.(type) {
		case *ast.Name:
			def[t.Ident] = true
		case *ast.Index:
			markUse(t.Recv)
			markUse(t.Idx)
		case *ast.Attr:
			// self attribute: not a local variable.
		}
	case *ast.AugAssignStmt:
		markUse(x.Value)
		if t, ok := x.Target.(*ast.Name); ok {
			// Read-modify-write: the target is both used and defined.
			if !def[t.Ident] {
				use[t.Ident] = true
			}
			def[t.Ident] = true
		}
	case *ast.ExprStmt:
		markUse(x.Value)
	case *ast.ReturnStmt:
		if x.Value != nil {
			markUse(x.Value)
		}
	case *ast.IfStmt:
		markUse(x.Cond)
		// Conservative: branch defs may not happen, so nested reads are
		// uses, nested writes are (optimistic) defs only for carrying
		// purposes; to stay safe for liveness we record nested writes as
		// defs only if they occur in straight-line position. Simplest
		// sound choice: count nested reads as uses, ignore nested defs.
		nestedUses([]ast.Stmt{s}, use, def)
	case *ast.ForStmt:
		markUse(x.Iterable)
		def[x.Var] = true
		nestedUses(x.Body, use, def)
	case *ast.WhileStmt:
		markUse(x.Cond)
		nestedUses(x.Body, use, def)
	case *ast.PassStmt, *ast.BreakStmt, *ast.ContinueStmt:
	}
}

// nestedUses records every variable read anywhere under stmts as a use
// (unless already defined) without recording nested writes as defs. This
// over-approximates use and under-approximates def, which is the sound
// direction for liveness.
func nestedUses(stmts []ast.Stmt, use, def map[string]bool) {
	ast.WalkStmts(stmts, func(st ast.Stmt) {
		switch x := st.(type) {
		case *ast.AssignStmt:
			collectReads(x.Value, use, def)
			if t, ok := x.Target.(*ast.Index); ok {
				collectReads(t.Recv, use, def)
				collectReads(t.Idx, use, def)
			}
		case *ast.AugAssignStmt:
			collectReads(x.Value, use, def)
			if t, ok := x.Target.(*ast.Name); ok && !def[t.Ident] {
				use[t.Ident] = true
			}
		case *ast.ExprStmt:
			collectReads(x.Value, use, def)
		case *ast.ReturnStmt:
			if x.Value != nil {
				collectReads(x.Value, use, def)
			}
		case *ast.IfStmt:
			collectReads(x.Cond, use, def)
		case *ast.ForStmt:
			collectReads(x.Iterable, use, def)
		case *ast.WhileStmt:
			collectReads(x.Cond, use, def)
		}
	})
}

func collectReads(e ast.Expr, use, def map[string]bool) {
	tmp := map[string]bool{}
	exprUses(e, tmp)
	for v := range tmp {
		if !def[v] {
			use[v] = true
		}
	}
}

// blockDefUse computes the use/def sets of a block including its
// terminator. The AssignTo of an Invoke terminator is a def of the
// *successor* block, returned separately.
func blockDefUse(b *ir.Block) (use, def map[string]bool, succDef string) {
	use = map[string]bool{}
	def = map[string]bool{}
	for _, s := range b.Stmts {
		stmtDefUse(s, use, def)
	}
	markUse := func(e ast.Expr) {
		if e == nil {
			return
		}
		tmp := map[string]bool{}
		exprUses(e, tmp)
		for v := range tmp {
			if !def[v] {
				use[v] = true
			}
		}
	}
	switch t := b.Term.(type) {
	case ir.Return:
		markUse(t.Value)
	case ir.Branch:
		markUse(t.Cond)
	case ir.Invoke:
		markUse(t.Recv)
		for _, a := range t.Args {
			markUse(a)
		}
		succDef = t.AssignTo
	}
	return use, def, succDef
}

// computeDefUse fills Params, Defines and LiveOut on every block via a
// backwards fixpoint over the CFG (loops require iteration to converge).
func computeDefUse(blocks []*ir.Block) {
	n := len(blocks)
	uses := make([]map[string]bool, n)
	defs := make([]map[string]bool, n)
	entryDef := make([]map[string]bool, n) // vars defined on entry (Invoke AssignTo)
	for i := range blocks {
		entryDef[i] = map[string]bool{}
	}
	for i, b := range blocks {
		u, d, succ := blockDefUse(b)
		uses[i], defs[i] = u, d
		if inv, ok := b.Term.(ir.Invoke); ok && succ != "" {
			entryDef[inv.To][succ] = true
		}
	}
	liveIn := make([]map[string]bool, n)
	liveOut := make([]map[string]bool, n)
	for i := range blocks {
		liveIn[i] = map[string]bool{}
		liveOut[i] = map[string]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := blocks[i]
			out := map[string]bool{}
			for _, s := range b.Term.Successors() {
				for v := range liveIn[s] {
					// A variable defined on entry to the successor (the
					// invoke result) is not live across the edge.
					if entryDef[s][v] {
						continue
					}
					out[v] = true
				}
			}
			in := map[string]bool{}
			for v := range uses[i] {
				in[v] = true
			}
			for v := range out {
				if !defs[i][v] && !entryDef[i][v] {
					in[v] = true
				}
			}
			if !sameSet(out, liveOut[i]) || !sameSet(in, liveIn[i]) {
				changed = true
				liveOut[i], liveIn[i] = out, in
			}
		}
	}
	for i, b := range blocks {
		b.Params = sortedKeys(uses[i])
		d := map[string]bool{}
		for v := range defs[i] {
			d[v] = true
		}
		for v := range entryDef[i] {
			d[v] = true
		}
		b.Defines = sortedKeys(d)
		b.LiveOut = sortedKeys(liveOut[i])
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
