package compiler

import (
	"testing"

	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/lang/ast"
)

const layoutSrc = `
@entity
class Item:
    def __init__(self, item_id: str, price: int):
        self.item_id: str = item_id
        self.stock: int = 0
        self.price: int = price

    def __key__(self) -> str:
        return self.item_id

    def get_price(self) -> int:
        return self.price

    def update_stock(self, amount: int) -> bool:
        self.stock += amount
        return self.stock >= 0

@entity
class User:
    def __init__(self, username: str):
        self.username: str = username
        self.balance: int = 100

    def __key__(self) -> str:
        return self.username

    @transactional
    def buy_item(self, amount: int, item: Item) -> bool:
        total_price: int = amount * item.get_price()
        if self.balance < total_price:
            return False
        available: bool = item.update_stock(0 - amount)
        if not available:
            item.update_stock(amount)
            return False
        self.balance -= total_price
        return True
`

func TestLayoutsStamped(t *testing.T) {
	prog := MustCompile(layoutSrc)
	for i, name := range prog.OperatorOrder {
		op := prog.Operators[name]
		if op.Layout == nil {
			t.Fatalf("%s has no class layout", name)
		}
		if op.Layout.ID != i {
			t.Fatalf("%s class id %d, want %d", name, op.Layout.ID, i)
		}
		if op.Layout.NumSlots() != len(op.Attrs) {
			t.Fatalf("%s layout covers %d of %d attrs", name, op.Layout.NumSlots(), len(op.Attrs))
		}
		for _, mn := range op.MethodOrder {
			if op.Methods[mn].Frame == nil {
				t.Fatalf("%s.%s has no frame layout", name, mn)
			}
		}
	}
}

// Parameters must occupy the leading frame slots in declaration order —
// BindParams relies on it for slot-indexed binding.
func TestFrameLayoutParamsLeading(t *testing.T) {
	prog := MustCompile(layoutSrc)
	m := prog.MethodOf("User", "buy_item")
	if len(m.Frame.Vars) < 2 || m.Frame.Vars[0] != "amount" || m.Frame.Vars[1] != "item" {
		t.Fatalf("frame vars: %v", m.Frame.Vars)
	}
	// Locals defined across the method are covered too.
	for _, v := range []string{"total_price", "available"} {
		if _, ok := m.Frame.SlotOf(v); !ok {
			t.Fatalf("local %s missing from frame layout: %v", v, m.Frame.Vars)
		}
	}
}

// Every Name and self-Attr node in executed code must carry a slot stamp,
// in both split blocks and the pre-split bodies simple execution uses.
func TestASTSlotsStamped(t *testing.T) {
	prog := MustCompile(layoutSrc)
	for _, name := range prog.OperatorOrder {
		op := prog.Operators[name]
		for _, mn := range op.MethodOrder {
			m := op.Methods[mn]
			check := func(stmts []ast.Stmt) {
				ast.WalkStmts(stmts, func(s ast.Stmt) {
					for _, e := range ast.ExprsOf(s) {
						ast.WalkExpr(e, func(x ast.Expr) bool {
							switch n := x.(type) {
							case *ast.Name:
								if n.Slot == 0 {
									t.Errorf("%s.%s: name %s unstamped", name, mn, n.Ident)
								}
							case *ast.Attr:
								if _, isSelf := n.Recv.(*ast.SelfRef); isSelf && n.Slot == 0 {
									t.Errorf("%s.%s: attr %s unstamped", name, mn, n.Field)
								}
							}
							return true
						})
					}
				})
			}
			check(m.Body)
			for _, b := range m.Blocks {
				check(b.Stmts)
				if inv, ok := b.Term.(ir.Invoke); ok {
					for _, a := range inv.Args {
						ast.WalkExpr(a, func(x ast.Expr) bool {
							if n, ok := x.(*ast.Name); ok && n.Slot == 0 {
								t.Errorf("%s.%s: invoke arg %s unstamped", name, mn, n.Ident)
							}
							return true
						})
					}
				}
			}
		}
	}
}

// The stamped slots must agree between blocks and bodies: a Name's slot
// always resolves to its own identifier in the method frame.
func TestSlotStampsConsistent(t *testing.T) {
	prog := MustCompile(layoutSrc)
	for _, name := range prog.OperatorOrder {
		op := prog.Operators[name]
		for _, mn := range op.MethodOrder {
			m := op.Methods[mn]
			ast.WalkStmts(m.Body, func(s ast.Stmt) {
				for _, e := range ast.ExprsOf(s) {
					ast.WalkExpr(e, func(x ast.Expr) bool {
						if n, ok := x.(*ast.Name); ok && n.Slot > 0 {
							if m.Frame.Vars[n.Slot-1] != n.Ident {
								t.Errorf("%s.%s: %s stamped to slot of %s",
									name, mn, n.Ident, m.Frame.Vars[n.Slot-1])
							}
						}
						return true
					})
				}
			})
		}
	}
}
