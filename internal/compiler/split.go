// Function splitting (§2.4): the continuation-passing-style transformation
// that turns an imperative method into a chain of split functions. The
// splitter walks a method's statement list, hoists remote calls out of
// expressions into dedicated Invoke terminators, and cuts the statement
// list at every remote call and at every control-flow structure that
// contains one. Control flow with no remote calls stays inline and is
// executed locally by the interpreter.
package compiler

import (
	"fmt"

	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/lang/ast"
	"statefulentities.dev/stateflow/internal/lang/token"
	"statefulentities.dev/stateflow/internal/lang/types"
)

// Error is a compilation error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: compile error: %s", e.Pos, e.Msg) }

type loopCtx struct {
	head ir.BlockID // continue target
	exit ir.BlockID // break target
}

type splitter struct {
	info       *types.Info
	needsSplit map[string]bool // qualified method name -> transitively needs splitting
	method     *types.Method
	blocks     []*ir.Block
	cur        *ir.Block
	tmpN       int
	loops      []loopCtx
	err        error
}

func (s *splitter) fail(pos token.Pos, format string, args ...any) {
	if s.err == nil {
		s.err = &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
}

func (s *splitter) newBlock() *ir.Block {
	b := &ir.Block{
		ID:   ir.BlockID(len(s.blocks)),
		Name: fmt.Sprintf("%s_%d", s.method.Name, len(s.blocks)),
	}
	s.blocks = append(s.blocks, b)
	return b
}

func (s *splitter) newTmp() string {
	s.tmpN++
	return fmt.Sprintf("__t%d", s.tmpN)
}

// isSplitCall reports whether the given original call expression must leave
// the operator: remote method calls, constructor calls (the new entity
// lives on its own partition), and self-calls to methods that themselves
// need splitting.
func (s *splitter) isSplitCall(call *ast.Call) bool {
	tgt, ok := s.info.Calls[call]
	if !ok {
		return false // builtin or container method
	}
	if tgt.Ctor {
		return true
	}
	if tgt.Remote {
		return true
	}
	return s.needsSplit[tgt.Class+"."+tgt.Method]
}

// containsSplitCall reports whether the expression tree contains a call
// that must be hoisted.
func (s *splitter) containsSplitCall(e ast.Expr) bool {
	found := false
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if call, ok := x.(*ast.Call); ok && s.isSplitCall(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// stmtHasSplitCall reports whether a statement (recursively) contains a
// split call.
func (s *splitter) stmtHasSplitCall(stmt ast.Stmt) bool {
	found := false
	ast.WalkStmts([]ast.Stmt{stmt}, func(st ast.Stmt) {
		for _, e := range ast.ExprsOf(st) {
			if s.containsSplitCall(e) {
				found = true
			}
		}
	})
	return found
}

// containsLoopEscape reports whether the statement list contains a break or
// continue that binds to the *enclosing* loop (i.e. not nested inside a
// further loop within the list).
func containsLoopEscape(stmts []ast.Stmt) bool {
	for _, st := range stmts {
		switch x := st.(type) {
		case *ast.BreakStmt, *ast.ContinueStmt:
			return true
		case *ast.IfStmt:
			if containsLoopEscape(x.Then) || containsLoopEscape(x.Else) {
				return true
			}
		case *ast.ForStmt, *ast.WhileStmt:
			// break/continue inside bind to the inner loop.
		}
	}
	return false
}

// hoist rewrites an expression, extracting every split call into an Invoke
// terminator (innermost first, left-to-right, matching Python evaluation
// order) and replacing it with the temporary variable that receives the
// call's return value. The original AST is never mutated: rewritten paths
// are copied.
func (s *splitter) hoist(e ast.Expr) ast.Expr {
	if e == nil || s.err != nil {
		return e
	}
	switch x := e.(type) {
	case *ast.Name, *ast.SelfRef, *ast.IntLit, *ast.FloatLit, *ast.StrLit,
		*ast.BoolLit, *ast.NoneLit:
		return e
	case *ast.Attr:
		recv := s.hoist(x.Recv)
		if recv == x.Recv {
			return e
		}
		return &ast.Attr{Position: x.Position, Recv: recv, Field: x.Field}
	case *ast.ListLit:
		elems, changed := s.hoistAll(x.Elems)
		if !changed {
			return e
		}
		return &ast.ListLit{Position: x.Position, Elems: elems}
	case *ast.DictLit:
		keys, ck := s.hoistAll(x.Keys)
		vals, cv := s.hoistAll(x.Values)
		if !ck && !cv {
			return e
		}
		return &ast.DictLit{Position: x.Position, Keys: keys, Values: vals}
	case *ast.UnaryOp:
		op := s.hoist(x.Operand)
		if op == x.Operand {
			return e
		}
		return &ast.UnaryOp{Position: x.Position, Op: x.Op, Operand: op}
	case *ast.BinOp:
		if (x.Op == token.KwAnd || x.Op == token.KwOr) && s.containsSplitCall(x.Right) {
			s.fail(x.Pos(), "remote call in the right operand of %s would be evaluated eagerly; rewrite using an explicit if-statement", x.Op)
			return e
		}
		l := s.hoist(x.Left)
		r := s.hoist(x.Right)
		if l == x.Left && r == x.Right {
			return e
		}
		return &ast.BinOp{Position: x.Position, Op: x.Op, Left: l, Right: r}
	case *ast.Index:
		recv := s.hoist(x.Recv)
		idx := s.hoist(x.Idx)
		if recv == x.Recv && idx == x.Idx {
			return e
		}
		return &ast.Index{Position: x.Position, Recv: recv, Idx: idx}
	case *ast.Call:
		var recv ast.Expr
		if x.Recv != nil {
			recv = s.hoist(x.Recv)
		}
		args, changedArgs := s.hoistAll(x.Args)
		if !s.isSplitCall(x) {
			if recv == x.Recv && !changedArgs {
				return e
			}
			return &ast.Call{Position: x.Position, Recv: recv, Func: x.Func, Args: args}
		}
		// Split call: cut the block here (§2.4). The current block ends by
		// sending the invocation event; execution resumes in a fresh block
		// once the return value arrives.
		tgt := s.info.Calls[x]
		tmp := s.newTmp()
		s.emitInvoke(recv, tgt, x.Func, args, tmp)
		return &ast.Name{Position: x.Position, Ident: tmp}
	default:
		s.fail(e.Pos(), "unsupported expression %T in split", e)
		return e
	}
}

func (s *splitter) hoistAll(exprs []ast.Expr) ([]ast.Expr, bool) {
	changed := false
	out := make([]ast.Expr, len(exprs))
	for i, e := range exprs {
		out[i] = s.hoist(e)
		if out[i] != e {
			changed = true
		}
	}
	if !changed {
		return exprs, false
	}
	return out, true
}

// emitInvoke terminates the current block with an Invoke and starts the
// continuation block.
func (s *splitter) emitInvoke(recv ast.Expr, tgt types.CallTarget, method string, args []ast.Expr, assignTo string) {
	next := s.newBlock()
	if tgt.Ctor {
		recv = nil
		method = "__init__"
	}
	s.cur.Term = ir.Invoke{
		Recv:     recv,
		Class:    tgt.Class,
		Method:   method,
		Args:     args,
		AssignTo: assignTo,
		To:       next.ID,
	}
	s.cur = next
}

// compileStmts compiles a statement list into the current block chain.
// It returns true if the compiled code always terminates (returns) so the
// caller can skip emitting dead continuations.
func (s *splitter) compileStmts(stmts []ast.Stmt) bool {
	for _, st := range stmts {
		if s.err != nil {
			return true
		}
		if s.compileStmt(st) {
			return true
		}
	}
	return false
}

// inSplitLoop reports whether we are compiling inside a split loop body.
func (s *splitter) inSplitLoop() bool { return len(s.loops) > 0 }

func (s *splitter) compileStmt(st ast.Stmt) bool {
	switch x := st.(type) {
	case *ast.ReturnStmt:
		var v ast.Expr
		if x.Value != nil {
			v = s.hoist(x.Value)
		}
		s.cur.Term = ir.Return{Value: v}
		// Any trailing statements are dead; switch to a fresh unreachable
		// block so stray code cannot corrupt the terminator.
		s.cur = s.newBlockUnreachable()
		return true
	case *ast.BreakStmt:
		if !s.inSplitLoop() {
			s.fail(x.Pos(), "break outside loop")
			return true
		}
		s.cur.Term = ir.Jump{To: s.loops[len(s.loops)-1].exit}
		s.cur = s.newBlockUnreachable()
		return true
	case *ast.ContinueStmt:
		if !s.inSplitLoop() {
			s.fail(x.Pos(), "continue outside loop")
			return true
		}
		s.cur.Term = ir.Jump{To: s.loops[len(s.loops)-1].head}
		s.cur = s.newBlockUnreachable()
		return true
	case *ast.IfStmt:
		if s.stmtHasSplitCall(x) || (s.inSplitLoop() && (containsLoopEscape(x.Then) || containsLoopEscape(x.Else))) {
			return s.compileSplitIf(x)
		}
	case *ast.ForStmt:
		if s.stmtHasSplitCall(x) {
			s.compileSplitFor(x)
			return false
		}
	case *ast.WhileStmt:
		if s.stmtHasSplitCall(x) {
			s.compileSplitWhile(x)
			return false
		}
	case *ast.AssignStmt:
		if s.containsSplitCall(x.Value) || s.containsSplitCall(x.Target) {
			// Special-case the common `x = remote_call(...)` shape to bind
			// the call result directly, avoiding a temporary.
			if call, ok := x.Value.(*ast.Call); ok && s.isSplitCall(call) {
				if name, isName := x.Target.(*ast.Name); isName {
					var recv ast.Expr
					if call.Recv != nil {
						recv = s.hoist(call.Recv)
					}
					args, _ := s.hoistAll(call.Args)
					s.emitInvoke(recv, s.info.Calls[call], call.Func, args, name.Ident)
					return false
				}
			}
			target := s.hoist(x.Target)
			value := s.hoist(x.Value)
			s.cur.Stmts = append(s.cur.Stmts, &ast.AssignStmt{
				Position: x.Position, Target: target, Type: x.Type, Value: value,
			})
			return false
		}
	case *ast.AugAssignStmt:
		if s.containsSplitCall(x.Value) {
			value := s.hoist(x.Value)
			s.cur.Stmts = append(s.cur.Stmts, &ast.AugAssignStmt{
				Position: x.Position, Target: x.Target, Op: x.Op, Value: value,
			})
			return false
		}
	case *ast.ExprStmt:
		if s.containsSplitCall(x.Value) {
			// Evaluate for effect; the hoisted temporary is discarded.
			if call, ok := x.Value.(*ast.Call); ok && s.isSplitCall(call) {
				var recv ast.Expr
				if call.Recv != nil {
					recv = s.hoist(call.Recv)
				}
				args, _ := s.hoistAll(call.Args)
				s.emitInvoke(recv, s.info.Calls[call], call.Func, args, "")
				return false
			}
			v := s.hoist(x.Value)
			s.cur.Stmts = append(s.cur.Stmts, &ast.ExprStmt{Position: x.Position, Value: v})
			return false
		}
	}
	// No split call anywhere inside: keep the statement inline.
	s.cur.Stmts = append(s.cur.Stmts, st)
	return false
}

// newBlockUnreachable starts a fresh block for statements that follow an
// unconditional transfer; it is pruned later if it stays empty.
func (s *splitter) newBlockUnreachable() *ir.Block { return s.newBlock() }

// compileSplitIf splits an if-statement into condition, true-path and
// false-path definitions (§2.4 "Control Flow"), recursing into both paths.
func (s *splitter) compileSplitIf(x *ast.IfStmt) bool {
	cond := s.hoist(x.Cond) // condition evaluated (with hoisted calls) in the current chain
	condBlock := s.cur
	thenEntry := s.newBlock()

	s.cur = thenEntry
	thenTerm := s.compileStmts(x.Then)
	thenExit := s.cur

	var elseEntry *ir.Block
	var elseTerm bool
	var elseExit *ir.Block
	if len(x.Else) > 0 {
		elseEntry = s.newBlock()
		s.cur = elseEntry
		elseTerm = s.compileStmts(x.Else)
		elseExit = s.cur
	}

	merge := s.newBlock()
	if elseEntry == nil {
		condBlock.Term = ir.Branch{Cond: cond, True: thenEntry.ID, False: merge.ID}
	} else {
		condBlock.Term = ir.Branch{Cond: cond, True: thenEntry.ID, False: elseEntry.ID}
		if !elseTerm && elseExit.Term == nil {
			elseExit.Term = ir.Jump{To: merge.ID}
		}
	}
	if !thenTerm && thenExit.Term == nil {
		thenExit.Term = ir.Jump{To: merge.ID}
	}
	s.cur = merge
	return false
}

// compileSplitWhile splits a while-loop into a loop-head (condition) block,
// body blocks and an after-loop block (§2.4). A condition containing
// remote calls is desugared into `while True: c = cond; if not c: break`.
func (s *splitter) compileSplitWhile(x *ast.WhileStmt) {
	if s.containsSplitCall(x.Cond) {
		tmp := s.newTmp()
		desugared := &ast.WhileStmt{
			Position: x.Position,
			Cond:     &ast.BoolLit{Position: x.Position, Value: true},
			Body: append([]ast.Stmt{
				&ast.AssignStmt{Position: x.Position,
					Target: &ast.Name{Position: x.Position, Ident: tmp},
					Value:  x.Cond},
				&ast.IfStmt{Position: x.Position,
					Cond: &ast.UnaryOp{Position: x.Position, Op: token.KwNot,
						Operand: &ast.Name{Position: x.Position, Ident: tmp}},
					Then: []ast.Stmt{&ast.BreakStmt{Position: x.Position}}},
			}, x.Body...),
		}
		s.compileSplitWhile(desugared)
		return
	}
	head := s.newBlock()
	if s.cur.Term == nil {
		s.cur.Term = ir.Jump{To: head.ID}
	}
	bodyEntry := s.newBlock()
	exit := s.newBlock()
	head.Term = ir.Branch{Cond: x.Cond, True: bodyEntry.ID, False: exit.ID}

	s.loops = append(s.loops, loopCtx{head: head.ID, exit: exit.ID})
	s.cur = bodyEntry
	terminated := s.compileStmts(x.Body)
	if !terminated && s.cur.Term == nil {
		s.cur.Term = ir.Jump{To: head.ID}
	}
	s.loops = s.loops[:len(s.loops)-1]
	s.cur = exit
}

// compileSplitFor desugars `for v in iterable` into an index-driven while
// over a hidden iterator variable, keeping track of the current iteration
// in the execution state (§2.5 "we keep track of the current iteration for
// loop control structures").
func (s *splitter) compileSplitFor(x *ast.ForStmt) {
	iterVar := s.newTmp() + "_iter"
	idxVar := s.newTmp() + "_idx"
	pos := x.Position
	name := func(n string) *ast.Name { return &ast.Name{Position: pos, Ident: n} }

	// __iter = <iterable>; __idx = 0  (iterable may itself contain calls)
	iterable := s.hoist(x.Iterable)
	s.cur.Stmts = append(s.cur.Stmts,
		&ast.AssignStmt{Position: pos, Target: name(iterVar), Value: iterable},
		&ast.AssignStmt{Position: pos, Target: name(idxVar), Value: &ast.IntLit{Position: pos}},
	)
	// while __idx < len(__iter): v = __iter[__idx]; __idx = __idx + 1; body
	loop := &ast.WhileStmt{
		Position: pos,
		Cond: &ast.BinOp{Position: pos, Op: token.LT, Left: name(idxVar),
			Right: &ast.Call{Position: pos, Func: "len", Args: []ast.Expr{name(iterVar)}}},
		Body: append([]ast.Stmt{
			&ast.AssignStmt{Position: pos, Target: name(x.Var),
				Value: &ast.Index{Position: pos, Recv: name(iterVar), Idx: name(idxVar)}},
			&ast.AssignStmt{Position: pos, Target: name(idxVar),
				Value: &ast.BinOp{Position: pos, Op: token.PLUS, Left: name(idxVar),
					Right: &ast.IntLit{Position: pos, Value: 1}}},
		}, x.Body...),
	}
	s.compileSplitWhile(loop)
}

// splitMethod runs the splitter over one method and returns its blocks.
func splitMethod(info *types.Info, needs map[string]bool, m *types.Method) ([]*ir.Block, error) {
	s := &splitter{info: info, needsSplit: needs, method: m}
	entry := s.newBlock()
	s.cur = entry
	terminated := s.compileStmts(m.Def.Body)
	if !terminated && s.cur.Term == nil {
		s.cur.Term = ir.Return{} // fall off the end -> return None
	}
	// Give every block a terminator (unreachable tails return None).
	for _, b := range s.blocks {
		if b.Term == nil {
			b.Term = ir.Return{}
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	blocks := pruneUnreachable(s.blocks)
	computeDefUse(blocks)
	return blocks, nil
}

// pruneUnreachable removes blocks not reachable from the entry and
// renumbers the survivors, fixing terminator targets.
func pruneUnreachable(blocks []*ir.Block) []*ir.Block {
	reach := map[ir.BlockID]bool{}
	var stack []ir.BlockID
	stack = append(stack, 0)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[id] {
			continue
		}
		reach[id] = true
		for _, s := range blocks[id].Term.Successors() {
			stack = append(stack, s)
		}
	}
	remap := map[ir.BlockID]ir.BlockID{}
	var out []*ir.Block
	for _, b := range blocks {
		if reach[b.ID] {
			remap[b.ID] = ir.BlockID(len(out))
			out = append(out, b)
		}
	}
	for i, b := range out {
		b.ID = ir.BlockID(i)
		switch t := b.Term.(type) {
		case ir.Jump:
			b.Term = ir.Jump{To: remap[t.To]}
		case ir.Branch:
			b.Term = ir.Branch{Cond: t.Cond, True: remap[t.True], False: remap[t.False]}
		case ir.Invoke:
			t.To = remap[t.To]
			b.Term = t
		}
	}
	// Rename to keep names dense.
	for _, b := range out {
		if idx := lastUnderscore(b.Name); idx >= 0 {
			b.Name = fmt.Sprintf("%s_%d", b.Name[:idx], b.ID)
		}
	}
	return out
}

func lastUnderscore(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '_' {
			return i
		}
	}
	return -1
}
