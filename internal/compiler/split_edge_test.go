package compiler

import (
	"strings"
	"testing"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/runtime/local"
)

// Edge-case corpus for the splitter: each program must compile, validate,
// and (where an expected value is given) execute correctly end to end on
// the Local runtime.

// runInt executes C.m(d) (plus extra args) and returns the int result.
func runInt(t *testing.T, prog *ir.Program, method string, extra ...interp.Value) int64 {
	t.Helper()
	rt := local.New(prog)
	if _, err := rt.Create("D", interp.StrV("d")); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Create("C", interp.StrV("c")); err != nil {
		t.Fatal(err)
	}
	args := append([]interp.Value{interp.RefV("D", "d")}, extra...)
	res, err := rt.Invoke("C", "c", method, args...)
	if err != nil || res.Err != "" {
		t.Fatalf("invoke: %v %s", err, res.Err)
	}
	return res.Value.I
}

const edgeHeader = `
@entity
class D:
    def __init__(self, k: str):
        self.k: str = k
        self.v: int = 0
    def __key__(self) -> str:
        return self.k
    def bump(self, by: int) -> int:
        self.v += by
        return self.v
    def get(self) -> int:
        return self.v

@entity
class C:
    def __init__(self, k: str):
        self.k: str = k
        self.acc: int = 0
    def __key__(self) -> str:
        return self.k
`

func TestNestedLoopsWithRemoteCalls(t *testing.T) {
	prog := compileWith(t, `
    def m(self, d: D) -> int:
        total: int = 0
        for i in range(3):
            for j in range(2):
                total += d.bump(1)
        return total
`)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	got := runInt(t, prog, "m")
	if got != 1+2+3+4+5+6 {
		t.Fatalf("nested loops: %d", got)
	}
}

func TestContinueInSplitLoop(t *testing.T) {
	prog := compileWith(t, `
    def m(self, d: D, xs: list[int]) -> int:
        total: int = 0
        for x in xs:
            if x == 2:
                continue
            total += d.bump(x)
        return total
`)
	got := runInt(t, prog, "m", interp.ListV(interp.IntV(1), interp.IntV(2), interp.IntV(3)))
	// bumps: 1 -> 1, skip 2, 3 -> 4. total = 5.
	if got != 5 {
		t.Fatalf("continue: %d", got)
	}
}

func TestRemoteCallInIfCondition(t *testing.T) {
	prog := compileWith(t, `
    def m(self, d: D) -> int:
        if d.bump(1) > 0:
            return 10
        return 20
`)
	if got := runInt(t, prog, "m"); got != 10 {
		t.Fatalf("if-cond call: %d", got)
	}
}

func TestRemoteCallInListLiteral(t *testing.T) {
	prog := compileWith(t, `
    def m(self, d: D) -> int:
        xs: list[int] = [d.bump(1), d.bump(1), 100]
        return xs[0] + xs[1] + xs[2]
`)
	if got := runInt(t, prog, "m"); got != 1+2+100 {
		t.Fatalf("list literal calls: %d", got)
	}
}

func TestRemoteCallInReturnExpression(t *testing.T) {
	prog := compileWith(t, `
    def m(self, d: D) -> int:
        return d.bump(2) * 10 + d.bump(1)
`)
	if got := runInt(t, prog, "m"); got != 2*10+3 {
		t.Fatalf("return expr: %d", got)
	}
}

func TestSelfStateAcrossSuspensions(t *testing.T) {
	// The caller's own state writes before a suspension must be visible
	// after the resume (state persisted, not carried in env).
	prog := compileWith(t, `
    def m(self, d: D) -> int:
        self.total = 7
        x: int = d.bump(1)
        return self.total + x
`)
	if got := runInt(t, prog, "m"); got != 8 {
		t.Fatalf("state across suspension: %d", got)
	}
}

func TestWhileLoopCounterCarried(t *testing.T) {
	// §2.5: "we keep track of the current iteration for loop control
	// structures" — the hidden loop counter must survive suspensions.
	prog := compileWith(t, `
    def m(self, d: D) -> int:
        i: int = 0
        while i < 4:
            d.bump(1)
            i += 1
        return i
`)
	if got := runInt(t, prog, "m"); got != 4 {
		t.Fatalf("loop counter: %d", got)
	}
}

func TestDeepIfElseChains(t *testing.T) {
	prog := compileWith(t, `
    def m(self, d: D, n: int) -> int:
        if n < 1:
            return d.bump(1)
        elif n < 2:
            return d.bump(2)
        elif n < 3:
            return d.bump(3)
        elif n < 4:
            return d.bump(4)
        return d.bump(5)
`)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	m := prog.MethodOf("C", "m")
	var invokes int
	for _, b := range m.Blocks {
		if _, ok := b.Term.(ir.Invoke); ok {
			invokes++
		}
	}
	if invokes != 5 {
		t.Fatalf("invokes: %d", invokes)
	}
}

func TestArgumentEvaluationOrder(t *testing.T) {
	// Python evaluates call arguments left to right: bump(1)=1 then
	// bump(10)=11.
	prog := compileWith(t, `
    def pair(self, a: int, b: int) -> int:
        return a * 1000 + b
    def m(self, d: D) -> int:
        return self.pair(d.bump(1), d.bump(10))
`)
	if got := runInt(t, prog, "m"); got != 1*1000+11 {
		t.Fatalf("evaluation order: %d", got)
	}
}

func TestSplitChainThroughThreeEntities(t *testing.T) {
	src := `
@entity
class A:
    def __init__(self, k: str):
        self.k: str = k
        self.v: int = 1
    def __key__(self) -> str:
        return self.k
    def get(self) -> int:
        return self.v

@entity
class B:
    def __init__(self, k: str):
        self.k: str = k
    def __key__(self) -> str:
        return self.k
    def via(self, a: A) -> int:
        return a.get() + 10

@entity
class C:
    def __init__(self, k: str):
        self.k: str = k
    def __key__(self) -> str:
        return self.k
    def top(self, b: B, a: A) -> int:
        return b.via(a) + 100
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	rt := local.New(prog)
	for _, cls := range []string{"A", "B", "C"} {
		if _, err := rt.Create(cls, interp.StrV("k")); err != nil {
			t.Fatal(err)
		}
	}
	res, err := rt.Invoke("C", "k", "top", interp.RefV("B", "k"), interp.RefV("A", "k"))
	if err != nil || res.Err != "" {
		t.Fatalf("%v %s", err, res.Err)
	}
	if got := res.Value.I; got != 111 {
		t.Fatalf("three-entity chain: %d", got)
	}
}

func TestCompileErrorsCarryPositions(t *testing.T) {
	_, err := Compile(edgeHeader + `
    def m(self, d: D) -> bool:
        return True and d.get() > 0
`)
	if err == nil {
		t.Fatal("expected error")
	}
	// Error strings lead with line:col.
	if !strings.Contains(err.Error(), ":") {
		t.Fatalf("no position in %q", err)
	}
	var ce *Error
	if !errorsAs(err, &ce) {
		t.Fatalf("error type: %T", err)
	}
	if ce.Pos.Line == 0 {
		t.Fatal("zero position")
	}
}

func errorsAs(err error, target **Error) bool {
	ce, ok := err.(*Error)
	if ok {
		*target = ce
	}
	return ok
}
