// Package compiler implements the StateFlow compiler pipeline (§2.1): it
// parses a stateful-entity module, runs the static analysis passes (class
// metadata extraction and call-graph construction, both in
// internal/lang/types), applies the function-splitting transformation
// (split.go), derives per-method execution state machines, and emits the
// engine-independent dataflow IR (internal/ir).
package compiler

import (
	"fmt"
	"sort"

	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/lang/ast"
	"statefulentities.dev/stateflow/internal/lang/parser"
	"statefulentities.dev/stateflow/internal/lang/types"
)

// Compile runs the full pipeline over DSL source text.
func Compile(src string) (*ir.Program, error) {
	mod, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(mod)
	if err != nil {
		return nil, err
	}
	prog, err := CompileChecked(info)
	if err != nil {
		return nil, err
	}
	prog.Source = src
	return prog, nil
}

// MustCompile is Compile that panics on error, for tests and examples.
func MustCompile(src string) *ir.Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// CompileChecked lowers a type-checked module to IR.
func CompileChecked(info *types.Info) (*ir.Program, error) {
	for _, name := range info.Order {
		cls := info.Classes[name]
		if !cls.Entity {
			return nil, &Error{Pos: cls.Def.Pos(), Msg: fmt.Sprintf(
				"class %s is not an entity; annotate it with @entity to compile it into a dataflow operator", name)}
		}
	}
	needs := computeNeedsSplit(info)
	ro := computeReadOnly(info)

	prog := &ir.Program{Operators: map[string]*ir.Operator{}}
	for _, name := range info.Order {
		cls := info.Classes[name]
		op, err := compileClass(info, needs, ro, cls)
		if err != nil {
			return nil, err
		}
		prog.Operators[name] = op
		prog.OperatorOrder = append(prog.OperatorOrder, name)
	}
	prog.Edges = buildEdges(prog)
	computeLayouts(prog)
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// computeNeedsSplit decides, transitively, which methods must be split: a
// method needs splitting if it contains a call that leaves the operator
// (remote call or constructor) or a self-call to a method that needs
// splitting. Terminates because recursion is rejected by the checker.
func computeNeedsSplit(info *types.Info) map[string]bool {
	needs := map[string]bool{}
	selfCalls := map[string][]string{} // qualified -> self-callee qualified
	for _, cn := range info.Order {
		cls := info.Classes[cn]
		for _, mn := range cls.MethodOrder {
			m := cls.Methods[mn]
			q := m.QName()
			ast.WalkStmts(m.Def.Body, func(s ast.Stmt) {
				for _, e := range ast.ExprsOf(s) {
					ast.WalkExpr(e, func(x ast.Expr) bool {
						call, ok := x.(*ast.Call)
						if !ok {
							return true
						}
						tgt, resolved := info.Calls[call]
						if !resolved {
							return true
						}
						if tgt.Ctor || tgt.Remote {
							needs[q] = true
						} else {
							selfCalls[q] = append(selfCalls[q], tgt.Class+"."+tgt.Method)
						}
						return true
					})
				}
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for q, callees := range selfCalls {
			if needs[q] {
				continue
			}
			for _, c := range callees {
				if needs[c] {
					needs[q] = true
					changed = true
					break
				}
			}
		}
	}
	return needs
}

// computeReadOnly decides, transitively, which methods never write entity
// state. Conservative across calls: a method is read-only only if it has
// no state writes and every method it calls (locally or remotely) is
// read-only too.
func computeReadOnly(info *types.Info) map[string]bool {
	writes := map[string]bool{}
	calls := map[string][]string{}
	for _, cn := range info.Order {
		cls := info.Classes[cn]
		for _, mn := range cls.MethodOrder {
			m := cls.Methods[mn]
			q := m.QName()
			ast.WalkStmts(m.Def.Body, func(s ast.Stmt) {
				var target ast.Expr
				switch st := s.(type) {
				case *ast.AssignStmt:
					target = st.Target
				case *ast.AugAssignStmt:
					target = st.Target
				}
				if attr, ok := target.(*ast.Attr); ok {
					if _, isSelf := attr.Recv.(*ast.SelfRef); isSelf {
						writes[q] = true
					}
				}
				for _, e := range ast.ExprsOf(s) {
					ast.WalkExpr(e, func(x ast.Expr) bool {
						if call, ok := x.(*ast.Call); ok {
							if tgt, resolved := info.Calls[call]; resolved {
								if tgt.Ctor {
									writes[q] = true // creates state
								} else {
									calls[q] = append(calls[q], tgt.Class+"."+tgt.Method)
								}
							}
						}
						return true
					})
				}
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for q, callees := range calls {
			if writes[q] {
				continue
			}
			for _, c := range callees {
				if writes[c] {
					writes[q] = true
					changed = true
					break
				}
			}
		}
	}
	ro := map[string]bool{}
	for _, cn := range info.Order {
		cls := info.Classes[cn]
		for _, mn := range cls.MethodOrder {
			q := cls.Methods[mn].QName()
			ro[q] = !writes[q]
		}
	}
	return ro
}

func typeRef(t *types.Type) ir.TypeRef {
	if t == nil {
		return ir.TypeRef{Name: "None"}
	}
	switch t.Kind {
	case types.KInt:
		return ir.TypeRef{Name: "int"}
	case types.KFloat:
		return ir.TypeRef{Name: "float"}
	case types.KStr:
		return ir.TypeRef{Name: "str"}
	case types.KBool:
		return ir.TypeRef{Name: "bool"}
	case types.KNone:
		return ir.TypeRef{Name: "None"}
	case types.KAny:
		return ir.TypeRef{Name: "any"}
	case types.KList:
		return ir.TypeRef{Name: "list", Args: []ir.TypeRef{typeRef(t.Elem)}}
	case types.KDict:
		return ir.TypeRef{Name: "dict", Args: []ir.TypeRef{typeRef(t.Key), typeRef(t.Elem)}}
	case types.KEntity:
		return ir.TypeRef{Name: t.Entity, Entity: true}
	default:
		return ir.TypeRef{Name: "invalid"}
	}
}

func compileClass(info *types.Info, needs, ro map[string]bool, cls *types.Class) (*ir.Operator, error) {
	op := &ir.Operator{
		Name:    cls.Name,
		KeyAttr: cls.KeyAttr,
		Methods: map[string]*ir.Method{},
	}
	for _, a := range cls.Attrs {
		op.Attrs = append(op.Attrs, ir.Field{Name: a.Name, Type: typeRef(a.Type)})
	}
	init := cls.Methods["__init__"]
	if needs[init.QName()] {
		return nil, &Error{Pos: init.Def.Pos(), Msg: fmt.Sprintf(
			"%s.__init__ must not perform remote calls", cls.Name)}
	}
	keyParam, err := findKeyParam(cls, init)
	if err != nil {
		return nil, err
	}
	op.KeyParam = keyParam

	for _, mn := range cls.MethodOrder {
		m := cls.Methods[mn]
		im := &ir.Method{
			Name:          m.Name,
			Returns:       typeRef(m.Returns),
			Transactional: m.Transactional,
			ReadOnly:      ro[m.QName()],
			Body:          m.Def.Body,
		}
		for _, p := range m.Params {
			im.Params = append(im.Params, ir.Field{Name: p.Name, Type: typeRef(p.Type)})
		}
		if needs[m.QName()] {
			blocks, err := splitMethod(info, needs, m)
			if err != nil {
				return nil, err
			}
			im.Blocks = blocks
		} else {
			im.Simple = true
			b := &ir.Block{ID: 0, Name: m.Name + "_0", Stmts: m.Def.Body, Term: ir.Return{}}
			im.Blocks = []*ir.Block{b}
			computeDefUse(im.Blocks)
		}
		im.SM = ir.BuildStateMachine(im.Blocks)
		op.Methods[mn] = im
		op.MethodOrder = append(op.MethodOrder, mn)
	}
	return op, nil
}

// findKeyParam locates the __init__ parameter that directly initializes the
// key attribute. The routing layer needs it to partition constructor calls
// before the entity exists (§2.2/§2.3).
func findKeyParam(cls *types.Class, init *types.Method) (string, error) {
	if cls.KeyAttr == "" {
		return "", &Error{Pos: cls.Def.Pos(), Msg: fmt.Sprintf("entity %s has no key attribute", cls.Name)}
	}
	for _, s := range init.Def.Body {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			continue
		}
		attr, ok := as.Target.(*ast.Attr)
		if !ok || attr.Field != cls.KeyAttr {
			continue
		}
		if name, ok := as.Value.(*ast.Name); ok {
			if _, isParam := init.Param(name.Ident); isParam {
				return name.Ident, nil
			}
		}
		return "", &Error{Pos: as.Pos(), Msg: fmt.Sprintf(
			"%s.__init__ must assign the key attribute self.%s directly from a parameter so constructor calls can be routed", cls.Name, cls.KeyAttr)}
	}
	return "", &Error{Pos: init.Def.Pos(), Msg: fmt.Sprintf(
		"%s.__init__ never assigns the key attribute self.%s", cls.Name, cls.KeyAttr)}
}

// buildEdges assembles the logical dataflow graph (Figure 2): the ingress
// router fans out to every operator, every operator reaches the egress
// router, and each cross-operator call adds an operator-to-operator edge.
func buildEdges(prog *ir.Program) []ir.Edge {
	var edges []ir.Edge
	seen := map[string]bool{}
	add := func(e ir.Edge) {
		k := e.From + "\x00" + e.To + "\x00" + e.Label
		if !seen[k] {
			seen[k] = true
			edges = append(edges, e)
		}
	}
	for _, name := range prog.OperatorOrder {
		add(ir.Edge{From: "ingress", To: name})
		add(ir.Edge{From: name, To: "egress"})
	}
	for _, name := range prog.OperatorOrder {
		op := prog.Operators[name]
		for _, mn := range op.MethodOrder {
			m := op.Methods[mn]
			for _, b := range m.Blocks {
				if inv, ok := b.Term.(ir.Invoke); ok && inv.Class != name {
					add(ir.Edge{From: name, To: inv.Class,
						Label: fmt.Sprintf("%s.%s -> %s.%s", name, mn, inv.Class, inv.Method)})
				}
			}
		}
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Label < edges[j].Label
	})
	return edges
}
