// Layout computation and slot stamping: the final compiler pass. The
// static analysis already determined every class's attribute set and —
// via the splitter's def/use analysis — every method's variable set, so
// this pass lowers both to dense integer layouts (ir.ClassLayout and
// ir.FrameLayout) and stamps 1-based slot indices directly into the AST
// nodes the interpreter executes (ast.Name.Slot, ast.Attr.Slot,
// ast.ForStmt.VarSlot). Runtimes then read and write variables and
// attributes by slice index instead of hashing names on every access.
package compiler

import (
	"sort"

	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/lang/ast"
)

// computeLayouts builds and stamps all layouts for a compiled program.
func computeLayouts(prog *ir.Program) {
	for classID, name := range prog.OperatorOrder {
		op := prog.Operators[name]
		attrs := make([]string, len(op.Attrs))
		for i, a := range op.Attrs {
			attrs[i] = a.Name
		}
		op.Layout = ir.NewClassLayout(name, classID, attrs)
		for _, mn := range op.MethodOrder {
			m := op.Methods[mn]
			m.Frame = frameLayout(m)
			stampMethod(m, op.Layout)
		}
	}
}

// frameLayout collects every variable a method can read or write —
// parameters, assignment targets, loop variables, splitter temporaries,
// invoke result targets, and plain reads (which must resolve to a slot so
// the undefined-variable check stays cheap) — and assigns dense slots:
// parameters first in declaration order, the rest sorted for determinism.
func frameLayout(m *ir.Method) *ir.FrameLayout {
	seen := map[string]bool{}
	var vars []string
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			vars = append(vars, n)
		}
	}
	for _, p := range m.Params {
		add(p.Name)
	}
	nParams := len(vars)
	collect := func(e ast.Expr) {
		ast.WalkExpr(e, func(x ast.Expr) bool {
			if n, ok := x.(*ast.Name); ok {
				add(n.Ident)
			}
			return true
		})
	}
	walkStmts := func(stmts []ast.Stmt) {
		ast.WalkStmts(stmts, func(s ast.Stmt) {
			if f, ok := s.(*ast.ForStmt); ok {
				add(f.Var)
			}
			for _, e := range ast.ExprsOf(s) {
				collect(e)
			}
		})
	}
	walkStmts(m.Body)
	for _, b := range m.Blocks {
		walkStmts(b.Stmts)
		switch t := b.Term.(type) {
		case ir.Return:
			collect(t.Value)
		case ir.Branch:
			collect(t.Cond)
		case ir.Invoke:
			collect(t.Recv)
			for _, a := range t.Args {
				collect(a)
			}
			add(t.AssignTo)
		}
		// Defensive: liveness results are derived from the same ASTs, but
		// keep the layout a superset of whatever the runtime prunes by.
		for _, v := range b.Params {
			add(v)
		}
		for _, v := range b.Defines {
			add(v)
		}
		for _, v := range b.LiveOut {
			add(v)
		}
	}
	sort.Strings(vars[nParams:])
	return ir.NewFrameLayout(vars)
}

// stampMethod writes slot indices into every AST node of the method: both
// the pre-split Body (executed by simple methods, __init__ and inline
// self-calls) and the split blocks (which share and extend those nodes).
func stampMethod(m *ir.Method, cl *ir.ClassLayout) {
	fl := m.Frame
	stampExpr := func(e ast.Expr) {
		ast.WalkExpr(e, func(x ast.Expr) bool {
			switch n := x.(type) {
			case *ast.Name:
				if s, ok := fl.SlotOf(n.Ident); ok {
					n.Slot = s + 1
				}
			case *ast.Attr:
				if _, isSelf := n.Recv.(*ast.SelfRef); isSelf {
					if s, ok := cl.SlotOf(n.Field); ok {
						n.Slot = s + 1
					}
				}
			}
			return true
		})
	}
	stampStmts := func(stmts []ast.Stmt) {
		ast.WalkStmts(stmts, func(s ast.Stmt) {
			if f, ok := s.(*ast.ForStmt); ok {
				if slot, ok := fl.SlotOf(f.Var); ok {
					f.VarSlot = slot + 1
				}
			}
			for _, e := range ast.ExprsOf(s) {
				stampExpr(e)
			}
		})
	}
	stampStmts(m.Body)
	for _, b := range m.Blocks {
		stampStmts(b.Stmts)
		switch t := b.Term.(type) {
		case ir.Return:
			stampExpr(t.Value)
		case ir.Branch:
			stampExpr(t.Cond)
		case ir.Invoke:
			stampExpr(t.Recv)
			for _, a := range t.Args {
				stampExpr(a)
			}
		}
	}
}
