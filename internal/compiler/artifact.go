// Compiled-program artifacts: a portable on-disk form of the IR. Because
// the dataflow graph embeds AST nodes, the artifact stores the program
// source plus the IR's structural metadata; loading re-runs the (fast,
// deterministic) pipeline and cross-checks the result against the stored
// metadata, so a stale artifact compiled by a different version is
// rejected instead of silently diverging. This is what makes applications
// deployable to a runtime without shipping the compiler invocation (§3:
// compile once, deploy to any engine).
package compiler

import (
	"encoding/json"
	"fmt"

	"statefulentities.dev/stateflow/internal/ir"
)

// artifactVersion guards the on-disk format.
const artifactVersion = 1

// artifact is the serialized form.
type artifact struct {
	Version int    `json:"version"`
	Source  string `json:"source"`
	// Fingerprint pins the expected compilation result.
	Fingerprint fingerprint `json:"fingerprint"`
}

type fingerprint struct {
	Operators   int `json:"operators"`
	Methods     int `json:"methods"`
	Blocks      int `json:"blocks"`
	Transitions int `json:"transitions"`
	Edges       int `json:"edges"`
}

func fingerprintOf(p *ir.Program) fingerprint {
	st := p.Stats()
	return fingerprint{
		Operators:   st.Operators,
		Methods:     st.Methods,
		Blocks:      st.Blocks,
		Transitions: st.Transitions,
		Edges:       st.Edges,
	}
}

// SaveArtifact serializes a compiled program. The program must have been
// produced by Compile (it needs the embedded source).
func SaveArtifact(p *ir.Program) ([]byte, error) {
	if p.Source == "" {
		return nil, fmt.Errorf("compiler: program has no embedded source; compile with Compile")
	}
	return json.MarshalIndent(artifact{
		Version:     artifactVersion,
		Source:      p.Source,
		Fingerprint: fingerprintOf(p),
	}, "", "  ")
}

// LoadArtifact recompiles a saved artifact and verifies it matches the
// fingerprint recorded at save time.
func LoadArtifact(data []byte) (*ir.Program, error) {
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("compiler: malformed artifact: %w", err)
	}
	if a.Version != artifactVersion {
		return nil, fmt.Errorf("compiler: artifact version %d not supported (want %d)", a.Version, artifactVersion)
	}
	prog, err := Compile(a.Source)
	if err != nil {
		return nil, fmt.Errorf("compiler: artifact source no longer compiles: %w", err)
	}
	if got := fingerprintOf(prog); got != a.Fingerprint {
		return nil, fmt.Errorf("compiler: artifact fingerprint mismatch: compiled %+v, recorded %+v", got, a.Fingerprint)
	}
	return prog, nil
}
