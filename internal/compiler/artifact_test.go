package compiler

import (
	"strings"
	"testing"
)

func TestArtifactRoundTrip(t *testing.T) {
	prog := compileFig1(t)
	data, err := SaveArtifact(prog)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != prog.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", back.Stats(), prog.Stats())
	}
	if back.Operator("User").KeyAttr != "username" {
		t.Fatal("reloaded program lost structure")
	}
}

func TestArtifactRequiresSource(t *testing.T) {
	prog := compileFig1(t)
	prog.Source = ""
	if _, err := SaveArtifact(prog); err == nil {
		t.Fatal("expected missing-source error")
	}
}

func TestArtifactRejectsGarbage(t *testing.T) {
	if _, err := LoadArtifact([]byte("not json")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestArtifactRejectsWrongVersion(t *testing.T) {
	prog := compileFig1(t)
	data, err := SaveArtifact(prog)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if _, err := LoadArtifact([]byte(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestArtifactRejectsTamperedFingerprint(t *testing.T) {
	prog := compileFig1(t)
	data, err := SaveArtifact(prog)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), `"blocks": `, `"blocks": 9`, 1)
	if _, err := LoadArtifact([]byte(bad)); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("want fingerprint error, got %v", err)
	}
}

func TestArtifactRejectsBrokenSource(t *testing.T) {
	prog := compileFig1(t)
	data, err := SaveArtifact(prog)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), "buy_item", "buy item", 1)
	if _, err := LoadArtifact([]byte(bad)); err == nil {
		t.Fatal("want compile error")
	}
}
