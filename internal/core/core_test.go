package core

import (
	"strings"
	"testing"

	"statefulentities.dev/stateflow/internal/compiler"
	"statefulentities.dev/stateflow/internal/interp"
)

const src = `
@entity
class Counter:
    def __init__(self, name: str):
        self.name: str = name
        self.n: int = 0

    def __key__(self) -> str:
        return self.name

    def bump(self, by: int) -> int:
        self.n += by
        return self.n

@entity
class Driver:
    def __init__(self, name: str):
        self.name: str = name

    def __key__(self) -> str:
        return self.name

    def double_bump(self, c: Counter) -> int:
        a: int = c.bump(1)
        b: int = c.bump(1)
        return a + b

    def mk(self, name: str) -> int:
        c: Counter = Counter(name)
        return c.bump(5)
`

type memStore map[interp.EntityRef]interp.MapState

func (m memStore) Lookup(ref interp.EntityRef) (interp.State, bool) {
	st, ok := m[ref]
	return st, ok
}

func (m memStore) Create(ref interp.EntityRef) (interp.State, error) {
	if _, dup := m[ref]; dup {
		return nil, errDup{}
	}
	st := interp.MapState{}
	m[ref] = st
	return st, nil
}

type errDup struct{}

func (errDup) Error() string { return "entity already exists" }

func newExec(t *testing.T) (*Executor, memStore) {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	store := memStore{}
	store[interp.EntityRef{Class: "Counter", Key: "c"}] = interp.MapState{
		"name": interp.StrV("c"), "n": interp.IntV(0),
	}
	store[interp.EntityRef{Class: "Driver", Key: "d"}] = interp.MapState{
		"name": interp.StrV("d"),
	}
	return NewExecutor(prog), store
}

// drive pushes events through Step until the response, returning it and
// the trace of event kinds.
func drive(t *testing.T, ex *Executor, store memStore, ev *Event) (*Event, []EventKind) {
	t.Helper()
	queue := []*Event{ev}
	var kinds []EventKind
	for steps := 0; len(queue) > 0; steps++ {
		if steps > 1000 {
			t.Fatal("event loop runaway")
		}
		cur := queue[0]
		queue = queue[1:]
		kinds = append(kinds, cur.Kind)
		if cur.Kind == EvResponse {
			return cur, kinds
		}
		out, err := ex.Step(cur, store)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		queue = append(queue, out...)
	}
	t.Fatal("no response")
	return nil, nil
}

func TestSuspendResumeCycle(t *testing.T) {
	ex, store := newExec(t)
	resp, kinds := drive(t, ex, store, &Event{
		Kind:   EvInvoke,
		Req:    "r1",
		Target: interp.EntityRef{Class: "Driver", Key: "d"},
		Method: "double_bump",
		Args:   []interp.Value{interp.RefV("Counter", "c")},
	})
	if resp.Err != "" {
		t.Fatalf("error: %s", resp.Err)
	}
	if resp.Value.I != 3 { // 1 + 2
		t.Fatalf("value: %v", resp.Value)
	}
	// Event trace: invoke(driver) -> invoke(counter) -> resume(driver) ->
	// invoke(counter) -> resume(driver) -> response.
	want := []EventKind{EvInvoke, EvInvoke, EvResume, EvInvoke, EvResume, EvResponse}
	if len(kinds) != len(want) {
		t.Fatalf("trace: %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace[%d]: %s want %s (%v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestHopCounting(t *testing.T) {
	ex, store := newExec(t)
	resp, _ := drive(t, ex, store, &Event{
		Kind:   EvInvoke,
		Req:    "r1",
		Target: interp.EntityRef{Class: "Driver", Key: "d"},
		Method: "double_bump",
		Args:   []interp.Value{interp.RefV("Counter", "c")},
	})
	if resp.Hops != 4 {
		t.Fatalf("hops: %d", resp.Hops)
	}
}

func TestConstructorRouting(t *testing.T) {
	ex, store := newExec(t)
	key, err := ex.KeyForCtor("Counter", []interp.Value{interp.StrV("fresh")})
	if err != nil || key != "fresh" {
		t.Fatalf("ctor key: %q %v", key, err)
	}
	resp, _ := drive(t, ex, store, &Event{
		Kind:   EvInvoke,
		Req:    "r2",
		Target: interp.EntityRef{Class: "Driver", Key: "d"},
		Method: "mk",
		Args:   []interp.Value{interp.StrV("fresh")},
	})
	if resp.Err != "" || resp.Value.I != 5 {
		t.Fatalf("mk: %+v", resp)
	}
	if _, ok := store[interp.EntityRef{Class: "Counter", Key: "fresh"}]; !ok {
		t.Fatal("constructed entity missing")
	}
}

func TestKeyForCtorErrors(t *testing.T) {
	ex, _ := newExec(t)
	if _, err := ex.KeyForCtor("Nope", nil); err == nil {
		t.Fatal("unknown class")
	}
	if _, err := ex.KeyForCtor("Counter", nil); err == nil {
		t.Fatal("missing args")
	}
	if _, err := ex.KeyForCtor("Counter", []interp.Value{interp.ListV()}); err == nil {
		t.Fatal("unhashable key")
	}
	if k, err := ex.KeyForCtor("Counter", []interp.Value{interp.IntV(7)}); err != nil || k != "7" {
		t.Fatalf("int key: %q %v", k, err)
	}
}

func TestUnknownMethodAndEntityErrors(t *testing.T) {
	ex, store := newExec(t)
	resp, _ := drive(t, ex, store, &Event{
		Kind: EvInvoke, Req: "r", Target: interp.EntityRef{Class: "Counter", Key: "c"},
		Method: "nope",
	})
	if !strings.Contains(resp.Err, "unknown method") {
		t.Fatalf("err: %q", resp.Err)
	}
	resp, _ = drive(t, ex, store, &Event{
		Kind: EvInvoke, Req: "r", Target: interp.EntityRef{Class: "Counter", Key: "ghost"},
		Method: "bump", Args: []interp.Value{interp.IntV(1)},
	})
	if !strings.Contains(resp.Err, "does not exist") {
		t.Fatalf("err: %q", resp.Err)
	}
	resp, _ = drive(t, ex, store, &Event{
		Kind: EvInvoke, Req: "r", Target: interp.EntityRef{Class: "Ghost", Key: "x"},
		Method: "m",
	})
	if !strings.Contains(resp.Err, "unknown operator") {
		t.Fatalf("err: %q", resp.Err)
	}
}

func TestArgCountError(t *testing.T) {
	ex, store := newExec(t)
	resp, _ := drive(t, ex, store, &Event{
		Kind: EvInvoke, Req: "r", Target: interp.EntityRef{Class: "Counter", Key: "c"},
		Method: "bump",
	})
	if resp.Err == "" {
		t.Fatal("expected arity error")
	}
}

func TestContextEnvPruning(t *testing.T) {
	// After suspension, the carried frame env must contain only live-out
	// variables (§2.4/§2.5 intermediate results), not everything ever
	// defined.
	ex, store := newExec(t)
	ev := &Event{
		Kind:   EvInvoke,
		Req:    "r1",
		Target: interp.EntityRef{Class: "Driver", Key: "d"},
		Method: "double_bump",
		Args:   []interp.Value{interp.RefV("Counter", "c")},
	}
	out, err := ex.Step(ev, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Kind != EvInvoke {
		t.Fatalf("outputs: %+v", out)
	}
	fr := out[0].Ctx.Top()
	if fr == nil {
		t.Fatal("no suspended frame")
	}
	// Frame belongs to the driver awaiting the first bump; only `c` is
	// live (needed for the second bump; `a` arrives via AssignTo).
	if _, ok := fr.Env.Get("c"); !ok {
		t.Fatalf("live var c missing: %v", fr.Env.ToEnv())
	}
	if fr.AssignTo != "a" {
		t.Fatalf("assign-to: %q", fr.AssignTo)
	}
}

func TestContextClone(t *testing.T) {
	ctx := &Context{Req: "r", Stack: []Frame{{
		Ref: interp.EntityRef{Class: "A", Key: "k"}, Method: "m", Block: 2,
		Env: interp.FrameFromEnv(nil, interp.Env{"x": interp.ListV(interp.IntV(1))}), AssignTo: "y",
	}}}
	cl := ctx.Clone()
	clx, _ := cl.Stack[0].Env.Get("x")
	clx.L.Elems[0] = interp.IntV(99)
	ox, _ := ctx.Stack[0].Env.Get("x")
	if ox.L.Elems[0].I != 1 {
		t.Fatal("clone must deep-copy envs")
	}
	if cl.Top().Method != "m" || cl.Req != "r" {
		t.Fatal("clone fields")
	}
	var empty *Context = &Context{}
	if empty.Top() != nil {
		t.Fatal("empty context top")
	}
}

func TestEventKindString(t *testing.T) {
	if EvInvoke.String() != "invoke" || EvResume.String() != "resume" || EvResponse.String() != "response" {
		t.Fatal("kind names")
	}
	if !strings.Contains(EventKind(42).String(), "42") {
		t.Fatal("unknown kind")
	}
}
