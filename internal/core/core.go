// Package core implements the engine-independent operator logic of
// stateful entities: given an incoming event (a method invocation or the
// return value of a suspended call) and access to the local partition's
// state, it drives the method's execution state machine (§2.5) until the
// method either completes — producing a response event for the caller or
// the egress router — or suspends at a remote call, producing an
// invocation event for another operator (§2.3, §2.4).
//
// Every runtime (local, StateFlow, StateFun-model) wraps this package with
// its own transport, scheduling, consistency and fault-tolerance layers;
// the execution semantics live here exactly once.
package core

import (
	"fmt"
	"strconv"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/ir"
)

// Frame is one suspended method activation inside an execution context.
type Frame struct {
	Ref      interp.EntityRef // entity executing the method
	Method   string
	Block    ir.BlockID // block to run when the frame (re)gains control
	Env      *interp.Frame
	AssignTo string // variable receiving the pending call's return value
}

// Context is the execution state machine instance inserted into
// function-calling events (§2.5): the stack of suspended frames plus the
// root request identity. The execution graph's intermediate results are
// the frames' environments.
type Context struct {
	Req   string // root request id (assigned by the ingress router)
	Stack []Frame
}

// Top returns the innermost frame.
func (c *Context) Top() *Frame {
	if len(c.Stack) == 0 {
		return nil
	}
	return &c.Stack[len(c.Stack)-1]
}

// Clone deep-copies the context so suspended continuations are isolated.
func (c *Context) Clone() *Context {
	out := &Context{Req: c.Req, Stack: make([]Frame, len(c.Stack))}
	for i, f := range c.Stack {
		out.Stack[i] = Frame{Ref: f.Ref, Method: f.Method, Block: f.Block,
			Env: f.Env.Clone(), AssignTo: f.AssignTo}
	}
	return out
}

// EventKind discriminates dataflow events.
type EventKind int

// Event kinds.
const (
	// EvInvoke asks the target operator to run a method (or __init__).
	EvInvoke EventKind = iota
	// EvResume delivers the return value of a completed call back to the
	// suspended caller frame.
	EvResume
	// EvResponse carries the root method's return value (or error) to the
	// egress router and then to the client.
	EvResponse
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvInvoke:
		return "invoke"
	case EvResume:
		return "resume"
	case EvResponse:
		return "response"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is the payload message flowing through the dataflow graph
// (Figure 2). Runtimes wrap it in their own transport envelopes.
type Event struct {
	Kind   EventKind
	Req    string           // root request id
	Target interp.EntityRef // routing target (operator + key)
	Method string           // EvInvoke: method to run
	Args   []interp.Value   // EvInvoke: evaluated arguments
	Value  interp.Value     // EvResume/EvResponse: returned value
	Err    string           // EvResponse: execution error, if any
	Ctx    *Context         // suspended caller stack (nil for simple root calls)
	// Hops counts operator-to-operator transfers for this request; cost
	// models and tests use it to assert routing behaviour.
	Hops int
}

// Store gives the executor access to the entity states of the local
// partition. Implementations decide how state is kept (HashMap, snapshot-
// backed store, transactional workspace) and may track reads and writes.
type Store interface {
	// Lookup returns the state of an existing entity, or ok=false.
	Lookup(ref interp.EntityRef) (interp.State, bool)
	// Create allocates empty state for a new entity. It fails if the
	// entity already exists.
	Create(ref interp.EntityRef) (interp.State, error)
}

// Executor drives entity execution for one compiled program.
type Executor struct {
	prog *ir.Program
	in   *interp.Interp
}

// NewExecutor builds an executor over a program.
func NewExecutor(prog *ir.Program) *Executor {
	return &Executor{prog: prog, in: interp.New(prog)}
}

// Program returns the compiled program.
func (ex *Executor) Program() *ir.Program { return ex.prog }

// Interp exposes the interpreter (used by runtimes for auxiliary
// evaluation).
func (ex *Executor) Interp() *interp.Interp { return ex.in }

// KeyForCtor extracts the routing key for a constructor invocation from
// its argument list using the operator's key parameter (§2.2: the routing
// mechanism partitions by key before the entity exists).
func (ex *Executor) KeyForCtor(class string, args []interp.Value) (string, error) {
	op := ex.prog.Operator(class)
	if op == nil {
		return "", fmt.Errorf("core: unknown class %s", class)
	}
	init := op.Method("__init__")
	for i, p := range init.Params {
		if p.Name == op.KeyParam {
			if i >= len(args) {
				return "", fmt.Errorf("core: missing key argument for %s", class)
			}
			return keyString(args[i])
		}
	}
	return "", fmt.Errorf("core: class %s has no key parameter", class)
}

func keyString(v interp.Value) (string, error) {
	switch v.Kind {
	case interp.KStr:
		return v.S, nil
	case interp.KInt:
		return strconv.FormatInt(v.I, 10), nil
	default:
		return "", fmt.Errorf("core: key must be str or int, got %s", v.Kind)
	}
}

// Step processes one event addressed to this operator partition and
// returns the events it produces. The store must hold the state for
// ev.Target's partition. Step never blocks: a remote call suspends the
// context and emits an invocation event (§2.3: "a streaming dataflow
// should never stop and wait for a remote function").
func (ex *Executor) Step(ev *Event, store Store) ([]*Event, error) {
	switch ev.Kind {
	case EvInvoke:
		return ex.stepInvoke(ev, store)
	case EvResume:
		return ex.stepResume(ev, store)
	default:
		return nil, fmt.Errorf("core: operator received %s event", ev.Kind)
	}
}

func (ex *Executor) stepInvoke(ev *Event, store Store) ([]*Event, error) {
	op := ex.prog.Operator(ev.Target.Class)
	if op == nil {
		return ex.fail(ev.Ctx, ev.Req, fmt.Sprintf("unknown operator %s", ev.Target.Class), ev.Hops)
	}
	if ev.Method == "__init__" {
		return ex.stepInit(ev, store)
	}
	m := op.Method(ev.Method)
	if m == nil {
		return ex.fail(ev.Ctx, ev.Req, fmt.Sprintf("unknown method %s.%s", ev.Target.Class, ev.Method), ev.Hops)
	}
	st, ok := store.Lookup(ev.Target)
	if !ok {
		return ex.fail(ev.Ctx, ev.Req, fmt.Sprintf("entity %s does not exist", ev.Target), ev.Hops)
	}
	env, err := interp.BindParams(m, ev.Args)
	if err != nil {
		return ex.fail(ev.Ctx, ev.Req, err.Error(), ev.Hops)
	}
	// Fast path for root calls to simple methods: the single
	// return-terminated block cannot suspend, so no execution context
	// needs to be allocated.
	if m.Simple && ev.Ctx == nil && len(m.Blocks) == 1 {
		if t, ok := m.Blocks[0].Term.(ir.Return); ok {
			res, err := ex.in.ExecBlock(ev.Target.Class, ev.Target.Key, m.Blocks[0], env, st)
			if err != nil {
				return ex.fail(nil, ev.Req, err.Error(), ev.Hops)
			}
			v := res.Value
			if !res.Returned {
				v, err = ex.in.Eval(ev.Target.Class, ev.Target.Key, t.Value, env, st)
				if err != nil {
					return ex.fail(nil, ev.Req, err.Error(), ev.Hops)
				}
			}
			return ex.complete(nil, ev.Req, v, ev.Hops)
		}
	}
	ctx := ev.Ctx
	if ctx == nil {
		ctx = &Context{Req: ev.Req}
	}
	ctx.Stack = append(ctx.Stack, Frame{
		Ref: ev.Target, Method: ev.Method, Block: 0, Env: env,
	})
	return ex.run(ctx, m, st, store, ev.Hops)
}

func (ex *Executor) stepInit(ev *Event, store Store) ([]*Event, error) {
	st, err := store.Create(ev.Target)
	if err != nil {
		return ex.fail(ev.Ctx, ev.Req, err.Error(), ev.Hops)
	}
	// ExecInit binds the parameters itself (including the arity check).
	if err := ex.in.ExecInit(ev.Target.Class, ev.Args, st); err != nil {
		return ex.fail(ev.Ctx, ev.Req, err.Error(), ev.Hops)
	}
	// The constructor's value is a reference to the new entity.
	return ex.complete(ev.Ctx, ev.Req, interp.RefV(ev.Target.Class, ev.Target.Key), ev.Hops)
}

func (ex *Executor) stepResume(ev *Event, store Store) ([]*Event, error) {
	ctx := ev.Ctx
	fr := ctx.Top()
	if fr == nil {
		return nil, fmt.Errorf("core: resume with empty context (req %s)", ev.Req)
	}
	if fr.Ref != ev.Target {
		return nil, fmt.Errorf("core: resume routed to %s but frame belongs to %s", ev.Target, fr.Ref)
	}
	st, ok := store.Lookup(fr.Ref)
	if !ok {
		return ex.fail(popFrame(ctx), ev.Req, fmt.Sprintf("entity %s vanished", fr.Ref), ev.Hops)
	}
	if fr.AssignTo != "" {
		fr.Env.Set(fr.AssignTo, ev.Value)
	}
	fr.AssignTo = ""
	m := ex.prog.MethodOf(fr.Ref.Class, fr.Method)
	if m == nil {
		return nil, fmt.Errorf("core: method %s.%s missing on resume", fr.Ref.Class, fr.Method)
	}
	return ex.run(ctx, m, st, store, ev.Hops)
}

// run executes the top frame's state machine until it suspends or
// completes, staying inside this operator partition.
func (ex *Executor) run(ctx *Context, m *ir.Method, st interp.State, store Store, hops int) ([]*Event, error) {
	fr := ctx.Top()
	for steps := 0; ; steps++ {
		if steps > 1_000_000 {
			return nil, fmt.Errorf("core: state machine exceeded step bound in %s.%s", fr.Ref.Class, fr.Method)
		}
		b := m.Block(fr.Block)
		if b == nil {
			return nil, fmt.Errorf("core: missing block %d in %s.%s", fr.Block, fr.Ref.Class, fr.Method)
		}
		res, err := ex.in.ExecBlock(fr.Ref.Class, fr.Ref.Key, b, fr.Env, st)
		if err != nil {
			return ex.fail(popFrame(ctx), ctx.Req, err.Error(), hops)
		}
		if res.Returned {
			return ex.complete(popFrame(ctx), ctx.Req, res.Value, hops)
		}
		switch t := b.Term.(type) {
		case ir.Return:
			v, err := ex.in.Eval(fr.Ref.Class, fr.Ref.Key, t.Value, fr.Env, st)
			if err != nil {
				return ex.fail(popFrame(ctx), ctx.Req, err.Error(), hops)
			}
			return ex.complete(popFrame(ctx), ctx.Req, v, hops)
		case ir.Jump:
			fr.Block = t.To
		case ir.Branch:
			cond, err := ex.in.Eval(fr.Ref.Class, fr.Ref.Key, t.Cond, fr.Env, st)
			if err != nil {
				return ex.fail(popFrame(ctx), ctx.Req, err.Error(), hops)
			}
			if cond.IsTruthy() {
				fr.Block = t.True
			} else {
				fr.Block = t.False
			}
		case ir.Invoke:
			return ex.suspend(ctx, fr, b, t, st, hops)
		default:
			return nil, fmt.Errorf("core: unknown terminator %T", b.Term)
		}
	}
}

// suspend evaluates the invocation's receiver and arguments, records the
// continuation in the frame, prunes the carried environment to the block's
// live-out set, and emits the invocation event.
func (ex *Executor) suspend(ctx *Context, fr *Frame, b *ir.Block, t ir.Invoke, st interp.State, hops int) ([]*Event, error) {
	args := make([]interp.Value, len(t.Args))
	for i, a := range t.Args {
		v, err := ex.in.Eval(fr.Ref.Class, fr.Ref.Key, a, fr.Env, st)
		if err != nil {
			return ex.fail(popFrame(ctx), ctx.Req, err.Error(), hops)
		}
		args[i] = v
	}
	var target interp.EntityRef
	if t.Recv == nil {
		// Constructor: route by the key argument.
		key, err := ex.KeyForCtor(t.Class, args)
		if err != nil {
			return ex.fail(popFrame(ctx), ctx.Req, err.Error(), hops)
		}
		target = interp.EntityRef{Class: t.Class, Key: key}
	} else {
		recv, err := ex.in.Eval(fr.Ref.Class, fr.Ref.Key, t.Recv, fr.Env, st)
		if err != nil {
			return ex.fail(popFrame(ctx), ctx.Req, err.Error(), hops)
		}
		if recv.Kind != interp.KRef {
			return ex.fail(popFrame(ctx), ctx.Req,
				fmt.Sprintf("call receiver is %s, not an entity", recv.Kind), hops)
		}
		target = recv.R
	}
	fr.Block = t.To
	fr.AssignTo = t.AssignTo
	fr.Env.Prune(b.LiveOut)
	return []*Event{{
		Kind:   EvInvoke,
		Req:    ctx.Req,
		Target: target,
		Method: t.Method,
		Args:   args,
		Ctx:    ctx,
		Hops:   hops + 1,
	}}, nil
}

// complete pops back to the caller: if frames remain, the value resumes the
// parent frame (possibly on another operator); otherwise the root call is
// done and the value heads to the egress router.
func (ex *Executor) complete(ctx *Context, req string, v interp.Value, hops int) ([]*Event, error) {
	if ctx == nil || len(ctx.Stack) == 0 {
		return []*Event{{Kind: EvResponse, Req: req, Value: v, Hops: hops}}, nil
	}
	parent := ctx.Top()
	return []*Event{{
		Kind:   EvResume,
		Req:    req,
		Target: parent.Ref,
		Value:  v,
		Ctx:    ctx,
		Hops:   hops + 1,
	}}, nil
}

// fail unwinds the whole context and reports the error to the client. The
// transactional runtime additionally aborts the surrounding transaction so
// partial effects never commit.
func (ex *Executor) fail(ctx *Context, req string, msg string, hops int) ([]*Event, error) {
	return []*Event{{Kind: EvResponse, Req: req, Err: msg, Hops: hops}}, nil
}

// popFrame removes the top frame and returns the context (nil-safe).
func popFrame(ctx *Context) *Context {
	if ctx == nil || len(ctx.Stack) == 0 {
		return ctx
	}
	ctx.Stack = ctx.Stack[:len(ctx.Stack)-1]
	return ctx
}
