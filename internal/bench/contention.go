// The contention experiment behind the CI bench-regression gate: the
// chained-transfer worst case (t1: a0→a1, t2: a1→a2, …) measured with
// Aria's deterministic fallback phase on versus off. The two headline
// metrics are commits-per-batch (how much of a conflict chain one batch
// drains) and real nanoseconds per committed transaction; the virtual
// client latencies quantify what the in-batch re-execution rounds buy
// over next-batch retries. All virtual-time metrics are deterministic
// functions of the seed, which is what lets CI compare a re-run against
// the checked-in BENCH_pr6.json byte for byte rather than against noisy
// wall-clock numbers.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/sim"
	"statefulentities.dev/stateflow/internal/systems/stateflow"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
	"statefulentities.dev/stateflow/internal/workload/ycsb"
)

// Contention experiment shape: waves of chained transfers, each wave one
// pure conflict chain over its own account range.
const (
	contentionChain = 32 // transfers per chain (k)
	contentionWaves = 8  // sequential waves, disjoint account ranges
	// contentionSpacing orders arrivals within a wave wider than the
	// client-link jitter, so TID order equals chain order and the batch
	// is the worst case.
	contentionSpacing = time.Millisecond
	// contentionWaveGap leaves each wave room to drain fully even in the
	// one-commit-per-batch legacy mode before the next begins.
	contentionWaveGap = 3 * time.Second
	// contentionEpoch is wide enough to absorb a whole spaced chain into
	// one batch — the pure worst case the fallback is built for. The
	// experiment pins it (rather than inheriting -epoch) so the headline
	// commits-per-batch number means "chain drained per batch", not
	// "chain split across ticks"; -epoch still parameterizes the dlog
	// rows bundled into the same artifact.
	contentionEpoch = 50 * time.Millisecond
)

// ContentionRow is one measured commit strategy on the chained-transfer
// workload.
type ContentionRow struct {
	Name string `json:"name"`
	// CommitsPerBatch is the drain rate of the conflict chain: committed
	// transactions per closed (non-empty) batch. The fallback's whole
	// point is moving this from ~1 to ~k.
	CommitsPerBatch float64 `json:"commits_per_batch"`
	// NsPerCommit is real (wall-clock) nanoseconds of simulation compute
	// per committed transaction.
	NsPerCommit int64 `json:"ns_per_commit"`
	// Virtual client latencies (deterministic given the seed).
	VirtualP50Ms float64 `json:"virtual_p50_ms"`
	VirtualP99Ms float64 `json:"virtual_p99_ms"`
	Commits      int     `json:"commits"`
	Batches      int     `json:"batches"`
	// Retried counts next-batch conflict retries (the legacy drain; 0
	// with the fallback on), MaxRetries the per-response worst case.
	Retried        int     `json:"retried"`
	MaxRetries     int     `json:"max_retries"`
	FallbackRounds int     `json:"fallback_rounds"`
	WallMs         float64 `json:"wall_ms"`
}

// RunContention measures the chained-transfer workload with the fallback
// phase on and off, plus the fallback-on point under the serial epoch
// schedule so the pipeline's effect on the contended path is tracked too.
func RunContention(opt Options) ([]ContentionRow, error) {
	prog, err := compileProgram()
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name              string
		disableFallback   bool
		disablePipelining bool
	}{
		{"contention/fallback=on", false, false},
		{"contention/fallback=off", true, false},
		{"contention/fallback=on/pipeline=off", false, true},
	}
	var out []ContentionRow
	for _, tc := range cases {
		cluster := sim.New(opt.Seed)
		cfg := stateflow.DefaultConfig()
		cfg.EpochInterval = contentionEpoch
		cfg.SnapshotEvery = 10
		cfg.DisableFallback = tc.disableFallback
		cfg.DisablePipelining = tc.disablePipelining
		sys := stateflow.New(cluster, prog, cfg)

		accounts := contentionWaves * (contentionChain + 1)
		for i := 0; i < accounts; i++ {
			if err := sys.PreloadEntity("Account",
				interp.StrV(ycsb.Key(i)), interp.IntV(ycsb.InitialBalance), interp.StrV("")); err != nil {
				return nil, err
			}
		}
		var script []sysapi.Scheduled
		for w := 0; w < contentionWaves; w++ {
			base := w * (contentionChain + 1)
			at := time.Duration(w)*contentionWaveGap + time.Millisecond
			for i := 0; i < contentionChain; i++ {
				script = append(script, sysapi.Scheduled{
					At: at + time.Duration(i)*contentionSpacing,
					Req: sysapi.Request{
						Req:    fmt.Sprintf("w%dt%d", w, i),
						Target: interp.EntityRef{Class: "Account", Key: ycsb.Key(base + i)},
						Method: "transfer",
						Args:   []interp.Value{interp.IntV(5), interp.RefV("Account", ycsb.Key(base+i+1))},
						Kind:   "transfer",
					},
				})
			}
		}
		client := sysapi.NewScriptClient("client", sys, script)
		cluster.Add("client", client)
		sys.CheckpointPreloadedState()
		cluster.Start()
		start := time.Now()
		cluster.RunUntil(time.Duration(contentionWaves)*contentionWaveGap + 10*time.Second)
		wall := time.Since(start)

		total := contentionWaves * contentionChain
		if client.Done != total {
			return nil, fmt.Errorf("contention (%s): %d/%d responses", tc.name, client.Done, total)
		}
		coord := sys.Coordinator()
		lat := client.Latency.Stats()
		row := ContentionRow{
			Name:           tc.name,
			Commits:        coord.Commits,
			Batches:        coord.EpochsClosed,
			Retried:        coord.Aborts,
			FallbackRounds: coord.FallbackRounds,
			VirtualP50Ms:   lat.P50Ms(),
			VirtualP99Ms:   lat.P99Ms(),
			WallMs:         float64(wall) / float64(time.Millisecond),
		}
		for _, r := range client.Responses {
			if r.Retries > row.MaxRetries {
				row.MaxRetries = r.Retries
			}
		}
		if coord.EpochsClosed > 0 {
			row.CommitsPerBatch = float64(coord.Commits) / float64(coord.EpochsClosed)
		}
		if coord.Commits > 0 {
			row.NsPerCommit = wall.Nanoseconds() / int64(coord.Commits)
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintContention renders the comparison as a table.
func PrintContention(rows []ContentionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Contention: chained transfers (k=%d, %d waves), Aria fallback on vs. off\n",
		contentionChain, contentionWaves)
	fmt.Fprintf(&b, "%-24s %15s %12s %12s %12s %9s %9s %9s\n",
		"config", "commits/batch", "ns/commit", "p50(virt)", "p99(virt)", "batches", "retried", "maxretry")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %15.2f %12d %11.2fms %11.2fms %9d %9d %9d\n",
			r.Name, r.CommitsPerBatch, r.NsPerCommit, r.VirtualP50Ms, r.VirtualP99Ms,
			r.Batches, r.Retried, r.MaxRetries)
	}
	return b.String()
}

// PR5Doc is the BENCH_pr5.json / BENCH_pr6.json / BENCH_pr8.json /
// BENCH_pr10.json schema: the contention experiment that gates
// regressions plus the dlog experiment carried forward, so the benchmark
// trajectory accumulates in one artifact per PR. From PR 6 on, both
// sections carry the epoch-schedule dimension (".../pipeline=on|off"
// rows); from PR 8 on, the sharded-scaling rows ride along too; from
// PR 10 on, the scoped-fence rows. bench-compare accepts older artifacts
// without any of them.
type PR5Doc struct {
	Benchmark   string           `json:"benchmark"`
	Chain       int              `json:"chain"`
	Waves       int              `json:"waves"`
	Seed        int64            `json:"seed"`
	Epoch       string           `json:"epoch"`
	Contention  []ContentionRow  `json:"contention"`
	Dlog        []DlogRow        `json:"dlog"`
	Sharding    []ShardingRow    `json:"sharding,omitempty"`
	ScopedFence []ScopedFenceRow `json:"scoped_fence,omitempty"`
}

// WritePR5JSON writes the benchmark artifact checked in as
// BENCH_pr10.json (BENCH_pr5/6/8.json historically) and enforced by the
// CI bench-compare step. shard and scoped may be nil (older artifact
// shapes).
func WritePR5JSON(path string, opt Options, cont []ContentionRow, dlog []DlogRow, shard []ShardingRow, scoped []ScopedFenceRow) error {
	doc := PR5Doc{
		Benchmark:   "aria-fallback-contention",
		Chain:       contentionChain,
		Waves:       contentionWaves,
		Seed:        opt.Seed,
		Epoch:       contentionEpoch.String(),
		Contention:  cont,
		Dlog:        dlog,
		Sharding:    shard,
		ScopedFence: scoped,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadPR5JSON loads a benchmark artifact (the bench-compare tool reads
// both the checked-in baseline and the fresh re-run through this).
func ReadPR5JSON(path string) (PR5Doc, error) {
	var doc PR5Doc
	buf, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// FindContention returns the named contention row.
func (d PR5Doc) FindContention(name string) (ContentionRow, error) {
	for _, r := range d.Contention {
		if r.Name == name {
			return r, nil
		}
	}
	return ContentionRow{}, fmt.Errorf("benchmark doc has no contention row %q", name)
}

// FindDlog returns the first dlog row matching any of the given names —
// callers list the preferred (newer-schema) name first and a legacy
// fallback after it, so a PR 5-era artifact without the pipeline
// dimension still resolves its serial dlog-on row.
func (d PR5Doc) FindDlog(names ...string) (DlogRow, error) {
	for _, name := range names {
		for _, r := range d.Dlog {
			if r.Name == name {
				return r, nil
			}
		}
	}
	return DlogRow{}, fmt.Errorf("benchmark doc has no dlog row %q", strings.Join(names, `" or "`))
}

// FindSharding returns the row measured at the given shard count.
func (d PR5Doc) FindSharding(shards int) (ShardingRow, error) {
	for _, r := range d.Sharding {
		if r.Shards == shards {
			return r, nil
		}
	}
	return ShardingRow{}, fmt.Errorf("benchmark doc has no sharding row for %d shards", shards)
}

// FindScopedFence returns the scoped-fence row for one fence schedule.
func (d PR5Doc) FindScopedFence(fullFences bool) (ScopedFenceRow, error) {
	for _, r := range d.ScopedFence {
		if r.FullFences == fullFences {
			return r, nil
		}
	}
	return ScopedFenceRow{}, fmt.Errorf("benchmark doc has no scoped-fence row with full_fences=%v", fullFences)
}
