// Ablations over StateFlow's design choices, beyond what the paper's
// figures report:
//
//   - Epoch interval: Aria's batch length trades commit latency against
//     coordination overhead per transaction (§3/§5 "Epoch intervals cannot
//     be too small because they would incur a high overhead").
//   - Worker count: how the bundled execution/state/messaging deployment
//     scales (§4's resource-utilization discussion).
//   - Contention (zipfian skew) under the transactional workload: abort
//     and retry behaviour of the deterministic protocol.
package bench

import (
	"fmt"
	"time"

	"statefulentities.dev/stateflow/internal/sim"
	"statefulentities.dev/stateflow/internal/systems/stateflow"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
	"statefulentities.dev/stateflow/internal/workload/ycsb"
)

// AblationRow is one measured ablation point.
type AblationRow struct {
	Param   string
	Value   string
	P50     time.Duration
	P99     time.Duration
	Aborts  int
	Commits int
	Errors  int
}

// runStateFlowPoint runs one StateFlow configuration and collects stats.
func runStateFlowPoint(cfg stateflow.Config, mix ycsb.Mix, dist string, rate float64, opt Options) (AblationRow, error) {
	prog, err := compileProgram()
	if err != nil {
		return AblationRow{}, err
	}
	cluster := sim.New(opt.Seed)
	sys := stateflow.New(cluster, prog, cfg)
	load := ycsb.Loader(opt.Records, opt.PayloadBytes)
	for i := 0; i < opt.Records; i++ {
		class, args := load(i)
		if err := sys.PreloadEntity(class, args...); err != nil {
			return AblationRow{}, err
		}
	}
	chooser, err := ycsb.ChooserByName(dist, opt.Records)
	if err != nil {
		return AblationRow{}, err
	}
	wgen := ycsb.NewGenerator(mix, chooser, opt.Records, opt.Seed+17, "q")
	gen := sysapi.NewGenerator("client", sys, rate, opt.Duration, opt.WarmUp, wgen.Next)
	cluster.Add("client", gen)
	cluster.Start()
	cluster.RunUntil(opt.Duration + 10*time.Second)
	st := gen.Latency.Stats()
	return AblationRow{
		P50:     st.P50,
		P99:     st.P99,
		Aborts:  sys.Coordinator().Aborts,
		Commits: sys.Coordinator().Commits,
		Errors:  gen.Errors,
	}, nil
}

// RunEpochAblation sweeps the Aria batch interval on workload T.
func RunEpochAblation(opt Options, epochs []time.Duration) ([]AblationRow, error) {
	if len(epochs) == 0 {
		epochs = []time.Duration{
			2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
			20 * time.Millisecond, 50 * time.Millisecond,
		}
	}
	var out []AblationRow
	for _, e := range epochs {
		cfg := stateflow.DefaultConfig()
		cfg.EpochInterval = e
		row, err := runStateFlowPoint(cfg, ycsb.WorkloadT, "zipfian", 100, opt)
		if err != nil {
			return nil, err
		}
		row.Param, row.Value = "epoch", e.String()
		out = append(out, row)
	}
	return out, nil
}

// RunWorkerAblation sweeps the worker count on workload M at a demanding
// rate.
func RunWorkerAblation(opt Options, workers []int) ([]AblationRow, error) {
	if len(workers) == 0 {
		// A single worker is far below the 2000 RPS demand and its queue
		// diverges, so the sweep starts at 2.
		workers = []int{2, 5, 10}
	}
	var out []AblationRow
	for _, w := range workers {
		cfg := stateflow.DefaultConfig()
		cfg.Workers = w
		row, err := runStateFlowPoint(cfg, ycsb.WorkloadM, "uniform", 2000, opt)
		if err != nil {
			return nil, err
		}
		row.Param, row.Value = "workers", fmt.Sprint(w)
		out = append(out, row)
	}
	return out, nil
}

// RunContentionAblation sweeps dataset size (smaller dataset = hotter
// keys) on the transactional workload, exposing Aria's abort/retry curve.
func RunContentionAblation(opt Options, records []int) ([]AblationRow, error) {
	if len(records) == 0 {
		records = []int{10, 100, 1000}
	}
	var out []AblationRow
	for _, r := range records {
		o := opt
		o.Records = r
		cfg := stateflow.DefaultConfig()
		cfg.EpochInterval = opt.Epoch
		row, err := runStateFlowPoint(cfg, ycsb.WorkloadT, "zipfian", 200, o)
		if err != nil {
			return nil, err
		}
		row.Param, row.Value = "records", fmt.Sprint(r)
		out = append(out, row)
	}
	return out, nil
}

// PrintAblation renders ablation rows.
func PrintAblation(title string, rows []AblationRow) string {
	s := fmt.Sprintf("%s\n%-10s %-10s %10s %10s %9s %9s %7s\n",
		title, "param", "value", "p50", "p99", "commits", "aborts", "errors")
	for _, r := range rows {
		s += fmt.Sprintf("%-10s %-10s %10s %10s %9d %9d %7d\n",
			r.Param, r.Value,
			r.P50.Round(100*time.Microsecond), r.P99.Round(100*time.Microsecond),
			r.Commits, r.Aborts, r.Errors)
	}
	return s
}
