// The scoped-fence experiment behind the PR 10 bench gate: a steady
// stream of cross-shard transfers pinned to shards {0, 1} runs
// concurrently with a fixed batch of single-shard updates whose accounts
// all live on shards {2, 3}. With footprint-scoped fences the untouched
// shards never park — the update stream drains at full speed while the
// transfer stream fences the other half of the ring. With the historical
// fence-everything schedule (Config.FullFences) every global batch
// parks all four shards, so the same update stream repeatedly stalls
// behind fences for traffic it never touches. The gated metric is the
// untouched-shard throughput ratio between the two modes; all
// virtual-time metrics are deterministic functions of the seed, so CI
// compares re-runs against the checked-in BENCH_pr10.json exactly.
package bench

import (
	"fmt"
	"strings"
	"time"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/sim"
	"statefulentities.dev/stateflow/internal/systems/stateflow"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
	"statefulentities.dev/stateflow/internal/workload/ycsb"
)

// Scoped-fence experiment shape.
const (
	scopedShards   = 4
	scopedAccounts = 320 // dataset, hashed across the 4-shard ring
	// scopedUpdates is the measured stream: single-shard updates whose
	// accounts all hash to shards 2 or 3 — the shards the transfer
	// stream never touches.
	scopedUpdates = 2400
	// scopedXfers is the fencing stream: transfers between a shard-0 and
	// a shard-1 account, spread across the update stream's span so the
	// sequencer holds a {0, 1} fence for most of the measurement window.
	scopedXfers = 96
	// scopedSpacing offers the update stream well beyond one shard's
	// drain rate (same reasoning as shardingSpacing).
	scopedSpacing = 50 * time.Microsecond
	// scopedXferSpacing paces the fencing stream: a fresh global batch
	// roughly every epoch, so fences are near back-to-back.
	scopedXferSpacing = 1250 * time.Microsecond
	// scopedDeadline bounds the drain wait (virtual time).
	scopedDeadline = 120 * time.Second
)

// ScopedFenceRow is one fence schedule measured on the mixed workload.
type ScopedFenceRow struct {
	Name string `json:"name"`
	// FullFences records the schedule: false is the footprint-scoped
	// default, true the historical fence-everything reference.
	FullFences bool `json:"full_fences"`
	// UntouchedTxnPerVirtualSec is the gated metric: the update stream's
	// size divided by its own virtual makespan (first arrival to its
	// last response). Only updates on shards outside every transfer
	// footprint count — this is the traffic scoping is supposed to make
	// free.
	UntouchedTxnPerVirtualSec float64 `json:"untouched_txn_per_virtual_sec"`
	UntouchedMakespanMs       float64 `json:"untouched_makespan_ms"`
	VirtualP50Ms              float64 `json:"virtual_p50_ms"`
	VirtualP99Ms              float64 `json:"virtual_p99_ms"`
	// GlobalBatches / ScopedFences / FullFenceCount are the sequencer's
	// fence accounting: bench-compare uses ScopedFences > 0 to reject a
	// vacuous scoped run (a mix whose transfers accidentally fence
	// everything would gate nothing).
	GlobalTxns     int     `json:"global_txns"`
	GlobalBatches  int     `json:"global_batches"`
	ScopedFences   int     `json:"scoped_fences"`
	FullFenceCount int     `json:"full_fence_count"`
	WallMs         float64 `json:"wall_ms"`
}

// RunScopedFences measures the mixed workload under both fence
// schedules: scoped (the default) and fence-everything (the reference).
func RunScopedFences(opt Options) ([]ScopedFenceRow, error) {
	var out []ScopedFenceRow
	for _, full := range []bool{false, true} {
		row, err := runScopedFencePoint(opt, full)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

func runScopedFencePoint(opt Options, fullFences bool) (ScopedFenceRow, error) {
	prog, err := compileProgram()
	if err != nil {
		return ScopedFenceRow{}, err
	}
	cluster := sim.New(opt.Seed)
	cfg := stateflow.DefaultConfig()
	cfg.EpochInterval = shardingEpoch
	cfg.SnapshotEvery = 10
	cfg.Shards = scopedShards
	cfg.FullFences = fullFences
	sys := stateflow.New(cluster, prog, cfg)
	for i := 0; i < scopedAccounts; i++ {
		if err := sys.PreloadEntity("Account",
			interp.StrV(ycsb.Key(i)), interp.IntV(ycsb.InitialBalance), interp.StrV("")); err != nil {
			return ScopedFenceRow{}, err
		}
	}

	// Partition the dataset by realized ring position: the transfer
	// stream alternates over shard-0/shard-1 pairs, the update stream
	// round-robins over everything on shards 2 and 3.
	byShard := map[int][]string{}
	for i := 0; i < scopedAccounts; i++ {
		key := ycsb.Key(i)
		sh := sys.ShardOf(interp.EntityRef{Class: "Account", Key: key})
		byShard[sh] = append(byShard[sh], key)
	}
	var untouched []string
	for _, sh := range []int{2, 3} {
		untouched = append(untouched, byShard[sh]...)
	}
	if len(byShard[0]) == 0 || len(byShard[1]) == 0 || len(untouched) == 0 {
		return ScopedFenceRow{}, fmt.Errorf("scoped-fence: degenerate ring split %d/%d/%d/%d",
			len(byShard[0]), len(byShard[1]), len(byShard[2]), len(byShard[3]))
	}

	var updates, xfers []sysapi.Scheduled
	at := time.Millisecond
	for i := 0; i < scopedUpdates; i++ {
		updates = append(updates, sysapi.Scheduled{
			At: at,
			Req: sysapi.Request{
				Req:    fmt.Sprintf("u%04d", i),
				Target: interp.EntityRef{Class: "Account", Key: untouched[i%len(untouched)]},
				Method: "update",
				Args:   []interp.Value{interp.IntV(1)},
				Kind:   "update",
			},
		})
		at += scopedSpacing
	}
	at = time.Millisecond
	for i := 0; i < scopedXfers; i++ {
		from := byShard[0][i%len(byShard[0])]
		to := byShard[1][(i*7)%len(byShard[1])]
		xfers = append(xfers, sysapi.Scheduled{
			At: at,
			Req: sysapi.Request{
				Req:    fmt.Sprintf("x%04d", i),
				Target: interp.EntityRef{Class: "Account", Key: from},
				Method: "transfer",
				Args:   []interp.Value{interp.IntV(5), interp.RefV("Account", to)},
				Kind:   "transfer",
			},
		})
		at += scopedXferSpacing
	}
	// Two clients so the untouched stream's makespan is measured on its
	// own completion, not the transfer tail's.
	uclient := sysapi.NewScriptClient("uclient", sys, updates)
	xclient := sysapi.NewScriptClient("xclient", sys, xfers)
	cluster.Add("uclient", uclient)
	cluster.Add("xclient", xclient)
	sys.CheckpointPreloadedState()
	cluster.Start()

	start := time.Now()
	var uDone time.Duration
	for cluster.Now() < scopedDeadline && (uclient.Done < scopedUpdates || xclient.Done < scopedXfers) {
		cluster.RunUntil(cluster.Now() + time.Millisecond)
		if uDone == 0 && uclient.Done == scopedUpdates {
			uDone = cluster.Now()
		}
	}
	wall := time.Since(start)
	if uclient.Done != scopedUpdates || xclient.Done != scopedXfers {
		return ScopedFenceRow{}, fmt.Errorf("scoped-fence (full=%v): %d/%d updates, %d/%d transfers by %s",
			fullFences, uclient.Done, scopedUpdates, xclient.Done, scopedXfers, scopedDeadline)
	}

	makespan := uDone - time.Millisecond // first arrival at 1ms
	lat := uclient.Latency.Stats()
	mode := "scoped"
	if fullFences {
		mode = "full"
	}
	q := sys.Sequencer()
	return ScopedFenceRow{
		Name:                      fmt.Sprintf("scoped-fence/mode=%s", mode),
		FullFences:                fullFences,
		UntouchedTxnPerVirtualSec: float64(scopedUpdates) / makespan.Seconds(),
		UntouchedMakespanMs:       float64(makespan) / float64(time.Millisecond),
		VirtualP50Ms:              lat.P50Ms(),
		VirtualP99Ms:              lat.P99Ms(),
		GlobalTxns:                q.GlobalTxns,
		GlobalBatches:             q.GlobalBatches,
		ScopedFences:              q.ScopedFences,
		FullFenceCount:            q.FullFences,
		WallMs:                    float64(wall) / float64(time.Millisecond),
	}, nil
}

// PrintScopedFences renders the schedule comparison as a table.
func PrintScopedFences(rows []ScopedFenceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scoped fences: %d untouched-shard updates vs %d cross-shard transfers pinned to shards {0,1} (4 shards)\n",
		scopedUpdates, scopedXfers)
	fmt.Fprintf(&b, "%-26s %16s %13s %12s %12s %9s %9s %9s\n",
		"config", "untouched/sec", "makespan", "p50(virt)", "p99(virt)", "globals", "scoped", "full")
	var full float64
	for _, r := range rows {
		if r.FullFences {
			full = r.UntouchedTxnPerVirtualSec
		}
	}
	for _, r := range rows {
		speedup := ""
		if !r.FullFences && full > 0 {
			speedup = fmt.Sprintf("  (%.2fx vs full)", r.UntouchedTxnPerVirtualSec/full)
		}
		fmt.Fprintf(&b, "%-26s %16.0f %12.0fms %11.2fms %11.2fms %9d %9d %9d%s\n",
			r.Name, r.UntouchedTxnPerVirtualSec, r.UntouchedMakespanMs, r.VirtualP50Ms, r.VirtualP99Ms,
			r.GlobalTxns, r.ScopedFences, r.FullFenceCount, speedup)
	}
	return b.String()
}
