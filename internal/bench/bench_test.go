package bench

import (
	"strings"
	"testing"
	"time"
)

// quickOptions keeps harness tests fast: short virtual runs still produce
// hundreds of samples.
func quickOptions() Options {
	opt := DefaultOptions()
	opt.Duration = 5 * time.Second
	opt.WarmUp = 500 * time.Millisecond
	opt.Records = 200
	return opt
}

func TestRunPointForBothSystems(t *testing.T) {
	opt := quickOptions()
	sf, err := RunPointFor("stateflow", "A", "zipfian", 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	sfu, err := RunPointFor("statefun", "A", "zipfian", 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Samples < 100 || sfu.Samples < 100 {
		t.Fatalf("samples: %d / %d", sf.Samples, sfu.Samples)
	}
	// The paper's headline comparison: StateFlow wins.
	if sf.P99 >= sfu.P99 {
		t.Fatalf("stateflow p99 (%s) must beat statefun (%s)", sf.P99, sfu.P99)
	}
	if sf.Errors != 0 || sfu.Errors != 0 {
		t.Fatalf("errors: %d / %d", sf.Errors, sfu.Errors)
	}
}

func TestRunPointRejectsUnknowns(t *testing.T) {
	opt := quickOptions()
	if _, err := RunPointFor("nosuch", "A", "zipfian", 100, opt); err == nil {
		t.Fatal("unknown system")
	}
	if _, err := RunPointFor("stateflow", "Z", "zipfian", 100, opt); err == nil {
		t.Fatal("unknown workload")
	}
	if _, err := RunPointFor("stateflow", "A", "pareto", 100, opt); err == nil {
		t.Fatal("unknown distribution")
	}
}

func TestStatefunFlatAcrossWorkloads(t *testing.T) {
	// Figure 3 claim (1): the baseline's latency is workload- and
	// distribution-independent.
	opt := quickOptions()
	a, err := RunPointFor("statefun", "A", "zipfian", 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPointFor("statefun", "B", "uniform", 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(a.Mean) / float64(b.Mean)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("statefun not flat: A-zipf %s vs B-unif %s", a.Mean, b.Mean)
	}
}

func TestTransactionalWorkloadCostsMore(t *testing.T) {
	// Figure 3 claim (3): T > A on StateFlow, same order of magnitude.
	opt := quickOptions()
	a, err := RunPointFor("stateflow", "A", "uniform", 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := RunPointFor("stateflow", "T", "uniform", 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Mean <= a.Mean {
		t.Fatalf("T (%s) should cost more than A (%s)", tt.Mean, a.Mean)
	}
	if tt.P99 > 10*a.P99 {
		t.Fatalf("T overhead should be modest: T p99 %s vs A p99 %s", tt.P99, a.P99)
	}
}

func TestOverheadHarness(t *testing.T) {
	opt := quickOptions()
	rows, err := RunOverhead(opt, []int{50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].SplitFraction >= 0.01 {
		t.Fatalf("splitting share %.4f must be <1%% (§4)", rows[0].SplitFraction)
	}
	if rows[0].Breakdown.Total() == 0 {
		t.Fatal("no breakdown recorded")
	}
	out := PrintOverhead(rows)
	if !strings.Contains(out, "state size 50 KB") {
		t.Fatalf("print: %s", out)
	}
}

func TestConsistencyHarness(t *testing.T) {
	opt := quickOptions()
	rows, err := RunConsistency(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.System == "stateflow" && r.LostUpdates {
			t.Fatal("stateflow must conserve money")
		}
	}
	out := PrintConsistency(rows)
	if !strings.Contains(out, "stateflow") || !strings.Contains(out, "statefun") {
		t.Fatalf("print: %s", out)
	}
}

func TestEpochAblationHarness(t *testing.T) {
	opt := quickOptions()
	rows, err := RunEpochAblation(opt, []time.Duration{2 * time.Millisecond, 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Longer epochs mean higher commit-wait latency.
	if rows[1].P50 <= rows[0].P50 {
		t.Fatalf("epoch ablation shape: %s vs %s", rows[0].P50, rows[1].P50)
	}
	if !strings.Contains(PrintAblation("t", rows), "epoch") {
		t.Fatal("print")
	}
}

func TestPrintersIncludeHeaders(t *testing.T) {
	pts := []RunPoint{{System: "stateflow", Workload: "A", Dist: "zipfian",
		RateRPS: 100, P99: time.Millisecond, Mean: time.Millisecond, Samples: 10}}
	if !strings.Contains(PrintFig3(pts), "Figure 3") {
		t.Fatal("fig3 header")
	}
	if !strings.Contains(PrintFig4(pts), "Figure 4") {
		t.Fatal("fig4 header")
	}
}
