// Package bench is the experiment harness: it deploys the compiled YCSB
// entity program on simulated StateFlow and StateFun-model clusters, runs
// the paper's workloads against them, and prints the rows/series behind
// every figure of the evaluation (§4): Figure 3 (p99 latency per workload
// and key distribution at 100 RPS), Figure 4 (median/p99 latency versus
// input throughput on the mixed workload M), the system-overhead breakdown
// (state sizes 50–200 KB), and the consistency experiment contrasting the
// baseline's lost updates with StateFlow's transactional isolation.
package bench

import (
	"fmt"
	"time"

	"statefulentities.dev/stateflow/internal/compiler"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/metrics"
	"statefulentities.dev/stateflow/internal/sim"
	"statefulentities.dev/stateflow/internal/systems/stateflow"
	"statefulentities.dev/stateflow/internal/systems/statefun"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
	"statefulentities.dev/stateflow/internal/workload/ycsb"
)

// Options parameterizes an experiment run.
type Options struct {
	Records      int           // dataset size (accounts)
	PayloadBytes int           // per-record payload
	Duration     time.Duration // measured (virtual) time per point
	WarmUp       time.Duration // discarded head
	Seed         int64
	Epoch        time.Duration // StateFlow batch interval
	// NoFallback disables Aria's deterministic fallback phase on the
	// StateFlow runtime (A/B benchmarking; the contention experiment
	// ignores it and always measures both modes).
	NoFallback bool
	// NoPipelining forces the serial epoch schedule on the StateFlow
	// runtime (A/B benchmarking; the dlog and contention experiments
	// ignore it and measure the pipeline dimension explicitly).
	NoPipelining bool
}

// DefaultOptions mirror the paper's scale at laptop-friendly durations.
func DefaultOptions() Options {
	return Options{
		Records:      1000,
		PayloadBytes: 1000, // YCSB default 10x100B fields
		Duration:     30 * time.Second,
		WarmUp:       3 * time.Second,
		Seed:         1,
		Epoch:        10 * time.Millisecond,
	}
}

// compileProgram compiles the YCSB entity program once per run.
func compileProgram() (*ir.Program, error) {
	return compiler.Compile(ycsb.Program())
}

// RunPoint is one measured configuration.
type RunPoint struct {
	System   string
	Workload string
	Dist     string
	RateRPS  float64

	Mean, P50, P99 time.Duration
	Samples        int
	Errors         int
	Aborts         int // StateFlow only: Aria conflict aborts
	Done           int
}

// runOne deploys one system, drives one workload point, and collects
// latency stats.
func runOne(system string, mix ycsb.Mix, dist string, rate float64, opt Options) (RunPoint, error) {
	prog, err := compileProgram()
	if err != nil {
		return RunPoint{}, err
	}
	cluster := sim.New(opt.Seed)

	var sys sysapi.Backend
	var sfSys *stateflow.System
	switch system {
	case "stateflow":
		cfg := stateflow.DefaultConfig()
		cfg.EpochInterval = opt.Epoch
		cfg.DisableFallback = opt.NoFallback
		cfg.DisablePipelining = opt.NoPipelining
		sfSys = stateflow.New(cluster, prog, cfg).Single()
		sys = sfSys
	case "statefun":
		sys = statefun.New(cluster, prog, statefun.DefaultConfig())
	default:
		return RunPoint{}, fmt.Errorf("bench: unknown system %q", system)
	}

	// Preload the dataset.
	load := ycsb.Loader(opt.Records, opt.PayloadBytes)
	for i := 0; i < opt.Records; i++ {
		class, args := load(i)
		if err := sys.PreloadEntity(class, args...); err != nil {
			return RunPoint{}, err
		}
	}

	chooser, err := ycsb.ChooserByName(dist, opt.Records)
	if err != nil {
		return RunPoint{}, err
	}
	wgen := ycsb.NewGenerator(mix, chooser, opt.Records, opt.Seed+17, "q")
	gen := sysapi.NewGenerator("client", sys, rate, opt.Duration, opt.WarmUp, wgen.Next)
	cluster.Add("client", gen)
	cluster.Start()
	cluster.RunUntil(opt.Duration + 10*time.Second) // grace to drain

	st := gen.Latency.Stats()
	pt := RunPoint{
		System: system, Workload: mix.Name, Dist: dist, RateRPS: rate,
		Mean: st.Mean, P50: st.P50, P99: st.P99, Samples: int(st.Count),
		Errors: gen.Errors, Done: gen.Done,
	}
	if sfSys != nil {
		pt.Aborts = sfSys.Coordinator().Aborts
	}
	return pt, nil
}

// RunPointFor runs a single (system, workload, distribution, rate)
// configuration — the unit both figures are built from. Exposed for the
// testing.B benchmark harness.
func RunPointFor(system, workload, dist string, rate float64, opt Options) (RunPoint, error) {
	mix, err := ycsb.ByName(workload)
	if err != nil {
		return RunPoint{}, err
	}
	return runOne(system, mix, dist, rate, opt)
}

// ---------------------------------------------------------------------------
// Figure 3

// Fig3Config lists the systems, workloads and distributions of Figure 3.
type Fig3Config struct {
	Rate float64 // the paper uses 100 RPS
}

// RunFig3 reproduces Figure 3: p99 latency for YCSB A, B and T under
// Zipfian and uniform key distributions at low load. StateFun skips T
// ("we did not run Statefun against transactional workloads since it
// offers no support for transactions", §4).
func RunFig3(opt Options) ([]RunPoint, error) {
	var out []RunPoint
	for _, wl := range []ycsb.Mix{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadT} {
		for _, dist := range []string{"zipfian", "uniform"} {
			for _, system := range []string{"statefun", "stateflow"} {
				if system == "statefun" && wl.Name == "T" {
					continue
				}
				pt, err := runOne(system, wl, dist, 100, opt)
				if err != nil {
					return nil, err
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// PrintFig3 renders the rows the figure plots.
func PrintFig3(points []RunPoint) string {
	s := fmt.Sprintf("Figure 3: YCSB latency at 100 RPS (1000 records)\n%-12s %-10s %-10s %10s %10s %8s\n",
		"workload", "dist", "system", "p99", "mean", "samples")
	for _, p := range points {
		s += fmt.Sprintf("%-12s %-10s %-10s %10s %10s %8d\n",
			p.Workload, p.Dist, p.System,
			p.P99.Round(100*time.Microsecond), p.Mean.Round(100*time.Microsecond), p.Samples)
	}
	return s
}

// ---------------------------------------------------------------------------
// Figure 4

// RunFig4 reproduces Figure 4: median and p99 latency for the mixed
// workload M while input throughput sweeps 1000..4000 RPS.
func RunFig4(opt Options, rates []float64) ([]RunPoint, error) {
	if len(rates) == 0 {
		rates = []float64{1000, 1500, 2000, 2500, 3000, 3500, 4000}
	}
	var out []RunPoint
	for _, system := range []string{"stateflow", "statefun"} {
		for _, rate := range rates {
			pt, err := runOne(system, ycsb.WorkloadM, "uniform", rate, opt)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// PrintFig4 renders the latency/throughput series.
func PrintFig4(points []RunPoint) string {
	s := fmt.Sprintf("Figure 4: workload M latency vs input throughput\n%-10s %10s %10s %10s %8s %8s\n",
		"system", "rate", "p50", "p99", "samples", "errors")
	for _, p := range points {
		s += fmt.Sprintf("%-10s %10.0f %10s %10s %8d %8d\n",
			p.System, p.RateRPS,
			p.P50.Round(100*time.Microsecond), p.P99.Round(100*time.Microsecond),
			p.Samples, p.Errors)
	}
	return s
}

// ---------------------------------------------------------------------------
// System overhead (§4, not depicted in the paper)

// OverheadRow is the per-component breakdown at one state size.
type OverheadRow struct {
	StateKB       int
	Breakdown     *metrics.Breakdown
	SplitFraction float64
}

// RunOverhead reproduces the §4 system-overhead experiment: a synthetic
// workload over entities whose state size varies from 50 to 200 KB,
// measuring the duration of each runtime component per event and the share
// attributable to program transformation (function splitting).
func RunOverhead(opt Options, stateKBs []int) ([]OverheadRow, error) {
	if len(stateKBs) == 0 {
		stateKBs = []int{50, 100, 150, 200}
	}
	var out []OverheadRow
	for _, kb := range stateKBs {
		o := opt
		o.PayloadBytes = kb * 1024
		o.Records = 50
		prog, err := compileProgram()
		if err != nil {
			return nil, err
		}
		cluster := sim.New(o.Seed)
		cfg := stateflow.DefaultConfig()
		cfg.EpochInterval = o.Epoch
		sys := stateflow.New(cluster, prog, cfg)
		load := ycsb.Loader(o.Records, o.PayloadBytes)
		for i := 0; i < o.Records; i++ {
			class, args := load(i)
			if err := sys.PreloadEntity(class, args...); err != nil {
				return nil, err
			}
		}
		chooser := ycsb.Uniform{N: o.Records}
		wgen := ycsb.NewGenerator(ycsb.WorkloadM, chooser, o.Records, o.Seed+17, "q")
		gen := sysapi.NewGenerator("client", sys, 100, o.Duration, 0, wgen.Next)
		cluster.Add("client", gen)
		cluster.Start()
		cluster.RunUntil(o.Duration + 5*time.Second)

		agg := metrics.NewBreakdown()
		for _, w := range sys.Workers() {
			agg.Merge(w.Breakdown)
		}
		out = append(out, OverheadRow{
			StateKB:       kb,
			Breakdown:     agg,
			SplitFraction: agg.Fraction("splitting_instrumentation"),
		})
	}
	return out, nil
}

// PrintOverhead renders the overhead tables.
func PrintOverhead(rows []OverheadRow) string {
	s := "System overhead: runtime component breakdown by state size\n"
	for _, r := range rows {
		s += fmt.Sprintf("\nstate size %d KB (splitting/instrumentation share: %.3f%%)\n%s",
			r.StateKB, 100*r.SplitFraction, r.Breakdown.Table())
	}
	return s
}

// ---------------------------------------------------------------------------
// Consistency experiment

// ConsistencyResult contrasts the two systems under concurrent conflicting
// transfers.
type ConsistencyResult struct {
	System        string
	ExpectedTotal int64
	ActualTotal   int64
	LostUpdates   bool
	Aborts        int
}

// RunConsistency fires bursts of concurrent updates at a handful of hot
// accounts on both systems and checks conservation of money: the
// StateFun-model baseline (no transactions, no locking, §3) may lose
// updates; StateFlow must never.
func RunConsistency(opt Options) ([]ConsistencyResult, error) {
	prog, err := compileProgram()
	if err != nil {
		return nil, err
	}
	const accounts = 4
	const burst = 40
	script := func() []sysapi.Scheduled {
		reqs := sysapi.NewBuilder("t")
		var s []sysapi.Scheduled
		for i := 0; i < burst; i++ {
			from := ycsb.Key(i % accounts)
			to := ycsb.Key((i + 1) % accounts)
			s = append(s, sysapi.Scheduled{
				At: time.Millisecond + time.Duration(i)*150*time.Microsecond,
				Req: reqs.At(i, interp.EntityRef{Class: "Account", Key: from}, "transfer",
					[]interp.Value{interp.IntV(5), interp.RefV("Account", to)}, "transfer"),
			})
		}
		return s
	}

	var out []ConsistencyResult
	for _, system := range []string{"statefun", "stateflow"} {
		cluster := sim.New(opt.Seed)
		var sys sysapi.Backend
		var sf *stateflow.System
		if system == "stateflow" {
			cfg := stateflow.DefaultConfig()
			cfg.EpochInterval = opt.Epoch
			sf = stateflow.New(cluster, prog, cfg).Single()
			sys = sf
		} else {
			sys = statefun.New(cluster, prog, statefun.DefaultConfig())
		}
		for i := 0; i < accounts; i++ {
			args := []interp.Value{interp.StrV(ycsb.Key(i)), interp.IntV(1000), interp.StrV("")}
			if err := sys.PreloadEntity("Account", args...); err != nil {
				return nil, err
			}
		}
		client := sysapi.NewScriptClient("client", sys, script())
		cluster.Add("client", client)
		cluster.Start()
		cluster.RunUntil(30 * time.Second)

		var total int64
		for i := 0; i < accounts; i++ {
			st, ok := sys.EntityState("Account", ycsb.Key(i))
			if !ok {
				return nil, fmt.Errorf("bench: account %d missing", i)
			}
			total += st["balance"].I
		}
		res := ConsistencyResult{
			System:        system,
			ExpectedTotal: int64(accounts) * 1000,
			ActualTotal:   total,
			LostUpdates:   total != int64(accounts)*1000,
		}
		if sf != nil {
			res.Aborts = sf.Coordinator().Aborts
		}
		out = append(out, res)
	}
	return out, nil
}

// PrintConsistency renders the consistency comparison.
func PrintConsistency(rows []ConsistencyResult) string {
	s := fmt.Sprintf("Consistency under concurrent conflicting transfers\n%-10s %14s %14s %8s %s\n",
		"system", "expected", "actual", "aborts", "verdict")
	for _, r := range rows {
		verdict := "consistent (money conserved)"
		if r.LostUpdates {
			verdict = "INCONSISTENT (lost updates)"
		}
		s += fmt.Sprintf("%-10s %14d %14d %8d %s\n",
			r.System, r.ExpectedTotal, r.ActualTotal, r.Aborts, verdict)
	}
	return s
}
