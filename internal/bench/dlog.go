package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"statefulentities.dev/stateflow/internal/sim"
	"statefulentities.dev/stateflow/internal/systems/stateflow"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
	"statefulentities.dev/stateflow/internal/workload/ycsb"
)

// DlogRow is one measured coordinator-hot-path configuration: the same
// workload point with the durable log on versus off, so the WAL's cost
// (real CPU per committed transaction and virtual commit latency) is a
// number instead of a guess.
type DlogRow struct {
	Name string `json:"name"`
	// NsPerOp is real (wall-clock) nanoseconds of simulation compute per
	// committed transaction — the coordinator hot path including record
	// encoding, appends and checkpoint compaction when the log is on.
	NsPerOp int64 `json:"ns_per_op"`
	// Virtual latencies observed by the clients (the simulated cost of
	// group-commit fsyncs and epoch-record syncs).
	VirtualP50Ms float64 `json:"virtual_p50_ms"`
	VirtualP99Ms float64 `json:"virtual_p99_ms"`
	Commits      int     `json:"commits"`
	WallMs       float64 `json:"wall_ms"`
	// Dlog activity (zero when off).
	LogAppends     int `json:"log_appends"`
	LogSyncs       int `json:"log_syncs"`
	LogCheckpoints int `json:"log_checkpoints"`
}

// RunDlog measures the coordinator hot path across the durability and
// epoch-schedule dimensions: YCSB A (update-heavy — every transaction
// crosses the egress and therefore the WAL) at a rate that keeps the
// coordinator busy, with periodic snapshots so checkpoint compaction is
// part of the measured path. With the log on, both epoch schedules are
// measured — pipelined (two epochs in flight, adjacent epochs sharing
// one group-commit fsync) and serial — so the fsync merge shows up as a
// log_syncs-per-commit gap between the two rows.
func RunDlog(opt Options) ([]DlogRow, error) {
	prog, err := compileProgram()
	if err != nil {
		return nil, err
	}
	mix, err := ycsb.ByName("A")
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name              string
		disableDlog       bool
		disablePipelining bool
	}{
		{"coordinator-hotpath/dlog=on/pipeline=on", false, false},
		{"coordinator-hotpath/dlog=on/pipeline=off", false, true},
		{"coordinator-hotpath/dlog=off", true, false},
	}
	var out []DlogRow
	for _, tc := range cases {
		cluster := sim.New(opt.Seed)
		cfg := stateflow.DefaultConfig()
		cfg.EpochInterval = opt.Epoch
		cfg.SnapshotEvery = 10
		cfg.DisableDlog = tc.disableDlog
		cfg.DisablePipelining = tc.disablePipelining
		cfg.DisableFallback = opt.NoFallback
		sys := stateflow.New(cluster, prog, cfg)
		load := ycsb.Loader(opt.Records, opt.PayloadBytes)
		for i := 0; i < opt.Records; i++ {
			class, args := load(i)
			if err := sys.PreloadEntity(class, args...); err != nil {
				return nil, err
			}
		}
		chooser, err := ycsb.ChooserByName("uniform", opt.Records)
		if err != nil {
			return nil, err
		}
		wgen := ycsb.NewGenerator(mix, chooser, opt.Records, opt.Seed+17, "q")
		gen := sysapi.NewGenerator("client", sys, 2000, opt.Duration, opt.WarmUp, wgen.Next)
		cluster.Add("client", gen)
		sys.CheckpointPreloadedState()
		cluster.Start()
		start := time.Now()
		cluster.RunUntil(opt.Duration + 10*time.Second)
		wall := time.Since(start)

		commits := sys.Coordinator().Commits
		lat := gen.Latency.Stats()
		row := DlogRow{
			Name:         tc.name,
			VirtualP50Ms: lat.P50Ms(),
			VirtualP99Ms: lat.P99Ms(),
			Commits:      commits,
			WallMs:       float64(wall) / float64(time.Millisecond),
		}
		if commits > 0 {
			row.NsPerOp = wall.Nanoseconds() / int64(commits)
		}
		if sys.Dlog != nil {
			st := sys.Dlog.Stats()
			row.LogAppends, row.LogSyncs, row.LogCheckpoints = st.Appends, st.Syncs, st.Checkpoints
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintDlog renders the comparison as a table.
func PrintDlog(rows []DlogRow) string {
	var b strings.Builder
	b.WriteString("Coordinator hot path: dlog x epoch schedule (YCSB A, uniform, 2000 RPS)\n")
	fmt.Fprintf(&b, "%-36s %12s %12s %12s %9s %9s %9s\n",
		"config", "ns/op(real)", "p50(virt)", "p99(virt)", "commits", "appends", "syncs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %12d %11.2fms %11.2fms %9d %9d %9d\n",
			r.Name, r.NsPerOp, r.VirtualP50Ms, r.VirtualP99Ms, r.Commits, r.LogAppends, r.LogSyncs)
	}
	return b.String()
}

// WriteDlogJSON writes the rows as the benchmark artifact (BENCH_pr4.json
// in CI), so the perf trajectory of the coordinator hot path is tracked
// as data.
func WriteDlogJSON(path string, opt Options, rows []DlogRow) error {
	doc := struct {
		Benchmark string    `json:"benchmark"`
		Unit      string    `json:"unit"`
		Duration  string    `json:"virtual_duration"`
		Records   int       `json:"records"`
		Seed      int64     `json:"seed"`
		Rows      []DlogRow `json:"rows"`
	}{
		Benchmark: "coordinator-hotpath-dlog",
		Unit:      "ns/op",
		Duration:  opt.Duration.String(),
		Records:   opt.Records,
		Seed:      opt.Seed,
		Rows:      rows,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
