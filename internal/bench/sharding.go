// The sharded-scaling experiment behind the PR 8 bench gate: a fixed
// batch of single-shard transactions (plus a small cross-shard tail) is
// offered faster than one coordinator can drain it, and the measured
// virtual makespan turns into committed transactions per virtual second.
// Scaling the same workload from one shard to four must multiply that
// throughput — the whole point of the multi-coordinator topology is that
// single-shard traffic pays nothing for the other shards' existence. All
// virtual-time metrics are deterministic functions of the seed, so CI
// compares re-runs against the checked-in BENCH_pr8.json exactly.
package bench

import (
	"fmt"
	"strings"
	"time"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/sim"
	"statefulentities.dev/stateflow/internal/systems/stateflow"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
	"statefulentities.dev/stateflow/internal/workload/ycsb"
)

// Sharded-scaling experiment shape.
const (
	shardingAccounts = 320  // dataset, hashed across the shard ring
	shardingUpdates  = 4800 // single-shard (ref-closed) update transactions
	// shardingXfers is the cross-shard tail: transfers whose two accounts
	// hash to different shards become globally sequenced transactions.
	// Deliberately sparse — every global batch fences its footprint (both
	// shards at 2, so effectively the cluster), so the mix models a
	// workload where cross-shard commerce is the rare case the routing
	// fast path is designed around. On one shard the classic topology
	// deploys and every pair is trivially co-located.
	shardingXfers = 12
	// shardingSpacing offers ~20k RPS — far beyond one shard's worker
	// pool (5 workers at ~0.5ms of CPU per transaction saturate near
	// 5k RPS), so the single-shard makespan measures drain capacity, not
	// arrival spacing.
	shardingSpacing = 50 * time.Microsecond
	// shardingEpoch pins the Aria batch interval: the fence protocol
	// drains every shard's in-flight epochs before a global batch runs,
	// so the epoch length directly prices each fence window. Pinned
	// (rather than inheriting -epoch) so the scaling rows measure the
	// topology, not the epoch schedule; -epoch still parameterizes the
	// dlog rows bundled into the same artifact.
	shardingEpoch = 5 * time.Millisecond
	// shardingDeadline bounds the drain wait (virtual time).
	shardingDeadline = 120 * time.Second
)

// ShardingRow is one measured shard count on the fixed scaling workload.
type ShardingRow struct {
	Name   string `json:"name"`
	Shards int    `json:"shards"`
	// TxnPerVirtualSec is the headline scaling metric: the fixed workload
	// size divided by the virtual makespan (first arrival to last
	// response).
	TxnPerVirtualSec  float64 `json:"txn_per_virtual_sec"`
	VirtualMakespanMs float64 `json:"virtual_makespan_ms"`
	VirtualP50Ms      float64 `json:"virtual_p50_ms"`
	VirtualP99Ms      float64 `json:"virtual_p99_ms"`
	// Commits aggregates over every shard coordinator (global write-set
	// applies ride the same Aria machinery, so they are counted too).
	Commits int `json:"commits"`
	// SingleShard / GlobalTxns / GlobalBatches are the sequencer's
	// routing split: fast-path forwards versus globally fenced
	// transactions and their batch count.
	SingleShard   int     `json:"single_shard"`
	GlobalTxns    int     `json:"global_txns"`
	GlobalBatches int     `json:"global_batches"`
	WallMs        float64 `json:"wall_ms"`
}

// RunSharding measures the fixed scaling workload at 1, 2 and 4 shards.
func RunSharding(opt Options) ([]ShardingRow, error) {
	var out []ShardingRow
	for _, shards := range []int{1, 2, 4} {
		row, err := runShardingPoint(opt, shards)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

func runShardingPoint(opt Options, shards int) (ShardingRow, error) {
	prog, err := compileProgram()
	if err != nil {
		return ShardingRow{}, err
	}
	cluster := sim.New(opt.Seed)
	cfg := stateflow.DefaultConfig()
	cfg.EpochInterval = shardingEpoch
	cfg.SnapshotEvery = 10
	cfg.Shards = shards
	sys := stateflow.New(cluster, prog, cfg)
	for i := 0; i < shardingAccounts; i++ {
		if err := sys.PreloadEntity("Account",
			interp.StrV(ycsb.Key(i)), interp.IntV(ycsb.InitialBalance), interp.StrV("")); err != nil {
			return ShardingRow{}, err
		}
	}

	// The script interleaves the cross-shard tail into the update stream:
	// one transfer every updates/xfers operations, over pairs whose
	// offsets vary so a useful fraction hashes across shards at every
	// shard count. Which pairs actually cross depends on the ring hash —
	// the row records the realized routing split.
	var script []sysapi.Scheduled
	at := time.Millisecond
	xferEvery := shardingUpdates / shardingXfers
	xfer := 0
	for i := 0; i < shardingUpdates; i++ {
		script = append(script, sysapi.Scheduled{
			At: at,
			Req: sysapi.Request{
				Req:    fmt.Sprintf("u%04d", i),
				Target: interp.EntityRef{Class: "Account", Key: ycsb.Key(i % shardingAccounts)},
				Method: "update",
				Args:   []interp.Value{interp.IntV(1)},
				Kind:   "update",
			},
		})
		at += shardingSpacing
		if i%xferEvery == xferEvery-1 {
			from := (xfer * 37) % shardingAccounts
			to := (from + 1 + xfer*13) % shardingAccounts
			xfer++
			script = append(script, sysapi.Scheduled{
				At: at,
				Req: sysapi.Request{
					Req:    fmt.Sprintf("x%04d", i),
					Target: interp.EntityRef{Class: "Account", Key: ycsb.Key(from)},
					Method: "transfer",
					Args:   []interp.Value{interp.IntV(5), interp.RefV("Account", ycsb.Key(to))},
					Kind:   "transfer",
				},
			})
			at += shardingSpacing
		}
	}
	client := sysapi.NewScriptClient("client", sys, script)
	cluster.Add("client", client)
	sys.CheckpointPreloadedState()
	cluster.Start()

	// Step until the fixed workload drains: the virtual makespan is the
	// scaling measurement (1 ms resolution, deterministic per seed).
	total := shardingUpdates + shardingXfers
	start := time.Now()
	for cluster.Now() < shardingDeadline && client.Done < total {
		cluster.RunUntil(cluster.Now() + time.Millisecond)
	}
	wall := time.Since(start)
	if client.Done != total {
		return ShardingRow{}, fmt.Errorf("sharding (%d shards): %d/%d responses by %s",
			shards, client.Done, total, shardingDeadline)
	}

	makespan := cluster.Now() - time.Millisecond // first arrival at 1ms
	lat := client.Latency.Stats()
	row := ShardingRow{
		Name:              fmt.Sprintf("sharding/shards=%d", shards),
		Shards:            shards,
		TxnPerVirtualSec:  float64(total) / makespan.Seconds(),
		VirtualMakespanMs: float64(makespan) / float64(time.Millisecond),
		VirtualP50Ms:      lat.P50Ms(),
		VirtualP99Ms:      lat.P99Ms(),
		WallMs:            float64(wall) / float64(time.Millisecond),
	}
	// The 1-shard point deploys the classic topology (no sequencer): every
	// transaction is trivially single-"shard" and there is no routing
	// split to record.
	if q := sys.Sequencer(); q != nil {
		row.SingleShard = q.SingleShard
		row.GlobalTxns = q.GlobalTxns
		row.GlobalBatches = q.GlobalBatches
	} else {
		row.SingleShard = total
	}
	for _, sh := range sys.Shards() {
		row.Commits += sh.Coordinator().Commits
	}
	return row, nil
}

// PrintSharding renders the scaling comparison as a table.
func PrintSharding(rows []ShardingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded scaling: %d updates + %d cross-shard transfers offered at ~%.0f RPS\n",
		shardingUpdates, shardingXfers, float64(time.Second)/float64(shardingSpacing))
	fmt.Fprintf(&b, "%-20s %14s %13s %12s %12s %9s %9s %9s\n",
		"config", "txn/virt-sec", "makespan", "p50(virt)", "p99(virt)", "single", "global", "batches")
	base := 0.0
	for _, r := range rows {
		speedup := ""
		if r.Shards == 1 {
			base = r.TxnPerVirtualSec
		} else if base > 0 {
			speedup = fmt.Sprintf("  (%.2fx)", r.TxnPerVirtualSec/base)
		}
		fmt.Fprintf(&b, "%-20s %14.0f %12.0fms %11.2fms %11.2fms %9d %9d %9d%s\n",
			r.Name, r.TxnPerVirtualSec, r.VirtualMakespanMs, r.VirtualP50Ms, r.VirtualP99Ms,
			r.SingleShard, r.GlobalTxns, r.GlobalBatches, speedup)
	}
	return b.String()
}
