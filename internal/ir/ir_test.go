package ir

import (
	"encoding/json"
	"strings"
	"testing"

	"statefulentities.dev/stateflow/internal/lang/ast"
)

// tiny builds a minimal valid program by hand.
func tiny(t *testing.T) *Program {
	t.Helper()
	mkMethod := func(name string, blocks []*Block) *Method {
		m := &Method{Name: name, Returns: TypeRef{Name: "int"}, Blocks: blocks}
		m.SM = BuildStateMachine(blocks)
		return m
	}
	getBlocks := []*Block{{ID: 0, Name: "get_0", Term: Return{}}}
	callBlocks := []*Block{
		{ID: 0, Name: "m_0", Term: Invoke{Class: "A", Method: "get", To: 1}},
		{ID: 1, Name: "m_1", Term: Return{}},
	}
	a := &Operator{
		Name: "A", KeyAttr: "k", KeyParam: "k",
		Attrs:       []Field{{Name: "k", Type: TypeRef{Name: "str"}}},
		Methods:     map[string]*Method{"get": mkMethod("get", getBlocks)},
		MethodOrder: []string{"get"},
	}
	b := &Operator{
		Name: "B", KeyAttr: "k", KeyParam: "k",
		Attrs:       []Field{{Name: "k", Type: TypeRef{Name: "str"}}},
		Methods:     map[string]*Method{"m": mkMethod("m", callBlocks)},
		MethodOrder: []string{"m"},
	}
	return &Program{
		Operators:     map[string]*Operator{"A": a, "B": b},
		OperatorOrder: []string{"A", "B"},
		Edges: []Edge{
			{From: "ingress", To: "A"}, {From: "A", To: "egress"},
			{From: "ingress", To: "B"}, {From: "B", To: "egress"},
			{From: "B", To: "A", Label: "B.m -> A.get"},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := tiny(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadBlockID(t *testing.T) {
	p := tiny(t)
	p.Operators["A"].Methods["get"].Blocks[0].ID = 5
	if err := p.Validate(); err == nil {
		t.Fatal("expected block-id error")
	}
}

func TestValidateCatchesMissingTerminator(t *testing.T) {
	p := tiny(t)
	p.Operators["A"].Methods["get"].Blocks[0].Term = nil
	if err := p.Validate(); err == nil {
		t.Fatal("expected terminator error")
	}
}

func TestValidateCatchesDanglingJump(t *testing.T) {
	p := tiny(t)
	p.Operators["A"].Methods["get"].Blocks[0].Term = Jump{To: 9}
	if err := p.Validate(); err == nil {
		t.Fatal("expected dangling-jump error")
	}
}

func TestValidateCatchesUnknownInvokeTarget(t *testing.T) {
	p := tiny(t)
	blocks := p.Operators["B"].Methods["m"].Blocks
	blocks[0].Term = Invoke{Class: "Ghost", Method: "x", To: 1}
	if err := p.Validate(); err == nil {
		t.Fatal("expected unknown-invoke error")
	}
}

func TestValidateCatchesMissingKey(t *testing.T) {
	p := tiny(t)
	p.Operators["A"].KeyAttr = ""
	if err := p.Validate(); err == nil {
		t.Fatal("expected key error")
	}
}

func TestBuildStateMachineShapes(t *testing.T) {
	blocks := []*Block{
		{ID: 0, Term: Branch{True: 1, False: 2}},
		{ID: 1, Term: Invoke{Class: "A", Method: "m", To: 2}},
		{ID: 2, Term: Jump{To: 3}},
		{ID: 3, Term: Return{}},
	}
	sm := BuildStateMachine(blocks)
	if len(sm.States) != 4 {
		t.Fatalf("states: %d", len(sm.States))
	}
	kinds := map[TransitionKind]int{}
	for _, tr := range sm.Transitions {
		kinds[tr.Kind]++
	}
	if kinds[TransCondTrue] != 1 || kinds[TransCondFalse] != 1 ||
		kinds[TransCall] != 1 || kinds[TransResume] != 1 ||
		kinds[TransDirect] != 1 || kinds[TransReturn] != 1 {
		t.Fatalf("transition kinds: %v", kinds)
	}
	// The call transition labels the callee.
	for _, tr := range sm.Transitions {
		if tr.Kind == TransCall && tr.Callee != "A.m" {
			t.Fatalf("callee: %s", tr.Callee)
		}
	}
}

func TestSuccessors(t *testing.T) {
	if len((Return{}).Successors()) != 0 {
		t.Fatal("return successors")
	}
	if s := (Jump{To: 3}).Successors(); len(s) != 1 || s[0] != 3 {
		t.Fatal("jump successors")
	}
	if s := (Branch{True: 1, False: 2}).Successors(); len(s) != 2 {
		t.Fatal("branch successors")
	}
	if s := (Invoke{To: 4}).Successors(); len(s) != 1 || s[0] != 4 {
		t.Fatal("invoke successors")
	}
}

func TestTypeRefString(t *testing.T) {
	cases := map[string]TypeRef{
		"int":            {Name: "int"},
		"list[str]":      {Name: "list", Args: []TypeRef{{Name: "str"}}},
		"dict[str, int]": {Name: "dict", Args: []TypeRef{{Name: "str"}, {Name: "int"}}},
	}
	for want, tr := range cases {
		if tr.String() != want {
			t.Errorf("%v: got %s", tr, tr.String())
		}
	}
}

func TestStatsAndReport(t *testing.T) {
	p := tiny(t)
	st := p.Stats()
	if st.Operators != 2 || st.Methods != 2 || st.Blocks != 3 {
		t.Fatalf("stats: %+v", st)
	}
	rep := p.Report()
	for _, want := range []string{"operator A", "operator B", "method get", "2 operators"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestDotDeterministic(t *testing.T) {
	a := tiny(t).Dot()
	b := tiny(t).Dot()
	if a != b {
		t.Fatal("dot output must be deterministic")
	}
	if !strings.Contains(a, `"B" -> "A"`) {
		t.Fatalf("missing cross edge:\n%s", a)
	}
}

func TestJSONMarshalOmitsASTButKeepsStructure(t *testing.T) {
	out, err := json.Marshal(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{`"operators"`, `"state_machine"`, `"key_attr"`, `"transitions"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("json missing %s", want)
		}
	}
}

func TestTermString(t *testing.T) {
	cases := map[string]Terminator{
		"return None":     Return{},
		"jump -> block 2": Jump{To: 2},
	}
	for want, term := range cases {
		if got := TermString(term); got != want {
			t.Errorf("TermString: got %q want %q", got, want)
		}
	}
	inv := TermString(Invoke{Class: "A", Method: "m", AssignTo: "x", To: 1})
	if !strings.Contains(inv, "x = invoke A.m") || !strings.Contains(inv, "resume block 1") {
		t.Fatalf("invoke term: %s", inv)
	}
	br := TermString(Branch{Cond: &ast.BoolLit{Value: true}, True: 1, False: 2})
	if !strings.Contains(br, "branch True ? block 1 : block 2") {
		t.Fatalf("branch term: %s", br)
	}
}

func TestMethodBlockLookup(t *testing.T) {
	p := tiny(t)
	m := p.MethodOf("B", "m")
	if m.Block(0) == nil || m.Block(1) == nil {
		t.Fatal("block lookup")
	}
	if m.Block(9) != nil || m.Block(-1) != nil {
		t.Fatal("out-of-range lookup must be nil")
	}
	if p.MethodOf("B", "ghost") != nil || p.MethodOf("Ghost", "m") != nil {
		t.Fatal("missing method lookup must be nil")
	}
}
