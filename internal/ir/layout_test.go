package ir

import "testing"

func TestClassLayoutSlots(t *testing.T) {
	l := NewClassLayout("C", 3, []string{"b", "a", "c"})
	if l.NumSlots() != 3 || l.ID != 3 {
		t.Fatalf("layout: %+v", l)
	}
	for i, attr := range []string{"b", "a", "c"} {
		s, ok := l.SlotOf(attr)
		if !ok || s != i {
			t.Fatalf("slot of %s: %d %v", attr, s, ok)
		}
	}
	if _, ok := l.SlotOf("zz"); ok {
		t.Fatal("unknown attr must miss")
	}
	// Sorted order walks slots by attribute name: a(1), b(0), c(2).
	sorted := l.SortedSlots()
	if len(sorted) != 3 || sorted[0] != 1 || sorted[1] != 0 || sorted[2] != 2 {
		t.Fatalf("sorted: %v", sorted)
	}
}

func TestClassLayoutNilSafe(t *testing.T) {
	var l *ClassLayout
	if l.NumSlots() != 0 || l.SortedSlots() != nil {
		t.Fatal("nil layout must be empty")
	}
	if _, ok := l.SlotOf("x"); ok {
		t.Fatal("nil layout has no slots")
	}
}

func TestFrameLayoutSlots(t *testing.T) {
	l := NewFrameLayout([]string{"p0", "p1", "tmp"})
	if l.NumSlots() != 3 {
		t.Fatalf("slots: %d", l.NumSlots())
	}
	if s, ok := l.SlotOf("p1"); !ok || s != 1 {
		t.Fatalf("slot of p1: %d %v", s, ok)
	}
	var nilL *FrameLayout
	if nilL.NumSlots() != 0 {
		t.Fatal("nil frame layout must be empty")
	}
}

func TestLayoutsInterning(t *testing.T) {
	known := NewClassLayout("Known", 0, []string{"x"})
	ls := &Layouts{ByClass: map[string]*ClassLayout{"Known": known}, ByID: []*ClassLayout{known}}
	if ls.IDOf("Known") != 0 {
		t.Fatal("known class id")
	}
	a := ls.IDOf("UnknownA")
	b := ls.IDOf("UnknownB")
	if a == b || a == 0 || b == 0 {
		t.Fatalf("interned ids must be distinct and fresh: %d %d", a, b)
	}
	if ls.IDOf("UnknownA") != a {
		t.Fatal("interning must be stable")
	}
	if ls.ClassOf(a) != "UnknownA" || ls.ClassOf(0) != "Known" {
		t.Fatal("class id reverse lookup")
	}
	var nilLs *Layouts
	if nilLs.IDOf("x") != 0 || nilLs.LayoutOf("x") != nil {
		t.Fatal("nil registry must be inert")
	}
}

// Program.Layouts must synthesize layouts for hand-built IR (no compiler
// stamping) from the operators' attribute lists.
func TestProgramLayoutsHandBuiltIR(t *testing.T) {
	p := &Program{
		Operators: map[string]*Operator{
			"A": {Name: "A", KeyAttr: "k", Attrs: []Field{{Name: "k"}, {Name: "v"}}},
			"B": {Name: "B", KeyAttr: "k", Attrs: []Field{{Name: "k"}}},
		},
		OperatorOrder: []string{"A", "B"},
	}
	ls := p.Layouts()
	if ls.LayoutOf("A").NumSlots() != 2 || ls.LayoutOf("B").ID != 1 {
		t.Fatalf("synthesized layouts: %+v", ls)
	}
	if p.Layouts() != ls {
		t.Fatal("layouts must be cached")
	}
	if s, ok := ls.LayoutOf("A").SlotOf("v"); !ok || s != 1 {
		t.Fatal("attr slot of hand-built layout")
	}
}
