// Package ir defines the intermediate representation of the StateFlow
// compiler (§2.5 of the paper): a stateful dataflow graph whose operators
// correspond to entity classes, enriched with the compiled classes (method
// signatures and bodies), the split-function blocks produced by the CPS
// transformation (§2.4), and the execution state machine that tracks the
// stage of every in-flight function invocation.
//
// The IR is independent of the target execution engine. The runtime
// packages (systems/stateflow, systems/statefun, runtime/local) all consume
// this representation unchanged, which is what makes compiled applications
// portable across engines (§3).
package ir

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"statefulentities.dev/stateflow/internal/lang/ast"
)

// TypeRef is an engine-independent type reference, the serialized form of
// a checked types.Type.
type TypeRef struct {
	Name   string    `json:"name"`             // int, float, str, bool, None, list, dict, or a class name
	Entity bool      `json:"entity,omitempty"` // Name is an entity class
	Args   []TypeRef `json:"args,omitempty"`   // list/dict element types
}

// String renders the type reference in annotation syntax.
func (t TypeRef) String() string {
	if len(t.Args) == 0 {
		return t.Name
	}
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s[%s]", t.Name, strings.Join(parts, ", "))
}

// Field is a named, typed slot (attribute or parameter).
type Field struct {
	Name string  `json:"name"`
	Type TypeRef `json:"type"`
}

// ---------------------------------------------------------------------------
// Blocks and terminators (the split functions of §2.4)

// BlockID identifies a block within a method. The entry block is always 0.
type BlockID int

// NoBlock is the nil block id.
const NoBlock BlockID = -1

// Block is one split function: a straight-line sequence of statements
// (local control flow that contains no remote calls stays inline) plus a
// terminator describing how control leaves the block.
type Block struct {
	ID   BlockID `json:"id"`
	Name string  `json:"name"` // e.g. buy_item_0
	// Params are the variables the block references that must be live on
	// entry ("each function takes as arguments the variables it references
	// in its body", §2.4).
	Params []string `json:"params"`
	// Defines are the variables the block defines ("returns the variables
	// it defines", §2.4).
	Defines []string `json:"defines"`
	// LiveOut is the set of variables that must be carried to successor
	// blocks; the runtime prunes the execution context to this set.
	LiveOut []string `json:"live_out"`
	// Stmts is the straight-line body, executed by the interpreter.
	Stmts []ast.Stmt `json:"-"`
	// Term describes how the block ends.
	Term Terminator `json:"-"`
}

// Terminator is how control leaves a block.
type Terminator interface {
	termKind() string
	// Successors lists the blocks control may transfer to locally.
	Successors() []BlockID
}

// Return ends the method, yielding Value (nil means None).
type Return struct {
	Value ast.Expr
}

// Jump transfers control unconditionally to another block.
type Jump struct {
	To BlockID
}

// Branch evaluates Cond and transfers to True or False.
type Branch struct {
	Cond  ast.Expr
	True  BlockID
	False BlockID
}

// Invoke suspends the method, sends an invocation event to another entity
// (possibly on a remote partition), and resumes at To when the return-value
// event arrives (§2.4's continuation).
type Invoke struct {
	// Recv is the expression evaluating to the target entity reference;
	// nil for constructor calls.
	Recv     ast.Expr
	Class    string
	Method   string
	Args     []ast.Expr
	AssignTo string // variable receiving the return value; "" discards it
	To       BlockID
}

func (Return) termKind() string { return "return" }
func (Jump) termKind() string   { return "jump" }
func (Branch) termKind() string { return "branch" }
func (Invoke) termKind() string { return "invoke" }

// Successors implements Terminator.
func (Return) Successors() []BlockID { return nil }

// Successors implements Terminator.
func (j Jump) Successors() []BlockID { return []BlockID{j.To} }

// Successors implements Terminator.
func (b Branch) Successors() []BlockID { return []BlockID{b.True, b.False} }

// Successors implements Terminator.
func (i Invoke) Successors() []BlockID { return []BlockID{i.To} }

// ---------------------------------------------------------------------------
// State machine (§2.5)

// TransitionKind enumerates state-machine transition labels.
type TransitionKind string

// Transition kinds.
const (
	TransDirect    TransitionKind = "direct"
	TransCondTrue  TransitionKind = "cond_true"
	TransCondFalse TransitionKind = "cond_false"
	TransCall      TransitionKind = "call"   // suspend: event leaves the operator
	TransResume    TransitionKind = "resume" // return value arrives back
	TransReturn    TransitionKind = "return" // method completes
)

// Transition is one arc of the execution state machine.
type Transition struct {
	Kind   TransitionKind `json:"kind"`
	From   BlockID        `json:"from"`
	To     BlockID        `json:"to"` // NoBlock for return
	Callee string         `json:"callee,omitempty"`
}

// StateMachine is the unrolled execution graph of one split method: states
// are blocks, arcs are transitions. It is derived mechanically from the
// blocks and embedded in invocation events so the runtime can track the
// execution stage of each in-flight call (§2.5).
type StateMachine struct {
	Entry       BlockID      `json:"entry"`
	States      []BlockID    `json:"states"`
	Transitions []Transition `json:"transitions"`
}

// BuildStateMachine derives the state machine from split blocks.
func BuildStateMachine(blocks []*Block) *StateMachine {
	sm := &StateMachine{Entry: 0}
	for _, b := range blocks {
		sm.States = append(sm.States, b.ID)
		switch t := b.Term.(type) {
		case Return:
			sm.Transitions = append(sm.Transitions, Transition{Kind: TransReturn, From: b.ID, To: NoBlock})
		case Jump:
			sm.Transitions = append(sm.Transitions, Transition{Kind: TransDirect, From: b.ID, To: t.To})
		case Branch:
			sm.Transitions = append(sm.Transitions,
				Transition{Kind: TransCondTrue, From: b.ID, To: t.True},
				Transition{Kind: TransCondFalse, From: b.ID, To: t.False})
		case Invoke:
			callee := t.Class + "." + t.Method
			sm.Transitions = append(sm.Transitions,
				Transition{Kind: TransCall, From: b.ID, To: b.ID, Callee: callee},
				Transition{Kind: TransResume, From: b.ID, To: t.To, Callee: callee})
		}
	}
	return sm
}

// ---------------------------------------------------------------------------
// Methods, operators, program

// Method is a compiled entity method.
type Method struct {
	Name          string  `json:"name"`
	Params        []Field `json:"params"`
	Returns       TypeRef `json:"returns"`
	Transactional bool    `json:"transactional"`
	// Simple methods contain no remote calls and run to completion inside
	// one operator without suspension (§2.3 "for simple functions ... the
	// execution is straightforward").
	Simple bool `json:"simple"`
	// ReadOnly methods never write entity state; runtimes may relax
	// concurrency control for them.
	ReadOnly bool          `json:"read_only"`
	Blocks   []*Block      `json:"blocks"`
	SM       *StateMachine `json:"state_machine"`
	// Frame is the method's static variable layout (parameters, locals and
	// splitter temporaries mapped to dense frame slots), stamped by the
	// compiler's layout pass. Nil frames fall back to name-keyed storage.
	Frame *FrameLayout `json:"frame,omitempty"`
	// Body is the original (pre-split) body, used by Simple execution and
	// by the local runtime.
	Body []ast.Stmt `json:"-"`
}

// Block returns the block with the given id.
func (m *Method) Block(id BlockID) *Block {
	if int(id) < 0 || int(id) >= len(m.Blocks) {
		return nil
	}
	return m.Blocks[id]
}

// Operator is a dataflow operator hosting all functions and all state of
// one entity class (§2.3). Operators are partitioned by entity key at
// runtime.
type Operator struct {
	Name     string  `json:"name"` // class name
	KeyAttr  string  `json:"key_attr"`
	KeyParam string  `json:"key_param"` // __init__ parameter that carries the key
	Attrs    []Field `json:"attrs"`
	// Layout is the class's static attribute layout (attribute name to
	// dense slot index plus the program-wide class id), stamped by the
	// compiler's layout pass and rebuilt on demand for hand-built IR.
	Layout  *ClassLayout       `json:"layout,omitempty"`
	Methods map[string]*Method `json:"methods"`
	// MethodOrder preserves source declaration order for deterministic
	// output.
	MethodOrder []string `json:"method_order"`
}

// Method returns the named method, or nil.
func (o *Operator) Method(name string) *Method { return o.Methods[name] }

// Edge is a dataflow edge in the logical graph.
type Edge struct {
	From string `json:"from"` // "ingress", or operator name
	To   string `json:"to"`   // "egress", or operator name
	// Label describes why the edge exists (e.g. the call that induces it).
	Label string `json:"label,omitempty"`
}

// Program is the complete intermediate representation of a compiled
// application: the enriched stateful dataflow graph.
type Program struct {
	Operators map[string]*Operator `json:"operators"`
	// OperatorOrder preserves declaration order.
	OperatorOrder []string `json:"operator_order"`
	// Edges is the logical dataflow graph including ingress/egress routers.
	Edges []Edge `json:"edges"`
	// Source is the original DSL source, embedded for local re-analysis
	// and debugging.
	Source string `json:"source,omitempty"`

	layoutsOnce sync.Once
	layouts     *Layouts
}

// Operator returns the named operator, or nil.
func (p *Program) Operator(name string) *Operator { return p.Operators[name] }

// MethodOf resolves class.method, or nil.
func (p *Program) MethodOf(class, method string) *Method {
	op := p.Operators[class]
	if op == nil {
		return nil
	}
	return op.Methods[method]
}

// Validate checks structural invariants of the IR: block ids are dense and
// ordered, terminators reference existing blocks, entry block exists, and
// every operator has a key attribute.
func (p *Program) Validate() error {
	for _, name := range p.OperatorOrder {
		op := p.Operators[name]
		if op == nil {
			return fmt.Errorf("ir: operator order references unknown operator %s", name)
		}
		if op.KeyAttr == "" {
			return fmt.Errorf("ir: operator %s has no key attribute", name)
		}
		for _, mn := range op.MethodOrder {
			m := op.Methods[mn]
			if m == nil {
				return fmt.Errorf("ir: %s method order references unknown method %s", name, mn)
			}
			if len(m.Blocks) == 0 {
				return fmt.Errorf("ir: %s.%s has no blocks", name, mn)
			}
			for i, b := range m.Blocks {
				if int(b.ID) != i {
					return fmt.Errorf("ir: %s.%s block %d has id %d", name, mn, i, b.ID)
				}
				if b.Term == nil {
					return fmt.Errorf("ir: %s.%s block %d lacks a terminator", name, mn, i)
				}
				for _, s := range b.Term.Successors() {
					if int(s) < 0 || int(s) >= len(m.Blocks) {
						return fmt.Errorf("ir: %s.%s block %d jumps to missing block %d", name, mn, i, s)
					}
				}
				if inv, ok := b.Term.(Invoke); ok {
					if p.MethodOf(inv.Class, inv.Method) == nil {
						return fmt.Errorf("ir: %s.%s block %d invokes unknown %s.%s", name, mn, i, inv.Class, inv.Method)
					}
				}
			}
			if m.SM == nil {
				return fmt.Errorf("ir: %s.%s lacks a state machine", name, mn)
			}
		}
	}
	return nil
}

// Stats summarizes the IR for reports and the overhead experiment.
type Stats struct {
	Operators     int
	Methods       int
	SimpleMethods int
	SplitMethods  int
	Blocks        int
	Transitions   int
	Edges         int
}

// Stats computes summary statistics.
func (p *Program) Stats() Stats {
	var st Stats
	st.Operators = len(p.OperatorOrder)
	st.Edges = len(p.Edges)
	for _, name := range p.OperatorOrder {
		op := p.Operators[name]
		for _, mn := range op.MethodOrder {
			m := op.Methods[mn]
			st.Methods++
			if m.Simple {
				st.SimpleMethods++
			} else {
				st.SplitMethods++
			}
			st.Blocks += len(m.Blocks)
			st.Transitions += len(m.SM.Transitions)
		}
	}
	return st
}

// Dot renders the logical dataflow graph (Figure 2) in Graphviz DOT syntax.
func (p *Program) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph dataflow {\n  rankdir=LR;\n")
	sb.WriteString("  ingress [shape=cds,label=\"ingress router\"];\n")
	sb.WriteString("  egress [shape=cds,label=\"egress router\"];\n")
	for _, name := range p.OperatorOrder {
		op := p.Operators[name]
		var fns []string
		for _, mn := range op.MethodOrder {
			if strings.HasPrefix(mn, "__") {
				continue
			}
			fns = append(fns, fmt.Sprintf("%s/%d", mn, len(op.Methods[mn].Blocks)))
		}
		sb.WriteString(fmt.Sprintf("  %q [shape=box,label=\"%s\\nkey=%s\\n%s\"];\n",
			name, name, op.KeyAttr, strings.Join(fns, "\\n")))
	}
	edges := append([]Edge(nil), p.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Label < edges[j].Label
	})
	for _, e := range edges {
		if e.Label != "" {
			sb.WriteString(fmt.Sprintf("  %q -> %q [label=%q];\n", e.From, e.To, e.Label))
		} else {
			sb.WriteString(fmt.Sprintf("  %q -> %q;\n", e.From, e.To))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
