// Human-readable listings of the IR: split-function listings like the
// paper's §2.4 examples, terminator descriptions, and a whole-program
// report used by the stateflowc CLI.
package ir

import (
	"fmt"
	"strings"

	"statefulentities.dev/stateflow/internal/lang/printer"
)

// TermString describes a terminator in listing syntax.
func TermString(t Terminator) string {
	switch x := t.(type) {
	case Return:
		if x.Value == nil {
			return "return None"
		}
		return "return " + printer.Expr(x.Value)
	case Jump:
		return fmt.Sprintf("jump -> block %d", x.To)
	case Branch:
		return fmt.Sprintf("branch %s ? block %d : block %d", printer.Expr(x.Cond), x.True, x.False)
	case Invoke:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = printer.Expr(a)
		}
		recv := x.Class
		if x.Recv != nil {
			recv = printer.Expr(x.Recv)
		}
		assign := ""
		if x.AssignTo != "" {
			assign = x.AssignTo + " = "
		}
		return fmt.Sprintf("%sinvoke %s.%s(%s) {\"_type\": \"InvokeMethod\"} -> resume block %d",
			assign, recv, x.Method, strings.Join(args, ", "), x.To)
	default:
		return fmt.Sprintf("<%T>", t)
	}
}

// Listing renders a method's split functions the way §2.4 presents them:
// one definition per block, with the parameters it references and the
// variables it defines.
func (m *Method) Listing() string {
	var sb strings.Builder
	for _, b := range m.Blocks {
		fmt.Fprintf(&sb, "def %s(%s):  # defines: %s; live-out: %s\n",
			b.Name, strings.Join(b.Params, ", "),
			strings.Join(b.Defines, ", "), strings.Join(b.LiveOut, ", "))
		body := printer.Stmts(b.Stmts, "    ")
		if body == "" {
			body = "    pass\n"
		}
		sb.WriteString(body)
		fmt.Fprintf(&sb, "    # %s\n", TermString(b.Term))
	}
	return sb.String()
}

// Report renders the whole program: operators, methods, blocks, state
// machines and the dataflow edges.
func (p *Program) Report() string {
	var sb strings.Builder
	st := p.Stats()
	fmt.Fprintf(&sb, "program: %d operators, %d methods (%d split / %d simple), %d blocks, %d transitions, %d edges\n\n",
		st.Operators, st.Methods, st.SplitMethods, st.SimpleMethods, st.Blocks, st.Transitions, st.Edges)
	for _, name := range p.OperatorOrder {
		op := p.Operators[name]
		fmt.Fprintf(&sb, "operator %s (key: %s)\n", name, op.KeyAttr)
		for _, a := range op.Attrs {
			fmt.Fprintf(&sb, "  state %s: %s\n", a.Name, a.Type)
		}
		for _, mn := range op.MethodOrder {
			m := op.Methods[mn]
			kind := "split"
			if m.Simple {
				kind = "simple"
			}
			ro := ""
			if m.ReadOnly {
				ro = ", read-only"
			}
			tx := ""
			if m.Transactional {
				tx = ", @transactional"
			}
			fmt.Fprintf(&sb, "  method %s/%d -> %s (%s%s%s; %d blocks, %d transitions)\n",
				mn, len(m.Params), m.Returns, kind, ro, tx, len(m.Blocks), len(m.SM.Transitions))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
