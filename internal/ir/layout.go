// Static storage layouts. The compiler's analysis already knows every
// class's attribute set and every method's variable set, so instead of
// resolving names through hash maps on every event, it emits dense layouts:
// a ClassLayout maps each declared attribute to a fixed slot index and a
// FrameLayout maps each method-local variable (parameters, locals,
// splitter temporaries) to a fixed frame slot. Runtimes execute against
// slice-backed frames and rows indexed by these slots; names remain only
// as a fallback for dynamically-added attributes and hand-built IR.
package ir

import (
	"sort"
	"sync"
)

// ClassLayout is the dense attribute layout of one operator (entity
// class): Attrs[slot] names the attribute stored in that slot. The ID is a
// program-wide dense class identifier used by transaction reservation keys
// in place of the class name string.
type ClassLayout struct {
	Class string   `json:"class"`
	ID    int      `json:"id"`
	Attrs []string `json:"attrs"` // slot index -> attribute name (declaration order)

	index  map[string]int // attribute name -> slot
	sorted []int          // slots in attribute-name order (canonical encoding order)
}

// NewClassLayout builds a layout over the given attribute names.
func NewClassLayout(class string, id int, attrs []string) *ClassLayout {
	l := &ClassLayout{Class: class, ID: id, Attrs: append([]string(nil), attrs...)}
	l.build()
	return l
}

func (l *ClassLayout) build() {
	l.index = make(map[string]int, len(l.Attrs))
	for i, a := range l.Attrs {
		l.index[a] = i
	}
	l.sorted = make([]int, len(l.Attrs))
	for i := range l.sorted {
		l.sorted[i] = i
	}
	sort.Slice(l.sorted, func(i, j int) bool { return l.Attrs[l.sorted[i]] < l.Attrs[l.sorted[j]] })
}

// SlotOf returns the slot of an attribute, or ok=false. Nil-safe.
func (l *ClassLayout) SlotOf(attr string) (int, bool) {
	if l == nil {
		return 0, false
	}
	if l.index == nil {
		l.build()
	}
	s, ok := l.index[attr]
	return s, ok
}

// NumSlots returns the number of declared attribute slots. Nil-safe.
func (l *ClassLayout) NumSlots() int {
	if l == nil {
		return 0
	}
	return len(l.Attrs)
}

// SortedSlots returns slot indices ordered by attribute name; the codec
// uses it to emit rows in canonical order without sorting at encode time.
// Nil-safe.
func (l *ClassLayout) SortedSlots() []int {
	if l == nil {
		return nil
	}
	if l.sorted == nil {
		l.build()
	}
	return l.sorted
}

// FrameLayout is the dense variable layout of one method's execution
// frame: Vars[slot] names the variable stored in that slot. Parameters
// occupy the leading slots in declaration order.
type FrameLayout struct {
	Vars []string `json:"vars"`

	index map[string]int
}

// NewFrameLayout builds a layout over the given variable names.
func NewFrameLayout(vars []string) *FrameLayout {
	l := &FrameLayout{Vars: append([]string(nil), vars...)}
	l.buildIndex()
	return l
}

func (l *FrameLayout) buildIndex() {
	l.index = make(map[string]int, len(l.Vars))
	for i, v := range l.Vars {
		l.index[v] = i
	}
}

// SlotOf returns the slot of a variable, or ok=false. Nil-safe.
func (l *FrameLayout) SlotOf(name string) (int, bool) {
	if l == nil {
		return 0, false
	}
	if l.index == nil {
		l.buildIndex()
	}
	s, ok := l.index[name]
	return s, ok
}

// NumSlots returns the number of variable slots. Nil-safe.
func (l *FrameLayout) NumSlots() int {
	if l == nil {
		return 0
	}
	return len(l.Vars)
}

// Layouts is the program-wide class-layout registry handed to state
// stores and transaction workspaces. Classes outside the program (tests,
// hand-built stores) are interned on demand so reservation keys stay
// stable within one registry.
type Layouts struct {
	ByClass map[string]*ClassLayout
	ByID    []*ClassLayout

	mu       sync.Mutex
	interned map[string]int
}

// LayoutOf returns the layout of a class, or nil. Nil-safe.
func (ls *Layouts) LayoutOf(class string) *ClassLayout {
	if ls == nil {
		return nil
	}
	return ls.ByClass[class]
}

// IDOf returns the dense id of a class, interning unknown classes so ids
// stay consistent for the lifetime of the registry. Nil-safe (returns 0).
func (ls *Layouts) IDOf(class string) int {
	if ls == nil {
		return 0
	}
	if l, ok := ls.ByClass[class]; ok {
		return l.ID
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.interned == nil {
		ls.interned = map[string]int{}
	}
	id, ok := ls.interned[class]
	if !ok {
		id = len(ls.ByID) + len(ls.interned)
		ls.interned[class] = id
	}
	return id
}

// ClassOf resolves a dense class id back to its name. Interned
// (non-program) classes resolve via the intern table. Nil-safe.
func (ls *Layouts) ClassOf(id int) string {
	if ls == nil {
		return ""
	}
	if id >= 0 && id < len(ls.ByID) {
		return ls.ByID[id].Class
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	for class, i := range ls.interned {
		if i == id {
			return class
		}
	}
	return ""
}

// Layouts returns the program's class-layout registry, building layouts
// for any operator the compiler did not stamp (hand-built IR). The result
// is cached; it is safe for concurrent use after the first call.
func (p *Program) Layouts() *Layouts {
	p.layoutsOnce.Do(func() {
		ls := &Layouts{ByClass: map[string]*ClassLayout{}}
		for i, name := range p.OperatorOrder {
			op := p.Operators[name]
			l := op.Layout
			if l == nil {
				attrs := make([]string, len(op.Attrs))
				for j, a := range op.Attrs {
					attrs[j] = a.Name
				}
				l = NewClassLayout(name, i, attrs)
				op.Layout = l
			}
			ls.ByClass[name] = l
			ls.ByID = append(ls.ByID, l)
		}
		p.layouts = ls
	})
	return p.layouts
}
