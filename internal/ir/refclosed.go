package ir

import (
	"statefulentities.dev/stateflow/internal/lang/ast"
)

// RefClosed reports whether class.method has a statically known entity
// footprint: every entity the method (transitively) touches is either the
// invocation target itself or one of the entity references passed as
// arguments. A sharded router can then decide from the request alone
// whether the transaction stays inside one shard — the footprint is
// {target} ∪ {entity-valued args} — without reconnaissance.
//
// The analysis is conservative. A method is ref-closed when every Invoke
// terminator (the only way a split method leaves its operator) satisfies:
//
//   - the receiver is `self` or an entity-typed parameter that is never
//     reassigned in the method body, and
//   - every entity-typed argument it forwards is likewise `self` or a
//     clean entity parameter, and
//   - the callee is itself ref-closed.
//
// Constructor invokes (Recv == nil) create entities on partitions chosen
// at runtime and are never ref-closed. Simple methods contain no remote
// calls at all, so they are trivially ref-closed.
func (p *Program) RefClosed(class, method string) bool {
	return p.refClosed(class, method, map[string]bool{})
}

// refClosed recurses with a visited set; cycles are treated as closed
// while in progress (any violating call site fails on its own).
func (p *Program) refClosed(class, method string, visiting map[string]bool) bool {
	key := class + "." + method
	if visiting[key] {
		return true
	}
	m := p.MethodOf(class, method)
	if m == nil {
		return false
	}
	if m.Simple {
		return true
	}
	visiting[key] = true
	defer delete(visiting, key)

	entityParams := map[string]bool{}
	for _, f := range m.Params {
		if f.Type.Entity {
			entityParams[f.Name] = true
		}
	}
	reassigned := methodReassignments(m)

	clean := func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.SelfRef:
			return true
		case *ast.Name:
			return entityParams[x.Ident] && !reassigned[x.Ident]
		}
		return false
	}

	for _, b := range m.Blocks {
		inv, ok := b.Term.(Invoke)
		if !ok {
			continue
		}
		if inv.Recv == nil || !clean(inv.Recv) {
			return false
		}
		callee := p.MethodOf(inv.Class, inv.Method)
		if callee == nil || len(inv.Args) > len(callee.Params) {
			return false
		}
		for i, a := range inv.Args {
			if callee.Params[i].Type.Entity && !clean(a) {
				return false
			}
		}
		if !p.refClosed(inv.Class, inv.Method, visiting) {
			return false
		}
	}
	return true
}

// methodReassignments collects every variable name assigned anywhere in
// the method's blocks (plain and augmented assignment targets, loop
// variables). Parameters in this set cannot be trusted to still hold the
// entity reference the caller passed.
func methodReassignments(m *Method) map[string]bool {
	out := map[string]bool{}
	for _, b := range m.Blocks {
		ast.WalkStmts(b.Stmts, func(st ast.Stmt) {
			switch x := st.(type) {
			case *ast.AssignStmt:
				if n, ok := x.Target.(*ast.Name); ok {
					out[n.Ident] = true
				}
			case *ast.AugAssignStmt:
				if n, ok := x.Target.(*ast.Name); ok {
					out[n.Ident] = true
				}
			case *ast.ForStmt:
				out[x.Var] = true
			}
		})
		// Invoke results bind a variable too.
		if inv, ok := b.Term.(Invoke); ok && inv.AssignTo != "" {
			out[inv.AssignTo] = true
		}
	}
	return out
}
