package sim

import (
	"testing"
	"time"
)

// echo replies to every ping after a fixed latency, charging CPU.
type echo struct {
	cpu      time.Duration
	latency  time.Duration
	received []time.Duration
}

type ping struct{ n int }
type pong struct{ n int }

func (e *echo) OnMessage(ctx *Context, from string, msg Message) {
	switch m := msg.(type) {
	case ping:
		e.received = append(e.received, ctx.Now())
		ctx.Work(e.cpu)
		ctx.Send(from, pong{n: m.n}, e.latency)
	}
}

// probe sends pings on start and records pong arrival times.
type probe struct {
	sendAt []time.Duration
	pongs  map[int]time.Duration
}

func (p *probe) OnStart(ctx *Context) {
	for i, at := range p.sendAt {
		ctx.After(at, ping{n: i}) // timer to self, then forwarded
	}
}

func (p *probe) OnMessage(ctx *Context, from string, msg Message) {
	switch m := msg.(type) {
	case ping:
		ctx.Send("echo", m, time.Millisecond)
	case pong:
		p.pongs[m.n] = ctx.Now()
	}
}

func TestPingPongLatency(t *testing.T) {
	c := New(1)
	e := &echo{latency: 2 * time.Millisecond}
	p := &probe{sendAt: []time.Duration{0}, pongs: map[int]time.Duration{}}
	c.Add("echo", e)
	c.Add("probe", p)
	c.Start()
	c.RunUntil(time.Second)
	got, ok := p.pongs[0]
	if !ok {
		t.Fatal("no pong")
	}
	// 0 (timer) + 1ms (to echo) + 2ms (back).
	if got != 3*time.Millisecond {
		t.Fatalf("pong at %s, want 3ms", got)
	}
}

func TestSerialProcessorQueueing(t *testing.T) {
	// Echo takes 10ms CPU per ping; three pings arriving together must be
	// served back to back: pongs at 12, 22, 32ms.
	c := New(1)
	e := &echo{cpu: 10 * time.Millisecond, latency: time.Millisecond}
	p := &probe{sendAt: []time.Duration{0, 0, 0}, pongs: map[int]time.Duration{}}
	c.Add("echo", e)
	c.Add("probe", p)
	c.Start()
	c.RunUntil(time.Second)
	if len(p.pongs) != 3 {
		t.Fatalf("pongs: %d", len(p.pongs))
	}
	var times []time.Duration
	for i := 0; i < 3; i++ {
		times = append(times, p.pongs[i])
	}
	want := []time.Duration{12 * time.Millisecond, 22 * time.Millisecond, 32 * time.Millisecond}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("pong %d at %s, want %s (all %v)", i, times[i], want[i], times)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		c := New(99)
		e := &echo{cpu: time.Millisecond, latency: Latency{Base: time.Millisecond, Jitter: 5 * time.Millisecond}.Sample(c.Rand())}
		p := &probe{sendAt: []time.Duration{0, time.Millisecond, 2 * time.Millisecond}, pongs: map[int]time.Duration{}}
		c.Add("echo", e)
		c.Add("probe", p)
		c.Start()
		c.RunUntil(time.Second)
		out := make([]time.Duration, 3)
		for i := 0; i < 3; i++ {
			out[i] = p.pongs[i]
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestCrashDropsMessages(t *testing.T) {
	c := New(1)
	e := &echo{latency: time.Millisecond}
	p := &probe{sendAt: []time.Duration{0, 10 * time.Millisecond}, pongs: map[int]time.Duration{}}
	c.Add("echo", e)
	c.Add("probe", p)
	c.Start()
	c.RunUntil(5 * time.Millisecond)
	c.Crash("echo")
	c.RunUntil(20 * time.Millisecond)
	if len(p.pongs) != 1 {
		t.Fatalf("pongs after crash: %d", len(p.pongs))
	}
	c.Restart("echo")
	// New ping after restart gets served.
	c.Inject(c.Now(), "probe", "probe", ping{n: 7})
	c.RunUntil(40 * time.Millisecond)
	if _, ok := p.pongs[7]; !ok {
		t.Fatal("restarted component did not serve")
	}
	if !c.IsCrashed("ghost") == false {
		t.Fatal("unknown component cannot be crashed")
	}
}

func TestRunUntilAdvancesClockPastQuietPeriods(t *testing.T) {
	c := New(1)
	p := &probe{sendAt: []time.Duration{500 * time.Millisecond}, pongs: map[int]time.Duration{}}
	c.Add("probe", p)
	c.Add("echo", &echo{})
	c.Start()
	// Step in 10ms increments; the clock must reach the horizon even
	// though the only event is far in the future.
	for i := 0; i < 10; i++ {
		c.RunUntil(c.Now() + 10*time.Millisecond)
	}
	if c.Now() != 100*time.Millisecond {
		t.Fatalf("clock: %s", c.Now())
	}
}

func TestDrainStopsOnBound(t *testing.T) {
	c := New(1)
	// A self-perpetuating timer never drains.
	c.Add("loop", loopForever{})
	c.Start()
	if err := c.Drain(1000); err == nil {
		t.Fatal("expected drain bound error")
	}
}

type loopForever struct{}

func (loopForever) OnStart(ctx *Context)                        { ctx.After(time.Millisecond, ping{}) }
func (loopForever) OnMessage(ctx *Context, _ string, _ Message) { ctx.After(time.Millisecond, ping{}) }

func TestDuplicateComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := New(1)
	c.Add("x", &echo{})
	c.Add("x", &echo{})
}

func TestTieBreakBySequence(t *testing.T) {
	// Two messages at the identical instant deliver in send order.
	c := New(1)
	rec := &recorder{}
	c.Add("rec", rec)
	c.Inject(time.Millisecond, "t", "rec", ping{n: 1})
	c.Inject(time.Millisecond, "t", "rec", ping{n: 2})
	c.RunUntil(time.Second)
	if len(rec.order) != 2 || rec.order[0] != 1 || rec.order[1] != 2 {
		t.Fatalf("order: %v", rec.order)
	}
}

type recorder struct{ order []int }

func (r *recorder) OnMessage(ctx *Context, _ string, msg Message) {
	if p, ok := msg.(ping); ok {
		r.order = append(r.order, p.n)
	}
}

func TestLatencySample(t *testing.T) {
	c := New(1)
	l := Latency{Base: 10 * time.Millisecond, Jitter: 5 * time.Millisecond}
	for i := 0; i < 100; i++ {
		d := l.Sample(c.Rand())
		if d < 10*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("sample out of range: %s", d)
		}
	}
	fixed := Latency{Base: 3 * time.Millisecond}
	if fixed.Sample(c.Rand()) != 3*time.Millisecond {
		t.Fatal("jitterless latency must be exact")
	}
}

func TestWorkAccumulatesWithinHandler(t *testing.T) {
	c := New(1)
	w := &worker{}
	c.Add("w", w)
	c.Inject(0, "t", "w", ping{})
	c.RunUntil(time.Second)
	if w.sawNow != 7*time.Millisecond {
		t.Fatalf("Now after Work: %s", w.sawNow)
	}
}

type worker struct{ sawNow time.Duration }

func (w *worker) OnMessage(ctx *Context, _ string, _ Message) {
	ctx.Work(3 * time.Millisecond)
	ctx.Work(4 * time.Millisecond)
	w.sawNow = ctx.Now()
}

// TestCrashSemantics pins the crash contract down precisely: a message
// delivered to a crashed component is consumed from its inbox but never
// handled, and neither Delivered nor the handler observe it.
func TestCrashSemantics(t *testing.T) {
	c := New(1)
	rec := &recorder{}
	c.Add("rec", rec)
	c.Inject(time.Millisecond, "t", "rec", ping{n: 1})
	c.Inject(2*time.Millisecond, "t", "rec", ping{n: 2})
	if got := c.Inbox("rec"); got != 2 {
		t.Fatalf("inbox after inject: %d, want 2", got)
	}
	c.Crash("rec")
	c.RunUntil(5 * time.Millisecond)
	if len(rec.order) != 0 {
		t.Fatalf("crashed component handled messages: %v", rec.order)
	}
	if c.Delivered != 0 {
		t.Fatalf("Delivered counted dropped messages: %d", c.Delivered)
	}
	if got := c.Inbox("rec"); got != 0 {
		t.Fatalf("inbox after dropped deliveries: %d, want 0 (messages are consumed, not retained)", got)
	}
	c.Restart("rec")
	c.Inject(c.Now(), "t", "rec", ping{n: 3})
	c.RunUntil(10 * time.Millisecond)
	if len(rec.order) != 1 || rec.order[0] != 3 || c.Delivered != 1 {
		t.Fatalf("post-restart delivery: order=%v delivered=%d", rec.order, c.Delivered)
	}
}

// TestInboxBalancedForLateAdd: a message enqueued before its target is
// registered must not corrupt the inbox accounting when delivered later.
func TestInboxBalancedForLateAdd(t *testing.T) {
	c := New(1)
	c.Inject(time.Millisecond, "t", "late", ping{n: 1})
	rec := &recorder{}
	c.Add("late", rec)
	c.RunUntil(10 * time.Millisecond)
	if got := c.Inbox("late"); got != 0 {
		t.Fatalf("inbox after late-add delivery: %d, want 0", got)
	}
	if len(rec.order) != 1 {
		t.Fatalf("late-added component not served: %v", rec.order)
	}
}

// TestRestartResetsBusyUntil: CPU backlog charged before a crash must not
// delay work handled after the restart.
func TestRestartResetsBusyUntil(t *testing.T) {
	c := New(1)
	e := &echo{cpu: 500 * time.Millisecond, latency: time.Millisecond}
	p := &probe{sendAt: []time.Duration{0}, pongs: map[int]time.Duration{}}
	c.Add("echo", e)
	c.Add("probe", p)
	c.Start()
	// First ping reaches echo at 1ms and charges 500ms of CPU.
	c.RunUntil(2 * time.Millisecond)
	c.Crash("echo")
	c.RunUntil(10 * time.Millisecond)
	c.Restart("echo")
	// Cheapen the handler so the post-restart response time is legible.
	e.cpu = 0
	c.Inject(c.Now(), "probe", "echo", ping{n: 9})
	c.RunUntil(20 * time.Millisecond)
	// Served at ~10ms + 1ms reply latency, NOT after the stale 501ms
	// busyUntil left over from before the crash.
	got, ok := p.pongs[9]
	if !ok {
		t.Fatal("restarted component never served")
	}
	if got != 11*time.Millisecond {
		t.Fatalf("post-restart pong at %s, want 11ms (busyUntil must reset)", got)
	}
}

// TestCrashUntilHoldsDownRestart: a component crashed with a hold-down
// window ignores Restart until the window ends.
func TestCrashUntilHoldsDownRestart(t *testing.T) {
	c := New(1)
	rec := &recorder{}
	c.Add("rec", rec)
	c.RunUntil(time.Millisecond)
	c.CrashUntil("rec", 10*time.Millisecond)
	c.Restart("rec") // too early: ignored
	if !c.IsCrashed("rec") {
		t.Fatal("Restart during hold-down must be a no-op")
	}
	c.RunUntil(10 * time.Millisecond)
	c.Restart("rec")
	if c.IsCrashed("rec") {
		t.Fatal("Restart after hold-down must succeed")
	}
}

// TestInjectClampsAtNow: an injection scheduled in the past delivers at
// the current instant, never before it.
func TestInjectClampsAtNow(t *testing.T) {
	c := New(1)
	rec := &recorder{}
	c.Add("rec", rec)
	c.RunUntil(50 * time.Millisecond)
	c.Inject(10*time.Millisecond, "t", "rec", ping{n: 1}) // in the past
	c.RunUntil(50 * time.Millisecond)                     // no clock progress needed
	if len(rec.order) != 1 {
		t.Fatalf("clamped injection not delivered: %v", rec.order)
	}
	if c.Now() != 50*time.Millisecond {
		t.Fatalf("clock moved backwards: %s", c.Now())
	}
}

// TestScheduleAtRunsInTimeOrder: scheduled actions interleave with
// deliveries by (time, sequence) and clamp to now like Inject.
func TestScheduleAtRunsInTimeOrder(t *testing.T) {
	c := New(1)
	rec := &recorder{}
	c.Add("rec", rec)
	var fired []time.Duration
	c.ScheduleAt(3*time.Millisecond, func(cl *Cluster) { fired = append(fired, cl.Now()) })
	c.ScheduleAt(-time.Hour, func(cl *Cluster) { fired = append(fired, cl.Now()) }) // clamped to 0
	c.Inject(2*time.Millisecond, "t", "rec", ping{n: 1})
	c.RunUntil(time.Second)
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 3*time.Millisecond {
		t.Fatalf("actions fired at %v", fired)
	}
	if len(rec.order) != 1 {
		t.Fatalf("delivery lost around scheduled actions: %v", rec.order)
	}
}

// TestPerturbDropDelayDuplicate exercises every verdict of the delivery
// interceptor and its self-send exemption.
func TestPerturbDropDelayDuplicate(t *testing.T) {
	c := New(1)
	rec := &recorder{}
	c.Add("rec", rec)
	var seen int
	c.SetPerturb(func(from, to string, at time.Duration, msg Message) Perturb {
		seen++
		p := msg.(ping)
		switch p.n {
		case 1:
			return Perturb{Drop: true}
		case 2:
			return Perturb{Delay: 5 * time.Millisecond}
		case 3:
			return Perturb{Duplicate: true, DupDelay: time.Millisecond}
		}
		return Perturb{}
	})
	c.Inject(time.Millisecond, "t", "rec", ping{n: 1})
	c.Inject(time.Millisecond, "t", "rec", ping{n: 2})
	c.Inject(time.Millisecond, "t", "rec", ping{n: 3})
	c.RunUntil(time.Second)
	if want := []int{3, 3, 2}; len(rec.order) != 3 || rec.order[0] != want[0] || rec.order[1] != want[1] || rec.order[2] != want[2] {
		t.Fatalf("perturbed order: %v, want %v (drop 1, duplicate 3, delay 2 past the dup)", rec.order, want)
	}
	if seen != 3 {
		t.Fatalf("interceptor consulted %d times, want 3 (duplicates are not re-perturbed)", seen)
	}
	// Self-sends bypass the interceptor entirely.
	seen = 0
	c.Add("timer", loopForever{})
	c.Inject(c.Now(), "timer", "timer", ping{})
	c.RunUntil(c.Now() + 2*time.Millisecond)
	if seen != 0 {
		t.Fatalf("self-sends were perturbed %d times", seen)
	}
	c.SetPerturb(nil)
}

// rebooter records OnRestart invocations and sends a boot notice.
type rebooter struct {
	restarts []time.Duration
}

func (r *rebooter) OnMessage(ctx *Context, _ string, _ Message) {}

func (r *rebooter) OnRestart(ctx *Context) {
	r.restarts = append(r.restarts, ctx.Now())
	ctx.Send("rec", ping{n: 100 + len(r.restarts)}, time.Millisecond)
}

// TestRestartHandlerFiresOnReboot: OnRestart runs exactly once per actual
// crash→restart transition, at the restart instant, with a working
// Context; a Restart of a component that never crashed does not fire it,
// and neither does a Restart swallowed by a hold-down window.
func TestRestartHandlerFiresOnReboot(t *testing.T) {
	c := New(1)
	rb := &rebooter{}
	rec := &recorder{}
	c.Add("rb", rb)
	c.Add("rec", rec)
	c.Restart("rb") // never crashed: no reboot
	c.RunUntil(time.Millisecond)
	if len(rb.restarts) != 0 {
		t.Fatalf("OnRestart fired without a crash: %v", rb.restarts)
	}
	c.CrashUntil("rb", 10*time.Millisecond)
	c.Restart("rb") // held down: ignored
	c.RunUntil(10 * time.Millisecond)
	if len(rb.restarts) != 0 {
		t.Fatalf("OnRestart fired during hold-down: %v", rb.restarts)
	}
	c.Restart("rb")
	c.RunUntil(20 * time.Millisecond)
	if len(rb.restarts) != 1 || rb.restarts[0] != 10*time.Millisecond {
		t.Fatalf("OnRestart invocations: %v, want one at 10ms", rb.restarts)
	}
	if len(rec.order) != 1 || rec.order[0] != 101 {
		t.Fatalf("reboot hook sends not flushed: %v", rec.order)
	}
	// Second cycle fires again.
	c.Crash("rb")
	c.Restart("rb")
	c.RunUntil(30 * time.Millisecond)
	if len(rb.restarts) != 2 {
		t.Fatalf("second reboot not observed: %v", rb.restarts)
	}
}

// TestRestartHandlerSkippedWhenRecrashed: a new hold-down window imposed
// between the Restart and its scheduled boot event suppresses the boot
// (the fault schedule killed the machine again before it came up), and
// the component stays dead until a later restart succeeds.
func TestRestartHandlerSkippedWhenRecrashed(t *testing.T) {
	c := New(1)
	rb := &rebooter{}
	c.Add("rb", rb)
	c.Add("rec", &recorder{})
	c.RunUntil(time.Millisecond)
	c.Crash("rb")
	c.Restart("rb")
	c.CrashUntil("rb", 20*time.Millisecond) // dies again before the boot event runs
	c.RunUntil(10 * time.Millisecond)
	if len(rb.restarts) != 0 {
		t.Fatalf("boot ran on a re-crashed component: %v", rb.restarts)
	}
	if !c.IsCrashed("rb") {
		t.Fatal("component must stay dead until a post-hold restart")
	}
	c.RunUntil(20 * time.Millisecond)
	c.Restart("rb")
	c.RunUntil(30 * time.Millisecond)
	if len(rb.restarts) != 1 {
		t.Fatalf("post-hold restart did not boot: %v", rb.restarts)
	}
}

// TestRestartHandlerCrashCancelsPendingBoot: a plain Crash (no hold)
// issued between a Restart and its scheduled boot event wins — the
// machine never came up, so the boot is cancelled and the component
// stays dead until a later restart.
func TestRestartHandlerCrashCancelsPendingBoot(t *testing.T) {
	c := New(1)
	rb := &rebooter{}
	c.Add("rb", rb)
	c.Add("rec", &recorder{})
	c.RunUntil(time.Millisecond)
	c.Crash("rb")
	c.Restart("rb")
	c.Crash("rb") // re-killed before the boot event runs
	c.RunUntil(10 * time.Millisecond)
	if len(rb.restarts) != 0 {
		t.Fatalf("boot ran despite the later kill: %v", rb.restarts)
	}
	if !c.IsCrashed("rb") {
		t.Fatal("component must stay dead after the boot was cancelled")
	}
	c.Restart("rb")
	c.RunUntil(20 * time.Millisecond)
	if len(rb.restarts) != 1 {
		t.Fatalf("later restart did not boot: %v", rb.restarts)
	}
}

// TestRestartHandlerBlocksSameInstantDeliveries: a message landing at the
// exact restart instant (queued before the boot event) is dropped — the
// machine is up only once its boot completed, so no delivery can observe
// pre-reset state.
func TestRestartHandlerBlocksSameInstantDeliveries(t *testing.T) {
	c := New(1)
	rb := &rebooter{}
	rec := &recorder{}
	c.Add("rb", rb)
	c.Add("rec", rec)
	c.RunUntil(time.Millisecond)
	c.Crash("rb")
	// Schedule the restart, then queue a delivery for the same instant:
	// the ping's sequence number falls between the restart action and the
	// boot event it schedules, so it reaches the component mid-reboot.
	c.ScheduleAt(5*time.Millisecond, func(cl *Cluster) { cl.Restart("rb") })
	c.Inject(5*time.Millisecond, "t", "rb", ping{n: 1})
	c.RunUntil(10 * time.Millisecond)
	if len(rb.restarts) != 1 {
		t.Fatalf("boot did not run: %v", rb.restarts)
	}
	// The ping at the restart instant must have been dropped (it would
	// have been handled with pre-boot state); later traffic flows.
	c.Inject(c.Now(), "t", "rb", ping{n: 2})
	c.RunUntil(20 * time.Millisecond)
	if c.Delivered != 2 { // boot notice to rec + post-boot ping
		t.Fatalf("deliveries: %d (same-instant pre-boot message must be dropped)", c.Delivered)
	}
}

// TestWatchCrashFiresAtCrashInstant: crash watchers observe the exact
// virtual crash time, once per alive→dead transition.
func TestWatchCrashFiresAtCrashInstant(t *testing.T) {
	c := New(1)
	c.Add("rec", &recorder{})
	var seen []time.Duration
	c.WatchCrash("rec", func(at time.Duration) { seen = append(seen, at) })
	c.RunUntil(3 * time.Millisecond)
	c.Crash("rec")
	c.Crash("rec")                          // already dead: no second notification
	c.CrashUntil("rec", 9*time.Millisecond) // still dead: no notification
	c.RunUntil(9 * time.Millisecond)
	c.Restart("rec")
	c.RunUntil(12 * time.Millisecond)
	c.CrashUntil("rec", 15*time.Millisecond)
	if len(seen) != 2 || seen[0] != 3*time.Millisecond || seen[1] != 12*time.Millisecond {
		t.Fatalf("crash notifications: %v, want [3ms 12ms]", seen)
	}
}

func TestDeliveredCount(t *testing.T) {
	c := New(1)
	c.Add("rec", &recorder{})
	c.Inject(0, "t", "rec", ping{n: 1})
	c.Inject(0, "t", "rec", ping{n: 2})
	c.RunUntil(time.Second)
	if c.Delivered != 2 {
		t.Fatalf("delivered: %d", c.Delivered)
	}
}
