package sim

import (
	"testing"
	"time"
)

// echo replies to every ping after a fixed latency, charging CPU.
type echo struct {
	cpu      time.Duration
	latency  time.Duration
	received []time.Duration
}

type ping struct{ n int }
type pong struct{ n int }

func (e *echo) OnMessage(ctx *Context, from string, msg Message) {
	switch m := msg.(type) {
	case ping:
		e.received = append(e.received, ctx.Now())
		ctx.Work(e.cpu)
		ctx.Send(from, pong{n: m.n}, e.latency)
	}
}

// probe sends pings on start and records pong arrival times.
type probe struct {
	sendAt []time.Duration
	pongs  map[int]time.Duration
}

func (p *probe) OnStart(ctx *Context) {
	for i, at := range p.sendAt {
		ctx.After(at, ping{n: i}) // timer to self, then forwarded
	}
}

func (p *probe) OnMessage(ctx *Context, from string, msg Message) {
	switch m := msg.(type) {
	case ping:
		ctx.Send("echo", m, time.Millisecond)
	case pong:
		p.pongs[m.n] = ctx.Now()
	}
}

func TestPingPongLatency(t *testing.T) {
	c := New(1)
	e := &echo{latency: 2 * time.Millisecond}
	p := &probe{sendAt: []time.Duration{0}, pongs: map[int]time.Duration{}}
	c.Add("echo", e)
	c.Add("probe", p)
	c.Start()
	c.RunUntil(time.Second)
	got, ok := p.pongs[0]
	if !ok {
		t.Fatal("no pong")
	}
	// 0 (timer) + 1ms (to echo) + 2ms (back).
	if got != 3*time.Millisecond {
		t.Fatalf("pong at %s, want 3ms", got)
	}
}

func TestSerialProcessorQueueing(t *testing.T) {
	// Echo takes 10ms CPU per ping; three pings arriving together must be
	// served back to back: pongs at 12, 22, 32ms.
	c := New(1)
	e := &echo{cpu: 10 * time.Millisecond, latency: time.Millisecond}
	p := &probe{sendAt: []time.Duration{0, 0, 0}, pongs: map[int]time.Duration{}}
	c.Add("echo", e)
	c.Add("probe", p)
	c.Start()
	c.RunUntil(time.Second)
	if len(p.pongs) != 3 {
		t.Fatalf("pongs: %d", len(p.pongs))
	}
	var times []time.Duration
	for i := 0; i < 3; i++ {
		times = append(times, p.pongs[i])
	}
	want := []time.Duration{12 * time.Millisecond, 22 * time.Millisecond, 32 * time.Millisecond}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("pong %d at %s, want %s (all %v)", i, times[i], want[i], times)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		c := New(99)
		e := &echo{cpu: time.Millisecond, latency: Latency{Base: time.Millisecond, Jitter: 5 * time.Millisecond}.Sample(c.Rand())}
		p := &probe{sendAt: []time.Duration{0, time.Millisecond, 2 * time.Millisecond}, pongs: map[int]time.Duration{}}
		c.Add("echo", e)
		c.Add("probe", p)
		c.Start()
		c.RunUntil(time.Second)
		out := make([]time.Duration, 3)
		for i := 0; i < 3; i++ {
			out[i] = p.pongs[i]
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestCrashDropsMessages(t *testing.T) {
	c := New(1)
	e := &echo{latency: time.Millisecond}
	p := &probe{sendAt: []time.Duration{0, 10 * time.Millisecond}, pongs: map[int]time.Duration{}}
	c.Add("echo", e)
	c.Add("probe", p)
	c.Start()
	c.RunUntil(5 * time.Millisecond)
	c.Crash("echo")
	c.RunUntil(20 * time.Millisecond)
	if len(p.pongs) != 1 {
		t.Fatalf("pongs after crash: %d", len(p.pongs))
	}
	c.Restart("echo")
	// New ping after restart gets served.
	c.Inject(c.Now(), "probe", "probe", ping{n: 7})
	c.RunUntil(40 * time.Millisecond)
	if _, ok := p.pongs[7]; !ok {
		t.Fatal("restarted component did not serve")
	}
	if !c.IsCrashed("ghost") == false {
		t.Fatal("unknown component cannot be crashed")
	}
}

func TestRunUntilAdvancesClockPastQuietPeriods(t *testing.T) {
	c := New(1)
	p := &probe{sendAt: []time.Duration{500 * time.Millisecond}, pongs: map[int]time.Duration{}}
	c.Add("probe", p)
	c.Add("echo", &echo{})
	c.Start()
	// Step in 10ms increments; the clock must reach the horizon even
	// though the only event is far in the future.
	for i := 0; i < 10; i++ {
		c.RunUntil(c.Now() + 10*time.Millisecond)
	}
	if c.Now() != 100*time.Millisecond {
		t.Fatalf("clock: %s", c.Now())
	}
}

func TestDrainStopsOnBound(t *testing.T) {
	c := New(1)
	// A self-perpetuating timer never drains.
	c.Add("loop", loopForever{})
	c.Start()
	if err := c.Drain(1000); err == nil {
		t.Fatal("expected drain bound error")
	}
}

type loopForever struct{}

func (loopForever) OnStart(ctx *Context)                        { ctx.After(time.Millisecond, ping{}) }
func (loopForever) OnMessage(ctx *Context, _ string, _ Message) { ctx.After(time.Millisecond, ping{}) }

func TestDuplicateComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := New(1)
	c.Add("x", &echo{})
	c.Add("x", &echo{})
}

func TestTieBreakBySequence(t *testing.T) {
	// Two messages at the identical instant deliver in send order.
	c := New(1)
	rec := &recorder{}
	c.Add("rec", rec)
	c.Inject(time.Millisecond, "t", "rec", ping{n: 1})
	c.Inject(time.Millisecond, "t", "rec", ping{n: 2})
	c.RunUntil(time.Second)
	if len(rec.order) != 2 || rec.order[0] != 1 || rec.order[1] != 2 {
		t.Fatalf("order: %v", rec.order)
	}
}

type recorder struct{ order []int }

func (r *recorder) OnMessage(ctx *Context, _ string, msg Message) {
	if p, ok := msg.(ping); ok {
		r.order = append(r.order, p.n)
	}
}

func TestLatencySample(t *testing.T) {
	c := New(1)
	l := Latency{Base: 10 * time.Millisecond, Jitter: 5 * time.Millisecond}
	for i := 0; i < 100; i++ {
		d := l.Sample(c.Rand())
		if d < 10*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("sample out of range: %s", d)
		}
	}
	fixed := Latency{Base: 3 * time.Millisecond}
	if fixed.Sample(c.Rand()) != 3*time.Millisecond {
		t.Fatal("jitterless latency must be exact")
	}
}

func TestWorkAccumulatesWithinHandler(t *testing.T) {
	c := New(1)
	w := &worker{}
	c.Add("w", w)
	c.Inject(0, "t", "w", ping{})
	c.RunUntil(time.Second)
	if w.sawNow != 7*time.Millisecond {
		t.Fatalf("Now after Work: %s", w.sawNow)
	}
}

type worker struct{ sawNow time.Duration }

func (w *worker) OnMessage(ctx *Context, _ string, _ Message) {
	ctx.Work(3 * time.Millisecond)
	ctx.Work(4 * time.Millisecond)
	w.sawNow = ctx.Now()
}

func TestDeliveredCount(t *testing.T) {
	c := New(1)
	c.Add("rec", &recorder{})
	c.Inject(0, "t", "rec", ping{n: 1})
	c.Inject(0, "t", "rec", ping{n: 2})
	c.RunUntil(time.Second)
	if c.Delivered != 2 {
		t.Fatalf("delivered: %d", c.Delivered)
	}
}
