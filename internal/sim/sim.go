// Package sim is a deterministic discrete-event cluster simulator: the
// execution substrate that stands in for the paper's 14-CPU testbed (§4).
// Components (routers, workers, brokers, coordinators, clients) exchange
// messages with configurable link latencies, and every component is a
// serial processor: message handling consumes simulated CPU time, so
// overload produces queueing delay exactly like a real node (this is what
// makes the Figure-4 latency/throughput knee emerge rather than being
// hard-coded).
//
// Determinism: events are ordered by (time, sequence number) and all
// randomness flows from one seeded source, so every simulation run is
// exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"statefulentities.dev/stateflow/internal/obs"
)

// Message is an opaque payload delivered to a component.
type Message any

// Handler reacts to messages. Implementations must only interact with the
// cluster through the Context passed in.
type Handler interface {
	// OnMessage handles one message. CPU cost is charged via ctx.Work.
	OnMessage(ctx *Context, from string, msg Message)
}

// StartHandler is implemented by components that act when the simulation
// starts (e.g. sources that schedule their first arrival).
type StartHandler interface {
	OnStart(ctx *Context)
}

// RestartHandler is implemented by components that must rebuild volatile
// state when they come back from a crash (e.g. a coordinator reloading
// its durable log). OnRestart runs as a scheduled event immediately after
// the Restart that revived the component — a reboot, not a message — and
// is skipped if the component is crashed again before the event fires.
type RestartHandler interface {
	OnRestart(ctx *Context)
}

type component struct {
	id        string
	h         Handler
	busyUntil time.Duration
	crashed   bool
	// booting marks a RestartHandler component whose reboot event is
	// scheduled but has not run: the machine is still down, and any crash
	// arriving meanwhile cancels the boot (the kill wins).
	booting bool
	// holdUntil pins the crashed flag until the given virtual time:
	// Restart calls before it are ignored (a dead machine cannot be
	// willed back by its peers; see CrashUntil).
	holdUntil time.Duration
	inbox     int // messages queued (in flight) to this component
	// plannedCrashes holds crash instants registered through
	// ScheduleCrash. A send this component stamps past one of them is
	// voided before the wire sees it: the CPU span that issued it was
	// preempted at the instant, so the send never left the node.
	plannedCrashes []time.Duration
}

// preemptedBefore reports whether a planned crash instant lies in
// [now, sentAt): the machine dies before its local clock reaches sentAt,
// so an effect stamped there never happened. Instants before now have
// already fired and are covered by the crashed flag.
func (comp *component) preemptedBefore(now, sentAt time.Duration) bool {
	for _, x := range comp.plannedCrashes {
		if x >= now && x < sentAt {
			return true
		}
	}
	return false
}

type event struct {
	at   time.Duration
	seq  uint64
	to   string
	from string
	msg  Message
	// sentAt is the sender's local (effective) time at the Send call. A
	// crash voids every queued send the component issued after the crash
	// instant: a handler whose CPU span straddles the instant was
	// preempted there, and nothing it "did" past that point — a send any
	// more than an fsync — ever happened.
	sentAt time.Duration
	// dropped marks an event voided by the sender's crash; it is consumed
	// from the queue (and the inbox accounting) without being delivered.
	dropped bool
	// fn, when non-nil, is a scheduled virtual-time action (ScheduleAt)
	// instead of a message delivery.
	fn func(*Cluster)
	// counted marks whether the event incremented its target's inbox at
	// enqueue time (false when the target was not yet registered), so the
	// dequeue-side decrement stays balanced.
	counted bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Perturb is a per-delivery fault verdict returned by a PerturbFunc:
// the zero value delivers the message untouched.
type Perturb struct {
	// Drop loses the message (it is never enqueued; Delivered and inbox
	// accounting never see it). Drop wins over the other fields: a
	// verdict with both Drop and Duplicate set loses every copy — model
	// "original lost, late copy survives" as a plain Delay instead.
	Drop bool
	// Delay adds extra delivery latency on top of the link latency.
	Delay time.Duration
	// Duplicate enqueues a second copy of the message, DupDelay after the
	// original delivery time.
	Duplicate bool
	DupDelay  time.Duration
}

// PerturbFunc inspects one message send and decides its fault verdict.
// It runs at send time (deterministic order) and may draw randomness from
// the cluster's single RNG so runs stay exactly reproducible. Self-sends
// (from == to, i.e. timers) and scheduled actions are never perturbed.
type PerturbFunc func(from, to string, at time.Duration, msg Message) Perturb

// Cluster is a simulated deployment.
type Cluster struct {
	comps   map[string]*component
	order   []string
	queue   eventHeap
	seq     uint64
	now     time.Duration
	rng     *rand.Rand
	perturb PerturbFunc
	// crashWatch holds per-component crash observers (durable-storage
	// models apply their device crash contract at the crash instant).
	crashWatch map[string][]func(at time.Duration)
	// flight, when set, records cluster-level lifecycle events (crashes,
	// reboots) for post-mortem timelines. Purely observational: recording
	// never touches the RNG, the event queue, or virtual time.
	flight *obs.FlightRecorder
	// Delivered counts total messages delivered, as a sanity metric.
	Delivered uint64
}

// New builds an empty cluster with a deterministic seed.
func New(seed int64) *Cluster {
	return &Cluster{
		comps: map[string]*component{},
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Add registers a component under an id. Adding a duplicate id panics: the
// topology is static and built by trusted code.
func (c *Cluster) Add(id string, h Handler) {
	if _, dup := c.comps[id]; dup {
		panic(fmt.Sprintf("sim: duplicate component %s", id))
	}
	c.comps[id] = &component{id: id, h: h}
	c.order = append(c.order, id)
}

// Component returns the handler registered under id, or nil.
func (c *Cluster) Component(id string) Handler {
	if comp, ok := c.comps[id]; ok {
		return comp.h
	}
	return nil
}

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return c.now }

// SetFlightRecorder attaches a flight recorder that receives component
// crash/reboot events. Pass nil to detach.
func (c *Cluster) SetFlightRecorder(f *obs.FlightRecorder) { c.flight = f }

// FlightRecorder returns the attached recorder (nil when none).
func (c *Cluster) FlightRecorder() *obs.FlightRecorder { return c.flight }

// Rand exposes the cluster's deterministic randomness source.
func (c *Cluster) Rand() *rand.Rand { return c.rng }

// Crash marks a component crashed: it silently drops every message until
// Restart. Used for failure-injection experiments.
func (c *Cluster) Crash(id string) {
	if comp, ok := c.comps[id]; ok {
		c.markCrashed(comp)
	}
}

// CrashUntil crashes a component and holds it down until the given
// virtual time: Restart calls before then are ignored, so a recovery
// protocol cannot resurrect a machine the fault schedule still holds
// dead. The hold releases at `until`; the component stays crashed until
// someone actually calls Restart at or after that time.
func (c *Cluster) CrashUntil(id string, until time.Duration) {
	if comp, ok := c.comps[id]; ok {
		c.markCrashed(comp)
		if until > comp.holdUntil {
			comp.holdUntil = until
		}
	}
}

// ScheduleCrash plans a crash window: the component crashes at `at`
// (held down, see CrashUntil) and is restarted at `until`. Planning
// through this API — rather than raw ScheduleAt actions — registers the
// crash instant with the component up front, so a send a handler stamps
// past it is voided before the wire (and the perturb interceptor) ever
// sees it. A handler whose CPU span straddles the instant was preempted
// there; without the registry, its sends would reach the perturbation
// layer at flush time, before the crash event pops from the queue.
func (c *Cluster) ScheduleCrash(id string, at, until time.Duration) {
	if comp, ok := c.comps[id]; ok {
		comp.plannedCrashes = append(comp.plannedCrashes, at)
	}
	c.ScheduleAt(at, func(c *Cluster) { c.CrashUntil(id, until) })
	c.ScheduleAt(until, func(c *Cluster) { c.Restart(id) })
}

// markCrashed flips a component to crashed, notifying crash watchers on
// the alive→dead transition only (a machine already dead cannot crash
// harder; its attached storage already applied the contract). A crash —
// even a redundant one — cancels any pending reboot: the machine never
// came up, so a kill issued after the restart wins.
func (c *Cluster) markCrashed(comp *component) {
	comp.booting = false
	if comp.crashed {
		return
	}
	comp.crashed = true
	// Void every queued send this component issued after the crash
	// instant. A handler whose CPU span straddles the instant ran to
	// completion in engine order, but the machine was preempted at the
	// instant itself: sends stamped past it never left the node — exactly
	// as the storage crash contract already voids syncs stamped past it.
	// Without this, an fsync could be torn while a send issued *after* it
	// survives, an ordering no real machine can produce.
	for _, ev := range c.queue {
		if ev.fn == nil && ev.from == comp.id && ev.sentAt > c.now {
			ev.dropped = true
		}
	}
	for _, fn := range c.crashWatch[comp.id] {
		fn(c.now)
	}
	c.flight.Record(c.now, comp.id, "crash", "")
}

// WatchCrash registers fn to run at the virtual instant id crashes (on
// each alive→dead transition). Durable-storage models use it to apply
// their crash contract — e.g. a dlog.SimLog losing its unsynced tail —
// at the exact crash time rather than at the later restart.
func (c *Cluster) WatchCrash(id string, fn func(at time.Duration)) {
	if c.crashWatch == nil {
		c.crashWatch = map[string][]func(at time.Duration){}
	}
	c.crashWatch[id] = append(c.crashWatch[id], fn)
}

// Restart clears the crashed flag; the component's handler decides how to
// recover (e.g. reload a snapshot) when the next message arrives. A
// restart also resets busyUntil: pre-crash CPU backlog does not survive
// the reboot. Restarting a component still held down by CrashUntil is a
// no-op.
//
// If the component implements RestartHandler and was actually crashed,
// the restart is a *reboot*: the component stays dead until a scheduled
// boot event at the restart instant clears the crash flag and invokes
// OnRestart — so no message queued for that same instant can slip into
// the component ahead of its recovery, and a hold-down window re-imposed
// before the boot suppresses it.
func (c *Cluster) Restart(id string) {
	comp, ok := c.comps[id]
	if !ok {
		return
	}
	if c.now < comp.holdUntil {
		return
	}
	rh, hasHook := comp.h.(RestartHandler)
	if !comp.crashed || !hasHook {
		if comp.crashed {
			c.flight.Record(c.now, comp.id, "reboot", "")
		}
		comp.crashed = false
		comp.busyUntil = c.now
		return
	}
	comp.booting = true
	c.ScheduleAt(c.now, func(cl *Cluster) {
		if !comp.booting {
			return // re-killed before the boot completed, or already booted
		}
		if cl.now < comp.holdUntil {
			return // crashed again (with a hold) before the boot completed
		}
		comp.booting = false
		comp.crashed = false
		comp.busyUntil = cl.now
		cl.flight.Record(cl.now, comp.id, "reboot", "recovering")
		ctx := &Context{cluster: cl, self: comp.id, effective: cl.now}
		rh.OnRestart(ctx)
		comp.busyUntil = ctx.effective
		ctx.flush()
	})
}

// IsCrashed reports crash status.
func (c *Cluster) IsCrashed(id string) bool {
	comp, ok := c.comps[id]
	return ok && comp.crashed
}

// Inbox reports how many messages are currently queued for a component.
// Dropped-at-delivery messages (crashed target) still count while queued:
// the sender has no way to know the target is dead.
func (c *Cluster) Inbox(id string) int {
	if comp, ok := c.comps[id]; ok {
		return comp.inbox
	}
	return 0
}

// SetPerturb installs a delivery interceptor consulted for every
// cross-component message send (self-sends and scheduled actions are
// exempt: timers are a component's own clockwork, not network traffic).
// Pass nil to remove it.
func (c *Cluster) SetPerturb(f PerturbFunc) { c.perturb = f }

// push enqueues one message send, applying the perturb interceptor.
func (c *Cluster) push(at, sentAt time.Duration, from, to string, msg Message) {
	if comp, ok := c.comps[from]; ok && comp.preemptedBefore(c.now, sentAt) {
		return // sender dies before stamping this send; it never leaves the node
	}
	if c.perturb != nil && from != to {
		p := c.perturb(from, to, at, msg)
		if p.Drop {
			return
		}
		if p.Duplicate {
			c.pushRaw(at+p.Delay+p.DupDelay, sentAt, from, to, msg)
		}
		at += p.Delay
	}
	c.pushRaw(at, sentAt, from, to, msg)
}

// pushRaw enqueues an event without perturbation.
func (c *Cluster) pushRaw(at, sentAt time.Duration, from, to string, msg Message) {
	c.seq++
	counted := false
	if comp, ok := c.comps[to]; ok {
		comp.inbox++
		counted = true
	}
	heap.Push(&c.queue, &event{at: at, seq: c.seq, to: to, from: from, msg: msg, sentAt: sentAt, counted: counted})
}

// Inject schedules a message delivery from outside the simulation (e.g. a
// test or an interactive driver acting as an external client).
func (c *Cluster) Inject(at time.Duration, from, to string, msg Message) {
	if at < c.now {
		at = c.now
	}
	c.push(at, at, from, to, msg)
}

// ScheduleAt registers a virtual-time action: fn runs against the cluster
// when the clock reaches at (clamped to now), ordered with message
// deliveries by (time, sequence). Fault schedules use it to crash and
// restart components at planned instants; fn must not block.
func (c *Cluster) ScheduleAt(at time.Duration, fn func(*Cluster)) {
	if at < c.now {
		at = c.now
	}
	c.seq++
	heap.Push(&c.queue, &event{at: at, seq: c.seq, fn: fn})
}

// Start invokes OnStart on every component (in registration order) at the
// current virtual time.
func (c *Cluster) Start() {
	for _, id := range c.order {
		comp := c.comps[id]
		if sh, ok := comp.h.(StartHandler); ok {
			ctx := &Context{cluster: c, self: id, effective: c.now}
			sh.OnStart(ctx)
			ctx.flush()
		}
	}
}

// RunUntil processes events in time order until the queue drains or the
// horizon passes. It returns the number of events processed.
func (c *Cluster) RunUntil(horizon time.Duration) int {
	n := 0
	for len(c.queue) > 0 {
		ev := c.queue[0]
		if ev.at > horizon {
			break
		}
		heap.Pop(&c.queue)
		c.now = ev.at
		n++
		if ev.fn != nil {
			ev.fn(c) // scheduled virtual-time action
			continue
		}
		comp, ok := c.comps[ev.to]
		if !ok {
			continue // component removed; drop
		}
		if ev.counted {
			comp.inbox--
		}
		if ev.dropped {
			continue // voided by the sender's crash; never delivered
		}
		if comp.crashed {
			continue // lost message (consumed from the inbox, never delivered)
		}
		// Serial processor: handling begins when the component is free.
		start := ev.at
		if comp.busyUntil > start {
			start = comp.busyUntil
		}
		ctx := &Context{cluster: c, self: ev.to, effective: start}
		comp.h.OnMessage(ctx, ev.from, ev.msg)
		comp.busyUntil = ctx.effective
		ctx.flush()
		c.Delivered++
	}
	// Advance the clock to the horizon even when the next event lies
	// beyond it, so callers stepping in fixed increments make progress.
	if c.now < horizon {
		c.now = horizon
	}
	return n
}

// Drain runs until no events remain (no horizon). It guards against
// runaway simulations with a generous event bound.
func (c *Cluster) Drain(maxEvents int) error {
	n := 0
	for len(c.queue) > 0 {
		if n >= maxEvents {
			return fmt.Errorf("sim: drain exceeded %d events", maxEvents)
		}
		ev := c.queue[0]
		n += c.RunUntil(ev.at)
	}
	return nil
}

// Pending reports queued events (for tests).
func (c *Cluster) Pending() int { return len(c.queue) }

// Components lists component ids sorted.
func (c *Cluster) Components() []string {
	out := append([]string(nil), c.order...)
	sort.Strings(out)
	return out
}

// Context is the capability handed to a component while it processes one
// message.
type Context struct {
	cluster   *Cluster
	self      string
	effective time.Duration // current time including consumed CPU
	outbox    []*event
}

// Self returns the component's own id.
func (ctx *Context) Self() string { return ctx.self }

// Now returns the component-local current time: the message arrival time
// plus any CPU already consumed while handling it.
func (ctx *Context) Now() time.Duration { return ctx.effective }

// Rand returns the cluster's deterministic randomness source.
func (ctx *Context) Rand() *rand.Rand { return ctx.cluster.rng }

// Work charges d of CPU time to this component: subsequent sends happen
// later, and the component stays busy (queueing later messages) until all
// charged work completes.
func (ctx *Context) Work(d time.Duration) {
	if d > 0 {
		ctx.effective += d
	}
}

// Send delivers msg to another component after the given link latency,
// measured from the current effective time.
func (ctx *Context) Send(to string, msg Message, latency time.Duration) {
	ctx.outbox = append(ctx.outbox, &event{
		at: ctx.effective + latency, sentAt: ctx.effective, to: to, from: ctx.self, msg: msg,
	})
}

// After schedules a message to self (a timer).
func (ctx *Context) After(d time.Duration, msg Message) {
	ctx.Send(ctx.self, msg, d)
}

// flush moves buffered sends into the cluster queue (through the perturb
// interceptor). Deferred so a handler's sends all reflect its final
// effective time ordering.
func (ctx *Context) flush() {
	for _, e := range ctx.outbox {
		ctx.cluster.push(e.at, e.sentAt, e.from, e.to, e.msg)
	}
	ctx.outbox = nil
}

// Latency is a randomized link-latency model: base plus uniform jitter.
type Latency struct {
	Base   time.Duration
	Jitter time.Duration // uniform in [0, Jitter)
}

// Sample draws one latency value.
func (l Latency) Sample(rng *rand.Rand) time.Duration {
	if l.Jitter <= 0 {
		return l.Base
	}
	return l.Base + time.Duration(rng.Int63n(int64(l.Jitter)))
}
