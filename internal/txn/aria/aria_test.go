package aria

import (
	"math/rand"
	"testing"
	"testing/quick"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/state"
)

func ref(key string) interp.EntityRef { return interp.EntityRef{Class: "A", Key: key} }

// rkey is the reservation key of ref(key) over a nil layout registry
// (class "A" interns to id 0).
func rkey(key string) ResKey { return ResKey{Class: 0, Key: key} }

func setOf(reads, writes []string) *RWSet {
	rw := NewRWSet()
	for _, r := range reads {
		rw.Read(rkey(r), EntityBit)
	}
	for _, w := range writes {
		rw.Write(rkey(w), EntityBit)
	}
	return rw
}

func TestValidateNoConflicts(t *testing.T) {
	sets := map[TID]*RWSet{
		1: setOf([]string{"x"}, []string{"x"}),
		2: setOf([]string{"y"}, []string{"y"}),
	}
	if ab := Validate([]TID{1, 2}, sets); len(ab) != 0 {
		t.Fatalf("aborts: %v", ab)
	}
}

func TestValidateRAW(t *testing.T) {
	// t2 reads what t1 writes: RAW, t2 aborts.
	sets := map[TID]*RWSet{
		1: setOf(nil, []string{"x"}),
		2: setOf([]string{"x"}, []string{"y"}),
	}
	ab := Validate([]TID{1, 2}, sets)
	if len(ab) != 1 || ab[0] != 2 {
		t.Fatalf("aborts: %v", ab)
	}
}

func TestValidateWAW(t *testing.T) {
	// Both write x: lowest TID wins.
	sets := map[TID]*RWSet{
		1: setOf(nil, []string{"x"}),
		2: setOf(nil, []string{"x"}),
	}
	ab := Validate([]TID{1, 2}, sets)
	if len(ab) != 1 || ab[0] != 2 {
		t.Fatalf("aborts: %v", ab)
	}
}

func TestValidateWARCommits(t *testing.T) {
	// t1 reads x, t2 writes x: WAR does not abort (snapshot reads, §3).
	sets := map[TID]*RWSet{
		1: setOf([]string{"x"}, nil),
		2: setOf(nil, []string{"x"}),
	}
	if ab := Validate([]TID{1, 2}, sets); len(ab) != 0 {
		t.Fatalf("aborts: %v", ab)
	}
}

func TestValidateConservativeChain(t *testing.T) {
	// t2 conflicts with t1; t3 conflicts with t2 only. Aria's one-pass
	// rule still aborts t3 (reservations of aborted txns count).
	sets := map[TID]*RWSet{
		1: setOf(nil, []string{"x"}),
		2: setOf([]string{"x"}, []string{"y"}),
		3: setOf([]string{"y"}, nil),
	}
	ab := Validate([]TID{1, 2, 3}, sets)
	if len(ab) != 2 || ab[0] != 2 || ab[1] != 3 {
		t.Fatalf("aborts: %v", ab)
	}
}

// Disjoint slot bitmaps on the same entity must not conflict; overlapping
// ones must.
func TestValidateSlotGranularity(t *testing.T) {
	mk := func(readSlots, writeSlots []int) *RWSet {
		rw := NewRWSet()
		for _, s := range readSlots {
			rw.Read(rkey("x"), SlotBit(s))
		}
		for _, s := range writeSlots {
			rw.Write(rkey("x"), SlotBit(s))
		}
		return rw
	}
	// Disjoint attribute writes on the same entity both commit.
	sets := map[TID]*RWSet{
		1: mk(nil, []int{0}),
		2: mk([]int{1}, []int{1}),
	}
	if ab := Validate([]TID{1, 2}, sets); len(ab) != 0 {
		t.Fatalf("disjoint slots aborted: %v", ab)
	}
	// Reading a slot a lower TID wrote aborts.
	sets = map[TID]*RWSet{
		1: mk(nil, []int{0}),
		2: mk([]int{0}, []int{1}),
	}
	if ab := Validate([]TID{1, 2}, sets); len(ab) != 1 || ab[0] != 2 {
		t.Fatalf("overlapping slot read survived: %v", ab)
	}
	// The whole-entity bit conflicts with any slot write... of itself
	// only: EntityBit and slot bits are disjoint reservations.
	sets = map[TID]*RWSet{
		1: mk(nil, []int{64}), // overflow slot -> EntityBit
		2: mk([]int{62}, nil),
	}
	if ab := Validate([]TID{1, 2}, sets); len(ab) != 0 {
		t.Fatalf("overflow vs plain slot: %v", ab)
	}
}

func TestValidateLowestAlwaysCommitsProperty(t *testing.T) {
	// Whatever the conflict pattern, the lowest TID never aborts -> no
	// starvation under retry (retries get the lowest TIDs of the next
	// batch).
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		order := make([]TID, n)
		sets := map[TID]*RWSet{}
		keys := []string{"a", "b", "c", "d"}
		for i := 0; i < n; i++ {
			tid := TID(i + 1)
			order[i] = tid
			rw := NewRWSet()
			for j := 0; j < 1+r.Intn(3); j++ {
				k := keys[r.Intn(len(keys))]
				b := SlotBit(r.Intn(4))
				if r.Intn(2) == 0 {
					rw.Read(rkey(k), b)
				} else {
					rw.Write(rkey(k), b)
				}
			}
			sets[tid] = rw
		}
		for _, ab := range Validate(order, sets) {
			if ab == order[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDeterministicProperty(t *testing.T) {
	prop := func(seed int64) bool {
		build := func() ([]TID, map[TID]*RWSet) {
			r := rand.New(rand.NewSource(seed))
			n := 2 + r.Intn(10)
			order := make([]TID, n)
			sets := map[TID]*RWSet{}
			for i := 0; i < n; i++ {
				tid := TID(i + 1)
				order[i] = tid
				rw := NewRWSet()
				rw.Write(rkey(string(rune('a'+r.Intn(4)))), SlotBit(r.Intn(3)))
				sets[tid] = rw
			}
			return order, sets
		}
		o1, s1 := build()
		o2, s2 := build()
		a1 := Validate(o1, s1)
		a2 := Validate(o2, s2)
		if len(a1) != len(a2) {
			return false
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Fallback schedule

// chainSets builds the canonical conflict chain t1: k0→k1, t2: k1→k2, …
// (each transaction reads and writes both endpoints, like a transfer).
func chainSets(n int) ([]TID, map[TID]*RWSet) {
	order := make([]TID, n)
	sets := map[TID]*RWSet{}
	key := func(i int) string { return string(rune('a' + i)) }
	for i := 0; i < n; i++ {
		tid := TID(i + 1)
		order[i] = tid
		rw := NewRWSet()
		for _, k := range []string{key(i), key(i + 1)} {
			rw.Read(rkey(k), SlotBit(0))
			rw.Write(rkey(k), SlotBit(0))
		}
		sets[tid] = rw
	}
	return order, sets
}

// A pure conflict chain: standard validation commits only the head, and
// the fallback schedule must rescue every other member — one per round,
// in TID order (each depends on its predecessor).
func TestFallbackSchedulesWholeChain(t *testing.T) {
	order, sets := chainSets(6)
	sched := Fallback(order, sets)
	if len(sched.Commit) != 5 {
		t.Fatalf("commit: %v", sched.Commit)
	}
	if len(sched.Rounds) != 5 {
		t.Fatalf("rounds: %v", sched.Rounds)
	}
	for i, round := range sched.Rounds {
		if len(round) != 1 || round[0] != TID(i+2) {
			t.Fatalf("round %d: %v (want [%d])", i, round, i+2)
		}
	}
}

// A fan (everyone conflicts with t1 only, pairwise disjoint): the whole
// aborted set is reorderable in a single concurrent round.
func TestFallbackFanIsOneRound(t *testing.T) {
	sets := map[TID]*RWSet{
		1: setOf(nil, []string{"a", "b", "c"}),
		2: setOf([]string{"a"}, []string{"x"}),
		3: setOf([]string{"b"}, []string{"y"}),
		4: setOf([]string{"c"}, []string{"z"}),
	}
	sched := Fallback([]TID{1, 2, 3, 4}, sets)
	if len(sched.Rounds) != 1 {
		t.Fatalf("rounds: %v", sched.Rounds)
	}
	if got := sched.Rounds[0]; len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("round 0: %v", got)
	}
}

// No conflicts, no schedule.
func TestFallbackEmptyWithoutConflicts(t *testing.T) {
	sets := map[TID]*RWSet{
		1: setOf([]string{"x"}, []string{"x"}),
		2: setOf([]string{"y"}, []string{"y"}),
	}
	if sched := Fallback([]TID{1, 2}, sets); len(sched.Commit) != 0 || len(sched.Rounds) != 0 {
		t.Fatalf("schedule not empty: %+v", sched)
	}
}

// Every conflict edge must order the higher TID into a later round than
// the lower; round members must be pairwise conflict-free; and the
// schedule must be a pure function of its inputs.
func TestFallbackScheduleProperties(t *testing.T) {
	prop := func(seed int64) bool {
		build := func() ([]TID, map[TID]*RWSet) {
			r := rand.New(rand.NewSource(seed))
			n := 3 + r.Intn(16)
			order := make([]TID, n)
			sets := map[TID]*RWSet{}
			keys := []string{"a", "b", "c", "d", "e"}
			for i := 0; i < n; i++ {
				tid := TID(i + 1)
				order[i] = tid
				rw := NewRWSet()
				for j := 0; j < 1+r.Intn(3); j++ {
					k := keys[r.Intn(len(keys))]
					b := SlotBit(r.Intn(3))
					if r.Intn(2) == 0 {
						rw.Read(rkey(k), b)
					} else {
						rw.Write(rkey(k), b)
					}
				}
				sets[tid] = rw
			}
			return order, sets
		}
		order, sets := build()
		sched := Fallback(order, sets)
		round := map[TID]int{}
		for r, members := range sched.Rounds {
			for i, tid := range members {
				round[tid] = r
				for _, peer := range members[:i] {
					if Conflicts(sets[peer], sets[tid]) {
						return false // round members must be disjoint
					}
				}
			}
		}
		for tid, r := range round {
			for peer, pr := range round {
				if peer < tid && Conflicts(sets[peer], sets[tid]) && pr >= r {
					return false // conflict edge must order the rounds
				}
			}
		}
		// Determinism: same inputs, same plan.
		order2, sets2 := build()
		sched2 := Fallback(order2, sets2)
		if len(sched2.Commit) != len(sched.Commit) {
			return false
		}
		for i := range sched.Commit {
			if sched.Commit[i] != sched2.Commit[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Conflicts must see all three dependency kinds and ignore read/read.
func TestConflicts(t *testing.T) {
	cases := []struct {
		name string
		a, b *RWSet
		want bool
	}{
		{"waw", setOf(nil, []string{"x"}), setOf(nil, []string{"x"}), true},
		{"raw", setOf(nil, []string{"x"}), setOf([]string{"x"}, nil), true},
		{"war", setOf([]string{"x"}, nil), setOf(nil, []string{"x"}), true},
		{"read-read", setOf([]string{"x"}, nil), setOf([]string{"x"}, nil), false},
		{"disjoint", setOf([]string{"x"}, []string{"x"}), setOf([]string{"y"}, []string{"y"}), false},
	}
	for _, c := range cases {
		if got := Conflicts(c.a, c.b); got != c.want {
			t.Errorf("%s: Conflicts = %v, want %v", c.name, got, c.want)
		}
	}
}

// ---------------------------------------------------------------------------
// Workspace

func get(t *testing.T, st interp.State, attr string) interp.Value {
	t.Helper()
	v, ok := st.Get(attr)
	if !ok {
		t.Fatalf("attr %s missing", attr)
	}
	return v
}

func TestWorkspaceReadsCommitted(t *testing.T) {
	committed := state.NewStore(nil)
	committed.PutMap(ref("x"), interp.MapState{"v": interp.IntV(10)})
	ws := NewWorkspace(1, committed)
	st, ok := ws.Lookup(ref("x"))
	if !ok {
		t.Fatal("lookup")
	}
	if v := get(t, st, "v"); v.I != 10 {
		t.Fatalf("get: %v", v)
	}
	if ws.RW.Reads[rkey("x")] == 0 {
		t.Fatal("read not recorded")
	}
}

func TestWorkspaceWriteIsolation(t *testing.T) {
	committed := state.NewStore(nil)
	committed.PutMap(ref("x"), interp.MapState{"v": interp.IntV(10)})
	ws := NewWorkspace(1, committed)
	st, _ := ws.Lookup(ref("x"))
	st.Set("v", interp.IntV(99))
	// Own read sees own write.
	if v := get(t, st, "v"); v.I != 99 {
		t.Fatalf("own read: %v", v)
	}
	// Committed store untouched until Apply.
	base, _ := committed.Lookup(ref("x"))
	if get(t, base, "v").I != 10 {
		t.Fatalf("committed leaked")
	}
	if ws.RW.Writes[rkey("x")] == 0 {
		t.Fatal("write not recorded")
	}
	ws.Apply(committed)
	base, _ = committed.Lookup(ref("x"))
	if get(t, base, "v").I != 99 {
		t.Fatalf("apply")
	}
}

func TestWorkspaceCopyOnWritePreservesOtherAttrs(t *testing.T) {
	committed := state.NewStore(nil)
	committed.PutMap(ref("x"), interp.MapState{"a": interp.IntV(1), "b": interp.IntV(2)})
	ws := NewWorkspace(1, committed)
	st, _ := ws.Lookup(ref("x"))
	st.Set("a", interp.IntV(100))
	ws.Apply(committed)
	base, _ := committed.Lookup(ref("x"))
	if get(t, base, "a").I != 100 || get(t, base, "b").I != 2 {
		t.Fatalf("after apply: %v", base)
	}
}

// Two workspaces writing disjoint layout slots of the same entity must
// both survive: slot-granular validation passes both and merge-apply
// keeps both writes.
func TestDisjointSlotWritesMerge(t *testing.T) {
	layouts := &ir.Layouts{ByClass: map[string]*ir.ClassLayout{
		"A": ir.NewClassLayout("A", 0, []string{"a", "b"}),
	}}
	layouts.ByID = []*ir.ClassLayout{layouts.ByClass["A"]}
	committed := state.NewStore(layouts)
	committed.PutMap(ref("x"), interp.MapState{"a": interp.IntV(1), "b": interp.IntV(2)})
	w1 := NewWorkspace(1, committed)
	w2 := NewWorkspace(2, committed)
	s1, _ := w1.Lookup(ref("x"))
	s2, _ := w2.Lookup(ref("x"))
	s1.Set("a", interp.IntV(100))
	s2.Set("b", interp.IntV(200))
	order := []TID{1, 2}
	sets := map[TID]*RWSet{1: w1.RW, 2: w2.RW}
	if ab := Validate(order, sets); len(ab) != 0 {
		t.Fatalf("disjoint attr writes aborted: %v", ab)
	}
	w1.Apply(committed)
	w2.Apply(committed)
	base, _ := committed.Lookup(ref("x"))
	if get(t, base, "a").I != 100 || get(t, base, "b").I != 200 {
		t.Fatalf("merge lost a write: %v", base.ToMap())
	}
}

// A write that forces a whole-row install on apply (off-layout or
// overflow attribute) must reserve the entire entity: otherwise it would
// pass validation against a lower-TID slot write and then revert it when
// the full row is installed.
func TestWholeRowInstallConflictsWithSlotWrites(t *testing.T) {
	layouts := &ir.Layouts{ByClass: map[string]*ir.ClassLayout{
		"A": ir.NewClassLayout("A", 0, []string{"a", "b"}),
	}}
	layouts.ByID = []*ir.ClassLayout{layouts.ByClass["A"]}
	committed := state.NewStore(layouts)
	committed.PutMap(ref("x"), interp.MapState{"a": interp.IntV(1), "b": interp.IntV(2)})
	w1 := NewWorkspace(1, committed)
	w2 := NewWorkspace(2, committed)
	s1, _ := w1.Lookup(ref("x"))
	s2, _ := w2.Lookup(ref("x"))
	s1.Set("a", interp.IntV(100)) // slot write
	s2.Set("dyn", interp.IntV(9)) // off-layout write -> whole-row install
	aborts := Validate([]TID{1, 2}, map[TID]*RWSet{1: w1.RW, 2: w2.RW})
	if len(aborts) != 1 || aborts[0] != 2 {
		t.Fatalf("whole-row installer must abort against lower slot write: %v", aborts)
	}
	// Applying only the survivor keeps the slot write.
	w1.Apply(committed)
	base, _ := committed.Lookup(ref("x"))
	if get(t, base, "a").I != 100 {
		t.Fatal("slot write lost")
	}
}

func TestWorkspaceCreate(t *testing.T) {
	committed := state.NewStore(nil)
	ws := NewWorkspace(1, committed)
	st, err := ws.Create(ref("new"))
	if err != nil {
		t.Fatal(err)
	}
	st.Set("v", interp.IntV(5))
	// Visible inside the workspace.
	if _, ok := ws.Lookup(ref("new")); !ok {
		t.Fatal("created entity invisible in workspace")
	}
	// Invisible outside until apply.
	if committed.Exists(ref("new")) {
		t.Fatal("created entity leaked")
	}
	ws.Apply(committed)
	if !committed.Exists(ref("new")) {
		t.Fatal("create not applied")
	}
}

func TestWorkspaceCreateDuplicate(t *testing.T) {
	committed := state.NewStore(nil)
	committed.PutMap(ref("x"), interp.MapState{})
	ws := NewWorkspace(1, committed)
	if _, err := ws.Create(ref("x")); err == nil {
		t.Fatal("duplicate create must fail")
	}
	if _, err := ws.Create(ref("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Create(ref("y")); err == nil {
		t.Fatal("duplicate create inside workspace must fail")
	}
}

func TestWorkspaceLookupMissing(t *testing.T) {
	ws := NewWorkspace(1, state.NewStore(nil))
	if _, ok := ws.Lookup(ref("ghost")); ok {
		t.Fatal("missing entity must not resolve")
	}
}

func TestTwoWorkspacesAreIsolated(t *testing.T) {
	committed := state.NewStore(nil)
	committed.PutMap(ref("x"), interp.MapState{"v": interp.IntV(0)})
	w1 := NewWorkspace(1, committed)
	w2 := NewWorkspace(2, committed)
	s1, _ := w1.Lookup(ref("x"))
	s2, _ := w2.Lookup(ref("x"))
	s1.Set("v", interp.IntV(1))
	if v := get(t, s2, "v"); v.I != 0 {
		t.Fatalf("w2 saw w1's write: %v", v)
	}
}

func TestWriteBytesAndTouched(t *testing.T) {
	committed := state.NewStore(nil)
	ws := NewWorkspace(1, committed)
	if ws.WriteBytes() != 0 {
		t.Fatal("empty workspace bytes")
	}
	st, _ := ws.Create(ref("a"))
	st.Set("payload", interp.StrV(string(make([]byte, 1000))))
	if ws.WriteBytes() < 1000 {
		t.Fatalf("write bytes: %d", ws.WriteBytes())
	}
	touched := ws.TouchedEntities()
	if len(touched) != 1 || touched[0] != ref("a") {
		t.Fatalf("touched: %v", touched)
	}
}

func TestRWSetMerge(t *testing.T) {
	a := setOf([]string{"x"}, []string{"y"})
	b := setOf([]string{"z"}, []string{"y"})
	a.Merge(b)
	if len(a.Reads) != 2 || len(a.Writes) != 1 {
		t.Fatalf("merge: %v", a)
	}
}
