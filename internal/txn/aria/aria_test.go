package aria

import (
	"math/rand"
	"testing"
	"testing/quick"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/state"
)

func ref(key string) interp.EntityRef { return interp.EntityRef{Class: "A", Key: key} }

func setOf(reads, writes []string) *RWSet {
	rw := NewRWSet()
	for _, r := range reads {
		rw.Reads[ref(r)] = true
	}
	for _, w := range writes {
		rw.Writes[ref(w)] = true
	}
	return rw
}

func TestValidateNoConflicts(t *testing.T) {
	sets := map[TID]*RWSet{
		1: setOf([]string{"x"}, []string{"x"}),
		2: setOf([]string{"y"}, []string{"y"}),
	}
	if ab := Validate([]TID{1, 2}, sets); len(ab) != 0 {
		t.Fatalf("aborts: %v", ab)
	}
}

func TestValidateRAW(t *testing.T) {
	// t2 reads what t1 writes: RAW, t2 aborts.
	sets := map[TID]*RWSet{
		1: setOf(nil, []string{"x"}),
		2: setOf([]string{"x"}, []string{"y"}),
	}
	ab := Validate([]TID{1, 2}, sets)
	if len(ab) != 1 || ab[0] != 2 {
		t.Fatalf("aborts: %v", ab)
	}
}

func TestValidateWAW(t *testing.T) {
	// Both write x: lowest TID wins.
	sets := map[TID]*RWSet{
		1: setOf(nil, []string{"x"}),
		2: setOf(nil, []string{"x"}),
	}
	ab := Validate([]TID{1, 2}, sets)
	if len(ab) != 1 || ab[0] != 2 {
		t.Fatalf("aborts: %v", ab)
	}
}

func TestValidateWARCommits(t *testing.T) {
	// t1 reads x, t2 writes x: WAR does not abort (snapshot reads, §3).
	sets := map[TID]*RWSet{
		1: setOf([]string{"x"}, nil),
		2: setOf(nil, []string{"x"}),
	}
	if ab := Validate([]TID{1, 2}, sets); len(ab) != 0 {
		t.Fatalf("aborts: %v", ab)
	}
}

func TestValidateConservativeChain(t *testing.T) {
	// t2 conflicts with t1; t3 conflicts with t2 only. Aria's one-pass
	// rule still aborts t3 (reservations of aborted txns count).
	sets := map[TID]*RWSet{
		1: setOf(nil, []string{"x"}),
		2: setOf([]string{"x"}, []string{"y"}),
		3: setOf([]string{"y"}, nil),
	}
	ab := Validate([]TID{1, 2, 3}, sets)
	if len(ab) != 2 || ab[0] != 2 || ab[1] != 3 {
		t.Fatalf("aborts: %v", ab)
	}
}

func TestValidateLowestAlwaysCommitsProperty(t *testing.T) {
	// Whatever the conflict pattern, the lowest TID never aborts -> no
	// starvation under retry (retries get the lowest TIDs of the next
	// batch).
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		order := make([]TID, n)
		sets := map[TID]*RWSet{}
		keys := []string{"a", "b", "c", "d"}
		for i := 0; i < n; i++ {
			tid := TID(i + 1)
			order[i] = tid
			rw := NewRWSet()
			for j := 0; j < 1+r.Intn(3); j++ {
				k := keys[r.Intn(len(keys))]
				if r.Intn(2) == 0 {
					rw.Reads[ref(k)] = true
				} else {
					rw.Writes[ref(k)] = true
				}
			}
			sets[tid] = rw
		}
		for _, ab := range Validate(order, sets) {
			if ab == order[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDeterministicProperty(t *testing.T) {
	prop := func(seed int64) bool {
		build := func() ([]TID, map[TID]*RWSet) {
			r := rand.New(rand.NewSource(seed))
			n := 2 + r.Intn(10)
			order := make([]TID, n)
			sets := map[TID]*RWSet{}
			for i := 0; i < n; i++ {
				tid := TID(i + 1)
				order[i] = tid
				rw := NewRWSet()
				rw.Writes[ref(string(rune('a'+r.Intn(4))))] = true
				sets[tid] = rw
			}
			return order, sets
		}
		o1, s1 := build()
		o2, s2 := build()
		a1 := Validate(o1, s1)
		a2 := Validate(o2, s2)
		if len(a1) != len(a2) {
			return false
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Workspace

func TestWorkspaceReadsCommitted(t *testing.T) {
	committed := state.NewStore()
	committed.Put(ref("x"), interp.MapState{"v": interp.IntV(10)})
	ws := NewWorkspace(1, committed)
	st, ok := ws.Lookup(ref("x"))
	if !ok {
		t.Fatal("lookup")
	}
	v, ok := st.Get("v")
	if !ok || v.I != 10 {
		t.Fatalf("get: %v", v)
	}
	if !ws.RW.Reads[ref("x")] {
		t.Fatal("read not recorded")
	}
}

func TestWorkspaceWriteIsolation(t *testing.T) {
	committed := state.NewStore()
	committed.Put(ref("x"), interp.MapState{"v": interp.IntV(10)})
	ws := NewWorkspace(1, committed)
	st, _ := ws.Lookup(ref("x"))
	st.Set("v", interp.IntV(99))
	// Own read sees own write.
	v, _ := st.Get("v")
	if v.I != 99 {
		t.Fatalf("own read: %v", v)
	}
	// Committed store untouched until Apply.
	base, _ := committed.Lookup(ref("x"))
	if base["v"].I != 10 {
		t.Fatalf("committed leaked: %v", base["v"])
	}
	if !ws.RW.Writes[ref("x")] {
		t.Fatal("write not recorded")
	}
	ws.Apply(committed)
	base, _ = committed.Lookup(ref("x"))
	if base["v"].I != 99 {
		t.Fatalf("apply: %v", base["v"])
	}
}

func TestWorkspaceCopyOnWritePreservesOtherAttrs(t *testing.T) {
	committed := state.NewStore()
	committed.Put(ref("x"), interp.MapState{"a": interp.IntV(1), "b": interp.IntV(2)})
	ws := NewWorkspace(1, committed)
	st, _ := ws.Lookup(ref("x"))
	st.Set("a", interp.IntV(100))
	ws.Apply(committed)
	base, _ := committed.Lookup(ref("x"))
	if base["a"].I != 100 || base["b"].I != 2 {
		t.Fatalf("after apply: %v", base)
	}
}

func TestWorkspaceCreate(t *testing.T) {
	committed := state.NewStore()
	ws := NewWorkspace(1, committed)
	st, err := ws.Create(ref("new"))
	if err != nil {
		t.Fatal(err)
	}
	st.Set("v", interp.IntV(5))
	// Visible inside the workspace.
	if _, ok := ws.Lookup(ref("new")); !ok {
		t.Fatal("created entity invisible in workspace")
	}
	// Invisible outside until apply.
	if committed.Exists(ref("new")) {
		t.Fatal("created entity leaked")
	}
	ws.Apply(committed)
	if !committed.Exists(ref("new")) {
		t.Fatal("create not applied")
	}
}

func TestWorkspaceCreateDuplicate(t *testing.T) {
	committed := state.NewStore()
	committed.Put(ref("x"), interp.MapState{})
	ws := NewWorkspace(1, committed)
	if _, err := ws.Create(ref("x")); err == nil {
		t.Fatal("duplicate create must fail")
	}
	if _, err := ws.Create(ref("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Create(ref("y")); err == nil {
		t.Fatal("duplicate create inside workspace must fail")
	}
}

func TestWorkspaceLookupMissing(t *testing.T) {
	ws := NewWorkspace(1, state.NewStore())
	if _, ok := ws.Lookup(ref("ghost")); ok {
		t.Fatal("missing entity must not resolve")
	}
}

func TestTwoWorkspacesAreIsolated(t *testing.T) {
	committed := state.NewStore()
	committed.Put(ref("x"), interp.MapState{"v": interp.IntV(0)})
	w1 := NewWorkspace(1, committed)
	w2 := NewWorkspace(2, committed)
	s1, _ := w1.Lookup(ref("x"))
	s2, _ := w2.Lookup(ref("x"))
	s1.Set("v", interp.IntV(1))
	v, _ := s2.Get("v")
	if v.I != 0 {
		t.Fatalf("w2 saw w1's write: %v", v)
	}
}

func TestWriteBytesAndTouched(t *testing.T) {
	committed := state.NewStore()
	ws := NewWorkspace(1, committed)
	if ws.WriteBytes() != 0 {
		t.Fatal("empty workspace bytes")
	}
	st, _ := ws.Create(ref("a"))
	st.Set("payload", interp.StrV(string(make([]byte, 1000))))
	if ws.WriteBytes() < 1000 {
		t.Fatalf("write bytes: %d", ws.WriteBytes())
	}
	touched := ws.TouchedEntities()
	if len(touched) != 1 || touched[0] != ref("a") {
		t.Fatalf("touched: %v", touched)
	}
}

func TestRWSetMerge(t *testing.T) {
	a := setOf([]string{"x"}, []string{"y"})
	b := setOf([]string{"z"}, []string{"y"})
	a.Merge(b)
	if len(a.Reads) != 2 || len(a.Writes) != 1 {
		t.Fatalf("merge: %v", a)
	}
}
