// Package aria implements the deterministic transaction protocol that
// StateFlow layers over the dataflow (§3): an extension of Aria (Lu et
// al., VLDB 2020). Root invocations are grouped into batches (epochs);
// every transaction in a batch executes optimistically against the state
// as of the batch start, buffering writes in a per-transaction workspace
// and recording read/write reservations. When the whole batch has
// finished executing, each worker validates its local reservations and
// the coordinator unions the votes into a deterministic global decision.
// Committed workspaces apply in TID order; aborted transactions are
// re-queued into the next batch.
//
// Reservations are recorded at (class-id, key, slot-bitmap) granularity:
// the reservation key interns the entity class as the compiler's dense
// class id, and the bitmap marks which attribute slots of the entity the
// transaction touched (plus a whole-entity bit for existence checks,
// creations, overflow slots and dynamically-added attributes). Two
// transactions that touch disjoint attributes of the same entity no
// longer conflict; committed writes apply slot-by-slot so disjoint
// updates merge instead of clobbering each other.
package aria

import (
	"fmt"
	"sort"

	"statefulentities.dev/stateflow/internal/core"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/state"
)

// TID is a transaction identifier; batch order is TID order, which makes
// the commit decision deterministic (§3, "deterministic transaction
// protocol").
type TID int64

// ResKey identifies an entity inside a reservation set: the dense class
// id (interned per state store from the program's layouts) plus the
// partition key.
type ResKey struct {
	Class int32
	Key   string
}

// Bits is an attribute-slot bitmap. Bit i covers layout slot i for
// i < 63; EntityBit covers entity existence, creation, overflow slots
// (≥ 63) and attributes outside the class layout.
type Bits uint64

// EntityBit is the whole-entity reservation bit.
const EntityBit Bits = 1 << 63

// AllBits reserves the entire entity (creation, whole-row install).
const AllBits Bits = ^Bits(0)

// SlotBit maps a 0-based layout slot to its reservation bit.
func SlotBit(slot int) Bits {
	if slot < 0 || slot >= 63 {
		return EntityBit
	}
	return 1 << uint(slot)
}

// RWSet is a transaction's reservation set on one worker.
type RWSet struct {
	Reads  map[ResKey]Bits
	Writes map[ResKey]Bits
}

// NewRWSet returns an empty reservation set.
func NewRWSet() *RWSet {
	return &RWSet{Reads: map[ResKey]Bits{}, Writes: map[ResKey]Bits{}}
}

// Read records a read reservation.
func (rw *RWSet) Read(k ResKey, b Bits) { rw.Reads[k] |= b }

// Write records a write reservation.
func (rw *RWSet) Write(k ResKey, b Bits) { rw.Writes[k] |= b }

// Merge unions another set into this one.
func (rw *RWSet) Merge(o *RWSet) {
	for k, b := range o.Reads {
		rw.Reads[k] |= b
	}
	for k, b := range o.Writes {
		rw.Writes[k] |= b
	}
}

// wsEntry is the buffered working copy of one entity inside a workspace.
type wsEntry struct {
	row *interp.Row // copy-on-first-write working row
	// wroteBits marks written slots; EntityBit set means the whole row
	// must be installed on apply (created, overflow or extra attributes).
	wroteBits  Bits
	wroteExtra map[string]bool // written attributes outside the layout
	created    bool
}

// Workspace is the per-transaction optimistic execution context on one
// worker: reads hit the committed store (plus the transaction's own
// writes), writes buffer locally in row working copies, and reservations
// accumulate for validation.
type Workspace struct {
	TID       TID
	committed *state.Store
	writes    map[interp.EntityRef]*wsEntry
	RW        *RWSet
	classIDs  map[string]int32 // ResKey intern cache over the store's layouts
}

// NewWorkspace opens a workspace for tid over the committed store.
func NewWorkspace(tid TID, committed *state.Store) *Workspace {
	return &Workspace{
		TID:       tid,
		committed: committed,
		writes:    map[interp.EntityRef]*wsEntry{},
		RW:        NewRWSet(),
		classIDs:  map[string]int32{},
	}
}

// resKey interns the entity reference as a reservation key.
func (ws *Workspace) resKey(ref interp.EntityRef) ResKey {
	id, ok := ws.classIDs[ref.Class]
	if !ok {
		id = int32(ws.committed.ClassID(ref.Class))
		ws.classIDs[ref.Class] = id
	}
	return ResKey{Class: id, Key: ref.Key}
}

// entry returns the copy-on-first-write working row for ref, cloning the
// committed image on first touch.
func (ws *Workspace) entry(ref interp.EntityRef) *wsEntry {
	e, ok := ws.writes[ref]
	if !ok {
		var row *interp.Row
		if base, exists := ws.committed.Lookup(ref); exists {
			row = base.Clone()
		} else {
			row = ws.committed.NewRow(ref.Class)
		}
		e = &wsEntry{row: row}
		ws.writes[ref] = e
	}
	return e
}

// wsState is the interp.State view of one entity inside a workspace. It
// implements the slot fast path so slot-stamped attribute access records
// slot-granular reservations without name hashing.
type wsState struct {
	ws  *Workspace
	ref interp.EntityRef
	key ResKey
	// row is the committed image (nil if the entity does not exist); the
	// workspace's own working copy, when present, shadows it.
	row *interp.Row
}

func (s wsState) readRow() *interp.Row {
	if e, ok := s.ws.writes[s.ref]; ok {
		return e.row
	}
	return s.row
}

// Get implements interp.State: own writes first, then the committed
// image.
func (s wsState) Get(attr string) (interp.Value, bool) {
	r := s.readRow()
	if r == nil {
		s.ws.RW.Read(s.key, EntityBit)
		return interp.None, false
	}
	if slot, ok := r.Layout().SlotOf(attr); ok {
		s.ws.RW.Read(s.key, SlotBit(slot))
	} else {
		s.ws.RW.Read(s.key, EntityBit)
	}
	return r.Get(attr)
}

// Set implements interp.State: copy-on-first-write into the workspace.
func (s wsState) Set(attr string, v interp.Value) {
	e := s.ws.entry(s.ref)
	if slot, ok := e.row.Layout().SlotOf(attr); ok && slot < 63 {
		b := SlotBit(slot)
		s.ws.RW.Write(s.key, b)
		e.wroteBits |= b
	} else {
		// Off-layout or overflow attribute: Apply installs the whole
		// working row, so the reservation must cover every slot —
		// otherwise a lower-TID slot write would pass validation and
		// then be reverted by the row install.
		s.ws.RW.Write(s.key, AllBits)
		e.wroteBits |= EntityBit
		if !ok {
			if e.wroteExtra == nil {
				e.wroteExtra = map[string]bool{}
			}
			e.wroteExtra[attr] = true
		}
	}
	e.row.Set(attr, v)
}

// GetSlot implements interp.SlotState.
func (s wsState) GetSlot(slot int) (interp.Value, bool) {
	s.ws.RW.Read(s.key, SlotBit(slot))
	r := s.readRow()
	if r == nil {
		return interp.None, false
	}
	return r.GetSlot(slot)
}

// SetSlot implements interp.SlotState.
func (s wsState) SetSlot(slot int, v interp.Value) {
	e := s.ws.entry(s.ref)
	if slot < 63 {
		b := SlotBit(slot)
		s.ws.RW.Write(s.key, b)
		e.wroteBits |= b
	} else {
		// Overflow slot: whole-row install on apply (see Set).
		s.ws.RW.Write(s.key, AllBits)
		e.wroteBits |= EntityBit
	}
	e.row.SetSlot(slot, v)
}

// Lookup implements core.Store for the executor. Absence is an
// observation too: a lookup that misses still reserves the key, so a
// transaction that failed because an entity did not exist conflicts with
// a same-batch creation of it — without the phantom read its error would
// validate as definitive even though the serial order creates the entity
// first.
func (ws *Workspace) Lookup(ref interp.EntityRef) (interp.State, bool) {
	key := ws.resKey(ref)
	ws.RW.Read(key, EntityBit)
	if e, ok := ws.writes[ref]; ok {
		return wsState{ws: ws, ref: ref, key: key, row: e.row}, true
	}
	if base, exists := ws.committed.Lookup(ref); exists {
		return wsState{ws: ws, ref: ref, key: key, row: base}, true
	}
	return nil, false
}

// Create implements core.Store: new entities are buffered like writes.
func (ws *Workspace) Create(ref interp.EntityRef) (interp.State, error) {
	if ws.committed.Exists(ref) {
		return nil, fmt.Errorf("entity %s already exists", ref)
	}
	if e, ok := ws.writes[ref]; ok && e.created {
		return nil, fmt.Errorf("entity %s already exists", ref)
	}
	key := ws.resKey(ref)
	ws.RW.Write(key, AllBits)
	e := &wsEntry{row: ws.committed.NewRow(ref.Class), wroteBits: AllBits, created: true}
	ws.writes[ref] = e
	return wsState{ws: ws, ref: ref, key: key}, nil
}

// PutBlind installs a complete entity image as a blind write: the whole
// working row is replaced by st and Apply installs it wholesale, so the
// reservation covers every slot. Sharded runtimes use this to replay a
// globally-sequenced transaction's write-set into one shard without
// re-executing the method there.
func (ws *Workspace) PutBlind(ref interp.EntityRef, st interp.MapState) {
	ws.RW.Write(ws.resKey(ref), AllBits)
	row := interp.RowFromMap(ws.committed.Layouts().LayoutOf(ref.Class), st)
	e, ok := ws.writes[ref]
	if !ok {
		e = &wsEntry{}
		ws.writes[ref] = e
	}
	e.row = row
	e.wroteBits |= EntityBit
}

// Apply installs the workspace's buffered writes into the committed
// store. Whole-entity writes (creations, extra attributes) install the
// working row; plain attribute writes merge slot-by-slot so lower-TID
// writes to disjoint slots survive. Callers must apply committed
// workspaces in TID order.
func (ws *Workspace) Apply(dst *state.Store) {
	refs := make([]interp.EntityRef, 0, len(ws.writes))
	for ref := range ws.writes {
		refs = append(refs, ref)
	}
	sortRefs(refs)
	for _, ref := range refs {
		e := ws.writes[ref]
		base, exists := dst.Lookup(ref)
		if !exists || e.created || e.wroteBits&EntityBit != 0 {
			dst.Put(ref, e.row)
			continue
		}
		for slot := 0; slot < 63; slot++ {
			if e.wroteBits&(1<<uint(slot)) == 0 {
				continue
			}
			if v, ok := e.row.GetSlot(slot); ok {
				base.SetSlot(slot, v)
			}
		}
	}
}

// WriteBytes estimates the serialized size of the buffered writes (used
// by the worker cost model when applying a commit).
func (ws *Workspace) WriteBytes() int {
	total := 0
	for _, e := range ws.writes {
		total += e.row.EncodedSize()
	}
	return total
}

// TouchedEntities lists every entity in the reservation set, resolving
// class ids back through the committed store's layouts.
func (ws *Workspace) TouchedEntities() []interp.EntityRef {
	classes := map[int32]string{}
	for class, id := range ws.classIDs {
		classes[id] = class
	}
	seen := map[interp.EntityRef]bool{}
	add := func(k ResKey) {
		seen[interp.EntityRef{Class: classes[k.Class], Key: k.Key}] = true
	}
	for k := range ws.RW.Reads {
		add(k)
	}
	for k := range ws.RW.Writes {
		add(k)
	}
	out := make([]interp.EntityRef, 0, len(seen))
	for ref := range seen {
		out = append(out, ref)
	}
	sortRefs(out)
	return out
}

func sortRefs(refs []interp.EntityRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Class != refs[j].Class {
			return refs[i].Class < refs[j].Class
		}
		return refs[i].Key < refs[j].Key
	})
}

// Validate runs Aria's deterministic conflict check over one worker's
// local reservations. order is the batch's TID order; sets holds the
// local reservation set of each transaction that touched this worker. A
// transaction aborts if any slot it read or wrote was written by a
// lower-TID transaction in the batch — the WAW and RAW rules of Aria
// (reads observe the batch-start snapshot, so WAR never aborts). The
// check deliberately counts reservations of transactions that themselves
// abort (Aria's conservative one-pass rule), keeping validation
// embarrassingly parallel across workers.
func Validate(order []TID, sets map[TID]*RWSet) []TID {
	earlier := map[ResKey]Bits{}
	var aborts []TID
	for _, tid := range order {
		rw, ok := sets[tid]
		if !ok {
			continue
		}
		conflicted := false
		for k, b := range rw.Writes {
			if earlier[k]&b != 0 {
				conflicted = true
				break
			}
		}
		if !conflicted {
			for k, b := range rw.Reads {
				if earlier[k]&b != 0 {
					conflicted = true
					break
				}
			}
		}
		if conflicted {
			aborts = append(aborts, tid)
		}
		for k, b := range rw.Writes {
			earlier[k] |= b
		}
	}
	return aborts
}

// overlaps reports whether any reservation bit of a intersects b.
func overlaps(a, b map[ResKey]Bits) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for k, bits := range a {
		if b[k]&bits != 0 {
			return true
		}
	}
	return false
}

// Conflicts reports whether two reservation sets touch overlapping
// reservation bits in a way that orders them (WAW, RAW or WAR): if so,
// the two transactions must commit in their relative serial order —
// read/read overlap alone never conflicts.
func Conflicts(a, b *RWSet) bool {
	return overlaps(a.Writes, b.Writes) ||
		overlaps(a.Writes, b.Reads) ||
		overlaps(b.Writes, a.Reads)
}

// Schedule is the fallback phase's deterministic plan for a batch's
// conflict-aborted transactions: which of them commit via deterministic
// re-execution and in what order.
type Schedule struct {
	// Commit lists every fallback-scheduled transaction in its
	// deterministic apply order (the concatenation of Rounds).
	Commit []TID
	// Rounds partitions Commit into re-execution rounds. Members of one
	// round have pairwise-disjoint reservation footprints, so they may
	// re-execute concurrently; a transaction lands in the round after the
	// last lower-TID aborted transaction it conflicts with, which
	// preserves the batch's TID serial order along every conflict chain.
	Rounds [][]TID
}

// Fallback computes Aria's deterministic fallback schedule: the second
// validation pass that rescues conflict-aborted transactions instead of
// kicking them into the next batch. It rebuilds the batch's dependency
// graph from the gathered reservation sets and layers the aborted
// transactions into re-execution rounds: a transaction whose conflicts
// are all with earlier rounds (or with standard-committed transactions,
// which apply before any fallback round) is reorderable — it re-executes
// against the then-current committed state and commits in its round.
// Every conflict edge (RAW, WAW, WAR) between two aborted transactions
// orders the higher TID after the lower, so the resulting serial order
// is exactly the one the legacy retry path would have produced across
// one batch per round — a pure conflict chain drains in one batch
// instead of one commit per batch.
//
// The schedule is a pure function of (order, sets): every node computing
// it from the same global reservation sets reaches the same plan.
func Fallback(order []TID, sets map[TID]*RWSet) Schedule {
	aborted := Validate(order, sets)
	var sched Schedule
	round := make(map[TID]int, len(aborted))
	for i, tid := range aborted {
		rw := sets[tid]
		r := 0
		for _, lower := range aborted[:i] {
			if round[lower] >= r && Conflicts(sets[lower], rw) {
				r = round[lower] + 1
			}
		}
		round[tid] = r
		for len(sched.Rounds) <= r {
			sched.Rounds = append(sched.Rounds, nil)
		}
		sched.Rounds[r] = append(sched.Rounds[r], tid)
	}
	for _, members := range sched.Rounds {
		sched.Commit = append(sched.Commit, members...)
	}
	return sched
}

// Interface checks.
var (
	_ core.Store       = (*Workspace)(nil)
	_ interp.SlotState = wsState{}
)
