// Package aria implements the deterministic transaction protocol that
// StateFlow layers over the dataflow (§3): an extension of Aria (Lu et
// al., VLDB 2020). Root invocations are grouped into batches (epochs);
// every transaction in a batch executes optimistically against the state
// as of the batch start, buffering writes in a per-transaction workspace
// and recording read/write reservations at entity granularity. When the
// whole batch has finished executing, each worker validates its local
// reservations — a transaction aborts if it read or wrote an entity that a
// lower-TID transaction wrote — and the coordinator unions the votes into
// a deterministic global decision. Committed workspaces apply in TID
// order; aborted transactions are re-queued into the next batch.
package aria

import (
	"fmt"
	"sort"

	"statefulentities.dev/stateflow/internal/core"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/state"
)

// TID is a transaction identifier; batch order is TID order, which makes
// the commit decision deterministic (§3, "deterministic transaction
// protocol").
type TID int64

// RWSet is a transaction's reservation set on one worker, at entity
// granularity.
type RWSet struct {
	Reads  map[interp.EntityRef]bool
	Writes map[interp.EntityRef]bool
}

// NewRWSet returns an empty reservation set.
func NewRWSet() *RWSet {
	return &RWSet{Reads: map[interp.EntityRef]bool{}, Writes: map[interp.EntityRef]bool{}}
}

// Merge unions another set into this one.
func (rw *RWSet) Merge(o *RWSet) {
	for r := range o.Reads {
		rw.Reads[r] = true
	}
	for w := range o.Writes {
		rw.Writes[w] = true
	}
}

// Workspace is the per-transaction optimistic execution context on one
// worker: reads hit the committed store (plus the transaction's own
// writes), writes buffer locally, and reservations accumulate for
// validation.
type Workspace struct {
	TID       TID
	committed *state.Store
	// writes holds full working copies of every entity the transaction
	// touched with a write (copy-on-first-write).
	writes map[interp.EntityRef]interp.MapState
	// created marks entities the transaction constructed.
	created map[interp.EntityRef]bool
	RW      *RWSet
}

// NewWorkspace opens a workspace for tid over the committed store.
func NewWorkspace(tid TID, committed *state.Store) *Workspace {
	return &Workspace{
		TID:       tid,
		committed: committed,
		writes:    map[interp.EntityRef]interp.MapState{},
		created:   map[interp.EntityRef]bool{},
		RW:        NewRWSet(),
	}
}

// wsState is the interp.State view of one entity inside a workspace.
type wsState struct {
	ws  *Workspace
	ref interp.EntityRef
}

// Get implements interp.State: own writes first, then the committed image.
func (s wsState) Get(attr string) (interp.Value, bool) {
	s.ws.RW.Reads[s.ref] = true
	if over, ok := s.ws.writes[s.ref]; ok {
		v, ok2 := over[attr]
		return v, ok2
	}
	st, ok := s.ws.committed.Lookup(s.ref)
	if !ok {
		return interp.None, false
	}
	v, ok2 := st[attr]
	return v, ok2
}

// Set implements interp.State: copy-on-first-write into the workspace.
func (s wsState) Set(attr string, v interp.Value) {
	s.ws.RW.Writes[s.ref] = true
	over, ok := s.ws.writes[s.ref]
	if !ok {
		over = interp.MapState{}
		if base, exists := s.ws.committed.Lookup(s.ref); exists {
			for k, bv := range base {
				over[k] = bv.Clone()
			}
		}
		s.ws.writes[s.ref] = over
	}
	over[attr] = v
}

// Lookup implements core.Store for the executor.
func (ws *Workspace) Lookup(ref interp.EntityRef) (interp.State, bool) {
	if ws.created[ref] || ws.hasWrite(ref) || ws.committed.Exists(ref) {
		ws.RW.Reads[ref] = true
		return wsState{ws: ws, ref: ref}, true
	}
	return nil, false
}

func (ws *Workspace) hasWrite(ref interp.EntityRef) bool {
	_, ok := ws.writes[ref]
	return ok
}

// Create implements core.Store: new entities are buffered like writes.
func (ws *Workspace) Create(ref interp.EntityRef) (interp.State, error) {
	if ws.committed.Exists(ref) || ws.created[ref] {
		return nil, fmt.Errorf("entity %s already exists", ref)
	}
	ws.created[ref] = true
	ws.RW.Writes[ref] = true
	ws.writes[ref] = interp.MapState{}
	return wsState{ws: ws, ref: ref}, nil
}

// Apply installs the workspace's buffered writes into the committed store.
// Callers must apply committed workspaces in TID order.
func (ws *Workspace) Apply(dst *state.Store) {
	refs := make([]interp.EntityRef, 0, len(ws.writes))
	for ref := range ws.writes {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Class != refs[j].Class {
			return refs[i].Class < refs[j].Class
		}
		return refs[i].Key < refs[j].Key
	})
	for _, ref := range refs {
		dst.Put(ref, ws.writes[ref])
	}
}

// WriteBytes estimates the serialized size of the buffered writes (used by
// the worker cost model when applying a commit).
func (ws *Workspace) WriteBytes() int {
	total := 0
	for _, st := range ws.writes {
		total += interp.EncodedSize(st)
	}
	return total
}

// TouchedEntities lists every entity in the reservation set.
func (ws *Workspace) TouchedEntities() []interp.EntityRef {
	seen := map[interp.EntityRef]bool{}
	for r := range ws.RW.Reads {
		seen[r] = true
	}
	for w := range ws.RW.Writes {
		seen[w] = true
	}
	out := make([]interp.EntityRef, 0, len(seen))
	for ref := range seen {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Validate runs Aria's deterministic conflict check over one worker's
// local reservations. order is the batch's TID order; sets holds the local
// reservation set of each transaction that touched this worker. A
// transaction aborts if any entity it read or wrote was written by a
// lower-TID transaction in the batch — the WAW and RAW rules of Aria
// (reads observe the batch-start snapshot, so WAR never aborts). The check
// deliberately counts reservations of transactions that themselves abort
// (Aria's conservative one-pass rule), keeping validation embarrassingly
// parallel across workers.
func Validate(order []TID, sets map[TID]*RWSet) []TID {
	minWriter := map[interp.EntityRef]TID{}
	for _, tid := range order {
		rw, ok := sets[tid]
		if !ok {
			continue
		}
		for ref := range rw.Writes {
			if cur, seen := minWriter[ref]; !seen || tid < cur {
				minWriter[ref] = tid
			}
		}
	}
	var aborts []TID
	for _, tid := range order {
		rw, ok := sets[tid]
		if !ok {
			continue
		}
		conflicted := false
		for ref := range rw.Writes {
			if w, seen := minWriter[ref]; seen && w < tid {
				conflicted = true
				break
			}
		}
		if !conflicted {
			for ref := range rw.Reads {
				if w, seen := minWriter[ref]; seen && w < tid {
					conflicted = true
					break
				}
			}
		}
		if conflicted {
			aborts = append(aborts, tid)
		}
	}
	return aborts
}

// Interface checks.
var _ core.Store = (*Workspace)(nil)
