// Package tpcc implements the TPC-C subset the paper reports StateFlow can
// "partly" execute (§3): the NewOrder and Payment transactions over
// stateful entities. Warehouses, districts, customers and stock records
// are entities partitioned by composite keys; NewOrder iterates over the
// ordered items (a split for-loop of remote calls), and Payment updates
// warehouse, district and customer year-to-date totals atomically.
package tpcc

import (
	"fmt"
	"math/rand"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
)

// Program returns the DSL source of the TPC-C entity schema and
// transactions.
func Program() string {
	return `
@entity
class Warehouse:
    def __init__(self, w_id: str, tax: int):
        self.w_id: str = w_id
        self.tax: int = tax
        self.ytd: int = 0

    def __key__(self) -> str:
        return self.w_id

    def add_ytd(self, amount: int) -> int:
        self.ytd += amount
        return self.ytd

    def get_tax(self) -> int:
        return self.tax

@entity
class Stock:
    def __init__(self, s_key: str, quantity: int, price: int):
        self.s_key: str = s_key
        self.quantity: int = quantity
        self.price: int = price
        self.order_cnt: int = 0

    def __key__(self) -> str:
        return self.s_key

    def take(self, qty: int) -> int:
        if self.quantity < qty + 10:
            self.quantity += 91
        self.quantity -= qty
        self.order_cnt += 1
        return self.price * qty

@entity
class Customer:
    def __init__(self, c_key: str, credit: int):
        self.c_key: str = c_key
        self.balance: int = 0
        self.credit: int = credit
        self.ytd_payment: int = 0
        self.payment_cnt: int = 0

    def __key__(self) -> str:
        return self.c_key

    def charge(self, amount: int) -> int:
        self.balance -= amount
        return self.balance

    def pay(self, amount: int) -> int:
        self.balance += amount
        self.ytd_payment += amount
        self.payment_cnt += 1
        return self.balance

@entity
class District:
    def __init__(self, d_key: str, tax: int):
        self.d_key: str = d_key
        self.tax: int = tax
        self.ytd: int = 0
        self.next_o_id: int = 1

    def __key__(self) -> str:
        return self.d_key

    def add_ytd(self, amount: int) -> int:
        self.ytd += amount
        return self.ytd

    @transactional
    def new_order(self, customer: Customer, warehouse: Warehouse, stocks: list[Stock], quantities: list[int]) -> int:
        o_id: int = self.next_o_id
        self.next_o_id += 1
        total: int = 0
        i: int = 0
        for s in stocks:
            total += s.take(quantities[i])
            i += 1
        w_tax: int = warehouse.get_tax()
        total = total + total * (w_tax + self.tax) // 100
        customer.charge(total)
        return o_id

    @transactional
    def payment(self, customer: Customer, warehouse: Warehouse, amount: int) -> int:
        self.ytd += amount
        warehouse.add_ytd(amount)
        return customer.pay(amount)
`
}

// Scale configures dataset sizes (scaled down from TPC-C's nominal
// counts to keep simulations quick).
type Scale struct {
	Warehouses       int
	DistrictsPerWH   int
	CustomersPerDist int
	Items            int
}

// DefaultScale is a laptop-scale configuration.
func DefaultScale() Scale {
	return Scale{Warehouses: 2, DistrictsPerWH: 4, CustomersPerDist: 20, Items: 100}
}

// Key builders for the composite-keyed entities.
func WarehouseKey(w int) string      { return fmt.Sprintf("w%d", w) }
func DistrictKey(w, d int) string    { return fmt.Sprintf("w%d-d%d", w, d) }
func CustomerKey(w, d, c int) string { return fmt.Sprintf("w%d-d%d-c%d", w, d, c) }
func StockKey(w, i int) string       { return fmt.Sprintf("w%d-i%d", w, i) }

// Load enumerates every entity to preload: it invokes fn with the class
// name and constructor args for each record.
func (s Scale) Load(fn func(class string, args []interp.Value) error) error {
	for w := 0; w < s.Warehouses; w++ {
		if err := fn("Warehouse", []interp.Value{
			interp.StrV(WarehouseKey(w)), interp.IntV(int64(w%5 + 1)),
		}); err != nil {
			return err
		}
		for i := 0; i < s.Items; i++ {
			if err := fn("Stock", []interp.Value{
				interp.StrV(StockKey(w, i)), interp.IntV(100), interp.IntV(int64(i%90 + 10)),
			}); err != nil {
				return err
			}
		}
		for d := 0; d < s.DistrictsPerWH; d++ {
			if err := fn("District", []interp.Value{
				interp.StrV(DistrictKey(w, d)), interp.IntV(int64(d%3 + 1)),
			}); err != nil {
				return err
			}
			for c := 0; c < s.CustomersPerDist; c++ {
				if err := fn("Customer", []interp.Value{
					interp.StrV(CustomerKey(w, d, c)), interp.IntV(50_000),
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Generator draws NewOrder/Payment transactions with TPC-C's approximate
// mix (~45% NewOrder, ~43% Payment; the remainder here folds into
// Payment).
type Generator struct {
	scale Scale
	rng   *rand.Rand
	reqs  *sysapi.Builder
}

// NewGenerator builds a deterministic TPC-C request generator.
func NewGenerator(scale Scale, seed int64, prefix string) *Generator {
	return &Generator{scale: scale, rng: rand.New(rand.NewSource(seed)), reqs: sysapi.NewBuilder(prefix)}
}

// Next produces the i-th transaction request.
func (g *Generator) Next(i int) sysapi.Request {
	w := g.rng.Intn(g.scale.Warehouses)
	d := g.rng.Intn(g.scale.DistrictsPerWH)
	c := g.rng.Intn(g.scale.CustomersPerDist)
	target := interp.EntityRef{Class: "District", Key: DistrictKey(w, d)}
	if g.rng.Intn(100) < 45 {
		// NewOrder: 2-5 distinct items.
		n := 2 + g.rng.Intn(4)
		items := map[int]bool{}
		for len(items) < n {
			items[g.rng.Intn(g.scale.Items)] = true
		}
		var stocks, qtys []interp.Value
		for it := range items {
			stocks = append(stocks, interp.RefV("Stock", StockKey(w, it)))
			qtys = append(qtys, interp.IntV(int64(1+g.rng.Intn(5))))
		}
		return g.reqs.At(i, target, "new_order", []interp.Value{
			interp.RefV("Customer", CustomerKey(w, d, c)),
			interp.RefV("Warehouse", WarehouseKey(w)),
			interp.ListV(stocks...),
			interp.ListV(qtys...),
		}, "new_order")
	}
	return g.reqs.At(i, target, "payment", []interp.Value{
		interp.RefV("Customer", CustomerKey(w, d, c)),
		interp.RefV("Warehouse", WarehouseKey(w)),
		interp.IntV(int64(1 + g.rng.Intn(5000))),
	}, "payment")
}
