package tpcc

import (
	"testing"
	"time"

	"statefulentities.dev/stateflow/internal/compiler"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/runtime/local"
	"statefulentities.dev/stateflow/internal/sim"
	sfsys "statefulentities.dev/stateflow/internal/systems/stateflow"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
)

func TestProgramCompiles(t *testing.T) {
	prog, err := compiler.Compile(Program())
	if err != nil {
		t.Fatalf("TPC-C program must compile: %v", err)
	}
	no := prog.MethodOf("District", "new_order")
	if no == nil || no.Simple {
		t.Fatal("new_order must be split (loop of remote calls)")
	}
	if !no.Transactional {
		t.Fatal("new_order must be transactional")
	}
}

func newLocal(t *testing.T, scale Scale) *local.Runtime {
	t.Helper()
	prog, err := compiler.Compile(Program())
	if err != nil {
		t.Fatal(err)
	}
	rt := local.New(prog)
	err = scale.Load(func(class string, args []interp.Value) error {
		_, err := rt.Create(class, args...)
		return err
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return rt
}

func TestNewOrderLocal(t *testing.T) {
	scale := DefaultScale()
	rt := newLocal(t, scale)
	res, err := rt.Invoke("District", DistrictKey(0, 0), "new_order",
		interp.RefV("Customer", CustomerKey(0, 0, 0)),
		interp.RefV("Warehouse", WarehouseKey(0)),
		interp.ListV(interp.RefV("Stock", StockKey(0, 1)), interp.RefV("Stock", StockKey(0, 2))),
		interp.ListV(interp.IntV(3), interp.IntV(2)),
	)
	if err != nil || res.Err != "" {
		t.Fatalf("new_order: %v %s", err, res.Err)
	}
	if res.Value.I != 1 {
		t.Fatalf("first order id: %v", res.Value)
	}
	// Stock decremented.
	st, _ := rt.State("Stock", StockKey(0, 1))
	if st["quantity"].I != 97 {
		t.Fatalf("stock quantity: %d", st["quantity"].I)
	}
	// Customer charged: item1 price 11*3 + item2 price 12*2 = 57; taxes
	// (w tax 1 + d tax 1) -> total = 57 + 57*2//100 = 58.
	cust, _ := rt.State("Customer", CustomerKey(0, 0, 0))
	if cust["balance"].I != -58 {
		t.Fatalf("customer balance: %d", cust["balance"].I)
	}
	// Next order id advanced.
	d, _ := rt.State("District", DistrictKey(0, 0))
	if d["next_o_id"].I != 2 {
		t.Fatalf("next_o_id: %d", d["next_o_id"].I)
	}
}

func TestPaymentLocal(t *testing.T) {
	scale := DefaultScale()
	rt := newLocal(t, scale)
	res, err := rt.Invoke("District", DistrictKey(1, 2), "payment",
		interp.RefV("Customer", CustomerKey(1, 2, 3)),
		interp.RefV("Warehouse", WarehouseKey(1)),
		interp.IntV(500),
	)
	if err != nil || res.Err != "" {
		t.Fatalf("payment: %v %s", err, res.Err)
	}
	w, _ := rt.State("Warehouse", WarehouseKey(1))
	if w["ytd"].I != 500 {
		t.Fatalf("warehouse ytd: %d", w["ytd"].I)
	}
	d, _ := rt.State("District", DistrictKey(1, 2))
	if d["ytd"].I != 500 {
		t.Fatalf("district ytd: %d", d["ytd"].I)
	}
	c, _ := rt.State("Customer", CustomerKey(1, 2, 3))
	if c["balance"].I != 500 || c["payment_cnt"].I != 1 {
		t.Fatalf("customer: %v", c)
	}
}

func TestStockRefillKeepsInvariant(t *testing.T) {
	scale := Scale{Warehouses: 1, DistrictsPerWH: 1, CustomersPerDist: 1, Items: 3}
	rt := newLocal(t, scale)
	// Drain stock repeatedly; TPC-C's refill rule keeps quantity positive.
	for i := 0; i < 40; i++ {
		res, err := rt.Invoke("Stock", StockKey(0, 0), "take", interp.IntV(5))
		if err != nil || res.Err != "" {
			t.Fatalf("take: %v %s", err, res.Err)
		}
	}
	st, _ := rt.State("Stock", StockKey(0, 0))
	if st["quantity"].I < 0 {
		t.Fatalf("stock went negative: %d", st["quantity"].I)
	}
	if st["order_cnt"].I != 40 {
		t.Fatalf("order_cnt: %d", st["order_cnt"].I)
	}
}

func TestGeneratorDeterministicAndWellFormed(t *testing.T) {
	g1 := NewGenerator(DefaultScale(), 5, "x")
	g2 := NewGenerator(DefaultScale(), 5, "x")
	for i := 0; i < 200; i++ {
		a, b := g1.Next(i), g2.Next(i)
		if a.Req != b.Req || a.Method != b.Method || a.Target != b.Target {
			t.Fatal("generator not deterministic")
		}
		if a.Method == "new_order" {
			stocks := a.Args[2].L.Elems
			qtys := a.Args[3].L.Elems
			if len(stocks) != len(qtys) || len(stocks) < 2 || len(stocks) > 5 {
				t.Fatalf("order lines: %d/%d", len(stocks), len(qtys))
			}
		}
	}
}

// TestTPCCOnStateFlow runs the mix transactionally and checks the money
// invariant: every committed payment's amount lands in warehouse ytd,
// district ytd and customer ytd exactly once.
func TestTPCCOnStateFlow(t *testing.T) {
	prog, err := compiler.Compile(Program())
	if err != nil {
		t.Fatal(err)
	}
	scale := Scale{Warehouses: 2, DistrictsPerWH: 2, CustomersPerDist: 5, Items: 20}
	cluster := sim.New(11)
	cfg := sfsys.DefaultConfig()
	sys := sfsys.New(cluster, prog, cfg).Single()
	err = scale.Load(func(class string, args []interp.Value) error {
		return sys.PreloadEntity(class, args...)
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.CheckpointPreloadedState()

	gen := NewGenerator(scale, 6, "t")
	var script []sysapi.Scheduled
	n := 60
	for i := 0; i < n; i++ {
		script = append(script, sysapi.Scheduled{
			At:  time.Duration(i+1) * 2 * time.Millisecond,
			Req: gen.Next(i),
		})
	}
	client := sysapi.NewScriptClient("client", sys, script)
	cluster.Add("client", client)
	cluster.Start()
	cluster.RunUntil(10 * time.Second)

	if client.Done != n {
		t.Fatalf("responses: %d/%d", client.Done, n)
	}
	var wantPayments int64
	replay := NewGenerator(scale, 6, "t") // fresh rng, same seed
	for i := 0; i < n; i++ {
		req := replay.Next(i)
		if req.Method == "payment" {
			if resp, ok := client.Responses[req.Req]; ok && resp.Err == "" {
				wantPayments += req.Args[2].I
			}
		}
	}
	var wytd, dytd, cytd int64
	for w := 0; w < scale.Warehouses; w++ {
		st, ok := sys.EntityState("Warehouse", WarehouseKey(w))
		if !ok {
			t.Fatalf("warehouse %d missing", w)
		}
		wytd += st["ytd"].I
		for d := 0; d < scale.DistrictsPerWH; d++ {
			ds, _ := sys.EntityState("District", DistrictKey(w, d))
			dytd += ds["ytd"].I
			for c := 0; c < scale.CustomersPerDist; c++ {
				cs, _ := sys.EntityState("Customer", CustomerKey(w, d, c))
				cytd += cs["ytd_payment"].I
			}
		}
	}
	if wytd != wantPayments || dytd != wantPayments || cytd != wantPayments {
		t.Fatalf("payment atomicity broken: want %d, w=%d d=%d c=%d",
			wantPayments, wytd, dytd, cytd)
	}
}
