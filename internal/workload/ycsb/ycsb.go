// Package ycsb implements the workloads of the paper's evaluation (§4):
// YCSB workloads A (update-heavy, 50/50) and B (read-heavy, 95/5) from
// Cooper et al., the transactional workload T from YCSB+T (Dey et al.) —
// an atomic transfer between two entities' bank accounts (2 reads and 2
// writes) — and the mixed workload M (45% reads, 45% updates, 10%
// transfers) the paper defines for its throughput experiment. Keys are
// drawn from Zipfian or uniform distributions, as in the paper's latency
// experiments.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
)

// Mix is an operation mix in percent (must sum to 100).
type Mix struct {
	Name     string
	Read     int
	Update   int
	Transfer int
}

// The paper's workloads (§4).
var (
	// WorkloadA is update-heavy: 50% reads, 50% updates.
	WorkloadA = Mix{Name: "A", Read: 50, Update: 50}
	// WorkloadB is read-heavy: 95% reads, 5% updates.
	WorkloadB = Mix{Name: "B", Read: 95, Update: 5}
	// WorkloadT is YCSB+T: 100% atomic transfers (2 reads + 2 writes).
	WorkloadT = Mix{Name: "T", Transfer: 100}
	// WorkloadM is the paper's mixed throughput workload.
	WorkloadM = Mix{Name: "M", Read: 45, Update: 45, Transfer: 10}
)

// ByName resolves a workload name.
func ByName(name string) (Mix, error) {
	switch strings.ToUpper(name) {
	case "A":
		return WorkloadA, nil
	case "B":
		return WorkloadB, nil
	case "T":
		return WorkloadT, nil
	case "M":
		return WorkloadM, nil
	default:
		return Mix{}, fmt.Errorf("ycsb: unknown workload %q", name)
	}
}

// ---------------------------------------------------------------------------
// Key choosers

// KeyChooser picks record indices in [0, N).
type KeyChooser interface {
	Next(r *rand.Rand) int
	Name() string
}

// Uniform picks keys uniformly.
type Uniform struct{ N int }

// Next implements KeyChooser.
func (u Uniform) Next(r *rand.Rand) int { return r.Intn(u.N) }

// Name implements KeyChooser.
func (u Uniform) Name() string { return "uniform" }

// Zipfian implements YCSB's ZipfianGenerator (Gray et al.'s algorithm)
// with the standard YCSB constant 0.99, scrambled over the key space so
// hot keys spread across partitions like YCSB's ScrambledZipfian.
type Zipfian struct {
	n         int
	theta     float64
	alpha     float64
	zetan     float64
	eta       float64
	scrambled bool
}

// NewZipfian builds a Zipfian chooser over n items with the given theta
// (YCSB default 0.99).
func NewZipfian(n int, theta float64, scrambled bool) *Zipfian {
	z := &Zipfian{n: n, theta: theta, scrambled: scrambled}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements KeyChooser.
func (z *Zipfian) Next(r *rand.Rand) int {
	u := r.Float64()
	uz := u * z.zetan
	var item int
	switch {
	case uz < 1.0:
		item = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		item = 1
	default:
		item = int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if item >= z.n {
		item = z.n - 1
	}
	if z.scrambled {
		item = int(fnv64(uint64(item)) % uint64(z.n))
	}
	return item
}

// Name implements KeyChooser.
func (z *Zipfian) Name() string { return "zipfian" }

func fnv64(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// ChooserByName builds a chooser.
func ChooserByName(name string, n int) (KeyChooser, error) {
	switch strings.ToLower(name) {
	case "uniform":
		return Uniform{N: n}, nil
	case "zipfian":
		return NewZipfian(n, 0.99, true), nil
	default:
		return nil, fmt.Errorf("ycsb: unknown distribution %q", name)
	}
}

// ---------------------------------------------------------------------------
// Entity program

// Program returns the DSL source of the YCSB entity: an account record
// with a payload field of the given byte size (YCSB's 10x100B fields by
// default), plus the YCSB+T transfer transaction.
func Program() string {
	return `
@entity
class Account:
    def __init__(self, owner: str, balance: int, payload: str):
        self.owner: str = owner
        self.balance: int = balance
        self.payload: str = payload

    def __key__(self) -> str:
        return self.owner

    def read(self) -> int:
        return self.balance

    def update(self, amount: int) -> int:
        self.balance += amount
        return self.balance

    def deposit(self, amount: int) -> bool:
        self.balance += amount
        return True

    @transactional
    def transfer(self, amount: int, to: Account) -> bool:
        if self.balance < amount:
            return False
        self.balance -= amount
        to.deposit(amount)
        return True
`
}

// Key formats the i-th record key, YCSB-style.
func Key(i int) string { return fmt.Sprintf("user%06d", i) }

// InitialBalance is each account's starting balance.
const InitialBalance = 1_000_000

// Payload builds the record payload of the requested size.
func Payload(bytes int) string {
	if bytes <= 0 {
		return ""
	}
	return strings.Repeat("x", bytes)
}

// Loader enumerates the dataset: (class, args) per record, for preloading
// into any runtime.
func Loader(records, payloadBytes int) func(i int) (string, []interp.Value) {
	payload := Payload(payloadBytes)
	return func(i int) (string, []interp.Value) {
		return "Account", []interp.Value{
			interp.StrV(Key(i)), interp.IntV(InitialBalance), interp.StrV(payload),
		}
	}
}

// Generator draws requests from a mix and a key chooser. It is
// deterministic given the seed.
type Generator struct {
	mix     Mix
	chooser KeyChooser
	n       int
	rng     *rand.Rand
	reqs    *sysapi.Builder
}

// NewGenerator builds a request generator. The prefix keeps request ids
// unique across multiple generators.
func NewGenerator(mix Mix, chooser KeyChooser, n int, seed int64, prefix string) *Generator {
	return &Generator{
		mix: mix, chooser: chooser, n: n,
		rng: rand.New(rand.NewSource(seed)), reqs: sysapi.NewBuilder(prefix),
	}
}

// Next produces the i-th request.
func (g *Generator) Next(i int) sysapi.Request {
	op := g.rng.Intn(100)
	target := interp.EntityRef{Class: "Account", Key: Key(g.chooser.Next(g.rng))}
	switch {
	case op < g.mix.Read:
		return g.reqs.At(i, target, "read", nil, "read")
	case op < g.mix.Read+g.mix.Update:
		return g.reqs.At(i, target, "update",
			[]interp.Value{interp.IntV(int64(g.rng.Intn(100) - 50))}, "update")
	default:
		// YCSB+T transfer: two distinct accounts.
		to := Key(g.chooser.Next(g.rng))
		for to == target.Key {
			to = Key(g.chooser.Next(g.rng))
		}
		return g.reqs.At(i, target, "transfer",
			[]interp.Value{interp.IntV(int64(1 + g.rng.Intn(10))), interp.RefV("Account", to)}, "transfer")
	}
}
