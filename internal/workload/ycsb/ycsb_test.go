package ycsb

import (
	"math/rand"
	"testing"

	"statefulentities.dev/stateflow/internal/compiler"
)

func TestProgramCompiles(t *testing.T) {
	if _, err := compiler.Compile(Program()); err != nil {
		t.Fatalf("YCSB program must compile: %v", err)
	}
}

func TestMixesSumTo100(t *testing.T) {
	for _, m := range []Mix{WorkloadA, WorkloadB, WorkloadT, WorkloadM} {
		if m.Read+m.Update+m.Transfer != 100 {
			t.Errorf("workload %s sums to %d", m.Name, m.Read+m.Update+m.Transfer)
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"A", "b", "T", "m"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%s): %v", n, err)
		}
	}
	if _, err := ByName("zzz"); err == nil {
		t.Error("expected error")
	}
}

func TestUniformCoversRange(t *testing.T) {
	u := Uniform{N: 10}
	r := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		k := u.Next(r)
		if k < 0 || k >= 10 {
			t.Fatalf("out of range: %d", k)
		}
		seen[k] = true
	}
	if len(seen) != 10 {
		t.Fatalf("coverage: %d/10", len(seen))
	}
}

func TestZipfianSkew(t *testing.T) {
	n := 1000
	z := NewZipfian(n, 0.99, false)
	r := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	draws := 200_000
	for i := 0; i < draws; i++ {
		counts[z.Next(r)]++
	}
	// Item 0 must be by far the most popular (true Zipf head ~ 1/zeta(n)).
	frac0 := float64(counts[0]) / float64(draws)
	if frac0 < 0.08 || frac0 > 0.20 {
		t.Fatalf("head frequency: %.4f", frac0)
	}
	if counts[0] < counts[1] || counts[1] < counts[10] {
		t.Fatalf("not monotone: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
	// The tail must still be reachable.
	tail := 0
	for i := n / 2; i < n; i++ {
		tail += counts[i]
	}
	if tail == 0 {
		t.Fatal("tail never drawn")
	}
}

func TestScrambledZipfianSpreadsHead(t *testing.T) {
	n := 1000
	z := NewZipfian(n, 0.99, true)
	r := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	for i := 0; i < 100_000; i++ {
		counts[z.Next(r)]++
	}
	// Scrambling moves the hot key away from index 0 (with overwhelming
	// probability) but keeps the same skew: one key dominates.
	maxIdx, maxC := 0, 0
	for i, c := range counts {
		if c > maxC {
			maxIdx, maxC = i, c
		}
	}
	if float64(maxC)/100_000 < 0.08 {
		t.Fatalf("scrambled zipfian lost its skew: max %.4f", float64(maxC)/100_000)
	}
	_ = maxIdx
}

func TestZipfianDeterministicGivenSeed(t *testing.T) {
	z := NewZipfian(100, 0.99, true)
	a := rand.New(rand.NewSource(9))
	b := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if z.Next(a) != z.Next(b) {
			t.Fatal("non-deterministic")
		}
	}
}

func TestChooserByName(t *testing.T) {
	for _, n := range []string{"uniform", "zipfian"} {
		c, err := ChooserByName(n, 50)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != n {
			t.Fatalf("name: %s", c.Name())
		}
	}
	if _, err := ChooserByName("pareto", 50); err == nil {
		t.Fatal("expected error")
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	g := NewGenerator(WorkloadM, Uniform{N: 100}, 100, 3, "q")
	counts := map[string]int{}
	n := 20_000
	for i := 0; i < n; i++ {
		counts[g.Next(i).Kind]++
	}
	check := func(kind string, pct int) {
		got := float64(counts[kind]) / float64(n) * 100
		if got < float64(pct)-2 || got > float64(pct)+2 {
			t.Errorf("%s: got %.1f%%, want ~%d%%", kind, got, pct)
		}
	}
	check("read", 45)
	check("update", 45)
	check("transfer", 10)
}

func TestGeneratorTransferDistinctAccounts(t *testing.T) {
	g := NewGenerator(WorkloadT, Uniform{N: 5}, 5, 4, "t")
	for i := 0; i < 500; i++ {
		req := g.Next(i)
		if req.Kind != "transfer" {
			t.Fatalf("kind: %s", req.Kind)
		}
		to := req.Args[1].R.Key
		if to == req.Target.Key {
			t.Fatal("transfer to self")
		}
	}
}

func TestGeneratorUniqueIDs(t *testing.T) {
	g := NewGenerator(WorkloadA, Uniform{N: 10}, 10, 5, "a")
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := g.Next(i).Req
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestLoader(t *testing.T) {
	load := Loader(3, 100)
	class, args := load(0)
	if class != "Account" || len(args) != 3 {
		t.Fatalf("loader: %s %d args", class, len(args))
	}
	if len(args[2].S) != 100 {
		t.Fatalf("payload size: %d", len(args[2].S))
	}
	if args[0].S != "user000000" {
		t.Fatalf("key: %s", args[0].S)
	}
}
