// Row is the dense, slot-indexed attribute store of one entity instance —
// the slotted counterpart of MapState. The class's ir.ClassLayout fixes a
// slot for every declared attribute; dynamically-added attributes (only
// possible through hand-built IR) spill into an overflow map. Rows cache
// their canonical encoding so state-size cost accounting and snapshot
// writes stop re-serializing unchanged entities: any write invalidates
// the cache, and the codec walks the layout's precomputed sorted slot
// order so the bytes stay identical to the name-keyed MapState encoding
// (which differential tests rely on).
package interp

import (
	"sort"

	"statefulentities.dev/stateflow/internal/ir"
)

// SlotState is the fast path of State: attribute access by layout slot
// index, used by the interpreter when executing slot-stamped ASTs against
// slot-capable state backends.
type SlotState interface {
	State
	// GetSlot reads the attribute in a 0-based layout slot.
	GetSlot(slot int) (Value, bool)
	// SetSlot writes the attribute in a 0-based layout slot.
	SetSlot(slot int, v Value)
}

// Row holds one entity's attributes in layout order.
type Row struct {
	layout      *ir.ClassLayout
	slots       []Value
	presentBits uint64           // presence bitmap for rows of up to 64 slots
	presentBig  []bool           // presence spill for wider rows (non-nil iff used)
	extra       map[string]Value // attributes outside the layout (rare)
	enc         []byte           // cached canonical encoding; nil = dirty
	// aliased disables the encoding cache: a container value (list/dict)
	// was handed out by Get, so the holder can mutate the row's state
	// through the shared backing store without going through Set. The
	// flag is deliberately sticky — the alias may outlive any later Set
	// (touchStateAttr re-installs the same container) — so an aliased
	// row re-encodes per call, exactly the pre-slotted behavior. Scalars
	// are copied on read, so scalar-only rows keep full caching.
	aliased bool
}

// NewRow allocates an empty row for a class layout (nil layout gives a
// pure map-backed row).
func NewRow(layout *ir.ClassLayout) *Row {
	n := layout.NumSlots()
	r := &Row{layout: layout, slots: make([]Value, n)}
	if n > 64 {
		r.presentBig = make([]bool, n)
	}
	return r
}

func (r *Row) isPresent(i int) bool {
	if r.presentBig != nil {
		return r.presentBig[i]
	}
	return r.presentBits&(1<<uint(i)) != 0
}

func (r *Row) markPresent(i int) {
	if r.presentBig != nil {
		r.presentBig[i] = true
		return
	}
	r.presentBits |= 1 << uint(i)
}

// RowFromMap builds a row over a layout from name-keyed attributes.
func RowFromMap(layout *ir.ClassLayout, st MapState) *Row {
	r := NewRow(layout)
	for k, v := range st {
		r.Set(k, v)
	}
	return r
}

// Layout returns the row's class layout (possibly nil).
func (r *Row) Layout() *ir.ClassLayout { return r.layout }

// leak marks the row uncacheable when a container value escapes.
func (r *Row) leak(v Value) Value {
	if v.Kind == KList || v.Kind == KDict {
		r.aliased = true
		r.enc = nil
	}
	return v
}

// Get implements State.
func (r *Row) Get(attr string) (Value, bool) {
	if i, ok := r.layout.SlotOf(attr); ok {
		if !r.isPresent(i) {
			return None, false
		}
		return r.leak(r.slots[i]), true
	}
	v, ok := r.extra[attr]
	if ok {
		v = r.leak(v)
	}
	return v, ok
}

// Set implements State, invalidating the cached encoding.
func (r *Row) Set(attr string, v Value) {
	r.enc = nil
	if i, ok := r.layout.SlotOf(attr); ok {
		r.slots[i] = v
		r.markPresent(i)
		return
	}
	if r.extra == nil {
		r.extra = map[string]Value{}
	}
	r.extra[attr] = v
}

// GetSlot implements SlotState.
func (r *Row) GetSlot(slot int) (Value, bool) {
	if slot >= len(r.slots) || !r.isPresent(slot) {
		return None, false
	}
	return r.leak(r.slots[slot]), true
}

// SetSlot implements SlotState, invalidating the cached encoding.
func (r *Row) SetSlot(slot int, v Value) {
	r.enc = nil
	r.slots[slot] = v
	r.markPresent(slot)
}

// Len counts present attributes.
func (r *Row) Len() int {
	n := len(r.extra)
	for i := range r.slots {
		if r.isPresent(i) {
			n++
		}
	}
	return n
}

// ToMap returns the attributes as a MapState sharing the row's values.
// Shared containers count as escaped aliases (see Get).
func (r *Row) ToMap() MapState {
	out := make(MapState, r.Len())
	for i := range r.slots {
		if r.isPresent(i) {
			out[r.layout.Attrs[i]] = r.leak(r.slots[i])
		}
	}
	for k, v := range r.extra {
		out[k] = r.leak(v)
	}
	return out
}

// CloneMap returns the attributes as a deep-copied MapState.
func (r *Row) CloneMap() MapState {
	out := make(MapState, r.Len())
	for i := range r.slots {
		if r.isPresent(i) {
			out[r.layout.Attrs[i]] = r.slots[i].Clone()
		}
	}
	for k, v := range r.extra {
		out[k] = v.Clone()
	}
	return out
}

// Clone deep-copies the row. The encoding cache carries over (clones
// encode identically).
func (r *Row) Clone() *Row {
	out := &Row{layout: r.layout, slots: make([]Value, len(r.slots)), presentBits: r.presentBits}
	if r.presentBig != nil {
		out.presentBig = make([]bool, len(r.presentBig))
		copy(out.presentBig, r.presentBig)
	}
	for i := range r.slots {
		if r.isPresent(i) {
			out.slots[i] = r.slots[i].Clone()
		}
	}
	if len(r.extra) > 0 {
		out.extra = make(map[string]Value, len(r.extra))
		for k, v := range r.extra {
			out.extra[k] = v.Clone()
		}
	}
	if r.enc != nil {
		out.enc = r.enc
	}
	return out
}

// Encoding returns the row's canonical encoding — byte-identical to
// Encoder.State over the row's attributes — computing and caching it if
// dirty. Rows with escaped container aliases re-encode every time (the
// alias holder can mutate state without notifying the row). The returned
// slice must not be mutated.
func (r *Row) Encoding() []byte {
	if r.aliased {
		e := NewEncoder()
		r.appendEncoding(e)
		return e.Bytes()
	}
	if r.enc == nil {
		e := NewEncoder()
		r.appendEncoding(e)
		r.enc = e.Bytes()
	}
	return r.enc
}

// EncodedSize returns the serialized size of the row, cached until the
// next write.
func (r *Row) EncodedSize() int { return len(r.Encoding()) }

// Row appends a row in canonical (sorted attribute name) order.
func (e *Encoder) Row(r *Row) { r.appendEncoding(e) }

// appendEncoding walks the layout's precomputed sorted slots so no
// per-encode sorting or map iteration happens on the fast path. It reads
// values directly (no alias bookkeeping): encoding does not escape them.
func (r *Row) appendEncoding(e *Encoder) {
	if len(r.extra) > 0 {
		// Slow path: merge layout slots and overflow attributes by name.
		m := make(MapState, r.Len())
		for i := range r.slots {
			if r.isPresent(i) {
				m[r.layout.Attrs[i]] = r.slots[i]
			}
		}
		for k, v := range r.extra {
			m[k] = v
		}
		e.State(m)
		return
	}
	e.uvarint(uint64(r.Len()))
	for _, slot := range r.layout.SortedSlots() {
		if r.isPresent(slot) {
			e.str(r.layout.Attrs[slot])
			e.Value(r.slots[slot])
		}
	}
}

// Row reads a canonical row encoding back into a row over the given
// layout.
func (d *Decoder) Row(layout *ir.ClassLayout) (*Row, error) {
	st, err := d.State()
	if err != nil {
		return nil, err
	}
	return RowFromMap(layout, st), nil
}

// Equal reports semantic equality of two rows' attribute maps.
func (r *Row) Equal(o *Row) bool {
	if r.Len() != o.Len() {
		return false
	}
	om := o.ToMap()
	for k, v := range r.ToMap() {
		ov, ok := om[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Attrs lists present attribute names, sorted.
func (r *Row) Attrs() []string {
	out := make([]string, 0, r.Len())
	for i := range r.slots {
		if r.isPresent(i) {
			out = append(out, r.layout.Attrs[i])
		}
	}
	for k := range r.extra {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
