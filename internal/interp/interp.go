// The block interpreter: executes the straight-line statements of a split
// block (plus any inline control flow) against an entity's state and a
// variable environment. Remote calls never reach the interpreter — the
// splitter hoists them into Invoke terminators — so execution here is
// always local, synchronous and side-effect-free beyond the entity state.
package interp

import (
	"fmt"
	"strconv"
	"strings"

	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/lang/ast"
	"statefulentities.dev/stateflow/internal/lang/token"
)

// State is the attribute store of one entity instance. Runtimes provide
// implementations that track reads and writes (for transaction reservation
// sets and for cost accounting).
type State interface {
	Get(attr string) (Value, bool)
	Set(attr string, v Value)
}

// MapState is the plain map-backed State used by the local runtime and by
// tests ("the state is kept in a local HashMap data structure", §3).
type MapState map[string]Value

// Get implements State.
func (m MapState) Get(attr string) (Value, bool) {
	v, ok := m[attr]
	return v, ok
}

// Set implements State.
func (m MapState) Set(attr string, v Value) { m[attr] = v }

// RuntimeError is a DSL-level execution error.
type RuntimeError struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("%s: runtime error: %s", e.Pos, e.Msg)
}

// Interp executes entity code of one compiled program. By default it
// takes the slotted fast path — variables and self attributes stamped
// with layout slots by the compiler resolve by slice index — and falls
// back to name-keyed lookup for unstamped nodes or map-only state
// backends. SetSlotted(false) forces the name-keyed path everywhere;
// differential tests use it to prove both paths compute identical state.
type Interp struct {
	Prog    *ir.Program
	slotted bool
}

// New returns an interpreter over a compiled program (slotted execution
// enabled).
func New(prog *ir.Program) *Interp { return &Interp{Prog: prog, slotted: true} }

// SetSlotted toggles the slotted fast path (true by default).
func (in *Interp) SetSlotted(on bool) { in.slotted = on }

// Slotted reports whether the slotted fast path is enabled.
func (in *Interp) Slotted() bool { return in.slotted }

// Result is the outcome of executing a block's statement list.
type Result struct {
	Returned bool  // a return statement executed
	Value    Value // the returned value (None when Returned is false)
}

type frame struct {
	class string
	key   string
	env   *Frame
	state State
	// slots is the state's slot fast path, non-nil only when slotted
	// execution is on and the backend supports it.
	slots SlotState
	depth int
}

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

const maxCallDepth = 64

// getVar reads a variable through its 1-based slot stamp when slotted
// execution is on and the stamp fits the frame layout, falling back to
// name lookup otherwise.
func (in *Interp) getVar(fr *frame, slot int, name string) (Value, bool) {
	if in.slotted && slot > 0 && slot <= len(fr.env.slots) {
		return fr.env.GetSlot(slot - 1)
	}
	return fr.env.Get(name)
}

// setVar writes a variable through its 1-based slot stamp when possible
// (see getVar).
func (in *Interp) setVar(fr *frame, slot int, name string, v Value) {
	if in.slotted && slot > 0 && slot <= len(fr.env.slots) {
		fr.env.SetSlot(slot-1, v)
		return
	}
	fr.env.Set(name, v)
}

// makeFrame pairs a variable frame with a state backend, capturing the
// state's slot fast path when available. Returned by value so entry
// points keep activation records on the stack.
func (in *Interp) makeFrame(class, key string, env *Frame, st State, depth int) frame {
	fr := frame{class: class, key: key, env: env, state: st, depth: depth}
	if in.slotted {
		fr.slots, _ = st.(SlotState)
	}
	return fr
}

// ExecBlock runs a block's statements. The frame is mutated in place.
func (in *Interp) ExecBlock(class, key string, b *ir.Block, env *Frame, st State) (Result, error) {
	fr := in.makeFrame(class, key, env, st, 0)
	c, v, err := in.execStmts(b.Stmts, &fr)
	if err != nil {
		return Result{}, err
	}
	switch c {
	case ctrlReturn:
		return Result{Returned: true, Value: v}, nil
	case ctrlBreak, ctrlContinue:
		return Result{}, &RuntimeError{Msg: "break/continue escaped block (compiler bug)"}
	}
	return Result{}, nil
}

// Eval evaluates a single expression in the given context; used by operator
// logic to evaluate terminator conditions, invoke arguments and return
// values.
func (in *Interp) Eval(class, key string, e ast.Expr, env *Frame, st State) (Value, error) {
	if e == nil {
		return None, nil
	}
	fr := in.makeFrame(class, key, env, st, 0)
	return in.eval(e, &fr)
}

// ExecSimple runs a simple (unsplit) method to completion: it builds the
// parameter environment, executes the body, and yields the return value.
func (in *Interp) ExecSimple(class, key, method string, args []Value, st State) (Value, error) {
	m := in.Prog.MethodOf(class, method)
	if m == nil {
		return None, &RuntimeError{Msg: fmt.Sprintf("unknown method %s.%s", class, method)}
	}
	if !m.Simple {
		return None, &RuntimeError{Msg: fmt.Sprintf("%s.%s is split and cannot run synchronously", class, method)}
	}
	env, err := BindParams(m, args)
	if err != nil {
		return None, err
	}
	fr := in.makeFrame(class, key, env, st, 0)
	c, v, err := in.execStmts(m.Body, &fr)
	if err != nil {
		return None, err
	}
	if c == ctrlReturn {
		return v, nil
	}
	return None, nil
}

// ExecInit runs __init__ against a fresh state.
func (in *Interp) ExecInit(class string, args []Value, st State) error {
	op := in.Prog.Operator(class)
	if op == nil {
		return &RuntimeError{Msg: fmt.Sprintf("unknown class %s", class)}
	}
	m := op.Method("__init__")
	env, err := BindParams(m, args)
	if err != nil {
		return err
	}
	fr := in.makeFrame(class, "", env, st, 0)
	_, _, err = in.execStmts(m.Body, &fr)
	return err
}

// BindParams zips method parameters with argument values into a fresh
// frame over the method's layout. Parameters occupy the leading slots.
func BindParams(m *ir.Method, args []Value) (*Frame, error) {
	if len(args) != len(m.Params) {
		return nil, &RuntimeError{Msg: fmt.Sprintf("%s expects %d args, got %d", m.Name, len(m.Params), len(args))}
	}
	f := NewFrame(m.Frame)
	for i, p := range m.Params {
		// The layout pass places parameters in the leading slots.
		if m.Frame != nil && i < len(m.Frame.Vars) && m.Frame.Vars[i] == p.Name {
			f.SetSlot(i, args[i])
		} else {
			f.Set(p.Name, args[i])
		}
	}
	return f, nil
}

// ---------------------------------------------------------------------------
// Statements

func (in *Interp) execStmts(stmts []ast.Stmt, fr *frame) (ctrl, Value, error) {
	for _, s := range stmts {
		c, v, err := in.execStmt(s, fr)
		if err != nil {
			return ctrlNone, None, err
		}
		if c != ctrlNone {
			return c, v, nil
		}
	}
	return ctrlNone, None, nil
}

func (in *Interp) execStmt(s ast.Stmt, fr *frame) (ctrl, Value, error) {
	switch x := s.(type) {
	case *ast.PassStmt:
		return ctrlNone, None, nil
	case *ast.BreakStmt:
		return ctrlBreak, None, nil
	case *ast.ContinueStmt:
		return ctrlContinue, None, nil
	case *ast.ReturnStmt:
		if x.Value == nil {
			return ctrlReturn, None, nil
		}
		v, err := in.eval(x.Value, fr)
		if err != nil {
			return ctrlNone, None, err
		}
		return ctrlReturn, v, nil
	case *ast.ExprStmt:
		_, err := in.eval(x.Value, fr)
		return ctrlNone, None, err
	case *ast.AssignStmt:
		v, err := in.eval(x.Value, fr)
		if err != nil {
			return ctrlNone, None, err
		}
		return ctrlNone, None, in.assign(x.Target, v, fr)
	case *ast.AugAssignStmt:
		cur, err := in.eval(x.Target, fr)
		if err != nil {
			return ctrlNone, None, err
		}
		rhs, err := in.eval(x.Value, fr)
		if err != nil {
			return ctrlNone, None, err
		}
		nv, err := binop(x.Op, cur, rhs, x.Pos())
		if err != nil {
			return ctrlNone, None, err
		}
		return ctrlNone, None, in.assign(x.Target, nv, fr)
	case *ast.IfStmt:
		cond, err := in.eval(x.Cond, fr)
		if err != nil {
			return ctrlNone, None, err
		}
		if cond.IsTruthy() {
			return in.execStmts(x.Then, fr)
		}
		return in.execStmts(x.Else, fr)
	case *ast.WhileStmt:
		for i := 0; ; i++ {
			if i > 10_000_000 {
				return ctrlNone, None, &RuntimeError{Pos: x.Pos(), Msg: "while loop exceeded iteration bound"}
			}
			cond, err := in.eval(x.Cond, fr)
			if err != nil {
				return ctrlNone, None, err
			}
			if !cond.IsTruthy() {
				return ctrlNone, None, nil
			}
			c, v, err := in.execStmts(x.Body, fr)
			if err != nil {
				return ctrlNone, None, err
			}
			switch c {
			case ctrlReturn:
				return ctrlReturn, v, nil
			case ctrlBreak:
				return ctrlNone, None, nil
			}
		}
	case *ast.ForStmt:
		iter, err := in.eval(x.Iterable, fr)
		if err != nil {
			return ctrlNone, None, err
		}
		if iter.Kind != KList {
			return ctrlNone, None, &RuntimeError{Pos: x.Pos(), Msg: "for requires a list"}
		}
		for _, elem := range iter.L.Elems {
			in.setVar(fr, x.VarSlot, x.Var, elem)
			c, v, err := in.execStmts(x.Body, fr)
			if err != nil {
				return ctrlNone, None, err
			}
			switch c {
			case ctrlReturn:
				return ctrlReturn, v, nil
			case ctrlBreak:
				return ctrlNone, None, nil
			}
		}
		return ctrlNone, None, nil
	default:
		return ctrlNone, None, &RuntimeError{Pos: s.Pos(), Msg: fmt.Sprintf("unsupported statement %T", s)}
	}
}

func (in *Interp) assign(target ast.Expr, v Value, fr *frame) error {
	switch t := target.(type) {
	case *ast.Name:
		in.setVar(fr, t.Slot, t.Ident, v)
		return nil
	case *ast.Attr:
		if _, isSelf := t.Recv.(*ast.SelfRef); !isSelf {
			return &RuntimeError{Pos: t.Pos(), Msg: "can only assign self attributes"}
		}
		if fr.slots != nil && t.Slot > 0 {
			fr.slots.SetSlot(t.Slot-1, v)
		} else {
			fr.state.Set(t.Field, v)
		}
		return nil
	case *ast.Index:
		recv, err := in.eval(t.Recv, fr)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.Idx, fr)
		if err != nil {
			return err
		}
		switch recv.Kind {
		case KList:
			if idx.Kind != KInt {
				return &RuntimeError{Pos: t.Pos(), Msg: "list index must be int"}
			}
			i := idx.I
			if i < 0 {
				i += int64(len(recv.L.Elems))
			}
			if i < 0 || i >= int64(len(recv.L.Elems)) {
				return &RuntimeError{Pos: t.Pos(), Msg: "list index out of range"}
			}
			recv.L.Elems[i] = v
		case KDict:
			if err := recv.DictSet(idx, v); err != nil {
				return &RuntimeError{Pos: t.Pos(), Msg: err.Error()}
			}
		default:
			return &RuntimeError{Pos: t.Pos(), Msg: fmt.Sprintf("cannot index-assign %s", recv.Kind)}
		}
		// Container mutation through a state attribute must mark the
		// attribute dirty so write-tracking state backends observe it.
		in.touchStateAttr(t.Recv, recv, fr)
		return nil
	default:
		return &RuntimeError{Pos: target.Pos(), Msg: "invalid assignment target"}
	}
}

// touchStateAttr re-stores a container attribute after in-place mutation.
func (in *Interp) touchStateAttr(recvExpr ast.Expr, v Value, fr *frame) {
	if attr, ok := recvExpr.(*ast.Attr); ok {
		if _, isSelf := attr.Recv.(*ast.SelfRef); isSelf {
			if fr.slots != nil && attr.Slot > 0 {
				fr.slots.SetSlot(attr.Slot-1, v)
			} else {
				fr.state.Set(attr.Field, v)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Expressions

func (in *Interp) eval(e ast.Expr, fr *frame) (Value, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return IntV(x.Value), nil
	case *ast.FloatLit:
		return FloatV(x.Value), nil
	case *ast.StrLit:
		return StrV(x.Value), nil
	case *ast.BoolLit:
		return BoolV(x.Value), nil
	case *ast.NoneLit:
		return None, nil
	case *ast.SelfRef:
		return RefV(fr.class, fr.key), nil
	case *ast.Name:
		if v, ok := in.getVar(fr, x.Slot, x.Ident); ok {
			return v, nil
		}
		return None, &RuntimeError{Pos: x.Pos(), Msg: fmt.Sprintf("undefined variable %s", x.Ident)}
	case *ast.Attr:
		if _, isSelf := x.Recv.(*ast.SelfRef); isSelf {
			if fr.slots != nil && x.Slot > 0 {
				if v, ok := fr.slots.GetSlot(x.Slot - 1); ok {
					return v, nil
				}
			} else if v, ok := fr.state.Get(x.Field); ok {
				return v, nil
			}
			return None, &RuntimeError{Pos: x.Pos(), Msg: fmt.Sprintf("entity has no attribute %s", x.Field)}
		}
		return None, &RuntimeError{Pos: x.Pos(), Msg: "attribute access on non-self value"}
	case *ast.ListLit:
		elems := make([]Value, len(x.Elems))
		for i, el := range x.Elems {
			v, err := in.eval(el, fr)
			if err != nil {
				return None, err
			}
			elems[i] = v
		}
		return ListV(elems...), nil
	case *ast.DictLit:
		d := DictV()
		for i := range x.Keys {
			k, err := in.eval(x.Keys[i], fr)
			if err != nil {
				return None, err
			}
			v, err := in.eval(x.Values[i], fr)
			if err != nil {
				return None, err
			}
			if err := d.DictSet(k, v); err != nil {
				return None, &RuntimeError{Pos: x.Pos(), Msg: err.Error()}
			}
		}
		return d, nil
	case *ast.UnaryOp:
		v, err := in.eval(x.Operand, fr)
		if err != nil {
			return None, err
		}
		switch x.Op {
		case token.KwNot:
			return BoolV(!v.IsTruthy()), nil
		case token.MINUS:
			switch v.Kind {
			case KInt:
				return IntV(-v.I), nil
			case KFloat:
				return FloatV(-v.F), nil
			}
			return None, &RuntimeError{Pos: x.Pos(), Msg: "unary minus on non-number"}
		}
		return None, &RuntimeError{Pos: x.Pos(), Msg: "unknown unary operator"}
	case *ast.BinOp:
		// Short-circuit evaluation for and/or.
		if x.Op == token.KwAnd || x.Op == token.KwOr {
			l, err := in.eval(x.Left, fr)
			if err != nil {
				return None, err
			}
			if x.Op == token.KwAnd && !l.IsTruthy() {
				return l, nil
			}
			if x.Op == token.KwOr && l.IsTruthy() {
				return l, nil
			}
			return in.eval(x.Right, fr)
		}
		l, err := in.eval(x.Left, fr)
		if err != nil {
			return None, err
		}
		r, err := in.eval(x.Right, fr)
		if err != nil {
			return None, err
		}
		return binop(x.Op, l, r, x.Pos())
	case *ast.Index:
		recv, err := in.eval(x.Recv, fr)
		if err != nil {
			return None, err
		}
		idx, err := in.eval(x.Idx, fr)
		if err != nil {
			return None, err
		}
		return index(recv, idx, x.Pos())
	case *ast.Call:
		return in.evalCall(x, fr)
	default:
		return None, &RuntimeError{Pos: e.Pos(), Msg: fmt.Sprintf("unsupported expression %T", e)}
	}
}

func index(recv, idx Value, pos token.Pos) (Value, error) {
	switch recv.Kind {
	case KList:
		if idx.Kind != KInt {
			return None, &RuntimeError{Pos: pos, Msg: "list index must be int"}
		}
		i := idx.I
		if i < 0 {
			i += int64(len(recv.L.Elems))
		}
		if i < 0 || i >= int64(len(recv.L.Elems)) {
			return None, &RuntimeError{Pos: pos, Msg: "list index out of range"}
		}
		return recv.L.Elems[i], nil
	case KDict:
		v, ok, err := recv.DictGet(idx)
		if err != nil {
			return None, &RuntimeError{Pos: pos, Msg: err.Error()}
		}
		if !ok {
			return None, &RuntimeError{Pos: pos, Msg: fmt.Sprintf("key error: %s", idx.Repr())}
		}
		return v, nil
	case KStr:
		if idx.Kind != KInt {
			return None, &RuntimeError{Pos: pos, Msg: "string index must be int"}
		}
		runes := []rune(recv.S)
		i := idx.I
		if i < 0 {
			i += int64(len(runes))
		}
		if i < 0 || i >= int64(len(runes)) {
			return None, &RuntimeError{Pos: pos, Msg: "string index out of range"}
		}
		return StrV(string(runes[i])), nil
	default:
		return None, &RuntimeError{Pos: pos, Msg: fmt.Sprintf("cannot index %s", recv.Kind)}
	}
}

func binop(op token.Kind, l, r Value, pos token.Pos) (Value, error) {
	fail := func(format string, args ...any) (Value, error) {
		return None, &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
	bothNum := l.Kind == KInt && r.Kind == KInt ||
		(l.Kind == KInt || l.Kind == KFloat) && (r.Kind == KInt || r.Kind == KFloat)
	switch op {
	case token.EQ:
		return BoolV(l.Equal(r)), nil
	case token.NEQ:
		return BoolV(!l.Equal(r)), nil
	case token.LT, token.LTE, token.GT, token.GTE:
		var cmp int
		switch {
		case bothNum:
			a, b := l.AsFloat(), r.AsFloat()
			switch {
			case a < b:
				cmp = -1
			case a > b:
				cmp = 1
			}
		case l.Kind == KStr && r.Kind == KStr:
			cmp = strings.Compare(l.S, r.S)
		default:
			return fail("cannot compare %s with %s", l.Kind, r.Kind)
		}
		switch op {
		case token.LT:
			return BoolV(cmp < 0), nil
		case token.LTE:
			return BoolV(cmp <= 0), nil
		case token.GT:
			return BoolV(cmp > 0), nil
		default:
			return BoolV(cmp >= 0), nil
		}
	case token.KwIn:
		switch r.Kind {
		case KList:
			for _, e := range r.L.Elems {
				if e.Equal(l) {
					return BoolV(true), nil
				}
			}
			return BoolV(false), nil
		case KDict:
			_, ok, err := r.DictGet(l)
			if err != nil {
				return fail("%s", err)
			}
			return BoolV(ok), nil
		case KStr:
			if l.Kind != KStr {
				return fail("in: left operand must be str")
			}
			return BoolV(strings.Contains(r.S, l.S)), nil
		default:
			return fail("in requires list, dict or str")
		}
	case token.PLUS:
		if l.Kind == KStr && r.Kind == KStr {
			return StrV(l.S + r.S), nil
		}
		if l.Kind == KList && r.Kind == KList {
			out := make([]Value, 0, len(l.L.Elems)+len(r.L.Elems))
			out = append(out, l.L.Elems...)
			out = append(out, r.L.Elems...)
			return ListV(out...), nil
		}
		if l.Kind == KInt && r.Kind == KInt {
			return IntV(l.I + r.I), nil
		}
		if bothNum {
			return FloatV(l.AsFloat() + r.AsFloat()), nil
		}
		return fail("cannot add %s and %s", l.Kind, r.Kind)
	case token.MINUS:
		if l.Kind == KInt && r.Kind == KInt {
			return IntV(l.I - r.I), nil
		}
		if bothNum {
			return FloatV(l.AsFloat() - r.AsFloat()), nil
		}
		return fail("cannot subtract %s and %s", l.Kind, r.Kind)
	case token.STAR:
		if l.Kind == KInt && r.Kind == KInt {
			return IntV(l.I * r.I), nil
		}
		if bothNum {
			return FloatV(l.AsFloat() * r.AsFloat()), nil
		}
		return fail("cannot multiply %s and %s", l.Kind, r.Kind)
	case token.SLASH:
		if !bothNum {
			return fail("cannot divide %s and %s", l.Kind, r.Kind)
		}
		if r.AsFloat() == 0 {
			return fail("division by zero")
		}
		return FloatV(l.AsFloat() / r.AsFloat()), nil
	case token.DSLASH:
		if l.Kind == KInt && r.Kind == KInt {
			if r.I == 0 {
				return fail("division by zero")
			}
			// Python floor division.
			q := l.I / r.I
			if (l.I%r.I != 0) && ((l.I < 0) != (r.I < 0)) {
				q--
			}
			return IntV(q), nil
		}
		return fail("// requires ints")
	case token.PERCENT:
		if l.Kind == KInt && r.Kind == KInt {
			if r.I == 0 {
				return fail("modulo by zero")
			}
			m := l.I % r.I
			if m != 0 && (m < 0) != (r.I < 0) {
				m += r.I
			}
			return IntV(m), nil
		}
		return fail("%% requires ints")
	default:
		return fail("unknown operator %s", op)
	}
}

// ---------------------------------------------------------------------------
// Calls

func (in *Interp) evalCall(x *ast.Call, fr *frame) (Value, error) {
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := in.eval(a, fr)
		if err != nil {
			return None, err
		}
		args[i] = v
	}
	if x.Recv == nil {
		return in.callBuiltin(x, args, fr)
	}
	recv, err := in.eval(x.Recv, fr)
	if err != nil {
		return None, err
	}
	switch recv.Kind {
	case KList:
		return listMethod(x, recv, args, func(v Value) { in.touchStateAttr(x.Recv, v, fr) })
	case KDict:
		return dictMethod(x, recv, args)
	case KStr:
		return strMethod(x, recv, args)
	case KRef:
		// Only local self-calls to simple methods may execute inline; the
		// splitter guarantees everything else was hoisted into Invoke
		// terminators.
		if recv.R.Class != fr.class || recv.R.Key != fr.key {
			return None, &RuntimeError{Pos: x.Pos(), Msg: fmt.Sprintf(
				"remote call %s.%s reached the interpreter (compiler bug)", recv.R.Class, x.Func)}
		}
		if fr.depth+1 > maxCallDepth {
			return None, &RuntimeError{Pos: x.Pos(), Msg: "call depth exceeded"}
		}
		m := in.Prog.MethodOf(fr.class, x.Func)
		if m == nil {
			return None, &RuntimeError{Pos: x.Pos(), Msg: fmt.Sprintf("unknown method %s.%s", fr.class, x.Func)}
		}
		env, err := BindParams(m, args)
		if err != nil {
			return None, err
		}
		sub := in.makeFrame(fr.class, fr.key, env, fr.state, fr.depth+1)
		c, v, err := in.execStmts(m.Body, &sub)
		if err != nil {
			return None, err
		}
		if c == ctrlReturn {
			return v, nil
		}
		return None, nil
	default:
		return None, &RuntimeError{Pos: x.Pos(), Msg: fmt.Sprintf("%s has no methods", recv.Kind)}
	}
}

func (in *Interp) callBuiltin(x *ast.Call, args []Value, fr *frame) (Value, error) {
	fail := func(format string, a ...any) (Value, error) {
		return None, &RuntimeError{Pos: x.Pos(), Msg: fmt.Sprintf(format, a...)}
	}
	switch x.Func {
	case "len":
		if len(args) != 1 {
			return fail("len expects 1 argument")
		}
		switch args[0].Kind {
		case KList:
			return IntV(int64(len(args[0].L.Elems))), nil
		case KDict:
			return IntV(int64(len(args[0].D))), nil
		case KStr:
			return IntV(int64(len([]rune(args[0].S)))), nil
		default:
			return fail("len of %s", args[0].Kind)
		}
	case "str":
		if len(args) != 1 {
			return fail("str expects 1 argument")
		}
		return StrV(args[0].String()), nil
	case "int":
		if len(args) != 1 {
			return fail("int expects 1 argument")
		}
		switch args[0].Kind {
		case KInt:
			return args[0], nil
		case KFloat:
			return IntV(int64(args[0].F)), nil
		case KBool:
			if args[0].B {
				return IntV(1), nil
			}
			return IntV(0), nil
		case KStr:
			n, err := strconv.ParseInt(strings.TrimSpace(args[0].S), 10, 64)
			if err != nil {
				return fail("invalid int literal %q", args[0].S)
			}
			return IntV(n), nil
		default:
			return fail("int of %s", args[0].Kind)
		}
	case "float":
		if len(args) != 1 {
			return fail("float expects 1 argument")
		}
		switch args[0].Kind {
		case KInt:
			return FloatV(float64(args[0].I)), nil
		case KFloat:
			return args[0], nil
		case KStr:
			f, err := strconv.ParseFloat(strings.TrimSpace(args[0].S), 64)
			if err != nil {
				return fail("invalid float literal %q", args[0].S)
			}
			return FloatV(f), nil
		default:
			return fail("float of %s", args[0].Kind)
		}
	case "bool":
		if len(args) != 1 {
			return fail("bool expects 1 argument")
		}
		return BoolV(args[0].IsTruthy()), nil
	case "abs":
		if len(args) != 1 {
			return fail("abs expects 1 argument")
		}
		switch args[0].Kind {
		case KInt:
			if args[0].I < 0 {
				return IntV(-args[0].I), nil
			}
			return args[0], nil
		case KFloat:
			if args[0].F < 0 {
				return FloatV(-args[0].F), nil
			}
			return args[0], nil
		default:
			return fail("abs of %s", args[0].Kind)
		}
	case "min", "max":
		if len(args) < 2 {
			return fail("%s expects at least 2 arguments", x.Func)
		}
		best := args[0]
		for _, a := range args[1:] {
			cmpTok := token.LT
			if x.Func == "max" {
				cmpTok = token.GT
			}
			res, err := binop(cmpTok, a, best, x.Pos())
			if err != nil {
				return None, err
			}
			if res.B {
				best = a
			}
		}
		return best, nil
	case "range":
		var lo, hi int64
		switch len(args) {
		case 1:
			hi = args[0].I
		case 2:
			lo, hi = args[0].I, args[1].I
		default:
			return fail("range expects 1 or 2 arguments")
		}
		elems := make([]Value, 0, max64(0, hi-lo))
		for i := lo; i < hi; i++ {
			elems = append(elems, IntV(i))
		}
		return ListV(elems...), nil
	default:
		return fail("unknown function %s (constructor calls must be hoisted by the compiler)", x.Func)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func listMethod(x *ast.Call, recv Value, args []Value, touch func(Value)) (Value, error) {
	fail := func(format string, a ...any) (Value, error) {
		return None, &RuntimeError{Pos: x.Pos(), Msg: fmt.Sprintf(format, a...)}
	}
	switch x.Func {
	case "append":
		if len(args) != 1 {
			return fail("append expects 1 argument")
		}
		recv.L.Elems = append(recv.L.Elems, args[0])
		touch(recv)
		return None, nil
	case "pop":
		n := len(recv.L.Elems)
		if n == 0 {
			return fail("pop from empty list")
		}
		i := int64(n - 1)
		if len(args) == 1 {
			if args[0].Kind != KInt {
				return fail("pop index must be int")
			}
			i = args[0].I
			if i < 0 {
				i += int64(n)
			}
			if i < 0 || i >= int64(n) {
				return fail("pop index out of range")
			}
		}
		v := recv.L.Elems[i]
		recv.L.Elems = append(recv.L.Elems[:i], recv.L.Elems[i+1:]...)
		touch(recv)
		return v, nil
	default:
		return fail("list has no method %s", x.Func)
	}
}

func dictMethod(x *ast.Call, recv Value, args []Value) (Value, error) {
	fail := func(format string, a ...any) (Value, error) {
		return None, &RuntimeError{Pos: x.Pos(), Msg: fmt.Sprintf(format, a...)}
	}
	switch x.Func {
	case "get":
		if len(args) != 2 {
			return fail("get expects key and default")
		}
		v, ok, err := recv.DictGet(args[0])
		if err != nil {
			return fail("%s", err)
		}
		if !ok {
			return args[1], nil
		}
		return v, nil
	case "keys":
		return ListV(recv.DictKeys()...), nil
	case "values":
		keys := recv.DictKeys()
		vals := make([]Value, len(keys))
		for i, k := range keys {
			v, _, _ := recv.DictGet(k)
			vals[i] = v
		}
		return ListV(vals...), nil
	default:
		return fail("dict has no method %s", x.Func)
	}
}

func strMethod(x *ast.Call, recv Value, args []Value) (Value, error) {
	fail := func(format string, a ...any) (Value, error) {
		return None, &RuntimeError{Pos: x.Pos(), Msg: fmt.Sprintf(format, a...)}
	}
	if len(args) != 0 && x.Func != "" {
		// All supported str methods take no arguments.
	}
	switch x.Func {
	case "upper":
		return StrV(strings.ToUpper(recv.S)), nil
	case "lower":
		return StrV(strings.ToLower(recv.S)), nil
	case "strip":
		return StrV(strings.TrimSpace(recv.S)), nil
	default:
		return fail("str has no method %s", x.Func)
	}
}
