package interp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomValue generates an arbitrary value of bounded depth for
// property-based testing.
func randomValue(r *rand.Rand, depth int) Value {
	max := 8
	if depth <= 0 {
		max = 5 // scalars only
	}
	switch r.Intn(max) {
	case 0:
		return None
	case 1:
		return IntV(r.Int63() - (1 << 62))
	case 2:
		f := math.Float64frombits(r.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			f = r.Float64()
		}
		return FloatV(f)
	case 3:
		return StrV(randString(r))
	case 4:
		return BoolV(r.Intn(2) == 0)
	case 5:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return ListV(elems...)
	case 6:
		d := DictV()
		for i := 0; i < r.Intn(4); i++ {
			k := StrV(randString(r))
			_ = d.DictSet(k, randomValue(r, depth-1))
		}
		return d
	default:
		return RefV(randString(r), randString(r))
	}
}

func randString(r *rand.Rand) string {
	n := r.Intn(12)
	b := make([]rune, n)
	letters := []rune("abcdefghijklmnop \t\n€漢")
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

// genValue adapts randomValue to testing/quick.
type genValue struct{ V Value }

// Generate implements quick.Generator.
func (genValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genValue{V: randomValue(r, 3)})
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	prop := func(g genValue) bool {
		enc := EncodeValue(g.V)
		dec, err := DecodeValue(enc)
		if err != nil {
			t.Logf("decode error for %v: %v", g.V, err)
			return false
		}
		return dec.Equal(g.V)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDeterministicProperty(t *testing.T) {
	prop := func(g genValue) bool {
		a := EncodeValue(g.V)
		b := EncodeValue(g.V.Clone())
		return string(a) == string(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneEqualProperty(t *testing.T) {
	prop := func(g genValue) bool {
		return g.V.Clone().Equal(g.V)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvRoundTrip(t *testing.T) {
	env := Env{
		"a":  IntV(1),
		"b":  StrV("hello"),
		"xs": ListV(IntV(1), FloatV(2.5)),
		"r":  RefV("User", "alice"),
	}
	e := NewEncoder()
	e.Env(env)
	d := NewDecoder(e.Bytes())
	back, err := d.Env()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(env) {
		t.Fatalf("size: %d", len(back))
	}
	for k, v := range env {
		if !back[k].Equal(v) {
			t.Fatalf("%s: %v != %v", k, back[k], v)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	st := MapState{"k": StrV("x"), "n": IntV(5)}
	e := NewEncoder()
	e.State(st)
	d := NewDecoder(e.Bytes())
	back, err := d.State()
	if err != nil {
		t.Fatal(err)
	}
	if !back["n"].Equal(IntV(5)) {
		t.Fatalf("state: %v", back)
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := EncodeValue(ListV(IntV(1), StrV("abc")))
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeValue(enc[:i]); err == nil {
			t.Fatalf("truncated decode at %d should fail", i)
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	enc := append(EncodeValue(IntV(1)), 0xFF)
	if _, err := DecodeValue(enc); err == nil {
		t.Fatal("trailing bytes should fail")
	}
}

func TestEncodedSizeGrowsWithState(t *testing.T) {
	small := MapState{"payload": StrV(string(make([]byte, 100)))}
	large := MapState{"payload": StrV(string(make([]byte, 10_000)))}
	if EncodedSize(large) <= EncodedSize(small) {
		t.Fatal("size must grow with payload")
	}
}

func TestDictKeyKinds(t *testing.T) {
	d := DictV()
	keys := []Value{IntV(1), StrV("1"), BoolV(true), FloatV(1.5)}
	for i, k := range keys {
		if err := d.DictSet(k, IntV(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if len(d.D) != 4 {
		t.Fatalf("distinct keys collapsed: %d", len(d.D))
	}
	if err := d.DictSet(ListV(), None); err == nil {
		t.Fatal("lists must be unhashable")
	}
}
