// Package interp implements the runtime value model and the tree-walking
// interpreter that executes split-function blocks against an entity's
// state. Every runtime (local, StateFlow, StateFun-model) executes entity
// code through this package, mirroring how the paper's Python runtimes
// reconstruct an object from operator state and run a method (§2.3).
package interp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates runtime value kinds.
type Kind int

// Value kinds.
const (
	KNone Kind = iota
	KInt
	KFloat
	KStr
	KBool
	KList
	KDict
	KRef // reference to a stateful entity (class + key)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KNone:
		return "None"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KStr:
		return "str"
	case KBool:
		return "bool"
	case KList:
		return "list"
	case KDict:
		return "dict"
	case KRef:
		return "entity"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// EntityRef identifies a stateful entity instance: the operator (class)
// plus the partition key.
type EntityRef struct {
	Class string
	Key   string
}

// String renders the reference.
func (r EntityRef) String() string { return r.Class + "<" + r.Key + ">" }

// List is the shared backing store of a list value. Lists have reference
// semantics like Python: assigning a list to another variable aliases the
// same storage.
type List struct {
	Elems []Value
}

// Value is a DSL runtime value. The zero Value is None.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
	L    *List
	// D holds dict entries keyed by the encoded key (see dictKey); DK
	// remembers each original key value. Maps give dicts reference
	// semantics.
	D  map[string]Value
	DK map[string]Value
	R  EntityRef
}

// Constructors.
var None = Value{Kind: KNone}

// IntV builds an int value.
func IntV(i int64) Value { return Value{Kind: KInt, I: i} }

// FloatV builds a float value.
func FloatV(f float64) Value { return Value{Kind: KFloat, F: f} }

// StrV builds a str value.
func StrV(s string) Value { return Value{Kind: KStr, S: s} }

// BoolV builds a bool value.
func BoolV(b bool) Value { return Value{Kind: KBool, B: b} }

// ListV builds a list value (the slice is owned by the value).
func ListV(elems ...Value) Value {
	if elems == nil {
		elems = []Value{}
	}
	return Value{Kind: KList, L: &List{Elems: elems}}
}

// DictV builds an empty dict value.
func DictV() Value {
	return Value{Kind: KDict, D: map[string]Value{}, DK: map[string]Value{}}
}

// RefV builds an entity reference.
func RefV(class, key string) Value {
	return Value{Kind: KRef, R: EntityRef{Class: class, Key: key}}
}

// dictKey encodes a value as a dict key. Only scalars are hashable.
func dictKey(v Value) (string, error) {
	switch v.Kind {
	case KInt:
		return "i:" + strconv.FormatInt(v.I, 10), nil
	case KStr:
		return "s:" + v.S, nil
	case KBool:
		if v.B {
			return "b:1", nil
		}
		return "b:0", nil
	case KFloat:
		return "f:" + strconv.FormatFloat(v.F, 'g', -1, 64), nil
	default:
		return "", fmt.Errorf("unhashable dict key of type %s", v.Kind)
	}
}

// DictSet inserts k -> val into a dict value.
func (v *Value) DictSet(k, val Value) error {
	if v.Kind != KDict {
		return fmt.Errorf("not a dict")
	}
	dk, err := dictKey(k)
	if err != nil {
		return err
	}
	v.D[dk] = val
	v.DK[dk] = k
	return nil
}

// DictGet fetches the value for key k.
func (v Value) DictGet(k Value) (Value, bool, error) {
	if v.Kind != KDict {
		return None, false, fmt.Errorf("not a dict")
	}
	dk, err := dictKey(k)
	if err != nil {
		return None, false, err
	}
	val, ok := v.D[dk]
	return val, ok, nil
}

// DictKeys returns dict keys in deterministic (sorted) order.
func (v Value) DictKeys() []Value {
	keys := make([]string, 0, len(v.DK))
	for k := range v.DK {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Value, len(keys))
	for i, k := range keys {
		out[i] = v.DK[k]
	}
	return out
}

// IsTruthy converts to a boolean following Python rules.
func (v Value) IsTruthy() bool {
	switch v.Kind {
	case KNone:
		return false
	case KInt:
		return v.I != 0
	case KFloat:
		return v.F != 0
	case KStr:
		return v.S != ""
	case KBool:
		return v.B
	case KList:
		return v.L != nil && len(v.L.Elems) > 0
	case KDict:
		return len(v.D) > 0
	case KRef:
		return true
	}
	return false
}

// AsFloat widens int to float.
func (v Value) AsFloat() float64 {
	if v.Kind == KInt {
		return float64(v.I)
	}
	return v.F
}

// Equal implements DSL equality (== / !=). Int and float compare
// numerically.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		if v.Kind == KInt && o.Kind == KFloat || v.Kind == KFloat && o.Kind == KInt {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.Kind {
	case KNone:
		return true
	case KInt:
		return v.I == o.I
	case KFloat:
		return v.F == o.F
	case KStr:
		return v.S == o.S
	case KBool:
		return v.B == o.B
	case KRef:
		return v.R == o.R
	case KList:
		if len(v.L.Elems) != len(o.L.Elems) {
			return false
		}
		for i := range v.L.Elems {
			if !v.L.Elems[i].Equal(o.L.Elems[i]) {
				return false
			}
		}
		return true
	case KDict:
		if len(v.D) != len(o.D) {
			return false
		}
		for k, val := range v.D {
			ov, ok := o.D[k]
			if !ok || !val.Equal(ov) {
				return false
			}
		}
		return true
	}
	return false
}

// Clone deep-copies the value. Containers are copied; scalars are cheap.
func (v Value) Clone() Value {
	switch v.Kind {
	case KList:
		l := make([]Value, len(v.L.Elems))
		for i, e := range v.L.Elems {
			l[i] = e.Clone()
		}
		return Value{Kind: KList, L: &List{Elems: l}}
	case KDict:
		d := make(map[string]Value, len(v.D))
		dk := make(map[string]Value, len(v.DK))
		for k, e := range v.D {
			d[k] = e.Clone()
		}
		for k, e := range v.DK {
			dk[k] = e
		}
		return Value{Kind: KDict, D: d, DK: dk}
	default:
		return v
	}
}

// String renders the value in Python-ish syntax.
func (v Value) String() string {
	switch v.Kind {
	case KNone:
		return "None"
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KStr:
		return v.S
	case KBool:
		if v.B {
			return "True"
		}
		return "False"
	case KList:
		parts := make([]string, len(v.L.Elems))
		for i, e := range v.L.Elems {
			parts[i] = e.Repr()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KDict:
		keys := v.DictKeys()
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			val, _, _ := v.DictGet(k)
			parts = append(parts, k.Repr()+": "+val.Repr())
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case KRef:
		return v.R.String()
	}
	return "<invalid>"
}

// Repr is String but with strings quoted, as inside containers.
func (v Value) Repr() string {
	if v.Kind == KStr {
		return strconv.Quote(v.S)
	}
	return v.String()
}

// Env is the variable environment carried across split blocks (the
// intermediate results stored in the execution graph, §2.5).
type Env map[string]Value

// Clone copies the environment (values are deep-copied so suspended
// continuations are isolated from later mutation).
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v.Clone()
	}
	return out
}

// Prune keeps only the listed variables (the block's live-out set).
func (e Env) Prune(keep []string) Env {
	out := make(Env, len(keep))
	for _, k := range keep {
		if v, ok := e[k]; ok {
			out[k] = v
		}
	}
	return out
}
