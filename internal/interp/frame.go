// Frame is the slice-backed variable environment of one method
// activation. The compiler's layout pass assigns every variable of a
// method a dense slot (ir.FrameLayout); the interpreter reads and writes
// stamped names by slice index instead of hashing strings. Variables
// outside the layout (hand-built IR, unstamped ASTs) fall back to an
// overflow map, preserving the exact semantics of the old map-backed Env.
package interp

import (
	"sort"

	"statefulentities.dev/stateflow/internal/ir"
)

// Frame holds the variables of one method activation: a dense slot array
// described by the method's FrameLayout plus an overflow map for names
// outside the layout.
type Frame struct {
	layout *ir.FrameLayout
	slots  []Value
	def    uint64 // definedness bitmap for frames of up to 64 slots
	defBig []bool // definedness spill for wider frames (non-nil iff used)
	extra  map[string]Value
}

// NewFrame allocates an empty frame for a layout (nil layout gives a pure
// map-backed frame).
func NewFrame(layout *ir.FrameLayout) *Frame {
	n := layout.NumSlots()
	f := &Frame{layout: layout, slots: make([]Value, n)}
	if n > 64 {
		f.defBig = make([]bool, n)
	}
	return f
}

func (f *Frame) defined(i int) bool {
	if f.defBig != nil {
		return f.defBig[i]
	}
	return f.def&(1<<uint(i)) != 0
}

func (f *Frame) setDef(i int) {
	if f.defBig != nil {
		f.defBig[i] = true
		return
	}
	f.def |= 1 << uint(i)
}

func (f *Frame) clearDef(i int) {
	if f.defBig != nil {
		f.defBig[i] = false
		return
	}
	f.def &^= 1 << uint(i)
}

// Layout returns the frame's layout (possibly nil).
func (f *Frame) Layout() *ir.FrameLayout { return f.layout }

// Get reads a variable by name.
func (f *Frame) Get(name string) (Value, bool) {
	if i, ok := f.layout.SlotOf(name); ok {
		if !f.defined(i) {
			return None, false
		}
		return f.slots[i], true
	}
	v, ok := f.extra[name]
	return v, ok
}

// Set writes a variable by name.
func (f *Frame) Set(name string, v Value) {
	if i, ok := f.layout.SlotOf(name); ok {
		f.slots[i] = v
		f.setDef(i)
		return
	}
	if f.extra == nil {
		f.extra = map[string]Value{}
	}
	f.extra[name] = v
}

// GetSlot reads a variable by 0-based layout slot.
func (f *Frame) GetSlot(i int) (Value, bool) {
	if i >= len(f.slots) || !f.defined(i) {
		return None, false
	}
	return f.slots[i], true
}

// SetSlot writes a variable by 0-based layout slot.
func (f *Frame) SetSlot(i int, v Value) {
	f.slots[i] = v
	f.setDef(i)
}

// Len counts defined variables.
func (f *Frame) Len() int {
	n := len(f.extra)
	for i := range f.slots {
		if f.defined(i) {
			n++
		}
	}
	return n
}

// Names lists defined variable names, sorted.
func (f *Frame) Names() []string {
	out := make([]string, 0, f.Len())
	for i := range f.slots {
		if f.defined(i) {
			out = append(out, f.layout.Vars[i])
		}
	}
	for k := range f.extra {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the frame so suspended continuations are isolated
// from later mutation.
func (f *Frame) Clone() *Frame {
	out := &Frame{layout: f.layout, slots: make([]Value, len(f.slots)), def: f.def}
	if f.defBig != nil {
		out.defBig = make([]bool, len(f.defBig))
		copy(out.defBig, f.defBig)
	}
	for i := range f.slots {
		if f.defined(i) {
			out.slots[i] = f.slots[i].Clone()
		}
	}
	if len(f.extra) > 0 {
		out.extra = make(map[string]Value, len(f.extra))
		for k, v := range f.extra {
			out.extra[k] = v.Clone()
		}
	}
	return out
}

// Prune drops every variable not in keep (the block's live-out set),
// releasing the values the continuation no longer needs.
func (f *Frame) Prune(keep []string) {
	keepSlot := make([]bool, len(f.slots))
	var keepExtra map[string]bool
	for _, k := range keep {
		if i, ok := f.layout.SlotOf(k); ok {
			keepSlot[i] = true
		} else if f.extra != nil {
			if keepExtra == nil {
				keepExtra = map[string]bool{}
			}
			keepExtra[k] = true
		}
	}
	for i := range f.slots {
		if !keepSlot[i] {
			f.slots[i] = None
			f.clearDef(i)
		}
	}
	for k := range f.extra {
		if !keepExtra[k] {
			delete(f.extra, k)
		}
	}
}

// ToEnv converts the frame to a name-keyed Env (tests, debugging).
func (f *Frame) ToEnv() Env {
	out := make(Env, f.Len())
	for i := range f.slots {
		if f.defined(i) {
			out[f.layout.Vars[i]] = f.slots[i]
		}
	}
	for k, v := range f.extra {
		out[k] = v
	}
	return out
}

// FrameFromEnv builds a frame over a layout from name-keyed variables.
func FrameFromEnv(layout *ir.FrameLayout, env Env) *Frame {
	f := NewFrame(layout)
	for k, v := range env {
		f.Set(k, v)
	}
	return f
}
