// Binary encoding of values, environments and entity state. The paper
// requires entity state to be serializable (§2.2); runtimes use this codec
// for snapshot persistence (§3), for shipping execution contexts inside
// events, and for the state-size cost accounting of the system-overhead
// experiment (§4).
package interp

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Encoder appends values to a byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded size.
func (e *Encoder) Len() int { return len(e.buf) }

// Append splices pre-encoded bytes (e.g. a row's cached encoding) into
// the buffer.
func (e *Encoder) Append(b []byte) { e.buf = append(e.buf, b...) }

func (e *Encoder) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *Encoder) uvarint(u uint64) { e.buf = binary.AppendUvarint(e.buf, u) }
func (e *Encoder) varint(i int64)   { e.buf = binary.AppendVarint(e.buf, i) }

func (e *Encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Uvarint appends an unsigned varint (exported for subsystems framing
// their own records around values, e.g. the durable-log codecs).
func (e *Encoder) Uvarint(u uint64) { e.uvarint(u) }

// Varint appends a signed varint.
func (e *Encoder) Varint(i int64) { e.varint(i) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) { e.str(s) }

// Value appends one value.
func (e *Encoder) Value(v Value) {
	e.byte(byte(v.Kind))
	switch v.Kind {
	case KNone:
	case KInt:
		e.varint(v.I)
	case KFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
		e.buf = append(e.buf, b[:]...)
	case KStr:
		e.str(v.S)
	case KBool:
		if v.B {
			e.byte(1)
		} else {
			e.byte(0)
		}
	case KList:
		e.uvarint(uint64(len(v.L.Elems)))
		for _, el := range v.L.Elems {
			e.Value(el)
		}
	case KDict:
		keys := make([]string, 0, len(v.D))
		for k := range v.D {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.Value(v.DK[k])
			e.Value(v.D[k])
		}
	case KRef:
		e.str(v.R.Class)
		e.str(v.R.Key)
	}
}

// Env appends an environment with deterministic key order.
func (e *Encoder) Env(env Env) {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.Value(env[k])
	}
}

// State appends a MapState with deterministic key order.
func (e *Encoder) State(st MapState) { e.Env(Env(st)) }

// Decoder reads values from a byte buffer.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps a buffer.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining reports unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) bytev() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("decode: unexpected end of buffer")
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *Decoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("decode: bad uvarint")
	}
	d.off += n
	return u, nil
}

func (d *Decoder) varint() (int64, error) {
	i, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("decode: bad varint")
	}
	d.off += n
	return i, nil
}

func (d *Decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if d.off+int(n) > len(d.buf) {
		return "", fmt.Errorf("decode: string overruns buffer")
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// Uvarint reads an unsigned varint (exported counterpart of
// Encoder.Uvarint).
func (d *Decoder) Uvarint() (uint64, error) { return d.uvarint() }

// Varint reads a signed varint.
func (d *Decoder) Varint() (int64, error) { return d.varint() }

// Str reads a length-prefixed string.
func (d *Decoder) Str() (string, error) { return d.str() }

// Value reads one value.
func (d *Decoder) Value() (Value, error) {
	kb, err := d.bytev()
	if err != nil {
		return None, err
	}
	switch Kind(kb) {
	case KNone:
		return None, nil
	case KInt:
		i, err := d.varint()
		if err != nil {
			return None, err
		}
		return IntV(i), nil
	case KFloat:
		if d.off+8 > len(d.buf) {
			return None, fmt.Errorf("decode: float overruns buffer")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
		d.off += 8
		return FloatV(f), nil
	case KStr:
		s, err := d.str()
		if err != nil {
			return None, err
		}
		return StrV(s), nil
	case KBool:
		b, err := d.bytev()
		if err != nil {
			return None, err
		}
		return BoolV(b == 1), nil
	case KList:
		n, err := d.uvarint()
		if err != nil {
			return None, err
		}
		elems := make([]Value, n)
		for i := range elems {
			elems[i], err = d.Value()
			if err != nil {
				return None, err
			}
		}
		return ListV(elems...), nil
	case KDict:
		n, err := d.uvarint()
		if err != nil {
			return None, err
		}
		out := DictV()
		for i := uint64(0); i < n; i++ {
			k, err := d.Value()
			if err != nil {
				return None, err
			}
			v, err := d.Value()
			if err != nil {
				return None, err
			}
			if err := out.DictSet(k, v); err != nil {
				return None, err
			}
		}
		return out, nil
	case KRef:
		class, err := d.str()
		if err != nil {
			return None, err
		}
		key, err := d.str()
		if err != nil {
			return None, err
		}
		return RefV(class, key), nil
	default:
		return None, fmt.Errorf("decode: unknown kind %d", kb)
	}
}

// Env reads an environment.
func (d *Decoder) Env() (Env, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	env := make(Env, n)
	for i := uint64(0); i < n; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.Value()
		if err != nil {
			return nil, err
		}
		env[k] = v
	}
	return env, nil
}

// State reads a MapState.
func (d *Decoder) State() (MapState, error) {
	env, err := d.Env()
	return MapState(env), err
}

// EncodeValue is a convenience one-shot encoder.
func EncodeValue(v Value) []byte {
	e := NewEncoder()
	e.Value(v)
	return e.Bytes()
}

// DecodeValue is a convenience one-shot decoder.
func DecodeValue(buf []byte) (Value, error) {
	d := NewDecoder(buf)
	v, err := d.Value()
	if err != nil {
		return None, err
	}
	if d.Remaining() != 0 {
		return None, fmt.Errorf("decode: %d trailing bytes", d.Remaining())
	}
	return v, nil
}

// EncodedSize returns the serialized size of a state map; the runtime cost
// models charge (de)serialization proportional to it.
func EncodedSize(st MapState) int {
	e := NewEncoder()
	e.State(st)
	return e.Len()
}
