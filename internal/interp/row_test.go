package interp

import (
	"bytes"
	"fmt"
	"testing"

	"statefulentities.dev/stateflow/internal/ir"
)

func testLayout() *ir.ClassLayout {
	return ir.NewClassLayout("C", 0, []string{"b", "a", "c"})
}

func TestRowGetSetSlots(t *testing.T) {
	r := NewRow(testLayout())
	if _, ok := r.Get("a"); ok {
		t.Fatal("fresh row must be empty")
	}
	r.Set("a", IntV(1))
	if v, ok := r.Get("a"); !ok || v.I != 1 {
		t.Fatalf("get a: %v %v", v, ok)
	}
	// Slot access agrees with name access.
	slot, _ := r.Layout().SlotOf("a")
	if v, ok := r.GetSlot(slot); !ok || v.I != 1 {
		t.Fatalf("get slot: %v %v", v, ok)
	}
	r.SetSlot(slot, IntV(2))
	if v, _ := r.Get("a"); v.I != 2 {
		t.Fatalf("slot write not visible by name: %v", v)
	}
	// Attributes outside the layout spill into the overflow map.
	r.Set("dyn", StrV("x"))
	if v, ok := r.Get("dyn"); !ok || v.S != "x" {
		t.Fatalf("overflow attr: %v %v", v, ok)
	}
	if r.Len() != 2 {
		t.Fatalf("len: %d", r.Len())
	}
}

// The row codec must emit exactly the bytes of the canonical name-keyed
// MapState encoding — differential state comparison depends on it.
func TestRowEncodingCanonical(t *testing.T) {
	r := NewRow(testLayout())
	r.Set("c", ListV(IntV(1), StrV("s")))
	r.Set("a", FloatV(2.5))
	r.Set("b", BoolV(true))
	e := NewEncoder()
	e.State(r.ToMap())
	if !bytes.Equal(r.Encoding(), e.Bytes()) {
		t.Fatal("row encoding must match canonical MapState encoding")
	}
	// Including when overflow attributes force the slow path.
	r.Set("zz", IntV(9))
	e2 := NewEncoder()
	e2.State(r.ToMap())
	if !bytes.Equal(r.Encoding(), e2.Bytes()) {
		t.Fatal("overflow row encoding must stay canonical")
	}
}

func TestRowEncodingCacheInvalidation(t *testing.T) {
	r := NewRow(testLayout())
	r.Set("a", StrV("x"))
	small := r.EncodedSize()
	if small == 0 {
		t.Fatal("size must be positive")
	}
	if r.EncodedSize() != small {
		t.Fatal("cached size must be stable")
	}
	r.Set("a", StrV(string(make([]byte, 500))))
	if r.EncodedSize() <= small {
		t.Fatal("write must invalidate the size cache")
	}
	slot, _ := r.Layout().SlotOf("a")
	before := r.EncodedSize()
	r.SetSlot(slot, StrV("tiny"))
	if r.EncodedSize() >= before {
		t.Fatal("slot write must invalidate the size cache")
	}
}

// A container value handed out by Get can be mutated through the alias
// without a Set; the encoding must reflect such mutations instead of
// serving stale cached bytes.
func TestRowEncodingAliasedContainer(t *testing.T) {
	r := NewRow(testLayout())
	r.Set("a", ListV(IntV(1)))
	before := len(r.Encoding())
	v, _ := r.Get("a") // alias escapes
	v.L.Elems = append(v.L.Elems, StrV(string(make([]byte, 100))))
	r.Set("a", v) // what touchStateAttr does on tracked paths
	mid := len(r.Encoding())
	if mid <= before {
		t.Fatal("tracked container write not re-encoded")
	}
	// Mutation through the alias alone, with no Set at all.
	v.L.Elems = append(v.L.Elems, StrV(string(make([]byte, 200))))
	if len(r.Encoding()) <= mid {
		t.Fatal("aliased mutation served stale cached encoding")
	}
	e := NewEncoder()
	e.State(MapState{"a": v})
	if !bytes.Equal(r.Encoding(), e.Bytes()) {
		t.Fatal("aliased row encoding must stay canonical")
	}
	// Scalar-only rows keep caching (the fast path): same backing array
	// returned twice.
	s := NewRow(testLayout())
	s.Set("a", IntV(1))
	if &s.Encoding()[0] != &s.Encoding()[0] {
		t.Fatal("scalar row must serve the cached encoding")
	}
}

func TestRowCloneIsolation(t *testing.T) {
	r := NewRow(testLayout())
	r.Set("a", ListV(IntV(1)))
	c := r.Clone()
	v, _ := c.Get("a")
	v.L.Elems[0] = IntV(99)
	orig, _ := r.Get("a")
	if orig.L.Elems[0].I != 1 {
		t.Fatal("clone must deep-copy values")
	}
	if !bytes.Equal(r.Encoding(), func() []byte { c2 := r.Clone(); return c2.Encoding() }()) {
		t.Fatal("clone must encode identically")
	}
}

func TestRowDecodeRoundTrip(t *testing.T) {
	r := NewRow(testLayout())
	r.Set("a", IntV(7))
	r.Set("c", StrV("hello"))
	d := NewDecoder(r.Encoding())
	back, err := d.Row(testLayout())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(back) {
		t.Fatalf("round trip: %v vs %v", r.ToMap(), back.ToMap())
	}
}

// Rows wider than 64 slots exercise the presence spill path.
func TestRowWide(t *testing.T) {
	attrs := make([]string, 80)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("f%02d", i)
	}
	wide := ir.NewClassLayout("W", 0, attrs)
	r := NewRow(wide)
	for i := 0; i < 80; i += 3 {
		r.SetSlot(i, IntV(int64(i)))
	}
	if v, ok := r.GetSlot(78); !ok || v.I != 78 {
		t.Fatalf("wide slot: %v %v", v, ok)
	}
	if _, ok := r.GetSlot(79); ok {
		t.Fatal("unset wide slot must miss")
	}
	e := NewEncoder()
	e.State(r.ToMap())
	if !bytes.Equal(r.Encoding(), e.Bytes()) {
		t.Fatal("wide row encoding must stay canonical")
	}
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("wide clone")
	}
}

func TestFrameSlotNameAgreement(t *testing.T) {
	fl := ir.NewFrameLayout([]string{"x", "y"})
	f := NewFrame(fl)
	if _, ok := f.Get("x"); ok {
		t.Fatal("fresh frame must be empty")
	}
	f.SetSlot(0, IntV(1))
	if v, ok := f.Get("x"); !ok || v.I != 1 {
		t.Fatalf("name read of slot write: %v %v", v, ok)
	}
	f.Set("y", IntV(2))
	if v, ok := f.GetSlot(1); !ok || v.I != 2 {
		t.Fatalf("slot read of name write: %v %v", v, ok)
	}
	f.Set("spill", IntV(3))
	if f.Len() != 3 {
		t.Fatalf("len: %d", f.Len())
	}
	names := f.Names()
	if len(names) != 3 || names[0] != "spill" || names[1] != "x" || names[2] != "y" {
		t.Fatalf("names: %v", names)
	}
}

func TestFramePruneAndClone(t *testing.T) {
	fl := ir.NewFrameLayout([]string{"a", "b", "c"})
	f := NewFrame(fl)
	f.Set("a", IntV(1))
	f.Set("b", ListV(IntV(5)))
	f.Set("c", IntV(3))
	f.Set("extra", IntV(4))
	cl := f.Clone()
	v, _ := cl.Get("b")
	v.L.Elems[0] = IntV(99)
	if ov, _ := f.Get("b"); ov.L.Elems[0].I != 5 {
		t.Fatal("clone must deep-copy")
	}
	f.Prune([]string{"b"})
	if _, ok := f.Get("a"); ok {
		t.Fatal("pruned var a survived")
	}
	if _, ok := f.Get("extra"); ok {
		t.Fatal("pruned overflow var survived")
	}
	if v, ok := f.Get("b"); !ok || v.L.Elems[0].I != 5 {
		t.Fatalf("live var b lost: %v %v", v, ok)
	}
	// Reading a pruned variable reports undefined, like the old Env.
	if _, ok := f.GetSlot(0); ok {
		t.Fatal("pruned slot must be undefined")
	}
}

func TestFrameWide(t *testing.T) {
	vars := make([]string, 70)
	for i := range vars {
		vars[i] = fmt.Sprintf("v%02d", i)
	}
	f := NewFrame(ir.NewFrameLayout(vars))
	f.SetSlot(69, IntV(7))
	if v, ok := f.Get("v69"); !ok || v.I != 7 {
		t.Fatalf("wide frame: %v %v", v, ok)
	}
	f.Prune([]string{"v69"})
	if _, ok := f.Get("v69"); !ok {
		t.Fatal("wide prune lost live var")
	}
	if _, ok := f.Get("v00"); ok {
		t.Fatal("wide prune kept dead var")
	}
}
