package interp

import (
	"strings"
	"testing"

	"statefulentities.dev/stateflow/internal/lang/ast"
	"statefulentities.dev/stateflow/internal/lang/parser"
	"statefulentities.dev/stateflow/internal/lang/token"
)

// evalSrc evaluates the body of a method `def m(self) -> ...` and returns
// the result, by interpreting its statements directly.
func evalSrc(t *testing.T, body string, env Env, st MapState) (Value, error) {
	t.Helper()
	src := "@entity\nclass C:\n    def __init__(self, k: str):\n        self.k: str = k\n    def __key__(self) -> str:\n        return self.k\n    def m(self) -> int:\n"
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		src += "        " + line + "\n"
	}
	mod, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fn := mod.Class("C").Method("m")
	in := &Interp{}
	if env == nil {
		env = Env{}
	}
	if st == nil {
		st = MapState{}
	}
	fr := &frame{class: "C", key: "k", env: FrameFromEnv(nil, env), state: st}
	c, v, err := in.execStmts(fn.Body, fr)
	if err != nil {
		return None, err
	}
	if c == ctrlReturn {
		return v, nil
	}
	return None, nil
}

func mustEval(t *testing.T, body string) Value {
	t.Helper()
	v, err := evalSrc(t, body, nil, nil)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want Value
	}{
		{"1 + 2", IntV(3)},
		{"7 - 10", IntV(-3)},
		{"6 * 7", IntV(42)},
		{"7 / 2", FloatV(3.5)},
		{"7 // 2", IntV(3)},
		{"0 - 7 // 2", IntV(-3)}, // -(7//2)
		{"(0 - 7) // 2", IntV(-4)},
		{"7 % 3", IntV(1)},
		{"(0 - 7) % 3", IntV(2)}, // Python modulo
		{"1.5 + 1", FloatV(2.5)},
		{"2 * 1.5", FloatV(3.0)},
	}
	for _, c := range cases {
		got := mustEval(t, "return "+c.expr)
		if !got.Equal(c.want) {
			t.Errorf("%s: got %v want %v", c.expr, got, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, expr := range []string{"1 / 0", "1 // 0", "1 % 0"} {
		if _, err := evalSrc(t, "return "+expr, nil, nil); err == nil {
			t.Errorf("%s: expected error", expr)
		}
	}
}

func TestComparisons(t *testing.T) {
	cases := map[string]bool{
		"1 < 2":              true,
		"2 <= 2":             true,
		"3 > 4":              false,
		"4 >= 4":             true,
		"1 == 1.0":           true,
		"1 != 2":             true,
		"\"a\" < \"b\"":      true,
		"\"abc\" == \"abc\"": true,
	}
	for expr, want := range cases {
		got := mustEval(t, "x: bool = "+expr+"\nif x:\n    return 1\nreturn 0")
		if (got.I == 1) != want {
			t.Errorf("%s: got %v want %v", expr, got, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// `1 / 0` must never evaluate thanks to short-circuiting.
	v, err := evalSrc(t, "a: bool = False\nif a and 1 / 0 > 0:\n    return 1\nreturn 0", nil, nil)
	if err != nil {
		t.Fatalf("and should short-circuit: %v", err)
	}
	if v.I != 0 {
		t.Fatalf("got %v", v)
	}
	v, err = evalSrc(t, "a: bool = True\nif a or 1 / 0 > 0:\n    return 1\nreturn 0", nil, nil)
	if err != nil {
		t.Fatalf("or should short-circuit: %v", err)
	}
	if v.I != 1 {
		t.Fatalf("got %v", v)
	}
}

func TestStringOps(t *testing.T) {
	if got := mustEval(t, `return len("hello" + " " + "world")`); got.I != 11 {
		t.Fatalf("concat+len: %v", got)
	}
	v, _ := evalSrc(t, `s: str = "HeLLo"
if "eL" in s:
    return 1
return 0`, nil, nil)
	if v.I != 1 {
		t.Fatalf("in: %v", v)
	}
}

func TestListSemantics(t *testing.T) {
	// Lists alias like Python.
	got := mustEval(t, `a: list[int] = [1]
b: list[int] = a
b.append(2)
return len(a)`)
	if got.I != 2 {
		t.Fatalf("aliasing: %v", got)
	}
}

func TestListIndexNegative(t *testing.T) {
	got := mustEval(t, "xs: list[int] = [10, 20, 30]\nreturn xs[0 - 1]")
	if got.I != 30 {
		t.Fatalf("negative index: %v", got)
	}
}

func TestListPop(t *testing.T) {
	got := mustEval(t, "xs: list[int] = [10, 20, 30]\ny: int = xs.pop()\nreturn y + len(xs) * 100")
	if got.I != 30+200 {
		t.Fatalf("pop: %v", got)
	}
	got = mustEval(t, "xs: list[int] = [10, 20, 30]\ny: int = xs.pop(0)\nreturn y + xs[0]")
	if got.I != 10+20 {
		t.Fatalf("pop(0): %v", got)
	}
}

func TestDictOps(t *testing.T) {
	got := mustEval(t, `d: dict[str, int] = {"a": 1}
d["b"] = 2
x: int = d.get("c", 99)
if "a" in d:
    return d["a"] + d["b"] + x
return 0`)
	if got.I != 1+2+99 {
		t.Fatalf("dict: %v", got)
	}
}

func TestDictKeyError(t *testing.T) {
	if _, err := evalSrc(t, `d: dict[str, int] = {}
return d["missing"]`, nil, nil); err == nil || !strings.Contains(err.Error(), "key error") {
		t.Fatalf("want key error, got %v", err)
	}
}

func TestForLoopInline(t *testing.T) {
	got := mustEval(t, `total: int = 0
for x in [1, 2, 3, 4]:
    if x == 3:
        continue
    total += x
return total`)
	if got.I != 7 {
		t.Fatalf("for/continue: %v", got)
	}
}

func TestWhileBreakInline(t *testing.T) {
	got := mustEval(t, `n: int = 0
while True:
    n += 1
    if n >= 5:
        break
return n`)
	if got.I != 5 {
		t.Fatalf("while/break: %v", got)
	}
}

func TestNestedLoopBreak(t *testing.T) {
	got := mustEval(t, `hits: int = 0
for i in range(3):
    for j in range(10):
        if j >= 2:
            break
        hits += 1
return hits`)
	if got.I != 6 {
		t.Fatalf("nested break: %v", got)
	}
}

func TestRangeBuiltin(t *testing.T) {
	got := mustEval(t, "xs: list[int] = range(2, 6)\nreturn len(xs) * 100 + xs[0] * 10 + xs[3]")
	if got.I != 4*100+2*10+5 {
		t.Fatalf("range: %v", got)
	}
}

func TestBuiltinConversions(t *testing.T) {
	cases := []struct {
		expr string
		want Value
	}{
		{`int("42")`, IntV(42)},
		{"int(3.9)", IntV(3)},
		{"float(2)", FloatV(2)},
		{`str(42)`, StrV("42")},
		{"abs(0 - 5)", IntV(5)},
		{"min(3, 1, 2)", IntV(1)},
		{"max(3, 1, 2)", IntV(3)},
		{"bool(0)", BoolV(false)},
	}
	for _, c := range cases {
		got := mustEval(t, "return "+c.expr)
		if !got.Equal(c.want) {
			t.Errorf("%s: got %v want %v", c.expr, got, c.want)
		}
	}
}

func TestStateReadWrite(t *testing.T) {
	st := MapState{"k": StrV("k"), "n": IntV(10)}
	v, err := evalSrc(t, "self.n += 5\nreturn self.n", nil, st)
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 15 {
		t.Fatalf("state rmw: %v", v)
	}
	if st["n"].I != 15 {
		t.Fatalf("state not persisted: %v", st["n"])
	}
}

func TestContainerAttrMutationMarksState(t *testing.T) {
	// Mutating a list attribute in place must go through State.Set.
	track := &trackingState{MapState: MapState{"k": StrV("k"), "xs": ListV(IntV(1))}}
	src := "@entity\nclass C:\n    def __init__(self, k: str):\n        self.k: str = k\n        self.xs: list[int] = []\n    def __key__(self) -> str:\n        return self.k\n    def m(self) -> int:\n        self.xs.append(2)\n        self.xs[0] = 9\n        return len(self.xs)\n"
	mod, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := mod.Class("C").Method("m")
	in := &Interp{}
	fr := &frame{class: "C", key: "k", env: NewFrame(nil), state: track}
	_, v, err := in.execStmts(fn.Body, fr)
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 2 {
		t.Fatalf("len: %v", v)
	}
	if track.sets < 2 {
		t.Fatalf("expected >=2 state writes, got %d", track.sets)
	}
}

type trackingState struct {
	MapState
	sets int
}

func (s *trackingState) Set(attr string, v Value) {
	s.sets++
	s.MapState.Set(attr, v)
}

func TestUndefinedVariableError(t *testing.T) {
	if _, err := evalSrc(t, "return nope", nil, nil); err == nil {
		t.Fatal("want undefined-variable error")
	}
}

func TestTruthiness(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{None, false}, {IntV(0), false}, {IntV(1), true},
		{StrV(""), false}, {StrV("x"), true}, {BoolV(true), true},
		{ListV(), false}, {ListV(IntV(1)), true},
		{FloatV(0), false}, {FloatV(0.1), true},
		{RefV("C", "k"), true},
	}
	for _, c := range cases {
		if c.v.IsTruthy() != c.want {
			t.Errorf("truthy(%v): want %v", c.v, c.want)
		}
	}
}

func TestValueStrings(t *testing.T) {
	d := DictV()
	_ = d.DictSet(StrV("a"), IntV(1))
	cases := map[string]Value{
		"None":       None,
		"42":         IntV(42),
		"True":       BoolV(true),
		"[1, \"x\"]": ListV(IntV(1), StrV("x")),
		"{\"a\": 1}": d,
		"C<k1>":      RefV("C", "k1"),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v): got %q want %q", v.Kind, got, want)
		}
	}
}

func TestEnvPrune(t *testing.T) {
	env := Env{"a": IntV(1), "b": IntV(2), "c": IntV(3)}
	out := env.Prune([]string{"a", "c", "zz"})
	if len(out) != 2 || out["a"].I != 1 || out["c"].I != 3 {
		t.Fatalf("prune: %v", out)
	}
}

func TestEnvCloneIsolation(t *testing.T) {
	env := Env{"xs": ListV(IntV(1))}
	cl := env.Clone()
	cl["xs"].L.Elems[0] = IntV(99)
	if env["xs"].L.Elems[0].I != 1 {
		t.Fatal("clone must deep-copy containers")
	}
}

func TestMinMaxStrings(t *testing.T) {
	got := mustEval(t, `a: str = min("b", "a", "c")
if a == "a":
    return 1
return 0`)
	if got.I != 1 {
		t.Fatalf("min strings: %v", got)
	}
}

// Guard: evaluating an expression with a position reports it in errors.
func TestErrorHasPosition(t *testing.T) {
	_, err := evalSrc(t, "return [1][5]", nil, nil)
	rte, ok := err.(*RuntimeError)
	if !ok {
		t.Fatalf("error type: %T", err)
	}
	if rte.Pos == (token.Pos{}) {
		t.Fatal("error lacks position")
	}
}

// Ensure ast import is used even if test bodies change.
var _ ast.Expr = (*ast.IntLit)(nil)
