package local

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"statefulentities.dev/stateflow/internal/compiler"
	"statefulentities.dev/stateflow/internal/interp"
)

// This file checks compiler+runtime semantics against a Go reference
// implementation on randomized programs: the split/dataflow execution of
// an arithmetic accumulation loop must produce exactly the value computed
// natively, whatever the random mix of local control flow and remote
// calls.

// genProgram builds a random method body that mixes local arithmetic with
// remote calls to a counter entity, plus the Go function computing the
// expected result given the bump return values.
type op struct {
	kind string // "add", "mul", "bump", "if", "loop"
	arg  int64
}

func genOps(r *rand.Rand, n int) []op {
	ops := make([]op, n)
	for i := range ops {
		switch r.Intn(5) {
		case 0:
			ops[i] = op{kind: "add", arg: int64(r.Intn(20) - 10)}
		case 1:
			ops[i] = op{kind: "mul", arg: int64(r.Intn(3) + 1)}
		case 2:
			ops[i] = op{kind: "bump", arg: int64(r.Intn(5) + 1)}
		case 3:
			ops[i] = op{kind: "if", arg: int64(r.Intn(40))}
		default:
			ops[i] = op{kind: "loop", arg: int64(r.Intn(3) + 1)}
		}
	}
	return ops
}

// buildSource renders the ops as a DSL method.
func buildSource(ops []op) string {
	var b strings.Builder
	b.WriteString(`
@entity
class Counter:
    def __init__(self, name: str):
        self.name: str = name
        self.n: int = 0

    def __key__(self) -> str:
        return self.name

    def bump(self, by: int) -> int:
        self.n += by
        return self.n

@entity
class Driver:
    def __init__(self, name: str):
        self.name: str = name

    def __key__(self) -> str:
        return self.name

    def run(self, c: Counter) -> int:
        acc: int = 0
`)
	for _, o := range ops {
		switch o.kind {
		case "add":
			fmt.Fprintf(&b, "        acc += %d\n", o.arg)
		case "mul":
			fmt.Fprintf(&b, "        acc = acc * %d\n", o.arg)
		case "bump":
			fmt.Fprintf(&b, "        acc += c.bump(%d)\n", o.arg)
		case "if":
			fmt.Fprintf(&b, "        if acc > %d:\n            acc -= 1\n        else:\n            acc += c.bump(1)\n", o.arg)
		case "loop":
			fmt.Fprintf(&b, "        for i in range(%d):\n            acc += c.bump(1) + i\n", o.arg)
		}
	}
	b.WriteString("        return acc\n")
	return b.String()
}

// reference interprets the ops natively.
func reference(ops []op) int64 {
	var acc, counter int64
	bump := func(by int64) int64 {
		counter += by
		return counter
	}
	for _, o := range ops {
		switch o.kind {
		case "add":
			acc += o.arg
		case "mul":
			acc *= o.arg
		case "bump":
			acc += bump(o.arg)
		case "if":
			if acc > o.arg {
				acc--
			} else {
				acc += bump(1)
			}
		case "loop":
			for i := int64(0); i < o.arg; i++ {
				acc += bump(1) + i
			}
		}
	}
	return acc
}

func TestRandomProgramsMatchReference(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ops := genOps(r, 1+r.Intn(12))
		src := buildSource(ops)
		prog, err := compiler.Compile(src)
		if err != nil {
			t.Logf("compile failed for seed %d:\n%s\n%v", seed, src, err)
			return false
		}
		rt := New(prog)
		if _, err := rt.Create("Counter", interp.StrV("c")); err != nil {
			t.Log(err)
			return false
		}
		if _, err := rt.Create("Driver", interp.StrV("d")); err != nil {
			t.Log(err)
			return false
		}
		res, err := rt.Invoke("Driver", "d", "run", interp.RefV("Counter", "c"))
		if err != nil || res.Err != "" {
			t.Logf("run failed for seed %d: %v %s\n%s", seed, err, res.Err, src)
			return false
		}
		want := reference(ops)
		if res.Value.I != want {
			t.Logf("seed %d: got %d want %d\n%s", seed, res.Value.I, want, src)
			return false
		}
		// The split method must actually have suspension points whenever a
		// bump appears.
		m := prog.MethodOf("Driver", "run")
		hasBump := false
		for _, o := range ops {
			if o.kind != "add" && o.kind != "mul" {
				hasBump = true
			}
		}
		if hasBump && m.Simple {
			t.Logf("seed %d: method with remote calls not split", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomProgramsDeterministic runs the same random program twice and
// expects identical results and state.
func TestRandomProgramsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ops := genOps(r, 8)
		src := buildSource(ops)
		run := func() (int64, int64) {
			prog, err := compiler.Compile(src)
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, src)
			}
			rt := New(prog)
			if _, err := rt.Create("Counter", interp.StrV("c")); err != nil {
				t.Fatal(err)
			}
			if _, err := rt.Create("Driver", interp.StrV("d")); err != nil {
				t.Fatal(err)
			}
			res, err := rt.Invoke("Driver", "d", "run", interp.RefV("Counter", "c"))
			if err != nil || res.Err != "" {
				t.Fatalf("%v %s", err, res.Err)
			}
			st, _ := rt.State("Counter", "c")
			return res.Value.I, st["n"].I
		}
		v1, n1 := run()
		v2, n2 := run()
		if v1 != v2 || n1 != n2 {
			t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)\n%s", v1, n1, v2, n2, src)
		}
	}
}
