// Package local implements the paper's Local runtime (§3): the complete
// dataflow graph executes in-process with entity state held in HashMap
// data structures. It gives developers a way to debug, unit-test and
// validate a StateFlow program before deploying it to a distributed
// runtime; the examples and the test suite use it as the semantic
// reference implementation.
package local

import (
	"fmt"
	"sort"

	"statefulentities.dev/stateflow/internal/core"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/ir"
)

// Runtime executes a compiled program synchronously.
type Runtime struct {
	ex     *core.Executor
	states map[interp.EntityRef]interp.MapState
	nextID int
}

// New builds a local runtime for a program.
func New(prog *ir.Program) *Runtime {
	return &Runtime{
		ex:     core.NewExecutor(prog),
		states: map[interp.EntityRef]interp.MapState{},
	}
}

// Program returns the compiled program.
func (r *Runtime) Program() *ir.Program { return r.ex.Program() }

type store struct{ r *Runtime }

// Lookup implements core.Store.
func (s store) Lookup(ref interp.EntityRef) (interp.State, bool) {
	st, ok := s.r.states[ref]
	return st, ok
}

// Create implements core.Store.
func (s store) Create(ref interp.EntityRef) (interp.State, error) {
	if _, exists := s.r.states[ref]; exists {
		return nil, fmt.Errorf("entity %s already exists", ref)
	}
	st := interp.MapState{}
	s.r.states[ref] = st
	return st, nil
}

// Result is the outcome of a root invocation.
type Result struct {
	Value interp.Value
	Err   string
	// Hops is the number of operator-to-operator event transfers the call
	// chain needed (0 for a simple single-entity call).
	Hops int
}

// Invoke calls a method on an existing entity and drives the dataflow to
// completion.
func (r *Runtime) Invoke(class, key, method string, args ...interp.Value) (Result, error) {
	r.nextID++
	ev := &core.Event{
		Kind:   core.EvInvoke,
		Req:    fmt.Sprintf("req-%d", r.nextID),
		Target: interp.EntityRef{Class: class, Key: key},
		Method: method,
		Args:   args,
	}
	return r.drive(ev)
}

// Create instantiates a new entity via its constructor and returns its
// reference.
func (r *Runtime) Create(class string, args ...interp.Value) (interp.EntityRef, error) {
	key, err := r.ex.KeyForCtor(class, args)
	if err != nil {
		return interp.EntityRef{}, err
	}
	r.nextID++
	ev := &core.Event{
		Kind:   core.EvInvoke,
		Req:    fmt.Sprintf("req-%d", r.nextID),
		Target: interp.EntityRef{Class: class, Key: key},
		Method: "__init__",
		Args:   args,
	}
	res, err := r.drive(ev)
	if err != nil {
		return interp.EntityRef{}, err
	}
	if res.Err != "" {
		return interp.EntityRef{}, fmt.Errorf("%s", res.Err)
	}
	return res.Value.R, nil
}

// drive processes the event queue until the root response appears.
func (r *Runtime) drive(ev *core.Event) (Result, error) {
	queue := []*core.Event{ev}
	for steps := 0; len(queue) > 0; steps++ {
		if steps > 1_000_000 {
			return Result{}, fmt.Errorf("local: event loop exceeded step bound")
		}
		cur := queue[0]
		queue = queue[1:]
		if cur.Kind == core.EvResponse {
			return Result{Value: cur.Value, Err: cur.Err, Hops: cur.Hops}, nil
		}
		out, err := r.ex.Step(cur, store{r})
		if err != nil {
			return Result{}, err
		}
		queue = append(queue, out...)
	}
	return Result{}, fmt.Errorf("local: dataflow drained without a response")
}

// State returns a copy of an entity's attribute map, for assertions.
func (r *Runtime) State(class, key string) (interp.MapState, bool) {
	st, ok := r.states[interp.EntityRef{Class: class, Key: key}]
	if !ok {
		return nil, false
	}
	out := interp.MapState{}
	for k, v := range st {
		out[k] = v.Clone()
	}
	return out, true
}

// SetState installs entity state directly (used by workload preloading).
func (r *Runtime) SetState(class, key string, st interp.MapState) {
	r.states[interp.EntityRef{Class: class, Key: key}] = st
}

// Exists reports whether an entity has state.
func (r *Runtime) Exists(class, key string) bool {
	_, ok := r.states[interp.EntityRef{Class: class, Key: key}]
	return ok
}

// Keys lists the keys of all entities of a class, sorted.
func (r *Runtime) Keys(class string) []string {
	var out []string
	for ref := range r.states {
		if ref.Class == class {
			out = append(out, ref.Key)
		}
	}
	sort.Strings(out)
	return out
}
