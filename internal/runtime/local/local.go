// Package local implements the paper's Local runtime (§3): the complete
// dataflow graph executes in-process, for debugging, unit-testing and
// validating a StateFlow program before deploying it to a distributed
// runtime; the examples and the test suite use it as the semantic
// reference implementation.
//
// Entity state lives in slot-indexed rows laid out by the compiler
// (interp.Row) and execution takes the slotted fast path. The legacy
// name-keyed path — HashMap state plus name-resolved variables — is kept
// behind Options.MapFallback; differential tests run both and assert
// byte-identical committed state.
package local

import (
	"fmt"
	"sort"
	"strconv"

	"statefulentities.dev/stateflow/internal/core"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/state"
)

// Options tune the runtime.
type Options struct {
	// MapFallback executes through the legacy name-keyed path: map-backed
	// entity state and name-resolved variable access, with the slotted
	// fast path disabled. Used by differential tests.
	MapFallback bool
}

// Runtime executes a compiled program synchronously.
type Runtime struct {
	ex     *core.Executor
	states *state.Store                         // slotted row store (default)
	maps   map[interp.EntityRef]interp.MapState // legacy path (MapFallback)
	nextID int
}

// New builds a local runtime for a program (slotted execution).
func New(prog *ir.Program) *Runtime { return NewWithOptions(prog, Options{}) }

// NewWithOptions builds a local runtime with explicit options.
func NewWithOptions(prog *ir.Program, opt Options) *Runtime {
	r := &Runtime{ex: core.NewExecutor(prog)}
	if opt.MapFallback {
		r.maps = map[interp.EntityRef]interp.MapState{}
		r.ex.Interp().SetSlotted(false)
	} else {
		r.states = state.NewStore(prog.Layouts())
	}
	return r
}

// Program returns the compiled program.
func (r *Runtime) Program() *ir.Program { return r.ex.Program() }

type store struct{ r *Runtime }

// Lookup implements core.Store.
func (s store) Lookup(ref interp.EntityRef) (interp.State, bool) {
	if s.r.maps != nil {
		st, ok := s.r.maps[ref]
		return st, ok
	}
	st, ok := s.r.states.Lookup(ref)
	if !ok {
		return nil, false
	}
	return st, true
}

// Create implements core.Store.
func (s store) Create(ref interp.EntityRef) (interp.State, error) {
	if s.r.maps != nil {
		if _, exists := s.r.maps[ref]; exists {
			return nil, fmt.Errorf("entity %s already exists", ref)
		}
		st := interp.MapState{}
		s.r.maps[ref] = st
		return st, nil
	}
	return s.r.states.Create(ref)
}

// Result is the outcome of a root invocation.
type Result struct {
	Value interp.Value
	Err   string
	// Hops is the number of operator-to-operator event transfers the call
	// chain needed (0 for a simple single-entity call).
	Hops int
}

// Invoke calls a method on an existing entity and drives the dataflow to
// completion.
func (r *Runtime) Invoke(class, key, method string, args ...interp.Value) (Result, error) {
	r.nextID++
	ev := &core.Event{
		Kind:   core.EvInvoke,
		Req:    "req-" + strconv.Itoa(r.nextID),
		Target: interp.EntityRef{Class: class, Key: key},
		Method: method,
		Args:   args,
	}
	return r.drive(ev)
}

// Create instantiates a new entity via its constructor and returns its
// reference.
func (r *Runtime) Create(class string, args ...interp.Value) (interp.EntityRef, error) {
	key, err := r.ex.KeyForCtor(class, args)
	if err != nil {
		return interp.EntityRef{}, err
	}
	r.nextID++
	ev := &core.Event{
		Kind:   core.EvInvoke,
		Req:    "req-" + strconv.Itoa(r.nextID),
		Target: interp.EntityRef{Class: class, Key: key},
		Method: "__init__",
		Args:   args,
	}
	res, err := r.drive(ev)
	if err != nil {
		return interp.EntityRef{}, err
	}
	if res.Err != "" {
		return interp.EntityRef{}, fmt.Errorf("%s", res.Err)
	}
	return res.Value.R, nil
}

// drive processes the event queue until the root response appears.
func (r *Runtime) drive(ev *core.Event) (Result, error) {
	queue := []*core.Event{ev}
	for steps := 0; len(queue) > 0; steps++ {
		if steps > 1_000_000 {
			return Result{}, fmt.Errorf("local: event loop exceeded step bound")
		}
		cur := queue[0]
		queue = queue[1:]
		if cur.Kind == core.EvResponse {
			return Result{Value: cur.Value, Err: cur.Err, Hops: cur.Hops}, nil
		}
		out, err := r.ex.Step(cur, store{r})
		if err != nil {
			return Result{}, err
		}
		queue = append(queue, out...)
	}
	return Result{}, fmt.Errorf("local: dataflow drained without a response")
}

// State returns a copy of an entity's attribute map, for assertions.
func (r *Runtime) State(class, key string) (interp.MapState, bool) {
	ref := interp.EntityRef{Class: class, Key: key}
	if r.maps != nil {
		st, ok := r.maps[ref]
		if !ok {
			return nil, false
		}
		out := interp.MapState{}
		for k, v := range st {
			out[k] = v.Clone()
		}
		return out, true
	}
	st, ok := r.states.Lookup(ref)
	if !ok {
		return nil, false
	}
	return st.CloneMap(), true
}

// PreloadEntity installs the state an entity would have after __init__
// with the given args, bypassing the dataflow (dataset loading); it
// mirrors the simulated systems' PreloadEntity so one client surface can
// preload any runtime.
func (r *Runtime) PreloadEntity(class string, args ...interp.Value) error {
	key, err := r.ex.KeyForCtor(class, args)
	if err != nil {
		return err
	}
	st := interp.MapState{}
	if err := r.ex.Interp().ExecInit(class, args, st); err != nil {
		return err
	}
	r.SetState(class, key, st)
	return nil
}

// SetState installs entity state directly (used by workload preloading).
func (r *Runtime) SetState(class, key string, st interp.MapState) {
	ref := interp.EntityRef{Class: class, Key: key}
	if r.maps != nil {
		r.maps[ref] = st
		return
	}
	r.states.PutMap(ref, st)
}

// Exists reports whether an entity has state.
func (r *Runtime) Exists(class, key string) bool {
	ref := interp.EntityRef{Class: class, Key: key}
	if r.maps != nil {
		_, ok := r.maps[ref]
		return ok
	}
	return r.states.Exists(ref)
}

// Keys lists the keys of all entities of a class, sorted.
func (r *Runtime) Keys(class string) []string {
	if r.maps != nil {
		var out []string
		for ref := range r.maps {
			if ref.Class == class {
				out = append(out, ref.Key)
			}
		}
		sort.Strings(out)
		return out
	}
	return r.states.Keys(class)
}

// EncodeState serializes one entity's committed state canonically (the
// sorted attribute-name codec); differential tests compare these bytes
// across execution modes.
func (r *Runtime) EncodeState(class, key string) ([]byte, bool) {
	ref := interp.EntityRef{Class: class, Key: key}
	if r.maps != nil {
		st, ok := r.maps[ref]
		if !ok {
			return nil, false
		}
		e := interp.NewEncoder()
		e.State(st)
		return e.Bytes(), true
	}
	st, ok := r.states.Lookup(ref)
	if !ok {
		return nil, false
	}
	return st.Encoding(), true
}
