package local

import (
	"strings"
	"testing"

	"statefulentities.dev/stateflow/internal/compiler"
	"statefulentities.dev/stateflow/internal/interp"
)

const figure1 = `
@entity
class Item:
    def __init__(self, item_id: str, price: int):
        self.item_id: str = item_id
        self.stock: int = 0
        self.price: int = price

    def __key__(self) -> str:
        return self.item_id

    def get_price(self) -> int:
        return self.price

    def update_stock(self, amount: int) -> bool:
        self.stock += amount
        return self.stock >= 0

@entity
class User:
    def __init__(self, username: str):
        self.username: str = username
        self.balance: int = 100

    def __key__(self) -> str:
        return self.username

    @transactional
    def buy_item(self, amount: int, item: Item) -> bool:
        total_price: int = amount * item.get_price()
        if self.balance < total_price:
            return False
        available: bool = item.update_stock(0 - amount)
        if not available:
            item.update_stock(amount)
            return False
        self.balance -= total_price
        return True
`

func newFig1(t *testing.T) *Runtime {
	t.Helper()
	prog, err := compiler.Compile(figure1)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return New(prog)
}

func mustInvoke(t *testing.T, r *Runtime, class, key, method string, args ...interp.Value) interp.Value {
	t.Helper()
	res, err := r.Invoke(class, key, method, args...)
	if err != nil {
		t.Fatalf("invoke %s.%s: %v", class, method, err)
	}
	if res.Err != "" {
		t.Fatalf("invoke %s.%s: runtime error: %s", class, method, res.Err)
	}
	return res.Value
}

func intAttr(t *testing.T, r *Runtime, class, key, attr string) int64 {
	t.Helper()
	st, ok := r.State(class, key)
	if !ok {
		t.Fatalf("entity %s<%s> missing", class, key)
	}
	v, ok := st[attr]
	if !ok {
		t.Fatalf("attr %s missing", attr)
	}
	return v.I
}

func TestCreateEntities(t *testing.T) {
	r := newFig1(t)
	ref, err := r.Create("Item", interp.StrV("apple"), interp.IntV(5))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Class != "Item" || ref.Key != "apple" {
		t.Fatalf("ref: %v", ref)
	}
	if got := intAttr(t, r, "Item", "apple", "price"); got != 5 {
		t.Fatalf("price: %d", got)
	}
	if got := intAttr(t, r, "Item", "apple", "stock"); got != 0 {
		t.Fatalf("stock: %d", got)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	r := newFig1(t)
	if _, err := r.Create("User", interp.StrV("alice")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("User", interp.StrV("alice")); err == nil {
		t.Fatal("duplicate create should fail")
	}
}

func TestSimpleMethod(t *testing.T) {
	r := newFig1(t)
	if _, err := r.Create("Item", interp.StrV("apple"), interp.IntV(7)); err != nil {
		t.Fatal(err)
	}
	v := mustInvoke(t, r, "Item", "apple", "get_price")
	if v.I != 7 {
		t.Fatalf("get_price: %v", v)
	}
	// Simple call: no operator-to-operator hops.
	res, _ := r.Invoke("Item", "apple", "get_price")
	if res.Hops != 0 {
		t.Fatalf("hops: %d", res.Hops)
	}
}

func TestBuyItemSuccess(t *testing.T) {
	r := newFig1(t)
	if _, err := r.Create("Item", interp.StrV("apple"), interp.IntV(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("User", interp.StrV("alice")); err != nil {
		t.Fatal(err)
	}
	mustInvoke(t, r, "Item", "apple", "update_stock", interp.IntV(10))

	v := mustInvoke(t, r, "User", "alice", "buy_item",
		interp.IntV(3), interp.RefV("Item", "apple"))
	if !v.B {
		t.Fatalf("buy_item returned %v", v)
	}
	if got := intAttr(t, r, "User", "alice", "balance"); got != 100-15 {
		t.Fatalf("balance: %d", got)
	}
	if got := intAttr(t, r, "Item", "apple", "stock"); got != 7 {
		t.Fatalf("stock: %d", got)
	}
}

func TestBuyItemInsufficientBalance(t *testing.T) {
	r := newFig1(t)
	if _, err := r.Create("Item", interp.StrV("tv"), interp.IntV(999)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("User", interp.StrV("bob")); err != nil {
		t.Fatal(err)
	}
	mustInvoke(t, r, "Item", "tv", "update_stock", interp.IntV(5))

	v := mustInvoke(t, r, "User", "bob", "buy_item",
		interp.IntV(1), interp.RefV("Item", "tv"))
	if v.B {
		t.Fatal("purchase should fail on balance")
	}
	if got := intAttr(t, r, "User", "bob", "balance"); got != 100 {
		t.Fatalf("balance must be untouched: %d", got)
	}
	if got := intAttr(t, r, "Item", "tv", "stock"); got != 5 {
		t.Fatalf("stock must be untouched: %d", got)
	}
}

func TestBuyItemOutOfStockCompensates(t *testing.T) {
	// The refund path: update_stock goes negative, the method calls
	// update_stock(amount) to restore, and returns False.
	r := newFig1(t)
	if _, err := r.Create("Item", interp.StrV("pen"), interp.IntV(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("User", interp.StrV("carol")); err != nil {
		t.Fatal(err)
	}
	mustInvoke(t, r, "Item", "pen", "update_stock", interp.IntV(2))

	v := mustInvoke(t, r, "User", "carol", "buy_item",
		interp.IntV(5), interp.RefV("Item", "pen"))
	if v.B {
		t.Fatal("purchase should fail on stock")
	}
	if got := intAttr(t, r, "Item", "pen", "stock"); got != 2 {
		t.Fatalf("stock must be compensated back to 2: %d", got)
	}
	if got := intAttr(t, r, "User", "carol", "balance"); got != 100 {
		t.Fatalf("balance: %d", got)
	}
}

func TestBuyItemHopsCount(t *testing.T) {
	r := newFig1(t)
	if _, err := r.Create("Item", interp.StrV("apple"), interp.IntV(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("User", interp.StrV("alice")); err != nil {
		t.Fatal(err)
	}
	mustInvoke(t, r, "Item", "apple", "update_stock", interp.IntV(10))
	res, err := r.Invoke("User", "alice", "buy_item",
		interp.IntV(1), interp.RefV("Item", "apple"))
	if err != nil || res.Err != "" {
		t.Fatalf("%v %s", err, res.Err)
	}
	// get_price: User->Item->User (2 hops), update_stock: 2 more.
	if res.Hops != 4 {
		t.Fatalf("hops: got %d, want 4", res.Hops)
	}
}

func TestInvokeMissingEntity(t *testing.T) {
	r := newFig1(t)
	res, err := r.Invoke("User", "ghost", "buy_item",
		interp.IntV(1), interp.RefV("Item", "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == "" || !strings.Contains(res.Err, "does not exist") {
		t.Fatalf("want missing-entity error, got %q", res.Err)
	}
}

func TestRemoteCallOnMissingEntityAborts(t *testing.T) {
	r := newFig1(t)
	if _, err := r.Create("User", interp.StrV("alice")); err != nil {
		t.Fatal(err)
	}
	res, err := r.Invoke("User", "alice", "buy_item",
		interp.IntV(1), interp.RefV("Item", "ghost"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == "" {
		t.Fatal("expected error for missing remote entity")
	}
	if got := intAttr(t, r, "User", "alice", "balance"); got != 100 {
		t.Fatalf("caller state must be unchanged: %d", got)
	}
}

// --- control flow through the dataflow ---

const loops = `
@entity
class Counter:
    def __init__(self, name: str):
        self.name: str = name
        self.n: int = 0

    def __key__(self) -> str:
        return self.name

    def bump(self, by: int) -> int:
        self.n += by
        return self.n

    def get(self) -> int:
        return self.n

@entity
class Driver:
    def __init__(self, name: str):
        self.name: str = name
        self.acc: int = 0

    def __key__(self) -> str:
        return self.name

    def sum_list(self, c: Counter, xs: list[int]) -> int:
        total: int = 0
        for x in xs:
            total += c.bump(x)
        return total

    def bump_until(self, c: Counter, limit: int) -> int:
        while c.get() < limit:
            c.bump(1)
        return c.get()

    def bump_with_break(self, c: Counter, xs: list[int], stop: int) -> int:
        total: int = 0
        for x in xs:
            total += c.bump(x)
            if total > stop:
                break
        return total

    def nested_calls(self, c: Counter) -> int:
        return c.bump(c.bump(1))

    def spawn(self, name: str, seed: int) -> int:
        c: Counter = Counter(name)
        c.bump(seed)
        return c.get()

    def classify(self, c: Counter, n: int) -> str:
        if n == 1:
            c.bump(10)
            return "one"
        elif n == 2:
            c.bump(20)
            return "two"
        else:
            c.bump(30)
            return "many"
`

func newLoops(t *testing.T) *Runtime {
	t.Helper()
	prog, err := compiler.Compile(loops)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	r := New(prog)
	if _, err := r.Create("Counter", interp.StrV("c1")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("Driver", interp.StrV("d1")); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSplitForLoopExecution(t *testing.T) {
	r := newLoops(t)
	v := mustInvoke(t, r, "Driver", "d1", "sum_list",
		interp.RefV("Counter", "c1"), interp.ListV(interp.IntV(1), interp.IntV(2), interp.IntV(3)))
	// bump returns running counter: 1, 3, 6 -> total 10.
	if v.I != 10 {
		t.Fatalf("sum_list: %v", v)
	}
	if got := intAttr(t, r, "Counter", "c1", "n"); got != 6 {
		t.Fatalf("counter: %d", got)
	}
}

func TestSplitWhileWithRemoteCond(t *testing.T) {
	r := newLoops(t)
	v := mustInvoke(t, r, "Driver", "d1", "bump_until",
		interp.RefV("Counter", "c1"), interp.IntV(5))
	if v.I != 5 {
		t.Fatalf("bump_until: %v", v)
	}
}

func TestBreakInSplitLoop(t *testing.T) {
	r := newLoops(t)
	v := mustInvoke(t, r, "Driver", "d1", "bump_with_break",
		interp.RefV("Counter", "c1"),
		interp.ListV(interp.IntV(5), interp.IntV(5), interp.IntV(5)), interp.IntV(10))
	// totals: 5, then 5+10=15 -> break. counter: 5 then 10.
	if v.I != 15 {
		t.Fatalf("bump_with_break: %v", v)
	}
	if got := intAttr(t, r, "Counter", "c1", "n"); got != 10 {
		t.Fatalf("counter: %d", got)
	}
}

func TestNestedRemoteCalls(t *testing.T) {
	r := newLoops(t)
	v := mustInvoke(t, r, "Driver", "d1", "nested_calls", interp.RefV("Counter", "c1"))
	// inner bump(1) -> 1; outer bump(1) -> 2.
	if v.I != 2 {
		t.Fatalf("nested_calls: %v", v)
	}
}

func TestConstructorFromMethod(t *testing.T) {
	r := newLoops(t)
	v := mustInvoke(t, r, "Driver", "d1", "spawn", interp.StrV("c9"), interp.IntV(42))
	if v.I != 42 {
		t.Fatalf("spawn: %v", v)
	}
	if !r.Exists("Counter", "c9") {
		t.Fatal("spawned counter missing")
	}
}

func TestElifPaths(t *testing.T) {
	r := newLoops(t)
	cases := []struct {
		n    int64
		want string
		bump int64
	}{{1, "one", 10}, {2, "two", 30}, {5, "many", 60}}
	for _, c := range cases {
		v := mustInvoke(t, r, "Driver", "d1", "classify",
			interp.RefV("Counter", "c1"), interp.IntV(c.n))
		if v.S != c.want {
			t.Fatalf("classify(%d): %v", c.n, v)
		}
		if got := intAttr(t, r, "Counter", "c1", "n"); got != c.bump {
			t.Fatalf("counter after classify(%d): %d want %d", c.n, got, c.bump)
		}
	}
}

func TestKeysListing(t *testing.T) {
	r := newLoops(t)
	keys := r.Keys("Counter")
	if len(keys) != 1 || keys[0] != "c1" {
		t.Fatalf("keys: %v", keys)
	}
}
