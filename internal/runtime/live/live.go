// Package live executes a compiled program on a real concurrent runtime:
// worker goroutines own hash partitions of every operator's state and
// exchange dataflow events over channels — the in-process analogue of the
// distributed deployment, complementing the deterministic simulator with
// true parallel execution.
//
// Semantics match the StateFun-model baseline (§3): each partition
// processes its mailbox serially, so single-entity operations are
// linearizable per key, while cross-entity chains interleave without
// transactional isolation. (The Aria-transactional variant lives on the
// simulated StateFlow runtime, where the protocol is deterministic and
// fully testable; the live runtime demonstrates that the same IR drives a
// genuinely concurrent system.)
package live

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"statefulentities.dev/stateflow/internal/core"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/state"
)

// Config parameterizes the live runtime.
type Config struct {
	// Workers is the number of partition-owning goroutines (default 4).
	Workers int
	// MailboxDepth is the per-worker channel capacity (default 1024).
	MailboxDepth int
}

// Runtime is a running live deployment. Close it when done.
type Runtime struct {
	prog    *ir.Program
	ex      *core.Executor
	workers []*worker
	pending sync.Map // req id -> chan result
	nextReq atomic.Int64
	closed  atomic.Bool
	wg      sync.WaitGroup
}

type result struct {
	value interp.Value
	err   string
}

// probe asks a worker for a copy of one entity's state.
type probe struct {
	ref   interp.EntityRef
	reply chan interp.MapState // receives nil when the entity is missing
}

type worker struct {
	rt    *Runtime
	idx   int
	inbox chan any // *core.Event or probe
	// store is only touched by this worker's goroutine.
	store *state.Store
	// processed counts handled events (observability).
	processed atomic.Int64
}

// New starts a live runtime for a compiled program.
func New(prog *ir.Program, cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = 1024
	}
	rt := &Runtime{prog: prog, ex: core.NewExecutor(prog)}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			rt:    rt,
			idx:   i,
			inbox: make(chan any, cfg.MailboxDepth),
			store: state.NewStore(prog.Layouts()),
		}
		rt.workers = append(rt.workers, w)
		rt.wg.Add(1)
		go w.run()
	}
	return rt
}

// Close stops all workers and waits for them to drain. In-flight chains
// whose next hop races the shutdown are dropped; callers should quiesce
// first.
func (rt *Runtime) Close() {
	if rt.closed.Swap(true) {
		return
	}
	for _, w := range rt.workers {
		close(w.inbox)
	}
	rt.wg.Wait()
}

// Workers returns the number of partitions.
func (rt *Runtime) Workers() int { return len(rt.workers) }

// Processed returns the total number of handled events.
func (rt *Runtime) Processed() int64 {
	var total int64
	for _, w := range rt.workers {
		total += w.processed.Load()
	}
	return total
}

func (rt *Runtime) ownerOf(ref interp.EntityRef) *worker {
	h := fnv.New32a()
	_, _ = h.Write([]byte(ref.Class))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(ref.Key))
	return rt.workers[int(h.Sum32()%uint32(len(rt.workers)))]
}

// send routes an event to its target partition, tolerating shutdown races.
func (rt *Runtime) send(ev *core.Event) {
	if rt.closed.Load() {
		return
	}
	defer func() {
		// A worker inbox may close between the check and the send during
		// shutdown; dropping the event is acceptable there.
		_ = recover()
	}()
	rt.ownerOf(ev.Target).inbox <- ev
}

// Invoke calls a method and blocks until the chain completes. The second
// return is the application-level error string (empty on success).
func (rt *Runtime) Invoke(class, key, method string, args ...interp.Value) (interp.Value, string, error) {
	if rt.closed.Load() {
		return interp.None, "", fmt.Errorf("live: runtime closed")
	}
	id := fmt.Sprintf("live-%d", rt.nextReq.Add(1))
	ch := make(chan result, 1)
	rt.pending.Store(id, ch)
	defer rt.pending.Delete(id)
	rt.send(&core.Event{
		Kind:   core.EvInvoke,
		Req:    id,
		Target: interp.EntityRef{Class: class, Key: key},
		Method: method,
		Args:   args,
	})
	res := <-ch
	return res.value, res.err, nil
}

// Create instantiates an entity and blocks until done.
func (rt *Runtime) Create(class string, args ...interp.Value) (interp.EntityRef, error) {
	key, err := rt.ex.KeyForCtor(class, args)
	if err != nil {
		return interp.EntityRef{}, err
	}
	v, errStr, err := rt.Invoke(class, key, "__init__", args...)
	if err != nil {
		return interp.EntityRef{}, err
	}
	if errStr != "" {
		return interp.EntityRef{}, fmt.Errorf("%s", errStr)
	}
	return v.R, nil
}

// EntityState reads a copy of one entity's attributes, served from the
// owning worker's goroutine so no lock is needed on the store.
func (rt *Runtime) EntityState(class, key string) (interp.MapState, bool) {
	if rt.closed.Load() {
		return nil, false
	}
	ref := interp.EntityRef{Class: class, Key: key}
	reply := make(chan interp.MapState, 1)
	func() {
		defer func() { _ = recover() }()
		rt.ownerOf(ref).inbox <- probe{ref: ref, reply: reply}
	}()
	st, ok := <-reply
	if !ok || st == nil {
		return nil, false
	}
	return st, true
}

// run is the worker goroutine: serial execution over its partition.
func (w *worker) run() {
	defer w.rt.wg.Done()
	for msg := range w.inbox {
		switch m := msg.(type) {
		case probe:
			if st, ok := w.store.Lookup(m.ref); ok {
				m.reply <- st.CloneMap()
			} else {
				m.reply <- nil
			}
			close(m.reply)
		case *core.Event:
			w.processed.Add(1)
			out, err := w.rt.ex.Step(m, liveStore{w.store})
			if err != nil {
				w.deliver(&core.Event{Kind: core.EvResponse, Req: m.Req, Err: err.Error()})
				continue
			}
			for _, ev := range out {
				w.deliver(ev)
			}
		}
	}
}

// deliver routes a produced event: responses complete pending requests,
// everything else hops to the owning partition.
func (w *worker) deliver(ev *core.Event) {
	if ev.Kind == core.EvResponse {
		if ch, ok := w.rt.pending.Load(ev.Req); ok {
			ch.(chan result) <- result{value: ev.Value, err: ev.Err}
		}
		return
	}
	w.rt.send(ev)
}

// liveStore adapts state.Store to core.Store.
type liveStore struct{ s *state.Store }

// Lookup implements core.Store.
func (l liveStore) Lookup(ref interp.EntityRef) (interp.State, bool) {
	st, ok := l.s.Lookup(ref)
	if !ok {
		return nil, false
	}
	return st, true
}

// Create implements core.Store.
func (l liveStore) Create(ref interp.EntityRef) (interp.State, error) {
	return l.s.Create(ref)
}
