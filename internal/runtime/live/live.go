// Package live executes a compiled program on a real concurrent runtime:
// worker goroutines own hash partitions of every operator's state and
// exchange dataflow events over channels — the in-process analogue of the
// distributed deployment, complementing the deterministic simulator with
// true parallel execution.
//
// Semantics match the StateFun-model baseline (§3): each partition
// processes its mailbox serially, so single-entity operations are
// linearizable per key, while cross-entity chains interleave without
// transactional isolation. (The Aria-transactional variant lives on the
// simulated StateFlow runtime, where the protocol is deterministic and
// fully testable; the live runtime demonstrates that the same IR drives a
// genuinely concurrent system.)
//
// Clients drive the runtime synchronously via Invoke or asynchronously via
// Submit, which returns a Pending future. Shutdown is loss-free for
// callers: Close fails every still-pending request with ErrClosed instead
// of leaving its waiter blocked.
package live

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"statefulentities.dev/stateflow/internal/core"
	"statefulentities.dev/stateflow/internal/dlog"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/obs"
	"statefulentities.dev/stateflow/internal/state"
)

// ErrClosed is the transport error reported for requests that raced or
// followed Close: the runtime can no longer complete them.
var ErrClosed = errors.New("live: runtime closed")

// Config parameterizes the live runtime.
type Config struct {
	// Workers is the number of partition-owning goroutines (default 4).
	Workers int
	// MailboxDepth is the per-worker channel capacity (default 1024).
	MailboxDepth int
	// JournalPath enables the durable response journal: every completed
	// request's outcome (id, value, application error) is appended to a
	// file-backed dlog and fsynced before the caller observes it. A new
	// runtime opened on the same path re-serves journaled outcomes for
	// client-supplied request ids instead of re-executing them — the
	// response-replay egress of the Live runtime, surviving process
	// restarts. Empty: no journal.
	JournalPath string
	// JournalCheckpointEvery compacts the journal after this many
	// appended outcomes: the retained replay entries are folded into a
	// single checkpoint record and the appended frames behind them are
	// discarded, bounding the file (default 1024; negative disables
	// compaction entirely).
	JournalCheckpointEvery int
	// JournalRetention bounds how long a journaled outcome stays
	// replayable: entries whose record timestamp is older than this are
	// pruned at the next compaction, from the file and from the in-memory
	// replay map alike — a retry arriving after the window re-executes,
	// which is the documented exactly-once boundary (the same per-source
	// floor contract the simulated egress keeps). Zero keeps every
	// outcome forever.
	JournalRetention time.Duration
	// MetricsAddr, when non-empty, serves the runtime's metric registry
	// over HTTP on this address: Prometheus text exposition on /metrics,
	// the standard expvar JSON on /debug/vars. ":0" picks a free port —
	// read the bound address back with Runtime.MetricsAddr. The registry
	// itself is always live (see Runtime.Metrics); the address only adds
	// the HTTP listener.
	MetricsAddr string
}

// journalResponse is the journal's record kind (dlog reserves kind 0).
const journalResponse dlog.Kind = 1

// Runtime is a running live deployment. Close it when done.
type Runtime struct {
	prog    *ir.Program
	ex      *core.Executor
	workers []*worker
	pending sync.Map // req id -> *Pending
	nextReq atomic.Int64
	closed  atomic.Bool
	// journal, when enabled, persists every completed outcome; replay
	// holds journaled outcomes (from this and previous incarnations) that
	// are re-served by *caller-supplied* request ids without re-execution.
	// incarnation makes minted ids unique across processes sharing a
	// journal, so an auto-minted id can never collide with a journaled
	// one from an earlier incarnation.
	journal     *dlog.FileLog
	replay      sync.Map // req id -> journalEntry
	incarnation string
	journalErrs atomic.Int64
	// jmu serializes journal appends (read side) against compaction
	// (write side): Checkpoint atomically replaces the file with the
	// retained replay entries, so an append racing the swap would vanish
	// from the durable image while staying in the replay map.
	jmu              sync.RWMutex
	retention        time.Duration
	checkpointEvery  int
	appendsSinceCkpt atomic.Int64
	// quit broadcasts shutdown: senders and idle workers select on it, so
	// no channel is ever closed while sends race it.
	quit chan struct{}
	wg   sync.WaitGroup
	// metrics is the runtime's registry (always built; the HTTP listener
	// below is optional). submits and replays are native counters on the
	// submission hot path; everything else reads through to existing
	// atomics at exposition time.
	metrics   *obs.Registry
	submits   *obs.Counter
	replays   *obs.Counter
	metricsLn net.Listener
	metricsWg sync.WaitGroup
}

type result struct {
	value interp.Value
	err   string // application-level error
	fail  error  // transport-level error (shutdown)
}

// journalEntry is a replayable outcome plus the record timestamp the
// retention window is measured against (UnixNano; carried through
// checkpoints so a restart prunes on the original completion time, not
// the reload time).
type journalEntry struct {
	res result
	at  int64
}

// Pending is an in-flight invocation: a future completed exactly once by
// the owning worker's response or by shutdown. It is safe to share across
// goroutines.
type Pending struct {
	req    string
	done   chan struct{}
	res    result    // written exactly once before done closes
	doneAt time.Time // stamped at completion, before done closes
}

func newPending(req string) *Pending {
	return &Pending{req: req, done: make(chan struct{})}
}

// complete resolves the future. Callers must guarantee exactly-once (the
// runtime does, via pending.LoadAndDelete).
func (p *Pending) complete(r result) {
	p.res = r
	p.doneAt = time.Now()
	close(p.done)
}

// Req returns the request id.
func (p *Pending) Req() string { return p.req }

// DoneAt returns when the request completed (the zero time while still
// pending). Latency measured against it excludes any delay between
// completion and the caller collecting the future.
func (p *Pending) DoneAt() time.Time {
	select {
	case <-p.done:
		return p.doneAt
	default:
		return time.Time{}
	}
}

// Done reports completion without blocking.
func (p *Pending) Done() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the request completes, returning the value, the
// application-level error string, and the transport error (ErrClosed when
// shutdown fails the request).
func (p *Pending) Wait() (interp.Value, string, error) {
	<-p.done
	return p.res.value, p.res.err, p.res.fail
}

// WaitContext is Wait bounded by a context. If the context expires first
// the request itself keeps running; a later Wait can still observe it.
func (p *Pending) WaitContext(ctx context.Context) (interp.Value, string, error) {
	select {
	case <-p.done:
		return p.res.value, p.res.err, p.res.fail
	case <-ctx.Done():
		return interp.None, "", ctx.Err()
	}
}

// probe asks a worker for a copy of one entity's state.
type probe struct {
	ref   interp.EntityRef
	reply chan interp.MapState // receives nil when the entity is missing
}

// keysProbe asks a worker for its keys of one class.
type keysProbe struct {
	class string
	reply chan []string
}

type worker struct {
	rt    *Runtime
	idx   int
	inbox chan any // *core.Event, probe or keysProbe
	// store is only touched by this worker's goroutine.
	store *state.Store
	// processed counts handled events (observability).
	processed atomic.Int64
}

// New starts a live runtime for a compiled program. It panics if the
// configured journal cannot be opened — use Open to handle that error
// (without a JournalPath, New cannot fail).
func New(prog *ir.Program, cfg Config) *Runtime {
	rt, err := Open(prog, cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// Open starts a live runtime, recovering the response journal when one is
// configured: outcomes journaled by a previous incarnation are loaded for
// replay before any worker starts. A torn journal tail (a crash mid-
// append) is detected and discarded by the dlog layer, never replayed.
func Open(prog *ir.Program, cfg Config) (*Runtime, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = 1024
	}
	if cfg.JournalCheckpointEvery == 0 {
		cfg.JournalCheckpointEvery = 1024
	}
	rt := &Runtime{prog: prog, ex: core.NewExecutor(prog), quit: make(chan struct{}),
		retention: cfg.JournalRetention, checkpointEvery: cfg.JournalCheckpointEvery}
	if cfg.JournalPath != "" {
		jl, err := dlog.OpenFile(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		rt.journal = jl
		rt.incarnation = fmt.Sprintf("i%x-", time.Now().UnixNano())
		// The durable image is the last checkpoint's retained entries
		// plus every frame appended after it, in that order (a frame
		// re-journaling a checkpointed id just overwrites it in place).
		recovered := jl.Recovered()
		if len(recovered.Checkpoint) > 0 {
			entries, err := decodeJournalCheckpoint(recovered.Checkpoint)
			if err != nil {
				return nil, fmt.Errorf("live: journal checkpoint at %s corrupt: %w", cfg.JournalPath, err)
			}
			for id, en := range entries {
				rt.replay.Store(id, en)
			}
		}
		for _, rec := range recovered.Records {
			if rec.Kind != journalResponse {
				continue
			}
			if id, res, err := decodeJournalResponse(rec.Data); err == nil {
				rt.replay.Store(id, journalEntry{res: res, at: rec.At})
			}
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			rt:    rt,
			idx:   i,
			inbox: make(chan any, cfg.MailboxDepth),
			store: state.NewStore(prog.Layouts()),
		}
		rt.workers = append(rt.workers, w)
		rt.wg.Add(1)
		go w.run()
	}
	rt.registerMetrics()
	if cfg.MetricsAddr != "" {
		if err := rt.serveMetrics(cfg.MetricsAddr); err != nil {
			rt.Close()
			return nil, err
		}
	}
	return rt, nil
}

// registerMetrics builds the runtime's registry: native counters for the
// submission path, read-through funcs over the atomics the runtime
// already keeps. All reads are lock-free, so exposition never contends
// with workers.
func (rt *Runtime) registerMetrics() {
	reg := obs.NewRegistry()
	rt.metrics = reg
	rt.submits = reg.Counter("live.submits")
	rt.replays = reg.Counter("live.journal.replays")
	reg.Func("live.workers", func() int64 { return int64(len(rt.workers)) })
	reg.Func("live.processed", rt.Processed)
	reg.Func("live.journal.errors", rt.journalErrs.Load)
	if rt.journal != nil {
		jl := rt.journal
		reg.Func("live.journal.appends", func() int64 { return int64(jl.Stats().Appends) })
		reg.Func("live.journal.appended_bytes", func() int64 { return int64(jl.Stats().AppendedBytes) })
		reg.Func("live.journal.syncs", func() int64 { return int64(jl.Stats().Syncs) })
		reg.Func("live.journal.checkpoints", func() int64 { return int64(jl.Stats().Checkpoints) })
	}
}

// serveMetrics binds the metrics listener and serves /metrics (Prometheus
// text) and /debug/vars (expvar) until Close.
func (rt *Runtime) serveMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("live: metrics listener on %s: %w", addr, err)
	}
	rt.metricsLn = ln
	rt.metrics.PublishExpvar("stateflow.live")
	mux := http.NewServeMux()
	mux.Handle("/metrics", rt.metrics.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	rt.metricsWg.Add(1)
	go func() {
		defer rt.metricsWg.Done()
		_ = srv.Serve(ln) // returns once Close closes the listener
	}()
	return nil
}

// Metrics returns the runtime's metric registry (always non-nil).
func (rt *Runtime) Metrics() *obs.Registry { return rt.metrics }

// MetricsAddr returns the bound metrics address (empty when no
// Config.MetricsAddr was configured). With ":0" this is where the free
// port landed.
func (rt *Runtime) MetricsAddr() string {
	if rt.metricsLn == nil {
		return ""
	}
	return rt.metricsLn.Addr().String()
}

// encodeJournalResponse frames one completed outcome.
func encodeJournalResponse(id string, r result) []byte {
	e := interp.NewEncoder()
	e.Str(id)
	e.Value(r.value)
	e.Str(r.err)
	return e.Bytes()
}

func decodeJournalResponse(data []byte) (string, result, error) {
	d := interp.NewDecoder(data)
	id, err := d.Str()
	if err != nil {
		return "", result{}, err
	}
	v, err := d.Value()
	if err != nil {
		return "", result{}, err
	}
	errStr, err := d.Str()
	if err != nil {
		return "", result{}, err
	}
	return id, result{value: v, err: errStr}, nil
}

// encodeJournalCheckpoint frames the retained replay entries (sorted by
// id, so the payload is deterministic for a given map).
func encodeJournalCheckpoint(entries map[string]journalEntry) []byte {
	ids := make([]string, 0, len(entries))
	for id := range entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	e := interp.NewEncoder()
	e.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		en := entries[id]
		e.Str(id)
		e.Value(en.res.value)
		e.Str(en.res.err)
		e.Uvarint(uint64(en.at))
	}
	return e.Bytes()
}

func decodeJournalCheckpoint(data []byte) (map[string]journalEntry, error) {
	d := interp.NewDecoder(data)
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make(map[string]journalEntry, n)
	for i := uint64(0); i < n; i++ {
		id, err := d.Str()
		if err != nil {
			return nil, err
		}
		v, err := d.Value()
		if err != nil {
			return nil, err
		}
		errStr, err := d.Str()
		if err != nil {
			return nil, err
		}
		at, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		out[id] = journalEntry{res: result{value: v, err: errStr}, at: int64(at)}
	}
	return out, nil
}

// checkpointJournal compacts the journal: replay entries still inside
// the retention window are written as one checkpoint record replacing
// the file, entries outside it are pruned from the file and the replay
// map alike. Appends are held out (jmu) for the duration so no outcome
// can slip between the payload snapshot and the file swap.
func (rt *Runtime) checkpointJournal() {
	rt.jmu.Lock()
	defer rt.jmu.Unlock()
	if rt.appendsSinceCkpt.Load() < int64(rt.checkpointEvery) {
		return // another completer compacted while we waited for the lock
	}
	var cutoff int64
	if rt.retention > 0 {
		cutoff = time.Now().Add(-rt.retention).UnixNano()
	}
	keep := make(map[string]journalEntry)
	rt.replay.Range(func(k, v any) bool {
		en := v.(journalEntry)
		if en.at < cutoff {
			rt.replay.Delete(k)
			return true
		}
		keep[k.(string)] = en
		return true
	})
	if err := rt.journal.Checkpoint(encodeJournalCheckpoint(keep)); err != nil {
		rt.journalErrs.Add(1)
		return
	}
	rt.appendsSinceCkpt.Store(0)
}

// JournalErrors reports journal append/sync failures (outcomes were still
// delivered to callers, but are not guaranteed replayable).
func (rt *Runtime) JournalErrors() int64 { return rt.journalErrs.Load() }

// Close stops all workers, waits for them to drain, and fails every
// request still pending with ErrClosed — an in-flight chain whose next hop
// raced the shutdown can never produce a response, so its waiter must not
// block forever. The response journal, if any, is synced and closed last.
func (rt *Runtime) Close() {
	if rt.closed.Swap(true) {
		return
	}
	if rt.metricsLn != nil {
		rt.metricsLn.Close() // unblocks Serve; scrapes in flight finish on their conns
		rt.metricsWg.Wait()
	}
	close(rt.quit)
	rt.wg.Wait()
	rt.pending.Range(func(k, _ any) bool {
		rt.complete(k.(string), result{fail: ErrClosed})
		return true
	})
	if rt.journal != nil {
		if err := rt.journal.Close(); err != nil {
			rt.journalErrs.Add(1)
		}
	}
}

// Workers returns the number of partitions.
func (rt *Runtime) Workers() int { return len(rt.workers) }

// Processed returns the total number of handled events.
func (rt *Runtime) Processed() int64 {
	var total int64
	for _, w := range rt.workers {
		total += w.processed.Load()
	}
	return total
}

func (rt *Runtime) ownerOf(ref interp.EntityRef) *worker {
	h := fnv.New32a()
	_, _ = h.Write([]byte(ref.Class))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(ref.Key))
	return rt.workers[int(h.Sum32()%uint32(len(rt.workers)))]
}

// send routes an event to its target partition. During shutdown the event
// is dropped; Close fails the chain's pending request afterwards.
func (rt *Runtime) send(ev *core.Event) {
	select {
	case rt.ownerOf(ev.Target).inbox <- ev:
	case <-rt.quit:
	}
}

// complete resolves a pending request exactly once: LoadAndDelete makes
// worker delivery, Submit's shutdown re-check and Close's drain race
// safely — whoever removes the entry completes it. Real outcomes (not
// shutdown failures) are journaled — appended and fsynced — and
// published to the replay map BEFORE the pending entry is released: a
// duplicate SubmitWithID can therefore never slip between removal and
// publication and re-execute a completed request (write-ahead at the
// egress, idempotence preserved under races).
func (rt *Runtime) complete(id string, r result) {
	if rt.journal != nil && r.fail == nil {
		at := time.Now().UnixNano()
		if _, dup := rt.replay.LoadOrStore(id, journalEntry{res: r, at: at}); !dup {
			rec := dlog.Record{Kind: journalResponse, At: at, Data: encodeJournalResponse(id, r)}
			rt.jmu.RLock()
			if err := rt.journal.Append(rec); err != nil {
				rt.journalErrs.Add(1)
			} else if err := rt.journal.Sync(); err != nil {
				rt.journalErrs.Add(1)
			}
			rt.jmu.RUnlock()
			if rt.checkpointEvery > 0 &&
				rt.appendsSinceCkpt.Add(1) >= int64(rt.checkpointEvery) {
				rt.checkpointJournal()
			}
		}
	}
	if p, ok := rt.pending.LoadAndDelete(id); ok {
		p.(*Pending).complete(r)
	}
}

// Submit sends an invocation without waiting and returns its future.
func (rt *Runtime) Submit(class, key, method string, args ...interp.Value) *Pending {
	return rt.SubmitWithID("", class, key, method, args...)
}

// SubmitWithID is Submit with a caller-supplied stable request id (empty:
// mint one). With the journal enabled, a supplied id whose outcome is
// already journaled — by this incarnation or a previous one — is
// answered from the journal without re-execution: the client-retry/
// response-replay protocol of the simulated runtimes, carried over
// process restarts. A supplied id currently in flight returns its
// existing future (idempotent submit). Minted ids never consult the
// journal (nobody can retry an id they have not seen) and carry an
// incarnation prefix so they cannot collide with a previous process's
// journaled ids.
func (rt *Runtime) SubmitWithID(id, class, key, method string, args ...interp.Value) *Pending {
	rt.submits.Inc()
	if id == "" {
		id = fmt.Sprintf("live-%s%d", rt.incarnation, rt.nextReq.Add(1))
	} else if r, ok := rt.replay.Load(id); ok {
		rt.replays.Inc()
		p := newPending(id)
		p.complete(r.(journalEntry).res)
		return p
	}
	p := newPending(id)
	if rt.closed.Load() {
		p.complete(result{fail: ErrClosed})
		return p
	}
	if prev, loaded := rt.pending.LoadOrStore(id, p); loaded {
		return prev.(*Pending) // same id already in flight: share its future
	}
	// Re-check replay now that our pending entry is visible: complete()
	// publishes the outcome before deleting the pending entry, so if the
	// id completed between our first replay check and the store above,
	// the outcome is guaranteed visible here — withdraw instead of
	// re-executing. (If the completer already consumed our fresh entry,
	// it resolved p with the same outcome; don't complete twice.)
	if r, ok := rt.replay.Load(id); ok {
		if _, mine := rt.pending.LoadAndDelete(id); mine {
			rt.replays.Inc()
			p.complete(r.(journalEntry).res)
		}
		return p
	}
	rt.send(&core.Event{
		Kind:   core.EvInvoke,
		Req:    id,
		Target: interp.EntityRef{Class: class, Key: key},
		Method: method,
		Args:   args,
	})
	if rt.closed.Load() {
		// Close may have drained the pending map before our Store landed;
		// fail the request ourselves so a racing shutdown cannot strand it.
		rt.complete(id, result{fail: ErrClosed})
	}
	return p
}

// Invoke calls a method and blocks until the chain completes. The second
// return is the application-level error string (empty on success).
func (rt *Runtime) Invoke(class, key, method string, args ...interp.Value) (interp.Value, string, error) {
	return rt.Submit(class, key, method, args...).Wait()
}

// Create instantiates an entity and blocks until done.
func (rt *Runtime) Create(class string, args ...interp.Value) (interp.EntityRef, error) {
	key, err := rt.ex.KeyForCtor(class, args)
	if err != nil {
		return interp.EntityRef{}, err
	}
	v, errStr, err := rt.Invoke(class, key, "__init__", args...)
	if err != nil {
		return interp.EntityRef{}, err
	}
	if errStr != "" {
		return interp.EntityRef{}, fmt.Errorf("%s", errStr)
	}
	return v.R, nil
}

// PreloadEntity loads an entity by running its constructor through the
// dataflow. (Unlike the simulated systems there is no out-of-band store
// access: workers own their partitions exclusively.)
func (rt *Runtime) PreloadEntity(class string, args ...interp.Value) error {
	_, err := rt.Create(class, args...)
	return err
}

// ask sends a control message to the worker, reporting false during
// shutdown (the reply channel might never be served).
func (w *worker) ask(msg any) bool {
	select {
	case w.inbox <- msg:
		return true
	case <-w.rt.quit:
		return false
	}
}

// EntityState reads a copy of one entity's attributes, served from the
// owning worker's goroutine so no lock is needed on the store. During
// shutdown it reports false.
func (rt *Runtime) EntityState(class, key string) (interp.MapState, bool) {
	if rt.closed.Load() {
		return nil, false
	}
	ref := interp.EntityRef{Class: class, Key: key}
	reply := make(chan interp.MapState, 1)
	if !rt.ownerOf(ref).ask(probe{ref: ref, reply: reply}) {
		return nil, false
	}
	select {
	case st := <-reply:
		if st == nil {
			return nil, false
		}
		return st, true
	case <-rt.quit:
		return nil, false
	}
}

// Keys lists the keys of every entity of a class, sorted across all
// partitions; each worker serves its slice from its own goroutine. During
// shutdown it reports nil.
func (rt *Runtime) Keys(class string) []string {
	if rt.closed.Load() {
		return nil
	}
	var out []string
	for _, w := range rt.workers {
		reply := make(chan []string, 1)
		if !w.ask(keysProbe{class: class, reply: reply}) {
			return nil
		}
		select {
		case keys := <-reply:
			out = append(out, keys...)
		case <-rt.quit:
			return nil
		}
	}
	sort.Strings(out)
	return out
}

// run is the worker goroutine: serial execution over its partition. It
// prefers draining its inbox and only honors quit when idle, so queued
// work is served before shutdown.
func (w *worker) run() {
	defer w.rt.wg.Done()
	for {
		select {
		case msg := <-w.inbox:
			w.handle(msg)
		default:
			select {
			case msg := <-w.inbox:
				w.handle(msg)
			case <-w.rt.quit:
				w.flush()
				return
			}
		}
	}
}

// handle processes one inbox message.
func (w *worker) handle(msg any) {
	switch m := msg.(type) {
	case probe:
		if st, ok := w.store.Lookup(m.ref); ok {
			m.reply <- st.CloneMap()
		} else {
			m.reply <- nil
		}
	case keysProbe:
		m.reply <- w.store.Keys(m.class)
	case *core.Event:
		w.processed.Add(1)
		out, err := w.rt.ex.Step(m, liveStore{w.store})
		if err != nil {
			w.deliver(&core.Event{Kind: core.EvResponse, Req: m.Req, Err: err.Error()})
			return
		}
		for _, ev := range out {
			w.deliver(ev)
		}
	}
}

// flush answers control probes still queued at shutdown and drops events
// (Close fails their pending requests afterwards).
func (w *worker) flush() {
	for {
		select {
		case msg := <-w.inbox:
			switch m := msg.(type) {
			case probe:
				m.reply <- nil
			case keysProbe:
				m.reply <- nil
			}
		default:
			return
		}
	}
}

// deliver routes a produced event: responses complete pending requests,
// everything else hops to the owning partition.
func (w *worker) deliver(ev *core.Event) {
	if ev.Kind == core.EvResponse {
		w.rt.complete(ev.Req, result{value: ev.Value, err: ev.Err})
		return
	}
	w.rt.send(ev)
}

// liveStore adapts state.Store to core.Store.
type liveStore struct{ s *state.Store }

// Lookup implements core.Store.
func (l liveStore) Lookup(ref interp.EntityRef) (interp.State, bool) {
	st, ok := l.s.Lookup(ref)
	if !ok {
		return nil, false
	}
	return st, true
}

// Create implements core.Store.
func (l liveStore) Create(ref interp.EntityRef) (interp.State, error) {
	return l.s.Create(ref)
}
