package live

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"statefulentities.dev/stateflow/internal/compiler"
	"statefulentities.dev/stateflow/internal/interp"
)

// newMetricsRT opens a runtime with the /metrics endpoint bound to a
// free port.
func newMetricsRT(t *testing.T, workers int) *Runtime {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Open(prog, Config{Workers: workers, MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestMetricsEndpoint pins the exposition surface: /metrics serves the
// Prometheus text format with the live.* metrics, and /debug/vars
// serves the expvar snapshot.
func TestMetricsEndpoint(t *testing.T) {
	rt := newMetricsRT(t, 2)
	if _, err := rt.Create("Counter", interp.StrV("c1")); err != nil {
		t.Fatal(err)
	}
	if _, errs, err := rt.Invoke("Counter", "c1", "bump", interp.IntV(1)); err != nil || errs != "" {
		t.Fatalf("bump: %v %s", err, errs)
	}
	addr := rt.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr is empty with MetricsAddr configured")
	}
	body := httpGet(t, "http://"+addr+"/metrics")
	for _, want := range []string{"# TYPE live_submits counter", "live_processed", "live_workers 2"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics is missing %q:\n%s", want, body)
		}
	}
	vars := httpGet(t, "http://"+addr+"/debug/vars")
	if !strings.Contains(vars, "stateflow.live") {
		t.Errorf("/debug/vars is missing the published registry:\n%s", vars)
	}
}

// TestMetricsExpositionRace hammers /metrics (and the expvar page) from
// readers while writers submit invocations: the -race job fails on any
// unsynchronized access between the hot submit path's counters and the
// exposition walk.
func TestMetricsExpositionRace(t *testing.T) {
	rt := newMetricsRT(t, 4)
	if _, err := rt.Create("Counter", interp.StrV("c1")); err != nil {
		t.Fatal(err)
	}
	addr := rt.MetricsAddr()
	const writers, readers, rounds = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("race-%d-%d", w, i)
				p := rt.SubmitWithID(id, "Counter", "c1", "bump", interp.IntV(1))
				if _, errs, err := p.Wait(); err != nil || errs != "" {
					t.Errorf("bump %s: %v %s", id, err, errs)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				httpGet(t, "http://"+addr+"/metrics")
				httpGet(t, "http://"+addr+"/debug/vars")
			}
		}()
	}
	wg.Wait()
	if got := rt.metrics.Snapshot()["live.submits"]; got < writers*rounds {
		t.Fatalf("live.submits = %d, want at least %d", got, writers*rounds)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, res.StatusCode)
	}
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(b)
}
