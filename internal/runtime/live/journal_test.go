package live

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"statefulentities.dev/stateflow/internal/compiler"
	"statefulentities.dev/stateflow/internal/interp"
)

func openJournaled(t *testing.T, path string) *Runtime {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Open(prog, Config{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestJournalReplayAcrossRestart is the Live-runtime half of the
// response-replay protocol: a client retrying a journaled request id
// against a NEW process gets the recorded outcome back — and the request
// is not re-executed (the state-mutating bump leaves no trace in the
// fresh incarnation's stores).
func TestJournalReplayAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.dlog")

	rt1 := openJournaled(t, path)
	if _, err := rt1.Create("Counter", interp.StrV("c1")); err != nil {
		t.Fatal(err)
	}
	v, errStr, err := rt1.SubmitWithID("req-1", "Counter", "c1", "bump", interp.IntV(5)).Wait()
	if err != nil || errStr != "" || v.I != 5 {
		t.Fatalf("first bump: %v %q %v", v, errStr, err)
	}
	rt1.Close()
	if rt1.JournalErrors() != 0 {
		t.Fatalf("journal errors: %d", rt1.JournalErrors())
	}

	// New process, same journal: the retry of req-1 is served from the
	// journal. No entity exists in this incarnation (live state is
	// in-memory), so an answered-from-journal result proves no
	// re-execution happened.
	rt2 := openJournaled(t, path)
	defer rt2.Close()
	v, errStr, err = rt2.SubmitWithID("req-1", "Counter", "c1", "bump", interp.IntV(5)).Wait()
	if err != nil || errStr != "" || v.I != 5 {
		t.Fatalf("replayed bump: %v %q %v", v, errStr, err)
	}
	if _, ok := rt2.EntityState("Counter", "c1"); ok {
		t.Fatal("replayed request re-executed: entity materialized in the new incarnation")
	}
	// A fresh id executes normally (and fails: no such entity yet).
	_, errStr, err = rt2.SubmitWithID("req-2", "Counter", "c1", "get").Wait()
	if err != nil || errStr == "" {
		t.Fatalf("fresh id on empty state: err=%v app=%q (want an application error)", err, errStr)
	}
}

// TestJournalInFlightAndSameIncarnationReplay: within one incarnation, a
// duplicate submit of an in-flight id shares the future, and a duplicate
// of a completed id replays without re-execution.
func TestJournalInFlightAndSameIncarnationReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.dlog")
	rt := openJournaled(t, path)
	defer rt.Close()
	if _, err := rt.Create("Counter", interp.StrV("c1")); err != nil {
		t.Fatal(err)
	}
	v, _, err := rt.SubmitWithID("dup", "Counter", "c1", "bump", interp.IntV(1)).Wait()
	if err != nil || v.I != 1 {
		t.Fatalf("bump: %v %v", v, err)
	}
	// Retry of the completed id: journaled outcome, no second bump.
	v, _, err = rt.SubmitWithID("dup", "Counter", "c1", "bump", interp.IntV(1)).Wait()
	if err != nil || v.I != 1 {
		t.Fatalf("replay: %v %v", v, err)
	}
	if st, ok := rt.EntityState("Counter", "c1"); !ok || st["n"].I != 1 {
		t.Fatalf("counter bumped twice: %v", st)
	}
}

// TestJournalConcurrentClients hammers the journal from many goroutines
// (the -race job runs this) and then replays every outcome in a second
// incarnation.
func TestJournalConcurrentClients(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.dlog")
	rt := openJournaled(t, path)
	if _, err := rt.Create("Counter", interp.StrV("c1")); err != nil {
		t.Fatal(err)
	}
	const clients, per = 8, 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("c%d-%d", c, i)
				if _, _, err := rt.SubmitWithID(id, "Counter", "c1", "bump", interp.IntV(1)).Wait(); err != nil {
					t.Errorf("%s: %v", id, err)
				}
			}
		}(c)
	}
	wg.Wait()
	if st, ok := rt.EntityState("Counter", "c1"); !ok || st["n"].I != clients*per {
		t.Fatalf("count: %v", st)
	}
	rt.Close()

	rt2 := openJournaled(t, path)
	defer rt2.Close()
	for c := 0; c < clients; c++ {
		for i := 0; i < per; i++ {
			id := fmt.Sprintf("c%d-%d", c, i)
			v, errStr, err := rt2.SubmitWithID(id, "Counter", "c1", "bump", interp.IntV(1)).Wait()
			if err != nil || errStr != "" || v.Kind != interp.KInt {
				t.Fatalf("replay %s: %v %q %v", id, v, errStr, err)
			}
		}
	}
	if _, ok := rt2.EntityState("Counter", "c1"); ok {
		t.Fatal("replays re-executed")
	}
}

// TestJournalMintedIDsDoNotCollideAcrossIncarnations: a new process's
// plain Submit must never be answered from a previous process's journal
// — minted ids carry an incarnation prefix and skip the replay map.
func TestJournalMintedIDsDoNotCollideAcrossIncarnations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.dlog")
	rt1 := openJournaled(t, path)
	if _, err := rt1.Create("Counter", interp.StrV("c1")); err != nil { // minted id, journaled
		t.Fatal(err)
	}
	rt1.Close()

	rt2 := openJournaled(t, path)
	defer rt2.Close()
	// The same sequence in the new incarnation must actually execute: if
	// the minted id collided with rt1's journaled one, Create would be
	// answered with the stale outcome and the entity would not exist.
	if _, err := rt2.Create("Counter", interp.StrV("c1")); err != nil {
		t.Fatal(err)
	}
	v, errStr, err := rt2.Submit("Counter", "c1", "bump", interp.IntV(3)).Wait()
	if err != nil || errStr != "" || v.I != 3 {
		t.Fatalf("fresh incarnation did not execute: %v %q %v", v, errStr, err)
	}
	if st, ok := rt2.EntityState("Counter", "c1"); !ok || st["n"].I != 3 {
		t.Fatalf("state after fresh execution: %v ok=%v", st, ok)
	}
}

// TestJournalRetentionBoundsAndReplaysWithinWindow pins the journal's
// retention contract. Pre-fix, the journal only ever grew: every outcome
// stayed appended forever, and Open never decoded a checkpoint record —
// so compacting at all would have silently dropped every journaled
// outcome on the next restart. Post-fix: compaction folds the replay
// entries still inside JournalRetention into one checkpoint record and
// prunes the rest, and a reopened runtime replays from the checkpoint
// plus the frames behind it — retries inside the window replay across
// restarts, retries outside it re-execute.
func TestJournalRetentionBoundsAndReplaysWithinWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.dlog")
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 2, JournalPath: path,
		JournalCheckpointEvery: 8, JournalRetention: 50 * time.Millisecond}
	rt, err := Open(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Create("Counter", interp.StrV("c1")); err != nil { // append 1
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ { // appends 2..7
		id := fmt.Sprintf("old-%d", i)
		if _, _, err := rt.SubmitWithID(id, "Counter", "c1", "bump", interp.IntV(1)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(60 * time.Millisecond) // age the old outcomes past retention

	// Appends 8 and 9: the 8th crosses JournalCheckpointEvery and compacts,
	// pruning everything older than the window; the 9th lands as a frame
	// behind the fresh checkpoint.
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("new-%d", i)
		if _, _, err := rt.SubmitWithID(id, "Counter", "c1", "bump", interp.IntV(1)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.journal.Stats().Checkpoints; got != 1 {
		t.Fatalf("checkpoints after 9 appends with every=8: %d, want 1", got)
	}
	if _, ok := rt.replay.Load("old-0"); ok {
		t.Fatal("outcome older than the retention window survived compaction")
	}
	if _, ok := rt.replay.Load("new-0"); !ok {
		t.Fatal("outcome inside the retention window pruned")
	}
	rt.Close()
	if rt.JournalErrors() != 0 {
		t.Fatalf("journal errors: %d", rt.JournalErrors())
	}

	// New process, same journal: replay must survive the compaction —
	// new-0 from the checkpoint record, new-1 from the frame behind it.
	// (This is the leg the pre-fix Open failed: it never read
	// Recovered().Checkpoint.) A pruned id re-executes — here against an
	// incarnation with no entity, so it fails instead of replaying.
	rt2, err := Open(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	for _, id := range []string{"new-0", "new-1"} {
		v, errStr, err := rt2.SubmitWithID(id, "Counter", "c1", "bump", interp.IntV(1)).Wait()
		if err != nil || errStr != "" || v.Kind != interp.KInt {
			t.Fatalf("replay %s across compaction+restart: %v %q %v", id, v, errStr, err)
		}
	}
	if _, errStr, err := rt2.SubmitWithID("old-0", "Counter", "c1", "bump", interp.IntV(1)).Wait(); err != nil || errStr == "" {
		t.Fatalf("pruned id should re-execute (and fail on empty state): err=%v app=%q", err, errStr)
	}
}

// TestJournalTornTailDiscarded corrupts the journal's tail byte (a crash
// mid-append) and requires the reopened runtime to discard it: the torn
// outcome is re-executed on retry rather than replayed from garbage.
func TestJournalTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.dlog")
	rt := openJournaled(t, path)
	if _, err := rt.Create("Counter", interp.StrV("c1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.SubmitWithID("keep", "Counter", "c1", "bump", interp.IntV(1)).Wait(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.SubmitWithID("torn", "Counter", "c1", "bump", interp.IntV(1)).Wait(); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	rt2 := openJournaled(t, path)
	defer rt2.Close()
	if _, ok := rt2.replay.Load("keep"); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok := rt2.replay.Load("torn"); ok {
		t.Fatal("torn record replayed")
	}
}
