package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"statefulentities.dev/stateflow/internal/compiler"
	"statefulentities.dev/stateflow/internal/interp"
)

const src = `
@entity
class Counter:
    def __init__(self, name: str):
        self.name: str = name
        self.n: int = 0

    def __key__(self) -> str:
        return self.name

    def bump(self, by: int) -> int:
        self.n += by
        return self.n

    def get(self) -> int:
        return self.n

@entity
class Driver:
    def __init__(self, name: str):
        self.name: str = name

    def __key__(self) -> str:
        return self.name

    def fanout(self, counters: list[Counter], by: int) -> int:
        total: int = 0
        for c in counters:
            total += c.bump(by)
        return total
`

func newRT(t *testing.T, workers int) *Runtime {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rt := New(prog, Config{Workers: workers})
	t.Cleanup(rt.Close)
	return rt
}

func TestCreateInvoke(t *testing.T) {
	rt := newRT(t, 4)
	ref, err := rt.Create("Counter", interp.StrV("c1"))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Key != "c1" {
		t.Fatalf("ref: %v", ref)
	}
	v, errStr, err := rt.Invoke("Counter", "c1", "bump", interp.IntV(5))
	if err != nil || errStr != "" {
		t.Fatalf("%v %s", err, errStr)
	}
	if v.I != 5 {
		t.Fatalf("bump: %v", v)
	}
	st, ok := rt.EntityState("Counter", "c1")
	if !ok || st["n"].I != 5 {
		t.Fatalf("state: %v %v", st, ok)
	}
}

func TestMissingEntity(t *testing.T) {
	rt := newRT(t, 2)
	_, errStr, err := rt.Invoke("Counter", "ghost", "get")
	if err != nil {
		t.Fatal(err)
	}
	if errStr == "" {
		t.Fatal("expected missing-entity error")
	}
	if _, ok := rt.EntityState("Counter", "ghost"); ok {
		t.Fatal("ghost state")
	}
}

// TestConcurrentSingleKeyLinearizable: per-key serial mailboxes make
// concurrent increments on one key lose nothing.
func TestConcurrentSingleKeyLinearizable(t *testing.T) {
	rt := newRT(t, 8)
	if _, err := rt.Create("Counter", interp.StrV("hot")); err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, errStr, err := rt.Invoke("Counter", "hot", "bump", interp.IntV(1)); err != nil || errStr != "" {
					t.Errorf("bump: %v %s", err, errStr)
					return
				}
			}
		}()
	}
	wg.Wait()
	st, _ := rt.EntityState("Counter", "hot")
	if st["n"].I != goroutines*perG {
		t.Fatalf("lost updates on single key: %d", st["n"].I)
	}
}

// TestCrossEntityChain runs split loops over entities on many partitions
// concurrently.
func TestCrossEntityChain(t *testing.T) {
	rt := newRT(t, 4)
	if _, err := rt.Create("Driver", interp.StrV("d")); err != nil {
		t.Fatal(err)
	}
	var refs []interp.Value
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("c%d", i)
		if _, err := rt.Create("Counter", interp.StrV(key)); err != nil {
			t.Fatal(err)
		}
		refs = append(refs, interp.RefV("Counter", key))
	}
	v, errStr, err := rt.Invoke("Driver", "d", "fanout",
		interp.ListV(refs...), interp.IntV(2))
	if err != nil || errStr != "" {
		t.Fatalf("%v %s", err, errStr)
	}
	if v.I != 12 { // six counters, each bumped to 2
		t.Fatalf("fanout total: %v", v)
	}
	for i := 0; i < 6; i++ {
		st, _ := rt.EntityState("Counter", fmt.Sprintf("c%d", i))
		if st["n"].I != 2 {
			t.Fatalf("c%d: %d", i, st["n"].I)
		}
	}
}

func TestManyConcurrentChains(t *testing.T) {
	rt := newRT(t, 8)
	for i := 0; i < 4; i++ {
		if _, err := rt.Create("Driver", interp.StrV(fmt.Sprintf("d%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := rt.Create("Counter", interp.StrV(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	const chains = 40
	for i := 0; i < chains; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			refs := interp.ListV(
				interp.RefV("Counter", fmt.Sprintf("k%d", i%8)),
				interp.RefV("Counter", fmt.Sprintf("k%d", (i+3)%8)),
			)
			if _, errStr, err := rt.Invoke("Driver", fmt.Sprintf("d%d", i%4), "fanout",
				refs, interp.IntV(1)); err != nil || errStr != "" {
				t.Errorf("chain: %v %s", err, errStr)
			}
		}(i)
	}
	wg.Wait()
	// Every chain bumps two counters by 1: total across counters = 80.
	var total int64
	for i := 0; i < 8; i++ {
		st, _ := rt.EntityState("Counter", fmt.Sprintf("k%d", i))
		total += st["n"].I
	}
	if total != 2*chains {
		t.Fatalf("total bumps: %d want %d", total, 2*chains)
	}
}

func TestDuplicateCreate(t *testing.T) {
	rt := newRT(t, 2)
	if _, err := rt.Create("Counter", interp.StrV("dup")); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Create("Counter", interp.StrV("dup")); err == nil {
		t.Fatal("duplicate create must fail")
	}
}

func TestCloseIdempotentAndRejects(t *testing.T) {
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rt := New(prog, Config{Workers: 2})
	rt.Close()
	rt.Close() // idempotent
	if _, _, err := rt.Invoke("Counter", "x", "get"); err == nil {
		t.Fatal("closed runtime must reject invokes")
	}
}

func TestProcessedCounter(t *testing.T) {
	rt := newRT(t, 2)
	if _, err := rt.Create("Counter", interp.StrV("p")); err != nil {
		t.Fatal(err)
	}
	before := rt.Processed()
	if _, _, err := rt.Invoke("Counter", "p", "get"); err != nil {
		t.Fatal(err)
	}
	if rt.Processed() <= before {
		t.Fatal("processed counter did not advance")
	}
	if rt.Workers() != 2 {
		t.Fatalf("workers: %d", rt.Workers())
	}
}

// TestSubmitFuture exercises the async path: Submit returns a Pending
// resolved by the worker's response.
func TestSubmitFuture(t *testing.T) {
	rt := newRT(t, 4)
	if _, err := rt.Create("Counter", interp.StrV("f")); err != nil {
		t.Fatal(err)
	}
	p := rt.Submit("Counter", "f", "bump", interp.IntV(3))
	v, errStr, err := p.Wait()
	if err != nil || errStr != "" {
		t.Fatalf("%v %s", err, errStr)
	}
	if v.I != 3 {
		t.Fatalf("bump: %v", v)
	}
	if !p.Done() {
		t.Fatal("completed future not Done")
	}
	// Wait memoizes: calling again returns the same outcome.
	if v2, _, _ := p.Wait(); v2.I != 3 {
		t.Fatalf("second Wait: %v", v2)
	}
}

func TestSubmitApplicationError(t *testing.T) {
	rt := newRT(t, 2)
	_, errStr, err := rt.Submit("Counter", "ghost", "get").Wait()
	if err != nil {
		t.Fatal(err)
	}
	if errStr == "" {
		t.Fatal("expected missing-entity error on the future")
	}
}

func TestWaitContextTimeout(t *testing.T) {
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rt := New(prog, Config{Workers: 1, MailboxDepth: 1})
	defer rt.Close()
	// A pending that never completes: fabricate one not backed by any
	// event, so only the context can end the wait.
	p := newPending("never")
	rt.pending.Store("never", p)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := p.WaitContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	// Close must still complete it (the late Wait observes ErrClosed).
	go rt.Close()
	if _, _, err := p.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after shutdown, got %v", err)
	}
}

// TestCloseCompletesInflight is the regression test for the shutdown
// hang: Invoke used to block forever on its result channel if Close raced
// an in-flight request (the chain's next hop was dropped and nothing ever
// answered). Now every pending request must complete — with a response or
// with ErrClosed. Run under -race in CI.
func TestCloseCompletesInflight(t *testing.T) {
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		rt := New(prog, Config{Workers: 4})
		if _, err := rt.Create("Driver", interp.StrV("d")); err != nil {
			t.Fatal(err)
		}
		var refs []interp.Value
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("c%d", i)
			if _, err := rt.Create("Counter", interp.StrV(key)); err != nil {
				t.Fatal(err)
			}
			refs = append(refs, interp.RefV("Counter", key))
		}
		// Hammer multi-hop chains from many goroutines while Close races.
		const goroutines = 8
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					p := rt.Submit("Driver", "d", "fanout", interp.ListV(refs...), interp.IntV(1))
					if _, _, err := p.Wait(); err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("unexpected transport error: %v", err)
						return
					}
				}
			}()
		}
		go rt.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("waiters hung after Close: pending requests were not completed")
		}
		rt.Close()
	}
}

// TestSubmitAfterClose: a Submit that loses the race entirely still gets
// a completed (failed) future, never a hang.
func TestSubmitAfterClose(t *testing.T) {
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rt := New(prog, Config{Workers: 2})
	rt.Close()
	p := rt.Submit("Counter", "x", "get")
	if !p.Done() {
		t.Fatal("post-close submit must complete immediately")
	}
	if _, _, err := p.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestKeysAcrossPartitions(t *testing.T) {
	rt := newRT(t, 4)
	want := []string{"a", "b", "c", "d", "e"}
	for _, k := range want {
		if _, err := rt.Create("Counter", interp.StrV(k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Create("Driver", interp.StrV("dr")); err != nil {
		t.Fatal(err)
	}
	got := rt.Keys("Counter")
	if len(got) != len(want) {
		t.Fatalf("keys: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys not sorted/complete: %v", got)
		}
	}
}
