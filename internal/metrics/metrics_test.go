package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentiles(t *testing.T) {
	s := NewSeries()
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	cases := map[float64]time.Duration{
		50:  50 * time.Millisecond,
		99:  99 * time.Millisecond,
		100: 100 * time.Millisecond,
		1:   1 * time.Millisecond,
	}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Errorf("p%.0f: got %s want %s", p, got, want)
		}
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries()
	if s.Percentile(99) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty series must be all zero")
	}
	if s.Count() != 0 {
		t.Fatal("count")
	}
}

func TestMeanMinMax(t *testing.T) {
	s := NewSeries()
	for _, d := range []time.Duration{30, 10, 20} {
		s.Add(d * time.Millisecond)
	}
	if s.Mean() != 20*time.Millisecond {
		t.Fatalf("mean: %s", s.Mean())
	}
	if s.Min() != 10*time.Millisecond || s.Max() != 30*time.Millisecond {
		t.Fatalf("min/max: %s/%s", s.Min(), s.Max())
	}
}

func TestAddAfterQueryResorts(t *testing.T) {
	s := NewSeries()
	s.Add(10 * time.Millisecond)
	_ = s.Percentile(50)
	s.Add(1 * time.Millisecond)
	if s.Min() != 1*time.Millisecond {
		t.Fatal("series must re-sort after new samples")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSeries()
		for _, v := range raw {
			s.Add(time.Duration(v) * time.Microsecond)
		}
		pa := float64(a % 101)
		pb := float64(b % 101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	prop := func(raw []uint16, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSeries()
		for _, v := range raw {
			s.Add(time.Duration(v) * time.Microsecond)
		}
		got := s.Percentile(float64(p % 101))
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryContainsFields(t *testing.T) {
	s := NewSeries()
	s.Add(time.Millisecond)
	sum := s.Summary()
	for _, f := range []string{"n=1", "mean=", "p50=", "p99=", "max="} {
		if !strings.Contains(sum, f) {
			t.Fatalf("summary %q missing %s", sum, f)
		}
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Add("exec", 90*time.Millisecond)
	b.Add("split", 10*time.Millisecond)
	if b.Total() != 100*time.Millisecond {
		t.Fatalf("total: %s", b.Total())
	}
	if f := b.Fraction("split"); f != 0.1 {
		t.Fatalf("fraction: %f", f)
	}
	comps := b.Components()
	if comps[0] != "exec" || comps[1] != "split" {
		t.Fatalf("order: %v", comps)
	}
	tbl := b.Table()
	for _, f := range []string{"exec", "split", "10.00%", "total"} {
		if !strings.Contains(tbl, f) {
			t.Fatalf("table missing %s:\n%s", f, tbl)
		}
	}
}

func TestBreakdownMerge(t *testing.T) {
	a := NewBreakdown()
	a.Add("x", time.Second)
	b := NewBreakdown()
	b.Add("x", time.Second)
	b.Add("y", 2*time.Second)
	a.Merge(b)
	if a.Get("x") != 2*time.Second || a.Get("y") != 2*time.Second {
		t.Fatalf("merge: x=%s y=%s", a.Get("x"), a.Get("y"))
	}
}

func TestBreakdownEmpty(t *testing.T) {
	b := NewBreakdown()
	if b.Fraction("anything") != 0 {
		t.Fatal("empty fraction must be 0")
	}
	if b.Total() != 0 {
		t.Fatal("empty total")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("a", 2)
	c.Inc("a", 3)
	c.Inc("b", 1)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("zz") != 0 {
		t.Fatal("counter values")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names: %v", names)
	}
}
