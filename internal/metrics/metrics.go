// Package metrics provides latency recording with percentile queries and
// the per-component time breakdown used by the paper's system-overhead
// experiment (§4): for each event, the runtime attributes duration to
// components such as routing, object construction, function execution,
// state (de)serialization, queueing, and program-transformation overhead.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Series collects duration samples and answers percentile queries.
type Series struct {
	samples []time.Duration
	sorted  bool
}

// NewSeries returns an empty series.
func NewSeries() *Series { return &Series{} }

// Add records one sample.
func (s *Series) Add(d time.Duration) {
	s.samples = append(s.samples, d)
	s.sorted = false
}

// Count returns the number of samples.
func (s *Series) Count() int { return len(s.samples) }

func (s *Series) sortOnce() {
	if !s.sorted {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank. It returns 0 for an empty series.
func (s *Series) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	s.sortOnce()
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[len(s.samples)-1]
	}
	rank := int(p/100*float64(len(s.samples))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s.samples) {
		rank = len(s.samples) - 1
	}
	return s.samples[rank]
}

// Mean returns the arithmetic mean.
func (s *Series) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range s.samples {
		total += d
	}
	return total / time.Duration(len(s.samples))
}

// Min returns the smallest sample.
func (s *Series) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	s.sortOnce()
	return s.samples[0]
}

// Max returns the largest sample.
func (s *Series) Max() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	s.sortOnce()
	return s.samples[len(s.samples)-1]
}

// Summary renders count/mean/p50/p99/max in one line.
func (s *Series) Summary() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s max=%s",
		s.Count(), s.Mean().Round(time.Microsecond),
		s.Percentile(50).Round(time.Microsecond),
		s.Percentile(99).Round(time.Microsecond),
		s.Max().Round(time.Microsecond))
}

// Breakdown accumulates time attributed to named runtime components (the
// §4 overhead experiment). Attribution keys are free-form; the StateFlow
// worker uses keys like "routing", "object_construction",
// "function_execution", "state_serialization", "splitting_overhead".
type Breakdown struct {
	buckets map[string]time.Duration
	counts  map[string]int
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{buckets: map[string]time.Duration{}, counts: map[string]int{}}
}

// Add charges d to a component.
func (b *Breakdown) Add(component string, d time.Duration) {
	b.buckets[component] += d
	b.counts[component]++
}

// Get returns the accumulated time for a component.
func (b *Breakdown) Get(component string) time.Duration { return b.buckets[component] }

// Total returns the sum over all components.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.buckets {
		t += d
	}
	return t
}

// Fraction returns a component's share of the total (0 when empty).
func (b *Breakdown) Fraction(component string) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.buckets[component]) / float64(t)
}

// Components lists component names sorted by accumulated time descending.
func (b *Breakdown) Components() []string {
	out := make([]string, 0, len(b.buckets))
	for k := range b.buckets {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if b.buckets[out[i]] != b.buckets[out[j]] {
			return b.buckets[out[i]] > b.buckets[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Table renders the breakdown as aligned rows of component, total time and
// percentage — the table shape of the §4 overhead experiment.
func (b *Breakdown) Table() string {
	var sb strings.Builder
	total := b.Total()
	fmt.Fprintf(&sb, "%-28s %14s %8s\n", "component", "time", "share")
	for _, c := range b.Components() {
		fmt.Fprintf(&sb, "%-28s %14s %7.2f%%\n",
			c, b.buckets[c].Round(time.Microsecond), 100*b.Fraction(c))
	}
	fmt.Fprintf(&sb, "%-28s %14s %8s\n", "total", total.Round(time.Microsecond), "100.00%")
	return sb.String()
}

// Merge adds another breakdown into this one.
func (b *Breakdown) Merge(o *Breakdown) {
	for k, d := range o.buckets {
		b.buckets[k] += d
		b.counts[k] += o.counts[k]
	}
}

// Counter is a simple monotonically increasing named counter set.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: map[string]int64{}} }

// Inc adds n to a named counter.
func (c *Counter) Inc(name string, n int64) { c.counts[name] += n }

// Get reads a counter.
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names lists counter names sorted.
func (c *Counter) Names() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
