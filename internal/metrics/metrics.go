// Package metrics provides latency recording with percentile queries and
// the per-component time breakdown used by the paper's system-overhead
// experiment (§4): for each event, the runtime attributes duration to
// components such as routing, object construction, function execution,
// state (de)serialization, queueing, and program-transformation overhead.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"statefulentities.dev/stateflow/internal/obs"
)

// Series collects duration samples and answers percentile queries. It
// is a thin veneer over obs.Histogram — the repo's one quantile
// implementation — kept for its established API. By default every
// sample is retained (exact percentiles); Bound switches to a
// fixed-capacity reservoir for unbounded runs such as the nightly
// 100-seed sweeps, where count/mean/min/max stay exact and percentiles
// become estimates.
type Series struct {
	h obs.Histogram
}

// NewSeries returns an empty exact-mode series.
func NewSeries() *Series { return &Series{} }

// NewBoundedSeries returns a series retaining at most capacity samples
// (reservoir mode).
func NewBoundedSeries(capacity int) *Series {
	s := &Series{}
	s.h.Bound(capacity)
	return s
}

// Bound switches the series to reservoir mode with the given capacity.
func (s *Series) Bound(capacity int) { s.h.Bound(capacity) }

// Hist exposes the underlying histogram, e.g. to register the series
// under a name in an obs.Registry.
func (s *Series) Hist() *obs.Histogram { return &s.h }

// Add records one sample.
func (s *Series) Add(d time.Duration) { s.h.Observe(d) }

// Count returns the number of recorded samples.
func (s *Series) Count() int { return int(s.h.Count()) }

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank. It returns 0 for an empty series.
func (s *Series) Percentile(p float64) time.Duration { return s.h.Percentile(p) }

// Mean returns the arithmetic mean.
func (s *Series) Mean() time.Duration { return s.h.Mean() }

// Min returns the smallest sample.
func (s *Series) Min() time.Duration { return s.h.Min() }

// Max returns the largest sample.
func (s *Series) Max() time.Duration { return s.h.Max() }

// Stats reads the count/mean/min/max/p50/p99 summary in one consistent
// view — the shared row shape of the benchmark tables and artifacts.
func (s *Series) Stats() obs.HistSnapshot { return s.h.Snapshot() }

// Summary renders count/mean/p50/p99/max in one line.
func (s *Series) Summary() string { return s.Stats().String() }

// Breakdown accumulates time attributed to named runtime components (the
// §4 overhead experiment). Attribution keys are free-form; the StateFlow
// worker uses keys like "routing", "object_construction",
// "function_execution", "state_serialization", "splitting_overhead".
type Breakdown struct {
	buckets map[string]time.Duration
	counts  map[string]int
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{buckets: map[string]time.Duration{}, counts: map[string]int{}}
}

// Add charges d to a component.
func (b *Breakdown) Add(component string, d time.Duration) {
	b.buckets[component] += d
	b.counts[component]++
}

// Get returns the accumulated time for a component.
func (b *Breakdown) Get(component string) time.Duration { return b.buckets[component] }

// Total returns the sum over all components.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.buckets {
		t += d
	}
	return t
}

// Fraction returns a component's share of the total (0 when empty).
func (b *Breakdown) Fraction(component string) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.buckets[component]) / float64(t)
}

// Components lists component names sorted by accumulated time descending.
func (b *Breakdown) Components() []string {
	out := make([]string, 0, len(b.buckets))
	for k := range b.buckets {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if b.buckets[out[i]] != b.buckets[out[j]] {
			return b.buckets[out[i]] > b.buckets[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Table renders the breakdown as aligned rows of component, total time and
// percentage — the table shape of the §4 overhead experiment.
func (b *Breakdown) Table() string {
	var sb strings.Builder
	total := b.Total()
	fmt.Fprintf(&sb, "%-28s %14s %8s\n", "component", "time", "share")
	for _, c := range b.Components() {
		fmt.Fprintf(&sb, "%-28s %14s %7.2f%%\n",
			c, b.buckets[c].Round(time.Microsecond), 100*b.Fraction(c))
	}
	fmt.Fprintf(&sb, "%-28s %14s %8s\n", "total", total.Round(time.Microsecond), "100.00%")
	return sb.String()
}

// Merge adds another breakdown into this one.
func (b *Breakdown) Merge(o *Breakdown) {
	for k, d := range o.buckets {
		b.buckets[k] += d
		b.counts[k] += o.counts[k]
	}
}

// Counter is a simple monotonically increasing named counter set.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: map[string]int64{}} }

// Inc adds n to a named counter.
func (c *Counter) Inc(name string, n int64) { c.counts[name] += n }

// Get reads a counter.
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names lists counter names sorted.
func (c *Counter) Names() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
