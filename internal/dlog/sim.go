package dlog

import "time"

// SimLog is the deterministic in-simulation durable log. It lives outside
// the simulated component that writes it (like the snapshot store and the
// replayable source, it models an attached durable device), so its
// contents survive a sim.Cluster crash of the owner — with one crucial
// exception that models real storage: appends not yet covered by a
// completed sync when the crash lands do not survive. The first of them
// becomes a torn tail (present on the medium but detectably incomplete;
// recovery discards it), the rest are lost outright.
//
// Durability is driven by explicit sync points:
//
//   - SyncNow(now) models a blocking fsync: everything appended so far is
//     durable at now (the caller charges the CPU stall).
//   - SyncAt(completes) models group commit: everything appended so far
//     becomes durable when the virtual clock reaches completes — the
//     caller schedules its continuation (e.g. releasing responses) at
//     that instant and must treat the records as volatile until then.
//
// Crash(at) applies the device's crash contract at a virtual instant; the
// owner wires it to the cluster's crash hook. Recover(now) returns the
// durable image. All methods are single-threaded, like the simulator.
type SimLog struct {
	base    []byte // latest durable checkpoint payload
	hasBase bool

	recs []simRec
	// nextLSN numbers appends monotonically across the log's whole life —
	// checkpoints compact records away but never reuse their LSNs, so a
	// caller can order its own bookkeeping against sync completions.
	nextLSN int64
	stats   Stats
}

type simRec struct {
	rec Record
	// durableAt is the virtual time the record's covering sync completes;
	// volatile (no sync issued yet) while negative.
	durableAt time.Duration
}

const volatile = time.Duration(-1)

// NewSimLog returns an empty simulated durable log.
func NewSimLog() *SimLog { return &SimLog{} }

// Append adds a record to the volatile tail and returns its LSN
// (monotonic across checkpoints). The record is NOT durable until a
// subsequent sync point completes.
func (l *SimLog) Append(rec Record) int64 {
	data := append([]byte(nil), rec.Data...)
	l.recs = append(l.recs, simRec{rec: Record{Kind: rec.Kind, At: rec.At, Data: data}, durableAt: volatile})
	l.stats.Appends++
	l.stats.AppendedBytes += len(data)
	l.nextLSN++
	return l.nextLSN
}

// SyncNow makes every appended record durable at now (blocking fsync).
func (l *SimLog) SyncNow(now time.Duration) { l.syncAll(now) }

// SyncAt issues a group-commit sync completing at the given virtual time
// and returns the LSN of the last record it covers. Records covered by
// the sync become durable only if the owner survives past completes.
func (l *SimLog) SyncAt(completes time.Duration) int64 {
	l.syncAll(completes)
	return l.nextLSN
}

func (l *SimLog) syncAll(at time.Duration) {
	l.stats.Syncs++
	for i := range l.recs {
		if l.recs[i].durableAt == volatile || l.recs[i].durableAt > at {
			l.recs[i].durableAt = at
		}
	}
}

// Checkpoint atomically replaces the log's contents with a checkpoint
// payload: the payload becomes the new durable base and every record is
// compacted away. The caller invokes it from a single handler (and
// charges the sync cost), which is what makes atomicity honest in the
// simulation; the byte-level torn-checkpoint cases are exercised by the
// file-backed implementation.
func (l *SimLog) Checkpoint(now time.Duration, payload []byte) {
	l.base = append([]byte(nil), payload...)
	l.hasBase = true
	l.stats.Checkpoints++
	l.stats.Compacted += len(l.recs)
	l.stats.Syncs++
	l.recs = l.recs[:0]
}

// Crash applies the device crash contract at virtual time at: records
// whose covering sync completed by then survive; the first record still
// in flight becomes a torn tail (detected and discarded — it never
// reappears in Recover), the rest are lost.
func (l *SimLog) Crash(at time.Duration) {
	keep := 0
	for keep < len(l.recs) && l.recs[keep].durableAt != volatile && l.recs[keep].durableAt <= at {
		keep++
	}
	if keep == len(l.recs) {
		return
	}
	l.stats.TornTails++
	l.stats.LostRecords += len(l.recs) - keep - 1
	l.recs = l.recs[:keep]
}

// Recover returns the durable image at now: the latest checkpoint payload
// plus the durable records after it. Any append whose sync has not
// completed by now is treated exactly like a crash at now would treat it
// (first torn, rest lost) — recovering is indistinguishable from power
// loss. Torn reports whether this log ever discarded a torn tail.
func (l *SimLog) Recover(now time.Duration) Recovered {
	l.Crash(now)
	out := Recovered{Torn: l.stats.TornTails > 0}
	if l.hasBase {
		out.Checkpoint = append([]byte(nil), l.base...)
	}
	for _, r := range l.recs {
		out.Records = append(out.Records, Record{Kind: r.rec.Kind, At: r.rec.At, Data: append([]byte(nil), r.rec.Data...)})
	}
	return out
}

// Len reports the number of live (post-checkpoint) records, durable or
// volatile.
func (l *SimLog) Len() int { return len(l.recs) }

// Stats returns a copy of the activity counters.
func (l *SimLog) Stats() Stats { return l.stats }
