package dlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// fileMagic heads every log file; a file that does not start with it is
// rejected rather than silently replayed. Version 02 added the record
// timestamp to the frame body; 01 files are foreign to it (the journal is
// a cache of responses a client may retry for, not a migration surface).
var fileMagic = []byte("SFDLOG02")

// frameHeader is [u32 length of body][u32 crc32 of body], where the body
// is [kind][8-byte LE At timestamp][payload] — the timestamp sits in the
// durable framing, not the payload, so checkpoint policies can retain
// records by age without decoding owner payloads.
const frameHeader = 8

// frameBodyMin is the smallest valid body: kind byte + timestamp.
const frameBodyMin = 9

// FileLog is the real durable log used outside the simulator (the Live
// runtime's response journal). Records are CRC-framed in an append-only
// file; Open detects a torn tail — a record a crash cut short or
// corrupted — truncates it away and never replays it. Checkpoint
// compacts by writing a fresh file (magic + checkpoint record) and
// atomically renaming it over the old one.
//
// FileLog is safe for concurrent use.
type FileLog struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	recovered Recovered
	stats     Stats
}

// OpenFile opens (or creates) a file-backed log, replaying its durable
// contents. A torn or corrupt tail is detected, counted, truncated and
// excluded from the recovered image.
func OpenFile(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dlog: open %s: %w", path, err)
	}
	l := &FileLog{path: path, f: f}
	if err := l.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// replay scans the file, validating every frame; it truncates the file at
// the first invalid byte (the torn tail) and records the durable image.
func (l *FileLog) replay() error {
	info, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("dlog: stat %s: %w", l.path, err)
	}
	if info.Size() == 0 {
		if _, err := l.f.Write(fileMagic); err != nil {
			return fmt.Errorf("dlog: init %s: %w", l.path, err)
		}
		return nil
	}
	buf, err := io.ReadAll(io.NewSectionReader(l.f, 0, info.Size()))
	if err != nil {
		return fmt.Errorf("dlog: read %s: %w", l.path, err)
	}
	if len(buf) < len(fileMagic) {
		// A crash tore even the initial magic write. A strict prefix of
		// the magic is a torn init — truncate and start fresh; anything
		// else is genuinely not ours.
		if string(buf) != string(fileMagic[:len(buf)]) {
			return fmt.Errorf("dlog: %s is not a dlog file", l.path)
		}
		l.recovered.Torn = true
		l.stats.TornTails++
		if err := l.f.Truncate(0); err != nil {
			return fmt.Errorf("dlog: truncate torn init of %s: %w", l.path, err)
		}
		if _, err := l.f.WriteAt(fileMagic, 0); err != nil {
			return fmt.Errorf("dlog: re-init %s: %w", l.path, err)
		}
		if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
			return fmt.Errorf("dlog: seek %s: %w", l.path, err)
		}
		return nil
	}
	if string(buf[:len(fileMagic)]) != string(fileMagic) {
		return fmt.Errorf("dlog: %s is not a dlog file", l.path)
	}
	off := len(fileMagic)
	valid := off
	for {
		rec, next, ok := parseFrame(buf, off)
		if !ok {
			break
		}
		if rec.Kind == KindCheckpoint {
			l.recovered.Checkpoint = rec.Data
			l.recovered.Records = nil
		} else {
			l.recovered.Records = append(l.recovered.Records, rec)
		}
		off = next
		valid = next
	}
	if valid < len(buf) {
		// Torn tail: a frame the crash cut short or corrupted. Truncate it
		// so it is never replayed — and never extended into a frame that
		// would "validate" with fresh appends behind a corrupt prefix.
		l.recovered.Torn = true
		l.stats.TornTails++
		if err := l.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("dlog: truncate torn tail of %s: %w", l.path, err)
		}
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("dlog: seek %s: %w", l.path, err)
	}
	return nil
}

// parseFrame validates one frame at off, returning the record and the
// next offset; ok=false when the bytes at off do not form a complete,
// checksum-valid frame.
func parseFrame(buf []byte, off int) (Record, int, bool) {
	if off+frameHeader > len(buf) {
		return Record{}, 0, false
	}
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	crc := binary.LittleEndian.Uint32(buf[off+4:])
	if n < frameBodyMin || off+frameHeader+n > len(buf) {
		return Record{}, 0, false
	}
	body := buf[off+frameHeader : off+frameHeader+n]
	if crc32.ChecksumIEEE(body) != crc {
		return Record{}, 0, false
	}
	return Record{
		Kind: Kind(body[0]),
		At:   int64(binary.LittleEndian.Uint64(body[1:])),
		Data: append([]byte(nil), body[frameBodyMin:]...),
	}, off + frameHeader + n, true
}

// appendFrame writes one framed record to w.
func appendFrame(w io.Writer, rec Record) error {
	body := make([]byte, frameBodyMin+len(rec.Data))
	body[0] = byte(rec.Kind)
	binary.LittleEndian.PutUint64(body[1:], uint64(rec.At))
	copy(body[frameBodyMin:], rec.Data)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// Recovered returns the durable image Open replayed.
func (l *FileLog) Recovered() Recovered {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recovered
}

// Append writes one record (unsynced: it is durable only after Sync).
func (l *FileLog) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("dlog: %s is closed", l.path)
	}
	if err := appendFrame(l.f, rec); err != nil {
		return fmt.Errorf("dlog: append to %s: %w", l.path, err)
	}
	l.stats.Appends++
	l.stats.AppendedBytes += len(rec.Data)
	return nil
}

// Sync makes every appended record durable (fsync).
func (l *FileLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("dlog: %s is closed", l.path)
	}
	l.stats.Syncs++
	return l.f.Sync()
}

// Checkpoint compacts the log to a single checkpoint record: it writes a
// fresh file beside the old one, fsyncs it, and atomically renames it
// into place — a crash at any byte leaves either the old log or the new
// one, never a mix.
func (l *FileLog) Checkpoint(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("dlog: %s is closed", l.path)
	}
	tmp, err := os.CreateTemp(filepath.Dir(l.path), filepath.Base(l.path)+".ckpt-*")
	if err != nil {
		return fmt.Errorf("dlog: checkpoint %s: %w", l.path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(fileMagic); err == nil {
		err = appendFrame(tmp, Record{Kind: KindCheckpoint, Data: payload})
		if err == nil {
			err = tmp.Sync()
		}
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("dlog: checkpoint %s: %w", l.path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("dlog: checkpoint %s: %w", l.path, err)
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return fmt.Errorf("dlog: checkpoint rename %s: %w", l.path, err)
	}
	// Make the rename itself durable: without the directory fsync a power
	// loss can resurrect the pre-checkpoint file, silently dropping every
	// record synced into the new one afterwards.
	if dir, err := os.Open(filepath.Dir(l.path)); err == nil {
		serr := dir.Sync()
		dir.Close()
		if serr != nil {
			return fmt.Errorf("dlog: fsync dir of %s: %w", l.path, serr)
		}
	} else {
		return fmt.Errorf("dlog: fsync dir of %s: %w", l.path, err)
	}
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("dlog: reopen %s after checkpoint: %w", l.path, err)
	}
	old.Close()
	l.f = f
	l.stats.Checkpoints++
	return nil
}

// Close syncs and closes the file.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Stats returns a copy of the activity counters.
func (l *FileLog) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}
