// Package dlog implements the durable append-only log that gives the
// StateFlow coordinator (and the Live runtime's response journal) a
// crash-survivable memory. Its write contract follows what modern
// append-optimized storage rewards: strictly sequential typed records,
// explicit sync points (group commit), and checkpoint-based compaction
// that rewrites the log to a bounded suffix instead of updating in place.
//
// Two implementations share one record model:
//
//   - SimLog is the deterministic in-simulation backing store. It is
//     virtual-time aware: records appended but not yet covered by a
//     completed sync when the owning component crashes are lost — the
//     first of them is kept as a *torn tail* that recovery must detect
//     and discard, never replay. Everything a completed sync covered
//     survives the crash, exactly like a real device behind fsync.
//
//   - FileLog is the real thing for the Live runtime: CRC-framed records
//     in an append-only file, torn tails detected (and truncated) on
//     open, checkpoints compacted by atomic rewrite-and-rename.
//
// Record kinds are owned by the subsystem writing the log (the dlog layer
// reserves kind 0 for its own checkpoint records); payloads are opaque
// bytes.
package dlog

// Kind tags a record's type. Kind 0 is reserved for the log's own
// checkpoint records; applications use kinds >= 1.
type Kind uint8

// KindCheckpoint marks a checkpoint record: its payload is the compacted
// state summary that subsumes every record before it.
const KindCheckpoint Kind = 0

// Record is one typed log entry. At is the owner-stamped write time in
// nanoseconds — virtual time for simulated owners, wall-clock time for
// the Live runtime — carried in the durable framing so checkpoint
// policies can retain records by age (e.g. pruning a response journal to
// a retention window) without decoding owner payloads. 0 means unstamped
// (records framed before the stamp existed decode as 0).
type Record struct {
	Kind Kind
	At   int64
	Data []byte
}

// Recovered is the durable image a log yields after a crash: the latest
// durable checkpoint payload (nil when none was ever written) plus the
// durable records appended after it, in order. Torn reports whether a
// torn tail — an append a crash interrupted before its sync completed —
// was detected and discarded during recovery.
type Recovered struct {
	Checkpoint []byte
	Records    []Record
	Torn       bool
}

// Stats counts log activity, for observability and tests.
type Stats struct {
	// Appends counts appended records; AppendedBytes their payload bytes.
	Appends       int
	AppendedBytes int
	// Syncs counts sync points (SyncNow + SyncAt on SimLog, Sync on
	// FileLog).
	Syncs int
	// Checkpoints counts checkpoint writes; Compacted the records a
	// checkpoint dropped from the live suffix.
	Checkpoints int
	Compacted   int
	// TornTails counts torn tail records detected (and discarded) across
	// crashes; LostRecords counts fully lost (never even torn) volatile
	// records behind a torn tail.
	TornTails   int
	LostRecords int
}
