package dlog

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func rec(kind Kind, s string) Record { return Record{Kind: kind, Data: []byte(s)} }

// TestSimLogCrashPointSweep generates scripted op sequences (appends,
// blocking syncs, group-commit syncs, checkpoints) from seeds and crashes
// the log at every interesting virtual instant of each script. After
// every crash the recovered image must be exactly the durable prefix:
// records covered by a completed sync, nothing from the volatile tail,
// and a torn tail detected whenever one existed — never replayed.
func TestSimLogCrashPointSweep(t *testing.T) {
	type op struct {
		kind string // append | syncnow | syncat | checkpoint
		at   time.Duration
		done time.Duration // syncat completion
		data string
	}
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var ops []op
		now := time.Duration(0)
		n := 6 + rng.Intn(10)
		for i := 0; i < n; i++ {
			now += time.Duration(rng.Intn(5)+1) * time.Millisecond
			switch rng.Intn(5) {
			case 0:
				ops = append(ops, op{kind: "syncnow", at: now})
			case 1:
				ops = append(ops, op{kind: "syncat", at: now,
					done: now + time.Duration(rng.Intn(4)+1)*time.Millisecond})
			case 2:
				ops = append(ops, op{kind: "checkpoint", at: now, data: fmt.Sprintf("ckpt-%d-%d", seed, i)})
			default:
				ops = append(ops, op{kind: "append", at: now, data: fmt.Sprintf("rec-%d-%d", seed, i)})
			}
		}
		// Crash points: just after every op, and between every op and the
		// next (half-step), so group-commit completions land on both sides.
		var crashes []time.Duration
		for i, o := range ops {
			crashes = append(crashes, o.at)
			next := o.at + 10*time.Millisecond
			if i+1 < len(ops) {
				next = ops[i+1].at
			}
			crashes = append(crashes, o.at+(next-o.at)/2)
		}
		for _, crashAt := range crashes {
			l := NewSimLog()
			// expected durable state, tracked independently.
			var base string
			var durable []string
			var tail []struct {
				data      string
				durableAt time.Duration
			}
			for _, o := range ops {
				if o.at > crashAt {
					break
				}
				switch o.kind {
				case "append":
					l.Append(rec(1, o.data))
					tail = append(tail, struct {
						data      string
						durableAt time.Duration
					}{o.data, -1})
				case "syncnow":
					l.SyncNow(o.at)
					for i := range tail {
						if tail[i].durableAt < 0 || tail[i].durableAt > o.at {
							tail[i].durableAt = o.at
						}
					}
				case "syncat":
					l.SyncAt(o.done)
					for i := range tail {
						if tail[i].durableAt < 0 || tail[i].durableAt > o.done {
							tail[i].durableAt = o.done
						}
					}
				case "checkpoint":
					l.Checkpoint(o.at, []byte(o.data))
					base = o.data
					tail = tail[:0]
				}
			}
			// Records whose sync completed by the crash are durable; the
			// volatile remainder must vanish (first as a torn tail).
			volatile := 0
			for _, r := range tail {
				if r.durableAt >= 0 && r.durableAt <= crashAt {
					durable = append(durable, r.data)
				} else {
					volatile++
				}
			}
			got := l.Recover(crashAt)
			if string(got.Checkpoint) != base {
				t.Fatalf("seed %d crash@%s: checkpoint %q, want %q", seed, crashAt, got.Checkpoint, base)
			}
			if len(got.Records) != len(durable) {
				t.Fatalf("seed %d crash@%s: %d records recovered, want %d (volatile %d)",
					seed, crashAt, len(got.Records), len(durable), volatile)
			}
			for i, r := range got.Records {
				if string(r.Data) != durable[i] {
					t.Fatalf("seed %d crash@%s: record %d = %q, want %q",
						seed, crashAt, i, r.Data, durable[i])
				}
			}
			if got.Torn != (volatile > 0) {
				t.Fatalf("seed %d crash@%s: torn=%v with %d volatile records",
					seed, crashAt, got.Torn, volatile)
			}
		}
	}
}

// TestSimLogSyncAtGroupCommit pins the group-commit window: records are
// volatile until the sync's completion instant, durable at and after it.
func TestSimLogSyncAtGroupCommit(t *testing.T) {
	l := NewSimLog()
	l.Append(rec(1, "a"))
	lsn := l.SyncAt(5 * time.Millisecond)
	if lsn != 1 {
		t.Fatalf("lsn = %d", lsn)
	}
	if got := NewSimLogFrom(l).Recover(4 * time.Millisecond); len(got.Records) != 0 || !got.Torn {
		t.Fatalf("pre-completion crash: %d records, torn=%v", len(got.Records), got.Torn)
	}
	if got := l.Recover(5 * time.Millisecond); len(got.Records) != 1 || got.Torn {
		t.Fatalf("post-completion recover: %d records, torn=%v", len(got.Records), got.Torn)
	}
}

// NewSimLogFrom deep-copies a SimLog so a test can probe alternative
// crash instants of one history.
func NewSimLogFrom(l *SimLog) *SimLog {
	c := &SimLog{base: append([]byte(nil), l.base...), hasBase: l.hasBase, stats: l.stats}
	c.recs = append(c.recs, l.recs...)
	return c
}

// TestFileLogTornTailByteSweep builds a real log file, then replays every
// possible crash prefix: for each byte length, the reopened log must
// recover exactly the records whose frames fit entirely in the prefix,
// flag a torn tail whenever the cut lands mid-frame, and physically
// truncate the torn bytes so they are never replayed or extended.
func TestFileLogTornTailByteSweep(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.dlog")
	l, err := OpenFile(full)
	if err != nil {
		t.Fatal(err)
	}
	type step struct {
		kind Kind
		data string
	}
	steps := []step{{1, "alpha"}, {2, "beta"}, {KindCheckpoint, "ckpt-1"}, {1, "gamma"}, {3, "delta-with-longer-payload"}}
	// frameEnds[i] = file size after i logical steps (checkpoint resets
	// the file via rename, so sizes restart there).
	for _, s := range steps {
		if s.kind == KindCheckpoint {
			if err := l.Checkpoint([]byte(s.data)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := l.Append(Record{Kind: s.kind, Data: []byte(s.data)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Expected record boundaries in the final file: magic, checkpoint
	// frame, then gamma and delta frames.
	var boundaries []int
	off := len(fileMagic)
	boundaries = append(boundaries, off)
	var wantAt []Recovered // durable image per boundary index
	wantAt = append(wantAt, Recovered{})
	img := Recovered{}
	for {
		r, next, ok := parseFrame(buf, off)
		if !ok {
			break
		}
		if r.Kind == KindCheckpoint {
			img.Checkpoint = r.Data
			img.Records = nil
		} else {
			img.Records = append(img.Records, r)
		}
		off = next
		boundaries = append(boundaries, off)
		cp := Recovered{Checkpoint: img.Checkpoint}
		cp.Records = append([]Record(nil), img.Records...)
		wantAt = append(wantAt, cp)
	}
	if off != len(buf) {
		t.Fatalf("full file has trailing garbage at %d/%d", off, len(buf))
	}
	if len(boundaries) != 4 { // magic, ckpt, gamma, delta
		t.Fatalf("unexpected boundary count %d", len(boundaries))
	}

	for cut := 0; cut <= len(buf); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.dlog", cut))
		if err := os.WriteFile(path, buf[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cl, err := OpenFile(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got := cl.Recovered()
		// The durable image is the one at the last boundary <= cut (cuts
		// inside the magic recover to an empty, re-initialized log).
		bi := 0
		for i, b := range boundaries {
			if b <= cut {
				bi = i
			}
		}
		want := wantAt[bi]
		if string(got.Checkpoint) != string(want.Checkpoint) || len(got.Records) != len(want.Records) {
			t.Fatalf("cut %d: recovered ckpt=%q %d records, want ckpt=%q %d records",
				cut, got.Checkpoint, len(got.Records), want.Checkpoint, len(want.Records))
		}
		for i := range want.Records {
			if got.Records[i].Kind != want.Records[i].Kind ||
				!bytes.Equal(got.Records[i].Data, want.Records[i].Data) {
				t.Fatalf("cut %d: record %d = %+v, want %+v", cut, i, got.Records[i], want.Records[i])
			}
		}
		wantTorn := cut != boundaries[bi] && cut != 0 // empty file = fresh, not torn
		if got.Torn != wantTorn {
			t.Fatalf("cut %d: torn=%v, want %v", cut, got.Torn, wantTorn)
		}
		// Torn bytes must be physically gone: appending after recovery and
		// reopening yields the durable records plus the new one, only.
		if err := cl.Append(rec(9, "post")); err != nil {
			t.Fatal(err)
		}
		if err := cl.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenFile(path)
		if err != nil {
			t.Fatalf("cut %d reopen: %v", cut, err)
		}
		got2 := re.Recovered()
		if len(got2.Records) != len(want.Records)+1 || got2.Torn {
			t.Fatalf("cut %d reopen: %d records torn=%v, want %d records torn=false",
				cut, len(got2.Records), got2.Torn, len(want.Records)+1)
		}
		if string(got2.Records[len(got2.Records)-1].Data) != "post" {
			t.Fatalf("cut %d reopen: tail record %q", cut, got2.Records[len(got2.Records)-1].Data)
		}
		re.Close()
	}
}

// TestFileLogTimestampRoundTrip: the owner-stamped write time travels in
// the durable framing (not the payload) and survives append, close and
// replay byte-for-byte — the hook age-based journal retention hangs off.
func TestFileLogTimestampRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ts.dlog")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stamps := []int64{0, 1, 1722470400123456789, -7}
	for i, at := range stamps {
		if err := l.Append(Record{Kind: 1, At: at, Data: []byte(fmt.Sprintf("r%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Recovered()
	if len(got.Records) != len(stamps) {
		t.Fatalf("recovered %d records, want %d", len(got.Records), len(stamps))
	}
	for i, r := range got.Records {
		if r.At != stamps[i] {
			t.Fatalf("record %d: At=%d, want %d", i, r.At, stamps[i])
		}
	}
}

// TestFileLogCorruptTail flips bytes inside the last frame: the CRC must
// catch the corruption and recovery must stop before the bad frame.
func TestFileLogCorruptTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.dlog")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(1, "good")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(1, "evil")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	buf, _ := os.ReadFile(path)
	for i := len(buf) - 3; i < len(buf); i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x40
		p := filepath.Join(dir, fmt.Sprintf("mut-%d.dlog", i))
		os.WriteFile(p, mut, 0o644)
		cl, err := OpenFile(p)
		if err != nil {
			t.Fatal(err)
		}
		got := cl.Recovered()
		if !got.Torn || len(got.Records) != 1 || string(got.Records[0].Data) != "good" {
			t.Fatalf("flip@%d: torn=%v records=%d", i, got.Torn, len(got.Records))
		}
		cl.Close()
	}
}

// TestFileLogRejectsForeignFiles: bytes that are not a (possibly torn)
// dlog are refused rather than truncated or replayed.
func TestFileLogRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"short-garbage.dlog": []byte("XYZ"),
		"long-garbage.dlog":  []byte("definitely not a dlog header"),
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenFile(p); err == nil {
			t.Fatalf("%s: foreign file accepted", name)
		}
	}
}

// TestFileLogCheckpointCompaction: a checkpoint bounds the file and a
// reopen recovers base + post-checkpoint records.
func TestFileLogCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.dlog")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := l.Append(rec(1, fmt.Sprintf("r%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	big, _ := os.Stat(path)
	if err := l.Checkpoint([]byte("summary")); err != nil {
		t.Fatal(err)
	}
	small, _ := os.Stat(path)
	if small.Size() >= big.Size() {
		t.Fatalf("checkpoint did not compact: %d -> %d bytes", big.Size(), small.Size())
	}
	if err := l.Append(rec(2, "after")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Recovered()
	if string(got.Checkpoint) != "summary" || len(got.Records) != 1 ||
		string(got.Records[0].Data) != "after" || got.Torn {
		t.Fatalf("recovered %+v", got)
	}
	if st := re.Stats(); st.TornTails != 0 {
		t.Fatalf("unexpected torn tails: %+v", st)
	}
}
