package lin

import (
	"strings"
	"testing"
)

var cell = Entity{Class: "Cell", Key: "a"}

// good returns a clean three-op history on one entity: w1 bumps 0→1,
// w2 bumps 1→2, r reads version 2.
func good() *History {
	return &History{
		Invokes: []Op{{ID: "w1", Method: "bump"}, {ID: "w2", Method: "bump"}, {ID: "r", Method: "get"}},
		Outcomes: []Outcome{
			{ID: "w1", Obs: []Observation{{Entity: cell, Pre: State{0, 100, ""}, Wrote: true, Delta: 5}}},
			{ID: "w2", Obs: []Observation{{Entity: cell, Pre: State{1, 105, "w1"}, Wrote: true, Delta: 7}}},
			{ID: "r", Obs: []Observation{{Entity: cell, Pre: State{2, 112, "w2"}}}},
		},
		Initial: map[Entity]State{cell: {0, 100, ""}},
	}
}

func TestCleanHistoryPasses(t *testing.T) {
	h := good()
	if err := Check(h); err != nil {
		t.Fatalf("graph mode rejected a clean history: %v", err)
	}
	h.Serial = map[string]int64{"w1": 1, "w2": 2, "r": 3}
	h.Final = map[Entity]State{cell: {2, 112, "w2"}}
	if err := Check(h); err != nil {
		t.Fatalf("serial mode rejected a clean history: %v", err)
	}
}

// expect runs Check and asserts it rejects with the given kind and that
// the counterexample printout names every op in wantOps.
func expect(t *testing.T, h *History, kind string, wantOps ...string) {
	t.Helper()
	err := Check(h)
	if err == nil {
		t.Fatalf("checker accepted a known-bad history (wanted %s)", kind)
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("error is not a *Violation: %v", err)
	}
	if v.Kind != kind {
		t.Fatalf("got kind %q, want %q (%v)", v.Kind, kind, v)
	}
	msg := v.Error()
	for _, op := range wantOps {
		if !strings.Contains(msg, op) {
			t.Fatalf("counterexample %q does not name op %q", msg, op)
		}
	}
	t.Logf("counterexample: %s", msg)
}

func TestLostUpdate(t *testing.T) {
	h := good()
	// w2's update is lost: both writers observed version 0.
	h.Outcomes[1].Obs[0].Pre = State{0, 100, ""}
	h.Outcomes[2].Obs[0].Pre = State{1, 107, "w2"}
	expect(t, h, "lost-update", "w1", "w2")
}

func TestStaleRead(t *testing.T) {
	h := good()
	// r reads version 1 with a value that never existed at version 1.
	h.Outcomes[2].Obs[0].Pre = State{1, 999, "w1"}
	expect(t, h, "stale-read", "r")

	h = good()
	// r reads a version no committed writer installed.
	h.Outcomes[2].Obs[0].Pre = State{7, 112, "w2"}
	expect(t, h, "stale-read", "r")

	h = good()
	// r reads a (version, writer) pair that never existed.
	h.Outcomes[2].Obs[0].Pre = State{2, 112, "ghost"}
	expect(t, h, "stale-read", "r", "ghost")
}

func TestDuplicatedResponse(t *testing.T) {
	h := good()
	h.Outcomes = append(h.Outcomes, Outcome{ID: "w1",
		Obs: []Observation{{Entity: cell, Pre: State{2, 112, "w2"}, Wrote: true, Delta: 5}}})
	expect(t, h, "duplicate-response", "w1")
}

func TestDuplicateEffect(t *testing.T) {
	h := good()
	// w1's effect applied twice on the same entity (re-executed request).
	h.Outcomes[0].Obs = append(h.Outcomes[0].Obs,
		Observation{Entity: cell, Pre: State{2, 112, "w2"}, Wrote: true, Delta: 5})
	expect(t, h, "duplicate-effect", "w1")
}

func TestTornChain(t *testing.T) {
	h := good()
	// Version gap: w2 observed version 3; nothing installed 2..3. The
	// signature of an unreported effect (e.g. a duplicate re-execution
	// whose response was suppressed).
	h.Outcomes[1].Obs[0].Pre = State{3, 105, "w1"}
	h.Outcomes[2].Obs[0].Pre = State{4, 112, "w2"}
	expect(t, h, "torn-chain", "w2")

	h = good()
	// Prev-pointer mismatch: w2 claims "ghost" installed version 1.
	h.Outcomes[1].Obs[0].Pre = State{1, 105, "ghost"}
	expect(t, h, "torn-chain", "w2", "ghost")
}

func TestSerialOrderViolation(t *testing.T) {
	h := good()
	// Commit tap says w2 committed before w1, but w2 observed w1's write.
	h.Serial = map[string]int64{"w1": 2, "w2": 1, "r": 3}
	expect(t, h, "serial-order", "w1", "w2")
}

func TestSerialReadPlacement(t *testing.T) {
	h := good()
	// r committed between w1 and w2 per the tap, yet observed w2's write.
	h.Serial = map[string]int64{"w1": 1, "r": 2, "w2": 3}
	expect(t, h, "serial-order", "r")
}

func TestCycleWithoutTap(t *testing.T) {
	b := Entity{Class: "Cell", Key: "b"}
	// On cell a: w1 then w2. On cell b: w2 then w1. No serial order
	// explains both; graph mode must find the w1 ⇄ w2 cycle.
	h := &History{
		Invokes: []Op{{ID: "w1"}, {ID: "w2"}},
		Outcomes: []Outcome{
			{ID: "w1", Obs: []Observation{
				{Entity: cell, Pre: State{0, 0, ""}, Wrote: true, Delta: 1},
				{Entity: b, Pre: State{1, 1, "w2"}, Wrote: true, Delta: 1},
			}},
			{ID: "w2", Obs: []Observation{
				{Entity: cell, Pre: State{1, 1, "w1"}, Wrote: true, Delta: 1},
				{Entity: b, Pre: State{0, 0, ""}, Wrote: true, Delta: 1},
			}},
		},
	}
	expect(t, h, "cycle", "w1", "w2")
}

func TestSessionOrder(t *testing.T) {
	h := good()
	// r depends on w2 but observed the entity before w2's write.
	h.Invokes[2].Dep = "w2"
	h.Outcomes[2].Obs[0].Pre = State{1, 105, "w1"}
	expect(t, h, "session-order", "w2", "r")
}

func TestFinalStateMismatch(t *testing.T) {
	h := good()
	h.Serial = map[string]int64{"w1": 1, "w2": 2, "r": 3}
	// Backend lost w2's effect after responding.
	h.Final = map[Entity]State{cell: {1, 105, "w1"}}
	expect(t, h, "final-state", "w1", "w2")
}

func TestErroredOpsHaveNoEffects(t *testing.T) {
	h := good()
	h.Invokes = append(h.Invokes, Op{ID: "e"})
	h.Outcomes = append(h.Outcomes, Outcome{ID: "e", Err: "boom",
		Obs: []Observation{{Entity: cell, Pre: State{2, 112, "w2"}, Wrote: true}}})
	expect(t, h, "errored-effect", "e")
}

func TestInvariantHook(t *testing.T) {
	h := good()
	called := false
	err := Check(h, Invariant{Name: "conservation", Check: func(h *History) error {
		called = true
		return &Violation{Kind: "invariant", Detail: "conservation: total drifted by 3"}
	}})
	if !called {
		t.Fatal("invariant hook not called")
	}
	v, ok := err.(*Violation)
	if !ok || v.Kind != "invariant" {
		t.Fatalf("invariant violation not surfaced: %v", err)
	}
}

func TestUnmatchedResponse(t *testing.T) {
	h := good()
	h.Outcomes = append(h.Outcomes, Outcome{ID: "phantom"})
	expect(t, h, "unmatched-response", "phantom")
}
