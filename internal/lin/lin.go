// Package lin is a history-based serializability checker for stateful
// entities: it validates a run from the client-visible request/response
// history alone, with no byte-equality against a reference run.
//
// The contract it checks is the one every backend in this repo promises:
// committed transactions behave as if executed one at a time in some
// total order, each request takes effect exactly once, and a client's
// dependent requests observe its earlier ones (read-your-writes).
//
// The trick that makes checking exact rather than approximate is in the
// workload, not the checker (see internal/chaos/workload): every entity
// carries a version counter and the id of its last writer, and every
// operation returns the (version, last-writer, value) triple it observed
// before applying its own effect. Each committed write therefore names
// its predecessor, so the history itself encodes each entity's write
// chain — an Elle-style recoverability argument. The checker rebuilds
// that chain per entity and rejects:
//
//   - lost update: two committed writes observed the same version
//   - duplicate effect: one op id appears twice in an entity's chain
//     (a request re-executed after its first commit)
//   - torn chain: a version gap, or a prev-writer pointer naming an op
//     that did not install the version below it
//   - stale/torn read: a read observing a (version, writer, value)
//     combination that never existed
//   - serial-order: with a commit tap (History.Serial), version order
//     on some entity disagrees with the global commit order
//   - cycle: without a tap, the precedence graph induced by the write
//     chains, reads, and session edges is cyclic (not serializable)
//   - session-order: a dependent op failed to observe its predecessor's
//     effect (read-your-writes violation)
//   - final-state: the state a backend ends in disagrees with the state
//     the committed history reconstructs (an effect was lost or applied
//     twice after responses were released)
//
// Cross-entity invariants (e.g. conservation under transfers) plug in as
// Invariant hooks evaluated over the same history.
package lin

import (
	"fmt"
	"sort"
	"strings"
)

// Entity identifies one stateful entity instance.
type Entity struct {
	Class string
	Key   string
}

func (e Entity) String() string { return e.Class + "/" + e.Key }

// State is an entity's (version, value, last-writer) triple at a point
// in time — the same triple every workload operation observes.
type State struct {
	Version int64
	Value   int64
	// Last is the op id of the writer that installed Version ("" for
	// the preloaded initial state).
	Last string
}

// Observation is what one operation saw on one entity, decoded from its
// response: the pre-state it read, and whether it installed a new
// version on top of it.
type Observation struct {
	Entity Entity
	// Pre is the state the op observed before its own effect: the
	// entity's version, value, and last-writer at read time.
	Pre State
	// Wrote is true when the op installed version Pre.Version+1 with
	// itself as the last writer.
	Wrote bool
	// Delta is the amount the op added to the entity's value (only
	// meaningful when Wrote).
	Delta int64
}

// Op is one invocation in the history.
type Op struct {
	// ID is the workload-level operation id (also the writer id
	// recorded in entity state).
	ID string
	// Method names the entity method invoked, for printouts.
	Method string
	// Dep is the id of the op this one depends on ("" if none): the
	// client submitted this op only after Dep's response arrived, and
	// may have derived arguments from it. Establishes a session-order
	// (read-your-writes) obligation.
	Dep string
}

// Outcome is one response in the history.
type Outcome struct {
	ID string
	// Err is the application-level error string ("" = committed). An
	// errored op must have had no effects.
	Err string
	// Obs are the per-entity observations decoded from the response
	// value (empty when Err != "").
	Obs []Observation
}

// History is everything the checker consumes. Invokes and Outcomes come
// from the client edge; Initial comes from the preload spec; Serial and
// Final are optional backend taps that tighten the check when present.
type History struct {
	Invokes  []Op
	Outcomes []Outcome
	// Initial is the preloaded state per entity. Entities absent from
	// the map start at State{0, 0, ""}.
	Initial map[Entity]State
	// Serial, when non-nil, maps committed op ids to their global
	// commit sequence number (a backend tap, e.g. the StateFlow
	// coordinator's apply order). Enables the exact serial-order check;
	// without it the checker falls back to precedence-graph acyclicity.
	Serial map[string]int64
	// Final, when non-nil, is the entity state read back from the
	// backend after the run settled; checked against the state the
	// committed history reconstructs.
	Final map[Entity]State
}

// Violation is one checker rejection: a minimal counterexample naming
// the entity and the op ids involved.
type Violation struct {
	// Kind is one of: lost-update, duplicate-effect, torn-chain,
	// stale-read, serial-order, cycle, session-order, final-state,
	// duplicate-response, unmatched-response, errored-effect,
	// invariant.
	Kind   string
	Entity Entity // zero for cross-entity kinds
	Ops    []string
	Detail string
}

func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lin: %s", v.Kind)
	if v.Entity != (Entity{}) {
		fmt.Fprintf(&b, " on %s", v.Entity)
	}
	if len(v.Ops) > 0 {
		fmt.Fprintf(&b, " [ops %s]", strings.Join(v.Ops, " "))
	}
	if v.Detail != "" {
		fmt.Fprintf(&b, ": %s", v.Detail)
	}
	return b.String()
}

// Invariant is a cross-entity predicate evaluated over the whole
// history after the structural checks pass.
type Invariant struct {
	Name  string
	Check func(h *History) error
}

// writer is one committed write on one entity, with the observation
// that produced it.
type writer struct {
	op  string
	obs Observation
}

// Check validates the history and returns the first violation found
// (as a *Violation error), or nil. Structural per-entity checks run
// first, then the ordering check (serial or graph mode), then the
// supplied invariants.
func Check(h *History, invs ...Invariant) error {
	ops := make(map[string]*Op, len(h.Invokes))
	for i := range h.Invokes {
		op := &h.Invokes[i]
		if _, dup := ops[op.ID]; dup {
			return &Violation{Kind: "duplicate-response", Ops: []string{op.ID},
				Detail: "op id invoked twice"}
		}
		ops[op.ID] = op
	}

	// Response sanity: one outcome per op, every outcome matched to an
	// invoke, errored outcomes effect-free.
	seen := make(map[string]*Outcome, len(h.Outcomes))
	for i := range h.Outcomes {
		out := &h.Outcomes[i]
		if _, ok := ops[out.ID]; !ok {
			return &Violation{Kind: "unmatched-response", Ops: []string{out.ID},
				Detail: "response for an op that was never invoked"}
		}
		if prev, dup := seen[out.ID]; dup {
			return &Violation{Kind: "duplicate-response", Ops: []string{out.ID},
				Detail: fmt.Sprintf("two outcomes recorded (%q and %q)", render(prev), render(out))}
		}
		seen[out.ID] = out
		if out.Err != "" && len(out.Obs) > 0 {
			return &Violation{Kind: "errored-effect", Ops: []string{out.ID},
				Detail: fmt.Sprintf("errored op (%s) reported observations", out.Err)}
		}
	}

	// Group committed writes and reads per entity.
	chains := map[Entity][]writer{}
	reads := map[Entity][]writer{} // reuse shape: op + observation
	for id, out := range seen {
		if out.Err != "" {
			continue
		}
		for _, obs := range out.Obs {
			if obs.Wrote {
				chains[obs.Entity] = append(chains[obs.Entity], writer{id, obs})
			} else {
				reads[obs.Entity] = append(reads[obs.Entity], writer{id, obs})
			}
		}
	}

	// installer[e][v] = op id that installed version v on e (writers
	// install Pre.Version+1; the preload installs the initial version).
	installer := map[Entity]map[int64]string{}
	for ent, ws := range chains {
		if v := checkChain(ent, ws, h.initial(ent), installer); v != nil {
			return v
		}
	}
	for ent, rs := range reads {
		if v := checkReads(ent, rs, chains[ent], h.initial(ent), installer[ent]); v != nil {
			return v
		}
	}
	if v := checkSessions(h, ops, seen); v != nil {
		return v
	}
	if h.Serial != nil {
		if v := checkSerial(h, chains, reads); v != nil {
			return v
		}
	} else {
		if v := checkGraph(h, ops, chains, reads, installer); v != nil {
			return v
		}
	}
	if h.Final != nil {
		if v := checkFinal(h, chains); v != nil {
			return v
		}
	}
	for _, inv := range invs {
		if err := inv.Check(h); err != nil {
			if v, ok := err.(*Violation); ok {
				return v
			}
			return &Violation{Kind: "invariant", Detail: inv.Name + ": " + err.Error()}
		}
	}
	return nil
}

func (h *History) initial(e Entity) State {
	if h.Initial != nil {
		if s, ok := h.Initial[e]; ok {
			return s
		}
	}
	return State{}
}

// checkChain validates one entity's committed write chain: versions
// observed by writers must be exactly {v0, v0+1, ..., v0+n-1}, each
// writer's prev pointer must name the op that installed the version it
// observed, the observed values must match the reconstruction, and no
// op id may appear twice.
func checkChain(ent Entity, ws []writer, init State, installer map[Entity]map[int64]string) *Violation {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].obs.Pre.Version != ws[j].obs.Pre.Version {
			return ws[i].obs.Pre.Version < ws[j].obs.Pre.Version
		}
		return ws[i].op < ws[j].op
	})
	inst := map[int64]string{init.Version: init.Last}
	installer[ent] = inst
	byID := map[string]int64{}
	value := init.Value
	next := init.Version
	for _, w := range ws {
		v := w.obs.Pre.Version
		if prior, dup := byID[w.op]; dup {
			return &Violation{Kind: "duplicate-effect", Entity: ent, Ops: []string{w.op},
				Detail: fmt.Sprintf("op wrote twice: at version %d and again at %d (re-executed request)", prior, v)}
		}
		byID[w.op] = v
		switch {
		case v < next:
			other := inst[v+1]
			return &Violation{Kind: "lost-update", Entity: ent, Ops: []string{other, w.op},
				Detail: fmt.Sprintf("both observed version %d; one update is lost", v)}
		case v > next:
			return &Violation{Kind: "torn-chain", Entity: ent, Ops: []string{w.op},
				Detail: fmt.Sprintf("observed version %d but no committed writer installed %d..%d (unreported effect in the chain)", v, next+1, v)}
		}
		if want := inst[v]; w.obs.Pre.Last != want {
			return &Violation{Kind: "torn-chain", Entity: ent, Ops: []string{w.op, w.obs.Pre.Last},
				Detail: fmt.Sprintf("observed last-writer %q at version %d, but %q installed it", w.obs.Pre.Last, v, want)}
		}
		if w.obs.Pre.Value != value {
			return &Violation{Kind: "torn-chain", Entity: ent, Ops: []string{w.op},
				Detail: fmt.Sprintf("observed value %d at version %d, reconstruction says %d", w.obs.Pre.Value, v, value)}
		}
		inst[v+1] = w.op
		value += w.obs.Delta
		next = v + 1
	}
	return nil
}

// checkReads validates committed read observations: each must land on a
// (version, writer, value) state that actually existed on the entity's
// reconstructed chain.
func checkReads(ent Entity, rs []writer, ws []writer, init State, inst map[int64]string) *Violation {
	if inst == nil {
		inst = map[int64]string{init.Version: init.Last}
	}
	// valueAt[v] = entity value while at version v.
	valueAt := map[int64]int64{init.Version: init.Value}
	v, val := init.Version, init.Value
	for _, w := range ws { // already sorted by checkChain
		val += w.obs.Delta
		v = w.obs.Pre.Version + 1
		valueAt[v] = val
	}
	for _, r := range rs {
		want, existed := inst[r.obs.Pre.Version]
		if !existed {
			return &Violation{Kind: "stale-read", Entity: ent, Ops: []string{r.op},
				Detail: fmt.Sprintf("read version %d, which no committed writer installed", r.obs.Pre.Version)}
		}
		if r.obs.Pre.Last != want {
			return &Violation{Kind: "stale-read", Entity: ent, Ops: []string{r.op, r.obs.Pre.Last},
				Detail: fmt.Sprintf("read (version %d, last %q), but %q installed that version", r.obs.Pre.Version, r.obs.Pre.Last, want)}
		}
		if r.obs.Pre.Value != valueAt[r.obs.Pre.Version] {
			return &Violation{Kind: "stale-read", Entity: ent, Ops: []string{r.op},
				Detail: fmt.Sprintf("read value %d at version %d, reconstruction says %d (torn read)", r.obs.Pre.Value, r.obs.Pre.Version, valueAt[r.obs.Pre.Version])}
		}
	}
	return nil
}

// checkSessions enforces read-your-writes along dependency edges: if op
// B declares Dep=A and A committed a write on entity e installing
// version v, then B's observation of e must be at version >= v.
func checkSessions(h *History, ops map[string]*Op, outs map[string]*Outcome) *Violation {
	for id, op := range ops {
		if op.Dep == "" {
			continue
		}
		out, dep := outs[id], outs[op.Dep]
		if out == nil || dep == nil || out.Err != "" || dep.Err != "" {
			continue
		}
		installed := map[Entity]int64{}
		for _, obs := range dep.Obs {
			if obs.Wrote {
				installed[obs.Entity] = obs.Pre.Version + 1
			}
		}
		for _, obs := range out.Obs {
			if v, ok := installed[obs.Entity]; ok && obs.Pre.Version < v {
				return &Violation{Kind: "session-order", Entity: obs.Entity, Ops: []string{op.Dep, id},
					Detail: fmt.Sprintf("%s observed version %d after its dependency %s installed %d (read-your-writes)", id, obs.Pre.Version, op.Dep, v)}
			}
		}
	}
	return nil
}

// checkSerial enforces, given a global commit order, that every
// entity's version order agrees with it: on each entity, commit
// sequence must be strictly increasing along the write chain, and a
// read observing version v must sit between the writes installing v
// and v+1 in the commit order.
func checkSerial(h *History, chains, reads map[Entity][]writer) *Violation {
	for ent, ws := range chains { // sorted by version (checkChain ran first)
		serialOf := func(w writer) (int64, *Violation) {
			s, ok := h.Serial[w.op]
			if !ok {
				return 0, &Violation{Kind: "serial-order", Entity: ent, Ops: []string{w.op},
					Detail: "committed write missing from the backend commit tap"}
			}
			return s, nil
		}
		for i := 1; i < len(ws); i++ {
			a, v := serialOf(ws[i-1])
			if v != nil {
				return v
			}
			b, v := serialOf(ws[i])
			if v != nil {
				return v
			}
			if b <= a {
				return &Violation{Kind: "serial-order", Entity: ent, Ops: []string{ws[i-1].op, ws[i].op},
					Detail: fmt.Sprintf("version order says %s (installed %d) before %s (installed %d), commit order says %d before %d",
						ws[i-1].op, ws[i-1].obs.Pre.Version+1, ws[i].op, ws[i].obs.Pre.Version+1, b, a)}
			}
		}
		// serial window per version: [serial(installer of v), serial(installer of v+1))
		for _, r := range reads[ent] {
			rs, ok := h.Serial[r.op]
			if !ok {
				continue // reads may commit without a tap entry only if the tap skips reads; tolerate
			}
			for _, w := range ws {
				s, v := serialOf(w)
				if v != nil {
					return v
				}
				installedV := w.obs.Pre.Version + 1
				if rs < s && r.obs.Pre.Version >= installedV {
					return &Violation{Kind: "serial-order", Entity: ent, Ops: []string{r.op, w.op},
						Detail: fmt.Sprintf("read committed at %d observed version %d, installed later at %d", rs, r.obs.Pre.Version, s)}
				}
				if rs > s && r.obs.Pre.Version < installedV {
					return &Violation{Kind: "serial-order", Entity: ent, Ops: []string{r.op, w.op},
						Detail: fmt.Sprintf("read committed at %d observed version %d, but %s installed %d earlier at %d", rs, r.obs.Pre.Version, w.op, installedV, s)}
				}
			}
		}
	}
	// Session edges must agree with the commit order too.
	for i := range h.Invokes {
		op := &h.Invokes[i]
		if op.Dep == "" {
			continue
		}
		a, aok := h.Serial[op.Dep]
		b, bok := h.Serial[op.ID]
		if aok && bok && b <= a {
			return &Violation{Kind: "serial-order", Ops: []string{op.Dep, op.ID},
				Detail: fmt.Sprintf("dependent op committed at %d before its dependency at %d", b, a)}
		}
	}
	return nil
}

// checkGraph enforces serializability without a commit tap: build the
// precedence graph (write-chain edges, read placement edges, session
// edges) and reject cycles.
func checkGraph(h *History, ops map[string]*Op, chains, reads map[Entity][]writer, installer map[Entity]map[int64]string) *Violation {
	edges := map[string][]string{}
	addEdge := func(from, to string) {
		if from != "" && to != "" && from != to {
			edges[from] = append(edges[from], to)
		}
	}
	for ent, ws := range chains { // sorted by version
		for i := 1; i < len(ws); i++ {
			addEdge(ws[i-1].op, ws[i].op)
		}
		inst := installer[ent]
		for _, r := range reads[ent] {
			// writer of observed version happens-before the read;
			// the read happens-before the next version's writer.
			addEdge(inst[r.obs.Pre.Version], r.op)
			addEdge(r.op, inst[r.obs.Pre.Version+1])
		}
	}
	for id, op := range ops {
		if op.Dep != "" {
			addEdge(op.Dep, id)
		}
	}
	// Iterative DFS cycle detection, deterministic order.
	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var cycle []string
	var dfs func(n string, path []string) bool
	dfs = func(n string, path []string) bool {
		color[n] = gray
		path = append(path, n)
		next := append([]string(nil), edges[n]...)
		sort.Strings(next)
		for _, m := range next {
			switch color[m] {
			case gray:
				// Found a back edge: slice the cycle out of the path.
				for i, p := range path {
					if p == m {
						cycle = append(append([]string(nil), path[i:]...), m)
						return true
					}
				}
				cycle = []string{m, n, m}
				return true
			case white:
				if dfs(m, path) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white && dfs(n, nil) {
			return &Violation{Kind: "cycle", Ops: cycle,
				Detail: "precedence graph has a cycle: no serial order explains the observed history"}
		}
	}
	return nil
}

// checkFinal compares the backend's settled state against the state
// the committed history reconstructs.
func checkFinal(h *History, chains map[Entity][]writer) *Violation {
	for ent, got := range h.Final {
		init := h.initial(ent)
		version, value, last := init.Version, init.Value, init.Last
		for _, w := range chains[ent] { // sorted by version
			version = w.obs.Pre.Version + 1
			value += w.obs.Delta
			last = w.op
		}
		if got.Version != version || got.Value != value || got.Last != last {
			return &Violation{Kind: "final-state", Entity: ent, Ops: []string{last, got.Last},
				Detail: fmt.Sprintf("backend settled at (version %d, value %d, last %q); committed history reconstructs (version %d, value %d, last %q)",
					got.Version, got.Value, got.Last, version, value, last)}
		}
	}
	return nil
}

func render(o *Outcome) string {
	if o.Err != "" {
		return "err:" + o.Err
	}
	return fmt.Sprintf("%d obs", len(o.Obs))
}
