// Package lexer tokenizes stateful-entity DSL source code. The language is
// a Python-like subset, so the lexer is indentation-aware: it emits NEWLINE
// at the end of each logical line and INDENT/DEDENT tokens when the leading
// whitespace of a line increases or decreases, exactly like CPython's
// tokenizer. Blank lines and comment-only lines produce no layout tokens.
package lexer

import (
	"fmt"
	"strings"
	"unicode"

	"statefulentities.dev/stateflow/internal/lang/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans DSL source text into tokens.
type Lexer struct {
	src    []rune
	pos    int // index into src
	line   int
	col    int
	indent []int // indentation stack, always starts with 0
	pend   []token.Token
	parens int  // depth of (, [, { — newlines are insignificant inside
	atBOL  bool // at beginning of a logical line
	eofed  bool
	err    *Error
}

// New returns a lexer over the given source text.
func New(src string) *Lexer {
	// Normalize line endings so positions are stable across platforms.
	src = strings.ReplaceAll(src, "\r\n", "\n")
	return &Lexer{
		src:    []rune(src),
		line:   1,
		col:    1,
		indent: []int{0},
		atBOL:  true,
	}
}

// Tokenize scans the entire input and returns all tokens including the
// trailing EOF, or the first lexical error encountered.
func Tokenize(src string) ([]token.Token, error) {
	lx := New(src)
	var toks []token.Token
	for {
		t := lx.Next()
		if lx.err != nil {
			return nil, lx.err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

// Err returns the first lexical error, if any.
func (l *Lexer) Err() error {
	if l.err == nil {
		return nil
	}
	return l.err
}

func (l *Lexer) fail(pos token.Pos, format string, args ...any) token.Token {
	if l.err == nil {
		l.err = &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
	return token.Token{Kind: token.ILLEGAL, Pos: pos}
}

func (l *Lexer) here() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// Next returns the next token. After EOF it keeps returning EOF.
func (l *Lexer) Next() token.Token {
	if len(l.pend) > 0 {
		t := l.pend[0]
		l.pend = l.pend[1:]
		return t
	}
	if l.eofed {
		return token.Token{Kind: token.EOF, Pos: l.here()}
	}
	if l.atBOL && l.parens == 0 {
		if t, ok := l.handleLineStart(); ok {
			return t
		}
	}
	l.skipSpacesAndComments()
	if l.pos >= len(l.src) {
		return l.emitEOF()
	}
	r := l.peek()
	switch {
	case r == '\n':
		pos := l.here()
		l.advance()
		if l.parens > 0 {
			return l.Next() // newline insignificant inside brackets
		}
		l.atBOL = true
		return token.Token{Kind: token.NEWLINE, Pos: pos}
	case isIdentStart(r):
		return l.lexIdent()
	case unicode.IsDigit(r):
		return l.lexNumber()
	case r == '"' || r == '\'':
		return l.lexString()
	default:
		return l.lexOperator()
	}
}

// handleLineStart measures indentation at the beginning of a logical line
// and, if it changed, queues INDENT/DEDENT tokens. It returns (tok, true)
// when a layout token should be delivered first.
func (l *Lexer) handleLineStart() (token.Token, bool) {
	for {
		// Measure leading whitespace of this physical line.
		width := 0
		start := l.pos
		for l.pos < len(l.src) {
			switch l.peek() {
			case ' ':
				width++
				l.advance()
			case '\t':
				width += 8 - width%8
				l.advance()
			default:
				goto measured
			}
		}
	measured:
		// Blank or comment-only lines contribute no layout tokens.
		if l.pos >= len(l.src) {
			l.atBOL = false
			return token.Token{}, false
		}
		if l.peek() == '\n' {
			l.advance()
			continue
		}
		if l.peek() == '#' {
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		_ = start
		l.atBOL = false
		cur := l.indent[len(l.indent)-1]
		pos := l.here()
		switch {
		case width > cur:
			l.indent = append(l.indent, width)
			return token.Token{Kind: token.INDENT, Pos: pos}, true
		case width < cur:
			var deds []token.Token
			for len(l.indent) > 1 && l.indent[len(l.indent)-1] > width {
				l.indent = l.indent[:len(l.indent)-1]
				deds = append(deds, token.Token{Kind: token.DEDENT, Pos: pos})
			}
			if l.indent[len(l.indent)-1] != width {
				return l.fail(pos, "unindent does not match any outer indentation level"), true
			}
			l.pend = append(l.pend, deds[1:]...)
			return deds[0], true
		default:
			return token.Token{}, false
		}
	}
}

func (l *Lexer) skipSpacesAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		if r == ' ' || r == '\t' {
			l.advance()
			continue
		}
		if r == '#' {
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		if r == '\\' && l.peekAt(1) == '\n' { // explicit line continuation
			l.advance()
			l.advance()
			continue
		}
		return
	}
}

// emitEOF closes any open indentation blocks, then yields EOF. A NEWLINE is
// synthesized first so parsers always see statement terminators.
func (l *Lexer) emitEOF() token.Token {
	l.eofed = true
	pos := l.here()
	first := token.Token{Kind: token.NEWLINE, Pos: pos}
	for len(l.indent) > 1 {
		l.indent = l.indent[:len(l.indent)-1]
		l.pend = append(l.pend, token.Token{Kind: token.DEDENT, Pos: pos})
	}
	l.pend = append(l.pend, token.Token{Kind: token.EOF, Pos: pos})
	return first
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *Lexer) lexIdent() token.Token {
	pos := l.here()
	var sb strings.Builder
	for l.pos < len(l.src) && isIdentCont(l.peek()) {
		sb.WriteRune(l.advance())
	}
	lit := sb.String()
	if kw, ok := token.Keywords[lit]; ok {
		return token.Token{Kind: kw, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
}

func (l *Lexer) lexNumber() token.Token {
	pos := l.here()
	var sb strings.Builder
	kind := token.INT
	for l.pos < len(l.src) && (unicode.IsDigit(l.peek()) || l.peek() == '_') {
		r := l.advance()
		if r != '_' {
			sb.WriteRune(r)
		}
	}
	if l.peek() == '.' && unicode.IsDigit(l.peekAt(1)) {
		kind = token.FLOAT
		sb.WriteRune(l.advance())
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.advance())
		}
	}
	if isIdentStart(l.peek()) {
		return l.fail(l.here(), "invalid character %q in number literal", l.peek())
	}
	return token.Token{Kind: kind, Lit: sb.String(), Pos: pos}
}

func (l *Lexer) lexString() token.Token {
	pos := l.here()
	quote := l.advance()
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) || l.peek() == '\n' {
			return l.fail(pos, "unterminated string literal")
		}
		r := l.advance()
		if r == quote {
			return token.Token{Kind: token.STRING, Lit: sb.String(), Pos: pos}
		}
		if r == '\\' {
			if l.pos >= len(l.src) {
				return l.fail(pos, "unterminated string literal")
			}
			esc := l.advance()
			switch esc {
			case 'n':
				sb.WriteRune('\n')
			case 't':
				sb.WriteRune('\t')
			case '\\':
				sb.WriteRune('\\')
			case '\'':
				sb.WriteRune('\'')
			case '"':
				sb.WriteRune('"')
			default:
				return l.fail(pos, "unknown escape sequence \\%c", esc)
			}
			continue
		}
		sb.WriteRune(r)
	}
}

func (l *Lexer) lexOperator() token.Token {
	pos := l.here()
	r := l.advance()
	two := func(next rune, k2, k1 token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: k2, Pos: pos}
		}
		return token.Token{Kind: k1, Pos: pos}
	}
	switch r {
	case '+':
		return two('=', token.PLUSEQ, token.PLUS)
	case '-':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.ARROW, Pos: pos}
		}
		return two('=', token.MINUSEQ, token.MINUS)
	case '*':
		return two('=', token.STAREQ, token.STAR)
	case '/':
		if l.peek() == '/' {
			l.advance()
			return token.Token{Kind: token.DSLASH, Pos: pos}
		}
		return two('=', token.SLASHEQ, token.SLASH)
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.NEQ, Pos: pos}
		}
		return l.fail(pos, "unexpected character '!'")
	case '<':
		return two('=', token.LTE, token.LT)
	case '>':
		return two('=', token.GTE, token.GT)
	case '(':
		l.parens++
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		l.parens--
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '[':
		l.parens++
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		l.parens--
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	case '{':
		l.parens++
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		l.parens--
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	case '@':
		return token.Token{Kind: token.AT, Pos: pos}
	default:
		return l.fail(pos, "unexpected character %q", r)
	}
}
