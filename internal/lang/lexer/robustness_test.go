package lexer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"statefulentities.dev/stateflow/internal/lang/token"
)

// The lexer must never panic or loop forever, whatever bytes arrive: it
// either produces a token stream ending in EOF or reports a positioned
// error.

func TestTokenizeNeverPanicsOnRandomBytes(t *testing.T) {
	prop := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		toks, err := Tokenize(string(raw))
		if err != nil {
			return true // positioned error is fine
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizeNeverPanicsOnRandomASCII(t *testing.T) {
	// ASCII soup hits the operator/indentation paths harder than random
	// UTF-8.
	alphabet := []byte(" \t\n\"'#abc01_+-*/%=<>()[]{}.,:@\\!")
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		n := r.Intn(200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on %q: %v", buf, p)
				}
			}()
			_, _ = Tokenize(string(buf))
		}()
	}
}

func TestTokenStreamTerminatesProperty(t *testing.T) {
	// The streaming API must reach EOF in bounded steps relative to input
	// size (no infinite NEWLINE/DEDENT loops).
	prop := func(raw []byte) bool {
		lx := New(string(raw))
		limit := len(raw)*4 + 64
		for i := 0; i < limit; i++ {
			tk := lx.Next()
			if lx.Err() != nil || tk.Kind == token.EOF {
				return true
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPositionsMonotonic(t *testing.T) {
	src := "a = 1\nif a:\n    b = a + 2\n    c = \"s\"\nd = [1, 2]\n"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	prev := token.Pos{Line: 1, Col: 0}
	for _, tk := range toks {
		if tk.Kind == token.EOF || tk.Kind == token.DEDENT ||
			tk.Kind == token.NEWLINE || tk.Kind == token.INDENT {
			continue // layout tokens share the next token's position
		}
		if tk.Pos.Line < prev.Line || (tk.Pos.Line == prev.Line && tk.Pos.Col <= prev.Col) {
			t.Fatalf("position went backwards at %v (prev %v)", tk.Pos, prev)
		}
		prev = tk.Pos
	}
}
