package lexer

import (
	"strings"
	"testing"

	"statefulentities.dev/stateflow/internal/lang/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func wantKinds(t *testing.T, got, want []token.Kind) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("token count: got %d (%v), want %d (%v)", len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestSimpleLine(t *testing.T) {
	wantKinds(t, kinds(t, "x = 1\n"), []token.Kind{
		token.IDENT, token.ASSIGN, token.INT, token.NEWLINE,
		token.NEWLINE, token.EOF,
	})
}

func TestIndentDedent(t *testing.T) {
	src := "if x:\n    y = 1\nz = 2\n"
	wantKinds(t, kinds(t, src), []token.Kind{
		token.KwIf, token.IDENT, token.COLON, token.NEWLINE,
		token.INDENT, token.IDENT, token.ASSIGN, token.INT, token.NEWLINE,
		token.DEDENT, token.IDENT, token.ASSIGN, token.INT, token.NEWLINE,
		token.NEWLINE, token.EOF,
	})
}

func TestNestedDedents(t *testing.T) {
	src := "if a:\n  if b:\n    x = 1\ny = 2\n"
	got := kinds(t, src)
	// Expect two DEDENT tokens before y.
	dedents := 0
	for _, k := range got {
		if k == token.DEDENT {
			dedents++
		}
	}
	if dedents != 2 {
		t.Fatalf("expected 2 dedents, got %d: %v", dedents, got)
	}
}

func TestDedentAtEOF(t *testing.T) {
	src := "if a:\n    x = 1" // no trailing newline
	got := kinds(t, src)
	if got[len(got)-1] != token.EOF {
		t.Fatalf("missing EOF")
	}
	var sawDedent bool
	for _, k := range got {
		if k == token.DEDENT {
			sawDedent = true
		}
	}
	if !sawDedent {
		t.Fatalf("expected DEDENT before EOF: %v", got)
	}
}

func TestBlankAndCommentLines(t *testing.T) {
	src := "x = 1\n\n# comment\n   # indented comment\ny = 2\n"
	got := kinds(t, src)
	for _, k := range got {
		if k == token.INDENT || k == token.DEDENT {
			t.Fatalf("blank/comment lines must not produce layout tokens: %v", got)
		}
	}
}

func TestCommentAtEndOfLine(t *testing.T) {
	wantKinds(t, kinds(t, "x = 1  # trailing\n"), []token.Kind{
		token.IDENT, token.ASSIGN, token.INT, token.NEWLINE,
		token.NEWLINE, token.EOF,
	})
}

func TestNewlinesInsideParens(t *testing.T) {
	src := "f(a,\n  b)\n"
	got := kinds(t, src)
	wantKinds(t, got, []token.Kind{
		token.IDENT, token.LPAREN, token.IDENT, token.COMMA,
		token.IDENT, token.RPAREN, token.NEWLINE,
		token.NEWLINE, token.EOF,
	})
}

func TestOperators(t *testing.T) {
	src := "a += 1\nb -= 2\nc *= 3\nd /= 4\ne == f != g <= h >= i < j > k\nl -> m\nn // o % p\n"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Kind{token.PLUSEQ, token.MINUSEQ, token.STAREQ, token.SLASHEQ,
		token.EQ, token.NEQ, token.LTE, token.GTE, token.LT, token.GT,
		token.ARROW, token.DSLASH, token.PERCENT}
	var ops []token.Kind
	for _, tk := range toks {
		for _, w := range want {
			if tk.Kind == w {
				ops = append(ops, tk.Kind)
			}
		}
	}
	if len(ops) != len(want) {
		t.Fatalf("operators: got %v, want %v", ops, want)
	}
}

func TestStringEscapes(t *testing.T) {
	toks, err := Tokenize(`s = "a\n\t\"b\"\\"` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != token.STRING {
		t.Fatalf("expected string, got %v", toks[2])
	}
	if toks[2].Lit != "a\n\t\"b\"\\" {
		t.Fatalf("escape handling: got %q", toks[2].Lit)
	}
}

func TestSingleQuoteString(t *testing.T) {
	toks, err := Tokenize("s = 'hi'\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != token.STRING || toks[2].Lit != "hi" {
		t.Fatalf("got %v", toks[2])
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokenize("s = \"abc\n"); err == nil {
		t.Fatal("expected error for unterminated string")
	}
}

func TestFloatLiteral(t *testing.T) {
	toks, err := Tokenize("x = 1.5\ny = 10\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != token.FLOAT || toks[2].Lit != "1.5" {
		t.Fatalf("float: got %v", toks[2])
	}
}

func TestBadIndent(t *testing.T) {
	src := "if a:\n    x = 1\n  y = 2\n"
	if _, err := Tokenize(src); err == nil {
		t.Fatal("expected indentation error")
	} else if !strings.Contains(err.Error(), "unindent") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestKeywords(t *testing.T) {
	src := "class def return if elif else for while in not and or True False None pass break continue self\n"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Kind{token.KwClass, token.KwDef, token.KwReturn, token.KwIf,
		token.KwElif, token.KwElse, token.KwFor, token.KwWhile, token.KwIn,
		token.KwNot, token.KwAnd, token.KwOr, token.KwTrue, token.KwFalse,
		token.KwNone, token.KwPass, token.KwBreak, token.KwContinue, token.KwSelf}
	for i, w := range want {
		if toks[i].Kind != w {
			t.Fatalf("keyword %d: got %s want %s", i, toks[i].Kind, w)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a = 1\nbb = 22\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("first token pos: %v", toks[0].Pos)
	}
	// bb on line 2 col 1
	var bb token.Token
	for _, tk := range toks {
		if tk.Lit == "bb" {
			bb = tk
		}
	}
	if bb.Pos.Line != 2 || bb.Pos.Col != 1 {
		t.Fatalf("bb pos: %v", bb.Pos)
	}
}

func TestDecorator(t *testing.T) {
	wantKinds(t, kinds(t, "@entity\nclass A:\n    pass\n"), []token.Kind{
		token.AT, token.IDENT, token.NEWLINE,
		token.KwClass, token.IDENT, token.COLON, token.NEWLINE,
		token.INDENT, token.KwPass, token.NEWLINE,
		token.NEWLINE, token.DEDENT, token.EOF,
	})
}

func TestCRLF(t *testing.T) {
	wantKinds(t, kinds(t, "x = 1\r\ny = 2\r\n"), []token.Kind{
		token.IDENT, token.ASSIGN, token.INT, token.NEWLINE,
		token.IDENT, token.ASSIGN, token.INT, token.NEWLINE,
		token.NEWLINE, token.EOF,
	})
}

func TestUnderscoreInNumber(t *testing.T) {
	toks, err := Tokenize("x = 1_000\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Lit != "1000" {
		t.Fatalf("got %q", toks[2].Lit)
	}
}

func TestLineContinuation(t *testing.T) {
	wantKinds(t, kinds(t, "x = 1 + \\\n2\n"), []token.Kind{
		token.IDENT, token.ASSIGN, token.INT, token.PLUS, token.INT, token.NEWLINE,
		token.NEWLINE, token.EOF,
	})
}
