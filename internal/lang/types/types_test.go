package types

import (
	"strings"
	"testing"

	"statefulentities.dev/stateflow/internal/lang/parser"
)

const figure1 = `
@entity
class Item:
    def __init__(self, item_id: str, price: int):
        self.item_id: str = item_id
        self.stock: int = 0
        self.price: int = price

    def __key__(self) -> str:
        return self.item_id

    def get_price(self) -> int:
        return self.price

    def update_stock(self, amount: int) -> bool:
        self.stock += amount
        return self.stock >= 0

@entity
class User:
    def __init__(self, username: str):
        self.username: str = username
        self.balance: int = 100

    def __key__(self) -> str:
        return self.username

    @transactional
    def buy_item(self, amount: int, item: Item) -> bool:
        total_price: int = amount * item.get_price()
        if self.balance < total_price:
            return False
        available: bool = item.update_stock(0 - amount)
        if not available:
            item.update_stock(amount)
            return False
        self.balance -= total_price
        return True
`

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	mod, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(mod)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not contain %q", err, fragment)
	}
}

func TestFigure1Checks(t *testing.T) {
	info := mustCheck(t, figure1)
	item := info.Class("Item")
	if item.KeyAttr != "item_id" {
		t.Fatalf("Item key attr: %s", item.KeyAttr)
	}
	if len(item.Attrs) != 3 {
		t.Fatalf("Item attrs: %d", len(item.Attrs))
	}
	user := info.Class("User")
	buy := user.Methods["buy_item"]
	if !buy.Transactional {
		t.Fatal("buy_item should be transactional")
	}
	if buy.RemoteCallCount != 3 {
		t.Fatalf("buy_item remote calls: got %d, want 3", buy.RemoteCallCount)
	}
	if buy.VarTypes["total_price"] != Int {
		t.Fatalf("total_price type: %s", buy.VarTypes["total_price"])
	}
	if buy.VarTypes["item"].Kind != KEntity || buy.VarTypes["item"].Entity != "Item" {
		t.Fatalf("item type: %s", buy.VarTypes["item"])
	}
}

func TestRemoteCallResolution(t *testing.T) {
	info := mustCheck(t, figure1)
	var remote, local int
	for _, tgt := range info.Calls {
		if tgt.Remote {
			remote++
		} else {
			local++
		}
	}
	if remote != 3 {
		t.Fatalf("remote calls: got %d, want 3 (get_price + 2x update_stock)", remote)
	}
}

const header = `
@entity
class C:
    def __init__(self, k: str):
        self.k: str = k
        self.n: int = 0
    def __key__(self) -> str:
        return self.k
`

func TestMissingKey(t *testing.T) {
	wantErr(t, `
@entity
class C:
    def __init__(self, k: str):
        self.k: str = k
`, "__key__")
}

func TestMissingInit(t *testing.T) {
	wantErr(t, `
@entity
class C:
    def __key__(self) -> str:
        return self.k
`, "__init__")
}

func TestKeyMustBeAttr(t *testing.T) {
	wantErr(t, `
@entity
class C:
    def __init__(self, k: str):
        self.k: str = k
    def __key__(self) -> str:
        return "constant"
`, "__key__")
}

func TestKeyImmutable(t *testing.T) {
	wantErr(t, header+`
    def rename(self, nk: str) -> bool:
        self.k = nk
        return True
`, "immutable")
}

func TestRecursionRejected(t *testing.T) {
	wantErr(t, header+`
    def fact(self, n: int) -> int:
        if n <= 1:
            return 1
        return n * self.fact(n - 1)
`, "recursive")
}

func TestMutualRecursionRejected(t *testing.T) {
	wantErr(t, header+`
    def a(self, n: int) -> int:
        return self.b(n)
    def b(self, n: int) -> int:
        return self.a(n)
`, "recursive")
}

func TestCrossEntityRecursionRejected(t *testing.T) {
	wantErr(t, `
@entity
class A:
    def __init__(self, k: str):
        self.k: str = k
    def __key__(self) -> str:
        return self.k
    def ping(self, other: B) -> int:
        return other.pong(self)

@entity
class B:
    def __init__(self, k: str):
        self.k: str = k
    def __key__(self) -> str:
        return self.k
    def pong(self, other: A) -> int:
        return other.ping(self)
`, "recursive")
}

func TestUndefinedVariable(t *testing.T) {
	wantErr(t, header+`
    def m(self) -> int:
        return missing
`, "undefined variable")
}

func TestUnknownAttribute(t *testing.T) {
	wantErr(t, header+`
    def m(self) -> int:
        return self.nope
`, "no attribute")
}

func TestAttrAnnotationRequired(t *testing.T) {
	wantErr(t, `
@entity
class C:
    def __init__(self, k: str):
        self.k = k
    def __key__(self) -> str:
        return self.k
`, "type annotation")
}

func TestEntityRefNotStorable(t *testing.T) {
	wantErr(t, `
@entity
class D:
    def __init__(self, k: str):
        self.k: str = k
    def __key__(self) -> str:
        return self.k

@entity
class C:
    def __init__(self, k: str, d: D):
        self.k: str = k
        self.d: D = d
    def __key__(self) -> str:
        return self.k
`, "serializable")
}

func TestReturnTypeMismatch(t *testing.T) {
	wantErr(t, header+`
    def m(self) -> int:
        return "nope"
`, "declares int")
}

func TestArgCountMismatch(t *testing.T) {
	wantErr(t, header+`
    def one(self, x: int) -> int:
        return x
    def m(self) -> int:
        return self.one(1, 2)
`, "expects 1 arguments")
}

func TestArgTypeMismatch(t *testing.T) {
	wantErr(t, header+`
    def one(self, x: int) -> int:
        return x
    def m(self) -> int:
        return self.one("s")
`, "cannot use str")
}

func TestRemoteAttrAccessRejected(t *testing.T) {
	wantErr(t, `
@entity
class D:
    def __init__(self, k: str):
        self.k: str = k
        self.v: int = 0
    def __key__(self) -> str:
        return self.k

@entity
class C:
    def __init__(self, k: str):
        self.k: str = k
    def __key__(self) -> str:
        return self.k
    def m(self, d: D) -> int:
        return d.v
`, "remote entity")
}

func TestConditionMustBeBool(t *testing.T) {
	wantErr(t, header+`
    def m(self) -> int:
        if 1:
            return 1
        return 0
`, "must be bool")
}

func TestForOverNonList(t *testing.T) {
	wantErr(t, header+`
    def m(self) -> int:
        for x in 5:
            pass
        return 0
`, "iterate over lists")
}

func TestNumericWidening(t *testing.T) {
	mustCheck(t, header+`
    def m(self) -> float:
        x: float = 1
        return x + 2
`)
}

func TestDivisionIsFloat(t *testing.T) {
	info := mustCheck(t, header+`
    def m(self) -> float:
        return 4 / 2
`)
	m := info.Class("C").Methods["m"]
	if m.Returns != Float {
		t.Fatalf("returns: %s", m.Returns)
	}
}

func TestListOps(t *testing.T) {
	mustCheck(t, header+`
    def m(self) -> int:
        xs: list[int] = [1, 2, 3]
        xs.append(4)
        total: int = 0
        for x in xs:
            total += x
        return total + len(xs) + xs[0]
`)
}

func TestDictOps(t *testing.T) {
	mustCheck(t, header+`
    def m(self) -> int:
        d: dict[str, int] = {"a": 1}
        d["b"] = 2
        if "a" in d:
            return d["a"]
        return d.get("c", 0)
`)
}

func TestStrConcatAndCompare(t *testing.T) {
	mustCheck(t, header+`
    def m(self) -> str:
        a: str = "x" + "y"
        if a < "z":
            return a
        return str(1)
`)
}

func TestBuiltins(t *testing.T) {
	mustCheck(t, header+`
    def m(self) -> int:
        a: int = abs(0 - 5)
        b: int = min(1, 2)
        c: int = max(3, 4)
        d: int = int(1.5)
        e: float = float(2)
        f: bool = bool(1)
        xs: list[int] = range(10)
        return a + b + c + d + len(xs)
`)
}

func TestUnknownFunction(t *testing.T) {
	wantErr(t, header+`
    def m(self) -> int:
        return frobnicate(1)
`, "unknown function")
}

func TestCtorResolved(t *testing.T) {
	info := mustCheck(t, `
@entity
class D:
    def __init__(self, k: str):
        self.k: str = k
    def __key__(self) -> str:
        return self.k

@entity
class C:
    def __init__(self, k: str):
        self.k: str = k
    def __key__(self) -> str:
        return self.k
    def mk(self, name: str) -> bool:
        d: D = D(name)
        return True
`)
	var sawCtor bool
	for _, tgt := range info.Calls {
		if tgt.Ctor && tgt.Class == "D" {
			sawCtor = true
		}
	}
	if !sawCtor {
		t.Fatal("constructor call not resolved")
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[string]*Type{
		"int":            Int,
		"list[int]":      ListOf(Int),
		"dict[str, int]": DictOf(Str, Int),
		"Item":           EntityOf("Item"),
		"None":           None,
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String(): got %s want %s", got, want)
		}
	}
}

func TestNonEntityClassAllowed(t *testing.T) {
	// Classes without @entity are plain classes; they may be checked but
	// are not required to define __key__.
	mustCheck(t, `
class Helper:
    def __init__(self, k: str):
        self.k: str = k
    def m(self) -> str:
        return self.k
`)
}

func TestDuplicateClass(t *testing.T) {
	wantErr(t, header+"\n"+header, "duplicate class")
}

func TestDuplicateMethod(t *testing.T) {
	wantErr(t, header+`
    def m(self) -> int:
        return 1
    def m(self) -> int:
        return 2
`, "duplicate method")
}

func TestVarTypeConflict(t *testing.T) {
	wantErr(t, header+`
    def m(self) -> int:
        x: int = 1
        x = "s"
        return x
`, "cannot assign str")
}

func TestWalkRemoteCallsInControlFlow(t *testing.T) {
	info := mustCheck(t, `
@entity
class D:
    def __init__(self, k: str):
        self.k: str = k
        self.v: int = 0
    def __key__(self) -> str:
        return self.k
    def bump(self) -> int:
        self.v += 1
        return self.v

@entity
class C:
    def __init__(self, k: str):
        self.k: str = k
    def __key__(self) -> str:
        return self.k
    def m(self, d: D, xs: list[int]) -> int:
        total: int = 0
        for x in xs:
            total += d.bump()
        if total > 10:
            total += d.bump()
        return total
`)
	m := info.Class("C").Methods["m"]
	if m.RemoteCallCount != 2 {
		t.Fatalf("remote calls in control flow: got %d, want 2", m.RemoteCallCount)
	}
}
