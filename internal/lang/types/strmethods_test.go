package types

import "testing"

func TestStrMethodsTyped(t *testing.T) {
	mustCheck(t, header+`
    def m(self) -> str:
        a: str = "Ab Cd".upper()
        b: str = a.lower()
        return b.strip()
`)
}

func TestStrMethodUnknown(t *testing.T) {
	wantErr(t, header+`
    def m(self) -> str:
        return "x".frobnicate()
`, "str has no method")
}

func TestStrMethodArity(t *testing.T) {
	wantErr(t, header+`
    def m(self) -> str:
        return "x".upper(1)
`, "takes no arguments")
}

func TestStrMethodOnAttr(t *testing.T) {
	mustCheck(t, header+`
    def m(self) -> str:
        return self.k.upper()
`)
}
