// Package types implements the static type system of the stateful-entity
// DSL and the first static-analysis pass of the StateFlow compiler (§2.1,
// §2.2): it extracts each class's attributes, method signatures and type
// hints, verifies the programming-model restrictions (mandatory type hints,
// mandatory __key__ for entities, no recursion, immutable keys), and
// resolves every method call to its target, classifying calls on other
// entities as remote.
package types

import (
	"fmt"
	"sort"
	"strings"

	"statefulentities.dev/stateflow/internal/lang/ast"
	"statefulentities.dev/stateflow/internal/lang/token"
)

// Kind enumerates the kinds of DSL types.
type Kind int

// Type kinds.
const (
	KInvalid Kind = iota
	KInt
	KFloat
	KStr
	KBool
	KNone
	KList
	KDict
	KEntity
	KAny // used for empty containers and gradual spots
)

// Type is a DSL type. Types are immutable once constructed; the package
// exposes singletons for scalars.
type Type struct {
	Kind   Kind
	Elem   *Type  // list element / dict value
	Key    *Type  // dict key
	Entity string // class name for KEntity
}

// Scalar singletons.
var (
	Int     = &Type{Kind: KInt}
	Float   = &Type{Kind: KFloat}
	Str     = &Type{Kind: KStr}
	Bool    = &Type{Kind: KBool}
	None    = &Type{Kind: KNone}
	Any     = &Type{Kind: KAny}
	Invalid = &Type{Kind: KInvalid}
)

// ListOf returns the list type with the given element type.
func ListOf(elem *Type) *Type { return &Type{Kind: KList, Elem: elem} }

// DictOf returns the dict type with the given key and value types.
func DictOf(key, val *Type) *Type { return &Type{Kind: KDict, Key: key, Elem: val} }

// EntityOf returns the entity reference type for a class.
func EntityOf(class string) *Type { return &Type{Kind: KEntity, Entity: class} }

// String renders the type in annotation syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KStr:
		return "str"
	case KBool:
		return "bool"
	case KNone:
		return "None"
	case KList:
		return fmt.Sprintf("list[%s]", t.Elem)
	case KDict:
		return fmt.Sprintf("dict[%s, %s]", t.Key, t.Elem)
	case KEntity:
		return t.Entity
	case KAny:
		return "any"
	default:
		return "<invalid>"
	}
}

// IsEntity reports whether t is an entity reference.
func (t *Type) IsEntity() bool { return t != nil && t.Kind == KEntity }

// IsNumeric reports whether t is int or float.
func (t *Type) IsNumeric() bool {
	return t != nil && (t.Kind == KInt || t.Kind == KFloat)
}

// Equal reports structural type equality. Any is equal to everything,
// supporting empty-container literals.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind == KAny || o.Kind == KAny {
		return true
	}
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KList:
		return t.Elem.Equal(o.Elem)
	case KDict:
		return t.Key.Equal(o.Key) && t.Elem.Equal(o.Elem)
	case KEntity:
		return t.Entity == o.Entity
	}
	return true
}

// AssignableTo reports whether a value of type t can be assigned to a slot
// of type dst. Int widens to float.
func (t *Type) AssignableTo(dst *Type) bool {
	if t.Equal(dst) {
		return true
	}
	if t != nil && dst != nil && t.Kind == KInt && dst.Kind == KFloat {
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Checked program metadata

// Attr is a class attribute discovered in __init__ (self.X assignments).
type Attr struct {
	Name string
	Type *Type
}

// Param is a typed method parameter.
type Param struct {
	Name string
	Type *Type
}

// Method is the checked signature and body of a method.
type Method struct {
	Class         *Class
	Name          string
	Params        []Param
	Returns       *Type // None when the method declares no return type
	Def           *ast.FuncDef
	Transactional bool
	// RemoteCallCount is the number of remote-call sites in the body; a
	// method with zero remote calls is a "simple function" (§2.3) that
	// never needs splitting.
	RemoteCallCount int
	// VarTypes maps every local variable (params included) to its
	// statically inferred type.
	VarTypes map[string]*Type
}

// Param looks up a parameter by name.
func (m *Method) Param(name string) (Param, bool) {
	for _, p := range m.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// QName is the method's qualified name Class.method.
func (m *Method) QName() string { return m.Class.Name + "." + m.Name }

// Class is the checked metadata of a class definition.
type Class struct {
	Name        string
	Entity      bool
	Def         *ast.ClassDef
	Attrs       []Attr // ordered by first assignment in __init__
	KeyAttr     string // attribute returned by __key__ (entities only)
	Methods     map[string]*Method
	MethodOrder []string
}

// Attr looks up an attribute by name.
func (c *Class) Attr(name string) (*Type, bool) {
	for _, a := range c.Attrs {
		if a.Name == name {
			return a.Type, true
		}
	}
	return nil, false
}

// CallTarget resolves a call expression to its target method.
type CallTarget struct {
	Class  string
	Method string
	Remote bool // call on another entity (crosses operator boundary, §2.3)
	Ctor   bool // entity constructor call ClassName(...)
}

// Info is the result of checking a module: the symbol tables consumed by
// later compiler passes.
type Info struct {
	Module  *ast.Module
	Classes map[string]*Class
	Order   []string // class declaration order
	// Calls maps every resolved method/constructor call site.
	Calls map[*ast.Call]CallTarget
	// ExprTypes records the inferred type of every expression.
	ExprTypes map[ast.Expr]*Type
}

// Class returns the checked class by name, or nil.
func (i *Info) Class(name string) *Class { return i.Classes[name] }

// Error is a semantic (type) error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: type error: %s", e.Pos, e.Msg) }

// ---------------------------------------------------------------------------
// Checker

type checker struct {
	info *Info
	errs []error
}

// Check runs the static analysis pass over a parsed module.
func Check(mod *ast.Module) (*Info, error) {
	c := &checker{info: &Info{
		Module:    mod,
		Classes:   map[string]*Class{},
		Calls:     map[*ast.Call]CallTarget{},
		ExprTypes: map[ast.Expr]*Type{},
	}}
	c.collectClasses(mod)
	if len(c.errs) > 0 {
		return nil, c.errs[0]
	}
	for _, name := range c.info.Order {
		c.checkClass(c.info.Classes[name])
	}
	if len(c.errs) > 0 {
		return nil, c.errs[0]
	}
	c.checkNoRecursion()
	c.checkKeyImmutability()
	if len(c.errs) > 0 {
		return nil, c.errs[0]
	}
	return c.info, nil
}

func (c *checker) errf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// collectClasses registers class names and signatures so classes can
// reference each other regardless of declaration order.
func (c *checker) collectClasses(mod *ast.Module) {
	for _, cd := range mod.Classes {
		if _, dup := c.info.Classes[cd.Name]; dup {
			c.errf(cd.Pos(), "duplicate class %s", cd.Name)
			continue
		}
		cls := &Class{
			Name:    cd.Name,
			Entity:  cd.IsEntity(),
			Def:     cd,
			Methods: map[string]*Method{},
		}
		c.info.Classes[cd.Name] = cls
		c.info.Order = append(c.info.Order, cd.Name)
	}
	for _, cd := range mod.Classes {
		cls := c.info.Classes[cd.Name]
		if cls == nil {
			continue
		}
		for _, fd := range cd.Methods {
			if _, dup := cls.Methods[fd.Name]; dup {
				c.errf(fd.Pos(), "duplicate method %s.%s", cd.Name, fd.Name)
				continue
			}
			m := &Method{
				Class:         cls,
				Name:          fd.Name,
				Def:           fd,
				Transactional: fd.IsTransactional() || cd.IsTransactional(),
				VarTypes:      map[string]*Type{},
			}
			for _, p := range fd.Params {
				t := c.resolveType(p.Type)
				if t == Invalid {
					c.errf(p.Pos(), "parameter %s of %s.%s has unknown type %s",
						p.Name, cd.Name, fd.Name, p.Type)
				}
				m.Params = append(m.Params, Param{Name: p.Name, Type: t})
			}
			if fd.Returns != nil {
				rt := c.resolveType(fd.Returns)
				if rt == Invalid {
					c.errf(fd.Returns.Pos(), "return type of %s.%s is unknown: %s",
						cd.Name, fd.Name, fd.Returns)
				}
				m.Returns = rt
			} else {
				m.Returns = None
			}
			cls.Methods[fd.Name] = m
			cls.MethodOrder = append(cls.MethodOrder, fd.Name)
		}
	}
}

func (c *checker) resolveType(te *ast.TypeExpr) *Type {
	if te == nil {
		return None
	}
	switch te.Name {
	case "int":
		return Int
	case "float":
		return Float
	case "str":
		return Str
	case "bool":
		return Bool
	case "None":
		return None
	case "list":
		if len(te.Args) != 1 {
			return Invalid
		}
		elem := c.resolveType(te.Args[0])
		if elem == Invalid {
			return Invalid
		}
		return ListOf(elem)
	case "dict":
		if len(te.Args) != 2 {
			return Invalid
		}
		k := c.resolveType(te.Args[0])
		v := c.resolveType(te.Args[1])
		if k == Invalid || v == Invalid {
			return Invalid
		}
		return DictOf(k, v)
	default:
		if _, ok := c.info.Classes[te.Name]; ok {
			return EntityOf(te.Name)
		}
		return Invalid
	}
}

func (c *checker) checkClass(cls *Class) {
	init := cls.Methods["__init__"]
	if init == nil {
		c.errf(cls.Def.Pos(), "class %s must define __init__", cls.Name)
		return
	}
	c.collectAttrs(cls, init)
	if cls.Entity {
		key := cls.Methods["__key__"]
		if key == nil {
			c.errf(cls.Def.Pos(), "entity %s must define __key__ (§2.2)", cls.Name)
			return
		}
		c.checkKeyMethod(cls, key)
	}
	for _, name := range cls.MethodOrder {
		c.checkMethod(cls.Methods[name])
	}
}

// collectAttrs walks __init__ and records every annotated self.X assignment
// as a class attribute. Attributes must be declared (assigned) at the top
// level of __init__ with a type annotation so the full state schema is
// statically known.
func (c *checker) collectAttrs(cls *Class, init *Method) {
	for _, s := range init.Def.Body {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			continue
		}
		attr, ok := as.Target.(*ast.Attr)
		if !ok {
			continue
		}
		if _, isSelf := attr.Recv.(*ast.SelfRef); !isSelf {
			continue
		}
		if _, dup := cls.Attr(attr.Field); dup {
			c.errf(as.Pos(), "attribute self.%s assigned twice in %s.__init__", attr.Field, cls.Name)
			continue
		}
		var t *Type
		if as.Type != nil {
			t = c.resolveType(as.Type)
			if t == Invalid {
				c.errf(as.Type.Pos(), "attribute self.%s has unknown type %s", attr.Field, as.Type)
				t = Any
			}
		} else {
			c.errf(as.Pos(), "attribute self.%s in %s.__init__ requires a type annotation (§2.2 static type hints)", attr.Field, cls.Name)
			t = Any
		}
		if t.IsEntity() {
			c.errf(as.Pos(), "attribute self.%s: entity references cannot be stored in state (state must be serializable, §2.2)", attr.Field)
		}
		cls.Attrs = append(cls.Attrs, Attr{Name: attr.Field, Type: t})
	}
	if len(cls.Attrs) == 0 {
		c.errf(init.Def.Pos(), "class %s declares no attributes in __init__", cls.Name)
	}
}

// checkKeyMethod validates that __key__ is `return self.<attr>` for an
// existing attribute of type str or int.
func (c *checker) checkKeyMethod(cls *Class, key *Method) {
	if len(key.Params) != 0 {
		c.errf(key.Def.Pos(), "%s.__key__ must take no parameters", cls.Name)
		return
	}
	if len(key.Def.Body) != 1 {
		c.errf(key.Def.Pos(), "%s.__key__ must be a single return of a state attribute", cls.Name)
		return
	}
	ret, ok := key.Def.Body[0].(*ast.ReturnStmt)
	if !ok || ret.Value == nil {
		c.errf(key.Def.Pos(), "%s.__key__ must return a state attribute", cls.Name)
		return
	}
	attr, ok := ret.Value.(*ast.Attr)
	if !ok {
		c.errf(ret.Pos(), "%s.__key__ must return self.<attribute>", cls.Name)
		return
	}
	if _, isSelf := attr.Recv.(*ast.SelfRef); !isSelf {
		c.errf(ret.Pos(), "%s.__key__ must return self.<attribute>", cls.Name)
		return
	}
	t, exists := cls.Attr(attr.Field)
	if !exists {
		c.errf(ret.Pos(), "%s.__key__ returns unknown attribute self.%s", cls.Name, attr.Field)
		return
	}
	if t.Kind != KStr && t.Kind != KInt {
		c.errf(ret.Pos(), "%s key attribute self.%s must be str or int, got %s", cls.Name, attr.Field, t)
	}
	cls.KeyAttr = attr.Field
}

// methodScope tracks local variable types while checking a body.
type methodScope struct {
	c      *checker
	cls    *Class
	m      *Method
	vars   map[string]*Type
	inInit bool
}

func (c *checker) checkMethod(m *Method) {
	sc := &methodScope{
		c:      c,
		cls:    m.Class,
		m:      m,
		vars:   map[string]*Type{},
		inInit: m.IsInit(),
	}
	for _, p := range m.Params {
		if _, dup := sc.vars[p.Name]; dup {
			c.errf(m.Def.Pos(), "duplicate parameter %s in %s", p.Name, m.QName())
		}
		sc.vars[p.Name] = p.Type
	}
	sc.checkStmts(m.Def.Body)
	// Record final variable types for later passes.
	for k, v := range sc.vars {
		m.VarTypes[k] = v
	}
}

// IsInit reports whether the method is __init__.
func (m *Method) IsInit() bool { return m.Name == "__init__" }

func (sc *methodScope) checkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		sc.checkStmt(s)
	}
}

func (sc *methodScope) checkStmt(s ast.Stmt) {
	c := sc.c
	switch st := s.(type) {
	case *ast.AssignStmt:
		vt := sc.exprType(st.Value)
		switch target := st.Target.(type) {
		case *ast.Name:
			var declared *Type
			if st.Type != nil {
				declared = c.resolveType(st.Type)
				if declared == Invalid {
					c.errf(st.Type.Pos(), "unknown type %s", st.Type)
					declared = Any
				}
				if !vt.AssignableTo(declared) {
					c.errf(st.Pos(), "cannot assign %s to %s (declared %s)", vt, target.Ident, declared)
				}
			} else if prev, ok := sc.vars[target.Ident]; ok {
				if !vt.AssignableTo(prev) {
					c.errf(st.Pos(), "cannot assign %s to %s (previously %s)", vt, target.Ident, prev)
				}
				declared = prev
			} else {
				declared = vt
			}
			sc.vars[target.Ident] = declared
		case *ast.Attr:
			if sc.inInit {
				return // attribute declarations already collected
			}
			at, ok := sc.cls.Attr(target.Field)
			if !ok {
				c.errf(st.Pos(), "%s has no attribute self.%s (attributes must be declared in __init__)", sc.cls.Name, target.Field)
				return
			}
			if !vt.AssignableTo(at) {
				c.errf(st.Pos(), "cannot assign %s to self.%s (%s)", vt, target.Field, at)
			}
		case *ast.Index:
			rt := sc.exprType(target.Recv)
			it := sc.exprType(target.Idx)
			switch rt.Kind {
			case KList:
				if it.Kind != KInt && it.Kind != KAny {
					c.errf(st.Pos(), "list index must be int, got %s", it)
				}
				if !vt.AssignableTo(rt.Elem) {
					c.errf(st.Pos(), "cannot store %s in %s", vt, rt)
				}
			case KDict:
				if !it.AssignableTo(rt.Key) {
					c.errf(st.Pos(), "dict key must be %s, got %s", rt.Key, it)
				}
				if !vt.AssignableTo(rt.Elem) {
					c.errf(st.Pos(), "cannot store %s in %s", vt, rt)
				}
			case KAny:
			default:
				c.errf(st.Pos(), "cannot index-assign into %s", rt)
			}
		}
	case *ast.AugAssignStmt:
		vt := sc.exprType(st.Value)
		var tt *Type
		switch target := st.Target.(type) {
		case *ast.Name:
			t, ok := sc.vars[target.Ident]
			if !ok {
				c.errf(st.Pos(), "undefined variable %s", target.Ident)
				return
			}
			tt = t
		case *ast.Attr:
			t, ok := sc.cls.Attr(target.Field)
			if !ok {
				c.errf(st.Pos(), "%s has no attribute self.%s", sc.cls.Name, target.Field)
				return
			}
			tt = t
		default:
			c.errf(st.Pos(), "invalid augmented assignment target")
			return
		}
		if st.Op == token.PLUS && tt.Kind == KStr && vt.Kind == KStr {
			return
		}
		if st.Op == token.PLUS && tt.Kind == KList && vt.Kind == KList {
			return
		}
		if !tt.IsNumeric() || !vt.IsNumeric() {
			c.errf(st.Pos(), "augmented assignment needs numeric operands, got %s and %s", tt, vt)
		}
	case *ast.ExprStmt:
		sc.exprType(st.Value)
	case *ast.ReturnStmt:
		if sc.m.IsInit() {
			if st.Value != nil {
				c.errf(st.Pos(), "__init__ cannot return a value")
			}
			return
		}
		var vt *Type = None
		if st.Value != nil {
			vt = sc.exprType(st.Value)
		}
		if !vt.AssignableTo(sc.m.Returns) {
			c.errf(st.Pos(), "%s returns %s but declares %s", sc.m.QName(), vt, sc.m.Returns)
		}
	case *ast.IfStmt:
		ct := sc.exprType(st.Cond)
		if ct.Kind != KBool && ct.Kind != KAny {
			c.errf(st.Cond.Pos(), "if condition must be bool, got %s", ct)
		}
		sc.checkStmts(st.Then)
		sc.checkStmts(st.Else)
	case *ast.ForStmt:
		it := sc.exprType(st.Iterable)
		var elem *Type = Any
		switch it.Kind {
		case KList:
			elem = it.Elem
		case KAny:
		default:
			c.errf(st.Iterable.Pos(), "for-loops iterate over lists, got %s (§2.2)", it)
		}
		prev, had := sc.vars[st.Var]
		sc.vars[st.Var] = elem
		sc.checkStmts(st.Body)
		if had {
			sc.vars[st.Var] = prev
		}
	case *ast.WhileStmt:
		ct := sc.exprType(st.Cond)
		if ct.Kind != KBool && ct.Kind != KAny {
			c.errf(st.Cond.Pos(), "while condition must be bool, got %s", ct)
		}
		sc.checkStmts(st.Body)
	case *ast.PassStmt, *ast.BreakStmt, *ast.ContinueStmt:
	}
}

// exprType infers and records the type of an expression.
func (sc *methodScope) exprType(e ast.Expr) *Type {
	t := sc.exprType1(e)
	sc.c.info.ExprTypes[e] = t
	return t
}

func (sc *methodScope) exprType1(e ast.Expr) *Type {
	c := sc.c
	switch x := e.(type) {
	case *ast.IntLit:
		return Int
	case *ast.FloatLit:
		return Float
	case *ast.StrLit:
		return Str
	case *ast.BoolLit:
		return Bool
	case *ast.NoneLit:
		return None
	case *ast.SelfRef:
		return EntityOf(sc.cls.Name)
	case *ast.Name:
		if t, ok := sc.vars[x.Ident]; ok {
			return t
		}
		c.errf(x.Pos(), "undefined variable %s", x.Ident)
		return Invalid
	case *ast.Attr:
		rt := sc.exprType(x.Recv)
		if _, isSelf := x.Recv.(*ast.SelfRef); isSelf {
			if t, ok := sc.cls.Attr(x.Field); ok {
				return t
			}
			if sc.inInit {
				// Reading an attribute being built in __init__.
				return Any
			}
			c.errf(x.Pos(), "%s has no attribute self.%s", sc.cls.Name, x.Field)
			return Invalid
		}
		if rt.IsEntity() {
			c.errf(x.Pos(), "cannot read attribute %s of remote entity %s directly; call a method instead (§2.3)", x.Field, rt.Entity)
			return Invalid
		}
		c.errf(x.Pos(), "type %s has no attributes", rt)
		return Invalid
	case *ast.ListLit:
		var elem *Type = Any
		for i, el := range x.Elems {
			et := sc.exprType(el)
			if i == 0 {
				elem = et
			} else if !et.Equal(elem) {
				c.errf(el.Pos(), "list elements must share one type; got %s and %s", elem, et)
			}
		}
		return ListOf(elem)
	case *ast.DictLit:
		var kt, vt *Type = Any, Any
		for i := range x.Keys {
			k := sc.exprType(x.Keys[i])
			v := sc.exprType(x.Values[i])
			if i == 0 {
				kt, vt = k, v
			} else {
				if !k.Equal(kt) {
					c.errf(x.Keys[i].Pos(), "dict keys must share one type")
				}
				if !v.Equal(vt) {
					c.errf(x.Values[i].Pos(), "dict values must share one type")
				}
			}
		}
		return DictOf(kt, vt)
	case *ast.UnaryOp:
		ot := sc.exprType(x.Operand)
		switch x.Op {
		case token.KwNot:
			if ot.Kind != KBool && ot.Kind != KAny {
				c.errf(x.Pos(), "not requires bool, got %s", ot)
			}
			return Bool
		case token.MINUS:
			if !ot.IsNumeric() && ot.Kind != KAny {
				c.errf(x.Pos(), "unary minus requires a number, got %s", ot)
			}
			return ot
		}
		return Invalid
	case *ast.BinOp:
		return sc.binOpType(x)
	case *ast.Index:
		rt := sc.exprType(x.Recv)
		it := sc.exprType(x.Idx)
		switch rt.Kind {
		case KList:
			if it.Kind != KInt && it.Kind != KAny {
				c.errf(x.Idx.Pos(), "list index must be int, got %s", it)
			}
			return rt.Elem
		case KDict:
			if !it.AssignableTo(rt.Key) {
				c.errf(x.Idx.Pos(), "dict key must be %s, got %s", rt.Key, it)
			}
			return rt.Elem
		case KStr:
			if it.Kind != KInt && it.Kind != KAny {
				c.errf(x.Idx.Pos(), "string index must be int, got %s", it)
			}
			return Str
		case KAny:
			return Any
		default:
			c.errf(x.Pos(), "cannot index into %s", rt)
			return Invalid
		}
	case *ast.Call:
		return sc.callType(x)
	}
	return Invalid
}

func (sc *methodScope) binOpType(x *ast.BinOp) *Type {
	c := sc.c
	lt := sc.exprType(x.Left)
	rt := sc.exprType(x.Right)
	switch x.Op {
	case token.KwAnd, token.KwOr:
		if (lt.Kind != KBool && lt.Kind != KAny) || (rt.Kind != KBool && rt.Kind != KAny) {
			c.errf(x.Pos(), "%s requires bool operands, got %s and %s", x.Op, lt, rt)
		}
		return Bool
	case token.EQ, token.NEQ:
		return Bool
	case token.LT, token.LTE, token.GT, token.GTE:
		ok := (lt.IsNumeric() && rt.IsNumeric()) ||
			(lt.Kind == KStr && rt.Kind == KStr) ||
			lt.Kind == KAny || rt.Kind == KAny
		if !ok {
			c.errf(x.Pos(), "cannot compare %s with %s", lt, rt)
		}
		return Bool
	case token.KwIn:
		switch rt.Kind {
		case KList:
			if !lt.AssignableTo(rt.Elem) {
				c.errf(x.Pos(), "cannot test %s membership in %s", lt, rt)
			}
		case KDict:
			if !lt.AssignableTo(rt.Key) {
				c.errf(x.Pos(), "cannot test %s membership in %s", lt, rt)
			}
		case KStr:
			if lt.Kind != KStr {
				c.errf(x.Pos(), "cannot test %s membership in str", lt)
			}
		case KAny:
		default:
			c.errf(x.Pos(), "in requires list, dict or str, got %s", rt)
		}
		return Bool
	case token.PLUS:
		if lt.Kind == KStr && rt.Kind == KStr {
			return Str
		}
		if lt.Kind == KList && rt.Kind == KList && lt.Elem.Equal(rt.Elem) {
			return lt
		}
		fallthrough
	case token.MINUS, token.STAR, token.SLASH, token.DSLASH, token.PERCENT:
		if lt.Kind == KAny || rt.Kind == KAny {
			return Any
		}
		if !lt.IsNumeric() || !rt.IsNumeric() {
			c.errf(x.Pos(), "operator %s requires numbers, got %s and %s", x.Op, lt, rt)
			return Invalid
		}
		if x.Op == token.SLASH {
			return Float
		}
		if lt.Kind == KFloat || rt.Kind == KFloat {
			return Float
		}
		return Int
	}
	return Invalid
}

func (sc *methodScope) callType(x *ast.Call) *Type {
	c := sc.c
	if x.Recv == nil {
		// Builtin or constructor.
		if cls, ok := c.info.Classes[x.Func]; ok {
			init := cls.Methods["__init__"]
			sc.checkArgs(x, init, x.Args)
			c.info.Calls[x] = CallTarget{Class: cls.Name, Method: "__init__", Remote: cls.Name != sc.cls.Name, Ctor: true}
			return EntityOf(cls.Name)
		}
		return sc.builtinType(x)
	}
	rt := sc.exprType(x.Recv)
	switch rt.Kind {
	case KEntity:
		cls := c.info.Classes[rt.Entity]
		if cls == nil {
			c.errf(x.Pos(), "unknown class %s", rt.Entity)
			return Invalid
		}
		m := cls.Methods[x.Func]
		if m == nil {
			c.errf(x.Pos(), "%s has no method %s", cls.Name, x.Func)
			return Invalid
		}
		sc.checkArgs(x, m, x.Args)
		_, isSelf := x.Recv.(*ast.SelfRef)
		c.info.Calls[x] = CallTarget{Class: cls.Name, Method: x.Func, Remote: !isSelf}
		return m.Returns
	case KList:
		return sc.listMethodType(x, rt)
	case KDict:
		return sc.dictMethodType(x, rt)
	case KStr:
		return sc.strMethodType(x)
	case KAny:
		for _, a := range x.Args {
			sc.exprType(a)
		}
		return Any
	default:
		c.errf(x.Pos(), "type %s has no methods", rt)
		return Invalid
	}
}

func (sc *methodScope) checkArgs(call *ast.Call, m *Method, args []ast.Expr) {
	c := sc.c
	if m == nil {
		for _, a := range args {
			sc.exprType(a)
		}
		return
	}
	if len(args) != len(m.Params) {
		c.errf(call.Pos(), "%s expects %d arguments, got %d", m.QName(), len(m.Params), len(args))
	}
	for i, a := range args {
		at := sc.exprType(a)
		if i < len(m.Params) && !at.AssignableTo(m.Params[i].Type) {
			c.errf(a.Pos(), "argument %d of %s: cannot use %s as %s", i+1, m.QName(), at, m.Params[i].Type)
		}
	}
}

func (sc *methodScope) builtinType(x *ast.Call) *Type {
	c := sc.c
	argTypes := make([]*Type, len(x.Args))
	for i, a := range x.Args {
		argTypes[i] = sc.exprType(a)
	}
	need := func(n int) bool {
		if len(x.Args) != n {
			c.errf(x.Pos(), "%s expects %d argument(s), got %d", x.Func, n, len(x.Args))
			return false
		}
		return true
	}
	switch x.Func {
	case "len":
		if need(1) {
			k := argTypes[0].Kind
			if k != KList && k != KDict && k != KStr && k != KAny {
				c.errf(x.Pos(), "len requires list, dict or str, got %s", argTypes[0])
			}
		}
		return Int
	case "str":
		need(1)
		return Str
	case "int":
		need(1)
		return Int
	case "float":
		need(1)
		return Float
	case "bool":
		need(1)
		return Bool
	case "abs":
		if need(1) && !argTypes[0].IsNumeric() && argTypes[0].Kind != KAny {
			c.errf(x.Pos(), "abs requires a number")
		}
		return argTypes[0]
	case "min", "max":
		if len(x.Args) < 2 {
			c.errf(x.Pos(), "%s requires at least 2 arguments", x.Func)
			return Invalid
		}
		return argTypes[0]
	case "range":
		if len(x.Args) < 1 || len(x.Args) > 2 {
			c.errf(x.Pos(), "range requires 1 or 2 arguments")
		}
		return ListOf(Int)
	default:
		c.errf(x.Pos(), "unknown function %s", x.Func)
		return Invalid
	}
}

func (sc *methodScope) listMethodType(x *ast.Call, rt *Type) *Type {
	c := sc.c
	for _, a := range x.Args {
		sc.exprType(a)
	}
	switch x.Func {
	case "append":
		if len(x.Args) != 1 {
			c.errf(x.Pos(), "append expects 1 argument")
		}
		return None
	case "pop":
		if len(x.Args) > 1 {
			c.errf(x.Pos(), "pop expects at most 1 argument")
		}
		return rt.Elem
	default:
		c.errf(x.Pos(), "list has no method %s", x.Func)
		return Invalid
	}
}

func (sc *methodScope) dictMethodType(x *ast.Call, rt *Type) *Type {
	c := sc.c
	for _, a := range x.Args {
		sc.exprType(a)
	}
	switch x.Func {
	case "get":
		if len(x.Args) != 2 {
			c.errf(x.Pos(), "get expects key and default")
		}
		return rt.Elem
	case "keys":
		return ListOf(rt.Key)
	case "values":
		return ListOf(rt.Elem)
	default:
		c.errf(x.Pos(), "dict has no method %s", x.Func)
		return Invalid
	}
}

func (sc *methodScope) strMethodType(x *ast.Call) *Type {
	c := sc.c
	for _, a := range x.Args {
		sc.exprType(a)
	}
	switch x.Func {
	case "upper", "lower", "strip":
		if len(x.Args) != 0 {
			c.errf(x.Pos(), "%s takes no arguments", x.Func)
		}
		return Str
	default:
		c.errf(x.Pos(), "str has no method %s", x.Func)
		return Invalid
	}
}

// ---------------------------------------------------------------------------
// Whole-program restrictions

// checkNoRecursion builds the method-level call graph (analysis pass 2,
// §2.1/§2.3) and rejects any cycle: recursion would unroll into an infinite
// state machine (§2.5, §5).
func (c *checker) checkNoRecursion() {
	// Edges between qualified method names.
	edges := map[string][]string{}
	pos := map[string]token.Pos{}
	for _, cn := range c.info.Order {
		cls := c.info.Classes[cn]
		for _, mn := range cls.MethodOrder {
			m := cls.Methods[mn]
			q := m.QName()
			pos[q] = m.Def.Pos()
			ast.WalkStmts(m.Def.Body, func(s ast.Stmt) {
				for _, e := range ast.ExprsOf(s) {
					ast.WalkExpr(e, func(ex ast.Expr) bool {
						call, ok := ex.(*ast.Call)
						if !ok {
							return true
						}
						if tgt, ok := c.info.Calls[call]; ok && !tgt.Ctor {
							edges[q] = append(edges[q], tgt.Class+"."+tgt.Method)
							if tgt.Remote {
								m.RemoteCallCount++
							}
						}
						return true
					})
				}
			})
		}
	}
	// DFS cycle detection with deterministic order.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var nodes []string
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var stack []string
	var visit func(n string) bool
	visit = func(n string) bool {
		color[n] = grey
		stack = append(stack, n)
		for _, m := range edges[n] {
			switch color[m] {
			case grey:
				cycle := append(append([]string{}, stack...), m)
				c.errf(pos[n], "recursive call chain is not allowed (§2.2): %s", strings.Join(cycle, " -> "))
				return false
			case white:
				if !visit(m) {
					return false
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return true
	}
	for _, n := range nodes {
		if color[n] == white {
			if !visit(n) {
				return
			}
		}
	}
}

// checkKeyImmutability rejects writes to the key attribute outside
// __init__: "the key of a stateful entity cannot change throughout that
// entity's lifetime" (§2.2).
func (c *checker) checkKeyImmutability() {
	for _, cn := range c.info.Order {
		cls := c.info.Classes[cn]
		if cls.KeyAttr == "" {
			continue
		}
		for _, mn := range cls.MethodOrder {
			m := cls.Methods[mn]
			if m.IsInit() {
				continue
			}
			ast.WalkStmts(m.Def.Body, func(s ast.Stmt) {
				var target ast.Expr
				switch st := s.(type) {
				case *ast.AssignStmt:
					target = st.Target
				case *ast.AugAssignStmt:
					target = st.Target
				default:
					return
				}
				if attr, ok := target.(*ast.Attr); ok {
					if _, isSelf := attr.Recv.(*ast.SelfRef); isSelf && attr.Field == cls.KeyAttr {
						c.errf(s.Pos(), "%s mutates key attribute self.%s; entity keys are immutable (§2.2)", m.QName(), attr.Field)
					}
				}
			})
		}
	}
}
