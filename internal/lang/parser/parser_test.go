package parser

import (
	"strings"
	"testing"

	"statefulentities.dev/stateflow/internal/lang/ast"
	"statefulentities.dev/stateflow/internal/lang/token"
)

// figure1 is the paper's running example (Figure 1), adapted to the DSL.
const figure1 = `
@entity
class Item:
    def __init__(self, item_id: str, price: int):
        self.item_id: str = item_id
        self.stock: int = 0
        self.price: int = price

    def __key__(self) -> str:
        return self.item_id

    def get_price(self) -> int:
        return self.price

    def update_stock(self, amount: int) -> bool:
        self.stock += amount
        return self.stock >= 0

@entity
class User:
    def __init__(self, username: str):
        self.username: str = username
        self.balance: int = 100

    def __key__(self) -> str:
        return self.username

    @transactional
    def buy_item(self, amount: int, item: Item) -> bool:
        total_price: int = amount * item.get_price()
        if self.balance < total_price:
            return False
        available: bool = item.update_stock(0 - amount)
        if not available:
            item.update_stock(amount)
            return False
        self.balance -= total_price
        return True
`

func TestParseFigure1(t *testing.T) {
	mod, err := Parse(figure1)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(mod.Classes) != 2 {
		t.Fatalf("classes: got %d, want 2", len(mod.Classes))
	}
	item := mod.Class("Item")
	if item == nil || !item.IsEntity() {
		t.Fatalf("Item missing or not entity")
	}
	if len(item.Methods) != 4 {
		t.Fatalf("Item methods: got %d, want 4", len(item.Methods))
	}
	user := mod.Class("User")
	buy := user.Method("buy_item")
	if buy == nil {
		t.Fatal("buy_item missing")
	}
	if !buy.IsTransactional() {
		t.Fatal("buy_item should be @transactional")
	}
	if len(buy.Params) != 2 {
		t.Fatalf("buy_item params: %d", len(buy.Params))
	}
	if buy.Params[1].Type.Name != "Item" {
		t.Fatalf("second param type: %s", buy.Params[1].Type)
	}
	if buy.Returns == nil || buy.Returns.Name != "bool" {
		t.Fatalf("return type: %v", buy.Returns)
	}
	if len(buy.Body) != 6 {
		t.Fatalf("buy_item body statements: got %d, want 6", len(buy.Body))
	}
}

func parseOne(t *testing.T, body string) *ast.FuncDef {
	t.Helper()
	src := "@entity\nclass C:\n    def __init__(self, k: str):\n        self.k: str = k\n    def __key__(self) -> str:\n        return self.k\n    def m(self) -> int:\n"
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		src += "        " + line + "\n"
	}
	mod, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return mod.Class("C").Method("m")
}

func TestPrecedence(t *testing.T) {
	fn := parseOne(t, "return 1 + 2 * 3")
	ret := fn.Body[0].(*ast.ReturnStmt)
	bin := ret.Value.(*ast.BinOp)
	if bin.Op != token.PLUS {
		t.Fatalf("top op: %s", bin.Op)
	}
	right := bin.Right.(*ast.BinOp)
	if right.Op != token.STAR {
		t.Fatalf("right op: %s", right.Op)
	}
}

func TestComparisonAndBool(t *testing.T) {
	fn := parseOne(t, "x = 1 < 2 and 3 >= 4 or not True\nreturn 0")
	as := fn.Body[0].(*ast.AssignStmt)
	or := as.Value.(*ast.BinOp)
	if or.Op != token.KwOr {
		t.Fatalf("top: %s", or.Op)
	}
	and := or.Left.(*ast.BinOp)
	if and.Op != token.KwAnd {
		t.Fatalf("left: %s", and.Op)
	}
	if _, ok := or.Right.(*ast.UnaryOp); !ok {
		t.Fatalf("right should be unary not")
	}
}

func TestElifDesugar(t *testing.T) {
	fn := parseOne(t, "if 1 < 2:\n    x = 1\nelif 2 < 3:\n    x = 2\nelse:\n    x = 3\nreturn 0")
	ifs := fn.Body[0].(*ast.IfStmt)
	if len(ifs.Else) != 1 {
		t.Fatalf("elif should nest: %d", len(ifs.Else))
	}
	inner, ok := ifs.Else[0].(*ast.IfStmt)
	if !ok {
		t.Fatal("elif not desugared to nested if")
	}
	if len(inner.Else) != 1 {
		t.Fatalf("inner else: %d", len(inner.Else))
	}
}

func TestForAndWhile(t *testing.T) {
	fn := parseOne(t, "total = 0\nfor x in [1, 2, 3]:\n    total += x\nwhile total > 0:\n    total -= 1\nreturn total")
	if _, ok := fn.Body[1].(*ast.ForStmt); !ok {
		t.Fatalf("want for, got %T", fn.Body[1])
	}
	w, ok := fn.Body[2].(*ast.WhileStmt)
	if !ok {
		t.Fatalf("want while, got %T", fn.Body[2])
	}
	if len(w.Body) != 1 {
		t.Fatalf("while body: %d", len(w.Body))
	}
}

func TestMethodCallChain(t *testing.T) {
	fn := parseOne(t, "return self.k.upper()")
	ret := fn.Body[0].(*ast.ReturnStmt)
	call := ret.Value.(*ast.Call)
	if call.Func != "upper" {
		t.Fatalf("func: %s", call.Func)
	}
	if _, ok := call.Recv.(*ast.Attr); !ok {
		t.Fatalf("recv: %T", call.Recv)
	}
}

func TestIndexing(t *testing.T) {
	fn := parseOne(t, "xs = [10, 20]\nreturn xs[1]")
	ret := fn.Body[1].(*ast.ReturnStmt)
	if _, ok := ret.Value.(*ast.Index); !ok {
		t.Fatalf("want index, got %T", ret.Value)
	}
}

func TestDictLiteral(t *testing.T) {
	fn := parseOne(t, "d = {\"a\": 1, \"b\": 2}\nreturn d[\"a\"]")
	as := fn.Body[0].(*ast.AssignStmt)
	d := as.Value.(*ast.DictLit)
	if len(d.Keys) != 2 {
		t.Fatalf("dict keys: %d", len(d.Keys))
	}
}

func TestAnnotatedAssign(t *testing.T) {
	fn := parseOne(t, "x: int = 5\nreturn x")
	as := fn.Body[0].(*ast.AssignStmt)
	if as.Type == nil || as.Type.Name != "int" {
		t.Fatalf("annotation: %v", as.Type)
	}
}

func TestListTypeAnnotation(t *testing.T) {
	src := `
@entity
class C:
    def __init__(self, k: str):
        self.k: str = k
        self.xs: list[int] = []
    def __key__(self) -> str:
        return self.k
    def m(self, ys: list[str]) -> int:
        return len(ys)
`
	mod, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mod.Class("C").Method("m")
	if m.Params[0].Type.Name != "list" || m.Params[0].Type.Args[0].Name != "str" {
		t.Fatalf("param type: %s", m.Params[0].Type)
	}
}

func TestErrorMissingSelf(t *testing.T) {
	src := "class C:\n    def m() -> int:\n        return 1\n"
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "self") {
		t.Fatalf("want self error, got %v", err)
	}
}

func TestErrorUntypedParam(t *testing.T) {
	src := "class C:\n    def m(self, x) -> int:\n        return x\n"
	if _, err := Parse(src); err == nil {
		t.Fatal("want type-hint error")
	}
}

func TestErrorBadAssignTarget(t *testing.T) {
	src := "class C:\n    def m(self) -> int:\n        1 = 2\n        return 1\n"
	if _, err := Parse(src); err == nil {
		t.Fatal("want assignment-target error")
	}
}

func TestErrorEmptyBlock(t *testing.T) {
	src := "class C:\n    def m(self) -> int:\n"
	if _, err := Parse(src); err == nil {
		t.Fatal("want empty-block error")
	}
}

func TestReturnBare(t *testing.T) {
	fn := parseOne(t, "return")
	ret := fn.Body[0].(*ast.ReturnStmt)
	if ret.Value != nil {
		t.Fatal("bare return should have nil value")
	}
}

func TestParenGrouping(t *testing.T) {
	fn := parseOne(t, "return (1 + 2) * 3")
	ret := fn.Body[0].(*ast.ReturnStmt)
	bin := ret.Value.(*ast.BinOp)
	if bin.Op != token.STAR {
		t.Fatalf("top op: %s", bin.Op)
	}
}

func TestConstructorCall(t *testing.T) {
	fn := parseOne(t, "it = Other(\"k\")\nreturn 1")
	as := fn.Body[0].(*ast.AssignStmt)
	call := as.Value.(*ast.Call)
	if call.Recv != nil || call.Func != "Other" {
		t.Fatalf("ctor call: %+v", call)
	}
}

func TestBreakContinuePass(t *testing.T) {
	fn := parseOne(t, "while True:\n    if 1 < 2:\n        break\n    continue\npass\nreturn 0")
	w := fn.Body[0].(*ast.WhileStmt)
	ifs := w.Body[0].(*ast.IfStmt)
	if _, ok := ifs.Then[0].(*ast.BreakStmt); !ok {
		t.Fatal("break missing")
	}
	if _, ok := w.Body[1].(*ast.ContinueStmt); !ok {
		t.Fatal("continue missing")
	}
	if _, ok := fn.Body[1].(*ast.PassStmt); !ok {
		t.Fatal("pass missing")
	}
}
