// Package parser builds an AST from stateful-entity DSL source. It is a
// hand-written recursive-descent parser over the indentation-aware token
// stream produced by internal/lang/lexer.
package parser

import (
	"fmt"
	"strconv"

	"statefulentities.dev/stateflow/internal/lang/ast"
	"statefulentities.dev/stateflow/internal/lang/lexer"
	"statefulentities.dev/stateflow/internal/lang/token"
)

// Error is a syntax error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	pos  int
}

// Parse parses a full module of class definitions.
func Parse(src string) (*ast.Module, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	mod := &ast.Module{Position: token.Pos{Line: 1, Col: 1}}
	p.skipNewlines()
	for !p.at(token.EOF) {
		cls, err := p.classDef()
		if err != nil {
			return nil, err
		}
		mod.Classes = append(mod.Classes, cls)
		p.skipNewlines()
	}
	return mod, nil
}

func (p *parser) cur() token.Token     { return p.toks[p.pos] }
func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if !p.at(k) {
		return token.Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipNewlines() {
	for p.at(token.NEWLINE) {
		p.next()
	}
}

// decorators parses zero or more "@name" lines.
func (p *parser) decorators() ([]string, error) {
	var decs []string
	for p.at(token.AT) {
		p.next()
		id, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		decs = append(decs, id.Lit)
		if _, err := p.expect(token.NEWLINE); err != nil {
			return nil, err
		}
		p.skipNewlines()
	}
	return decs, nil
}

func (p *parser) classDef() (*ast.ClassDef, error) {
	decs, err := p.decorators()
	if err != nil {
		return nil, err
	}
	kw, err := p.expect(token.KwClass)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.COLON); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.NEWLINE); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.INDENT); err != nil {
		return nil, err
	}
	cls := &ast.ClassDef{Position: kw.Pos, Decorators: decs, Name: name.Lit}
	p.skipNewlines()
	for !p.at(token.DEDENT) {
		if p.at(token.KwPass) {
			p.next()
			if _, err := p.expect(token.NEWLINE); err != nil {
				return nil, err
			}
			p.skipNewlines()
			continue
		}
		fn, err := p.funcDef()
		if err != nil {
			return nil, err
		}
		cls.Methods = append(cls.Methods, fn)
		p.skipNewlines()
	}
	p.next() // DEDENT
	return cls, nil
}

func (p *parser) funcDef() (*ast.FuncDef, error) {
	decs, err := p.decorators()
	if err != nil {
		return nil, err
	}
	kw, err := p.expect(token.KwDef)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	fn := &ast.FuncDef{Position: kw.Pos, Decorators: decs, Name: name.Lit}
	// Receiver: methods must declare self first.
	if !p.at(token.KwSelf) {
		return nil, p.errf("method %s must declare self as its first parameter", name.Lit)
	}
	p.next()
	for p.at(token.COMMA) {
		p.next()
		prm, err := p.param()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, prm)
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	if p.at(token.ARROW) {
		p.next()
		rt, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		fn.Returns = rt
	}
	if _, err := p.expect(token.COLON); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) param() (*ast.Param, error) {
	id, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	prm := &ast.Param{Position: id.Pos, Name: id.Lit}
	if _, err := p.expect(token.COLON); err != nil {
		return nil, fmt.Errorf("parameter %s requires a type hint (§2.2): %w", id.Lit, err)
	}
	t, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	prm.Type = t
	return prm, nil
}

func (p *parser) typeExpr() (*ast.TypeExpr, error) {
	var name token.Token
	switch {
	case p.at(token.IDENT):
		name = p.next()
	case p.at(token.KwNone):
		name = p.next()
		name.Lit = "None"
	default:
		return nil, p.errf("expected type name, found %s", p.cur())
	}
	te := &ast.TypeExpr{Position: name.Pos, Name: name.Lit}
	if p.at(token.LBRACKET) {
		p.next()
		for {
			arg, err := p.typeExpr()
			if err != nil {
				return nil, err
			}
			te.Args = append(te.Args, arg)
			if !p.at(token.COMMA) {
				break
			}
			p.next()
		}
		if _, err := p.expect(token.RBRACKET); err != nil {
			return nil, err
		}
	}
	return te, nil
}

// block parses NEWLINE INDENT stmt+ DEDENT.
func (p *parser) block() ([]ast.Stmt, error) {
	if _, err := p.expect(token.NEWLINE); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.INDENT); err != nil {
		return nil, err
	}
	var stmts []ast.Stmt
	p.skipNewlines()
	for !p.at(token.DEDENT) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		p.skipNewlines()
	}
	p.next() // DEDENT
	if len(stmts) == 0 {
		return nil, p.errf("empty block")
	}
	return stmts, nil
}

func (p *parser) statement() (ast.Stmt, error) {
	switch p.cur().Kind {
	case token.KwIf:
		return p.ifStmt()
	case token.KwFor:
		return p.forStmt()
	case token.KwWhile:
		return p.whileStmt()
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.NEWLINE); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *parser) simpleStmt() (ast.Stmt, error) {
	switch p.cur().Kind {
	case token.KwPass:
		t := p.next()
		return &ast.PassStmt{Position: t.Pos}, nil
	case token.KwBreak:
		t := p.next()
		return &ast.BreakStmt{Position: t.Pos}, nil
	case token.KwContinue:
		t := p.next()
		return &ast.ContinueStmt{Position: t.Pos}, nil
	case token.KwReturn:
		t := p.next()
		if p.at(token.NEWLINE) {
			return &ast.ReturnStmt{Position: t.Pos}, nil
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.ReturnStmt{Position: t.Pos, Value: v}, nil
	}
	// Expression, assignment, or annotated assignment.
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(token.COLON): // annotated assignment: name: T = value
		if err := checkAssignable(lhs); err != nil {
			return nil, err
		}
		p.next()
		ty, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.ASSIGN); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.AssignStmt{Position: lhs.Pos(), Target: lhs, Type: ty, Value: v}, nil
	case p.at(token.ASSIGN):
		if err := checkAssignable(lhs); err != nil {
			return nil, err
		}
		p.next()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.AssignStmt{Position: lhs.Pos(), Target: lhs, Value: v}, nil
	case p.cur().Kind.IsAugAssign():
		if err := checkAssignable(lhs); err != nil {
			return nil, err
		}
		op := p.next()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.AugAssignStmt{Position: lhs.Pos(), Target: lhs, Op: op.Kind.BinOpForAug(), Value: v}, nil
	default:
		return &ast.ExprStmt{Position: lhs.Pos(), Value: lhs}, nil
	}
}

func checkAssignable(e ast.Expr) error {
	switch t := e.(type) {
	case *ast.Name:
		return nil
	case *ast.Attr:
		if _, ok := t.Recv.(*ast.SelfRef); ok {
			return nil
		}
		return &Error{Pos: e.Pos(), Msg: "only self attributes can be assigned"}
	case *ast.Index:
		return nil
	default:
		return &Error{Pos: e.Pos(), Msg: "invalid assignment target"}
	}
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	kw := p.next() // if / elif
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.COLON); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &ast.IfStmt{Position: kw.Pos, Cond: cond, Then: then}
	switch p.cur().Kind {
	case token.KwElif:
		elifNode, err := p.ifStmt()
		if err != nil {
			return nil, err
		}
		node.Else = []ast.Stmt{elifNode}
	case token.KwElse:
		p.next()
		if _, err := p.expect(token.COLON); err != nil {
			return nil, err
		}
		els, err := p.block()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return node, nil
}

func (p *parser) forStmt() (ast.Stmt, error) {
	kw := p.next()
	v, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.KwIn); err != nil {
		return nil, err
	}
	iter, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.COLON); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ast.ForStmt{Position: kw.Pos, Var: v.Lit, Iterable: iter, Body: body}, nil
}

func (p *parser) whileStmt() (ast.Stmt, error) {
	kw := p.next()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.COLON); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ast.WhileStmt{Position: kw.Pos, Cond: cond, Body: body}, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) expr() (ast.Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (ast.Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(token.KwOr) {
		op := p.next()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &ast.BinOp{Position: op.Pos, Op: token.KwOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (ast.Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.at(token.KwAnd) {
		op := p.next()
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &ast.BinOp{Position: op.Pos, Op: token.KwAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) notExpr() (ast.Expr, error) {
	if p.at(token.KwNot) {
		op := p.next()
		operand, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryOp{Position: op.Pos, Op: token.KwNot, Operand: operand}, nil
	}
	return p.comparison()
}

func isCompareOp(k token.Kind) bool {
	switch k {
	case token.EQ, token.NEQ, token.LT, token.LTE, token.GT, token.GTE, token.KwIn:
		return true
	}
	return false
}

func (p *parser) comparison() (ast.Expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for isCompareOp(p.cur().Kind) {
		op := p.next()
		right, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		left = &ast.BinOp{Position: op.Pos, Op: op.Kind, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) addExpr() (ast.Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(token.PLUS) || p.at(token.MINUS) {
		op := p.next()
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = &ast.BinOp{Position: op.Pos, Op: op.Kind, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) mulExpr() (ast.Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(token.STAR) || p.at(token.SLASH) || p.at(token.DSLASH) || p.at(token.PERCENT) {
		op := p.next()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &ast.BinOp{Position: op.Pos, Op: op.Kind, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) unary() (ast.Expr, error) {
	if p.at(token.MINUS) {
		op := p.next()
		operand, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryOp{Position: op.Pos, Op: token.MINUS, Operand: operand}, nil
	}
	return p.postfix()
}

// postfix parses a primary followed by call/attribute/index suffixes.
func (p *parser) postfix() (ast.Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case token.DOT:
			p.next()
			field, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			if p.at(token.LPAREN) { // method call
				args, err := p.callArgs()
				if err != nil {
					return nil, err
				}
				e = &ast.Call{Position: field.Pos, Recv: e, Func: field.Lit, Args: args}
			} else {
				e = &ast.Attr{Position: field.Pos, Recv: e, Field: field.Lit}
			}
		case token.LBRACKET:
			lb := p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBRACKET); err != nil {
				return nil, err
			}
			e = &ast.Index{Position: lb.Pos, Recv: e, Idx: idx}
		case token.LPAREN:
			// Direct call on a name: builtin (len, str, ...) or constructor.
			name, ok := e.(*ast.Name)
			if !ok {
				return nil, p.errf("only named functions can be called directly")
			}
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			e = &ast.Call{Position: name.Position, Func: name.Ident, Args: args}
		default:
			return e, nil
		}
	}
}

func (p *parser) callArgs() ([]ast.Expr, error) {
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	var args []ast.Expr
	if !p.at(token.RPAREN) {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.at(token.COMMA) {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) primary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.IDENT:
		p.next()
		return &ast.Name{Position: t.Pos, Ident: t.Lit}, nil
	case token.KwSelf:
		p.next()
		return &ast.SelfRef{Position: t.Pos}, nil
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			return nil, &Error{Pos: t.Pos, Msg: "invalid integer literal"}
		}
		return &ast.IntLit{Position: t.Pos, Value: v}, nil
	case token.FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			return nil, &Error{Pos: t.Pos, Msg: "invalid float literal"}
		}
		return &ast.FloatLit{Position: t.Pos, Value: v}, nil
	case token.STRING:
		p.next()
		return &ast.StrLit{Position: t.Pos, Value: t.Lit}, nil
	case token.KwTrue:
		p.next()
		return &ast.BoolLit{Position: t.Pos, Value: true}, nil
	case token.KwFalse:
		p.next()
		return &ast.BoolLit{Position: t.Pos, Value: false}, nil
	case token.KwNone:
		p.next()
		return &ast.NoneLit{Position: t.Pos}, nil
	case token.LPAREN:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case token.LBRACKET:
		p.next()
		lst := &ast.ListLit{Position: t.Pos}
		if !p.at(token.RBRACKET) {
			for {
				el, err := p.expr()
				if err != nil {
					return nil, err
				}
				lst.Elems = append(lst.Elems, el)
				if !p.at(token.COMMA) {
					break
				}
				p.next()
			}
		}
		if _, err := p.expect(token.RBRACKET); err != nil {
			return nil, err
		}
		return lst, nil
	case token.LBRACE:
		p.next()
		d := &ast.DictLit{Position: t.Pos}
		if !p.at(token.RBRACE) {
			for {
				k, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.COLON); err != nil {
					return nil, err
				}
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				d.Keys = append(d.Keys, k)
				d.Values = append(d.Values, v)
				if !p.at(token.COMMA) {
					break
				}
				p.next()
			}
		}
		if _, err := p.expect(token.RBRACE); err != nil {
			return nil, err
		}
		return d, nil
	default:
		return nil, p.errf("unexpected token %s in expression", t)
	}
}
