// Package token defines the lexical tokens of the stateful-entity DSL, a
// Python-like language subset accepted by the StateFlow compiler.
package token

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds. Layout tokens (NEWLINE, INDENT, DEDENT) encode the
// significant whitespace of the source language.
const (
	ILLEGAL Kind = iota
	EOF
	NEWLINE
	INDENT
	DEDENT

	// Literals and identifiers.
	IDENT  // username, buy_item
	INT    // 123
	FLOAT  // 1.5
	STRING // "abc"

	// Operators and delimiters.
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	DSLASH   // //
	PERCENT  // %
	EQ       // ==
	NEQ      // !=
	LT       // <
	LTE      // <=
	GT       // >
	GTE      // >=
	ASSIGN   // =
	PLUSEQ   // +=
	MINUSEQ  // -=
	STAREQ   // *=
	SLASHEQ  // /=
	LPAREN   // (
	RPAREN   // )
	LBRACKET // [
	RBRACKET // ]
	LBRACE   // {
	RBRACE   // }
	COMMA    // ,
	COLON    // :
	DOT      // .
	ARROW    // ->
	AT       // @

	// Keywords.
	KwClass
	KwDef
	KwReturn
	KwIf
	KwElif
	KwElse
	KwFor
	KwWhile
	KwIn
	KwNot
	KwAnd
	KwOr
	KwTrue
	KwFalse
	KwNone
	KwPass
	KwBreak
	KwContinue
	KwSelf
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", NEWLINE: "NEWLINE", INDENT: "INDENT",
	DEDENT: "DEDENT", IDENT: "IDENT", INT: "INT", FLOAT: "FLOAT",
	STRING: "STRING", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	DSLASH: "//", PERCENT: "%", EQ: "==", NEQ: "!=", LT: "<", LTE: "<=",
	GT: ">", GTE: ">=", ASSIGN: "=", PLUSEQ: "+=", MINUSEQ: "-=",
	STAREQ: "*=", SLASHEQ: "/=", LPAREN: "(", RPAREN: ")", LBRACKET: "[",
	RBRACKET: "]", LBRACE: "{", RBRACE: "}", COMMA: ",", COLON: ":",
	DOT: ".", ARROW: "->", AT: "@",
	KwClass: "class", KwDef: "def", KwReturn: "return", KwIf: "if",
	KwElif: "elif", KwElse: "else", KwFor: "for", KwWhile: "while",
	KwIn: "in", KwNot: "not", KwAnd: "and", KwOr: "or", KwTrue: "True",
	KwFalse: "False", KwNone: "None", KwPass: "pass", KwBreak: "break",
	KwContinue: "continue", KwSelf: "self",
}

// String returns a printable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to kinds.
var Keywords = map[string]Kind{
	"class": KwClass, "def": KwDef, "return": KwReturn, "if": KwIf,
	"elif": KwElif, "else": KwElse, "for": KwFor, "while": KwWhile,
	"in": KwIn, "not": KwNot, "and": KwAnd, "or": KwOr, "True": KwTrue,
	"False": KwFalse, "None": KwNone, "pass": KwPass, "break": KwBreak,
	"continue": KwContinue, "self": KwSelf,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token with its source text and position.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, FLOAT, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// IsAugAssign reports whether the kind is an augmented assignment operator.
func (k Kind) IsAugAssign() bool {
	switch k {
	case PLUSEQ, MINUSEQ, STAREQ, SLASHEQ:
		return true
	}
	return false
}

// BinOpForAug returns the binary operator corresponding to an augmented
// assignment (PLUSEQ -> PLUS). It panics on non-augmented kinds.
func (k Kind) BinOpForAug() Kind {
	switch k {
	case PLUSEQ:
		return PLUS
	case MINUSEQ:
		return MINUS
	case STAREQ:
		return STAR
	case SLASHEQ:
		return SLASH
	}
	panic("token: not an augmented assignment: " + k.String())
}
