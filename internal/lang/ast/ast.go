// Package ast defines the abstract syntax tree of the stateful-entity DSL.
//
// A Module is a sequence of class definitions. Classes annotated with
// @entity are stateful entities (§2.2 of the paper); the compiler turns
// each of them into a dataflow operator. The AST is deliberately close to
// the Python ast module's shape for the subset the StateFlow compiler
// handles: typed function definitions, assignments, conditionals, for-loops
// over lists, while-loops, and method calls (possibly remote).
package ast

import (
	"fmt"
	"strings"

	"statefulentities.dev/stateflow/internal/lang/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Types (annotations)

// TypeExpr is a parsed type annotation such as int, str, Item, list[int].
type TypeExpr struct {
	Position token.Pos
	Name     string      // "int", "str", "bool", "float", "list", "dict", "None", or a class name
	Args     []*TypeExpr // element types for list[T] / dict[K, V]
}

// Pos returns the annotation's source position.
func (t *TypeExpr) Pos() token.Pos { return t.Position }

// String renders the annotation in source syntax.
func (t *TypeExpr) String() string {
	if t == nil {
		return "<none>"
	}
	if len(t.Args) == 0 {
		return t.Name
	}
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s[%s]", t.Name, strings.Join(parts, ", "))
}

// ---------------------------------------------------------------------------
// Module and definitions

// Module is a parsed source file.
type Module struct {
	Position token.Pos
	Classes  []*ClassDef
}

// Pos returns the module's position.
func (m *Module) Pos() token.Pos { return m.Position }

// Class looks up a class definition by name, or nil.
func (m *Module) Class(name string) *ClassDef {
	for _, c := range m.Classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ClassDef is a class definition with optional decorators.
type ClassDef struct {
	Position   token.Pos
	Decorators []string // e.g. {"entity"} or {"stateflow"}
	Name       string
	Methods    []*FuncDef
}

// Pos returns the class's position.
func (c *ClassDef) Pos() token.Pos { return c.Position }

// IsEntity reports whether the class carries an entity decorator. Both
// @entity and @stateflow mark stateful entities (the paper uses both).
func (c *ClassDef) IsEntity() bool {
	for _, d := range c.Decorators {
		if d == "entity" || d == "stateflow" {
			return true
		}
	}
	return false
}

// IsTransactional reports whether the class carries @transactional. The
// decorator may also be attached to individual methods.
func (c *ClassDef) IsTransactional() bool {
	for _, d := range c.Decorators {
		if d == "transactional" {
			return true
		}
	}
	return false
}

// Method looks up a method definition by name, or nil.
func (c *ClassDef) Method(name string) *FuncDef {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Param is a typed function parameter.
type Param struct {
	Position token.Pos
	Name     string
	Type     *TypeExpr // nil only for self
}

// Pos returns the parameter's position.
func (p *Param) Pos() token.Pos { return p.Position }

// FuncDef is a method definition inside a class. The receiver parameter
// (self) is implicit and not part of Params.
type FuncDef struct {
	Position   token.Pos
	Decorators []string
	Name       string
	Params     []*Param
	Returns    *TypeExpr // nil means None
	Body       []Stmt
}

// Pos returns the function's position.
func (f *FuncDef) Pos() token.Pos { return f.Position }

// IsInit reports whether this is the __init__ constructor.
func (f *FuncDef) IsInit() bool { return f.Name == "__init__" }

// IsKey reports whether this is the __key__ accessor used by the routing
// and partitioning mechanism (§2.2).
func (f *FuncDef) IsKey() bool { return f.Name == "__key__" }

// IsTransactional reports whether the method carries @transactional.
func (f *FuncDef) IsTransactional() bool {
	for _, d := range f.Decorators {
		if d == "transactional" {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// AssignStmt is `target = value` or an annotated `target: T = value`.
// Target is either *Name or *Attr (self.field).
type AssignStmt struct {
	Position token.Pos
	Target   Expr
	Type     *TypeExpr // optional annotation
	Value    Expr
}

// AugAssignStmt is `target += value` and friends.
type AugAssignStmt struct {
	Position token.Pos
	Target   Expr
	Op       token.Kind // PLUS, MINUS, STAR, SLASH
	Value    Expr
}

// ExprStmt is a bare expression statement, e.g. a call.
type ExprStmt struct {
	Position token.Pos
	Value    Expr
}

// ReturnStmt returns a value (possibly nil for bare return).
type ReturnStmt struct {
	Position token.Pos
	Value    Expr
}

// IfStmt is if/elif/else. Elifs are desugared by the parser into nested
// IfStmt values in Else.
type IfStmt struct {
	Position token.Pos
	Cond     Expr
	Then     []Stmt
	Else     []Stmt // possibly nil
}

// ForStmt is `for var in iterable:`. VarSlot, when non-zero, is the
// 1-based frame slot of the loop variable (see Name.Slot).
type ForStmt struct {
	Position token.Pos
	Var      string
	VarSlot  int
	Iterable Expr
	Body     []Stmt
}

// WhileStmt is `while cond:`.
type WhileStmt struct {
	Position token.Pos
	Cond     Expr
	Body     []Stmt
}

// PassStmt is the no-op statement.
type PassStmt struct{ Position token.Pos }

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Position token.Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Position token.Pos }

// Pos implementations.
func (s *AssignStmt) Pos() token.Pos    { return s.Position }
func (s *AugAssignStmt) Pos() token.Pos { return s.Position }
func (s *ExprStmt) Pos() token.Pos      { return s.Position }
func (s *ReturnStmt) Pos() token.Pos    { return s.Position }
func (s *IfStmt) Pos() token.Pos        { return s.Position }
func (s *ForStmt) Pos() token.Pos       { return s.Position }
func (s *WhileStmt) Pos() token.Pos     { return s.Position }
func (s *PassStmt) Pos() token.Pos      { return s.Position }
func (s *BreakStmt) Pos() token.Pos     { return s.Position }
func (s *ContinueStmt) Pos() token.Pos  { return s.Position }

func (*AssignStmt) stmt()    {}
func (*AugAssignStmt) stmt() {}
func (*ExprStmt) stmt()      {}
func (*ReturnStmt) stmt()    {}
func (*IfStmt) stmt()        {}
func (*ForStmt) stmt()       {}
func (*WhileStmt) stmt()     {}
func (*PassStmt) stmt()      {}
func (*BreakStmt) stmt()     {}
func (*ContinueStmt) stmt()  {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// Name is an identifier reference. Slot, when non-zero, is the 1-based
// frame slot the compiler's layout pass resolved the identifier to;
// interpreters use it for direct slice access and fall back to name lookup
// when it is zero (unstamped AST).
type Name struct {
	Position token.Pos
	Ident    string
	Slot     int
}

// SelfRef is the receiver reference `self`.
type SelfRef struct{ Position token.Pos }

// Attr is attribute access `X.field` (most commonly self.field). Slot,
// when non-zero, is the 1-based attribute slot of Field in the enclosing
// class's layout (stamped by the compiler for self attributes only).
type Attr struct {
	Position token.Pos
	Recv     Expr
	Field    string
	Slot     int
}

// IntLit is an integer literal.
type IntLit struct {
	Position token.Pos
	Value    int64
}

// FloatLit is a float literal.
type FloatLit struct {
	Position token.Pos
	Value    float64
}

// StrLit is a string literal.
type StrLit struct {
	Position token.Pos
	Value    string
}

// BoolLit is True/False.
type BoolLit struct {
	Position token.Pos
	Value    bool
}

// NoneLit is None.
type NoneLit struct{ Position token.Pos }

// ListLit is [a, b, c].
type ListLit struct {
	Position token.Pos
	Elems    []Expr
}

// DictLit is {k: v, ...}.
type DictLit struct {
	Position token.Pos
	Keys     []Expr
	Values   []Expr
}

// BinOp is a binary operation, including comparisons and and/or.
type BinOp struct {
	Position token.Pos
	Op       token.Kind
	Left     Expr
	Right    Expr
}

// UnaryOp is `not x` or `-x`.
type UnaryOp struct {
	Position token.Pos
	Op       token.Kind // KwNot or MINUS
	Operand  Expr
}

// Call is a function or method call. Recv is nil for builtin calls like
// len(x); for method calls it is the receiver expression (self or a name
// typed as an entity class, in which case the call is remote §2.3).
type Call struct {
	Position token.Pos
	Recv     Expr   // nil, *SelfRef, *Name, or *Attr
	Func     string // method or builtin or class name (constructor)
	Args     []Expr
}

// Index is subscripting `x[i]`.
type Index struct {
	Position token.Pos
	Recv     Expr
	Idx      Expr
}

// Pos implementations.
func (e *Name) Pos() token.Pos     { return e.Position }
func (e *SelfRef) Pos() token.Pos  { return e.Position }
func (e *Attr) Pos() token.Pos     { return e.Position }
func (e *IntLit) Pos() token.Pos   { return e.Position }
func (e *FloatLit) Pos() token.Pos { return e.Position }
func (e *StrLit) Pos() token.Pos   { return e.Position }
func (e *BoolLit) Pos() token.Pos  { return e.Position }
func (e *NoneLit) Pos() token.Pos  { return e.Position }
func (e *ListLit) Pos() token.Pos  { return e.Position }
func (e *DictLit) Pos() token.Pos  { return e.Position }
func (e *BinOp) Pos() token.Pos    { return e.Position }
func (e *UnaryOp) Pos() token.Pos  { return e.Position }
func (e *Call) Pos() token.Pos     { return e.Position }
func (e *Index) Pos() token.Pos    { return e.Position }

func (*Name) expr()     {}
func (*SelfRef) expr()  {}
func (*Attr) expr()     {}
func (*IntLit) expr()   {}
func (*FloatLit) expr() {}
func (*StrLit) expr()   {}
func (*BoolLit) expr()  {}
func (*NoneLit) expr()  {}
func (*ListLit) expr()  {}
func (*DictLit) expr()  {}
func (*BinOp) expr()    {}
func (*UnaryOp) expr()  {}
func (*Call) expr()     {}
func (*Index) expr()    {}

// ---------------------------------------------------------------------------
// Traversal helpers

// WalkExpr calls fn for e and every sub-expression, pre-order. fn returning
// false prunes the subtree.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Attr:
		WalkExpr(x.Recv, fn)
	case *ListLit:
		for _, el := range x.Elems {
			WalkExpr(el, fn)
		}
	case *DictLit:
		for i := range x.Keys {
			WalkExpr(x.Keys[i], fn)
			WalkExpr(x.Values[i], fn)
		}
	case *BinOp:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Right, fn)
	case *UnaryOp:
		WalkExpr(x.Operand, fn)
	case *Call:
		if x.Recv != nil {
			WalkExpr(x.Recv, fn)
		}
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *Index:
		WalkExpr(x.Recv, fn)
		WalkExpr(x.Idx, fn)
	}
}

// WalkStmts calls fn for every statement in the list, recursing into
// control-flow bodies, pre-order.
func WalkStmts(stmts []Stmt, fn func(Stmt)) {
	for _, s := range stmts {
		fn(s)
		switch x := s.(type) {
		case *IfStmt:
			WalkStmts(x.Then, fn)
			WalkStmts(x.Else, fn)
		case *ForStmt:
			WalkStmts(x.Body, fn)
		case *WhileStmt:
			WalkStmts(x.Body, fn)
		}
	}
}

// ExprsOf returns the expressions directly contained in a statement (not
// recursing into nested statements).
func ExprsOf(s Stmt) []Expr {
	switch x := s.(type) {
	case *AssignStmt:
		return []Expr{x.Target, x.Value}
	case *AugAssignStmt:
		return []Expr{x.Target, x.Value}
	case *ExprStmt:
		return []Expr{x.Value}
	case *ReturnStmt:
		if x.Value != nil {
			return []Expr{x.Value}
		}
	case *IfStmt:
		return []Expr{x.Cond}
	case *ForStmt:
		return []Expr{x.Iterable}
	case *WhileStmt:
		return []Expr{x.Cond}
	}
	return nil
}
