package printer

import (
	"strings"
	"testing"

	"statefulentities.dev/stateflow/internal/lang/parser"
)

// roundTrip parses source, prints it, reparses the print, and prints
// again: the two prints must be identical (print is a fixpoint).
func roundTrip(t *testing.T, body string) string {
	t.Helper()
	src := "@entity\nclass C:\n    def __init__(self, k: str):\n        self.k: str = k\n    def __key__(self) -> str:\n        return self.k\n    def m(self) -> int:\n"
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		src += "        " + line + "\n"
	}
	mod1, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	out1 := Stmts(mod1.Class("C").Method("m").Body, "")

	src2 := "@entity\nclass C:\n    def __init__(self, k: str):\n        self.k: str = k\n    def __key__(self) -> str:\n        return self.k\n    def m(self) -> int:\n"
	for _, line := range strings.Split(strings.TrimRight(out1, "\n"), "\n") {
		src2 += "        " + line + "\n"
	}
	mod2, err := parser.Parse(src2)
	if err != nil {
		t.Fatalf("reparse printed output: %v\n%s", err, src2)
	}
	out2 := Stmts(mod2.Class("C").Method("m").Body, "")
	if out1 != out2 {
		t.Fatalf("print not a fixpoint:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	return out1
}

func TestRoundTripAssignments(t *testing.T) {
	out := roundTrip(t, "x: int = 1\ny = x + 2\nself.k = str(y)\nreturn y")
	for _, want := range []string{"x: int = 1", "self.k = str(y)", "return y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRoundTripControlFlow(t *testing.T) {
	out := roundTrip(t, `total = 0
for i in range(10):
    if i % 2 == 0:
        total += i
    else:
        total -= 1
while total > 5:
    total -= 1
    if total == 7:
        break
    continue
return total`)
	for _, want := range []string{"for i in range(10):", "while", "break", "continue", "else:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRoundTripContainers(t *testing.T) {
	out := roundTrip(t, `xs: list[int] = [1, 2, 3]
d: dict[str, int] = {"a": 1, "b": 2}
xs.append(d["a"])
xs[0] = 9
return xs[0 - 1] + len(xs)`)
	for _, want := range []string{"[1, 2, 3]", `{"a": 1, "b": 2}`, "xs.append", "xs[0] = 9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRoundTripBooleans(t *testing.T) {
	out := roundTrip(t, `a: bool = True and not False or 1 < 2
if a:
    pass
return 0`)
	for _, want := range []string{"and", "not", "or", "pass"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestStringEscaping(t *testing.T) {
	out := roundTrip(t, `s: str = "line\nquote\"tab\t"
return len(s)`)
	if !strings.Contains(out, `"line\nquote\"tab\t"`) {
		t.Fatalf("escapes:\n%s", out)
	}
}

func TestExprPrecedenceParens(t *testing.T) {
	// Printed expressions are fully parenthesized, so reparsing preserves
	// the tree regardless of precedence.
	out := roundTrip(t, "return (1 + 2) * 3 - 4 / 2")
	if !strings.Contains(out, "(((1 + 2) * 3) - (4 / 2))") {
		t.Fatalf("parens:\n%s", out)
	}
}

func TestMethodCallsAndRefs(t *testing.T) {
	out := roundTrip(t, "v: int = self.helper(1, 2)\nreturn v")
	if !strings.Contains(out, "self.helper(1, 2)") {
		t.Fatalf("call:\n%s", out)
	}
}

func TestNoneAndFloats(t *testing.T) {
	out := roundTrip(t, "f: float = 1.5\nx = None\nreturn int(f)")
	if !strings.Contains(out, "1.5") || !strings.Contains(out, "None") {
		t.Fatalf("literals:\n%s", out)
	}
}
