// Package printer renders DSL AST nodes back to source text. It is used by
// the compiler CLI to show split-function listings, and by tests to assert
// the shape of AST rewrites.
package printer

import (
	"fmt"
	"strconv"
	"strings"

	"statefulentities.dev/stateflow/internal/lang/ast"
	"statefulentities.dev/stateflow/internal/lang/token"
)

// Expr renders an expression as source text.
func Expr(e ast.Expr) string {
	switch x := e.(type) {
	case nil:
		return "None"
	case *ast.Name:
		return x.Ident
	case *ast.SelfRef:
		return "self"
	case *ast.Attr:
		return Expr(x.Recv) + "." + x.Field
	case *ast.IntLit:
		return strconv.FormatInt(x.Value, 10)
	case *ast.FloatLit:
		return strconv.FormatFloat(x.Value, 'g', -1, 64)
	case *ast.StrLit:
		return strconv.Quote(x.Value)
	case *ast.BoolLit:
		if x.Value {
			return "True"
		}
		return "False"
	case *ast.NoneLit:
		return "None"
	case *ast.ListLit:
		parts := make([]string, len(x.Elems))
		for i, el := range x.Elems {
			parts[i] = Expr(el)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *ast.DictLit:
		parts := make([]string, len(x.Keys))
		for i := range x.Keys {
			parts[i] = Expr(x.Keys[i]) + ": " + Expr(x.Values[i])
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *ast.BinOp:
		return fmt.Sprintf("(%s %s %s)", Expr(x.Left), opText(x.Op), Expr(x.Right))
	case *ast.UnaryOp:
		if x.Op == token.KwNot {
			return "(not " + Expr(x.Operand) + ")"
		}
		return "(-" + Expr(x.Operand) + ")"
	case *ast.Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = Expr(a)
		}
		if x.Recv == nil {
			return fmt.Sprintf("%s(%s)", x.Func, strings.Join(args, ", "))
		}
		return fmt.Sprintf("%s.%s(%s)", Expr(x.Recv), x.Func, strings.Join(args, ", "))
	case *ast.Index:
		return Expr(x.Recv) + "[" + Expr(x.Idx) + "]"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

func opText(k token.Kind) string { return k.String() }

// Stmts renders a statement list with the given indentation prefix.
func Stmts(stmts []ast.Stmt, indent string) string {
	var sb strings.Builder
	for _, s := range stmts {
		writeStmt(&sb, s, indent)
	}
	return sb.String()
}

func writeStmt(sb *strings.Builder, s ast.Stmt, indent string) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		if x.Type != nil {
			fmt.Fprintf(sb, "%s%s: %s = %s\n", indent, Expr(x.Target), x.Type, Expr(x.Value))
		} else {
			fmt.Fprintf(sb, "%s%s = %s\n", indent, Expr(x.Target), Expr(x.Value))
		}
	case *ast.AugAssignStmt:
		fmt.Fprintf(sb, "%s%s %s= %s\n", indent, Expr(x.Target), opText(x.Op), Expr(x.Value))
	case *ast.ExprStmt:
		fmt.Fprintf(sb, "%s%s\n", indent, Expr(x.Value))
	case *ast.ReturnStmt:
		if x.Value == nil {
			fmt.Fprintf(sb, "%sreturn\n", indent)
		} else {
			fmt.Fprintf(sb, "%sreturn %s\n", indent, Expr(x.Value))
		}
	case *ast.IfStmt:
		fmt.Fprintf(sb, "%sif %s:\n", indent, Expr(x.Cond))
		sb.WriteString(Stmts(x.Then, indent+"    "))
		if len(x.Else) > 0 {
			fmt.Fprintf(sb, "%selse:\n", indent)
			sb.WriteString(Stmts(x.Else, indent+"    "))
		}
	case *ast.ForStmt:
		fmt.Fprintf(sb, "%sfor %s in %s:\n", indent, x.Var, Expr(x.Iterable))
		sb.WriteString(Stmts(x.Body, indent+"    "))
	case *ast.WhileStmt:
		fmt.Fprintf(sb, "%swhile %s:\n", indent, Expr(x.Cond))
		sb.WriteString(Stmts(x.Body, indent+"    "))
	case *ast.PassStmt:
		fmt.Fprintf(sb, "%spass\n", indent)
	case *ast.BreakStmt:
		fmt.Fprintf(sb, "%sbreak\n", indent)
	case *ast.ContinueStmt:
		fmt.Fprintf(sb, "%scontinue\n", indent)
	default:
		fmt.Fprintf(sb, "%s<%T>\n", indent, s)
	}
}
