// Package queue implements the replayable partitioned log that stands in
// for Apache Kafka: topics are split into partitions, each partition is an
// append-only record log addressed by offset, and consumers track offsets
// so any suffix can be replayed. The StateFun-model runtime uses it for
// ingress/egress and for function chaining (§3: "we use Kafka to re-insert
// an event to the streaming dataflow"); the StateFlow runtime uses it as
// the replayable source its snapshot protocol rolls back to.
package queue

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Record is one log entry.
type Record struct {
	Offset  int64
	Key     string
	Payload any
}

// Partition is an append-only record log.
type Partition struct {
	records []Record
}

// Append adds a record and returns its offset.
func (p *Partition) Append(key string, payload any) int64 {
	off := int64(len(p.records))
	p.records = append(p.records, Record{Offset: off, Key: key, Payload: payload})
	return off
}

// Read returns the record at offset, or ok=false past the end.
func (p *Partition) Read(offset int64) (Record, bool) {
	if offset < 0 || offset >= int64(len(p.records)) {
		return Record{}, false
	}
	return p.records[offset], true
}

// End returns the next offset to be written.
func (p *Partition) End() int64 { return int64(len(p.records)) }

// Topic is a named set of partitions.
type Topic struct {
	Name       string
	Partitions []*Partition
}

// PartitionFor routes a key to a partition by stable hash.
func (t *Topic) PartitionFor(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(t.Partitions)))
}

// Log is an in-memory multi-topic broker store. It is safe for concurrent
// use so both the simulator (single-threaded) and live tests can share it.
type Log struct {
	mu     sync.Mutex
	topics map[string]*Topic
}

// NewLog builds an empty log.
func NewLog() *Log {
	return &Log{topics: map[string]*Topic{}}
}

// CreateTopic declares a topic with the given partition count. Declaring
// an existing topic is an error.
func (l *Log) CreateTopic(name string, partitions int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if partitions <= 0 {
		return fmt.Errorf("queue: topic %s needs at least one partition", name)
	}
	if _, dup := l.topics[name]; dup {
		return fmt.Errorf("queue: topic %s already exists", name)
	}
	t := &Topic{Name: name}
	for i := 0; i < partitions; i++ {
		t.Partitions = append(t.Partitions, &Partition{})
	}
	l.topics[name] = t
	return nil
}

// Topic fetches a topic.
func (l *Log) Topic(name string) (*Topic, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.topics[name]
	if !ok {
		return nil, fmt.Errorf("queue: unknown topic %s", name)
	}
	return t, nil
}

// Topics lists topic names sorted.
func (l *Log) Topics() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.topics))
	for n := range l.topics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Produce appends to the partition selected by key hash and returns
// (partition, offset).
func (l *Log) Produce(topic, key string, payload any) (int, int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.topics[topic]
	if !ok {
		return 0, 0, fmt.Errorf("queue: unknown topic %s", topic)
	}
	p := t.PartitionFor(key)
	off := t.Partitions[p].Append(key, payload)
	return p, off, nil
}

// ProduceTo appends to an explicit partition.
func (l *Log) ProduceTo(topic string, partition int, key string, payload any) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.topics[topic]
	if !ok {
		return 0, fmt.Errorf("queue: unknown topic %s", topic)
	}
	if partition < 0 || partition >= len(t.Partitions) {
		return 0, fmt.Errorf("queue: topic %s has no partition %d", topic, partition)
	}
	return t.Partitions[partition].Append(key, payload), nil
}

// Fetch reads one record from a topic partition at the given offset.
func (l *Log) Fetch(topic string, partition int, offset int64) (Record, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.topics[topic]
	if !ok {
		return Record{}, false, fmt.Errorf("queue: unknown topic %s", topic)
	}
	if partition < 0 || partition >= len(t.Partitions) {
		return Record{}, false, fmt.Errorf("queue: topic %s has no partition %d", topic, partition)
	}
	rec, ok := t.Partitions[partition].Read(offset)
	return rec, ok, nil
}

// End returns the end offset of a topic partition.
func (l *Log) End(topic string, partition int) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.topics[topic]
	if !ok {
		return 0, fmt.Errorf("queue: unknown topic %s", topic)
	}
	if partition < 0 || partition >= len(t.Partitions) {
		return 0, fmt.Errorf("queue: topic %s has no partition %d", topic, partition)
	}
	return t.Partitions[partition].End(), nil
}

// PartitionCount returns the number of partitions of a topic.
func (l *Log) PartitionCount(topic string) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.topics[topic]
	if !ok {
		return 0, fmt.Errorf("queue: unknown topic %s", topic)
	}
	return len(t.Partitions), nil
}

// Group tracks per-partition consumer offsets, like a Kafka consumer
// group. Offsets only move via Commit, so a consumer can re-read (replay)
// any suffix after a failure.
type Group struct {
	mu      sync.Mutex
	offsets map[string][]int64 // topic -> per-partition next offset
}

// NewGroup builds an empty consumer group.
func NewGroup() *Group {
	return &Group{offsets: map[string][]int64{}}
}

// Subscribe initializes offsets for a topic.
func (g *Group) Subscribe(topic string, partitions int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.offsets[topic]; !ok {
		g.offsets[topic] = make([]int64, partitions)
	}
}

// Position returns the next offset to consume.
func (g *Group) Position(topic string, partition int) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	offs, ok := g.offsets[topic]
	if !ok || partition >= len(offs) {
		return 0
	}
	return offs[partition]
}

// Commit advances the consumed position.
func (g *Group) Commit(topic string, partition int, next int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if offs, ok := g.offsets[topic]; ok && partition < len(offs) {
		offs[partition] = next
	}
}

// Snapshot copies all offsets (stored inside state snapshots so recovery
// knows where to replay from).
func (g *Group) Snapshot() map[string][]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string][]int64, len(g.offsets))
	for t, offs := range g.offsets {
		out[t] = append([]int64(nil), offs...)
	}
	return out
}

// Restore resets offsets from a snapshot.
func (g *Group) Restore(snap map[string][]int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.offsets = map[string][]int64{}
	for t, offs := range snap {
		g.offsets[t] = append([]int64(nil), offs...)
	}
}
