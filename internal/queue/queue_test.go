package queue

import (
	"fmt"
	"sync"
	"testing"
)

func newLog(t *testing.T, topic string, parts int) *Log {
	t.Helper()
	l := NewLog()
	if err := l.CreateTopic(topic, parts); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestProduceFetchRoundTrip(t *testing.T) {
	l := newLog(t, "in", 2)
	p, off, err := l.Produce("in", "k1", "hello")
	if err != nil {
		t.Fatal(err)
	}
	rec, ok, err := l.Fetch("in", p, off)
	if err != nil || !ok {
		t.Fatalf("fetch: %v %v", ok, err)
	}
	if rec.Payload.(string) != "hello" || rec.Key != "k1" {
		t.Fatalf("record: %+v", rec)
	}
}

func TestKeyPartitioningIsStable(t *testing.T) {
	l := newLog(t, "in", 4)
	p1, _, _ := l.Produce("in", "same-key", 1)
	p2, _, _ := l.Produce("in", "same-key", 2)
	if p1 != p2 {
		t.Fatalf("same key landed on %d and %d", p1, p2)
	}
}

func TestOffsetsAreDense(t *testing.T) {
	l := newLog(t, "in", 1)
	for i := 0; i < 5; i++ {
		_, off, err := l.Produce("in", "k", i)
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i) {
			t.Fatalf("offset %d, want %d", off, i)
		}
	}
	end, _ := l.End("in", 0)
	if end != 5 {
		t.Fatalf("end: %d", end)
	}
}

func TestReplayFromOffset(t *testing.T) {
	l := newLog(t, "in", 1)
	for i := 0; i < 10; i++ {
		if _, err := l.ProduceTo("in", 0, "k", i); err != nil {
			t.Fatal(err)
		}
	}
	// Replay the suffix starting at 6.
	var replayed []int
	for off := int64(6); ; off++ {
		rec, ok, err := l.Fetch("in", 0, off)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		replayed = append(replayed, rec.Payload.(int))
	}
	if len(replayed) != 4 || replayed[0] != 6 || replayed[3] != 9 {
		t.Fatalf("replayed: %v", replayed)
	}
}

func TestErrors(t *testing.T) {
	l := newLog(t, "in", 1)
	if err := l.CreateTopic("in", 1); err == nil {
		t.Fatal("duplicate topic must fail")
	}
	if err := l.CreateTopic("bad", 0); err == nil {
		t.Fatal("zero partitions must fail")
	}
	if _, _, err := l.Produce("nope", "k", 1); err == nil {
		t.Fatal("unknown topic must fail")
	}
	if _, err := l.ProduceTo("in", 9, "k", 1); err == nil {
		t.Fatal("bad partition must fail")
	}
	if _, _, err := l.Fetch("in", 9, 0); err == nil {
		t.Fatal("bad partition must fail")
	}
	if _, err := l.End("nope", 0); err == nil {
		t.Fatal("unknown topic must fail")
	}
	if _, err := l.Topic("nope"); err == nil {
		t.Fatal("unknown topic must fail")
	}
	if _, err := l.PartitionCount("nope"); err == nil {
		t.Fatal("unknown topic must fail")
	}
}

func TestFetchPastEnd(t *testing.T) {
	l := newLog(t, "in", 1)
	_, ok, err := l.Fetch("in", 0, 0)
	if err != nil || ok {
		t.Fatalf("empty fetch: ok=%v err=%v", ok, err)
	}
}

func TestTopicsSorted(t *testing.T) {
	l := NewLog()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := l.CreateTopic(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := l.Topics()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topics: %v", got)
		}
	}
}

func TestGroupOffsets(t *testing.T) {
	g := NewGroup()
	g.Subscribe("in", 2)
	if g.Position("in", 0) != 0 {
		t.Fatal("initial position")
	}
	g.Commit("in", 0, 5)
	g.Commit("in", 1, 3)
	if g.Position("in", 0) != 5 || g.Position("in", 1) != 3 {
		t.Fatal("commit lost")
	}
	// Snapshot / restore round trip.
	snap := g.Snapshot()
	g.Commit("in", 0, 99)
	g.Restore(snap)
	if g.Position("in", 0) != 5 {
		t.Fatalf("restore: %d", g.Position("in", 0))
	}
	// Unknown topic is position 0.
	if g.Position("zz", 0) != 0 {
		t.Fatal("unknown topic position")
	}
}

func TestConcurrentProducers(t *testing.T) {
	l := newLog(t, "in", 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, _, err := l.Produce("in", fmt.Sprintf("k%d-%d", w, i), i); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for p := 0; p < 4; p++ {
		end, err := l.End("in", p)
		if err != nil {
			t.Fatal(err)
		}
		total += end
	}
	if total != 800 {
		t.Fatalf("records: %d", total)
	}
}

func TestPartitionForDistribution(t *testing.T) {
	l := newLog(t, "in", 4)
	topic, _ := l.Topic("in")
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[topic.PartitionFor(fmt.Sprintf("key-%d", i))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("keys hash to only %d partitions", len(seen))
	}
}
