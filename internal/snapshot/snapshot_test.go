package snapshot

import (
	"testing"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/state"
)

func TestBeginWriteRead(t *testing.T) {
	s := NewStore(nil)
	id := s.Begin(5, map[string][]int64{"requests": {42}})
	if err := s.Write(id, "w0", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	img, ok := s.Read(id, "w0")
	if !ok || len(img) != 3 {
		t.Fatalf("read: %v %v", img, ok)
	}
	meta, ok := s.Get(id)
	if !ok || meta.Epoch != 5 || meta.SourceOffsets["requests"][0] != 42 {
		t.Fatalf("meta: %+v", meta)
	}
	if meta.Bytes["w0"] != 3 {
		t.Fatalf("bytes: %v", meta.Bytes)
	}
}

// A snapshot still missing worker images (e.g. a worker died before
// persisting) must never be returned by Latest — recovery would restore
// a half-written, inconsistent cut.
func TestLatestSkipsIncompleteSnapshots(t *testing.T) {
	s := NewStore(nil)
	complete := s.BeginWithPending(1, nil, nil, 2)
	if err := s.Write(complete, "w0", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(complete, "w1", []byte{2}); err != nil {
		t.Fatal(err)
	}
	half := s.BeginWithPending(2, nil, nil, 2)
	if err := s.Write(half, "w0", []byte{3}); err != nil {
		t.Fatal(err)
	}
	m, ok := s.Latest()
	if !ok || m.ID != complete {
		t.Fatalf("latest must skip the half-written snapshot: %+v %v", m, ok)
	}
	if err := s.Write(half, "w1", []byte{4}); err != nil {
		t.Fatal(err)
	}
	if m, _ := s.Latest(); m.ID != half {
		t.Fatalf("completed snapshot must become latest: %+v", m)
	}
}

func TestLatest(t *testing.T) {
	s := NewStore(nil)
	if _, ok := s.Latest(); ok {
		t.Fatal("empty store has no latest")
	}
	s.Begin(1, nil)
	id2 := s.Begin(2, nil)
	m, ok := s.Latest()
	if !ok || m.ID != id2 {
		t.Fatalf("latest: %+v", m)
	}
	if s.Count() != 2 {
		t.Fatalf("count: %d", s.Count())
	}
}

func TestWriteUnknownSnapshot(t *testing.T) {
	s := NewStore(nil)
	if err := s.Write(99, "w0", nil); err == nil {
		t.Fatal("unknown snapshot must fail")
	}
}

func TestRestoreStore(t *testing.T) {
	snaps := NewStore(nil)
	st := state.NewStore(nil)
	st.PutMap(interp.EntityRef{Class: "A", Key: "k"}, interp.MapState{"v": interp.IntV(7)})
	id := snaps.Begin(1, nil)
	if err := snaps.Write(id, "w0", st.Encode()); err != nil {
		t.Fatal(err)
	}
	back, err := snaps.RestoreStore(id, "w0")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := back.Lookup(interp.EntityRef{Class: "A", Key: "k"})
	v, has := got.Get("v")
	if !ok || !has || v.I != 7 {
		t.Fatalf("restored: %v", got)
	}
	// A worker with no image restores to empty.
	empty, err := snaps.RestoreStore(id, "w-unknown")
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty restore: %v %v", empty.Len(), err)
	}
}

func TestImagesAreCopied(t *testing.T) {
	s := NewStore(nil)
	id := s.Begin(1, nil)
	buf := []byte{1, 2, 3}
	if err := s.Write(id, "w0", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutating the caller's buffer must not corrupt the store
	img, _ := s.Read(id, "w0")
	if img[0] != 1 {
		t.Fatal("image aliased caller buffer")
	}
}

func TestWorkersSorted(t *testing.T) {
	s := NewStore(nil)
	id := s.Begin(1, nil)
	for _, w := range []string{"w2", "w0", "w1"} {
		if err := s.Write(id, w, []byte{0}); err != nil {
			t.Fatal(err)
		}
	}
	ws := s.Workers(id)
	if len(ws) != 3 || ws[0] != "w0" || ws[2] != "w2" {
		t.Fatalf("workers: %v", ws)
	}
}

func TestMultipleSnapshotsRetained(t *testing.T) {
	s := NewStore(nil)
	id1 := s.Begin(1, map[string][]int64{"requests": {10}})
	id2 := s.Begin(2, map[string][]int64{"requests": {20}})
	if err := s.Write(id1, "w0", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id2, "w0", []byte("new")); err != nil {
		t.Fatal(err)
	}
	old, _ := s.Read(id1, "w0")
	if string(old) != "old" {
		t.Fatal("older snapshots must be retained")
	}
}

// A snapshot image is immutable once written: a duplicated or delayed
// snapshot request re-arriving after later batches committed must not
// overwrite the aligned cut with newer state.
func TestWriteIsFirstWriteWins(t *testing.T) {
	s := NewStore(nil)
	id := s.Begin(1, nil)
	if err := s.Write(id, "w0", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, "w0", []byte{9, 9, 9, 9}); err != nil {
		t.Fatalf("duplicate write must be an accepted no-op, got %v", err)
	}
	img, ok := s.Read(id, "w0")
	if !ok || len(img) != 3 || img[0] != 1 {
		t.Fatalf("image was overwritten: %v", img)
	}
	meta, _ := s.Get(id)
	if meta.Bytes["w0"] != 3 {
		t.Fatalf("bytes re-accounted on duplicate write: %v", meta.Bytes)
	}
}

// Compact retires old snapshots while preserving the newest complete
// restore points, skipping over torn cuts, and keeping Count (the id
// bound) stable.
func TestCompactRetiresOldSnapshots(t *testing.T) {
	s := NewStore(nil)
	var ids []int64
	for i := 0; i < 6; i++ {
		id := s.BeginWithPending(int64(i), nil, nil, 1)
		if err := s.Write(id, "w0", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	torn := s.BeginWithPending(6, nil, nil, 2) // one image missing: torn forever
	if err := s.Write(torn, "w0", []byte{9}); err != nil {
		t.Fatal(err)
	}

	if got := s.Compact(0); got != 0 {
		t.Fatalf("Compact(0) retired %d", got)
	}
	retired := s.Compact(2)
	if retired != 4 {
		t.Fatalf("retired %d snapshots, want 4", retired)
	}
	if s.Count() != 7 {
		t.Fatalf("Count changed to %d", s.Count())
	}
	if s.Retained() != 3 { // 2 complete + the newer torn one
		t.Fatalf("retained %d", s.Retained())
	}
	// The newest complete snapshot is still restorable; retired ones are
	// gone.
	latest, ok := s.Latest()
	if !ok || latest.ID != ids[5] {
		t.Fatalf("latest after compact: %+v ok=%v", latest, ok)
	}
	if _, ok := s.Read(ids[5], "w0"); !ok {
		t.Fatal("latest complete snapshot lost its image")
	}
	if _, ok := s.Read(ids[0], "w0"); ok {
		t.Fatal("retired snapshot still readable")
	}
	if _, ok := s.Get(ids[1]); ok {
		t.Fatal("retired meta still present")
	}
	// A second compaction with a bigger budget than complete snapshots
	// keeps everything.
	if got := s.Compact(5); got != 0 {
		t.Fatalf("over-budget compact retired %d", got)
	}
}
