// Package snapshot implements the consistent-snapshot fault-tolerance
// protocol of the StateFlow runtime (§3): aligned snapshots taken at epoch
// boundaries (when no transaction is in flight, the epoch barrier doubles
// as the Chandy-Lamport alignment point) persisted to a durable store,
// together with the replayable-source offsets needed to roll forward after
// recovery.
package snapshot

import (
	"fmt"
	"sort"
	"sync"

	"statefulentities.dev/stateflow/internal/state"
)

// Meta describes one completed snapshot.
type Meta struct {
	ID    int64 // monotonically increasing snapshot id
	Epoch int64 // the epoch after which the snapshot was taken
	// SourceOffsets records, per source partition, how many records had
	// been consumed into committed epochs when the snapshot was taken;
	// recovery replays the suffix.
	SourceOffsets map[string][]int64
	// Bytes per worker image, for reporting.
	Bytes map[string]int
}

// Store is the durable snapshot repository (standing in for the DFS/object
// store a production deployment would use). It retains every snapshot so
// tests can restore arbitrary points.
type Store struct {
	mu     sync.Mutex
	nextID int64
	metas  []Meta
	images map[int64]map[string][]byte // snapshot id -> worker id -> encoded state
}

// NewStore returns an empty snapshot store.
func NewStore() *Store {
	return &Store{images: map[int64]map[string][]byte{}}
}

// Begin allocates a snapshot id for an epoch.
func (s *Store) Begin(epoch int64, sourceOffsets map[string][]int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.metas = append(s.metas, Meta{
		ID: id, Epoch: epoch, SourceOffsets: sourceOffsets, Bytes: map[string]int{},
	})
	s.images[id] = map[string][]byte{}
	return id
}

// Write stores one worker's state image for a snapshot.
func (s *Store) Write(id int64, worker string, image []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	imgs, ok := s.images[id]
	if !ok {
		return fmt.Errorf("snapshot: unknown snapshot %d", id)
	}
	imgs[worker] = append([]byte(nil), image...)
	for i := range s.metas {
		if s.metas[i].ID == id {
			s.metas[i].Bytes[worker] = len(image)
		}
	}
	return nil
}

// Latest returns the most recent snapshot meta, or ok=false when none
// exists.
func (s *Store) Latest() (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.metas) == 0 {
		return Meta{}, false
	}
	return s.metas[len(s.metas)-1], true
}

// Get returns the meta for a snapshot id.
func (s *Store) Get(id int64) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.metas {
		if m.ID == id {
			return m, true
		}
	}
	return Meta{}, false
}

// Read fetches a worker's image from a snapshot.
func (s *Store) Read(id int64, worker string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	imgs, ok := s.images[id]
	if !ok {
		return nil, false
	}
	img, ok := imgs[worker]
	return img, ok
}

// RestoreStore decodes a worker's image into a state store. A worker with
// no image in the snapshot (it held no state yet) restores to empty.
func (s *Store) RestoreStore(id int64, worker string) (*state.Store, error) {
	img, ok := s.Read(id, worker)
	if !ok {
		return state.NewStore(), nil
	}
	return state.DecodeStore(img)
}

// Workers lists workers with images in a snapshot, sorted.
func (s *Store) Workers(id int64) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	imgs := s.images[id]
	out := make([]string, 0, len(imgs))
	for w := range imgs {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of snapshots taken.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.metas)
}
