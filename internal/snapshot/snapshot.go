// Package snapshot implements the consistent-snapshot fault-tolerance
// protocol of the StateFlow runtime (§3): aligned snapshots taken at epoch
// boundaries (when no transaction is in flight, the epoch barrier doubles
// as the Chandy-Lamport alignment point) persisted to a durable store,
// together with the replayable-source offsets needed to roll forward after
// recovery.
package snapshot

import (
	"fmt"
	"sort"
	"sync"

	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/state"
)

// Meta describes one completed snapshot.
type Meta struct {
	ID    int64 // monotonically increasing snapshot id
	Epoch int64 // the epoch after which the snapshot was taken
	// SourceOffsets records, per source partition, how many records had
	// been consumed into committed epochs when the snapshot was taken;
	// recovery replays the suffix.
	SourceOffsets map[string][]int64
	// PendingPositions records, per source topic, the log positions of
	// requests that had been consumed but were still awaiting retry
	// (conflict-aborted) when the snapshot was taken. Their effects are
	// not in the images, so recovery must re-fetch and replay them in
	// addition to the suffix — without this the aligned cut would lose
	// in-flight retries whose positions predate the offset.
	PendingPositions map[string][]int64
	// Expected is the number of worker images the snapshot needs to be
	// complete (0 means unknown: treated as complete). Latest skips
	// snapshots that are still missing images, so a recovery triggered
	// mid-snapshot never restores a half-written cut.
	Expected int
	// Bytes per worker image, for reporting.
	Bytes map[string]int
}

// Store is the durable snapshot repository (standing in for the DFS/object
// store a production deployment would use). It retains every snapshot so
// tests can restore arbitrary points.
type Store struct {
	mu      sync.Mutex
	nextID  int64
	metas   []Meta
	images  map[int64]map[string][]byte // snapshot id -> worker id -> encoded state
	layouts *ir.Layouts                 // class layouts for restored state rows
}

// NewStore returns an empty snapshot store. The class-layout registry is
// used to lay out restored state rows; nil is allowed (restored rows fall
// back to name-keyed maps).
func NewStore(layouts *ir.Layouts) *Store {
	return &Store{images: map[int64]map[string][]byte{}, layouts: layouts}
}

// Begin allocates a snapshot id for an epoch.
func (s *Store) Begin(epoch int64, sourceOffsets map[string][]int64) int64 {
	return s.BeginWithPending(epoch, sourceOffsets, nil, 0)
}

// BeginWithPending allocates a snapshot id, additionally recording the
// positions of consumed-but-pending requests (see Meta.PendingPositions)
// and the number of worker images required for completeness.
func (s *Store) BeginWithPending(epoch int64, sourceOffsets, pending map[string][]int64, expected int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.metas = append(s.metas, Meta{
		ID: id, Epoch: epoch, SourceOffsets: sourceOffsets,
		PendingPositions: pending, Expected: expected, Bytes: map[string]int{},
	})
	s.images[id] = map[string][]byte{}
	return id
}

// Write stores one worker's state image for a snapshot. Writes are
// first-write-wins: a snapshot image, once persisted, is immutable — a
// duplicated or delayed snapshot request re-arriving after later batches
// committed must not overwrite the aligned cut with newer state.
func (s *Store) Write(id int64, worker string, image []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	imgs, ok := s.images[id]
	if !ok {
		return fmt.Errorf("snapshot: unknown snapshot %d", id)
	}
	if _, dup := imgs[worker]; dup {
		return nil // immutable once written
	}
	imgs[worker] = append([]byte(nil), image...)
	for i := range s.metas {
		if s.metas[i].ID == id {
			s.metas[i].Bytes[worker] = len(image)
		}
	}
	return nil
}

// Latest returns the most recent complete snapshot meta (every expected
// worker image written), or ok=false when none exists. A snapshot still
// being written — e.g. when recovery fires mid-snapshot because a worker
// died before persisting its image — is skipped, so restores never use a
// half-written cut.
func (s *Store) Latest() (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.metas) - 1; i >= 0; i-- {
		m := s.metas[i]
		if m.Expected == 0 || len(s.images[m.ID]) >= m.Expected {
			return m, true
		}
	}
	return Meta{}, false
}

// Get returns the meta for a snapshot id.
func (s *Store) Get(id int64) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.metas {
		if m.ID == id {
			return m, true
		}
	}
	return Meta{}, false
}

// Read fetches a worker's image from a snapshot.
func (s *Store) Read(id int64, worker string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	imgs, ok := s.images[id]
	if !ok {
		return nil, false
	}
	img, ok := imgs[worker]
	return img, ok
}

// RestoreStore decodes a worker's image into a state store. A worker with
// no image in the snapshot (it held no state yet) restores to empty.
func (s *Store) RestoreStore(id int64, worker string) (*state.Store, error) {
	img, ok := s.Read(id, worker)
	if !ok {
		return state.NewStore(s.layouts), nil
	}
	return state.DecodeStore(img, s.layouts)
}

// Workers lists workers with images in a snapshot, sorted.
func (s *Store) Workers(id int64) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	imgs := s.images[id]
	out := make([]string, 0, len(imgs))
	for w := range imgs {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of snapshots ever begun — a stable id bound
// (snapshot ids are 1..Count) that compaction does not shrink.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.nextID)
}

// Retained returns the number of snapshots still held (Count minus the
// ones Compact retired).
func (s *Store) Retained() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.metas)
}

// Compact retires old snapshots, keeping the newest keep complete ones
// (and everything newer than the oldest of those, complete or torn — a
// torn cut younger than a retained restore point still documents a
// failure under investigation). Recovery only ever restores the latest
// complete snapshot, so compaction never removes a restore target; it
// bounds the store the way log compaction bounds the dlog. keep <= 0 is
// a no-op. It returns the number of snapshots retired.
func (s *Store) Compact(keep int) int {
	if keep <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Find the keep-th newest complete snapshot; everything older goes.
	complete := 0
	cutoff := int64(-1)
	for i := len(s.metas) - 1; i >= 0; i-- {
		m := s.metas[i]
		if m.Expected == 0 || len(s.images[m.ID]) >= m.Expected {
			complete++
			if complete == keep {
				cutoff = m.ID
				break
			}
		}
	}
	if cutoff < 0 {
		return 0 // fewer complete snapshots than the budget: keep all
	}
	kept := s.metas[:0]
	retired := 0
	for _, m := range s.metas {
		if m.ID < cutoff {
			delete(s.images, m.ID)
			retired++
			continue
		}
		kept = append(kept, m)
	}
	s.metas = kept
	return retired
}
