package statefun

import (
	"testing"
	"time"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
)

func TestEgressDedupes(t *testing.T) {
	fx := newFixture(t, 1, []sysapi.Scheduled{
		{At: time.Millisecond, Req: readReq("r1", acct(0))},
	})
	fx.cluster.RunUntil(time.Second)
	// Replay the egress record manually: the egress must drop it.
	end, _ := fx.sys.Log.End("egress", 0)
	if end == 0 {
		t.Fatal("no egress records")
	}
	rec, _, _ := fx.sys.Log.Fetch("egress", 0, 0)
	fx.cluster.Inject(fx.cluster.Now(), "kafka", "fl-egress", msgRecord{
		Topic: "egress", Partition: 0, Env: rec.Payload.(envelope),
	})
	fx.cluster.RunUntil(fx.cluster.Now() + time.Second)
	if fx.client.Done != 1 {
		t.Fatalf("duplicate delivered: %d", fx.client.Done)
	}
}

func TestKeyForCtor(t *testing.T) {
	fx := newFixture(t, 0, nil)
	key, err := fx.sys.KeyForCtor("Account", []interp.Value{
		interp.StrV("alice"), interp.IntV(1),
	})
	if err != nil || key != "alice" {
		t.Fatalf("key: %q %v", key, err)
	}
	if _, err := fx.sys.KeyForCtor("Ghost", nil); err == nil {
		t.Fatal("unknown class")
	}
}

func TestIngressRecordsAreReplayable(t *testing.T) {
	// Every client request and every chained event lands in the log, so a
	// replayable source exists for the whole pipeline.
	fx := newFixture(t, 2, []sysapi.Scheduled{
		{At: time.Millisecond, Req: transferReq("t1", acct(0), acct(1), 5)},
		{At: 2 * time.Millisecond, Req: readReq("r1", acct(0))},
	})
	fx.cluster.RunUntil(2 * time.Second)
	parts, _ := fx.sys.Log.PartitionCount("ingress")
	var total int64
	for p := 0; p < parts; p++ {
		end, _ := fx.sys.Log.End("ingress", p)
		total += end
	}
	// 2 client requests + at least 2 chained re-insertions for the
	// transfer (deposit invoke, resume).
	if total < 4 {
		t.Fatalf("ingress records: %d", total)
	}
}

func TestRemoteRuntimeLoadBalancing(t *testing.T) {
	var script []sysapi.Scheduled
	for i := 0; i < 30; i++ {
		script = append(script, sysapi.Scheduled{
			At: time.Duration(i+1) * 5 * time.Millisecond, Req: readReq(reqID(i), acct(0)),
		})
	}
	fx := newFixture(t, 1, script)
	fx.cluster.RunUntil(5 * time.Second)
	// Round-robin dispatch must spread invocations over all runtimes.
	for _, fn := range fx.sys.FnRuntimes() {
		if fn.Invocations == 0 {
			t.Fatalf("runtime %s idle", fn.id)
		}
	}
}

func reqID(i int) string { return "r" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestBreakdownRecorded(t *testing.T) {
	fx := newFixture(t, 1, []sysapi.Scheduled{
		{At: time.Millisecond, Req: updateReq("u1", acct(0), 1)},
	})
	fx.cluster.RunUntil(time.Second)
	var fnTotal, wTotal time.Duration
	for _, f := range fx.sys.FnRuntimes() {
		fnTotal += f.Breakdown.Total()
	}
	for _, w := range fx.sys.Workers() {
		wTotal += w.Breakdown.Total()
	}
	if fnTotal == 0 || wTotal == 0 {
		t.Fatalf("breakdowns: fn=%s worker=%s", fnTotal, wTotal)
	}
	var split time.Duration
	for _, f := range fx.sys.FnRuntimes() {
		split += f.Breakdown.Get("splitting_instrumentation")
	}
	if frac := float64(split) / float64(fnTotal); frac >= 0.01 {
		t.Fatalf("splitting share: %f", frac)
	}
}
