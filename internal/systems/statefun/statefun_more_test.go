package statefun

import (
	"testing"
	"time"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
)

// TestIngressDedupWindowBounded pins the broker dedup set's retention
// contract (the same horizon the StateFlow coordinator applies to its
// seen/delivered maps): a duplicate inside the window is suppressed and
// refreshes the window (a steadily retrying client is never evicted mid
// flight, however long it retries), the entry is pruned once the window
// passes with no further arrivals — so the set stays bounded and, by the
// documented trade-off, a duplicate lagging the window re-executes.
func TestIngressDedupWindowBounded(t *testing.T) {
	retention := DefaultConfig().DedupRetention // 30s
	fx := newFixture(t, 1, []sysapi.Scheduled{
		{At: time.Millisecond, Req: updateReq("dup", acct(0), 10)},
		// In-window duplicate: deduped, window refreshed.
		{At: 100 * time.Millisecond, Req: updateReq("dup", acct(0), 10)},
		// 29s later — inside the window of the 100ms refresh: deduped
		// and refreshed again.
		{At: 29 * time.Second, Req: updateReq("dup", acct(0), 10)},
		// 45s: more than one retention after the FIRST arrival, but only
		// 16s after the last refresh — still deduped (the refresh is
		// what keeps a retrying in-flight request safe).
		{At: 45 * time.Second, Req: updateReq("dup", acct(0), 10)},
		// 80s: a full window after the last arrival at 45s. The entry
		// was pruned; this lagging duplicate re-executes (the
		// dedup-window contract, not a bug).
		{At: 80 * time.Second, Req: updateReq("dup", acct(0), 10)},
	})
	fx.cluster.RunUntil(retention / 2)
	if got := balance(t, fx.sys, acct(0)); got != 110 {
		t.Fatalf("after in-window duplicate: balance %d, want 110 (deduped once)", got)
	}
	fx.cluster.RunUntil(50 * time.Second)
	if got := balance(t, fx.sys, acct(0)); got != 110 {
		t.Fatalf("after refresh chain: balance %d, want 110 (retrying id must stay deduped)", got)
	}
	fx.cluster.RunUntil(100 * time.Second)
	if got := balance(t, fx.sys, acct(0)); got != 120 {
		t.Fatalf("after out-of-window duplicate: balance %d, want 120 (entry pruned, re-executed)", got)
	}
	// The set itself is bounded: the pre-window ids are gone.
	b := fx.sys.broker
	if len(b.seen) != len(b.seenOrder) {
		t.Fatalf("seen map (%d) and FIFO (%d) diverge", len(b.seen), len(b.seenOrder))
	}
	if len(b.seen) != 1 {
		t.Fatalf("dedup set not pruned: %d entries, want 1 (only the post-window arrival)", len(b.seen))
	}
}

func TestEgressDedupes(t *testing.T) {
	fx := newFixture(t, 1, []sysapi.Scheduled{
		{At: time.Millisecond, Req: readReq("r1", acct(0))},
	})
	fx.cluster.RunUntil(time.Second)
	// Replay the egress record manually: the egress must drop it.
	end, _ := fx.sys.Log.End("egress", 0)
	if end == 0 {
		t.Fatal("no egress records")
	}
	rec, _, _ := fx.sys.Log.Fetch("egress", 0, 0)
	fx.cluster.Inject(fx.cluster.Now(), "kafka", "fl-egress", msgRecord{
		Topic: "egress", Partition: 0, Env: rec.Payload.(envelope),
	})
	fx.cluster.RunUntil(fx.cluster.Now() + time.Second)
	if fx.client.Done != 1 {
		t.Fatalf("duplicate delivered: %d", fx.client.Done)
	}
}

func TestKeyForCtor(t *testing.T) {
	fx := newFixture(t, 0, nil)
	key, err := fx.sys.KeyForCtor("Account", []interp.Value{
		interp.StrV("alice"), interp.IntV(1),
	})
	if err != nil || key != "alice" {
		t.Fatalf("key: %q %v", key, err)
	}
	if _, err := fx.sys.KeyForCtor("Ghost", nil); err == nil {
		t.Fatal("unknown class")
	}
}

func TestIngressRecordsAreReplayable(t *testing.T) {
	// Every client request and every chained event lands in the log, so a
	// replayable source exists for the whole pipeline.
	fx := newFixture(t, 2, []sysapi.Scheduled{
		{At: time.Millisecond, Req: transferReq("t1", acct(0), acct(1), 5)},
		{At: 2 * time.Millisecond, Req: readReq("r1", acct(0))},
	})
	fx.cluster.RunUntil(2 * time.Second)
	parts, _ := fx.sys.Log.PartitionCount("ingress")
	var total int64
	for p := 0; p < parts; p++ {
		end, _ := fx.sys.Log.End("ingress", p)
		total += end
	}
	// 2 client requests + at least 2 chained re-insertions for the
	// transfer (deposit invoke, resume).
	if total < 4 {
		t.Fatalf("ingress records: %d", total)
	}
}

func TestRemoteRuntimeLoadBalancing(t *testing.T) {
	var script []sysapi.Scheduled
	for i := 0; i < 30; i++ {
		script = append(script, sysapi.Scheduled{
			At: time.Duration(i+1) * 5 * time.Millisecond, Req: readReq(reqID(i), acct(0)),
		})
	}
	fx := newFixture(t, 1, script)
	fx.cluster.RunUntil(5 * time.Second)
	// Round-robin dispatch must spread invocations over all runtimes.
	for _, fn := range fx.sys.FnRuntimes() {
		if fn.Invocations == 0 {
			t.Fatalf("runtime %s idle", fn.id)
		}
	}
}

func reqID(i int) string { return "r" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestBreakdownRecorded(t *testing.T) {
	fx := newFixture(t, 1, []sysapi.Scheduled{
		{At: time.Millisecond, Req: updateReq("u1", acct(0), 1)},
	})
	fx.cluster.RunUntil(time.Second)
	var fnTotal, wTotal time.Duration
	for _, f := range fx.sys.FnRuntimes() {
		fnTotal += f.Breakdown.Total()
	}
	for _, w := range fx.sys.Workers() {
		wTotal += w.Breakdown.Total()
	}
	if fnTotal == 0 || wTotal == 0 {
		t.Fatalf("breakdowns: fn=%s worker=%s", fnTotal, wTotal)
	}
	var split time.Duration
	for _, f := range fx.sys.FnRuntimes() {
		split += f.Breakdown.Get("splitting_instrumentation")
	}
	if frac := float64(split) / float64(fnTotal); frac >= 0.01 {
		t.Fatalf("splitting share: %f", frac)
	}
}

// TestIngressFloorAbsorbsPostPruneDuplicate pins the broker's per-source
// dedup floor, the statefun-side port of the StateFlow coordinator's
// dedupFloor (see stateflow's TestLateDuplicateAbsorbedAfterPruning).
// Pre-fix, the ingress dedup set was the broker's ONLY duplicate
// defense: once retention pruned a builder-minted id's seen-entry, a
// very late wire duplicate of that id was re-produced into the ingress
// topic and the update executed a second time. Post-fix, pruning a
// builder id raises its source's floor, and any arrival at or below the
// floor is absorbed (counted in LateDuplicates) instead of re-produced.
// The UncheckedIngressFloor hook re-introduces the pre-fix hole and the
// test asserts the double execution the floor prevents — proving the
// floor is load-bearing, not incidental. (The broker models a durable
// external log and is not crashable in the sim, so unlike the StateFlow
// pin there is no reboot leg here.)
func TestIngressFloorAbsorbsPostPruneDuplicate(t *testing.T) {
	script := func() (first sysapi.Request, sched []sysapi.Scheduled) {
		b := sysapi.NewBuilder("cl-")
		first = b.Next(interp.EntityRef{Class: "Account", Key: acct(0)}, "update",
			[]interp.Value{interp.IntV(10)}, "update")
		probe := b.Next(interp.EntityRef{Class: "Account", Key: acct(0)}, "read", nil, "read")
		return first, []sysapi.Scheduled{
			{At: time.Millisecond, Req: first},
			// A full retention window later: this arrival's prune pass
			// retires first's seen-entry and (post-fix) records the floor.
			{At: 40 * time.Second, Req: probe},
			// The very late wire duplicate, well past the prune.
			{At: 50 * time.Second, Req: first},
		}
	}

	t.Run("floor", func(t *testing.T) {
		first, sched := script()
		fx := newFixture(t, 1, sched) // default config: retention 30s, floor on
		fx.cluster.RunUntil(60 * time.Second)
		src, seq, ok := sysapi.SplitID(first.Req)
		if !ok {
			t.Fatalf("%s did not split as a builder id", first.Req)
		}
		br := fx.sys.broker
		if _, held := br.seen[first.Req]; held {
			t.Fatalf("%s still in the dedup set; retention never pruned it, the test exercises nothing", first.Req)
		}
		if floor := br.floors[src]; floor < seq {
			t.Fatalf("floor for %s is %d, want >= %d after the prune", src, floor, seq)
		}
		if br.LateDuplicates == 0 {
			t.Fatal("late duplicate was not absorbed by the floor (LateDuplicates == 0)")
		}
		if got := balance(t, fx.sys, acct(0)); got != 110 {
			t.Fatalf("balance %d, want 110 (the late duplicate re-executed)", got)
		}
	})

	t.Run("unchecked", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.UncheckedIngressFloor = true // the pre-fix hole
		first, sched := script()
		fx := newFixtureCfg(t, cfg, 1, sched)
		fx.cluster.RunUntil(60 * time.Second)
		br := fx.sys.broker
		if br.LateDuplicates != 0 {
			t.Fatalf("LateDuplicates = %d with the floor disabled", br.LateDuplicates)
		}
		if got := balance(t, fx.sys, acct(0)); got != 120 {
			t.Fatalf("balance %d, want 120 (pre-fix, the post-prune duplicate executes twice); "+
				"first request id %s", got, first.Req)
		}
	})
}
