package statefun

import (
	"fmt"
	"testing"
	"time"

	"statefulentities.dev/stateflow/internal/compiler"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/sim"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
)

const bank = `
@entity
class Account:
    def __init__(self, owner: str, balance: int):
        self.owner: str = owner
        self.balance: int = balance

    def __key__(self) -> str:
        return self.owner

    def read(self) -> int:
        return self.balance

    def update(self, amount: int) -> int:
        self.balance += amount
        return self.balance

    def deposit(self, amount: int) -> bool:
        self.balance += amount
        return True

    def transfer(self, amount: int, to: Account) -> bool:
        if self.balance < amount:
            return False
        self.balance -= amount
        to.deposit(amount)
        return True
`

type fixture struct {
	cluster *sim.Cluster
	sys     *System
	client  *sysapi.ScriptClient
}

func newFixture(t *testing.T, accounts int, script []sysapi.Scheduled) *fixture {
	t.Helper()
	return newFixtureCfg(t, DefaultConfig(), accounts, script)
}

func newFixtureCfg(t *testing.T, cfg Config, accounts int, script []sysapi.Scheduled) *fixture {
	t.Helper()
	prog, err := compiler.Compile(bank)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cluster := sim.New(7)
	sys := New(cluster, prog, cfg)
	for i := 0; i < accounts; i++ {
		if err := sys.PreloadEntity("Account", interp.StrV(acct(i)), interp.IntV(100)); err != nil {
			t.Fatalf("preload: %v", err)
		}
	}
	client := sysapi.NewScriptClient("client", sys, script)
	cluster.Add("client", client)
	cluster.Start()
	return &fixture{cluster: cluster, sys: sys, client: client}
}

func acct(i int) string { return fmt.Sprintf("acct-%03d", i) }

func readReq(id, key string) sysapi.Request {
	return sysapi.Request{
		Req:    id,
		Target: interp.EntityRef{Class: "Account", Key: key},
		Method: "read",
		Kind:   "read",
	}
}

func updateReq(id, key string, amount int64) sysapi.Request {
	return sysapi.Request{
		Req:    id,
		Target: interp.EntityRef{Class: "Account", Key: key},
		Method: "update",
		Args:   []interp.Value{interp.IntV(amount)},
		Kind:   "update",
	}
}

func transferReq(id, from, to string, amount int64) sysapi.Request {
	return sysapi.Request{
		Req:    id,
		Target: interp.EntityRef{Class: "Account", Key: from},
		Method: "transfer",
		Args:   []interp.Value{interp.IntV(amount), interp.RefV("Account", to)},
		Kind:   "transfer",
	}
}

func balance(t *testing.T, sys *System, key string) int64 {
	t.Helper()
	st, ok := sys.EntityState("Account", key)
	if !ok {
		t.Fatalf("account %s missing", key)
	}
	return st["balance"].I
}

func TestReadThroughPipeline(t *testing.T) {
	fx := newFixture(t, 1, []sysapi.Scheduled{
		{At: time.Millisecond, Req: readReq("r1", acct(0))},
	})
	fx.cluster.RunUntil(time.Second)
	resp, ok := fx.client.Responses["r1"]
	if !ok {
		t.Fatal("no response")
	}
	if resp.Err != "" {
		t.Fatalf("error: %s", resp.Err)
	}
	if resp.Value.I != 100 {
		t.Fatalf("read: %v", resp.Value)
	}
}

func TestUpdatePersists(t *testing.T) {
	fx := newFixture(t, 1, []sysapi.Scheduled{
		{At: time.Millisecond, Req: updateReq("u1", acct(0), 25)},
		{At: 200 * time.Millisecond, Req: readReq("r1", acct(0))},
	})
	fx.cluster.RunUntil(time.Second)
	if got := fx.client.Responses["r1"].Value.I; got != 125 {
		t.Fatalf("read after update: %d", got)
	}
	if got := balance(t, fx.sys, acct(0)); got != 125 {
		t.Fatalf("state: %d", got)
	}
}

func TestTransferChainsThroughKafka(t *testing.T) {
	fx := newFixture(t, 2, []sysapi.Scheduled{
		{At: time.Millisecond, Req: transferReq("t1", acct(0), acct(1), 40)},
	})
	before, _ := fx.sys.Log.End("ingress", 0)
	_ = before
	fx.cluster.RunUntil(2 * time.Second)
	resp := fx.client.Responses["t1"]
	if resp.Err != "" || !resp.Value.B {
		t.Fatalf("transfer: %+v", resp)
	}
	if balance(t, fx.sys, acct(0)) != 60 || balance(t, fx.sys, acct(1)) != 140 {
		t.Fatalf("balances: %d/%d", balance(t, fx.sys, acct(0)), balance(t, fx.sys, acct(1)))
	}
	// Chaining re-inserts events through the broker: the ingress topic
	// must hold more records than the single client request.
	var total int64
	parts, _ := fx.sys.Log.PartitionCount("ingress")
	for p := 0; p < parts; p++ {
		end, _ := fx.sys.Log.End("ingress", p)
		total += end
	}
	if total < 3 {
		t.Fatalf("expected chained re-insertions in ingress topic, got %d records", total)
	}
}

func TestReadAndWriteCostTheSame(t *testing.T) {
	// §4: "the cost of reads and writes are the same due to the network
	// costs" — both pay broker + remote-fn roundtrips.
	var script []sysapi.Scheduled
	for i := 0; i < 40; i++ {
		script = append(script, sysapi.Scheduled{
			At: time.Duration(i+1) * 20 * time.Millisecond, Req: readReq(fmt.Sprintf("r%d", i), acct(0)),
		})
		script = append(script, sysapi.Scheduled{
			At: time.Duration(i+1)*20*time.Millisecond + 10*time.Millisecond, Req: updateReq(fmt.Sprintf("u%d", i), acct(0), 1),
		})
	}
	fx := newFixture(t, 1, script)
	fx.cluster.RunUntil(5 * time.Second)
	r := fx.client.PerKind["read"].Mean()
	u := fx.client.PerKind["update"].Mean()
	ratio := float64(u) / float64(r)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("read/update asymmetry too large: read=%s update=%s", r, u)
	}
}

func TestLostUpdateRace(t *testing.T) {
	// No locking: two updates land on the same key back-to-back; the
	// second ships the same base state as the first, so one increment is
	// lost (§3: "race conditions ... could lead to state inconsistencies").
	fx := newFixture(t, 1, []sysapi.Scheduled{
		{At: time.Millisecond, Req: updateReq("u1", acct(0), 10)},
		{At: time.Millisecond + 50*time.Microsecond, Req: updateReq("u2", acct(0), 10)},
	})
	fx.cluster.RunUntil(2 * time.Second)
	if fx.client.Done != 2 {
		t.Fatalf("responses: %d", fx.client.Done)
	}
	got := balance(t, fx.sys, acct(0))
	if got != 110 {
		// The race requires both events to be in flight together; with
		// the poll-delay jitter both usually arrive in one batch. If this
		// starts flaking after cost-model changes, widen the window.
		t.Fatalf("expected lost update (110), got %d", got)
	}
	var races int
	for _, w := range fx.sys.Workers() {
		races += w.Races
	}
	if races == 0 {
		t.Fatal("expected recorded concurrent access")
	}
}

func TestEntityCreation(t *testing.T) {
	fx := newFixture(t, 0, []sysapi.Scheduled{
		{At: time.Millisecond, Req: sysapi.Request{
			Req:    "c1",
			Target: interp.EntityRef{Class: "Account", Key: "fresh"},
			Method: "__init__",
			Args:   []interp.Value{interp.StrV("fresh"), interp.IntV(7)},
		}},
		{At: 300 * time.Millisecond, Req: readReq("r1", "fresh")},
	})
	fx.cluster.RunUntil(time.Second)
	if resp := fx.client.Responses["c1"]; resp.Err != "" {
		t.Fatalf("create: %s", resp.Err)
	}
	if got := fx.client.Responses["r1"].Value.I; got != 7 {
		t.Fatalf("read new entity: %d", got)
	}
}

func TestMissingEntityError(t *testing.T) {
	fx := newFixture(t, 0, []sysapi.Scheduled{
		{At: time.Millisecond, Req: readReq("r1", "ghost")},
	})
	fx.cluster.RunUntil(time.Second)
	if resp := fx.client.Responses["r1"]; resp.Err == "" {
		t.Fatal("expected error for missing entity")
	}
}

func TestLatencyDominatedByBrokerHops(t *testing.T) {
	// A simple read pays two broker deliveries (ingress + egress) plus the
	// remote-fn roundtrip; latency must clearly exceed the raw link time
	// and stay sub-100ms (§4).
	var script []sysapi.Scheduled
	for i := 0; i < 30; i++ {
		script = append(script, sysapi.Scheduled{
			At: time.Duration(i+1) * 25 * time.Millisecond, Req: readReq(fmt.Sprintf("r%d", i), acct(0)),
		})
	}
	fx := newFixture(t, 1, script)
	fx.cluster.RunUntil(5 * time.Second)
	mean := fx.client.Latency.Mean()
	if mean < 10*time.Millisecond {
		t.Fatalf("latency implausibly low for broker-based chaining: %s", mean)
	}
	if fx.client.Latency.Percentile(99) > 100*time.Millisecond {
		t.Fatalf("p99 above the paper's sub-100ms envelope: %s", fx.client.Latency.Percentile(99))
	}
}

func TestTransfersSlowerThanReads(t *testing.T) {
	// Chaining through the broker makes multi-entity calls pay extra
	// roundtrips.
	var script []sysapi.Scheduled
	for i := 0; i < 20; i++ {
		script = append(script, sysapi.Scheduled{
			At: time.Duration(i+1) * 40 * time.Millisecond, Req: readReq(fmt.Sprintf("r%d", i), acct(0)),
		})
		script = append(script, sysapi.Scheduled{
			At:  time.Duration(i+1)*40*time.Millisecond + 20*time.Millisecond,
			Req: transferReq(fmt.Sprintf("t%d", i), acct(2), acct(3), 1),
		})
	}
	fx := newFixture(t, 4, script)
	fx.cluster.RunUntil(5 * time.Second)
	r := fx.client.PerKind["read"].Mean()
	tr := fx.client.PerKind["transfer"].Mean()
	if tr <= r {
		t.Fatalf("transfer (%s) should exceed read (%s)", tr, r)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() time.Duration {
		var script []sysapi.Scheduled
		for i := 0; i < 15; i++ {
			script = append(script, sysapi.Scheduled{
				At: time.Duration(i+1) * 10 * time.Millisecond, Req: readReq(fmt.Sprintf("r%d", i), acct(i%3)),
			})
		}
		fx := newFixture(t, 3, script)
		fx.cluster.RunUntil(3 * time.Second)
		return fx.client.Latency.Percentile(99)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %s vs %s", a, b)
	}
}
