// Package statefun implements the baseline runtime of the paper's
// evaluation: the Apache Flink StateFun deployment model (§3). Events
// enter through a Kafka-model broker; an ingress router performs keyBy and
// forwards each event to the stateful map operator instance owning the
// key; every function execution ships the entity state to an *external*
// stateless function runtime over the network and applies the returned
// state updates; and function chaining re-inserts events through the
// broker ("we use Kafka to re-insert an event to the streaming dataflow,
// thereby avoiding cyclic dataflows").
//
// Faithfully to §3/§4, this runtime has no transactions and no locking:
// concurrent chains over the same key interleave freely, so reads cost the
// same as writes (every call pays the broker plus remote-function network
// hops) and lost updates are possible — the inconsistency the paper
// motivates StateFlow with.
package statefun

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"statefulentities.dev/stateflow/internal/chaos"
	"statefulentities.dev/stateflow/internal/core"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/ir"
	"statefulentities.dev/stateflow/internal/metrics"
	"statefulentities.dev/stateflow/internal/obs"
	"statefulentities.dev/stateflow/internal/queue"
	"statefulentities.dev/stateflow/internal/sim"
	"statefulentities.dev/stateflow/internal/state"
	"statefulentities.dev/stateflow/internal/systems/costmodel"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
)

const (
	ingressTopic = "ingress"
	egressTopic  = "egress"
)

// Config parameterizes a StateFun-model deployment.
type Config struct {
	// FlinkWorkers hosts state and messaging; FnRuntimes executes
	// functions. The paper splits its 6 system cores half and half.
	FlinkWorkers int
	FnRuntimes   int
	Costs        costmodel.Costs
	// MapFallback disables the slotted execution fast path, forcing
	// name-keyed variable and attribute resolution (differential testing).
	MapFallback bool
	// DedupRetention bounds the broker's ingress dedup set — the same
	// horizon the StateFlow coordinator uses for its seen/delivered
	// maps: a request id becomes prunable once its LATEST arrival is at
	// least this old (duplicates refresh the window, so a still-retrying
	// in-flight request is never evicted), and a retry or wire duplicate
	// lagging the window may re-execute. Pruning drains lazily, so an
	// expired id can linger up to one extra window — erring toward
	// suppression, never toward double execution. 0: keep forever.
	DedupRetention time.Duration
	// UncheckedIngressFloor disables the broker's per-source dedup floor
	// (a test hook: regression tests re-introduce the pre-fix hole —
	// a duplicate arriving after retention pruned its seen-entry was
	// re-produced into the ingress topic and executed a second time —
	// and assert the double execution the floor prevents).
	UncheckedIngressFloor bool
}

// DefaultConfig mirrors the paper's balanced deployment.
func DefaultConfig() Config {
	return Config{
		FlinkWorkers:   3,
		FnRuntimes:     3,
		Costs:          costmodel.Default(),
		DedupRetention: 30 * time.Second,
	}
}

// System is a deployed StateFun-model runtime.
type System struct {
	cfg      Config
	prog     *ir.Program
	executor *core.Executor

	brokerID string
	routerID string
	egressID string
	broker   *broker
	workers  []*flinkWorker
	fns      []*fnRuntime

	Log *queue.Log
}

// New builds and registers the deployment on a cluster.
func New(cluster *sim.Cluster, prog *ir.Program, cfg Config) *System {
	if cfg.FlinkWorkers <= 0 {
		cfg.FlinkWorkers = 1
	}
	if cfg.FnRuntimes <= 0 {
		cfg.FnRuntimes = 1
	}
	sys := &System{
		cfg:      cfg,
		prog:     prog,
		executor: core.NewExecutor(prog),
		brokerID: "kafka",
		routerID: "fl-router",
		egressID: "fl-egress",
		Log:      queue.NewLog(),
	}
	if err := sys.Log.CreateTopic(ingressTopic, cfg.FlinkWorkers); err != nil {
		panic(err)
	}
	if err := sys.Log.CreateTopic(egressTopic, 1); err != nil {
		panic(err)
	}
	if cfg.MapFallback {
		sys.executor.Interp().SetSlotted(false)
	}
	sys.broker = &broker{sys: sys}
	cluster.Add(sys.brokerID, sys.broker)
	cluster.Add(sys.routerID, &router{sys: sys})
	cluster.Add(sys.egressID, &egress{sys: sys})
	for i := 0; i < cfg.FlinkWorkers; i++ {
		w := &flinkWorker{sys: sys, id: fmt.Sprintf("fl-worker-%d", i), states: state.NewStore(prog.Layouts()), Breakdown: metrics.NewBreakdown()}
		sys.workers = append(sys.workers, w)
		cluster.Add(w.id, w)
	}
	for i := 0; i < cfg.FnRuntimes; i++ {
		f := &fnRuntime{sys: sys, id: fmt.Sprintf("fn-runtime-%d", i), Breakdown: metrics.NewBreakdown()}
		sys.fns = append(sys.fns, f)
		cluster.Add(f.id, f)
	}
	return sys
}

// IngressID implements sysapi.System: clients produce into the broker.
func (s *System) IngressID() string { return s.brokerID }

// ClientLink implements sysapi.System.
func (s *System) ClientLink() sim.Latency { return s.cfg.Costs.ClientLink }

// Workers exposes the Flink workers.
func (s *System) Workers() []*flinkWorker { return s.workers }

// FnRuntimes exposes the remote function runtimes.
func (s *System) FnRuntimes() []*fnRuntime { return s.fns }

// RegisterMetrics publishes the deployment's stat counters into a
// registry under stable dotted names, reading the exported int fields
// through closures at exposition time (the fields remain the canonical
// storage; see the StateFlow coordinator's migration for the pattern).
func (s *System) RegisterMetrics(reg *obs.Registry) {
	b := s.broker
	reg.Func("statefun.broker.produced", func() int64 { return int64(b.Produced) })
	reg.Func("statefun.broker.late_duplicates", func() int64 { return int64(b.LateDuplicates) })
	workers, fns := s.workers, s.fns
	reg.Func("statefun.worker.races", func() int64 {
		var n int64
		for _, w := range workers {
			n += int64(w.Races)
		}
		return n
	})
	reg.Func("statefun.fn.invocations", func() int64 {
		var n int64
		for _, f := range fns {
			n += int64(f.Invocations)
		}
		return n
	})
}

func (s *System) ownerOf(ref interp.EntityRef) *flinkWorker {
	h := fnv.New32a()
	_, _ = h.Write([]byte(ref.Class))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(ref.Key))
	return s.workers[int(h.Sum32()%uint32(len(s.workers)))]
}

// KeyForCtor derives the routing key of a constructor call from its
// argument list.
func (s *System) KeyForCtor(class string, args []interp.Value) (string, error) {
	return s.executor.KeyForCtor(class, args)
}

// Preload installs entity state on the owning worker before the run.
func (s *System) Preload(ref interp.EntityRef, st interp.MapState) {
	s.ownerOf(ref).states.PutMap(ref, st)
}

// PreloadEntity runs __init__ synchronously and preloads the result.
func (s *System) PreloadEntity(class string, args ...interp.Value) error {
	key, err := s.executor.KeyForCtor(class, args)
	if err != nil {
		return err
	}
	st := interp.MapState{}
	if err := s.executor.Interp().ExecInit(class, args, st); err != nil {
		return err
	}
	s.Preload(interp.EntityRef{Class: class, Key: key}, st)
	return nil
}

// EntityState reads an entity's state (test assertions).
func (s *System) EntityState(class, key string) (interp.MapState, bool) {
	ref := interp.EntityRef{Class: class, Key: key}
	st, ok := s.ownerOf(ref).states.Lookup(ref)
	if !ok {
		return nil, false
	}
	return st.CloneMap(), true
}

// Keys lists the keys of every entity of a class, sorted across all
// worker partitions.
func (s *System) Keys(class string) []string {
	var out []string
	for _, w := range s.workers {
		out = append(out, w.states.Keys(class)...)
	}
	sort.Strings(out)
	return out
}

// ChaosTopology implements sysapi.Backend: the baseline's failure
// contract, which is — faithfully to §3 — almost empty. The StateFun
// deployment model has no transactions, no failure detector and no
// replay-driven redelivery in this reproduction, so no role is crashable
// and no delivery may be dropped; the chaos engine clamps those fault
// classes off and reports it. What the baseline does tolerate is latency
// (no component keeps timers that a delay could violate) and duplicate
// deliveries of anything the egress dedupes by request id: egress-bound
// broker pushes and the client-bound responses themselves.
func (s *System) ChaosTopology() chaos.Topology {
	var workers, fns []string
	for _, w := range s.workers {
		workers = append(workers, w.id)
	}
	for _, f := range s.fns {
		fns = append(fns, f.id)
	}
	return chaos.Topology{
		Roles: map[string][]string{
			"broker": {s.brokerID},
			"router": {s.routerID},
			"egress": {s.egressID},
			"worker": workers,
			"fn":     fns,
		},
		Crashable: map[string]bool{},
		DupSafe: func(from, to string, msg sim.Message) bool {
			switch msg.(type) {
			case sysapi.MsgResponse:
				return true // clients dedupe by request id
			case sysapi.MsgRequest:
				return to == s.brokerID // ingress produce dedupes by request id
			case msgRecord:
				return to == s.egressID // egress dedupes by request id
			}
			return false
		},
		ResponseID: func(msg sim.Message) (string, bool) {
			if m, ok := msg.(sysapi.MsgResponse); ok {
				return m.Response.Req, true
			}
			return "", false
		},
		RequestID: func(msg sim.Message) (string, bool) {
			if m, ok := msg.(sysapi.MsgRequest); ok {
				return m.Request.Req, true
			}
			return "", false
		},
	}
}

var _ sysapi.Backend = (*System)(nil)

// ---------------------------------------------------------------------------
// Wire messages

// envelope is a dataflow event travelling through the broker and workers,
// together with the client reply address.
type envelope struct {
	Ev      *core.Event
	ReplyTo string
	Kind    string
}

// msgRecord is a broker push to a consumer.
type msgRecord struct {
	Topic     string
	Partition int
	Env       envelope
}

// msgFnRequest ships an event plus the entity's current state row to the
// remote function runtime.
type msgFnRequest struct {
	Env     envelope
	State   *interp.Row // copy of the entity state row (nil for __init__)
	Exists  bool
	Worker  string
	Ref     interp.EntityRef
	StBytes int
}

// msgFnResponse returns the state updates and produced events.
type msgFnResponse struct {
	Ref     interp.EntityRef
	Writes  *interp.Row // full new state row (nil if no writes)
	Wrote   bool
	Created bool
	Out     []envelope
	Err     string
	ReplyTo string
	Req     string
}

// ---------------------------------------------------------------------------
// Broker

// broker is the Kafka-model component: it appends produced records to the
// replayable log and pushes them to the subscribed consumer after the
// consumer-poll delay.
type broker struct {
	sys *System
	// Produced counts records, as a load metric.
	Produced int
	// seen dedupes client request ids at the ingress produce (the
	// idempotent-producer model): a client retransmission or a duplicated
	// wire delivery must not become a second dataflow record — without
	// this, a retried in-flight request would execute twice. Bounded by
	// Config.DedupRetention like the StateFlow coordinator's dedup maps:
	// seen records each id's LATEST arrival (a duplicate refreshes the
	// window, so a still-retrying in-flight request is never evicted mid
	// flight), and seenOrder drains FIFO with lazy re-arming — an entry
	// whose id was refreshed since its append re-enters the queue at its
	// new time instead of being evicted. O(1) amortized per arrival;
	// re-arming can leave the queue unsorted, so an expired id may
	// linger behind a younger head up to one extra window (suppression
	// errs conservative; the bound on the set size is unaffected).
	seen      map[string]time.Duration
	seenOrder []seenEntry
	// floors records, per request-id source (sysapi.SplitID), the highest
	// sequence number pruneSeen ever retired: an arrival at or below its
	// source's floor is a very late duplicate of an already-answered
	// request and is absorbed instead of re-produced. Closes the same
	// duplicate-after-retention hole the StateFlow coordinator closes
	// with its durable dedup floors.
	floors map[string]int64
	// LateDuplicates counts arrivals the floor absorbed.
	LateDuplicates int
}

// seenEntry is one ingress dedup record awaiting retention expiry.
type seenEntry struct {
	id string
	at time.Duration
}

// pruneSeen retires dedup entries whose latest arrival fell off the
// retention window.
func (b *broker) pruneSeen(now time.Duration) {
	retention := b.sys.cfg.DedupRetention
	if retention <= 0 {
		return
	}
	for len(b.seenOrder) > 0 && b.seenOrder[0].at+retention <= now {
		e := b.seenOrder[0]
		b.seenOrder = b.seenOrder[1:]
		if last, ok := b.seen[e.id]; ok && last+retention > now {
			// A duplicate refreshed this id after the entry was queued:
			// re-arm at the refreshed time (unexpired, so the loop
			// cannot revisit it this pass).
			b.seenOrder = append(b.seenOrder, seenEntry{id: e.id, at: last})
			continue
		}
		if src, seq, ok := sysapi.SplitID(e.id); ok && !b.sys.cfg.UncheckedIngressFloor {
			if b.floors == nil {
				b.floors = map[string]int64{}
			}
			if cur, has := b.floors[src]; !has || seq > cur {
				b.floors[src] = seq
			}
		}
		delete(b.seen, e.id)
	}
}

// OnMessage implements sim.Handler.
func (b *broker) OnMessage(ctx *sim.Context, from string, msg sim.Message) {
	switch m := msg.(type) {
	case sysapi.MsgRequest:
		if b.seen == nil {
			b.seen = map[string]time.Duration{}
		}
		b.pruneSeen(ctx.Now())
		if _, dup := b.seen[m.Request.Req]; dup {
			// Duplicate send; already in the ingress topic. Refresh the
			// window: an in-flight retry must never age out of the set.
			b.seen[m.Request.Req] = ctx.Now()
			return
		}
		if src, seq, ok := sysapi.SplitID(m.Request.Req); ok {
			if floor, pruned := b.floors[src]; pruned && seq <= floor {
				b.LateDuplicates++
				return // very late duplicate: original answered and pruned
			}
		}
		b.seen[m.Request.Req] = ctx.Now()
		b.seenOrder = append(b.seenOrder, seenEntry{id: m.Request.Req, at: ctx.Now()})
		// Client produce into the ingress topic.
		b.produce(ctx, ingressTopic, envelope{
			Ev: &core.Event{
				Kind:   core.EvInvoke,
				Req:    m.Request.Req,
				Target: m.Request.Target,
				Method: m.Request.Method,
				Args:   m.Request.Args,
			},
			ReplyTo: m.ReplyTo,
			Kind:    m.Request.Kind,
		})
	case envelope:
		// Worker produce (chaining or egress).
		topic := ingressTopic
		if m.Ev.Kind == core.EvResponse {
			topic = egressTopic
		}
		b.produce(ctx, topic, m)
	}
}

func (b *broker) produce(ctx *sim.Context, topic string, env envelope) {
	costs := b.sys.cfg.Costs
	ctx.Work(costs.BrokerCPU)
	key := env.Ev.Target.Key
	part, _, err := b.sys.Log.Produce(topic, key, env)
	if err != nil {
		return
	}
	b.Produced++
	// Push to the consumer after the poll delay.
	switch topic {
	case ingressTopic:
		ctx.Send(b.sys.routerID, msgRecord{Topic: topic, Partition: part, Env: env},
			costs.BrokerPoll.Sample(ctx.Rand()))
	case egressTopic:
		ctx.Send(b.sys.egressID, msgRecord{Topic: topic, Partition: part, Env: env},
			costs.BrokerPoll.Sample(ctx.Rand()))
	}
}

// ---------------------------------------------------------------------------
// Router (ingress keyBy)

type router struct {
	sys *System
}

// OnMessage implements sim.Handler.
func (r *router) OnMessage(ctx *sim.Context, from string, msg sim.Message) {
	m, ok := msg.(msgRecord)
	if !ok {
		return
	}
	costs := r.sys.cfg.Costs
	ctx.Work(costs.RoutingCPU)
	w := r.sys.ownerOf(m.Env.Ev.Target)
	ctx.Send(w.id, m.Env, costs.WorkerLink.Sample(ctx.Rand()))
}

// ---------------------------------------------------------------------------
// Egress router

type egress struct {
	sys *System
	// Delivered dedupes per request id.
	delivered map[string]bool
}

// OnMessage implements sim.Handler.
func (e *egress) OnMessage(ctx *sim.Context, from string, msg sim.Message) {
	m, ok := msg.(msgRecord)
	if !ok {
		return
	}
	costs := e.sys.cfg.Costs
	ctx.Work(costs.RoutingCPU)
	if e.delivered == nil {
		e.delivered = map[string]bool{}
	}
	ev := m.Env.Ev
	if e.delivered[ev.Req] || m.Env.ReplyTo == "" {
		return
	}
	e.delivered[ev.Req] = true
	ctx.Send(m.Env.ReplyTo, sysapi.MsgResponse{Response: sysapi.Response{
		Req: ev.Req, Value: ev.Value, Err: ev.Err,
	}}, costs.ClientLink.Sample(ctx.Rand()))
}

// ---------------------------------------------------------------------------
// Flink worker (stateful map operator partitions)

type flinkWorker struct {
	sys    *System
	id     string
	states *state.Store
	rr     int
	// Breakdown attributes CPU for the overhead experiment.
	Breakdown *metrics.Breakdown
	// Races counts state write-backs that overwrote a version the
	// function never saw (lost-update hazard observable in tests).
	versions map[interp.EntityRef]int
	inflight map[interp.EntityRef]int
	Races    int
}

// OnMessage implements sim.Handler.
func (w *flinkWorker) OnMessage(ctx *sim.Context, from string, msg sim.Message) {
	switch m := msg.(type) {
	case envelope:
		w.onEvent(ctx, m)
	case msgFnResponse:
		w.onFnResponse(ctx, m)
	}
}

// onEvent ships the target entity's state with the event to a remote
// function runtime. No locking: if another chain is mid-flight on the same
// key, both read the same state version (§3's race condition).
func (w *flinkWorker) onEvent(ctx *sim.Context, env envelope) {
	costs := w.sys.cfg.Costs
	ctx.Work(costs.DeserializeCPU)
	w.Breakdown.Add("event_deserialization", costs.DeserializeCPU)
	ref := env.Ev.Target
	st, exists := w.states.Lookup(ref)
	var cp *interp.Row
	bytes := 0
	if exists {
		bytes = st.EncodedSize() // cached on the row until the next write
		ship := costs.StateCPU(bytes)
		ctx.Work(ship)
		w.Breakdown.Add("state_serialization", ship)
		cp = st.Clone()
	}
	if w.inflight == nil {
		w.inflight = map[interp.EntityRef]int{}
		w.versions = map[interp.EntityRef]int{}
	}
	w.inflight[ref]++
	if w.inflight[ref] > 1 {
		w.Races++ // concurrent unlocked access to the same key
	}
	fn := w.sys.fns[w.rr%len(w.sys.fns)]
	w.rr++
	ctx.Send(fn.id, msgFnRequest{
		Env: env, State: cp, Exists: exists, Worker: w.id, Ref: ref, StBytes: bytes,
	}, costs.RemoteFn.Sample(ctx.Rand()))
}

// onFnResponse applies returned state and forwards produced events through
// the broker.
func (w *flinkWorker) onFnResponse(ctx *sim.Context, m msgFnResponse) {
	costs := w.sys.cfg.Costs
	if w.inflight != nil && w.inflight[m.Ref] > 0 {
		w.inflight[m.Ref]--
	}
	if m.Wrote && m.Err == "" {
		bytes := m.Writes.EncodedSize()
		work := costs.StateCPU(bytes)
		ctx.Work(work)
		w.Breakdown.Add("state_serialization", work)
		w.states.Put(m.Ref, m.Writes)
	}
	if m.Err != "" {
		// Fail the chain directly to egress via the broker.
		env := envelope{
			Ev:      &core.Event{Kind: core.EvResponse, Req: m.Req, Err: m.Err},
			ReplyTo: m.ReplyTo,
		}
		ctx.Send(w.sys.brokerID, env, costs.BrokerLink.Sample(ctx.Rand()))
		return
	}
	for _, out := range m.Out {
		// Chaining and egress alike go back through the broker (§3).
		ctx.Send(w.sys.brokerID, out, costs.BrokerLink.Sample(ctx.Rand()))
	}
}

// ---------------------------------------------------------------------------
// Remote function runtime

type fnRuntime struct {
	sys *System
	id  string
	// Breakdown attributes CPU for the overhead experiment.
	Breakdown *metrics.Breakdown
	// Invocations counts function executions.
	Invocations int
}

// shippedStore adapts the shipped single-entity state row to core.Store.
type shippedStore struct {
	ref     interp.EntityRef
	st      *interp.Row
	exists  bool
	wrote   *bool
	created *bool
}

// Lookup implements core.Store.
func (s shippedStore) Lookup(ref interp.EntityRef) (interp.State, bool) {
	if ref != s.ref || !s.exists {
		return nil, false
	}
	return trackState{row: s.st, wrote: s.wrote}, true
}

// Create implements core.Store.
func (s shippedStore) Create(ref interp.EntityRef) (interp.State, error) {
	if ref != s.ref {
		return nil, fmt.Errorf("statefun: create %s routed to partition of %s", ref, s.ref)
	}
	if s.exists {
		return nil, fmt.Errorf("entity %s already exists", ref)
	}
	*s.created = true
	*s.wrote = true
	return trackState{row: s.st, wrote: s.wrote}, nil
}

// trackState wraps the shipped row, flagging writes so the worker knows
// whether to install the returned state. It forwards the slot fast path.
type trackState struct {
	row   *interp.Row
	wrote *bool
}

// Get implements interp.State.
func (t trackState) Get(attr string) (interp.Value, bool) { return t.row.Get(attr) }

// Set implements interp.State.
func (t trackState) Set(attr string, v interp.Value) {
	*t.wrote = true
	t.row.Set(attr, v)
}

// GetSlot implements interp.SlotState.
func (t trackState) GetSlot(slot int) (interp.Value, bool) { return t.row.GetSlot(slot) }

// SetSlot implements interp.SlotState.
func (t trackState) SetSlot(slot int, v interp.Value) {
	*t.wrote = true
	t.row.SetSlot(slot, v)
}

// Interface check.
var _ interp.SlotState = trackState{}

// OnMessage implements sim.Handler.
func (f *fnRuntime) OnMessage(ctx *sim.Context, from string, msg sim.Message) {
	m, ok := msg.(msgFnRequest)
	if !ok {
		return
	}
	costs := f.sys.cfg.Costs
	f.Invocations++

	// Deserialize shipped state + construct the entity object.
	construct := costs.ConstructCPU + costs.StateCPU(m.StBytes)
	ctx.Work(construct)
	f.Breakdown.Add("object_construction", construct)
	ctx.Work(costs.SplitOverhead)
	f.Breakdown.Add("splitting_instrumentation", costs.SplitOverhead)

	st := m.State
	if st == nil {
		st = interp.NewRow(f.sys.prog.Layouts().LayoutOf(m.Ref.Class))
	}
	var wrote, created bool
	store := shippedStore{ref: m.Ref, st: st, exists: m.Exists, wrote: &wrote, created: &created}
	out, err := f.sys.executor.Step(m.Env.Ev, store)
	ctx.Work(costs.ExecuteCPU)
	f.Breakdown.Add("function_execution", costs.ExecuteCPU)

	resp := msgFnResponse{
		Ref: m.Ref, ReplyTo: m.Env.ReplyTo, Req: m.Env.Ev.Req,
		Created: created, Wrote: wrote,
	}
	if wrote {
		resp.Writes = st
	}
	if err != nil {
		resp.Err = err.Error()
	} else {
		for _, ev := range out {
			resp.Out = append(resp.Out, envelope{Ev: ev, ReplyTo: m.Env.ReplyTo, Kind: m.Env.Kind})
		}
	}
	ctx.Send(m.Worker, resp, costs.RemoteFn.Sample(ctx.Rand()))
}
