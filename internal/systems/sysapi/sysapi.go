// Package sysapi defines the client-facing request/response contract
// shared by the simulated runtimes (StateFlow and the StateFun-model
// baseline), plus reusable client components: a scripted client for tests
// and an open-loop generator for benchmarks.
package sysapi

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"statefulentities.dev/stateflow/internal/chaos"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/metrics"
	"statefulentities.dev/stateflow/internal/obs"
	"statefulentities.dev/stateflow/internal/sim"
)

// Request is a root invocation submitted by a client ("caller outside the
// system, such as an HTTP endpoint", §2.3).
type Request struct {
	Req    string // unique request id
	Target interp.EntityRef
	Method string // "__init__" creates the entity
	Args   []interp.Value
	// Kind tags the request for per-operation metrics (e.g. "read",
	// "update", "transfer"); the runtimes ignore it.
	Kind string
	// Trace is the span context minted with the request id (see
	// Builder): protocol messages carry it end to end so every phase a
	// runtime closes out — ingress queueing, execution, validation,
	// fallback rounds, commit fsync waits, fence waits — tags its span
	// with the same trace id. Purely observational: no runtime branches
	// on it, and it is derived from the request id alone, so it is
	// identical whether or not a tracer is attached.
	Trace obs.SpanContext
}

// Response is the terminal outcome of a request.
type Response struct {
	Req     string
	Value   interp.Value
	Err     string
	Retries int // transactional runtimes: abort/retry count
}

// MsgRequest is the wire message a client sends to a system's ingress.
type MsgRequest struct {
	Request Request
	ReplyTo string // component to receive MsgResponse
}

// MsgResponse is the wire message the egress sends back.
type MsgResponse struct {
	Response Response
}

// System is the minimal facade a simulated runtime exposes to clients.
type System interface {
	// IngressID is the component that accepts MsgRequest.
	IngressID() string
	// ClientLink returns the client-edge latency model.
	ClientLink() sim.Latency
}

// Backend extends System with the out-of-band surface every simulated
// runtime provides: key derivation, dataset preloading and committed-state
// introspection. The root package and the benchmark harness drive both
// systems through this one interface instead of type-switching on the
// concrete runtime.
type Backend interface {
	System
	// KeyForCtor derives the routing key of a constructor call from its
	// argument list.
	KeyForCtor(class string, args []interp.Value) (string, error)
	// PreloadEntity installs the state an entity would have after __init__
	// with the given args, bypassing the dataflow. Call before the run.
	PreloadEntity(class string, args ...interp.Value) error
	// EntityState reads a copy of an entity's committed state.
	EntityState(class, key string) (interp.MapState, bool)
	// Keys lists the keys of every committed entity of a class, sorted.
	Keys(class string) []string
	// ChaosTopology declares the runtime's failure contract to the chaos
	// engine: component roles, crash-recoverable roles, and which
	// deliveries may safely be dropped or duplicated.
	ChaosTopology() chaos.Topology
}

// ---------------------------------------------------------------------------
// Request builder

// Builder mints uniquely-identified requests. The Simulation client, the
// scripted clients and the workload generators all build requests through
// it, so id formatting and request assembly live in one place.
//
// Ids have the form "<prefix><incarnation>.<seq>". The source — prefix
// plus incarnation — names one life of one client; the sequence grows
// monotonically within it. Runtimes exploit the structure for dedup
// beyond the retention window: once a source's answered entries are
// pruned, the highest pruned sequence becomes the source's floor, and
// any arrival at or below it is provably a very late duplicate (the
// client that minted it numbered every later request higher). A
// restarted client that lost its counter must take a fresh incarnation
// (NewIncarnation) so its new life is never mistaken for its old one.
type Builder struct {
	prefix string
	inc    int
	seq    int
}

// NewBuilder builds a request builder for incarnation 1 of the source;
// prefix keeps ids unique across request sources sharing a deployment.
func NewBuilder(prefix string) *Builder { return &Builder{prefix: prefix, inc: 1} }

// NewIncarnation builds a builder for a later life of the same source: a
// restarted client whose sequence counter is gone. Ids from different
// incarnations never collide, and dedup floors are tracked per
// incarnation, so the reborn client starts clean.
func NewIncarnation(prefix string, inc int) *Builder {
	return &Builder{prefix: prefix, inc: inc}
}

// Next assembles the next sequentially-numbered request.
func (b *Builder) Next(target interp.EntityRef, method string, args []interp.Value, kind string) Request {
	b.seq++
	return b.At(b.seq, target, method, args, kind)
}

// At assembles a request with an explicit sequence number; generators
// driven by an external index (the i-th workload operation) use this form.
func (b *Builder) At(i int, target interp.EntityRef, method string, args []interp.Value, kind string) Request {
	id := fmt.Sprintf("%s%d.%d", b.prefix, b.inc, i)
	return Request{
		Req:    id,
		Target: target,
		Method: method,
		Args:   args,
		Kind:   kind,
		Trace:  obs.SpanContext{ID: id},
	}
}

// SplitID splits a Builder-minted request id into its source (prefix +
// incarnation) and sequence number. Ids minted elsewhere report ok =
// false — they carry no sequence contract, so floor-based dedup must
// not apply to them.
func SplitID(id string) (source string, seq int64, ok bool) {
	dot := strings.LastIndexByte(id, '.')
	if dot <= 0 || dot == len(id)-1 {
		return "", 0, false
	}
	n, err := strconv.ParseInt(id[dot+1:], 10, 64)
	if err != nil || n < 0 {
		return "", 0, false
	}
	return id[:dot], n, true
}

// ---------------------------------------------------------------------------
// Client-edge retransmitter

// Retransmitter is the client-edge retry state machine shared by every
// simulated client (the Simulation's api client, ScriptClient and
// Generator): it transmits requests over the client link and re-sends
// any request with no response after Every — same request id, so the
// ingress dedupes in-flight copies and the StateFlow egress re-serves
// already-answered ones from its durable buffer. This is the client half
// of the contract that makes client-edge drops and ingress downtime
// survivable.
type Retransmitter struct {
	Sys     System
	ReplyTo string
	// Every is the retransmission interval; <= 0 disables retries.
	Every time.Duration
	// Max bounds retransmissions per request (default 100), so an
	// unresolvable request cannot keep the event queue alive forever.
	Max int
	// Retries counts re-sends per request id.
	Retries  map[string]int
	inflight map[string]Request
}

// msgRetry is the retransmitter's self-timer.
type msgRetry struct {
	id      string
	attempt int
}

func (r *Retransmitter) max() int {
	if r.Max > 0 {
		return r.Max
	}
	return 100
}

func (r *Retransmitter) transmit(ctx *sim.Context, req Request) {
	ctx.Send(r.Sys.IngressID(), MsgRequest{Request: req, ReplyTo: r.ReplyTo},
		r.Sys.ClientLink().Sample(ctx.Rand()))
}

// Send transmits a fresh request and arms its retry timer.
func (r *Retransmitter) Send(ctx *sim.Context, req Request) {
	if r.Retries == nil {
		r.Retries = map[string]int{}
	}
	if r.inflight == nil {
		r.inflight = map[string]Request{}
	}
	r.transmit(ctx, req)
	if r.Every > 0 {
		r.inflight[req.Req] = req
		ctx.After(r.Every, msgRetry{id: req.Req, attempt: 1})
	}
}

// Handle processes retransmitter-owned messages, reporting whether it
// consumed the message. Responses are observed (the id resolves, retries
// stop) but NOT consumed — the owner still records them.
func (r *Retransmitter) Handle(ctx *sim.Context, msg sim.Message) bool {
	switch m := msg.(type) {
	case msgRetry:
		req, ok := r.inflight[m.id]
		if !ok {
			return true // resolved: stop retrying
		}
		if m.attempt > r.max() {
			delete(r.inflight, m.id)
			return true
		}
		r.Retries[m.id]++
		r.transmit(ctx, req)
		ctx.After(r.Every, msgRetry{id: m.id, attempt: m.attempt + 1})
		return true
	case MsgResponse:
		delete(r.inflight, m.Response.Req)
	}
	return false
}

// Total sums retransmissions across all request ids.
func (r *Retransmitter) Total() int {
	total := 0
	for _, n := range r.Retries {
		total += n
	}
	return total
}

// ---------------------------------------------------------------------------
// Scripted client (tests, examples)

// Scheduled is one scripted submission.
type Scheduled struct {
	At  time.Duration
	Req Request
}

// ScriptClient submits a fixed schedule of requests and records responses
// and latencies. Register it with the cluster, then inspect it after the
// run. With RetryEvery set it retransmits unanswered requests (see
// Retransmitter).
type ScriptClient struct {
	ID        string
	Sys       System
	Script    []Scheduled
	Responses map[string]Response
	Latency   *metrics.Series
	PerKind   map[string]*metrics.Series
	// RetryEvery re-sends a request that has no response after this much
	// virtual time (0: no retries). Retries counts re-sends per id.
	RetryEvery time.Duration
	MaxRetries int // per request; 0 means the default (100)
	Retries    map[string]int
	rx         Retransmitter
	sentAt     map[string]time.Duration
	kinds      map[string]string
	// Done counts received responses.
	Done int
}

// LatencyReservoir caps client-side latency series memory: beyond this
// many samples a series degrades to a deterministic reservoir estimate
// (count/mean/min/max stay exact). Every gated benchmark run stays far
// below the cap, so bounding is behavior-neutral there; long runs — the
// nightly 100-seed sweeps, open-loop soak benchmarks — get constant
// memory instead of retaining every sample forever.
const LatencyReservoir = 1 << 18

// newLatencySeries returns a series bounded at LatencyReservoir.
func newLatencySeries() *metrics.Series {
	return metrics.NewBoundedSeries(LatencyReservoir)
}

// NewScriptClient builds a scripted client.
func NewScriptClient(id string, sys System, script []Scheduled) *ScriptClient {
	return &ScriptClient{
		ID: id, Sys: sys, Script: script,
		Responses: map[string]Response{},
		Latency:   newLatencySeries(),
		PerKind:   map[string]*metrics.Series{},
		Retries:   map[string]int{},
		sentAt:    map[string]time.Duration{},
		kinds:     map[string]string{},
	}
}

// OnStart schedules every scripted submission (retry knobs are locked in
// here, after the caller had a chance to set them).
func (c *ScriptClient) OnStart(ctx *sim.Context) {
	c.rx = Retransmitter{
		Sys: c.Sys, ReplyTo: c.ID,
		Every: c.RetryEvery, Max: c.MaxRetries, Retries: c.Retries,
	}
	for _, s := range c.Script {
		ctx.After(s.At, msgSubmit{req: s.Req})
	}
}

type msgSubmit struct{ req Request }

// OnMessage implements sim.Handler.
func (c *ScriptClient) OnMessage(ctx *sim.Context, from string, msg sim.Message) {
	if c.rx.Handle(ctx, msg) {
		return
	}
	switch m := msg.(type) {
	case msgSubmit:
		c.sentAt[m.req.Req] = ctx.Now()
		c.kinds[m.req.Req] = m.req.Kind
		c.rx.Send(ctx, m.req)
	case MsgResponse:
		if _, dup := c.Responses[m.Response.Req]; dup {
			return // duplicate delivery (a replay the retry solicited, or wire dup)
		}
		c.Responses[m.Response.Req] = m.Response
		c.Done++
		if at, ok := c.sentAt[m.Response.Req]; ok {
			lat := ctx.Now() - at
			c.Latency.Add(lat)
			kind := c.kinds[m.Response.Req]
			if kind != "" {
				s, ok := c.PerKind[kind]
				if !ok {
					s = newLatencySeries()
					c.PerKind[kind] = s
				}
				s.Add(lat)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Open-loop generator (benchmarks)

// Generator submits requests drawn from a workload function at a fixed
// arrival rate (open loop: arrivals do not wait for responses, so queueing
// delay shows up as latency exactly like in the paper's experiments).
// With RetryEvery set it retransmits unanswered requests, like a fleet of
// real clients with a request timeout — required when the fault plan may
// drop client-edge messages or crash the ingress (see Retransmitter).
type Generator struct {
	ID   string
	Sys  System
	Rate float64 // requests per second
	// Horizon stops arrivals after this virtual time.
	Horizon time.Duration
	// WarmUp discards latency samples before this time.
	WarmUp time.Duration
	// Next produces the i-th request.
	Next func(i int) Request
	// RetryEvery re-sends a request with no response after this much
	// virtual time (0: no retries).
	RetryEvery time.Duration

	Latency   *metrics.Series
	PerKind   map[string]*metrics.Series
	Errors    int
	Done      int
	Submitted int
	rx        Retransmitter
	sentAt    map[string]time.Duration
	kinds     map[string]string
	seq       int
}

// NewGenerator builds an open-loop generator.
func NewGenerator(id string, sys System, rate float64, horizon, warmUp time.Duration, next func(i int) Request) *Generator {
	return &Generator{
		ID: id, Sys: sys, Rate: rate, Horizon: horizon, WarmUp: warmUp, Next: next,
		Latency: newLatencySeries(),
		PerKind: map[string]*metrics.Series{},
		sentAt:  map[string]time.Duration{},
		kinds:   map[string]string{},
	}
}

// Retried reports total retransmissions across all requests.
func (g *Generator) Retried() int { return g.rx.Total() }

type msgArrival struct{}

// OnStart schedules the first arrival.
func (g *Generator) OnStart(ctx *sim.Context) {
	g.rx = Retransmitter{Sys: g.Sys, ReplyTo: g.ID, Every: g.RetryEvery}
	ctx.After(g.interArrival(ctx), msgArrival{})
}

// interArrival draws an exponential gap (Poisson arrivals).
func (g *Generator) interArrival(ctx *sim.Context) time.Duration {
	if g.Rate <= 0 {
		return time.Hour
	}
	mean := float64(time.Second) / g.Rate
	return time.Duration(ctx.Rand().ExpFloat64() * mean)
}

// OnMessage implements sim.Handler.
func (g *Generator) OnMessage(ctx *sim.Context, from string, msg sim.Message) {
	if g.rx.Handle(ctx, msg) {
		return
	}
	switch m := msg.(type) {
	case msgArrival:
		if ctx.Now() > g.Horizon {
			return
		}
		req := g.Next(g.seq)
		g.seq++
		g.Submitted++
		g.sentAt[req.Req] = ctx.Now()
		g.kinds[req.Req] = req.Kind
		g.rx.Send(ctx, req)
		ctx.After(g.interArrival(ctx), msgArrival{})
	case MsgResponse:
		at, ok := g.sentAt[m.Response.Req]
		if !ok {
			return // duplicate (or unknown) response: already accounted
		}
		g.Done++
		if m.Response.Err != "" {
			g.Errors++
		}
		delete(g.sentAt, m.Response.Req)
		if at < g.WarmUp {
			return
		}
		lat := ctx.Now() - at
		g.Latency.Add(lat)
		kind := g.kinds[m.Response.Req]
		delete(g.kinds, m.Response.Req)
		if kind != "" {
			s, ok := g.PerKind[kind]
			if !ok {
				s = newLatencySeries()
				g.PerKind[kind] = s
			}
			s.Add(lat)
		}
	}
}
