package sysapi

import (
	"fmt"
	"testing"
	"time"

	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/sim"
)

// echoSystem is a trivial System whose ingress component answers every
// request after a fixed service delay.
type echoSystem struct {
	delay time.Duration
}

func (echoSystem) IngressID() string { return "echo" }

func (echoSystem) ClientLink() sim.Latency {
	return sim.Latency{Base: time.Millisecond}
}

type echoIngress struct{ delay time.Duration }

func (e echoIngress) OnMessage(ctx *sim.Context, from string, msg sim.Message) {
	if m, ok := msg.(MsgRequest); ok {
		ctx.Send(m.ReplyTo, MsgResponse{Response: Response{
			Req: m.Request.Req, Value: interp.IntV(1),
		}}, e.delay)
	}
}

func TestScriptClientRecordsLatency(t *testing.T) {
	cluster := sim.New(1)
	sys := echoSystem{}
	cluster.Add("echo", echoIngress{delay: 4 * time.Millisecond})
	c := NewScriptClient("c", sys, []Scheduled{
		{At: 0, Req: Request{Req: "r1", Kind: "read"}},
		{At: 2 * time.Millisecond, Req: Request{Req: "r2", Kind: "update"}},
	})
	cluster.Add("c", c)
	cluster.Start()
	cluster.RunUntil(time.Second)
	if c.Done != 2 {
		t.Fatalf("done: %d", c.Done)
	}
	// Round trip: 1ms there + 4ms service.
	if got := c.Latency.Min(); got != 5*time.Millisecond {
		t.Fatalf("latency: %s", got)
	}
	if c.PerKind["read"].Count() != 1 || c.PerKind["update"].Count() != 1 {
		t.Fatal("per-kind series")
	}
	if c.Responses["r1"].Value.I != 1 {
		t.Fatal("response payload")
	}
}

func TestScriptClientDedupes(t *testing.T) {
	cluster := sim.New(1)
	c := NewScriptClient("c", echoSystem{}, nil)
	cluster.Add("c", c)
	cluster.Add("echo", echoIngress{})
	cluster.Start()
	cluster.Inject(0, "echo", "c", MsgResponse{Response: Response{Req: "dup"}})
	cluster.Inject(0, "echo", "c", MsgResponse{Response: Response{Req: "dup"}})
	cluster.RunUntil(time.Second)
	if c.Done != 1 {
		t.Fatalf("duplicate responses counted: %d", c.Done)
	}
}

func TestGeneratorOpenLoopRate(t *testing.T) {
	cluster := sim.New(2)
	sys := echoSystem{}
	cluster.Add("echo", echoIngress{delay: time.Millisecond})
	gen := NewGenerator("g", sys, 1000, 2*time.Second, 0, func(i int) Request {
		return Request{Req: fmt.Sprintf("r%d", i), Kind: "read"}
	})
	cluster.Add("g", gen)
	cluster.Start()
	cluster.RunUntil(4 * time.Second)
	// Poisson arrivals at 1000/s over 2s: expect ~2000 +- 10%.
	if gen.Submitted < 1700 || gen.Submitted > 2300 {
		t.Fatalf("submitted: %d", gen.Submitted)
	}
	if gen.Done != gen.Submitted {
		t.Fatalf("done %d != submitted %d", gen.Done, gen.Submitted)
	}
	if gen.Errors != 0 {
		t.Fatalf("errors: %d", gen.Errors)
	}
}

func TestGeneratorWarmupDiscardsSamples(t *testing.T) {
	cluster := sim.New(3)
	sys := echoSystem{}
	cluster.Add("echo", echoIngress{delay: time.Millisecond})
	gen := NewGenerator("g", sys, 500, time.Second, 500*time.Millisecond, func(i int) Request {
		return Request{Req: fmt.Sprintf("r%d", i)}
	})
	cluster.Add("g", gen)
	cluster.Start()
	cluster.RunUntil(3 * time.Second)
	if gen.Latency.Count() >= gen.Done {
		t.Fatalf("warm-up not discarded: %d samples of %d done", gen.Latency.Count(), gen.Done)
	}
	if gen.Latency.Count() == 0 {
		t.Fatal("no samples after warm-up")
	}
}

func TestGeneratorStopsAtHorizon(t *testing.T) {
	cluster := sim.New(4)
	sys := echoSystem{}
	cluster.Add("echo", echoIngress{})
	gen := NewGenerator("g", sys, 100, 100*time.Millisecond, 0, func(i int) Request {
		return Request{Req: fmt.Sprintf("r%d", i)}
	})
	cluster.Add("g", gen)
	cluster.Start()
	cluster.RunUntil(10 * time.Second)
	if gen.Submitted > 30 { // ~10 expected at 100/s over 100ms
		t.Fatalf("generator ran past horizon: %d", gen.Submitted)
	}
	if cluster.Pending() != 0 {
		t.Fatalf("events still pending: %d", cluster.Pending())
	}
}

func TestGeneratorCountsErrors(t *testing.T) {
	cluster := sim.New(5)
	sys := echoSystem{}
	cluster.Add("echo", failingIngress{})
	gen := NewGenerator("g", sys, 200, 100*time.Millisecond, 0, func(i int) Request {
		return Request{Req: fmt.Sprintf("r%d", i)}
	})
	cluster.Add("g", gen)
	cluster.Start()
	cluster.RunUntil(2 * time.Second)
	if gen.Errors == 0 || gen.Errors != gen.Done {
		t.Fatalf("errors: %d done: %d", gen.Errors, gen.Done)
	}
}

type failingIngress struct{}

func (failingIngress) OnMessage(ctx *sim.Context, from string, msg sim.Message) {
	if m, ok := msg.(MsgRequest); ok {
		ctx.Send(m.ReplyTo, MsgResponse{Response: Response{
			Req: m.Request.Req, Err: "boom",
		}}, time.Millisecond)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder("req-")
	target := interp.EntityRef{Class: "Account", Key: "alice"}
	r1 := b.Next(target, "read", nil, "read")
	r2 := b.Next(target, "update", []interp.Value{interp.IntV(5)}, "update")
	if r1.Req != "req-1.1" || r2.Req != "req-1.2" {
		t.Fatalf("sequential ids: %s %s", r1.Req, r2.Req)
	}
	if r2.Method != "update" || r2.Kind != "update" || len(r2.Args) != 1 {
		t.Fatalf("request fields: %+v", r2)
	}
	at := b.At(7, target, "read", nil, "")
	if at.Req != "req-1.7" || at.Target != target {
		t.Fatalf("At: %+v", at)
	}
	// At does not advance the sequence.
	if r3 := b.Next(target, "read", nil, ""); r3.Req != "req-1.3" {
		t.Fatalf("sequence after At: %s", r3.Req)
	}
}

func TestBuilderIncarnations(t *testing.T) {
	target := interp.EntityRef{Class: "Account", Key: "alice"}
	b2 := NewIncarnation("req-", 2)
	r := b2.Next(target, "read", nil, "")
	if r.Req != "req-2.1" {
		t.Fatalf("incarnation id: %s", r.Req)
	}
	if r1 := NewBuilder("req-").Next(target, "read", nil, ""); r1.Req == r.Req {
		t.Fatalf("incarnations collide: %s", r.Req)
	}
}

func TestSplitID(t *testing.T) {
	src, seq, ok := SplitID("api-1.42")
	if !ok || src != "api-1" || seq != 42 {
		t.Fatalf("SplitID(api-1.42) = %q %d %v", src, seq, ok)
	}
	// Prefixes containing dots split at the LAST dot.
	src, seq, ok = SplitID("node.a-3.7")
	if !ok || src != "node.a-3" || seq != 7 {
		t.Fatalf("SplitID(node.a-3.7) = %q %d %v", src, seq, ok)
	}
	for _, id := range []string{"", "noseq", "x.", ".5", "x.-1", "x.5z"} {
		if _, _, ok := SplitID(id); ok {
			t.Fatalf("SplitID(%q) accepted a non-builder id", id)
		}
	}
}
