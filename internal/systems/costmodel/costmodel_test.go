package costmodel

import (
	"testing"
	"time"
)

func TestDefaultsAreSane(t *testing.T) {
	c := Default()
	if c.ExecuteCPU <= 0 || c.ConstructCPU <= 0 || c.BrokerCPU <= 0 {
		t.Fatal("zero CPU costs")
	}
	// The broker poll delay dominates the wire latencies — that asymmetry
	// is what makes StateFun's per-call cost network-bound (§4).
	if c.BrokerPoll.Base <= c.WorkerLink.Base*4 {
		t.Fatal("broker poll should dominate worker links")
	}
	// Splitting instrumentation must be small relative to execution so the
	// <1% overhead claim (§4) holds by construction.
	if float64(c.SplitOverhead) > 0.01*float64(c.ExecuteCPU+c.ConstructCPU) {
		t.Fatalf("split overhead too large: %s vs %s", c.SplitOverhead, c.ExecuteCPU)
	}
}

func TestStateCPUProportional(t *testing.T) {
	c := Default()
	small := c.StateCPU(1000)
	big := c.StateCPU(100_000)
	if big != 100*small {
		t.Fatalf("not proportional: %s vs %s", small, big)
	}
	if c.StateCPU(0) != 0 {
		t.Fatal("zero bytes")
	}
}

func TestStateCPUCapped(t *testing.T) {
	c := Default()
	atCap := c.StateCPU(c.MaxStateBytes)
	beyond := c.StateCPU(c.MaxStateBytes * 100)
	if beyond != atCap {
		t.Fatalf("cap not applied: %s vs %s", beyond, atCap)
	}
}

func TestStateCPUMagnitude(t *testing.T) {
	// A 100 KB state must cost meaningfully more than the fixed execution
	// cost, so the overhead experiment's state-size sweep has signal.
	c := Default()
	if c.StateCPU(100*1024) < c.ExecuteCPU/2 {
		t.Fatalf("state cost too small to matter: %s", c.StateCPU(100*1024))
	}
	if c.StateCPU(100*1024) > 10*time.Millisecond {
		t.Fatalf("state cost implausibly large: %s", c.StateCPU(100*1024))
	}
}
