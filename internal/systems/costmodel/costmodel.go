// Package costmodel centralizes the simulated latency and CPU-cost
// parameters of both runtimes. The constants are calibrated so the
// simulated deployment reproduces the shape of the paper's evaluation on
// its 14-CPU testbed (§4): sub-100ms request latencies, StateFun paying a
// broker roundtrip plus a remote-function network hop per call, StateFlow
// paying an epoch-commit wait, and program-transformation overhead well
// under 1% of total event time.
package costmodel

import (
	"time"

	"statefulentities.dev/stateflow/internal/sim"
)

// Costs parameterizes one simulated deployment.
type Costs struct {
	// Network links.
	ClientLink sim.Latency // client <-> system edge (ingress/egress)
	WorkerLink sim.Latency // worker <-> worker / coordinator
	BrokerLink sim.Latency // producer -> broker (Kafka produce path)
	BrokerPoll sim.Latency // broker -> consumer delivery (poll/batching delay)
	RemoteFn   sim.Latency // Flink worker <-> remote function runtime

	// CPU costs charged on workers per event.
	RoutingCPU     time.Duration // ingress/egress routing + dispatch
	DeserializeCPU time.Duration // event decode
	ConstructCPU   time.Duration // entity object construction, fixed part
	ExecuteCPU     time.Duration // function block execution, fixed part
	SplitOverhead  time.Duration // instrumentation added by function splitting
	StateByteCPU   time.Duration // per-byte state (de)serialization cost
	CommitCPU      time.Duration // per-transaction validation/commit work
	BrokerCPU      time.Duration // broker work per produced/consumed record

	// FallbackCPU prices Aria's deterministic fallback phase, per
	// transaction: shipping one reservation-set footprint with the batch
	// vote (worker side) and one node's share of the dependency-graph
	// scheduling pass (coordinator side). Re-executed call chains charge
	// the ordinary execution costs on top.
	FallbackCPU time.Duration

	// PipelineCPU prices the coordinator's epoch-pipeline bookkeeping:
	// promoting a fully executed batch into the commit stage while the
	// next epoch opens (stage-table updates, per-epoch demultiplexing).
	// Charged only on the pipelined path; the serial coordinator never
	// pays it.
	PipelineCPU time.Duration

	// Durable-log (coordinator WAL) costs.
	LogAppendCPU time.Duration // encode + buffered append of one record
	LogSyncCPU   time.Duration // blocking fsync (epoch records, checkpoints)
	// LogGroupDelay is the group-commit window: responses release when the
	// batched fsync covering their delivered-records completes, this long
	// after the batch applied.
	LogGroupDelay time.Duration

	// MaxStateBytes caps the per-event state cost accounting (guards the
	// simulation against pathological states).
	MaxStateBytes int
}

// Default returns the calibrated deployment parameters.
func Default() Costs {
	return Costs{
		ClientLink: sim.Latency{Base: 500 * time.Microsecond, Jitter: 300 * time.Microsecond},
		WorkerLink: sim.Latency{Base: 250 * time.Microsecond, Jitter: 150 * time.Microsecond},
		BrokerLink: sim.Latency{Base: 600 * time.Microsecond, Jitter: 300 * time.Microsecond},
		// The dominant Kafka cost is not the wire but consumer
		// poll/batching delay; this is what makes every StateFun hop
		// expensive (§4: "the cost of reads and writes are the same due to
		// the network costs").
		BrokerPoll: sim.Latency{Base: 9 * time.Millisecond, Jitter: 7 * time.Millisecond},
		RemoteFn:   sim.Latency{Base: 1200 * time.Microsecond, Jitter: 600 * time.Microsecond},

		RoutingCPU:     15 * time.Microsecond,
		DeserializeCPU: 20 * time.Microsecond,
		// Construct/execute reflect CPython-level function execution (both
		// runtimes execute Python in the paper).
		ConstructCPU:  200 * time.Microsecond,
		ExecuteCPU:    440 * time.Microsecond,
		SplitOverhead: 900 * time.Nanosecond,
		StateByteCPU:  4 * time.Nanosecond,
		CommitCPU:     8 * time.Microsecond,
		FallbackCPU:   3 * time.Microsecond,
		PipelineCPU:   1 * time.Microsecond,
		BrokerCPU:     12 * time.Microsecond,
		// WAL: appends hit the page cache; the blocking fsync cost and the
		// group-commit window are calibrated to a datacenter NVMe device
		// (sequential append, one flush per batch).
		LogAppendCPU:  2 * time.Microsecond,
		LogSyncCPU:    30 * time.Microsecond,
		LogGroupDelay: 800 * time.Microsecond,
		MaxStateBytes: 1 << 20,
	}
}

// StateCPU returns the CPU charge for serializing/deserializing a state of
// the given encoded size.
func (c Costs) StateCPU(bytes int) time.Duration {
	if bytes > c.MaxStateBytes {
		bytes = c.MaxStateBytes
	}
	return time.Duration(bytes) * c.StateByteCPU
}
