// The StateFlow coordinator: combines the ingress router (request intake,
// replayable source, TID assignment), the Aria batch sequencer (epoch
// close, prepare/vote/decide), the snapshot trigger, the failure detector
// and the egress router (deduplicated client responses with durable
// response-replay). The paper's deployment dedicates a single core to it
// ("StateFlow requires a single core coordinator", §4).
//
// Epoch pipelining: the coordinator keeps a two-slot stage table — exec
// (the open/executing epoch) and commit (the epoch in
// validate/apply/snapshot) — and runs them concurrently. When epoch N's
// batch is fully executed and the commit slot is free, N is promoted into
// it and epoch N+1 opens immediately: N+1 accumulates arrivals and
// dispatches execution events while N validates, applies, snapshots and
// group-commits. Workers demultiplex by epoch (per-epoch workspaces) and
// buffer N+1's events until N's final decide is applied locally, so
// serializability is never at stake — the overlap hides the commit phases
// behind the next epoch's open window. Config.DisablePipelining restores
// the serial schedule.
//
// Crash safety: the coordinator journals its protocol-critical state to a
// durable append log (internal/dlog). Released responses are
// group-committed before they are sent; on the serial path epoch advances
// are fsynced before any message of the new epoch leaves the node. On the
// pipelined path the advance record for N+1 is appended when N is
// promoted and rides N's group-commit fsync instead of forcing its own —
// merging the two syncs that the serial schedule pays per epoch into one.
// At most one epoch advance may be volatile at a time (the next one
// blocks), and a restart compensates for the possibly-torn volatile
// record by over-bumping the recovered epoch, which keeps the view-change
// guard sound. After a crash, OnRestart rebuilds exactly the facts the
// exactly-once contract depends on (epoch high-water mark, delivered
// responses) and runs the ordinary snapshot-rollback recovery; everything
// else (seen-set, cursor, pending retries) is reconstructed from the
// replayable source and the snapshot metadata, which are durable by their
// own contracts.
package stateflow

import (
	"math"
	"sort"
	"strconv"
	"time"

	"statefulentities.dev/stateflow/internal/core"
	"statefulentities.dev/stateflow/internal/interp"
	"statefulentities.dev/stateflow/internal/obs"
	"statefulentities.dev/stateflow/internal/sim"
	"statefulentities.dev/stateflow/internal/snapshot"
	"statefulentities.dev/stateflow/internal/systems/sysapi"
	"statefulentities.dev/stateflow/internal/txn/aria"
)

type phase int

const (
	phaseOpen phase = iota
	phaseClosing
	phasePrepare
	phaseApply
	phaseSnapshot
	phaseRecovering
)

type txnState struct {
	req      sysapi.Request
	replyTo  string
	pos      int64 // source-log position of the request
	retries  int
	finished bool
	value    interp.Value
	err      string
}

// stagedResponse is a response whose delivered-record is appended but
// whose covering group-commit sync has not completed: it must not be sent
// (write-ahead: a response a client saw must be recoverable) and is
// released by the msgLogSynced that confirms durability.
type stagedResponse struct {
	lsn     int64
	replyTo string
	ent     deliveredEntry
}

type pendingReq struct {
	req     sysapi.Request
	replyTo string
	pos     int64 // source-log position of the request
	retries int
	// arrivedAt is when the request entered (or re-entered) the intake
	// queue — the start of its ingress.queue trace span. Zero when the
	// enqueue instant is unknown (e.g. a source-log drain after
	// recovery); assign then clamps the span to zero length. Purely
	// observational.
	arrivedAt time.Duration
}

// epochState is one slot of the coordinator's pipeline stage table: the
// full per-epoch protocol state, from the open batch through validation,
// fallback rounds and apply. The epoch number is the demultiplexing key —
// worker messages carry it, and stageFor routes them to the slot they
// belong to — so two epochs can be in flight without their votes, acks or
// finishes contaminating each other.
type epochState struct {
	epoch int64
	phase phase
	// phaseAt is when the current phase began (set by enterPhase and at
	// batch close) — the start timestamp of the phase's trace span.
	// Purely observational.
	phaseAt time.Duration

	// binding marks a recovery replay epoch whose batch re-executes
	// already-released responses (the binding prefix — see Recover). It
	// admits no fresh arrivals, never pipelines, never snapshots, and its
	// conflict aborts requeue to the front of the binding queue with no
	// retry budget: a response a client already holds cannot be taken
	// back, so its effects must be rebuilt no matter what.
	binding bool

	batch map[aria.TID]*txnState
	order []aria.TID
	// unfinished counts batch transactions whose root response has not
	// arrived yet; it makes the per-finish completion check O(1) instead
	// of rescanning the whole batch map.
	unfinished int

	// consumedEnd freezes the source cursor at batch close: it is this
	// epoch's aligned cut. The pipelined successor keeps consuming past it
	// while this epoch commits, so the snapshot taken at this epoch's
	// boundary must record this value — not the live cursor — as its
	// replay offset.
	consumedEnd int64

	votes      map[string]bool
	unionAbort map[aria.TID]bool
	applied    map[string]bool

	// Fallback phase state (epoch-scoped, discarded with the slot). fbVotes
	// holds the per-worker local reservation sets shipped with the batch
	// votes (merged into global footprints only if the batch actually has
	// conflict aborts — an uncontended batch pays nothing beyond the
	// shipping); fbRounds the not-yet-executed re-execution rounds of the
	// deterministic schedule; fbSet marks every transaction the schedule
	// rescues (they skip the next-batch retry path); fbRound/fbOrder
	// identify the round in flight (fbRound 0: no fallback running).
	fbVotes  []map[aria.TID]*aria.RWSet
	fbRounds [][]aria.TID
	fbSet    map[aria.TID]bool
	fbRound  int
	fbOrder  []aria.TID
	// fbFootprints retains the rescued members' merged footprints across
	// the rounds (declared at schedule time, widened as re-executions
	// drift): the per-round drift check compares a would-be committer's
	// observed footprint against the not-yet-committed lower-TID members'
	// retained ones.
	fbFootprints map[aria.TID]*aria.RWSet
}

// Coordinator is the StateFlow coordinator node.
type Coordinator struct {
	sys *System

	// epoch is the latest epoch ever opened (the exec slot's epoch outside
	// recovery); it is the value the view-change guard reasons about.
	epoch   int64
	nextTID aria.TID

	// The pipeline stage table. exec is the epoch accepting and executing
	// its batch; commit is the epoch in validate/fallback/apply/snapshot.
	// Serial schedule: at most one is non-nil at a time (exec moves into
	// commit and a new exec opens only when commit settles). Pipelined
	// schedule: both run concurrently. recovering parks both slots while a
	// rollback is in flight.
	exec       *epochState
	commit     *epochState
	recovering bool

	// Pending requests not yet assigned (arrivals during commit phases and
	// retries of aborted transactions).
	pending []pendingReq

	// replaying is the binding replay queue a recovery builds: requests
	// whose responses were already released to clients but whose effects
	// the restored snapshot predates. They re-execute first — in release
	// order, in dedicated binding epochs — so the rebuilt state agrees
	// with every response that already escaped, before any pending retry
	// or fresh suffix work commits (see Recover).
	replaying []pendingReq

	// snapCuts records each snapshot's aligned-cut virtual time (when its
	// epoch staged its last response): a delivered entry released after
	// the restored snapshot's cut has effects the images predate, which
	// is exactly what makes it binding. The sealed snapshot's cut rides
	// the dlog checkpoint so the classification survives reboots.
	snapCuts map[int64]time.Duration

	// Replayable source position: how many log records have been drawn
	// into batches.
	consumed int64

	snapDone   map[string]bool
	recovered  map[string]bool
	snapshotID int64

	// sealed is the newest snapshot id whose seal is durable (carried in
	// the latest dlog checkpoint). A snapshot's images may be complete in
	// the store while its seal is still volatile; recovery restores only
	// up to sealed, so the snapshot path never needs to force the WAL
	// ahead of the images — the checkpoint that seals the snapshot is the
	// single sync that makes both the images and the delivered-records
	// they depend on recoverable together.
	sealed int64

	// delivered is the egress state: per answered request, the full
	// response, its release time and source position. It dedupes client
	// responses across recovery replays (exactly-once output at the system
	// border) and re-serves the recorded response to a retrying client
	// whose copy was lost. Durable: rebuilt from the dlog on restart,
	// compacted into checkpoints, pruned by the retention window.
	delivered map[string]deliveredEntry

	// dedupFloor records, per request-id source (a sysapi.Builder prefix +
	// incarnation), the highest sequence number ever pruned from the
	// dedup maps. Every lower sequence from that source was answered and
	// retired, so an arrival at or below the floor is a very late
	// duplicate — absorbed instead of re-executed, closing the
	// duplicate-after-DedupRetention hole for builder-minted ids. Durable:
	// carried in the dlog checkpoint that performed the prune.
	dedupFloor map[string]int64

	// seen dedupes request arrivals by id before they reach the source
	// log (exactly-once input at the system border: a duplicated client
	// send — a transport retry, or chaos duplication — must not become a
	// second transaction). Volatile: rebuilt at recovery from delivered +
	// snapshot pending positions + the source-log suffix, which together
	// cover every id still inside the dedup window.
	seen map[string]bool

	// staged responses awaiting their group-commit sync, FIFO by LSN;
	// stagedIDs guards against re-staging when a stall-triggered recovery
	// replays a transaction whose response is already in the pipeline.
	staged    []stagedResponse
	stagedIDs map[string]bool

	// Durable-log write ordering. lastLSN is the newest appended record;
	// durableLSN the newest record a completed (or issued-blocking) sync
	// covers; epochLSN the LSN of the newest epoch-advance record. The
	// pipelined epoch advance stays volatile (epochLSN > durableLSN) until
	// the commit epoch's group-commit sync sweeps it up — and while it is
	// volatile, the next advance is forced to block, so at most one epoch
	// record is ever at risk in a crash.
	lastLSN    int64
	durableLSN int64
	epochLSN   int64

	// progress counts accepted worker messages; the failure detector
	// compares it against the value captured when a stall check was
	// armed, so recovery only fires when a phase made no progress at all
	// for a full stall timeout.
	progress uint64

	// Stats.
	Commits      int
	Aborts       int
	Failures     int // transactions that exhausted retries
	Recoveries   int
	EpochsClosed int
	// FallbackRounds counts executed fallback re-execution rounds;
	// FallbackCommits the transactions the fallback phase rescued (a
	// subset of Commits — they would have been next-batch retries
	// without it); FallbackSpills the transactions the round budget
	// evicted into the next batch's retry queue.
	FallbackRounds  int
	FallbackCommits int
	FallbackSpills  int
	// FallbackDriftDemotions counts round members demoted by the
	// cross-round footprint-drift check: their re-execution's observed
	// footprint conflicted with a not-yet-committed lower-TID member's,
	// so committing them early would have broken the source-order
	// guarantee for conflicting transactions.
	FallbackDriftDemotions int
	// LateDuplicates counts arrivals absorbed by the incarnation dedup
	// floor: duplicates so late that their originals were already pruned
	// from the dedup maps by the retention window.
	LateDuplicates int
	// Restarts counts coordinator reboots (crash recoveries via the
	// durable log), a subset of Recoveries. MidPipelineRestarts counts the
	// reboots that interrupted two in-flight epochs (the commit slot was
	// occupied alongside an open exec slot when the crash landed) — the
	// overlap window the pipelined recovery path must get right.
	Restarts            int
	MidPipelineRestarts int
	// Replays counts responses re-served from the durable egress buffer
	// to retrying clients. BindingReplays counts released responses whose
	// transactions a recovery re-executed in binding epochs to rebuild
	// the effects the restored snapshot predated.
	Replays        int
	BindingReplays int
	// RestoredSnapshots records, per recovery, the snapshot id it rolled
	// back to (0: reset to empty) — tests assert every restored id was a
	// complete snapshot.
	RestoredSnapshots []int64

	// Commit-order tap (Config.TraceCommits): request id → position in
	// the effective serial order the surviving state was built in.
	// Overwritten when a recovery rolls a commit back and re-executes it;
	// deliberately NOT reset on restart — like the stats, it is
	// test-harness state about the whole run, not protocol state.
	commitSerial int64
	commitSeq    map[string]int64

	// Sharded global-commit fence state (see fence.go and sharded.go).
	// fencePending is a fence request received but not yet quiesced (0:
	// none), fenceFrom its sender. fenced marks the parked window between
	// the durable __fence__ marker and its __unfence__; fenceSeq is the
	// active global batch id. fenceDone is the highest batch whose unfence
	// marker was appended (idempotent re-acks for lost acks). fenceApply
	// holds an unanswered __apply__ record the recovery scan found in the
	// log suffix; it executes once the binding replay drains.
	fencePending int64
	fenceFrom    string
	fenced       bool
	fenceSeq     int64
	fenceDone    int64
	fenceApply   *pendingReq
	// parkWatch is the batch id a live fence-park watchdog chain covers
	// (0: none) — at most one chain per park (see onFenceParkTick).
	parkWatch int64
	// fencedAt is when the shard parked (trace-span start of the fence
	// window). Purely observational.
	fencedAt time.Duration

	// GlobalFences counts fence parks for the sharded global-commit
	// protocol; GlobalApplies counts executed global write-set applies.
	GlobalFences  int
	GlobalApplies int
}

// tracer and flight return the deployment's observability sinks (nil
// handles are accepted by every obs method as no-ops). Instrumentation
// sites only read ctx.Now() — never ctx.Work or ctx.Rand — so tracing
// cannot perturb a deterministic run.
func (c *Coordinator) tracer() *obs.Tracer         { return c.sys.cfg.Tracer }
func (c *Coordinator) flight() *obs.FlightRecorder { return c.sys.cfg.Flight }

func newCoordinator(sys *System) *Coordinator {
	return &Coordinator{
		sys:        sys,
		exec:       &epochState{phase: phaseOpen, batch: map[aria.TID]*txnState{}},
		delivered:  map[string]deliveredEntry{},
		seen:       map[string]bool{},
		stagedIDs:  map[string]bool{},
		dedupFloor: map[string]int64{},
		snapCuts:   map[int64]time.Duration{},
	}
}

// OnStart schedules the first epoch tick.
func (c *Coordinator) OnStart(ctx *sim.Context) {
	ctx.After(c.sys.cfg.EpochInterval, msgEpochTick{Epoch: c.epoch})
}

// OnMessage implements sim.Handler.
func (c *Coordinator) OnMessage(ctx *sim.Context, from string, msg sim.Message) {
	switch m := msg.(type) {
	case sysapi.MsgRequest:
		c.onRequest(ctx, m)
	case msgEpochTick:
		c.onTick(ctx, m)
	case msgTxnFinished:
		c.onFinished(ctx, m)
	case msgVote:
		c.onVote(ctx, from, m)
	case msgApplied:
		c.onApplied(ctx, from, m)
	case msgSnapshotDone:
		c.onSnapshotDone(ctx, from, m)
	case msgLogSynced:
		c.onLogSynced(ctx, m)
	case msgStallCheck:
		c.onStallCheck(ctx, m)
	case msgRecovered:
		c.onRecovered(ctx, from, m)
	case msgFence:
		c.onFence(ctx, m)
	case msgUnfence:
		c.onUnfence(ctx, m)
	case msgGlobalRead:
		c.onGlobalRead(ctx, m)
	case msgFenceParkTick:
		c.onFenceParkTick(ctx, m)
	case msgSeqFenceQuery:
		c.onSeqFenceQuery(ctx, m)
	case msgSeqProbe:
		c.onSeqProbe(ctx, m)
	}
}

// stageFor routes an epoch-stamped worker message to the pipeline slot it
// belongs to (nil: the epoch is not in flight — the message is stale).
func (c *Coordinator) stageFor(epoch int64) *epochState {
	if c.exec != nil && c.exec.epoch == epoch {
		return c.exec
	}
	if c.commit != nil && c.commit.epoch == epoch {
		return c.commit
	}
	return nil
}

// batchFull reports whether the slot's batch reached the configured cap.
func (c *Coordinator) batchFull(st *epochState) bool {
	return c.sys.cfg.MaxBatch > 0 && len(st.batch) >= c.sys.cfg.MaxBatch
}

// onRequest appends the arrival to the replayable source log, then either
// assigns it into the open batch or buffers it. A request whose response
// was already released is answered from the durable egress buffer instead
// (response replay: the client is retrying because its copy was lost).
func (c *Coordinator) onRequest(ctx *sim.Context, m sysapi.MsgRequest) {
	ctx.Work(c.sys.cfg.Costs.RoutingCPU)
	id := m.Request.Req
	if ent, ok := c.delivered[id]; ok {
		if m.ReplyTo != "" {
			c.Replays++
			ctx.Send(m.ReplyTo, sysapi.MsgResponse{Response: ent.resp},
				c.sys.cfg.Costs.ClientLink.Sample(ctx.Rand()))
		}
		return
	}
	if c.seen[id] {
		return // duplicate send of an in-flight request; already logged
	}
	if src, seq, ok := sysapi.SplitID(id); ok {
		if floor, pruned := c.dedupFloor[src]; pruned && seq <= floor {
			// The source's dedup entries up to this sequence were pruned
			// by the retention window — the original was answered long
			// ago and its client stopped retrying, so this copy is a very
			// late wire duplicate. Absorbing it (no response) is the only
			// exactly-once option left: the recorded response is gone.
			c.LateDuplicates++
			return
		}
	}
	if m.Request.Method == applyMethod {
		// A global write-set apply is only meaningful inside its fence
		// window; outside it (or mid-recovery) the copy is stale or early —
		// drop it unlogged and let the sequencer's stall guard re-send.
		if !c.fenced || c.recovering || markerSeq(m.Request) != c.fenceSeq {
			return
		}
	}
	_, pos, err := c.sys.RequestLog.Produce(sourceTopic, id, m)
	if err != nil {
		return
	}
	c.seen[id] = true
	if m.Request.Method == applyMethod {
		// The apply is durable in the source log (the shard-local atomic
		// commit point for the global batch); run it through the parked
		// epoch. consumed does NOT advance — arrivals queued during the
		// fence sit between the cursor and this record, and the post-
		// unfence drain skips it as answered.
		c.startApply(ctx, pendingReq{req: m.Request, replyTo: m.ReplyTo, pos: pos, arrivedAt: ctx.Now()})
		return
	}
	if st := c.exec; !c.recovering && !c.fenced && c.fencePending == 0 &&
		st != nil && st.phase == phaseOpen && !st.binding && !c.batchFull(st) {
		c.consumed++
		c.assign(ctx, st, pendingReq{req: m.Request, replyTo: m.ReplyTo, pos: pos, arrivedAt: ctx.Now()})
	}
	// Otherwise the record waits in the log; it is drained when a batch
	// with capacity opens (for a fencing or fenced shard: after the
	// global batch unfences).
}

// assign gives a request a TID in the slot's batch and dispatches its
// first invocation event.
func (c *Coordinator) assign(ctx *sim.Context, st *epochState, p pendingReq) {
	c.nextTID++
	tid := c.nextTID
	st.batch[tid] = &txnState{req: p.req, replyTo: p.replyTo, pos: p.pos, retries: p.retries}
	st.unfinished++
	if tr := c.tracer(); tr.Enabled() {
		start := p.arrivedAt
		if start == 0 || start > ctx.Now() {
			start = ctx.Now()
		}
		tr.Span(c.sys.coordID, "txn", "ingress.queue", start, ctx.Now(),
			"trace", p.req.Trace.ID, "epoch", strconv.FormatInt(st.epoch, 10))
	}
	ev := &core.Event{
		Kind:   core.EvInvoke,
		Req:    p.req.Req,
		Target: p.req.Target,
		Method: p.req.Method,
		Args:   p.req.Args,
	}
	owner := c.sys.ownerOf(p.req.Target)
	ctx.Send(owner, msgTxnEvent{TID: tid, Epoch: st.epoch, Ev: ev},
		c.sys.cfg.Costs.WorkerLink.Sample(ctx.Rand()))
}

// onTick closes the open batch. An empty batch first drains pending
// retries — the pipelined commit stage spills them while the exec slot is
// already open, and with no fresh arrivals the tick is the only thing
// that would ever pick them up.
func (c *Coordinator) onTick(ctx *sim.Context, m msgEpochTick) {
	st := c.exec
	if c.recovering || st == nil || m.Epoch != st.epoch || st.phase != phaseOpen {
		return
	}
	if c.fenced && !st.binding {
		// Parked for a global batch: the fence epoch has no timer-driven
		// closes — it closes when the sequencer's apply arrives, and the
		// tick chain resumes at unfence. (Binding replay epochs keep their
		// ticks: they rebuild released effects even under a fence.)
		return
	}
	if len(st.batch) == 0 {
		c.drainPending(ctx, st)
	}
	if len(st.batch) == 0 {
		if c.fencePending != 0 && c.maybeFence(ctx) {
			return // parked; the tick chain stops until unfence
		}
		// Nothing arrived: stay open and retick.
		ctx.After(c.sys.cfg.EpochInterval, msgEpochTick{Epoch: st.epoch})
		return
	}
	st.consumedEnd = c.consumed
	c.enterPhase(ctx, st, phaseClosing)
	c.maybePrepare(ctx, st)
}

// enterPhase transitions a slot to a worker-dependent phase and arms the
// failure detector: if the epoch is still stuck in this phase — with no
// worker progress at all — when the stall timeout elapses, a worker is
// presumed dead and recovery starts. Every phase that waits on all
// workers (execution, validation, apply, snapshot, recovery) is guarded,
// so a worker crash or a lost message can never deadlock the pipeline.
func (c *Coordinator) enterPhase(ctx *sim.Context, st *epochState, p phase) {
	st.phase = p
	st.phaseAt = ctx.Now()
	ctx.After(c.sys.cfg.StallTimeout, msgStallCheck{Epoch: st.epoch, Phase: p, Progress: c.progress})
}

// onFinished records a transaction's root response (from the batch's
// first execution or from the fallback round in flight). The epoch stamp
// routes it to the right slot: with pipelining, finishes for the exec
// epoch arrive while the commit epoch is still validating.
func (c *Coordinator) onFinished(ctx *sim.Context, m msgTxnFinished) {
	st := c.stageFor(m.Epoch)
	if st == nil || m.Round != st.fbRound {
		return // stale: batch discarded by recovery, or a finished round
	}
	t, ok := st.batch[m.TID]
	if !ok || t.finished {
		return
	}
	c.progress++
	t.finished = true
	t.value = m.Value
	t.err = m.Err
	st.unfinished--
	c.maybePrepare(ctx, st)
}

// maybePrepare advances a fully executed slot (Aria's execution barrier).
// A fallback round validates in place; a fully executed batch is promoted
// into the commit stage — unless the slot is still occupied, in which
// case the batch waits closed (backpressure: the pipeline is exactly two
// deep).
func (c *Coordinator) maybePrepare(ctx *sim.Context, st *epochState) {
	if st.phase != phaseClosing || st.unfinished != 0 {
		return
	}
	if st.fbRound > 0 {
		c.sendPrepare(ctx, st)
		return
	}
	if c.commit != nil {
		return // commit slot busy; promoted when it settles
	}
	c.promote(ctx, st)
}

// promote moves a fully executed batch into the commit stage and — on the
// pipelined schedule — opens the next epoch immediately, so its batch
// accumulates and executes while this one validates, applies and
// group-commits.
func (c *Coordinator) promote(ctx *sim.Context, st *epochState) {
	c.commit = st
	if c.exec == st {
		c.exec = nil
	}
	c.sendPrepare(ctx, st)
	// Binding epochs pipeline like any other: the successor (the next
	// binding member, or the first normal epoch once the replay queue
	// drains) accumulates and executes while this epoch validates and
	// group-commits. Order stays exact because workers buffer a pipelined
	// epoch's events until the predecessor applies locally, and a
	// single-member binding batch can neither conflict-abort nor enter
	// the fallback phase — so nothing this epoch does can reorder work
	// already handed to the successor.
	// While fenced, the successor epoch waits for releaseCommit instead:
	// the fenced openEpoch path parks it (or runs a queued apply), and
	// opening it early would just park it sooner with nothing to do.
	if !c.sys.cfg.DisablePipelining && !c.fenced {
		ctx.Work(c.sys.cfg.Costs.PipelineCPU)
		c.openEpoch(ctx)
	}
}

// sendPrepare starts validation on every worker: of the batch (round 0,
// Order is the full batch TID order) or of the fallback round in flight.
func (c *Coordinator) sendPrepare(ctx *sim.Context, st *epochState) {
	if tr := c.tracer(); tr.Enabled() {
		// The execution window just ended: phaseAt was stamped when the
		// batch closed (or the fallback round dispatched).
		name := "execute"
		if st.fbRound > 0 {
			name = "fallback.round"
		}
		tr.Span(c.sys.coordID, "epoch", name, st.phaseAt, ctx.Now(),
			"epoch", strconv.FormatInt(st.epoch, 10), "round", strconv.Itoa(st.fbRound))
	}
	c.enterPhase(ctx, st, phasePrepare)
	st.votes = map[string]bool{}
	st.unionAbort = map[aria.TID]bool{}
	order := st.fbOrder
	if st.fbRound == 0 {
		st.order = st.order[:0]
		for tid := range st.batch {
			st.order = append(st.order, tid)
		}
		sort.Slice(st.order, func(i, j int) bool { return st.order[i] < st.order[j] })
		order = st.order
	}
	for _, w := range c.sys.workerIDs {
		ctx.Send(w, msgPrepare{Epoch: st.epoch, Round: st.fbRound,
			Order: append([]aria.TID(nil), order...)},
			c.sys.cfg.Costs.WorkerLink.Sample(ctx.Rand()))
	}
}

// onVote accumulates worker votes; when unanimous, broadcasts the global
// deterministic decision — for the batch, scheduling the fallback phase
// over the conflict aborts first, or for the fallback round in flight.
func (c *Coordinator) onVote(ctx *sim.Context, from string, m msgVote) {
	st := c.commit
	if st == nil || m.Epoch != st.epoch || st.phase != phasePrepare || m.Round != st.fbRound {
		return
	}
	if st.votes[from] {
		return
	}
	c.progress++
	st.votes[from] = true
	for _, t := range m.Aborts {
		st.unionAbort[t] = true
	}
	if len(m.Sets) > 0 {
		st.fbVotes = append(st.fbVotes, m.Sets)
	}
	if len(st.votes) < len(c.sys.workerIDs) {
		return
	}
	if tr := c.tracer(); tr.Enabled() {
		tr.Span(c.sys.coordID, "epoch", "validate", st.phaseAt, ctx.Now(),
			"epoch", strconv.FormatInt(st.epoch, 10), "round", strconv.Itoa(st.fbRound))
	}
	if st.fbRound > 0 {
		c.decideFallbackRound(ctx, st)
		return
	}
	// Binding epochs skip the fallback phase: its rescue rounds commit
	// aborted members out of queue order within the batch, and the binding
	// replay's whole contract is that conflicting members re-commit in
	// release order. Their aborts requeue to the binding queue instead.
	if !c.sys.cfg.DisableFallback && !st.binding {
		c.scheduleFallback(ctx, st)
	}
	// A transaction that failed with an application error commits nothing:
	// treat it as aborted for state purposes but respond immediately (it
	// has no effects to install — its workspace writes are dropped).
	aborts := make([]aria.TID, 0, len(st.unionAbort))
	for _, tid := range st.order {
		if st.unionAbort[tid] || st.batch[tid].err != "" {
			aborts = append(aborts, tid)
		}
	}
	final := len(st.fbRounds) == 0
	c.enterPhase(ctx, st, phaseApply)
	st.applied = map[string]bool{}
	for _, w := range c.sys.workerIDs {
		ctx.Send(w, msgDecide{Epoch: st.epoch,
			Order:  append([]aria.TID(nil), st.order...),
			Aborts: append([]aria.TID(nil), aborts...),
			Final:  final,
		}, c.sys.cfg.Costs.WorkerLink.Sample(ctx.Rand()))
	}
}

// scheduleFallback computes the deterministic fallback schedule over the
// batch's conflict aborts: the dependency-graph pass (aria.Fallback) on
// the global footprints merged from the batch votes, filtered down to the
// conflict-aborted members. An application error alone is definitive and
// never re-executes — but an error on a member that also lost validation
// is tentative (it was observed under a voided footprint), so it is
// rescued like any other conflict abort. Runs
// before the batch decide so the decide/apply wave and the response loop
// both know which aborts the fallback phase rescues. A batch without
// conflict aborts skips the merge and the graph pass entirely — the
// uncontended hot path pays only the set shipping on votes.
func (c *Coordinator) scheduleFallback(ctx *sim.Context, st *epochState) {
	votes := st.fbVotes
	st.fbVotes = nil
	conflicted := false
	for _, tid := range st.order {
		if st.unionAbort[tid] {
			conflicted = true
			break
		}
	}
	if !conflicted {
		return
	}
	// Merge the workers' local sets into global per-transaction
	// footprints. Copied, never aliased: the workers wipe their
	// workspaces at decide while the footprints must survive into the
	// fallback rounds.
	merged := map[aria.TID]*aria.RWSet{}
	for _, sets := range votes {
		for tid, rw := range sets {
			m, ok := merged[tid]
			if !ok {
				m = aria.NewRWSet()
				merged[tid] = m
			}
			m.Merge(rw)
		}
	}
	sched := aria.Fallback(st.order, merged)
	if len(sched.Commit) == 0 {
		return
	}
	var rounds [][]aria.TID
	set := map[aria.TID]bool{}
	for _, members := range sched.Rounds {
		var keep []aria.TID
		for _, tid := range members {
			// Conflict aborts are rescued whether or not the tentative
			// execution errored: an error observed under a footprint that
			// lost validation is void (the serial order may create the very
			// entity the read missed), so it re-executes like any other
			// rescued member rather than being answered as definitive.
			if _, ok := st.batch[tid]; ok && st.unionAbort[tid] {
				keep = append(keep, tid)
				set[tid] = true
			}
		}
		if len(keep) > 0 {
			rounds = append(rounds, keep)
		}
	}
	st.fbRounds, st.fbSet = rounds, set
	// Retain the rescued members' footprints: the schedule guarantees a
	// member runs after every lower-TID member it (declaredly) conflicts
	// with, and the per-round drift check needs these sets to keep that
	// guarantee when re-executions drift off their declarations.
	st.fbFootprints = make(map[aria.TID]*aria.RWSet, len(set))
	for tid := range set {
		st.fbFootprints[tid] = merged[tid]
	}
	ctx.Work(time.Duration(len(set)) * c.sys.cfg.Costs.FallbackCPU)
}

// onApplied finishes the batch — or one fallback round — once every
// worker installed it: responses stage onto the durable log's group
// commit, conflict-aborted transactions enter the fallback phase (or, if
// it is disabled or did not rescue them, retry in the next batch), and
// the next round opens or the commit slot is released.
func (c *Coordinator) onApplied(ctx *sim.Context, from string, m msgApplied) {
	st := c.commit
	if st == nil || m.Epoch != st.epoch || st.phase != phaseApply || m.Round != st.fbRound {
		return
	}
	if !st.applied[from] {
		c.progress++
	}
	st.applied[from] = true
	if len(st.applied) < len(c.sys.workerIDs) {
		return
	}
	if tr := c.tracer(); tr.Enabled() {
		tr.Span(c.sys.coordID, "epoch", "apply", st.phaseAt, ctx.Now(),
			"epoch", strconv.FormatInt(st.epoch, 10), "round", strconv.Itoa(st.fbRound))
	}
	if st.fbRound > 0 {
		c.finishFallbackRound(ctx, st)
		return
	}
	ctx.Work(time.Duration(len(st.batch)) * c.sys.cfg.Costs.RoutingCPU)
	var bindingRetry []pendingReq
	for _, tid := range st.order {
		t := st.batch[tid]
		switch {
		// The conflict cases come first: a conflict abort voids the
		// tentative execution wholesale, errors included — the serial
		// order the abort defers to may well remove the error's cause.
		case st.unionAbort[tid] && st.fbSet[tid]:
			// Conflict abort rescued by the fallback schedule: it
			// re-executes (and responds) within this batch.
		case st.unionAbort[tid]:
			c.Aborts++
			if st.binding {
				// A binding member's response already escaped: it retries
				// unconditionally (no budget, no retry bump) and ahead of
				// the rest of the binding queue, preserving release order.
				bindingRetry = append(bindingRetry, pendingReq{
					req: t.req, replyTo: t.replyTo, pos: t.pos, retries: t.retries,
					arrivedAt: ctx.Now(),
				})
				break
			}
			if t.retries+1 > c.sys.cfg.MaxRetries {
				c.Failures++
				c.respond(ctx, t, sysapi.Response{
					Req: t.req.Req, Err: "transaction aborted: retry budget exhausted",
					Retries: t.retries,
				})
				break
			}
			c.pending = append(c.pending, pendingReq{
				req: t.req, replyTo: t.replyTo, pos: t.pos, retries: t.retries + 1,
				arrivedAt: ctx.Now(),
			})
		case t.err != "":
			// Application error with a validated footprint: definitive,
			// no retry.
			c.Failures++
			c.respond(ctx, t, sysapi.Response{
				Req: t.req.Req, Err: t.err, Retries: t.retries,
			})
		default:
			c.Commits++
			c.traceCommit(t.req.Req)
			c.respond(ctx, t, sysapi.Response{
				Req: t.req.Req, Value: t.value, Retries: t.retries,
			})
		}
	}
	if len(bindingRetry) > 0 {
		c.replaying = append(bindingRetry, c.replaying...)
	}
	if len(st.fbRounds) > 0 {
		c.groupCommit(ctx)
		c.startFallbackRound(ctx, st)
		return
	}
	c.finishBatch(ctx, st)
}

// startFallbackRound dispatches the next fallback re-execution round:
// each rescued transaction restarts its call chain from its root
// invocation against the now-current committed state (standard commits
// plus every earlier round). Round members have pairwise-disjoint
// declared footprints, so they re-execute concurrently; the round is then
// validated like a miniature batch, which catches footprints that drifted
// under the re-read values.
func (c *Coordinator) startFallbackRound(ctx *sim.Context, st *epochState) {
	round := st.fbRounds[0]
	st.fbRounds = st.fbRounds[1:]
	st.fbRound++
	c.FallbackRounds++
	st.fbOrder = round
	st.unfinished = len(round)
	c.enterPhase(ctx, st, phaseClosing)
	for _, tid := range round {
		t := st.batch[tid]
		t.finished, t.value, t.err = false, interp.None, ""
		ev := &core.Event{
			Kind:   core.EvInvoke,
			Req:    t.req.Req,
			Target: t.req.Target,
			Method: t.req.Method,
			Args:   t.req.Args,
		}
		ctx.Send(c.sys.ownerOf(t.req.Target), msgTxnEvent{TID: tid, Epoch: st.epoch, Round: st.fbRound, Ev: ev},
			c.sys.cfg.Costs.WorkerLink.Sample(ctx.Rand()))
	}
}

// decideFallbackRound broadcasts the round's deterministic decision once
// its votes are unanimous: committed members apply, demoted members (a
// conflict the declared footprints did not predict) re-run with the next
// round — unless the round budget is exhausted, in which case the epoch
// ends here and the leftovers spill into the next batch.
func (c *Coordinator) decideFallbackRound(ctx *sim.Context, st *epochState) {
	c.demoteDriftedMembers(st)
	aborts := make([]aria.TID, 0)
	demotable := 0
	for _, tid := range st.fbOrder {
		if st.unionAbort[tid] || st.batch[tid].err != "" {
			aborts = append(aborts, tid)
		}
		if st.unionAbort[tid] {
			demotable++
		}
	}
	moreRounds := len(st.fbRounds) > 0 || demotable > 0
	if b := c.sys.cfg.FallbackRoundBudget; b > 0 && st.fbRound >= b {
		moreRounds = false
	}
	c.enterPhase(ctx, st, phaseApply)
	st.applied = map[string]bool{}
	for _, w := range c.sys.workerIDs {
		ctx.Send(w, msgDecide{Epoch: st.epoch, Round: st.fbRound,
			Order:  append([]aria.TID(nil), st.fbOrder...),
			Aborts: append([]aria.TID(nil), aborts...),
			Final:  !moreRounds,
		}, c.sys.cfg.Costs.WorkerLink.Sample(ctx.Rand()))
	}
}

// demoteDriftedMembers closes the fallback footprint-drift hole. A round
// member re-executes against a later state than its first execution, so
// its observed footprint can drift off the declared one the schedule was
// computed from. Drift against same-round members is caught by the
// round's own validation — but a would-be committer whose drifted
// footprint newly conflicts with a *later-round, lower-TID* member would
// commit ahead of it, breaking the invariant that conflicting
// transactions commit in source order. That invariant is what lets any
// schedule that re-derives commit order from the source log — the
// historical TID-order recovery re-cut (see Config.UncheckedReplayOrder)
// and the fallback-disabled differential — reproduce exactly the
// responses this schedule released; silently giving it up is the bug
// (the binding-prefix replay shields clients from the recovery half, but
// the invariant is what the differential and the drift regression tests
// pin). Demote such members instead: they merge into the next round and
// re-run after the member they must follow. Round votes ship the
// observed reservation sets (see Worker.onPrepare) to make the check
// possible.
func (c *Coordinator) demoteDriftedMembers(st *epochState) {
	votes := st.fbVotes
	st.fbVotes = nil
	if c.sys.cfg.UncheckedFallbackDrift {
		return // test hook: reproduce the pre-fix behavior
	}
	observed := map[aria.TID]*aria.RWSet{}
	for _, sets := range votes {
		for tid, rw := range sets {
			m, ok := observed[tid]
			if !ok {
				m = aria.NewRWSet()
				observed[tid] = m
			}
			m.Merge(rw)
		}
	}
	// Not-yet-committed members: every later round's, plus this round's
	// demotions as the ascending scan accumulates them — by the time a
	// member is checked, every lower-TID same-round demotion is pending.
	pending := map[aria.TID]bool{}
	for _, round := range st.fbRounds {
		for _, tid := range round {
			pending[tid] = true
		}
	}
	for _, tid := range st.fbOrder { // fbOrder is TID-sorted
		if st.unionAbort[tid] {
			pending[tid] = true
			continue
		}
		if st.batch[tid].err != "" {
			continue // definitive error: commits nothing, follows no one
		}
		rw := observed[tid]
		if rw == nil {
			continue
		}
		for lower := range pending {
			fp := st.fbFootprints[lower]
			if lower < tid && fp != nil && aria.Conflicts(rw, fp) {
				st.unionAbort[tid] = true
				pending[tid] = true
				c.FallbackDriftDemotions++
				break
			}
		}
	}
	// Widen demoted members' retained footprints by what this round
	// observed: their next re-execution may drift either way, and later
	// drift checks against them must stay conservative.
	for tid := range st.unionAbort {
		if rw := observed[tid]; rw != nil && st.fbFootprints[tid] != nil {
			st.fbFootprints[tid].Merge(rw)
		}
	}
}

// traceCommit records a committed request's position in the effective
// serial order — epochs in order, standard commits in TID order, then
// fallback rounds — when the Config.TraceCommits tap is on. A recovery
// that rolls a commit back and re-executes it overwrites the entry, so
// the tap always reflects the order the surviving state was built in.
func (c *Coordinator) traceCommit(id string) {
	if !c.sys.cfg.TraceCommits {
		return
	}
	if c.commitSeq == nil {
		c.commitSeq = map[string]int64{}
	}
	c.commitSerial++
	c.commitSeq[id] = c.commitSerial
}

// CommitSerials returns a copy of the commit-order tap (request id →
// serial position; empty unless Config.TraceCommits). The
// linearizability checker's serial mode consumes it.
func (c *Coordinator) CommitSerials() map[string]int64 {
	out := make(map[string]int64, len(c.commitSeq))
	for id, s := range c.commitSeq {
		out[id] = s
	}
	return out
}

// finishFallbackRound settles one applied fallback round: committed
// members respond, an application error from the re-execution is as
// definitive as one from a first execution, and demoted members merge
// into the next round (kept in TID order, so the round's internal
// validation stays deterministic). Validation commits at least the
// lowest TID of every round, so the phase always drains within the
// batch — unless the round budget cuts it short, in which case every
// still-unrescued member spills into the next batch's retry queue.
func (c *Coordinator) finishFallbackRound(ctx *sim.Context, st *epochState) {
	ctx.Work(time.Duration(len(st.fbOrder)) * c.sys.cfg.Costs.RoutingCPU)
	var demoted []aria.TID
	for _, tid := range st.fbOrder {
		t := st.batch[tid]
		switch {
		case st.unionAbort[tid]:
			// Demotion trumps the tentative error: a drifted footprint
			// voids the whole re-execution, error included.
			demoted = append(demoted, tid)
		case t.err != "":
			c.Failures++
			c.respond(ctx, t, sysapi.Response{
				Req: t.req.Req, Err: t.err, Retries: t.retries,
			})
		default:
			c.Commits++
			c.FallbackCommits++
			c.traceCommit(t.req.Req)
			c.respond(ctx, t, sysapi.Response{
				Req: t.req.Req, Value: t.value, Retries: t.retries,
			})
		}
	}
	if len(demoted) > 0 {
		if len(st.fbRounds) == 0 {
			st.fbRounds = [][]aria.TID{demoted}
		} else {
			merged := append(demoted, st.fbRounds[0]...)
			sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
			st.fbRounds[0] = merged
		}
	}
	if b := c.sys.cfg.FallbackRoundBudget; b > 0 && st.fbRound >= b {
		c.spillFallback(ctx, st)
	}
	if len(st.fbRounds) > 0 {
		c.groupCommit(ctx)
		c.startFallbackRound(ctx, st)
		return
	}
	c.finishBatch(ctx, st)
}

// spillFallback evicts every not-yet-executed fallback member into the
// next batch's retry queue, TID-ordered: the round budget bounds how long
// a pathologically contended batch can hold its epoch (and, pipelined,
// the commit slot) hostage. Spilled members count as aborts — they take
// the same next-batch retry path a non-rescued conflict abort takes, with
// the same retry-budget bound.
func (c *Coordinator) spillFallback(ctx *sim.Context, st *epochState) {
	var spill []aria.TID
	for _, round := range st.fbRounds {
		spill = append(spill, round...)
	}
	st.fbRounds = nil
	if len(spill) == 0 {
		return
	}
	sort.Slice(spill, func(i, j int) bool { return spill[i] < spill[j] })
	for _, tid := range spill {
		t := st.batch[tid]
		c.Aborts++
		c.FallbackSpills++
		if t.retries+1 > c.sys.cfg.MaxRetries {
			c.Failures++
			c.respond(ctx, t, sysapi.Response{
				Req: t.req.Req, Err: "transaction aborted: retry budget exhausted",
				Retries: t.retries,
			})
			continue
		}
		c.pending = append(c.pending, pendingReq{
			req: t.req, replyTo: t.replyTo, pos: t.pos, retries: t.retries + 1,
			arrivedAt: ctx.Now(),
		})
	}
}

// finishBatch closes the epoch's accounting once the batch — including
// any fallback rounds — fully settled, then snapshots or releases the
// commit slot.
func (c *Coordinator) finishBatch(ctx *sim.Context, st *epochState) {
	c.EpochsClosed++
	// No snapshot while a binding replay is in flight: the images would
	// capture some binding effects but not the queued remainder, and the
	// release-time classification (entry.at vs the snapshot's cut) cannot
	// describe such a half-replayed state. Deferring to the next normal
	// epoch keeps "released at or before the cut" equivalent to "effects
	// inside the images".
	// Likewise no snapshot while fenced for a global batch: a snapshot
	// offset must never land between a fence marker and its unfence, or
	// the restart scan could miss the unbalanced marker — and the images
	// would capture a half-applied global batch.
	if st.binding || len(c.replaying) > 0 || c.fenced {
		c.groupCommit(ctx)
		c.releaseCommit(ctx)
		return
	}
	if c.sys.cfg.SnapshotEvery > 0 && c.EpochsClosed%c.sys.cfg.SnapshotEvery == 0 {
		// Snapshot epochs skip the batch's final group-commit sync: the
		// staged responses ride the checkpoint that seals the snapshot
		// instead, so the epoch's fsync and the checkpoint's fsync
		// collapse into one.
		c.startSnapshot(ctx, st)
		return
	}
	c.groupCommit(ctx)
	c.releaseCommit(ctx)
}

// releaseCommit frees the commit slot. Serial schedule: the next epoch
// opens now. Pipelined: the next epoch is already open in the exec slot —
// if its batch closed while the slot was busy, it promotes immediately
// (the backpressure case); otherwise it keeps executing and promotes on
// its own completion.
func (c *Coordinator) releaseCommit(ctx *sim.Context) {
	c.commit = nil
	if c.exec == nil {
		c.openEpoch(ctx)
		return
	}
	c.maybePrepare(ctx, c.exec)
}

// respond releases one request's terminal response. Without a durable log
// it is sent immediately (legacy in-memory mode); with one, the response
// is staged: its delivered-record is appended and the send waits for the
// group-commit sync, so a response a client could have seen is always in
// the recoverable prefix.
func (c *Coordinator) respond(ctx *sim.Context, t *txnState, resp sysapi.Response) {
	if t.req.Method == applyMethod {
		// A global batch's apply: before the apply's own ack, stage the
		// batch transactions' responses this shard is home to into the
		// durable egress buffer (write-ahead order — a durable apply ack
		// must imply durable embedded responses, or a sequencer failover
		// could re-sequence an answered transaction; see failover.go).
		c.stageEmbeddedResponses(ctx, t)
	}
	if t.replyTo == "" {
		return
	}
	c.stage(ctx, t.replyTo, deliveredEntry{resp: resp, at: ctx.Now(), pos: t.pos})
}

// stage appends one response's delivered-record and queues its release
// on the next group-commit sync. replyTo may be empty: the record is
// then a pure dedup/re-serve entry (an embedded global-batch response
// whose client talks to the sequencer) and no send happens at sync time.
func (c *Coordinator) stage(ctx *sim.Context, replyTo string, ent deliveredEntry) {
	id := ent.resp.Req
	if _, done := c.delivered[id]; done {
		return
	}
	if c.sys.Dlog == nil {
		c.delivered[id] = ent
		if replyTo != "" {
			ctx.Send(replyTo, sysapi.MsgResponse{Response: ent.resp},
				c.sys.cfg.Costs.ClientLink.Sample(ctx.Rand()))
		}
		return
	}
	if c.stagedIDs[id] {
		return // already in the pipeline (a stall recovery replayed its txn)
	}
	ctx.Work(c.sys.cfg.Costs.LogAppendCPU)
	rec := encodeDeliveredRecord(id, ent)
	rec.At = int64(ent.at)
	lsn := c.sys.Dlog.Append(rec)
	c.lastLSN = lsn
	c.staged = append(c.staged, stagedResponse{lsn: lsn, replyTo: replyTo, ent: ent})
	c.stagedIDs[id] = true
}

// stageEmbeddedResponses durably records the responses of the global
// batch transactions homed on this shard, decoded from the manifest
// riding the apply. They ride the apply's own group-commit sync, cost
// one delivered-record each, and are never sent from here — the
// sequencer releases them — but they make this shard the transaction's
// durable exactly-once witness: a failed-over sequencer probes them
// (onSeqProbe) before re-sequencing an unrecognized global id.
func (c *Coordinator) stageEmbeddedResponses(ctx *sim.Context, t *txnState) {
	man, err := decodeManifest(manifestOf(t.req))
	if err != nil {
		return // pre-manifest apply (none in this tree; defensive)
	}
	for _, mt := range man.txns {
		if mt.home != c.sys.shardIndex {
			continue
		}
		c.stage(ctx, "", deliveredEntry{resp: mt.res, at: ctx.Now(), pos: t.pos})
	}
}

// groupCommit issues one batched sync covering every record appended so
// far — staged delivered-records and, pipelined, the successor epoch's
// volatile advance record — and schedules the release at its completion:
// one fsync per batch, shared across the two adjacent epochs, instead of
// one per response plus one per epoch advance.
func (c *Coordinator) groupCommit(ctx *sim.Context) {
	if c.sys.Dlog == nil || len(c.staged) == 0 {
		return
	}
	delay := c.sys.cfg.Costs.LogGroupDelay
	upTo := c.sys.Dlog.SyncAt(ctx.Now() + delay)
	if tr := c.tracer(); tr.Enabled() {
		tr.Span(c.sys.coordID, "dlog", "commit.fsync", ctx.Now(), ctx.Now()+delay,
			"upto", strconv.FormatInt(upTo, 10),
			"staged", strconv.Itoa(len(c.staged)))
	}
	ctx.After(delay, msgLogSynced{UpTo: upTo})
}

// onLogSynced releases every staged response the completed sync covers:
// the delivered-records are durable, so the responses may now be seen by
// clients. Deliberately not epoch- or phase-guarded — released state is
// from durably committed batches, valid across concurrent recoveries.
func (c *Coordinator) onLogSynced(ctx *sim.Context, m msgLogSynced) {
	c.markDurable(m.UpTo)
	n := 0
	for n < len(c.staged) && c.staged[n].lsn <= m.UpTo {
		s := c.staged[n]
		id := s.ent.resp.Req
		c.delivered[id] = s.ent
		delete(c.stagedIDs, id)
		if s.replyTo != "" {
			ctx.Send(s.replyTo, sysapi.MsgResponse{Response: s.ent.resp},
				c.sys.cfg.Costs.ClientLink.Sample(ctx.Rand()))
		}
		n++
	}
	c.staged = c.staged[n:]
	if c.fencePending != 0 {
		// Draining the staged queue may have been the last quiesce
		// condition a pending fence was waiting on.
		c.maybeFence(ctx)
	}
}

func (c *Coordinator) markDurable(lsn int64) {
	if lsn > c.durableLSN {
		c.durableLSN = lsn
	}
}

// logEpochAdvance durably records an epoch advance. Blocking (the serial
// schedule, recovery view changes, and any advance while the previous one
// is still volatile): the record is fsynced before any message of the new
// epoch leaves the coordinator — the view-change guard is only sound if a
// restart recovers an epoch >= every epoch ever spoken, minus the single
// volatile advance the restart path compensates for. Non-blocking (the
// pipelined steady state): the record is appended volatile and rides the
// commit epoch's group-commit sync, merging the per-epoch fsync into the
// per-batch one.
func (c *Coordinator) logEpochAdvance(ctx *sim.Context, blocking bool) {
	if c.sys.Dlog == nil {
		return
	}
	if c.epochLSN > c.durableLSN {
		// The previous advance is still volatile: never let two epoch
		// records be at risk at once (the restart path compensates for
		// exactly one).
		blocking = true
	}
	ctx.Work(c.sys.cfg.Costs.LogAppendCPU)
	rec := encodeEpochRecord(c.epoch)
	rec.At = int64(ctx.Now())
	lsn := c.sys.Dlog.Append(rec)
	c.lastLSN, c.epochLSN = lsn, lsn
	if blocking {
		ctx.Work(c.sys.cfg.Costs.LogSyncCPU)
		c.markDurable(c.sys.Dlog.SyncAt(ctx.Now()))
	}
}

// startSnapshot persists an aligned snapshot: the committing epoch's
// boundary is the alignment point, so the images plus the source offsets
// form a consistent cut (§3). The offset is the epoch's own consumedEnd —
// the pipelined successor has already drawn the cursor past the cut, and
// its members (plus conflict-aborted requests awaiting retry) were
// consumed but have no effects in the images: the ones before the offset
// are recorded as pending positions, the rest replay with the suffix.
func (c *Coordinator) startSnapshot(ctx *sim.Context, st *epochState) {
	c.enterPhase(ctx, st, phaseSnapshot)
	// The images the workers are about to write contain the staged
	// transactions' effects while their delivered-records are still
	// volatile — but that needs no WAL force here: a snapshot is
	// restorable only once *sealed*, and the seal travels inside the
	// checkpoint written when the images complete, whose own sync covers
	// the staged records first. A crash before the seal lands discards
	// the snapshot along with the torn records, keeping the two
	// consistent; the staged responses release at the checkpoint instead
	// of paying a dedicated fsync ahead of the cut.
	offsets := map[string][]int64{sourceTopic: {st.consumedEnd}}
	var pendingPos []int64
	for _, p := range c.pending {
		pendingPos = append(pendingPos, p.pos)
	}
	if c.exec != nil {
		tids := make([]aria.TID, 0, len(c.exec.batch))
		for tid := range c.exec.batch {
			tids = append(tids, tid)
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		for _, tid := range tids {
			if t := c.exec.batch[tid]; t.pos < st.consumedEnd {
				pendingPos = append(pendingPos, t.pos)
			}
		}
	}
	c.snapshotID = c.sys.Snapshots.BeginWithPending(st.epoch, offsets,
		map[string][]int64{sourceTopic: pendingPos}, len(c.sys.workerIDs))
	// The cut's virtual time: this epoch's last response was staged in
	// this same event (finishBatch runs inside the final apply), so every
	// entry released at or before now has its effects in the images the
	// workers are about to write — and every later release does not.
	c.snapCuts[c.snapshotID] = ctx.Now()
	c.snapDone = map[string]bool{}
	for _, w := range c.sys.workerIDs {
		ctx.Send(w, msgTakeSnapshot{ID: c.snapshotID, Epoch: st.epoch},
			c.sys.cfg.Costs.WorkerLink.Sample(ctx.Rand()))
	}
}

func (c *Coordinator) onSnapshotDone(ctx *sim.Context, from string, m msgSnapshotDone) {
	st := c.commit
	if st == nil || st.phase != phaseSnapshot || m.ID != c.snapshotID {
		return
	}
	if !c.snapDone[from] {
		c.progress++
	}
	c.snapDone[from] = true
	if len(c.snapDone) < len(c.sys.workerIDs) {
		return
	}
	c.writeCheckpoint(ctx)
	c.releaseCommit(ctx)
}

// writeCheckpoint folds the coordinator's durable state into a dlog
// checkpoint, compacting the log, pruning the dedup maps, and retiring
// old snapshots. Runs when an aligned snapshot completes, so the
// checkpoint's prune bound (the snapshot's source offset) is fresh.
func (c *Coordinator) writeCheckpoint(ctx *sim.Context) {
	if c.sys.Dlog == nil {
		return
	}
	// Prune settled dedup state: an entry may leave the maps once (a) its
	// release is older than the retention window, so no client retry or
	// delayed wire duplicate can still name it, and (b) its source
	// position precedes the just-completed snapshot's offset, so no
	// recovery replay can re-execute it (a replayed transaction without
	// its delivered-entry would re-send its response).
	if retention := c.sys.cfg.DedupRetention; retention > 0 {
		offset := int64(0)
		if meta, ok := c.sys.Snapshots.Get(c.snapshotID); ok {
			offset = meta.SourceOffsets[sourceTopic][0]
		}
		for id, ent := range c.delivered {
			if ent.at+retention <= ctx.Now() && ent.pos < offset {
				// Pruning forfeits the recorded response, so raise the
				// source's dedup floor: any later arrival of this id (or
				// a lower sequence) is a very late duplicate that must be
				// absorbed, not re-executed. The floor rides this same
				// checkpoint, so it is durable exactly when the prune is.
				if src, seq, ok := sysapi.SplitID(id); ok {
					if cur, has := c.dedupFloor[src]; !has || seq > cur {
						c.dedupFloor[src] = seq
					}
				}
				delete(c.delivered, id)
				delete(c.seen, id)
			}
		}
	}
	// Staged-but-unreleased responses are durable facts too (their records
	// are about to be compacted away): bake them into the checkpoint so a
	// later crash still suppresses their replays — the un-sent responses
	// are then served via retry replay.
	c.sealed = c.snapshotID
	ck := walCheckpoint{epoch: c.epoch, nextTID: c.nextTID, sealed: c.sealed,
		sealedCut: c.snapCuts[c.sealed], delivered: c.delivered, floors: c.dedupFloor}
	if len(c.staged) > 0 {
		merged := make(map[string]deliveredEntry, len(c.delivered)+len(c.staged))
		for id, ent := range c.delivered {
			merged[id] = ent
		}
		for _, s := range c.staged {
			merged[s.ent.resp.Req] = s.ent
		}
		ck.delivered = merged
	}
	payload := encodeCheckpoint(ck)
	ctx.Work(c.sys.cfg.Costs.StateCPU(len(payload)) + c.sys.cfg.Costs.LogSyncCPU)
	c.sys.Dlog.Checkpoint(ctx.Now(), payload)
	// The checkpoint write is itself durable and subsumes every record
	// appended so far — including a volatile pipelined epoch advance
	// (ck.epoch is the latest opened epoch) and the staged responses of
	// the snapshot epoch, which release now: one checkpoint fsync stands
	// in for the batch's group commit, the snapshot seal and the epoch
	// record at once.
	c.markDurable(c.lastLSN)
	c.onLogSynced(ctx, msgLogSynced{UpTo: c.durableLSN})
	if retain := c.sys.cfg.SnapshotRetain; retain > 0 {
		c.sys.Snapshots.Compact(retain)
	}
}

// openEpoch advances the epoch (durably — blocking on the serial
// schedule, riding the commit epoch's group commit on the pipelined one),
// installs a fresh exec slot, drains buffered retries and arrivals up to
// the batch cap, and arms the epoch timer.
func (c *Coordinator) openEpoch(ctx *sim.Context) {
	c.epoch++
	c.logEpochAdvance(ctx, c.sys.cfg.DisablePipelining)
	c.flight().Recordf(ctx.Now(), c.sys.coordID, "epoch.advance",
		"epoch %d (%d binding queued)", c.epoch, len(c.replaying))
	if tr := c.tracer(); tr.Enabled() {
		tr.Instant(c.sys.coordID, "epoch", "epoch.advance", ctx.Now(),
			"epoch", strconv.FormatInt(c.epoch, 10))
	}
	st := &epochState{epoch: c.epoch, phase: phaseOpen, batch: map[aria.TID]*txnState{}}
	c.exec = st
	// The binding replay queue preempts everything: released responses
	// constrain what the rebuilt state must look like, so their
	// transactions re-commit — in release order, one per epoch — before
	// any pending retry or fresh arrival is allowed to interleave.
	//
	// Strictly one transaction per binding epoch, never a batch. Batching
	// is unsound here: Aria commits every member with no lower-TID
	// conflict, so when an early-queued member aborts, a later member can
	// commit against state that is missing the earlier member's write —
	// an order inversion the released responses already contradict. With
	// data-dependent footprints the aborted member's re-execution can
	// then drift off the contended cell and the inversion goes
	// permanently unnoticed by conflict detection. Serial replay is
	// exact: response staging advances virtual time per append, so the
	// (at, pos) order is the original effective serial order, and a
	// single-member batch has no conflicts to abort on.
	if len(c.replaying) > 0 {
		st.binding = true
		c.assign(ctx, st, c.replaying[0])
		c.replaying = c.replaying[1:]
		ctx.After(c.sys.cfg.EpochInterval, msgEpochTick{Epoch: st.epoch})
		return
	}
	// While fenced for a global batch the epoch parks: no timer, no
	// source drain — it accepts only the sequencer's write-set apply, so
	// the shard's committed state stays exactly what the sequencer read.
	// A queued apply (the previous fenced epoch was busy when it arrived,
	// or the recovery scan found it unanswered in the log suffix) runs
	// now that the binding replay has drained.
	if c.fenced {
		if c.fenceApply != nil {
			p := *c.fenceApply
			c.fenceApply = nil
			c.startApply(ctx, p)
		}
		return
	}
	c.fillEpoch(ctx, st)
}

// fillEpoch populates a freshly opened (non-binding, unfenced) epoch:
// pending retries, then the source-log backlog, then the close timer.
// Also the resume step when an unfence releases a parked epoch.
func (c *Coordinator) fillEpoch(ctx *sim.Context, st *epochState) {
	// Retries first (deterministic: they carry the smallest TIDs of the
	// new batch, so starved transactions eventually win every conflict);
	// past the cap they stay pending, ahead of the source backlog.
	c.drainPending(ctx, st)
	// Then drain arrivals buffered in the source log, chunked by the cap:
	// a post-recovery backlog replays over as many batches as it needs
	// instead of ballooning one giant batch. A quiescing shard (fence
	// pending) stops drawing from the source so sustained load cannot
	// starve the fence; the backlog drains after the unfence.
	end, err := c.sys.RequestLog.End(sourceTopic, 0)
	if err == nil && c.fencePending == 0 {
		for ; c.consumed < end && !c.batchFull(st); c.consumed++ {
			rec, ok, err := c.sys.RequestLog.Fetch(sourceTopic, 0, c.consumed)
			if err != nil || !ok {
				break
			}
			m := rec.Payload.(sysapi.MsgRequest)
			if isGlobalRecord(m.Request.Method) {
				// Fence/unfence markers and write-set applies never enter
				// the batch intake: markers are recovery metadata, and an
				// apply below the cursor was answered inside its fence
				// window (or replayed as binding).
				continue
			}
			if !c.sys.cfg.UncheckedReplayOrder && c.answered(m.Request.Req) {
				// A recovery rewound the cursor over this record, but its
				// response is already delivered (or staged): its effects are
				// either in the restored images or rebuilt by the binding
				// replay, and re-assigning it would double-execute. (The
				// UncheckedReplayOrder hook restores the historical re-cut:
				// answered requests re-execute and only their duplicate
				// response is suppressed.)
				continue
			}
			c.assign(ctx, st, pendingReq{req: m.Request, replyTo: m.ReplyTo, pos: c.consumed})
		}
	}
	ctx.After(c.sys.cfg.EpochInterval, msgEpochTick{Epoch: st.epoch})
}

// answered reports whether a request's response is already part of the
// egress state — released (delivered) or staged awaiting its sync. Either
// way the request must not execute again through the normal intake paths:
// its effects are the binding replay's business, not the batch machinery's.
func (c *Coordinator) answered(id string) bool {
	if _, ok := c.delivered[id]; ok {
		return true
	}
	return c.stagedIDs[id]
}

// drainPending assigns buffered retries into the slot's batch up to the
// cap; the rest stay pending, ahead of the source backlog.
func (c *Coordinator) drainPending(ctx *sim.Context, st *epochState) {
	pend := c.pending
	c.pending = nil
	for i, p := range pend {
		if c.batchFull(st) {
			c.pending = append(c.pending, pend[i:]...)
			break
		}
		c.assign(ctx, st, p)
	}
}

// onStallCheck fires the failure detector: if the slot that armed it is
// still stuck in the same worker-dependent phase past the stall timeout
// AND no worker message arrived since the check was armed, a worker is
// presumed dead and recovery starts. With progress, the check re-arms:
// slow is not dead. Both pipeline slots arm checks independently; either
// one firing recovers the whole system.
func (c *Coordinator) onStallCheck(ctx *sim.Context, m msgStallCheck) {
	if m.Phase == phaseRecovering {
		if !c.recovering || m.Epoch != c.epoch {
			return
		}
	} else {
		st := c.stageFor(m.Epoch)
		if c.recovering || st == nil || st.phase != m.Phase {
			return
		}
	}
	if c.progress != m.Progress {
		ctx.After(c.sys.cfg.StallTimeout, msgStallCheck{Epoch: m.Epoch, Phase: m.Phase, Progress: c.progress})
		return
	}
	c.Recover(ctx)
}

// restorePoint returns the snapshot recovery (and snapshot-consistency
// queries) may use. With a durable log that is exactly the latest sealed
// snapshot — never a merely image-complete one, whose effects may depend
// on delivered-records a crash could still tear. Without a log (legacy
// in-memory mode, where responses are never staged) image completeness is
// the only durability there is, so the latest complete snapshot stands.
func (c *Coordinator) restorePoint() (snapshot.Meta, bool) {
	if c.sys.Dlog == nil {
		return c.sys.Snapshots.Latest()
	}
	if c.sealed == 0 {
		return snapshot.Meta{}, false
	}
	return c.sys.Snapshots.Get(c.sealed)
}

// snapCut returns a snapshot's aligned-cut virtual time. Unknown (only
// possible in the legacy in-memory mode, where nothing about a snapshot
// is durable against the harness): treat every release as predating the
// cut, i.e. replay nothing — the legacy mode's original, weaker contract.
func (c *Coordinator) snapCut(id int64) time.Duration {
	if cut, ok := c.snapCuts[id]; ok {
		return cut
	}
	return time.Duration(math.MaxInt64)
}

// buildReplaying computes the binding prefix of a recovery: every
// released (or staged — its sync is in flight and cannot be recalled)
// successful response whose release postdates the restored snapshot's
// cut. Those responses escaped to clients, but the restored images
// predate their effects — so the rebuilt state is only consistent with
// what clients saw if their transactions re-commit, before anything
// else, in the order the responses were released.
//
// Release order is reconstructed as (release time, source position):
// responses released in the same event belong to the same batch — whose
// committed members are pairwise conflict-free, so position order within
// the tie is as good as the original TID order — and across events the
// release time is the group-commit LSN order itself. Re-executing that
// sequence against the restored images reproduces each member's original
// observations: a member that conflicts with an earlier-released one
// lands in a later binding batch (the earlier one either commits first
// or the conflict aborts the later member into the next binding round),
// exactly mirroring the batch boundary that separated them originally.
func (c *Coordinator) buildReplaying(cut time.Duration) {
	type cand struct {
		at time.Duration
		p  pendingReq
	}
	var cands []cand
	add := func(ent deliveredEntry) {
		if ent.resp.Err != "" || ent.at <= cut {
			return // definitive error (no effects), or effects in the images
		}
		rec, ok, err := c.sys.RequestLog.Fetch(sourceTopic, 0, ent.pos)
		if err != nil || !ok {
			return
		}
		m, ok := rec.Payload.(sysapi.MsgRequest)
		if !ok {
			return
		}
		cands = append(cands, cand{at: ent.at, p: pendingReq{
			req: m.Request, replyTo: m.ReplyTo, pos: ent.pos,
		}})
	}
	for _, ent := range c.delivered {
		add(ent)
	}
	for _, s := range c.staged {
		add(s.ent)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].at != cands[j].at {
			return cands[i].at < cands[j].at
		}
		return cands[i].p.pos < cands[j].p.pos
	})
	c.replaying = make([]pendingReq, 0, len(cands))
	for _, cd := range cands {
		c.replaying = append(c.replaying, cd.p)
	}
	c.BindingReplays += len(c.replaying)
}

// Recover rolls the system back to the latest snapshot: restart crashed
// workers, restore every worker image, discard the in-flight epochs, and
// replay the source suffix. Delivered-response deduplication keeps output
// exactly-once across the replay.
func (c *Coordinator) Recover(ctx *sim.Context) {
	c.Recoveries++
	// View change: bumping the epoch *before* the restore makes every
	// message of the discarded world — in-flight events, votes, delayed
	// snapshot requests — provably stale to any worker that processes the
	// recovery, with no global knowledge required (workers just keep an
	// epoch high-water mark). The bump is fsynced before the recover
	// messages leave, so even a crash right here cannot fork the view.
	c.epoch++
	c.logEpochAdvance(ctx, true)
	// The recovery phase is itself failure-guarded: if a recover message
	// is lost (or a worker dies again mid-restore), the stall check fires
	// and recovery restarts from the same snapshot — Recover is
	// idempotent, so re-entering it is always safe.
	c.recovering = true
	c.exec, c.commit = nil, nil
	ctx.After(c.sys.cfg.StallTimeout, msgStallCheck{Epoch: c.epoch, Phase: phaseRecovering, Progress: c.progress})
	c.pending, c.replaying = nil, nil
	var snapID int64
	cut := time.Duration(-1) // no snapshot: every release postdates the empty state
	if meta, ok := c.restorePoint(); ok {
		snapID = meta.ID
		cut = c.snapCut(snapID)
		c.consumed = meta.SourceOffsets[sourceTopic][0]
		// Re-queue the consumed-but-pending requests the snapshot
		// recorded: their positions predate the offset, so the suffix
		// replay alone would lose them. Answered ones are skipped — a
		// definitive error keeps its recorded response, and a released
		// commit is the binding replay's to re-execute.
		for _, pos := range meta.PendingPositions[sourceTopic] {
			rec, ok, err := c.sys.RequestLog.Fetch(sourceTopic, 0, pos)
			if err != nil || !ok {
				continue
			}
			m := rec.Payload.(sysapi.MsgRequest)
			if !c.sys.cfg.UncheckedReplayOrder && c.answered(m.Request.Req) {
				continue
			}
			c.pending = append(c.pending, pendingReq{
				req: m.Request, replyTo: m.ReplyTo, pos: pos,
			})
		}
	} else {
		c.consumed = 0
	}
	if !c.sys.cfg.UncheckedReplayOrder {
		c.buildReplaying(cut)
	}
	c.rebuildSeen()
	// Re-derive the fence state from the durable markers in the log
	// suffix: a shard that crashed (or stalled) inside a global batch's
	// fence window comes back still fenced and parks again after the
	// binding replay, instead of resuming normal epochs between the
	// sequencer's reads and its writes.
	c.scanFenceState()
	if c.fenced {
		// The crash voided any pre-crash watchdog chain; a rebuilt park
		// needs a fresh one (re-acks resume once a fence or recovery
		// query restores fenceFrom).
		c.armParkWatchdog(ctx, c.fenceSeq)
	}
	c.recovered = map[string]bool{}
	c.snapshotID = snapID
	c.RestoredSnapshots = append(c.RestoredSnapshots, snapID)
	c.flight().Recordf(ctx.Now(), c.sys.coordID, "recovery",
		"epoch %d: restored snapshot %d, %d binding replays, %d pending",
		c.epoch, snapID, len(c.replaying), len(c.pending))
	for _, w := range c.sys.workerIDs {
		// Only dead workers get respawned (the cluster-manager model); a
		// live worker keeps its CPU backlog and merely rolls its state
		// back when the recover message reaches it.
		if c.sys.restart != nil && (c.sys.isCrashed == nil || c.sys.isCrashed(w)) {
			c.sys.restart(w)
		}
		ctx.Send(w, msgRecover{SnapshotID: snapID, Epoch: c.epoch},
			c.sys.cfg.Costs.WorkerLink.Sample(ctx.Rand()))
	}
}

// rebuildSeen reconstructs the arrival-dedup set from durable ground
// truth: every delivered (or staged) response, every pending retry the
// snapshot recorded, and every id in the source-log suffix the replay
// will re-consume. Ids pruned by the retention window stay pruned —
// that IS the dedup window contract.
func (c *Coordinator) rebuildSeen() {
	seen := make(map[string]bool, len(c.delivered)+len(c.pending))
	for id := range c.delivered {
		seen[id] = true
	}
	for id := range c.stagedIDs {
		seen[id] = true
	}
	for _, p := range c.pending {
		seen[p.req.Req] = true
	}
	if end, err := c.sys.RequestLog.End(sourceTopic, 0); err == nil {
		for pos := c.consumed; pos < end; pos++ {
			rec, ok, err := c.sys.RequestLog.Fetch(sourceTopic, 0, pos)
			if err != nil || !ok {
				break
			}
			if m, ok := rec.Payload.(sysapi.MsgRequest); ok {
				seen[m.Request.Req] = true
			}
		}
	}
	c.seen = seen
}

// OnRestart implements sim.RestartHandler: the coordinator machine came
// back from a crash with its memory gone. Rebuild the durable facts from
// the dlog (epoch high-water mark, delivered responses — exactly what
// exactly-once needs), then run the ordinary rollback recovery for
// everything else. Torn log tails were already discarded by the device's
// crash contract; write-ahead ordering guarantees nothing torn was ever
// externalized.
func (c *Coordinator) OnRestart(ctx *sim.Context) {
	if c.sys.Dlog == nil {
		// No durable log, no crash contract: the chaos topology clamps
		// coordinator crash windows in this mode. A forced restart
		// recovers with whatever in-memory state happens to survive the
		// test harness (the Go object), purely best-effort.
		c.Recover(ctx)
		return
	}
	c.Restarts++
	if c.exec != nil && c.commit != nil {
		// Pre-crash in-memory state is observable to the test harness even
		// though the protocol discards it: record that this reboot landed
		// inside the two-epochs-in-flight window.
		c.MidPipelineRestarts++
	}
	img := c.sys.Dlog.Recover(ctx.Now())
	ck, err := decodeCheckpoint(img.Checkpoint)
	if err != nil {
		// A durable checkpoint is written atomically; a decode failure
		// means corruption outside the crash contract. Start from zero —
		// the replayable source and snapshots still bound the damage.
		ck = walCheckpoint{delivered: map[string]deliveredEntry{}, floors: map[string]int64{}}
	}
	c.exec, c.commit = nil, nil
	c.recovering = false
	c.pending, c.replaying = nil, nil
	c.snapDone, c.recovered = nil, nil
	c.staged = nil
	c.stagedIDs = map[string]bool{}
	c.seen = map[string]bool{}
	c.progress = 0
	c.lastLSN, c.durableLSN, c.epochLSN = 0, 0, 0
	// Fence state is volatile here; Recover's marker scan rebuilds it
	// (fenceFrom need not survive — re-sent fence messages carry the
	// sender, and the re-ack path answers them).
	c.fencePending, c.fenceSeq, c.fenceDone = 0, 0, 0
	c.fenced, c.fenceApply, c.fenceFrom = false, nil, ""
	c.parkWatch = 0
	c.epoch = ck.epoch
	c.nextTID = ck.nextTID
	c.sealed = ck.sealed
	c.delivered = ck.delivered
	c.dedupFloor = ck.floors
	// The sealed snapshot's cut is the only one a restart can restore to,
	// so it is the only one the checkpoint needs to carry.
	c.snapCuts = map[int64]time.Duration{ck.sealed: ck.sealedCut}
	ctx.Work(c.sys.cfg.Costs.LogSyncCPU)
	for _, r := range img.Records {
		ctx.Work(c.sys.cfg.Costs.LogAppendCPU)
		switch r.Kind {
		case recKindEpoch:
			if e, err := decodeEpochRecord(r.Data); err == nil && e > c.epoch {
				c.epoch = e
			}
		case recKindDelivered:
			if id, ent, err := decodeDeliveredRecord(r.Data); err == nil {
				c.delivered[id] = ent
			}
		}
	}
	if !c.sys.cfg.DisablePipelining {
		// Compensate for the single epoch-advance record the pipelined
		// schedule allows to be volatile: it may have been torn by the
		// crash, so the durable high-water mark can trail the highest
		// epoch ever spoken by exactly one. Over-bumping here (plus the
		// view-change bump in Recover) restores epoch > everything spoken.
		c.epoch++
	}
	c.flight().Recordf(ctx.Now(), c.sys.coordID, "restore",
		"rebooted from dlog: epoch %d, %d delivered, %d log records",
		c.epoch, len(c.delivered), len(img.Records))
	c.Recover(ctx)
}

func (c *Coordinator) onRecovered(ctx *sim.Context, from string, m msgRecovered) {
	// The epoch check rejects acks from an earlier recovery round that
	// happened to restore the same snapshot id — the worker they name has
	// not rolled back in *this* round.
	if !c.recovering || m.SnapshotID != c.snapshotID || m.Epoch != c.epoch {
		return
	}
	if !c.recovered[from] {
		c.progress++
	}
	c.recovered[from] = true
	if len(c.recovered) < len(c.sys.workerIDs) {
		return
	}
	// Epoch bump invalidates every stale in-flight message, then the
	// source suffix replays through the normal batch machinery.
	c.recovering = false
	c.openEpoch(ctx)
}
